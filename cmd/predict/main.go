// Command predict loads a trained model and predicts runtimes for
// (workload, platform, interferers) tuples given on the command line.
//
// Usage:
//
//	predict -data dataset.json -model model.bin -workload 3 -platform 17 [-interferers 5,9]
//	predict ... -eps 0.05        # conformal upper bound instead of estimate
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/conformal"
	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predict: ")
	dataPath := flag.String("data", "", "dataset JSON (required)")
	modelPath := flag.String("model", "", "trained model (required)")
	workload := flag.Int("workload", -1, "workload index")
	platform := flag.Int("platform", -1, "platform index")
	interferers := flag.String("interferers", "", "comma-separated interfering workload indices")
	eps := flag.Float64("eps", 0, "if >0, print the 1-eps conformal bound (quantile model required)")
	flag.Parse()
	if *dataPath == "" || *modelPath == "" {
		log.Fatal("-data and -model are required")
	}

	df, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.ReadJSON(df)
	df.Close()
	if err != nil {
		log.Fatal(err)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.Load(mf, ds)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *workload < 0 || *workload >= ds.NumWorkloads() ||
		*platform < 0 || *platform >= ds.NumPlatforms() {
		log.Fatalf("workload/platform out of range (%d workloads, %d platforms)",
			ds.NumWorkloads(), ds.NumPlatforms())
	}
	var ks []int
	if *interferers != "" {
		for _, part := range strings.Split(*interferers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 0 || v >= ds.NumWorkloads() {
				log.Fatalf("bad interferer %q", part)
			}
			ks = append(ks, v)
		}
	}

	fmt.Printf("workload: %s\nplatform: %s\n",
		ds.WorkloadNames[*workload], ds.PlatformNames[*platform])
	for _, k := range ks {
		fmt.Printf("interferer: %s\n", ds.WorkloadNames[k])
	}

	if *eps <= 0 {
		sec := m.PredictSeconds(*workload, *platform, ks, 0)
		fmt.Printf("estimated runtime: %.4fs\n", sec)
		return
	}
	if len(m.Cfg.Quantiles) == 0 {
		log.Fatal("bounds require a model trained with -quantiles")
	}
	// Calibrate on the fly using the whole dataset as calibration material
	// (the CLI has no recorded split; for rigorous evaluation use
	// cmd/experiments).
	hp := &conformal.HeadPredictions{Quantiles: m.Cfg.Quantiles}
	nh := m.Cfg.NumHeads()
	hp.Cal = make([][]float64, nh)
	hp.Val = make([][]float64, nh)
	for i, o := range ds.Obs {
		tgt := o.LogSeconds()
		pool := o.Degree()
		if i%2 == 0 {
			hp.CalTrue = append(hp.CalTrue, tgt)
			hp.CalPool = append(hp.CalPool, pool)
		} else {
			hp.ValTrue = append(hp.ValTrue, tgt)
			hp.ValPool = append(hp.ValPool, pool)
		}
		for h := 0; h < nh; h++ {
			p := m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, h)
			if i%2 == 0 {
				hp.Cal[h] = append(hp.Cal[h], p)
			} else {
				hp.Val[h] = append(hp.Val[h], p)
			}
		}
	}
	b, err := conformal.Calibrate(hp, *eps, conformal.SelectOptimal)
	if err != nil {
		log.Fatal(err)
	}
	pred := m.PredictLogSeconds(*workload, *platform, ks, b.Head)
	fmt.Printf("runtime bound (eps=%.3f): %.4fs (head ξ=%.2f)\n",
		*eps, math.Exp(b.Bound(pred, len(ks))), m.Cfg.Quantiles[b.Head])
}
