// Command datagen generates the synthetic WebAssembly-cluster runtime
// dataset (the substitute for the paper's physical testbed, §4) and prints
// summary statistics, including the Fig. 1 interference-slowdown histogram.
//
// Usage:
//
//	datagen [-seed 1] [-workloads 249] [-devices 24] [-sets 250] [-out dataset.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/stats"
	"repro/internal/wasmcluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	seed := flag.Int64("seed", 1, "generation seed")
	workloads := flag.Int("workloads", 249, "number of workloads (max 249)")
	devices := flag.Int("devices", 24, "number of devices (max 24)")
	sets := flag.Int("sets", 250, "interference sets per degree per platform")
	out := flag.String("out", "", "write dataset JSON to this file")
	useVM := flag.Bool("vm", false, "profile workload features on the instrumented bytecode interpreter")
	flag.Parse()

	cluster := wasmcluster.New(wasmcluster.Config{
		Seed: *seed, NumWorkloads: *workloads, MaxDevices: *devices, SetsPerDegree: *sets,
		UseVM: *useVM,
	})
	ds := cluster.Generate()
	if err := ds.Validate(); err != nil {
		log.Fatalf("generated dataset invalid: %v", err)
	}

	by := ds.CountByDegree()
	fmt.Printf("workloads:  %d\nplatforms:  %d\nobservations: %d\n",
		ds.NumWorkloads(), ds.NumPlatforms(), len(ds.Obs))
	fmt.Printf("  isolation: %d\n  2-way: %d\n  3-way: %d\n  4-way: %d\n",
		by[0], by[1], by[2], by[3])

	// Fig. 1: log-histogram of interference slowdowns by degree.
	iso := map[[2]int]float64{}
	cnt := map[[2]int]float64{}
	for _, o := range ds.Obs {
		if o.Degree() == 0 {
			k := [2]int{o.Workload, o.Platform}
			iso[k] += o.Seconds
			cnt[k]++
		}
	}
	for _, g := range []int{1, 2, 3} {
		h := stats.NewHistogram(0, 5, 20) // log2 slowdown 1x..32x
		for _, o := range ds.Obs {
			if o.Degree() != g {
				continue
			}
			k := [2]int{o.Workload, o.Platform}
			if cnt[k] == 0 {
				continue
			}
			h.Add(math.Log2(o.Seconds / (iso[k] / cnt[k])))
		}
		fmt.Printf("\n%d-way interference slowdown (log-density, Fig. 1):\n", g+1)
		fmt.Print(h.Render(50, func(b int) string {
			return fmt.Sprintf("%.1fx", math.Exp2(h.BinCenter(b)))
		}))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := ds.WriteJSON(f); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
