// Command experiments regenerates the paper's tables and figures from the
// experiment registry (internal/exp). Each experiment prints plain-text
// tables whose shape should match the corresponding paper figure; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	experiments -list
//	experiments -run fig4a,fig5 [-scale quick|standard|full] [-seed 1]
//	experiments -all [-scale standard]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "comma-separated experiment ids")
	all := flag.Bool("all", false, "run every experiment")
	scaleName := flag.String("scale", "quick", "quick | standard | full")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.Quick
	case "standard":
		scale = exp.Standard
	case "full":
		scale = exp.FullScale
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-9s %s\n          paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var ids []string
	if *all {
		for _, e := range exp.Registry() {
			ids = append(ids, e.ID)
		}
	} else if *run != "" {
		ids = strings.Split(*run, ",")
	} else {
		log.Fatal("nothing to do: pass -list, -run ids, or -all")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := exp.ByID(id)
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", id)
		}
		fmt.Printf("### %s — %s [%s scale]\n", e.ID, e.Title, scale)
		fmt.Printf("paper expectation: %s\n\n", e.Paper)
		start := time.Now()
		tables, err := e.Run(scale, *seed)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
