// Command serve runs the Pitot batch prediction daemon: an HTTP JSON
// service with micro-batched /estimate and /bound endpoints, non-blocking
// online learning via /observe, and /healthz for liveness and metrics.
//
// Load a persisted predictor (written by Predictor.SaveModel):
//
//	serve -data dataset.json -mean mean.pit -quant quant.bin -addr :8080
//
// Or train at startup for a self-contained deployment:
//
//	serve -data dataset.json -train -quantiles -save-mean mean.pit -save-quant quant.bin
//
// Prediction requests are micro-batched: single calls arriving within
// -window of each other (up to -max-batch) are fused into one vectorized
// EstimateBatch/BoundBatch pass over the model. Admission is bounded by
// -max-queue; excess load fails fast with HTTP 503.
//
// With -place, the orchestration surface also exposes a failure
// lifecycle: POST /fail marks a platform down (orphaned residents are
// re-placed on survivors) or degraded, POST /recover re-admits it, and a
// deadline-miss circuit breaker (-place-breaker-threshold) quarantines
// platforms whose observed miss rate over -place-breaker-window
// completions crosses the threshold. Degraded platforms stay placeable
// but their scores are padded by -place-degraded-penalty.
//
// Observability: GET /metrics exposes latency histograms alongside the
// counters, GET /debug/trace?job=ID replays a placed job's lifecycle from
// the flight recorder (-trace-depth sizes its ring), and -pprof mounts the
// standard net/http/pprof handlers under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	pitot "repro"
	"repro/internal/sched"
	"repro/internal/serve"
)

// buildVersion stamps /healthz and the pitot_build_info metric; inject a
// real version with:
//
//	go build -ldflags "-X main.buildVersion=$(git describe --always)" ./cmd/serve
var buildVersion = "dev"

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		dataPath  = flag.String("data", "", "dataset JSON (required)")
		meanPath  = flag.String("mean", "", "predictor mean stream written by SaveModel/Export (not a cmd/train model file)")
		quantPath = flag.String("quant", "", "quantile model stream (optional; enables /bound)")
		train     = flag.Bool("train", false, "train at startup instead of loading -mean/-quant")
		quantiles = flag.Bool("quantiles", false, "with -train: also fit the quantile model for /bound")
		seed      = flag.Int64("seed", 1, "with -train: training seed")
		steps     = flag.Int("steps", 2500, "with -train: optimization steps")
		saveMean  = flag.String("save-mean", "", "with -train: persist the mean stream here")
		saveQuant = flag.String("save-quant", "", "with -train: persist the quantile model here")
		fastScore = flag.Bool("fast-scoring", false, "score with the approximate fast kernel (reassociated dots, bounded-error exp); exact kernel otherwise")
		window    = flag.Duration("window", 100*time.Microsecond, "micro-batch window")
		maxBatch  = flag.Int("max-batch", 256, "flush a batch at this many pending requests")
		maxQueue  = flag.Int("max-queue", 4096, "admission queue bound (excess requests get 503)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceDep  = flag.Int("trace-depth", 0, "flight-recorder ring capacity behind /debug/trace (0 = default 4096, negative disables tracing)")

		place         = flag.Bool("place", false, "enable the /place and /complete orchestration endpoints")
		placePolicy   = flag.String("place-policy", "bound", "placement policy: bound, mean, padded, mean-bound, or padded-bound")
		placeEps      = flag.Float64("place-eps", 0.1, "bound policy's per-job deadline-miss budget")
		placeFactor   = flag.Float64("place-factor", 1.3, "padded policy's safety factor")
		placeStrategy = flag.String("place-strategy", "least-loaded", "platform selection: least-loaded, best-fit, or utilization")
		placeColoc    = flag.Int("place-colocation", 4, "max workloads per platform")
		placeInFlight = flag.Int("place-max-inflight", 0, "admission bound on in-flight jobs (0 = platform capacity)")
		placeWindow   = flag.Duration("place-window", 200*time.Microsecond, "fuse concurrent single-job /place calls arriving within this window into one wave (0 disables)")
		placeMaxWave  = flag.Int("place-max-wave", 64, "cap on a fused /place wave")
		placeChunk    = flag.Int("place-chunk", 0, "jobs placed per scheduler-lock hold (0 = default, negative = whole wave)")
		placeReplicas = flag.Int("place-replicas", 1, "scheduler replicas over one shared slot store (>1 enables optimistic replicated placement)")
		placeShards   = flag.Int("place-shards", 0, "platform shards across replicas (0 = one shared pool; requires -place-replicas > 1)")
		placeCache    = flag.Bool("place-score-cache", false, "memoize wave scoring: intra-wave workload dedup + version-keyed cross-wave score cache (decisions unchanged)")
		placeCacheCap = flag.Int("place-score-cache-cap", 0, "total score-cache entry bound across platforms (0 = default 4096; requires -place-score-cache)")

		placePenalty     = flag.Float64("place-degraded-penalty", 0, "score multiplier applied to degraded platforms (0 = default 1.25)")
		breakerThreshold = flag.Float64("place-breaker-threshold", 0, "quarantine a platform when its windowed deadline-miss rate crosses this fraction (0 disables the breaker)")
		breakerWindow    = flag.Int("place-breaker-window", 0, "completions per platform in the breaker's miss-rate window (0 = default 20)")
		breakerProbation = flag.Int("place-breaker-probation", 0, "consecutive on-deadline completions to close a half-open platform (0 = default)")
	)
	flag.Parse()
	if *dataPath == "" {
		log.Fatal("-data is required")
	}
	if *placeReplicas < 1 {
		log.Fatal("-place-replicas must be >= 1")
	}
	if *placeShards != 0 && *placeReplicas <= 1 {
		log.Fatal("-place-shards requires -place-replicas > 1")
	}
	if *placeShards < 0 {
		log.Fatal("-place-shards must be >= 0")
	}
	if *placeCacheCap < 0 {
		log.Fatal("-place-score-cache-cap must be >= 0")
	}
	if *placeCacheCap != 0 && !*placeCache {
		log.Fatal("-place-score-cache-cap requires -place-score-cache")
	}

	df, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := pitot.ReadDataset(df)
	df.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset: %d workloads, %d platforms, %d observations",
		ds.NumWorkloads(), ds.NumPlatforms(), len(ds.Obs))

	var pred *pitot.Predictor
	switch {
	case *train:
		cfg := pitot.DefaultModelConfig(*seed)
		cfg.Steps = *steps
		cfg.FastScoring = *fastScore
		log.Printf("training (steps=%d quantiles=%v)...", *steps, *quantiles)
		pred, err = pitot.Train(ds, pitot.Options{Seed: *seed, Model: &cfg, EnableBounds: *quantiles})
		if err != nil {
			log.Fatal(err)
		}
		if *saveMean != "" {
			if err := persist(pred, *saveMean, *saveQuant); err != nil {
				log.Fatal(err)
			}
		}
	case *meanPath != "":
		mf, err := os.Open(*meanPath)
		if err != nil {
			log.Fatal(err)
		}
		if *quantPath != "" {
			qf, err := os.Open(*quantPath)
			if err != nil {
				log.Fatal(err)
			}
			pred, err = pitot.LoadPredictor(ds, mf, qf)
			qf.Close()
			if err != nil {
				log.Fatal(err)
			}
		} else if pred, err = pitot.LoadPredictor(ds, mf, nil); err != nil {
			log.Fatal(err)
		}
		mf.Close()
	default:
		log.Fatal("either -mean (load) or -train is required")
	}

	// Loaded model streams predate the flag or may have been trained
	// without it; the runtime toggle covers both paths uniformly.
	if *fastScore {
		pred.SetFastScoring(true)
	}

	info := pred.Info()
	log.Printf("predictor ready: snapshot v%d, bounds=%v, fast=%v", info.Version, info.Bounds, info.FastScoring)

	srv := serve.New(pred, serve.Config{
		MaxBatch:     *maxBatch,
		Window:       *window,
		MaxQueue:     *maxQueue,
		BuildVersion: buildVersion,
	})
	if *place {
		err := srv.EnablePlacement(serve.PlacementConfig{
			Policy:        *placePolicy,
			Eps:           *placeEps,
			PadFactor:     *placeFactor,
			Strategy:      *placeStrategy,
			MaxColocation: *placeColoc,
			MaxInFlight:   *placeInFlight,
			Window:        *placeWindow,
			MaxWave:       *placeMaxWave,
			WaveChunk:     *placeChunk,
			Replicas:      *placeReplicas,
			Shards:        *placeShards,
			TraceDepth:    *traceDep,
			ScoreCache:    *placeCache,
			ScoreCacheCap: *placeCacheCap,

			DegradedPenalty: *placePenalty,
			Breaker: sched.BreakerConfig{
				Threshold: *breakerThreshold,
				Window:    *breakerWindow,
				Probation: *breakerProbation,
			},
		})
		if err != nil {
			srv.Close()
			log.Fatal(err)
		}
		log.Printf("placement enabled: policy=%s strategy=%s platforms=%d",
			*placePolicy, *placeStrategy, info.Platforms)
	}

	handler := serve.NewHandler(srv)
	if *pprofOn {
		// Explicit mux instead of importing pprof for its DefaultServeMux
		// side effect: profiling stays opt-in and off the default surface.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Print("pprof enabled under /debug/pprof/")
	}

	// Graceful shutdown: stop accepting, drain in-flight HTTP requests,
	// then drain the micro-batcher. log.Fatal skips defers, so the
	// teardown is explicit.
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (build=%s window=%v max-batch=%d max-queue=%d)",
		*addr, buildVersion, *window, *maxBatch, *maxQueue)
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		srv.Close()
		log.Fatal(err)
	}
	<-done
	srv.Close()
	log.Print("drained")
}

// persist writes the trained predictor with SaveModel.
func persist(pred *pitot.Predictor, meanPath, quantPath string) error {
	mw, err := os.Create(meanPath)
	if err != nil {
		return err
	}
	defer mw.Close()
	var qw *os.File
	if quantPath != "" && pred.Info().Bounds {
		if qw, err = os.Create(quantPath); err != nil {
			return err
		}
		defer qw.Close()
	}
	if qw != nil {
		err = pred.SaveModel(mw, qw)
	} else {
		err = pred.SaveModel(mw, nil)
	}
	if err != nil {
		return fmt.Errorf("save model: %w", err)
	}
	return nil
}
