// Command embed trains a Pitot model and exports 2-D t-SNE coordinates of
// the learned workload and platform embeddings (paper Fig. 7 / 12a–c) as
// CSV, with labels for coloring.
//
// Usage:
//
//	embed [-seed 1] [-steps 1500] [-workloads 80] [-devices 10] [-out-prefix emb]
//
// Writes <prefix>-workloads.csv (name,suite,x,y) and
// <prefix>-platforms.csv (name,runtime,arch,x,y).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/tsne"
	"repro/internal/wasmcluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("embed: ")
	seed := flag.Int64("seed", 1, "seed")
	steps := flag.Int("steps", 1500, "training steps")
	workloads := flag.Int("workloads", 80, "workloads")
	devices := flag.Int("devices", 10, "devices")
	prefix := flag.String("out-prefix", "emb", "output CSV prefix")
	flag.Parse()

	ds := wasmcluster.New(wasmcluster.Config{
		Seed: *seed, NumWorkloads: *workloads, MaxDevices: *devices, SetsPerDegree: 30,
	}).Generate()
	cfg := core.DefaultConfig(*seed)
	cfg.Steps = *steps
	m, err := core.NewModel(cfg, ds)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.9)
	split.EnsureCoverage(ds)
	if _, err := m.Train(split); err != nil {
		log.Fatal(err)
	}

	write := func(path string, header []string, rows [][]string) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			log.Fatal(err)
		}
		if err := w.WriteAll(rows); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
	}

	wy := tsne.Embed(m.WorkloadEmbeddings(0), tsne.Config{Seed: *seed})
	var wrows [][]string
	for i := 0; i < wy.Rows; i++ {
		wrows = append(wrows, []string{
			ds.WorkloadNames[i], ds.WorkloadSuites[i],
			fmt.Sprintf("%.4f", wy.At(i, 0)), fmt.Sprintf("%.4f", wy.At(i, 1)),
		})
	}
	write(*prefix+"-workloads.csv", []string{"name", "suite", "x", "y"}, wrows)
	fmt.Printf("workload suite kNN purity: %.2f\n",
		tsne.KNNPurity(wy, ds.WorkloadSuites, 5))

	py := tsne.Embed(m.PlatformEmbeddings(), tsne.Config{Seed: *seed})
	var prows [][]string
	for i := 0; i < py.Rows; i++ {
		prows = append(prows, []string{
			ds.PlatformNames[i], ds.PlatformRuntimes[i], ds.PlatformArchs[i],
			fmt.Sprintf("%.4f", py.At(i, 0)), fmt.Sprintf("%.4f", py.At(i, 1)),
		})
	}
	write(*prefix+"-platforms.csv", []string{"name", "runtime", "arch", "x", "y"}, prows)
	fmt.Printf("platform runtime kNN purity: %.2f\n",
		tsne.KNNPurity(py, ds.PlatformRuntimes, 5))
}
