// Command schedsim runs the end-to-end orchestration experiment: train
// Pitot on a synthetic cluster, place a stream of deadline jobs with
// several policies (mean estimate, padded mean, conformal bound), then
// replay each placement against the ground-truth runtime model and report
// deadline-miss rates — the paper's motivating application (§1)
// quantified.
//
// Usage:
//
//	schedsim [-seed 1] [-jobs 60] [-eps 0.1] [-steps 1200]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	pitot "repro"
	"repro/internal/sched"
	"repro/internal/wasmcluster"
)

// oracle adapts the ground-truth cluster to sched.Oracle.
type oracle struct {
	c   *wasmcluster.Cluster
	rng *rand.Rand
}

func (o *oracle) TrueSeconds(w, p int, ks []int) float64 {
	return o.c.MeasureSeconds(o.rng, w, p, ks)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedsim: ")
	seed := flag.Int64("seed", 1, "seed")
	jobs := flag.Int("jobs", 60, "number of jobs to place")
	eps := flag.Float64("eps", 0.1, "per-job deadline-miss budget for the bound policy")
	steps := flag.Int("steps", 1200, "training steps")
	flag.Parse()

	cluster := wasmcluster.New(wasmcluster.Config{
		Seed: *seed, NumWorkloads: 40, MaxDevices: 8, SetsPerDegree: 25,
	})
	ds := cluster.Generate()
	cfg := pitot.DefaultModelConfig(*seed)
	cfg.Steps = *steps
	pred, err := pitot.Train(ds, pitot.Options{Seed: *seed, Model: &cfg, EnableBounds: true})
	if err != nil {
		log.Fatal(err)
	}

	// Jobs: random workloads with deadlines drawn a bit above their median
	// cluster-wide runtime, so placement quality matters.
	jrng := rand.New(rand.NewSource(*seed + 7))
	var stream []sched.Job
	for i := 0; i < *jobs; i++ {
		w := jrng.Intn(ds.NumWorkloads())
		p := jrng.Intn(ds.NumPlatforms())
		deadline := pred.Estimate(w, p, nil) * (1.5 + jrng.Float64()*2)
		stream = append(stream, sched.Job{Workload: w, Deadline: deadline})
	}

	policies := []sched.Policy{
		sched.MeanPolicy{},
		sched.PaddedMeanPolicy{Factor: 1.3},
		sched.BoundPolicy{Eps: *eps},
	}
	fmt.Printf("placing %d jobs on %d platforms; bound policy targets ≤%.0f%% misses\n\n",
		*jobs, ds.NumPlatforms(), 100**eps)
	fmt.Printf("%-16s %8s %9s %10s %10s\n", "policy", "placed", "unplaced", "miss-rate", "headroom")
	for _, pol := range policies {
		s, err := sched.New(sched.Config{NumPlatforms: ds.NumPlatforms(), MaxColocation: 4}, pol, pred)
		if err != nil {
			log.Fatal(err)
		}
		as := s.PlaceAll(stream)
		out := sched.Simulate(pol.Name(), as, &oracle{cluster, rand.New(rand.NewSource(*seed + 99))},
			s.Residents, 25)
		fmt.Printf("%-16s %8d %9d %9.1f%% %9.1f%%\n",
			out.Policy, out.Placed, out.Unplaced, 100*out.MissRate, 100*out.AvgHeadroom)
	}
	fmt.Println("\nmiss-rate: fraction of placed jobs whose true runtime exceeded the deadline")
	fmt.Println("headroom:  mean unused fraction of the deadline (high = overprovisioned)")
}
