// Command schedsim runs the end-to-end orchestration experiment: train
// Pitot on a synthetic cluster, then drive the event-driven scheduler with
// a streaming Poisson arrival process — placements occupy colocation slots
// until their true runtime (drawn from the ground-truth cluster model)
// elapses and the departure frees the slot. Several policies (mean
// estimate, padded mean, conformal bound) and placement strategies are
// swept over parallel replay trials, and with -feedback the measured
// runtimes of completed jobs are fed back into the predictor online
// (Observe), demonstrating the closed predict → place → measure → observe
// loop of the paper's motivating application (§1, §6).
//
// Usage:
//
//	schedsim [-seed 1] [-jobs 200] [-eps 0.1] [-steps 1200]
//	         [-policy all] [-strategy least-loaded]
//	         [-arrival-rate 2] [-trials 4]
//	         [-colocation 4] [-max-inflight 0] [-chunk 0]
//	         [-retry-limit 3]
//	         [-feedback] [-feedback-every 25] [-feedback-interval 0]
//
// Flags:
//
//	-policy            comma-separated subset of mean,padded,bound,
//	                   mean-bound,padded-bound — or "all"
//	-strategy          least-loaded, best-fit, or utilization
//	-arrival-rate      mean job arrivals per simulated second (Poisson)
//	-trials            independent replays (run in parallel; aggregated)
//	-chunk             jobs placed per scheduler-lock hold (0 default,
//	                   negative = whole wave)
//	-retry-limit       re-queue failed placements for up to N retries after
//	                   subsequent completions (0 drops them immediately)
//	-feedback          additionally run the bound policy with online feedback
//	                   and report its miss rate after the Observe updates
//	-feedback-every    flush measured runtimes to Observe every N completions
//	-feedback-interval also flush whenever this many simulated seconds
//	                   passed since the last flush (0 = count trigger only),
//	                   amortizing Observe cost on sparse completion streams
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	pitot "repro"
	"repro/internal/sched"
	"repro/internal/wasmcluster"
)

// oracle adapts the ground-truth cluster to sched.Oracle.
type oracle struct {
	c   *wasmcluster.Cluster
	rng *rand.Rand
}

func (o *oracle) TrueSeconds(w, p int, ks []int) float64 {
	return o.c.MeasureSeconds(o.rng, w, p, ks)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedsim: ")
	var (
		seed        = flag.Int64("seed", 1, "seed")
		jobs        = flag.Int("jobs", 200, "number of arriving jobs per trial")
		eps         = flag.Float64("eps", 0.1, "per-job deadline-miss budget for the bound policy")
		steps       = flag.Int("steps", 1200, "training steps")
		policyFlag  = flag.String("policy", "all", "comma-separated policies: mean,padded,bound (or all)")
		stratFlag   = flag.String("strategy", "least-loaded", "placement strategy: least-loaded, best-fit, utilization")
		arrivalRate = flag.Float64("arrival-rate", 2, "mean arrivals per simulated second")
		trials      = flag.Int("trials", 4, "independent replay trials (parallel)")
		coloc       = flag.Int("colocation", 4, "max workloads per platform")
		maxInFlight = flag.Int("max-inflight", 0, "admission bound on in-flight jobs (0 = capacity only)")
		chunk       = flag.Int("chunk", 0, "jobs placed per scheduler-lock hold (0 = default, negative = whole wave)")
		retryLimit  = flag.Int("retry-limit", 3, "retry failed placements after later completions, up to N attempts each (0 = drop)")
		feedback    = flag.Bool("feedback", false, "run the bound policy with online Observe feedback and compare")
		fbEvery     = flag.Int("feedback-every", 25, "feed measurements back every N completions")
		fbInterval  = flag.Float64("feedback-interval", 0, "also flush after this many simulated seconds since the last flush (0 = off)")
	)
	flag.Parse()

	cluster := wasmcluster.New(wasmcluster.Config{
		Seed: *seed, NumWorkloads: 40, MaxDevices: 8, SetsPerDegree: 25,
	})
	ds := cluster.Generate()
	cfg := pitot.DefaultModelConfig(*seed)
	cfg.Steps = *steps
	pred, err := pitot.Train(ds, pitot.Options{Seed: *seed, Model: &cfg, EnableBounds: true})
	if err != nil {
		log.Fatal(err)
	}

	strategy, err := sched.ParseStrategy(*stratFlag)
	if err != nil {
		log.Fatal(err)
	}
	var policies []sched.Policy
	names := *policyFlag
	if names == "all" {
		names = "mean,padded,bound,mean-bound,padded-bound"
	}
	for _, n := range strings.Split(names, ",") {
		pol, err := sched.ParsePolicy(strings.TrimSpace(n), *eps, 1.3)
		if err != nil {
			log.Fatal(err)
		}
		policies = append(policies, pol)
	}

	// Per-trial job streams, frozen against the initial model so every
	// policy (and the feedback arm, whose estimates drift as the model
	// updates) places the identical workload/deadline sequence.
	streams := make([][]sched.Job, *trials)
	for tr := range streams {
		jrng := rand.New(rand.NewSource(*seed + 7 + int64(tr)*1013))
		streams[tr] = make([]sched.Job, *jobs)
		for i := range streams[tr] {
			w := jrng.Intn(ds.NumWorkloads())
			p := jrng.Intn(ds.NumPlatforms())
			streams[tr][i] = sched.Job{
				Workload: w,
				Deadline: pred.Estimate(w, p, nil) * (1.5 + 2*jrng.Float64()),
			}
		}
	}

	scfg := sched.StreamConfig{Jobs: *jobs, ArrivalRate: *arrivalRate, RetryLimit: *retryLimit}
	runTrial := func(pol sched.Policy, obs sched.Observer, fbEvery int, fbInterval float64) func(tr int) (sched.StreamResult, error) {
		return func(tr int) (sched.StreamResult, error) {
			s, err := sched.New(sched.Config{
				NumPlatforms:  ds.NumPlatforms(),
				MaxColocation: *coloc,
				MaxInFlight:   *maxInFlight,
				WaveChunk:     *chunk,
				Strategy:      strategy,
			}, pol, pred)
			if err != nil {
				return sched.StreamResult{}, err
			}
			cfg := scfg
			cfg.FeedbackEvery = fbEvery
			cfg.FeedbackInterval = fbInterval
			stream := streams[tr]
			source := func(_ *rand.Rand, i int) sched.Job { return stream[i] }
			orc := &oracle{cluster, rand.New(rand.NewSource(*seed + 99 + int64(tr)*509))}
			return sched.Stream(cfg, s, orc, source, obs, rand.New(rand.NewSource(*seed+31+int64(tr)*271)))
		}
	}

	fmt.Printf("streaming %d jobs/trial x %d trials at rate %.1f/s on %d platforms (strategy %s, retry-limit %d); bound targets <=%.0f%% misses\n\n",
		*jobs, *trials, *arrivalRate, ds.NumPlatforms(), strategy.Name(), *retryLimit, 100**eps)
	fmt.Printf("%-24s %8s %9s %9s %10s %9s %8s %9s\n",
		"policy", "placed", "unplaced", "rejected", "miss-rate", "headroom", "retried", "retry-ok")
	sweep := map[string]sched.StreamResult{}
	for _, pol := range policies {
		_, agg, err := sched.StreamTrials(*trials, true, runTrial(pol, nil, 0, 0))
		if err != nil {
			log.Fatal(err)
		}
		sweep[agg.Policy] = agg
		retryOK := "-"
		if agg.RetryQueued > 0 {
			retryOK = fmt.Sprintf("%.1f%%", 100*agg.RetryRate)
		}
		fmt.Printf("%-24s %8d %9d %9d %9.1f%% %8.1f%% %8d %9s\n",
			agg.Policy, agg.Placed, agg.Unplaced, agg.Rejected, 100*agg.MissRate, 100*agg.AvgHeadroom,
			agg.RetryQueued, retryOK)
	}
	fmt.Println("\nmiss-rate: fraction of placed jobs whose true runtime exceeded the deadline")
	fmt.Println("headroom:  mean unused fraction of the deadline (high = overprovisioned)")
	fmt.Println("retried:   jobs that entered the deferral queue after a failed placement;")
	fmt.Println("retry-ok:  share of them eventually placed by a retry (the retry success rate)")

	if *feedback {
		switch {
		case *fbInterval > 0 && *fbEvery > 0:
			fmt.Printf("\n-- online feedback (bound policy, observe every %d completions or %.1f sim-seconds) --\n", *fbEvery, *fbInterval)
		case *fbInterval > 0:
			fmt.Printf("\n-- online feedback (bound policy, observe every %.1f sim-seconds) --\n", *fbInterval)
		default:
			fmt.Printf("\n-- online feedback (bound policy, observe every %d completions) --\n", *fbEvery)
		}
		bound := sched.BoundPolicy{Eps: *eps}
		// The no-feedback arm is seeded identically to the sweep, so reuse
		// its aggregate when the sweep already ran the bound policy.
		without, ok := sweep[bound.Name()]
		if !ok {
			_, without, err = sched.StreamTrials(*trials, true, runTrial(bound, nil, 0, 0))
			if err != nil {
				log.Fatal(err)
			}
		}
		v0 := pred.Version()
		// Feedback trials run sequentially: Observe mutates the shared
		// predictor, so this arm is one continually-learning deployment.
		_, with, err := sched.StreamTrials(*trials, false, runTrial(bound, pred, *fbEvery, *fbInterval))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("without feedback: miss-rate %5.1f%%  headroom %5.1f%%\n",
			100*without.MissRate, 100*without.AvgHeadroom)
		fmt.Printf("with feedback:    miss-rate %5.1f%%  headroom %5.1f%%  (observed %d runtimes, snapshot v%d -> v%d)\n",
			100*with.MissRate, 100*with.AvgHeadroom, with.Observed, v0, pred.Version())
		if with.PostPlaced == 0 {
			fmt.Printf("no placements landed after an Observe update (%d measurements observed; "+
				"need >= %d completions per flush) — no post-update miss-rate to report\n",
				with.Observed, *fbEvery)
			return
		}
		verdict := "AT OR UNDER"
		if with.PostMissRate > *eps {
			verdict = "ABOVE"
		}
		fmt.Printf("post-update miss-rate %.1f%% over %d placements — %s the eps budget (%.0f%%)\n",
			100*with.PostMissRate, with.PostPlaced, verdict, 100**eps)
	}
}
