// Command schedsim runs the end-to-end orchestration experiment: train
// Pitot on a synthetic cluster, then drive the event-driven scheduler with
// a streaming Poisson arrival process — placements occupy colocation slots
// until their true runtime (drawn from the ground-truth cluster model)
// elapses and the departure frees the slot. Several policies (mean
// estimate, padded mean, conformal bound) and placement strategies are
// swept over parallel replay trials, and with -feedback the measured
// runtimes of completed jobs are fed back into the predictor online
// (Observe), demonstrating the closed predict → place → measure → observe
// loop of the paper's motivating application (§1, §6).
//
// With -chaos, a seeded failure injector cycles platforms (or correlated
// failure groups) down and back up on exponential MTTF/MTTR clocks:
// failing a platform orphans its resident jobs into a high-priority
// reschedule queue, completions feed a per-platform circuit breaker that
// quarantines platforms whose observed miss rate crosses a threshold, and
// a failure scorecard reports orphan-reschedule latency, the miss rate
// during failure windows, and breaker trip/recovery counts. Job
// conservation (arrived == completed + shed, nothing lost or duplicated)
// is checked per trial and fatal on violation.
//
// With -replicas N, the streaming simulation is replaced by the replica
// scaling bench: for each point on the doubling curve 1,2,...,N, that many
// scheduler replicas place jobs concurrently against one shared
// snapshot-isolated slot store, in both sharded (platforms partitioned
// across replicas) and shared-pool (every replica sees every platform,
// conflicts resolved by optimistic commit/retry) modes. The curve —
// aggregate throughput, speedup, conflict-retry rate, sheds — is printed
// and optionally written as JSON with -bench-json; -require-conflict-max
// turns the shared-pool conflict rate into a CI gate.
//
// Usage:
//
//	schedsim [-seed 1] [-jobs 200] [-eps 0.1] [-steps 1200]
//	         [-policy all] [-strategy least-loaded]
//	         [-arrival-rate 2] [-trials 4] [-cluster-devices 8]
//	         [-colocation 4] [-max-inflight 0] [-chunk 0]
//	         [-retry-limit 3] [-retry-backoff 0] [-retry-backoff-max 0]
//	         [-chaos] [-mttf 60] [-mttr 8] [-chaos-groups "0,1;2,3"]
//	         [-chaos-degrade 0.25] [-chaos-seed 0] [-degraded-penalty 0]
//	         [-breaker-threshold 0] [-breaker-window 20]
//	         [-breaker-probation 3] [-breaker-cooldown 30] [-require-trip]
//	         [-feedback] [-feedback-every 25] [-feedback-interval 0]
//	         [-replicas 0] [-shards 0] [-replica-wave 8] [-replica-reps 3]
//	         [-cache-bench] [-cache-wave 32] [-cache-rounds 200]
//	         [-cache-churns "0.03,0.125,0.5,1"] [-cache-reps 3]
//	         [-require-hit-min 0]
//	         [-bench-json curve.json] [-require-conflict-max 0]
//	         [-trace-out trace.json] [-scorecard-json scorecard.json]
//	         [-cpuprofile prof.out]
//
// Flags:
//
//	-policy            comma-separated subset of mean,padded,bound,
//	                   mean-bound,padded-bound — or "all"
//	-strategy          least-loaded, best-fit, or utilization
//	-arrival-rate      mean job arrivals per simulated second (Poisson)
//	-trials            independent replays (run in parallel; aggregated)
//	-chunk             jobs placed per scheduler-lock hold (0 default,
//	                   negative = whole wave)
//	-retry-limit       re-queue failed placements for up to N retries after
//	                   subsequent completions (0 drops them immediately)
//	-retry-backoff     space retries with capped exponential backoff and
//	                   seeded jitter (simulated seconds; 0 = retry on the
//	                   next completion); -retry-backoff-max caps the delay
//	-chaos             enable the failure injector (with -mttf/-mttr means)
//	-chaos-groups      correlated failure domains, ";"-separated platform
//	                   lists (e.g. "0,1;2,3"); empty = independent platforms
//	-chaos-degrade     probability a failure degrades (flaky) instead of
//	                   downing the platform
//	-chaos-seed        injector seed (0 derives from -seed); per-trial
//	                   offsets keep trials independent
//	-degraded-penalty  feasibility-score multiplier on degraded platforms
//	                   (0 = default 1.25)
//	-breaker-threshold quarantine a platform when its windowed miss rate
//	                   reaches this (0 disables automatic trips)
//	-breaker-cooldown  re-admit a tripped platform half-open after this
//	                   many simulated seconds
//	-require-trip      exit nonzero unless the replay demonstrated at least
//	                   one breaker trip and one half-open re-admission
//	                   (CI chaos smoke)
//	-feedback          additionally run the bound policy with online feedback
//	                   and report its miss rate after the Observe updates
//	-feedback-every    flush measured runtimes to Observe every N completions
//	-feedback-interval also flush whenever this many simulated seconds
//	                   passed since the last flush (0 = count trigger only),
//	                   amortizing Observe cost on sparse completion streams
//	-replicas          switch to the replica scaling bench with this many
//	                   max replicas (0 = normal streaming simulation)
//	-shards            platform shards: 0 = auto (one per replica, plus a
//	                   shared-pool curve), 1 = shared pool only
//	-replica-wave      jobs each replica places per wave (completing the
//	                   wave before the next bounds in-flight)
//	-replica-reps      timed repetitions per scaling point; best reported
//	-cache-bench       switch to the score-cache bench: identical wave
//	                   streams placed with the memoized scoring path off and
//	                   on across a churn-rate sweep, decisions asserted
//	                   bitwise identical, speedup and hit rate reported
//	-cache-wave        jobs per wave in the cache bench
//	-cache-rounds      waves per timed run
//	-cache-churns      comma-separated churn fractions in (0,1]: the share
//	                   of each wave that places and completes
//	-cache-reps        timed repetitions per churn point; best reported
//	-require-hit-min   exit nonzero when the lowest-churn point's cache hit
//	                   rate falls below this fraction (CI gate; 0 = off)
//	-cluster-devices   device types in the synthetic cluster (scan cost per
//	                   placement grows with the ~10 platforms per device)
//	-bench-json        write the machine-readable curve to this file as JSON
//	                   (replica scaling, score-cache, or the streaming
//	                   policy sweep, depending on mode)
//	-require-conflict-max  exit nonzero when the shared-pool conflict-retry
//	                   rate exceeds this fraction (CI gate; 0 = off)
//	-trace-out         attach a flight recorder to the first policy's first
//	                   trial and dump it as Chrome trace-event JSON (open in
//	                   chrome://tracing or Perfetto); the artifact is
//	                   re-read and its placement lifecycle checked for
//	                   conservation before exit
//	-scorecard-json    write the per-trial failure/retry/miss scorecard of
//	                   every swept policy to this file as JSON
//	-cpuprofile        write a pprof CPU profile of the run
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	pitot "repro"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/wasmcluster"
)

// validateFlags rejects nonsensical flag combinations up front with a
// usage error (exit 2) instead of a mid-run panic or a silently absurd
// simulation.
func validateFlags(
	jobs int, eps float64, steps int, arrivalRate float64, trials, coloc, maxInFlight int,
	retryLimit int, retryBO, retryBOMax float64,
	chaosOn bool, mttf, mttr, chaosDeg float64, requireTrip bool,
	brThreshold float64, brWindow, brProbation int, brCooldown float64,
	feedback bool, fbEvery int, fbInterval float64,
	replicas, shards, replicaWave, replicaReps int, reqConflictMax float64,
	cacheBench bool, cacheWave, cacheRounds, cacheReps int, reqHitMin float64,
	clusterDevices int, traceOut, scorecardJSON string,
) error {
	switch {
	case jobs < 1:
		return fmt.Errorf("-jobs must be >= 1 (got %d)", jobs)
	case eps <= 0 || eps >= 1:
		return fmt.Errorf("-eps must be in (0,1) (got %g)", eps)
	case steps < 1:
		return fmt.Errorf("-steps must be >= 1 (got %d)", steps)
	case arrivalRate <= 0:
		return fmt.Errorf("-arrival-rate must be > 0 (got %g)", arrivalRate)
	case trials < 1:
		return fmt.Errorf("-trials must be >= 1 (got %d)", trials)
	case coloc < 1:
		return fmt.Errorf("-colocation must be >= 1 (got %d)", coloc)
	case maxInFlight < 0:
		return fmt.Errorf("-max-inflight must be >= 0 (got %d)", maxInFlight)
	case retryLimit < 0:
		return fmt.Errorf("-retry-limit must be >= 0 (got %d)", retryLimit)
	case retryBO < 0:
		return fmt.Errorf("-retry-backoff must be >= 0 (got %g)", retryBO)
	case retryBOMax < 0:
		return fmt.Errorf("-retry-backoff-max must be >= 0 (got %g)", retryBOMax)
	case retryBOMax > 0 && retryBOMax < retryBO:
		return fmt.Errorf("-retry-backoff-max (%g) must be >= -retry-backoff (%g)", retryBOMax, retryBO)
	case chaosOn && mttf <= 0:
		return fmt.Errorf("-chaos needs -mttf > 0 (got %g)", mttf)
	case chaosOn && mttr <= 0:
		return fmt.Errorf("-chaos needs -mttr > 0 (got %g)", mttr)
	case chaosDeg < 0 || chaosDeg > 1:
		return fmt.Errorf("-chaos-degrade must be in [0,1] (got %g)", chaosDeg)
	case requireTrip && !chaosOn:
		return fmt.Errorf("-require-trip needs -chaos (no failures means no breaker trips)")
	case brThreshold < 0 || brThreshold >= 1:
		return fmt.Errorf("-breaker-threshold must be in [0,1) (got %g)", brThreshold)
	case brWindow < 1:
		return fmt.Errorf("-breaker-window must be >= 1 (got %d)", brWindow)
	case brProbation < 0:
		return fmt.Errorf("-breaker-probation must be >= 0 (got %d)", brProbation)
	case brCooldown < 0:
		return fmt.Errorf("-breaker-cooldown must be >= 0 (got %g)", brCooldown)
	case feedback && fbEvery < 1:
		return fmt.Errorf("-feedback needs -feedback-every >= 1 (got %d)", fbEvery)
	case fbInterval < 0:
		return fmt.Errorf("-feedback-interval must be >= 0 (got %g)", fbInterval)
	case replicas < 0:
		return fmt.Errorf("-replicas must be >= 0 (got %d)", replicas)
	case shards < 0:
		return fmt.Errorf("-shards must be >= 0 (got %d)", shards)
	case shards > 0 && replicas == 0:
		return fmt.Errorf("-shards needs -replicas > 0")
	case replicaWave < 1:
		return fmt.Errorf("-replica-wave must be >= 1 (got %d)", replicaWave)
	case replicaReps < 1:
		return fmt.Errorf("-replica-reps must be >= 1 (got %d)", replicaReps)
	case reqConflictMax < 0 || reqConflictMax > 1:
		return fmt.Errorf("-require-conflict-max must be in [0,1] (got %g)", reqConflictMax)
	case reqConflictMax > 0 && replicas == 0:
		return fmt.Errorf("-require-conflict-max needs -replicas > 0")
	case cacheBench && replicas > 0:
		return fmt.Errorf("-cache-bench and the -replicas bench are separate modes; pick one")
	case cacheBench && chaosOn:
		return fmt.Errorf("-cache-bench times a deterministic wave stream; it cannot combine with -chaos")
	case cacheBench && feedback:
		return fmt.Errorf("-cache-bench needs a frozen predictor; it cannot combine with -feedback")
	case cacheBench && traceOut != "":
		return fmt.Errorf("-trace-out records the streaming simulation; it cannot combine with -cache-bench")
	case cacheBench && scorecardJSON != "":
		return fmt.Errorf("-scorecard-json reports streaming trials; use -bench-json for the -cache-bench curve")
	case cacheWave < 1:
		return fmt.Errorf("-cache-wave must be >= 1 (got %d)", cacheWave)
	case cacheRounds < 1:
		return fmt.Errorf("-cache-rounds must be >= 1 (got %d)", cacheRounds)
	case cacheReps < 1:
		return fmt.Errorf("-cache-reps must be >= 1 (got %d)", cacheReps)
	case reqHitMin < 0 || reqHitMin > 1:
		return fmt.Errorf("-require-hit-min must be in [0,1] (got %g)", reqHitMin)
	case reqHitMin > 0 && !cacheBench:
		return fmt.Errorf("-require-hit-min needs -cache-bench")
	case clusterDevices < 1 || clusterDevices > 24:
		return fmt.Errorf("-cluster-devices must be in [1,24] (got %d)", clusterDevices)
	case traceOut != "" && replicas > 0:
		return fmt.Errorf("-trace-out records the streaming simulation; it cannot combine with the -replicas bench")
	case scorecardJSON != "" && replicas > 0:
		return fmt.Errorf("-scorecard-json reports streaming trials; use -bench-json for the -replicas bench")
	}
	return nil
}

// oracle adapts the ground-truth cluster to sched.Oracle.
type oracle struct {
	c   *wasmcluster.Cluster
	rng *rand.Rand
}

func (o *oracle) TrueSeconds(w, p int, ks []int) float64 {
	return o.c.MeasureSeconds(o.rng, w, p, ks)
}

// parseGroups parses the -chaos-groups syntax: ";"-separated groups of
// ","-separated platform indices, e.g. "0,1;2,3". Empty means nil
// (independent per-platform failures).
func parseGroups(s string, platforms int) ([][]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var groups [][]int
	for _, gs := range strings.Split(s, ";") {
		gs = strings.TrimSpace(gs)
		if gs == "" {
			continue
		}
		var g []int
		for _, ps := range strings.Split(gs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(ps))
			if err != nil {
				return nil, fmt.Errorf("chaos-groups: bad platform index %q: %v", ps, err)
			}
			if p < 0 || p >= platforms {
				return nil, fmt.Errorf("chaos-groups: platform %d out of range [0,%d)", p, platforms)
			}
			g = append(g, p)
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	return groups, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedsim: ")
	var (
		seed        = flag.Int64("seed", 1, "seed")
		jobs        = flag.Int("jobs", 200, "number of arriving jobs per trial")
		eps         = flag.Float64("eps", 0.1, "per-job deadline-miss budget for the bound policy")
		steps       = flag.Int("steps", 1200, "training steps")
		policyFlag  = flag.String("policy", "all", "comma-separated policies: mean,padded,bound (or all)")
		stratFlag   = flag.String("strategy", "least-loaded", "placement strategy: least-loaded, best-fit, utilization")
		arrivalRate = flag.Float64("arrival-rate", 2, "mean arrivals per simulated second")
		trials      = flag.Int("trials", 4, "independent replay trials (parallel)")
		coloc       = flag.Int("colocation", 4, "max workloads per platform")
		maxInFlight = flag.Int("max-inflight", 0, "admission bound on in-flight jobs (0 = capacity only)")
		chunk       = flag.Int("chunk", 0, "jobs placed per scheduler-lock hold (0 = default, negative = whole wave)")
		retryLimit  = flag.Int("retry-limit", 3, "retry failed placements after later completions, up to N attempts each (0 = drop)")
		retryBO     = flag.Float64("retry-backoff", 0, "base retry backoff in simulated seconds, doubled per attempt with seeded jitter (0 = retry on next completion)")
		retryBOMax  = flag.Float64("retry-backoff-max", 0, "cap on the exponential retry backoff (0 = uncapped)")
		chaosOn     = flag.Bool("chaos", false, "enable the seeded platform-failure injector")
		mttf        = flag.Float64("mttf", 60, "mean simulated seconds between a failure group's repair and next failure")
		mttr        = flag.Float64("mttr", 8, "mean simulated seconds from failure to repair")
		chaosGroups = flag.String("chaos-groups", "", `correlated failure domains as ";"-separated platform lists, e.g. "0,1;2,3" (empty = independent platforms)`)
		chaosDeg    = flag.Float64("chaos-degrade", 0.25, "probability a failure degrades (flaky) instead of downing the platform")
		chaosSeed   = flag.Int64("chaos-seed", 0, "failure injector seed (0 = derive from -seed)")
		degPenalty  = flag.Float64("degraded-penalty", 0, "feasibility-score multiplier on degraded platforms (0 = default 1.25)")
		brThreshold = flag.Float64("breaker-threshold", 0, "quarantine a platform when its windowed miss rate reaches this (0 = off)")
		brWindow    = flag.Int("breaker-window", 20, "outcomes tracked per platform for the breaker")
		brProbation = flag.Int("breaker-probation", 3, "consecutive on-deadline completions to close a half-open platform")
		brCooldown  = flag.Float64("breaker-cooldown", 30, "simulated seconds before a tripped platform re-admits half-open")
		requireTrip = flag.Bool("require-trip", false, "exit nonzero unless >=1 breaker trip and >=1 half-open re-admission occurred (CI smoke)")
		fastScoring = flag.Bool("fast-scoring", false, "score placements with the approximate fast kernel (reassociated dots, bounded-error exp)")
		feedback    = flag.Bool("feedback", false, "run the bound policy with online Observe feedback and compare")
		fbEvery     = flag.Int("feedback-every", 25, "feed measurements back every N completions")
		fbInterval  = flag.Float64("feedback-interval", 0, "also flush after this many simulated seconds since the last flush (0 = off)")

		cacheBench    = flag.Bool("cache-bench", false, "score-cache bench: identical wave streams with the memoized scoring path off and on across a churn sweep")
		cacheWave     = flag.Int("cache-wave", 32, "jobs per wave in the cache bench")
		cacheRounds   = flag.Int("cache-rounds", 200, "waves per timed cache-bench run")
		cacheChurns   = flag.String("cache-churns", "0.03,0.125,0.5,1", "comma-separated churn fractions in (0,1]: the share of each wave that places and completes")
		cacheReps     = flag.Int("cache-reps", 3, "timed repetitions per churn point; the best is reported")
		requireHitMin = flag.Float64("require-hit-min", 0, "exit nonzero when the lowest-churn point's cache hit rate falls below this fraction (0 = no gate)")

		replicas       = flag.Int("replicas", 0, "replica scaling bench: max scheduler replicas over one shared slot store (0 = normal streaming mode)")
		shards         = flag.Int("shards", 0, "platform shards across replicas (0 = auto, one shard per replica; 1 = shared pool)")
		replicaWave    = flag.Int("replica-wave", 8, "jobs per wave in the replica bench (each replica completes its wave before the next)")
		replicaReps    = flag.Int("replica-reps", 3, "timed repetitions per scaling point; the best is reported")
		benchJSON      = flag.String("bench-json", "", "write the replica scaling curve to this JSON file")
		reqConflictMax = flag.Float64("require-conflict-max", 0, "exit nonzero when the shared-pool conflict-retry rate exceeds this fraction (0 = no gate)")
		clusterDevs    = flag.Int("cluster-devices", 8, "device types in the synthetic cluster, 10 platforms each (max 24)")
		traceOut       = flag.String("trace-out", "", "dump the first policy's first trial as Chrome trace-event JSON to this file (self-validated)")
		scorecardJSON  = flag.String("scorecard-json", "", "write the per-trial failure/retry/miss scorecard to this JSON file")
		cpuProfile     = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()
	if err := validateFlags(
		*jobs, *eps, *steps, *arrivalRate, *trials, *coloc, *maxInFlight,
		*retryLimit, *retryBO, *retryBOMax,
		*chaosOn, *mttf, *mttr, *chaosDeg, *requireTrip,
		*brThreshold, *brWindow, *brProbation, *brCooldown,
		*feedback, *fbEvery, *fbInterval,
		*replicas, *shards, *replicaWave, *replicaReps, *reqConflictMax,
		*cacheBench, *cacheWave, *cacheRounds, *cacheReps, *requireHitMin,
		*clusterDevs, *traceOut, *scorecardJSON,
	); err != nil {
		fmt.Fprintf(flag.CommandLine.Output(), "schedsim: %v\n(run with -h for usage)\n", err)
		os.Exit(2)
	}
	var churns []float64
	if *cacheBench {
		// Parsed before the (expensive) training so a bad sweep fails fast.
		var err error
		if churns, err = parseChurns(*cacheChurns); err != nil {
			fmt.Fprintf(flag.CommandLine.Output(), "schedsim: %v\n(run with -h for usage)\n", err)
			os.Exit(2)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cluster := wasmcluster.New(wasmcluster.Config{
		Seed: *seed, NumWorkloads: 40, MaxDevices: *clusterDevs, SetsPerDegree: 25,
	})
	ds := cluster.Generate()
	cfg := pitot.DefaultModelConfig(*seed)
	cfg.Steps = *steps
	cfg.FastScoring = *fastScoring
	pred, err := pitot.Train(ds, pitot.Options{Seed: *seed, Model: &cfg, EnableBounds: true})
	if err != nil {
		log.Fatal(err)
	}

	strategy, err := sched.ParseStrategy(*stratFlag)
	if err != nil {
		log.Fatal(err)
	}

	if *cacheBench {
		err := runCacheBench(cacheBenchConfig{
			Cluster: ds, Pred: pred, Strategy: strategy,
			Seed: *seed, Eps: *eps, Coloc: *coloc, Chunk: *chunk,
			Wave: *cacheWave, Rounds: *cacheRounds, Churns: churns, Reps: *cacheReps,
			JSONPath: *benchJSON, HitMin: *requireHitMin,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *replicas > 0 {
		err := runReplicaBench(replicaBenchConfig{
			Cluster: ds, Pred: pred, Strategy: strategy,
			Seed: *seed, Jobs: *jobs, Eps: *eps,
			Coloc: *coloc, Chunk: *chunk,
			MaxReplicas: *replicas, Shards: *shards, Wave: *replicaWave, Reps: *replicaReps,
			JSONPath: *benchJSON, ConflictMax: *reqConflictMax,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	var policies []sched.Policy
	names := *policyFlag
	if names == "all" {
		names = "mean,padded,bound,mean-bound,padded-bound"
	}
	for _, n := range strings.Split(names, ",") {
		pol, err := sched.ParsePolicy(strings.TrimSpace(n), *eps, 1.3)
		if err != nil {
			log.Fatal(err)
		}
		policies = append(policies, pol)
	}

	// Per-trial job streams, frozen against the initial model so every
	// policy (and the feedback arm, whose estimates drift as the model
	// updates) places the identical workload/deadline sequence.
	streams := make([][]sched.Job, *trials)
	for tr := range streams {
		jrng := rand.New(rand.NewSource(*seed + 7 + int64(tr)*1013))
		streams[tr] = make([]sched.Job, *jobs)
		for i := range streams[tr] {
			w := jrng.Intn(ds.NumWorkloads())
			p := jrng.Intn(ds.NumPlatforms())
			streams[tr][i] = sched.Job{
				Workload: w,
				Deadline: pred.Estimate(w, p, nil) * (1.5 + 2*jrng.Float64()),
			}
		}
	}

	groups, err := parseGroups(*chaosGroups, ds.NumPlatforms())
	if err != nil {
		log.Fatal(err)
	}
	injectorSeed := *chaosSeed
	if injectorSeed == 0 {
		injectorSeed = *seed + 17
	}
	scfg := sched.StreamConfig{
		Jobs: *jobs, ArrivalRate: *arrivalRate, RetryLimit: *retryLimit,
		RetryBackoff: *retryBO, RetryBackoffMax: *retryBOMax,
		BreakerCooldown: *brCooldown,
	}
	// rec, when non-nil, is attached to trial 0 only: one trial's complete
	// event stream beats fragments of several interleaved ones, and the
	// parallel trials would otherwise share (and overflow) the ring.
	runTrial := func(pol sched.Policy, observer sched.Observer, fbEvery int, fbInterval float64, rec *obs.Recorder) func(tr int) (sched.StreamResult, error) {
		return func(tr int) (sched.StreamResult, error) {
			s, err := sched.New(sched.Config{
				NumPlatforms:    ds.NumPlatforms(),
				MaxColocation:   *coloc,
				MaxInFlight:     *maxInFlight,
				WaveChunk:       *chunk,
				Strategy:        strategy,
				DegradedPenalty: *degPenalty,
				Breaker: sched.BreakerConfig{
					Window:    *brWindow,
					Threshold: *brThreshold,
					Probation: *brProbation,
				},
			}, pol, pred)
			if err != nil {
				return sched.StreamResult{}, err
			}
			cfg := scfg
			cfg.FeedbackEvery = fbEvery
			cfg.FeedbackInterval = fbInterval
			if tr == 0 {
				cfg.Recorder = rec
			}
			if *chaosOn {
				cfg.Chaos = &sched.ChaosConfig{
					MTTF: *mttf, MTTR: *mttr, Groups: groups,
					DegradeProb: *chaosDeg,
					Seed:        injectorSeed + int64(tr)*7919,
				}
			}
			stream := streams[tr]
			source := func(_ *rand.Rand, i int) sched.Job { return stream[i] }
			orc := &oracle{cluster, rand.New(rand.NewSource(*seed + 99 + int64(tr)*509))}
			res, err := sched.Stream(cfg, s, orc, source, observer, rand.New(rand.NewSource(*seed+31+int64(tr)*271)))
			if err != nil {
				return res, err
			}
			// Job conservation: every arrival ends exactly once, every
			// placement completes or is orphaned. A violation means the
			// failure path lost or duplicated work.
			if res.Arrived != res.Completed+res.Unplaced+res.Rejected {
				return res, fmt.Errorf("job conservation violated (trial %d, %s): arrived %d != completed %d + unplaced %d + rejected %d",
					tr, pol.Name(), res.Arrived, res.Completed, res.Unplaced, res.Rejected)
			}
			if res.Placed != res.Completed+res.Orphaned {
				return res, fmt.Errorf("placement conservation violated (trial %d, %s): placed %d != completed %d + orphaned %d",
					tr, pol.Name(), res.Placed, res.Completed, res.Orphaned)
			}
			return res, nil
		}
	}

	fmt.Printf("streaming %d jobs/trial x %d trials at rate %.1f/s on %d platforms (strategy %s, retry-limit %d); bound targets <=%.0f%% misses\n",
		*jobs, *trials, *arrivalRate, ds.NumPlatforms(), strategy.Name(), *retryLimit, 100**eps)
	if *chaosOn {
		domain := "independent platforms"
		if len(groups) > 0 {
			domain = fmt.Sprintf("%d correlated groups", len(groups))
		}
		fmt.Printf("chaos: mttf %.0fs, mttr %.0fs, %s, degrade-prob %.2f, breaker threshold %.2f/window %d, cooldown %.0fs\n",
			*mttf, *mttr, domain, *chaosDeg, *brThreshold, *brWindow, *brCooldown)
	}
	fmt.Println()
	fmt.Printf("%-24s %8s %9s %9s %10s %9s %8s %9s\n",
		"policy", "placed", "unplaced", "rejected", "miss-rate", "headroom", "retried", "retry-ok")
	var recorder *obs.Recorder
	if *traceOut != "" {
		// Sized to hold a full trial: each arrival records an enqueue plus a
		// handful of score/place/complete/retry events, so 16x jobs leaves
		// slack for chaos-heavy replays (overflow downgrades validation, it
		// does not fail the run).
		recorder = obs.NewRecorder(*jobs*16 + 4096)
	}
	var card *scorecard
	if *scorecardJSON != "" {
		card = newScorecard(*seed, *jobs, *trials, ds.NumPlatforms(), strategy.Name(), *eps, *chaosOn)
	}
	sweep := map[string]sched.StreamResult{}
	var aggs []sched.StreamResult
	for i, pol := range policies {
		rec := recorder
		if i > 0 {
			rec = nil // trace the first policy only: one coherent timeline
		}
		results, agg, err := sched.StreamTrials(*trials, true, runTrial(pol, nil, 0, 0, rec))
		if err != nil {
			log.Fatal(err)
		}
		if card != nil {
			card.add(agg.Policy, agg, results)
		}
		sweep[agg.Policy] = agg
		aggs = append(aggs, agg)
		retryOK := "-"
		if agg.RetryQueued > 0 {
			retryOK = fmt.Sprintf("%.1f%%", 100*agg.RetryRate)
		}
		fmt.Printf("%-24s %8d %9d %9d %9.1f%% %8.1f%% %8d %9s\n",
			agg.Policy, agg.Placed, agg.Unplaced, agg.Rejected, 100*agg.MissRate, 100*agg.AvgHeadroom,
			agg.RetryQueued, retryOK)
	}
	fmt.Println("\nmiss-rate: fraction of completed jobs whose true runtime exceeded the deadline")
	fmt.Println("headroom:  mean unused fraction of the deadline (high = overprovisioned)")
	fmt.Println("retried:   jobs that entered the deferral queue after a failed placement;")
	fmt.Println("retry-ok:  share of them eventually placed by a retry (the retry success rate)")

	// -bench-json in streaming mode: the policy sweep as a machine-readable
	// row set, mirroring the table above.
	if *benchJSON != "" {
		type policyRow struct {
			Policy      string  `json:"policy"`
			Placed      int     `json:"placed"`
			Unplaced    int     `json:"unplaced"`
			Rejected    int     `json:"rejected"`
			MissRate    float64 `json:"miss_rate"`
			AvgHeadroom float64 `json:"avg_headroom"`
			RetryQueued int     `json:"retry_queued"`
			RetryRate   float64 `json:"retry_rate"`
		}
		sweepReport := struct {
			Bench     string      `json:"bench"`
			Platforms int         `json:"platforms"`
			Jobs      int         `json:"jobs_per_trial"`
			Trials    int         `json:"trials"`
			Strategy  string      `json:"strategy"`
			Policies  []policyRow `json:"policies"`
		}{
			Bench: "policy_stream", Platforms: ds.NumPlatforms(),
			Jobs: *jobs, Trials: *trials, Strategy: strategy.Name(),
		}
		for _, agg := range aggs {
			sweepReport.Policies = append(sweepReport.Policies, policyRow{
				Policy: agg.Policy, Placed: agg.Placed, Unplaced: agg.Unplaced,
				Rejected: agg.Rejected, MissRate: agg.MissRate, AvgHeadroom: agg.AvgHeadroom,
				RetryQueued: agg.RetryQueued, RetryRate: agg.RetryRate,
			})
		}
		if err := writeBenchJSON(*benchJSON, sweepReport); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *benchJSON)
	}

	if card != nil {
		if err := card.write(*scorecardJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nscorecard: %d policies x %d trials -> %s\n", len(card.Policies), *trials, *scorecardJSON)
	}
	if recorder != nil {
		if err := writeTrace(*traceOut, recorder); err != nil {
			log.Fatal(err)
		}
	}

	if *chaosOn {
		fmt.Println("\n-- failure scorecard (all trials) --")
		fmt.Printf("%-24s %6s %6s %8s %8s %9s %9s %6s %9s %7s %8s\n",
			"policy", "fails", "degr", "orphaned", "orph-ok", "orph-lat", "fw-miss", "trips", "readmits", "closes", "lost")
		var totalTrips, totalReadmits int
		for _, agg := range aggs {
			orphLat := "-"
			if agg.OrphanReplaced > 0 {
				orphLat = fmt.Sprintf("%.2fs", agg.OrphanLatencyMean)
			}
			fwMiss := "-"
			if agg.FailWindowPlaced > 0 {
				fwMiss = fmt.Sprintf("%.1f%%", 100*agg.FailWindowMissRate)
			}
			fmt.Printf("%-24s %6d %6d %8d %8d %9s %9s %6d %9d %7d %8d\n",
				agg.Policy, agg.Failures, agg.Degrades, agg.Orphaned, agg.OrphanReplaced,
				orphLat, fwMiss, agg.BreakerTrips, agg.BreakerReadmits, agg.BreakerCloses, agg.OrphanLost)
			totalTrips += agg.BreakerTrips
			totalReadmits += agg.BreakerReadmits
		}
		fmt.Println("\norph-ok:  orphans re-placed on a surviving platform; orph-lat: mean sim-seconds to re-place")
		fmt.Println("fw-miss:  miss rate of jobs placed while >=1 platform was impaired")
		fmt.Println("trips/readmits/closes: breaker quarantines, half-open re-admissions, probations closed healthy")
		if *requireTrip && (totalTrips < 1 || totalReadmits < 1) {
			log.Fatalf("require-trip: breaker demonstration failed (trips %d, readmits %d) — want >=1 of each",
				totalTrips, totalReadmits)
		}
	}

	if *feedback {
		switch {
		case *fbInterval > 0 && *fbEvery > 0:
			fmt.Printf("\n-- online feedback (bound policy, observe every %d completions or %.1f sim-seconds) --\n", *fbEvery, *fbInterval)
		case *fbInterval > 0:
			fmt.Printf("\n-- online feedback (bound policy, observe every %.1f sim-seconds) --\n", *fbInterval)
		default:
			fmt.Printf("\n-- online feedback (bound policy, observe every %d completions) --\n", *fbEvery)
		}
		bound := sched.BoundPolicy{Eps: *eps}
		// The no-feedback arm is seeded identically to the sweep, so reuse
		// its aggregate when the sweep already ran the bound policy.
		without, ok := sweep[bound.Name()]
		if !ok {
			_, without, err = sched.StreamTrials(*trials, true, runTrial(bound, nil, 0, 0, nil))
			if err != nil {
				log.Fatal(err)
			}
		}
		v0 := pred.Version()
		// Feedback trials run sequentially: Observe mutates the shared
		// predictor, so this arm is one continually-learning deployment.
		_, with, err := sched.StreamTrials(*trials, false, runTrial(bound, pred, *fbEvery, *fbInterval, nil))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("without feedback: miss-rate %5.1f%%  headroom %5.1f%%\n",
			100*without.MissRate, 100*without.AvgHeadroom)
		fmt.Printf("with feedback:    miss-rate %5.1f%%  headroom %5.1f%%  (observed %d runtimes, snapshot v%d -> v%d)\n",
			100*with.MissRate, 100*with.AvgHeadroom, with.Observed, v0, pred.Version())
		if with.PostPlaced == 0 {
			fmt.Printf("no placements landed after an Observe update (%d measurements observed; "+
				"need >= %d completions per flush) — no post-update miss-rate to report\n",
				with.Observed, *fbEvery)
			return
		}
		verdict := "AT OR UNDER"
		if with.PostMissRate > *eps {
			verdict = "ABOVE"
		}
		fmt.Printf("post-update miss-rate %.1f%% over %d placements — %s the eps budget (%.0f%%)\n",
			100*with.PostMissRate, with.PostPlaced, verdict, 100**eps)
	}
}
