// Machine-readable artifacts of the streaming simulation: the per-trial
// failure/retry/miss scorecard (-scorecard-json) and the flight-recorder
// Chrome trace dump (-trace-out), each self-validated before schedsim
// exits so CI can gate on them without external tooling.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/obs"
	"repro/internal/sched"
)

// scorecardRow is one replay outcome in the -scorecard-json report — a
// trial row (Trial >= 0) or the cross-trial aggregate (Trial == -1). Field
// semantics match sched.StreamResult.
type scorecardRow struct {
	Trial              int     `json:"trial"`
	Arrived            int     `json:"arrived"`
	Placed             int     `json:"placed"`
	Unplaced           int     `json:"unplaced"`
	Rejected           int     `json:"rejected"`
	Completed          int     `json:"completed"`
	Missed             int     `json:"missed"`
	MissRate           float64 `json:"miss_rate"`
	AvgHeadroom        float64 `json:"avg_headroom"`
	RetryQueued        int     `json:"retry_queued"`
	Retries            int     `json:"retries"`
	RetryPlaced        int     `json:"retry_placed"`
	Failures           int     `json:"failures,omitempty"`
	Degrades           int     `json:"degrades,omitempty"`
	Orphaned           int     `json:"orphaned,omitempty"`
	OrphanReplaced     int     `json:"orphan_replaced,omitempty"`
	OrphanLost         int     `json:"orphan_lost,omitempty"`
	OrphanLatencyMean  float64 `json:"orphan_latency_mean_s,omitempty"`
	OrphanLatencyMax   float64 `json:"orphan_latency_max_s,omitempty"`
	BreakerTrips       int     `json:"breaker_trips,omitempty"`
	BreakerReadmits    int     `json:"breaker_readmits,omitempty"`
	BreakerCloses      int     `json:"breaker_closes,omitempty"`
	FailWindowPlaced   int     `json:"fail_window_placed,omitempty"`
	FailWindowMissed   int     `json:"fail_window_missed,omitempty"`
	FailWindowMissRate float64 `json:"fail_window_miss_rate,omitempty"`
}

func toScorecardRow(trial int, r sched.StreamResult) scorecardRow {
	return scorecardRow{
		Trial:              trial,
		Arrived:            r.Arrived,
		Placed:             r.Placed,
		Unplaced:           r.Unplaced,
		Rejected:           r.Rejected,
		Completed:          r.Completed,
		Missed:             r.Missed,
		MissRate:           r.MissRate,
		AvgHeadroom:        r.AvgHeadroom,
		RetryQueued:        r.RetryQueued,
		Retries:            r.Retries,
		RetryPlaced:        r.RetryPlaced,
		Failures:           r.Failures,
		Degrades:           r.Degrades,
		Orphaned:           r.Orphaned,
		OrphanReplaced:     r.OrphanReplaced,
		OrphanLost:         r.OrphanLost,
		OrphanLatencyMean:  r.OrphanLatencyMean,
		OrphanLatencyMax:   r.OrphanLatencyMax,
		BreakerTrips:       r.BreakerTrips,
		BreakerReadmits:    r.BreakerReadmits,
		BreakerCloses:      r.BreakerCloses,
		FailWindowPlaced:   r.FailWindowPlaced,
		FailWindowMissed:   r.FailWindowMissed,
		FailWindowMissRate: r.FailWindowMissRate,
	}
}

// scorecardPolicy is one swept policy's aggregate plus its trial rows.
type scorecardPolicy struct {
	Policy    string         `json:"policy"`
	Aggregate scorecardRow   `json:"aggregate"`
	Trials    []scorecardRow `json:"trials"`
}

// scorecard is the top-level -scorecard-json document (same shape family
// as the -bench-json replica curve: a "bench" name plus run parameters).
type scorecard struct {
	Bench      string            `json:"bench"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Seed       int64             `json:"seed"`
	JobsPer    int               `json:"jobs_per_trial"`
	Trials     int               `json:"trials"`
	Platforms  int               `json:"platforms"`
	Strategy   string            `json:"strategy"`
	Eps        float64           `json:"eps"`
	Chaos      bool              `json:"chaos"`
	Policies   []scorecardPolicy `json:"policies"`
}

func newScorecard(seed int64, jobs, trials, platforms int, strategy string, eps float64, chaos bool) *scorecard {
	return &scorecard{
		Bench:      "stream_scorecard",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		JobsPer:    jobs,
		Trials:     trials,
		Platforms:  platforms,
		Strategy:   strategy,
		Eps:        eps,
		Chaos:      chaos,
	}
}

func (sc *scorecard) add(policy string, agg sched.StreamResult, trials []sched.StreamResult) {
	p := scorecardPolicy{Policy: policy, Aggregate: toScorecardRow(-1, agg)}
	for tr, r := range trials {
		p.Trials = append(p.Trials, toScorecardRow(tr, r))
	}
	sc.Policies = append(sc.Policies, p)
}

func (sc *scorecard) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		f.Close()
		return fmt.Errorf("scorecard-json: %w", err)
	}
	return f.Close()
}

// writeTrace dumps the flight recorder as a Chrome trace-event file and
// self-validates the artifact by re-reading it: the file must parse, carry
// events, and conserve the placement lifecycle (every place instant pairs
// with a complete or orphan instant). Validation is skipped with a warning
// when the ring overflowed — a truncated window cannot balance.
func writeTrace(path string, rec *obs.Recorder) error {
	evs := rec.Events()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, evs); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("trace-out: re-read: %w", err)
	}
	var trace obs.ChromeTrace
	if err := json.Unmarshal(raw, &trace); err != nil {
		return fmt.Errorf("trace-out: %s is not valid trace JSON: %w", path, err)
	}
	if len(trace.TraceEvents) == 0 {
		return fmt.Errorf("trace-out: %s contains no events", path)
	}
	counts := map[string]int{}
	spans := 0
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "i":
			counts[e.Name]++
		case "X":
			spans++
		default:
			return fmt.Errorf("trace-out: unexpected phase %q in %s", e.Ph, path)
		}
	}
	fmt.Printf("\ntrace: %d events -> %s (place %d, complete %d, orphan %d, retry %d, shed %d, spans %d)\n",
		len(trace.TraceEvents), path,
		counts["place"], counts["complete"], counts["orphan"], counts["retry"], shedCount(counts), spans)
	if rec.Dropped() > 0 {
		fmt.Printf("trace: ring overflowed (%d events dropped) — lifecycle conservation not checked\n", rec.Dropped())
		return nil
	}
	if counts["place"] == 0 {
		return fmt.Errorf("trace-out: no place events recorded")
	}
	if got, want := counts["complete"]+counts["orphan"], counts["place"]; got != want {
		return fmt.Errorf("trace-out: lifecycle not conserved: complete %d + orphan %d != place %d",
			counts["complete"], counts["orphan"], want)
	}
	return nil
}

// shedCount sums the per-reason shed instants ("shed", "shed/<reason>").
func shedCount(counts map[string]int) int {
	n := 0
	for name, c := range counts {
		if name == "shed" || len(name) > 5 && name[:5] == "shed/" {
			n += c
		}
	}
	return n
}
