package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	pitot "repro"
	"repro/internal/dataset"
	"repro/internal/sched"
)

// replicaBenchConfig drives the -replicas scaling bench: for each point R
// on the doubling curve 1,2,4,...,MaxReplicas, R scheduler replicas place
// Jobs jobs each (in waves of Wave, completing every wave before the next)
// against one shared slot store, and the aggregate placement throughput,
// conflict-retry rate, and shed count are recorded.
type replicaBenchConfig struct {
	Cluster  *dataset.Dataset
	Pred     *pitot.Predictor
	Strategy sched.Strategy

	Seed  int64
	Jobs  int // per replica, so total work scales with R
	Eps   float64
	Coloc int
	Chunk int

	MaxReplicas int
	Shards      int // 0 = auto (one shard per replica), 1 = shared pool
	Wave        int
	Reps        int // timed repetitions per point; the best is reported

	JSONPath    string
	ConflictMax float64 // gate on the shared-pool conflict rate; 0 = off
}

// benchPoint is one row of the scaling curve.
type benchPoint struct {
	Replicas int     `json:"replicas"`
	Shards   int     `json:"shards"`
	Jobs     int     `json:"jobs"`
	Placed   int     `json:"placed"`
	Unplaced int     `json:"unplaced"`
	Rejected int     `json:"rejected"`
	Seconds  float64 `json:"seconds"`
	// Throughput is placements per wall-clock second; Speedup is relative
	// to the 1-replica point of the same sharding mode.
	Throughput float64 `json:"throughput_jobs_per_sec"`
	Speedup    float64 `json:"speedup"`
	// ModeledSpeedup is R x (commits / reserve attempts): the scaling the
	// commit protocol itself permits, independent of how many cores the
	// host can actually run the replicas on.
	ModeledSpeedup float64 `json:"modeled_speedup"`
	ConflictRate   float64 `json:"conflict_rate"`
	ConflictShed   uint64  `json:"conflict_shed"`
	Rebalances     uint64  `json:"rebalances"`
}

type benchReport struct {
	Bench      string       `json:"bench"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Platforms  int          `json:"platforms"`
	JobsPerRep int          `json:"jobs_per_replica"`
	Wave       int          `json:"wave"`
	Sharded    []benchPoint `json:"sharded"`
	SharedPool []benchPoint `json:"shared_pool"`
}

// scalingPoints is the doubling curve 1,2,4,... capped at max (always
// ending exactly at max).
func scalingPoints(max int) []int {
	var pts []int
	for r := 1; r < max; r *= 2 {
		pts = append(pts, r)
	}
	return append(pts, max)
}

// runPoint measures one scaling point: nRep goroutines, each driving its
// own replica with jobs/wave-sized waves and completing every wave before
// the next (bounded in-flight, so admission never dominates the signal).
// Conservation is checked fatally, mirroring the streaming simulator.
func runPoint(cfg replicaBenchConfig, nRep, nShards int) (benchPoint, error) {
	rs, err := sched.NewReplicaSet(sched.Config{
		NumPlatforms:  cfg.Cluster.NumPlatforms(),
		MaxColocation: cfg.Coloc,
		WaveChunk:     cfg.Chunk,
		Strategy:      cfg.Strategy,
	}, sched.ReplicaConfig{Replicas: nRep, Shards: nShards}, sched.BoundPolicy{Eps: cfg.Eps}, cfg.Pred)
	if err != nil {
		return benchPoint{}, err
	}

	// Pre-generate every replica's job stream so generation cost stays
	// outside the timed region. Deadlines are generous multiples of the
	// estimate: the bench measures commit throughput, not feasibility.
	streams := make([][]sched.Job, nRep)
	for ri := range streams {
		jrng := rand.New(rand.NewSource(cfg.Seed + 1000*int64(nRep) + int64(ri)*8123))
		streams[ri] = make([]sched.Job, cfg.Jobs)
		for i := range streams[ri] {
			w := jrng.Intn(cfg.Cluster.NumWorkloads())
			p := jrng.Intn(cfg.Cluster.NumPlatforms())
			streams[ri][i] = sched.Job{
				Workload: w,
				Deadline: cfg.Pred.Estimate(w, p, nil) * (2 + 2*jrng.Float64()),
			}
		}
	}

	// Collect garbage left over from prior points so one run's allocation
	// debt is not paid inside another's timed region (what testing.B does
	// between benchmark runs).
	runtime.GC()

	var placed, unplaced, rejected, completed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for ri := 0; ri < nRep; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			rep := rs.Replica(ri)
			stream := streams[ri]
			ids := make([]sched.JobID, 0, cfg.Wave)
			for off := 0; off < len(stream); off += cfg.Wave {
				end := off + cfg.Wave
				if end > len(stream) {
					end = len(stream)
				}
				ids = ids[:0]
				for _, a := range rep.PlaceAll(stream[off:end]) {
					switch {
					case a.Rejected:
						rejected.Add(1)
					case !a.Placed():
						unplaced.Add(1)
					default:
						placed.Add(1)
						ids = append(ids, a.ID)
					}
				}
				for _, id := range ids {
					if err := rs.Complete(id); err == nil {
						completed.Add(1)
					}
				}
			}
		}(ri)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	arrived := int64(nRep * cfg.Jobs)
	if got := placed.Load() + unplaced.Load() + rejected.Load(); got != arrived {
		return benchPoint{}, fmt.Errorf("job conservation violated (R=%d S=%d): placed %d + unplaced %d + rejected %d != arrived %d",
			nRep, nShards, placed.Load(), unplaced.Load(), rejected.Load(), arrived)
	}
	if completed.Load() != placed.Load() {
		return benchPoint{}, fmt.Errorf("placement conservation violated (R=%d S=%d): completed %d != placed %d",
			nRep, nShards, completed.Load(), placed.Load())
	}
	if inf := rs.InFlight(); inf != 0 {
		return benchPoint{}, fmt.Errorf("in-flight not drained (R=%d S=%d): %d", nRep, nShards, inf)
	}

	cs := rs.ConflictStats()
	pt := benchPoint{
		Replicas: nRep,
		Shards:   rs.NumShards(),
		Jobs:     int(arrived),
		Placed:   int(placed.Load()),
		Unplaced: int(unplaced.Load()),
		Rejected: int(rejected.Load()),
		Seconds:  elapsed,
	}
	if elapsed > 0 {
		pt.Throughput = float64(placed.Load()) / elapsed
	}
	if cs.Attempts > 0 {
		pt.ConflictRate = float64(cs.Conflicts) / float64(cs.Attempts)
		pt.ModeledSpeedup = float64(nRep) * float64(cs.Attempts-cs.Conflicts) / float64(cs.Attempts)
	} else {
		pt.ModeledSpeedup = float64(nRep)
	}
	pt.ConflictShed = cs.Shed
	pt.Rebalances = cs.Rebalances
	return pt, nil
}

// runCurve measures the full scaling curve for one sharding mode and fills
// in speedups relative to its own 1-replica baseline. Each point runs Reps
// times and reports the best repetition — the standard defense against GC
// and frequency-scaling noise on a shared host.
func runCurve(cfg replicaBenchConfig, nShards int, label string) ([]benchPoint, error) {
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	var pts []benchPoint
	var base float64
	for _, r := range scalingPoints(cfg.MaxReplicas) {
		pt, err := runPoint(cfg, r, nShards)
		if err != nil {
			return nil, err
		}
		for rep := 1; rep < reps; rep++ {
			again, err := runPoint(cfg, r, nShards)
			if err != nil {
				return nil, err
			}
			if again.Throughput > pt.Throughput {
				pt = again
			}
		}
		if r == 1 {
			base = pt.Throughput
		}
		if base > 0 {
			pt.Speedup = pt.Throughput / base
		}
		pts = append(pts, pt)
		fmt.Printf("%-12s %8d %7d %9d %9.2fs %11.0f %8.2fx %9.2fx %9.2f%% %6d %6d\n",
			label, r, pt.Shards, pt.Placed, pt.Seconds, pt.Throughput,
			pt.Speedup, pt.ModeledSpeedup, 100*pt.ConflictRate, pt.ConflictShed, pt.Rebalances)
	}
	return pts, nil
}

// runReplicaBench runs the replica scaling bench and optionally writes the
// curve as JSON and gates on the shared-pool conflict rate.
func runReplicaBench(cfg replicaBenchConfig) error {
	fmt.Printf("replica scaling bench: %d jobs/replica in waves of %d on %d platforms (gomaxprocs %d)\n",
		cfg.Jobs, cfg.Wave, cfg.Cluster.NumPlatforms(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s %8s %7s %9s %10s %11s %8s %9s %10s %6s %6s\n",
		"mode", "replicas", "shards", "placed", "wall", "jobs/s", "speedup", "modeled", "conflicts", "shed", "rebal")

	report := benchReport{
		Bench:      "replica_scaling",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Platforms:  cfg.Cluster.NumPlatforms(),
		JobsPerRep: cfg.Jobs,
		Wave:       cfg.Wave,
	}
	// Warm-up: one discarded single-replica run so the 1-replica baseline
	// is not penalized with cold caches and lazy allocations.
	warm := cfg
	if warm.Jobs > 200 {
		warm.Jobs = 200
	}
	if _, err := runPoint(warm, 1, 1); err != nil {
		return err
	}
	var err error
	switch {
	case cfg.Shards == 0:
		// Default: both modes. Sharded shows the candidate-scan scaling
		// (real wall-clock speedup even on one core), shared-pool exercises
		// the conflict machinery every CI run.
		if report.Sharded, err = runCurve(cfg, 0, "sharded"); err != nil {
			return err
		}
		if report.SharedPool, err = runCurve(cfg, 1, "shared-pool"); err != nil {
			return err
		}
	case cfg.Shards == 1:
		if report.SharedPool, err = runCurve(cfg, 1, "shared-pool"); err != nil {
			return err
		}
	default:
		if report.Sharded, err = runCurve(cfg, cfg.Shards, "sharded"); err != nil {
			return err
		}
	}
	fmt.Println("\nspeedup:   aggregate placement throughput relative to 1 replica (same mode)")
	fmt.Println("modeled:   R x commit success rate — the protocol-limited scaling, core-count aside")
	fmt.Println("conflicts: optimistic reservations that lost the commit race and retried")

	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", cfg.JSONPath)
	}

	if cfg.ConflictMax > 0 {
		pts := report.SharedPool
		if len(pts) == 0 {
			pts = report.Sharded
		}
		for _, pt := range pts {
			if pt.ConflictRate > cfg.ConflictMax {
				return fmt.Errorf("require-conflict-max: conflict rate %.2f%% at %d replicas exceeds the %.2f%% ceiling",
					100*pt.ConflictRate, pt.Replicas, 100*cfg.ConflictMax)
			}
		}
	}
	return nil
}
