package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	pitot "repro"
	"repro/internal/dataset"
	"repro/internal/sched"
)

// cacheBenchConfig drives the -cache-bench mode: a single scheduler places
// identical pre-generated wave streams with the score cache off and on,
// across a sweep of churn rates (the fraction of each wave that actually
// lands and completes, mutating platform slot versions). Decisions are
// asserted bitwise identical between the arms before any throughput is
// reported, so the curve can never be bought with a behavior change.
type cacheBenchConfig struct {
	Cluster  *dataset.Dataset
	Pred     *pitot.Predictor
	Strategy sched.Strategy

	Seed  int64
	Eps   float64
	Coloc int
	Chunk int

	Wave   int       // jobs per wave
	Rounds int       // waves per timed run
	Churns []float64 // fraction of each wave placed-and-completed
	Reps   int       // timed repetitions per (churn, arm); best reported

	JSONPath string
	// HitMin gates the lowest-churn point's cache hit rate (CI smoke; 0 = off).
	HitMin float64
}

// cacheBenchPoint is one churn rate on the cache-on vs cache-off curve.
type cacheBenchPoint struct {
	Churn  int `json:"churn_jobs_per_wave"`
	Placed int `json:"placed"`
	Scored int `json:"scored_jobs"`
	// ChurnRate is placed-per-wave over wave size — the x axis of the
	// hit-rate curve.
	ChurnRate  float64 `json:"churn_rate"`
	SecondsOff float64 `json:"seconds_off"`
	SecondsOn  float64 `json:"seconds_on"`
	// Placements (and scored jobs) per wall-clock second for each arm; the
	// arms place identical streams, so Speedup is also the wall-time ratio.
	PlaceRateOff float64 `json:"placements_per_sec_off"`
	PlaceRateOn  float64 `json:"placements_per_sec_on"`
	JobRateOff   float64 `json:"jobs_per_sec_off"`
	JobRateOn    float64 `json:"jobs_per_sec_on"`
	Speedup      float64 `json:"speedup"`

	HitRate       float64 `json:"hit_rate"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
}

type cacheBenchReport struct {
	Bench      string            `json:"bench"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Platforms  int               `json:"platforms"`
	Wave       int               `json:"wave"`
	Rounds     int               `json:"rounds"`
	Workloads  int               `json:"distinct_workloads"`
	Points     []cacheBenchPoint `json:"points"`
}

// cacheWorkloadPool bounds the distinct workloads in play so cross-wave
// reuse is realistic: production wave streams draw from a recurring job
// catalog, not 40 fresh workloads per wave.
const cacheWorkloadPool = 12

// cacheBenchPlatforms is the steady-state cluster the curve is measured
// on — the same 24-platform subset the package placement benchmarks use
// (the scheduler scores a platform prefix of the trained dataset).
const cacheBenchPlatforms = 24

// benchPlatforms caps the scheduler's platform count at the standard bench
// subset without exceeding what the dataset actually has.
func (cfg cacheBenchConfig) benchPlatforms() int {
	if n := cfg.Cluster.NumPlatforms(); n < cacheBenchPlatforms {
		return n
	}
	return cacheBenchPlatforms
}

// cacheStreams pre-generates the wave stream for one churn point: nFeas
// jobs per wave with generous deadlines (they place, complete, and bump
// slot versions — the churn) and the rest with deadlines no platform can
// meet (scored everywhere, placed nowhere). Generation stays outside the
// timed region, and both arms replay the identical slice.
func cacheStreams(cfg cacheBenchConfig, nFeas int) [][]sched.Job {
	rng := rand.New(rand.NewSource(cfg.Seed + 4271))
	waves := make([][]sched.Job, cfg.Rounds)
	for r := range waves {
		wave := make([]sched.Job, cfg.Wave)
		for i := range wave {
			w := rng.Intn(cacheWorkloadPool)
			est := cfg.Pred.Estimate(w, rng.Intn(cfg.benchPlatforms()), nil)
			if i < nFeas {
				wave[i] = sched.Job{Workload: w, Deadline: est * (2 + 2*rng.Float64())}
			} else {
				wave[i] = sched.Job{Workload: w, Deadline: est * 1e-9}
			}
		}
		waves[r] = wave
	}
	return waves
}

// runCacheArm replays the wave stream on a fresh scheduler and returns the
// timed wall-clock, the placement count, and (when record is set) every
// wave's assignments for the identity check. Placed jobs complete at the
// end of their wave, so occupancy returns to the pre-filled baseline and
// every wave sees the same steady state.
func runCacheArm(cfg cacheBenchConfig, waves [][]sched.Job, cacheOn, record bool) (time.Duration, int, [][]sched.Assignment, sched.ScoreCacheStats, error) {
	s, err := sched.New(sched.Config{
		NumPlatforms:  cfg.benchPlatforms(),
		MaxColocation: cfg.Coloc,
		WaveChunk:     cfg.Chunk,
		Strategy:      cfg.Strategy,
		ScoreCache:    cacheOn,
	}, sched.BoundPolicy{Eps: cfg.Eps}, cfg.Pred)
	if err != nil {
		return 0, 0, nil, sched.ScoreCacheStats{}, err
	}

	// Pre-fill to ~60% occupancy outside the timed region: long-lived
	// residents give every scored column a realistic interference set.
	fill := rand.New(rand.NewSource(cfg.Seed + 911))
	target := cfg.benchPlatforms() * cfg.Coloc * 6 / 10
	for placed := 0; placed < target; {
		w := fill.Intn(cacheWorkloadPool)
		est := cfg.Pred.Estimate(w, fill.Intn(cfg.benchPlatforms()), nil)
		as := s.PlaceAll([]sched.Job{{Workload: w, Deadline: est * 4}})
		if !as[0].Placed() {
			break // capacity-shaped refusal; the fill is as deep as it gets
		}
		placed++
	}

	var recorded [][]sched.Assignment
	if record {
		recorded = make([][]sched.Assignment, 0, len(waves))
	}
	ids := make([]sched.JobID, 0, cfg.Wave)
	runtime.GC()
	placed := 0
	start := time.Now()
	for _, wave := range waves {
		ids = ids[:0]
		as := s.PlaceAll(wave)
		for _, a := range as {
			if a.Placed() {
				ids = append(ids, a.ID)
			}
		}
		placed += len(ids)
		for _, id := range ids {
			if err := s.Complete(id); err != nil {
				return 0, 0, nil, sched.ScoreCacheStats{}, fmt.Errorf("complete(%d): %v", id, err)
			}
		}
		if record {
			recorded = append(recorded, as)
		}
	}
	elapsed := time.Since(start)
	st, _ := s.ScoreCacheStats()
	return elapsed, placed, recorded, st, nil
}

// assertCacheIdentity compares the two arms' recorded assignment streams
// bitwise: same platform, budget, rejection flag, and unplaced reason for
// every job of every wave.
func assertCacheIdentity(off, on [][]sched.Assignment) error {
	if len(off) != len(on) {
		return fmt.Errorf("recorded %d waves cache-off vs %d cache-on", len(off), len(on))
	}
	for w := range off {
		for j := range off[w] {
			a, b := off[w][j], on[w][j]
			if a.Platform != b.Platform || a.Budget != b.Budget ||
				a.Rejected != b.Rejected || a.Reason != b.Reason {
				return fmt.Errorf("decision divergence at wave %d job %d: cache-off %+v vs cache-on %+v", w, j, a, b)
			}
		}
	}
	return nil
}

// runCacheBench sweeps the churn rates, checks decision identity at every
// point, and reports (and optionally gates and persists) the speedup and
// hit-rate curve.
func runCacheBench(cfg cacheBenchConfig) error {
	fmt.Printf("score-cache bench: %d-job waves x %d rounds on %d platforms, %d distinct workloads (gomaxprocs %d)\n",
		cfg.Wave, cfg.Rounds, cfg.benchPlatforms(), cacheWorkloadPool, runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %8s %8s %10s %10s %11s %11s %8s %9s %8s\n",
		"churn", "placed", "scored", "off-wall", "on-wall", "off-jobs/s", "on-jobs/s", "speedup", "hit-rate", "invalid")

	report := cacheBenchReport{
		Bench:      "score_cache",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Platforms:  cfg.benchPlatforms(),
		Wave:       cfg.Wave,
		Rounds:     cfg.Rounds,
		Workloads:  cacheWorkloadPool,
	}
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}

	// Warm-up: one short discarded run per arm so lazy allocations and cold
	// instruction caches are not charged to the first churn point.
	warmWaves := cacheStreams(cfg, 1)
	if len(warmWaves) > 20 {
		warmWaves = warmWaves[:20]
	}
	for _, on := range []bool{false, true} {
		if _, _, _, _, err := runCacheArm(cfg, warmWaves, on, false); err != nil {
			return err
		}
	}

	for _, churn := range cfg.Churns {
		nFeas := int(math.Round(churn * float64(cfg.Wave)))
		if nFeas < 1 {
			nFeas = 1
		}
		waves := cacheStreams(cfg, nFeas)

		// Identity first, untimed: the recorded comparison run also doubles
		// as a second warm-up for this point's streams.
		_, _, offAs, _, err := runCacheArm(cfg, waves, false, true)
		if err != nil {
			return err
		}
		_, _, onAs, _, err := runCacheArm(cfg, waves, true, true)
		if err != nil {
			return err
		}
		if err := assertCacheIdentity(offAs, onAs); err != nil {
			return fmt.Errorf("churn %.3f: %v", churn, err)
		}

		var pt cacheBenchPoint
		pt.Churn = nFeas
		pt.ChurnRate = float64(nFeas) / float64(cfg.Wave)
		pt.Scored = cfg.Wave * cfg.Rounds
		offBest, onBest := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		for rep := 0; rep < reps; rep++ {
			off, placed, _, _, err := runCacheArm(cfg, waves, false, false)
			if err != nil {
				return err
			}
			on, placedOn, _, st, err := runCacheArm(cfg, waves, true, false)
			if err != nil {
				return err
			}
			if placed != placedOn {
				return fmt.Errorf("churn %.3f rep %d: placed %d cache-off vs %d cache-on", churn, rep, placed, placedOn)
			}
			pt.Placed = placed
			if off < offBest {
				offBest = off
			}
			if on < onBest {
				onBest = on
				pt.Hits, pt.Misses = st.Hits, st.Misses
				pt.Evictions, pt.Invalidations = st.Evictions, st.Invalidations
			}
		}
		pt.SecondsOff = offBest.Seconds()
		pt.SecondsOn = onBest.Seconds()
		if pt.SecondsOff > 0 {
			pt.PlaceRateOff = float64(pt.Placed) / pt.SecondsOff
			pt.JobRateOff = float64(pt.Scored) / pt.SecondsOff
		}
		if pt.SecondsOn > 0 {
			pt.PlaceRateOn = float64(pt.Placed) / pt.SecondsOn
			pt.JobRateOn = float64(pt.Scored) / pt.SecondsOn
			pt.Speedup = pt.SecondsOff / pt.SecondsOn
		}
		if total := pt.Hits + pt.Misses; total > 0 {
			pt.HitRate = float64(pt.Hits) / float64(total)
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("%-8.3f %8d %8d %9.3fs %9.3fs %11.0f %11.0f %7.2fx %8.1f%% %8d\n",
			pt.ChurnRate, pt.Placed, pt.Scored, pt.SecondsOff, pt.SecondsOn,
			pt.JobRateOff, pt.JobRateOn, pt.Speedup, 100*pt.HitRate, pt.Invalidations)
	}
	fmt.Println("\nchurn:    fraction of each wave that places and completes (slot-version churn)")
	fmt.Println("speedup:  cache-off wall time over cache-on, identical streams, decisions asserted identical")
	fmt.Println("hit-rate: distinct-workload score columns served from the cross-wave cache")

	if cfg.JSONPath != "" {
		if err := writeBenchJSON(cfg.JSONPath, report); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", cfg.JSONPath)
	}
	if cfg.HitMin > 0 {
		low := report.Points[0]
		if low.HitRate < cfg.HitMin {
			return fmt.Errorf("require-hit-min: hit rate %.1f%% at churn %.3f below the %.1f%% floor",
				100*low.HitRate, low.ChurnRate, 100*cfg.HitMin)
		}
	}
	return nil
}

// writeBenchJSON persists any bench report with the indentation the replica
// bench established.
func writeBenchJSON(path string, report any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseChurns parses the -cache-churns syntax: comma-separated fractions
// in (0,1], e.g. "0.03,0.125,0.5,1".
func parseChurns(s string) ([]float64, error) {
	var out []float64
	for _, cs := range strings.Split(s, ",") {
		cs = strings.TrimSpace(cs)
		if cs == "" {
			continue
		}
		c, err := strconv.ParseFloat(cs, 64)
		if err != nil {
			return nil, fmt.Errorf("cache-churns: bad fraction %q: %v", cs, err)
		}
		if c <= 0 || c > 1 {
			return nil, fmt.Errorf("cache-churns: fraction %g outside (0,1]", c)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cache-churns: no fractions given")
	}
	return out, nil
}
