// Command train fits a Pitot model on a dataset JSON file (produced by
// datagen) and reports held-out error, optionally saving the model.
//
// Usage:
//
//	train -data dataset.json [-steps 2500] [-quantiles] [-model model.bin] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	dataPath := flag.String("data", "", "dataset JSON (required)")
	modelPath := flag.String("model", "", "write trained model here")
	seed := flag.Int64("seed", 1, "training seed")
	steps := flag.Int("steps", 2500, "optimization steps")
	hidden := flag.Int("hidden", 64, "tower hidden width")
	rank := flag.Int("rank", 32, "embedding dimension r")
	quantiles := flag.Bool("quantiles", false, "train quantile heads for bounds")
	trainFrac := flag.Float64("train-frac", 0.8, "fraction of observations used for training")
	flag.Parse()
	if *dataPath == "" {
		log.Fatal("-data is required")
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.ReadJSON(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d workloads, %d platforms, %d observations\n",
		ds.NumWorkloads(), ds.NumPlatforms(), len(ds.Obs))

	cfg := core.DefaultConfig(*seed)
	cfg.Steps = *steps
	cfg.Hidden = *hidden
	cfg.EmbeddingDim = *rank
	if *quantiles {
		cfg.Quantiles = core.PaperQuantiles()
	}
	rng := rand.New(rand.NewSource(*seed))
	split := dataset.NewSplit(rng, len(ds.Obs), *trainFrac)
	split.EnsureCoverage(ds)

	m, err := core.NewModel(cfg, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d parameters, %d heads\n", m.NumParams(), cfg.NumHeads())
	res, err := m.Train(split)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d steps, best validation loss %.5f\n", res.Steps, res.BestValLoss)

	if len(cfg.Quantiles) == 0 {
		iso, interf := eval.SplitByInterference(ds, split.Test)
		predIso := make([]float64, len(iso))
		for i, oi := range iso {
			o := ds.Obs[oi]
			predIso[i] = m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, 0)
		}
		predInt := make([]float64, len(interf))
		for i, oi := range interf {
			o := ds.Obs[oi]
			predInt[i] = m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, 0)
		}
		fmt.Printf("test MAPE: %.1f%% without interference, %.1f%% with interference\n",
			100*eval.MAPE(ds, iso, predIso), 100*eval.MAPE(ds, interf, predInt))
	}

	if *modelPath != "" {
		out, err := os.Create(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := m.Save(out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved model to %s\n", *modelPath)
	}
}
