package pitot

import (
	"math"
	"sync"
	"testing"
)

// boundsPred lazily trains one bounds-enabled predictor shared by the
// read-only concurrency and persistence tests (training dominates test
// time; none of these tests mutate the predictor's published state beyond
// the idempotent bounder cache).
var boundsPred struct {
	once sync.Once
	ds   *Dataset
	pred *Predictor
	err  error
}

func sharedBoundsPredictor(t *testing.T) (*Predictor, *Dataset) {
	t.Helper()
	boundsPred.once.Do(func() {
		boundsPred.ds = smallDataset()
		boundsPred.pred, boundsPred.err = Train(boundsPred.ds, smallOptions(42, true))
	})
	if boundsPred.err != nil {
		t.Fatal(boundsPred.err)
	}
	return boundsPred.pred, boundsPred.ds
}

// TestConcurrentBoundCalibration is the regression test for the PR 1 data
// race: two concurrent Bound calls with a fresh eps both wrote the
// Predictor.bounders map. The snapshot design publishes calibrations with
// a copy-on-write swap, so this test must pass under `go test -race`.
func TestConcurrentBoundCalibration(t *testing.T) {
	pred, _ := sharedBoundsPredictor(t)
	epsGrid := []float64{0.02, 0.04, 0.05, 0.08, 0.1, 0.15, 0.2, 0.25}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2*len(epsGrid); i++ {
				eps := epsGrid[(g+i)%len(epsGrid)]
				b, err := pred.Bound(1, 1, []int{2}, eps)
				if err != nil {
					t.Error(err)
					return
				}
				if !(b > 0) {
					t.Errorf("bound = %v", b)
					return
				}
				bs, err := pred.BoundBatch([]Query{{Workload: 1, Platform: 1, Interferers: []int{2}}}, eps)
				if err != nil {
					t.Error(err)
					return
				}
				if bs[0] != b {
					t.Errorf("batch bound %v vs scalar %v at eps %v", bs[0], b, eps)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Every eps calibrated under the race must produce the same bounder as
	// a quiet recalibration (calibration is deterministic per snapshot).
	for _, eps := range epsGrid {
		b1, err := pred.Bound(2, 0, nil, eps)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := pred.Bound(2, 0, nil, eps)
		if err != nil {
			t.Fatal(err)
		}
		if b1 != b2 {
			t.Fatalf("bound not stable at eps %v: %v vs %v", eps, b1, b2)
		}
	}
}

// TestConcurrentEstimateObserve runs reader goroutines against a predictor
// while Observe publishes new snapshots. Readers assert (a) versions are
// monotonically non-decreasing, (b) estimates are always finite and
// positive, and (c) an estimate straddled by two loads of the same version
// is bitwise equal to that snapshot's published value — i.e. never a torn
// model. Run under `go test -race`.
func TestConcurrentEstimateObserve(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(21, false))
	if err != nil {
		t.Fatal(err)
	}
	probe := func() float64 { return pred.Estimate(1, 1, []int{2, 3}) }
	var expected sync.Map // version -> bitwise estimate for the probe query
	expected.Store(pred.Version(), probe())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			q := Query{Workload: 1, Platform: 1, Interferers: []int{2, 3}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				v1 := pred.Version()
				if v1 < last {
					t.Errorf("snapshot version went backwards: %d -> %d", last, v1)
					return
				}
				last = v1
				got := probe()
				if !(got > 0) || math.IsInf(got, 0) || math.IsNaN(got) {
					t.Errorf("estimate = %v", got)
					return
				}
				if v2 := pred.Version(); v1 == v2 {
					if want, ok := expected.Load(v1); ok && got != want.(float64) {
						t.Errorf("torn read at version %d: %v, snapshot published %v", v1, got, want)
						return
					}
				}
				if out := pred.EstimateBatch([]Query{q}); len(out) != 1 || !(out[0] > 0) {
					t.Errorf("EstimateBatch = %v", out)
					return
				}
			}
		}()
	}

	const rounds = 3
	for round := 0; round < rounds; round++ {
		var obs []Observation
		for i := 0; i < 10; i++ {
			obs = append(obs, Observation{
				Workload: (round + i) % ds.NumWorkloads(),
				Platform: i % ds.NumPlatforms(),
				Seconds:  pred.Estimate((round+i)%ds.NumWorkloads(), i%ds.NumPlatforms(), nil) * 1.5,
			})
		}
		if err := pred.Observe(obs); err != nil {
			t.Error(err)
			break
		}
		expected.Store(pred.Version(), probe())
	}
	close(stop)
	wg.Wait()

	if v := pred.Version(); v != rounds {
		t.Fatalf("version %d after %d observes", v, rounds)
	}
	if info := pred.Info(); info.Observations != len(ds.Obs)+rounds*10 {
		t.Fatalf("info reports %d observations, want %d", info.Observations, len(ds.Obs)+rounds*10)
	}
}

// Concurrent Observe calls must serialize: every call lands in exactly one
// snapshot increment and all observations are retained.
func TestConcurrentObserveSerializes(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(22, false))
	if err != nil {
		t.Fatal(err)
	}
	base := pred.Info().Observations
	var wg sync.WaitGroup
	const writers = 3
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obs := []Observation{{Workload: i, Platform: 0, Seconds: 1 + float64(i)}}
			if err := pred.Observe(obs); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if v := pred.Version(); v != writers {
		t.Fatalf("version %d after %d concurrent observes", v, writers)
	}
	if got := pred.Info().Observations; got != base+writers {
		t.Fatalf("%d observations, want %d", got, base+writers)
	}
}
