package pitot

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// fastRelErr is the relative disagreement between an approximate and an
// exact score, treating matching infinities as exact agreement.
func fastRelErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	if math.IsInf(want, 0) || math.IsInf(got, 0) {
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSetFastScoringToleranceOnRealModel pins the facade accuracy
// contract: toggling SetFastScoring on a trained predictor changes every
// ScoreBatch output by at most core.FastScoreMaxRelErr relative, +Inf
// bounds stay +Inf, and toggling back restores the exact outputs bitwise.
func TestSetFastScoringToleranceOnRealModel(t *testing.T) {
	pred, ds := enginePredictor(t)
	qs := schedQueries(ds)

	if pred.Info().FastScoring {
		t.Fatal("fast scoring on before toggle")
	}
	exactMean, exactBound, err := pred.ScoreBatch(qs, 0.1)
	if err != nil {
		t.Fatal(err)
	}

	pred.SetFastScoring(true)
	defer pred.SetFastScoring(false)
	if !pred.Info().FastScoring {
		t.Fatal("Info does not report fast scoring after toggle")
	}
	fastMean, fastBound, err := pred.ScoreBatch(qs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if e := fastRelErr(fastMean[i], exactMean[i]); e > core.FastScoreMaxRelErr {
			t.Fatalf("query %d mean: fast %.17g exact %.17g rel err %.3g", i, fastMean[i], exactMean[i], e)
		}
		if e := fastRelErr(fastBound[i], exactBound[i]); e > core.FastScoreMaxRelErr {
			t.Fatalf("query %d bound: fast %.17g exact %.17g rel err %.3g", i, fastBound[i], exactBound[i], e)
		}
	}

	pred.SetFastScoring(false)
	againMean, againBound, err := pred.ScoreBatch(qs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if againMean[i] != exactMean[i] || againBound[i] != exactBound[i] {
			t.Fatalf("query %d: exact path not restored bitwise after toggle off", i)
		}
	}
}

// TestFastScoringDecisionIdentity is the placement-level acceptance
// property on the real model: with fast scoring on, the scheduler must
// pick the identical platform for the identical job stream as the exact
// kernel — under the mixed-head dual policies and with a degraded
// platform paying its feasibility penalty — because score gaps between
// platforms dwarf the kernel's relative error and ties break by index in
// both modes. Scores may differ within tolerance; decisions may not.
func TestFastScoringDecisionIdentity(t *testing.T) {
	pred, ds := enginePredictor(t)
	defer pred.SetFastScoring(false)

	jrng := rand.New(rand.NewSource(23))
	var jobs []sched.Job
	for i := 0; i < 40; i++ {
		w := jrng.Intn(ds.NumWorkloads())
		p := jrng.Intn(ds.NumPlatforms())
		jobs = append(jobs, sched.Job{
			Workload: w,
			Deadline: pred.Estimate(w, p, nil) * (1.2 + 2*jrng.Float64()),
		})
	}
	policies := []sched.Policy{
		sched.MeanBoundPolicy{Eps: 0.1},
		sched.PaddedBoundPolicy{Eps: 0.1, Factor: 1.3},
		sched.BoundPolicy{Eps: 0.1},
	}
	run := func(pol sched.Policy) []int {
		s, err := sched.New(sched.Config{
			NumPlatforms:    ds.NumPlatforms(),
			MaxColocation:   3,
			DegradedPenalty: 1.25,
		}, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Degrade(1); err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(jobs))
		for i, a := range s.PlaceAll(jobs) {
			out[i] = a.Platform // -1 when unplaced
		}
		return out
	}
	for _, pol := range policies {
		pred.SetFastScoring(false)
		exact := run(pol)
		pred.SetFastScoring(true)
		fast := run(pol)
		for i := range exact {
			if fast[i] != exact[i] {
				t.Fatalf("%s: job %d placed on %d (fast) vs %d (exact)",
					pol.Name(), i, fast[i], exact[i])
			}
		}
	}
}

// TestFastScoringSurvivesObserve checks the mode is part of the snapshot
// lineage: an Observe that publishes a new snapshot keeps the runtime
// fast-scoring override, and scoring stays within tolerance afterwards.
func TestFastScoringSurvivesObserve(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(31, true))
	if err != nil {
		t.Fatal(err)
	}
	pred.SetFastScoring(true)
	v := pred.Version()
	if err := pred.Observe([]Observation{{
		Workload: 0, Platform: 0, Seconds: pred.Estimate(0, 0, nil) * 1.2,
	}}); err != nil {
		t.Fatal(err)
	}
	info := pred.Info()
	if info.Version != v+1 {
		t.Fatalf("version %d -> %d", v, info.Version)
	}
	if !info.FastScoring {
		t.Fatal("Observe dropped the fast-scoring mode")
	}
	// SetFastScoring alone must not burn a version number.
	pred.SetFastScoring(false)
	pred.SetFastScoring(true)
	if got := pred.Version(); got != info.Version {
		t.Fatalf("SetFastScoring changed version %d -> %d", info.Version, got)
	}
}

// TestFastScoringPersistence checks ModelConfig.FastScoring rides through
// SaveModel/LoadPredictor: a model trained with the flag loads fast, one
// trained without loads exact, and the runtime override is not persisted.
func TestFastScoringPersistence(t *testing.T) {
	ds := smallDataset()
	opts := smallOptions(33, true)
	cfg := *opts.Model
	cfg.FastScoring = true
	opts.Model = &cfg
	pred, err := Train(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Info().FastScoring {
		t.Fatal("training with ModelConfig.FastScoring did not enable the mode")
	}

	var meanBuf, quantBuf bytes.Buffer
	if err := pred.SaveModel(&meanBuf, &quantBuf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(ds, bytes.NewReader(meanBuf.Bytes()), bytes.NewReader(quantBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Info().FastScoring {
		t.Fatal("persisted FastScoring flag lost on load")
	}

	// Runtime override on an exact-trained model must not persist.
	exact, err := Train(ds, smallOptions(33, true))
	if err != nil {
		t.Fatal(err)
	}
	exact.SetFastScoring(true)
	meanBuf.Reset()
	quantBuf.Reset()
	if err := exact.SaveModel(&meanBuf, &quantBuf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadPredictor(ds, bytes.NewReader(meanBuf.Bytes()), bytes.NewReader(quantBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Info().FastScoring {
		t.Fatal("runtime SetFastScoring override leaked into the saved model")
	}
}

// TestScoreSecondsBatchFallbackFillsInPlace is the regression for the
// error fallback: without bounds enabled, ScoreSecondsBatch must fill the
// caller's mean buffer in place with plain estimates (no reallocation)
// and mark every bound +Inf.
func TestScoreSecondsBatchFallbackFillsInPlace(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(35, false))
	if err != nil {
		t.Fatal(err)
	}
	qs := schedQueries(ds)[:8]
	meanOut := make([]float64, len(qs))
	boundOut := make([]float64, len(qs))
	for i := range meanOut {
		meanOut[i] = -1
		boundOut[i] = -1
	}
	pred.ScoreSecondsBatch(qs, 0.1, meanOut, boundOut)
	want := pred.EstimateBatch(qs)
	for i := range qs {
		if meanOut[i] != want[i] {
			t.Fatalf("query %d: fallback mean %.12f, EstimateBatch %.12f", i, meanOut[i], want[i])
		}
		if !math.IsInf(boundOut[i], 1) {
			t.Fatalf("query %d: fallback bound %v, want +Inf", i, boundOut[i])
		}
	}
}
