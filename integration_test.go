package pitot

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/wasmcluster"
)

// The facade must plug directly into the scheduler.
var _ sched.Predictor = (*Predictor)(nil)

// clusterOracle exposes ground-truth runtimes for the simulation.
type clusterOracle struct {
	c   *wasmcluster.Cluster
	rng *rand.Rand
}

func (o *clusterOracle) TrueSeconds(w, p int, ks []int) float64 {
	return o.c.MeasureSeconds(o.rng, w, p, ks)
}

// TestEndToEndOrchestration is the full pipeline: synthetic cluster →
// trained Pitot with bounds → deadline placement → ground-truth replay.
// The bound policy's per-execution miss rate must respect its eps budget
// (with slack for the small sample) and beat the mean policy.
func TestEndToEndOrchestration(t *testing.T) {
	cluster := wasmcluster.New(wasmcluster.Config{
		Seed: 101, NumWorkloads: 30, MaxDevices: 6, SetsPerDegree: 15,
	})
	ds := cluster.Generate()
	cfg := DefaultModelConfig(101)
	cfg.Hidden = 32
	cfg.EmbeddingDim = 16
	cfg.Steps = 700
	cfg.EvalEvery = 175
	pred, err := Train(ds, Options{Seed: 101, Model: &cfg, EnableBounds: true})
	if err != nil {
		t.Fatal(err)
	}

	jrng := rand.New(rand.NewSource(7))
	var jobs []sched.Job
	for i := 0; i < 24; i++ {
		w := jrng.Intn(ds.NumWorkloads())
		p := jrng.Intn(ds.NumPlatforms())
		jobs = append(jobs, sched.Job{
			Workload: w,
			Deadline: pred.Estimate(w, p, nil) * (1.5 + 2*jrng.Float64()),
		})
	}
	run := func(pol sched.Policy) sched.Outcome {
		s, err := sched.New(sched.Config{NumPlatforms: ds.NumPlatforms(), MaxColocation: 4}, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		as := s.PlaceAll(jobs)
		oracle := &clusterOracle{cluster, rand.New(rand.NewSource(9))}
		return sched.Simulate(pol.Name(), as, oracle, s.Residents, 15)
	}
	const eps = 0.1
	bound := run(sched.BoundPolicy{Eps: eps})
	mean := run(sched.MeanPolicy{})
	if bound.Placed == 0 {
		t.Fatal("bound policy placed nothing")
	}
	if bound.MissRate > eps+0.1 {
		t.Fatalf("bound policy miss rate %.3f far above eps %.2f", bound.MissRate, eps)
	}
	if mean.MissRate > 0 && bound.MissRate > mean.MissRate {
		t.Fatalf("bound policy (%.3f) missed more than mean policy (%.3f)",
			bound.MissRate, mean.MissRate)
	}
	if math.IsNaN(bound.AvgHeadroom) {
		t.Fatal("NaN headroom")
	}
	t.Logf("bound: placed=%d miss=%.3f | mean: placed=%d miss=%.3f",
		bound.Placed, bound.MissRate, mean.Placed, mean.MissRate)
}

// TestConcurrentOrchestration is the serving scenario the snapshot
// isolation exists for: several schedulers place deadline jobs against one
// shared predictor from concurrent goroutines while Observe publishes new
// snapshots. Every placement must respect its deadline budget and no read
// may ever block or tear. Run under `go test -race`.
func TestConcurrentOrchestration(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(55, true))
	if err != nil {
		t.Fatal(err)
	}

	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		obs := []Observation{{
			Workload: 2, Platform: 1,
			Seconds: pred.Estimate(2, 1, nil) * 1.4,
		}}
		if err := pred.Observe(obs); err != nil {
			t.Error(err)
		}
	}()

	const schedulers = 4
	var wg sync.WaitGroup
	for g := 0; g < schedulers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := sched.New(sched.Config{
				NumPlatforms: ds.NumPlatforms(), MaxColocation: 4,
			}, sched.BoundPolicy{Eps: 0.1}, pred)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 12; i++ {
				w := rng.Intn(ds.NumWorkloads())
				p := rng.Intn(ds.NumPlatforms())
				deadline := pred.BoundSeconds(w, p, nil, 0.1) * (1.2 + rng.Float64())
				a := s.Place(sched.Job{Workload: w, Deadline: deadline})
				if a.Placed() && a.Budget > a.Job.Deadline {
					t.Errorf("scheduler %d accepted budget %.4f over deadline %.4f", g, a.Budget, a.Job.Deadline)
					return
				}
				if a.Placed() && (math.IsNaN(a.Budget) || a.Budget <= 0) {
					t.Errorf("scheduler %d got budget %v", g, a.Budget)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	writer.Wait()
	if pred.Version() != 1 {
		t.Fatalf("expected one published snapshot, got version %d", pred.Version())
	}
}
