package pitot

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/wasmcluster"
)

// The facade must plug directly into the scheduler.
var _ sched.Predictor = (*Predictor)(nil)

// clusterOracle exposes ground-truth runtimes for the simulation.
type clusterOracle struct {
	c   *wasmcluster.Cluster
	rng *rand.Rand
}

func (o *clusterOracle) TrueSeconds(w, p int, ks []int) float64 {
	return o.c.MeasureSeconds(o.rng, w, p, ks)
}

// TestEndToEndOrchestration is the full pipeline: synthetic cluster →
// trained Pitot with bounds → deadline placement → ground-truth replay.
// The bound policy's per-execution miss rate must respect its eps budget
// (with slack for the small sample) and beat the mean policy.
func TestEndToEndOrchestration(t *testing.T) {
	cluster := wasmcluster.New(wasmcluster.Config{
		Seed: 101, NumWorkloads: 30, MaxDevices: 6, SetsPerDegree: 15,
	})
	ds := cluster.Generate()
	cfg := DefaultModelConfig(101)
	cfg.Hidden = 32
	cfg.EmbeddingDim = 16
	cfg.Steps = 700
	cfg.EvalEvery = 175
	pred, err := Train(ds, Options{Seed: 101, Model: &cfg, EnableBounds: true})
	if err != nil {
		t.Fatal(err)
	}

	jrng := rand.New(rand.NewSource(7))
	var jobs []sched.Job
	for i := 0; i < 24; i++ {
		w := jrng.Intn(ds.NumWorkloads())
		p := jrng.Intn(ds.NumPlatforms())
		jobs = append(jobs, sched.Job{
			Workload: w,
			Deadline: pred.Estimate(w, p, nil) * (1.5 + 2*jrng.Float64()),
		})
	}
	run := func(pol sched.Policy) sched.Outcome {
		s, err := sched.New(sched.Config{NumPlatforms: ds.NumPlatforms(), MaxColocation: 4}, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		as := s.PlaceAll(jobs)
		oracle := &clusterOracle{cluster, rand.New(rand.NewSource(9))}
		return sched.Simulate(pol.Name(), as, oracle, s.Residents, 15)
	}
	const eps = 0.1
	bound := run(sched.BoundPolicy{Eps: eps})
	mean := run(sched.MeanPolicy{})
	if bound.Placed == 0 {
		t.Fatal("bound policy placed nothing")
	}
	if bound.MissRate > eps+0.1 {
		t.Fatalf("bound policy miss rate %.3f far above eps %.2f", bound.MissRate, eps)
	}
	if mean.MissRate > 0 && bound.MissRate > mean.MissRate {
		t.Fatalf("bound policy (%.3f) missed more than mean policy (%.3f)",
			bound.MissRate, mean.MissRate)
	}
	if math.IsNaN(bound.AvgHeadroom) {
		t.Fatal("NaN headroom")
	}
	t.Logf("bound: placed=%d miss=%.3f | mean: placed=%d miss=%.3f",
		bound.Placed, bound.MissRate, mean.Placed, mean.MissRate)
}

// TestConcurrentOrchestration is the serving scenario the snapshot
// isolation exists for: several schedulers place deadline jobs against one
// shared predictor from concurrent goroutines while Observe publishes new
// snapshots. Every placement must respect its deadline budget and no read
// may ever block or tear. Run under `go test -race`.
func TestConcurrentOrchestration(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(55, true))
	if err != nil {
		t.Fatal(err)
	}

	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		obs := []Observation{{
			Workload: 2, Platform: 1,
			Seconds: pred.Estimate(2, 1, nil) * 1.4,
		}}
		if err := pred.Observe(obs); err != nil {
			t.Error(err)
		}
	}()

	const schedulers = 4
	var wg sync.WaitGroup
	for g := 0; g < schedulers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := sched.New(sched.Config{
				NumPlatforms: ds.NumPlatforms(), MaxColocation: 4,
			}, sched.BoundPolicy{Eps: 0.1}, pred)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 12; i++ {
				w := rng.Intn(ds.NumWorkloads())
				p := rng.Intn(ds.NumPlatforms())
				deadline := pred.BoundSeconds(w, p, nil, 0.1) * (1.2 + rng.Float64())
				a := s.Place(sched.Job{Workload: w, Deadline: deadline})
				if a.Placed() && a.Budget > a.Job.Deadline {
					t.Errorf("scheduler %d accepted budget %.4f over deadline %.4f", g, a.Budget, a.Job.Deadline)
					return
				}
				if a.Placed() && (math.IsNaN(a.Budget) || a.Budget <= 0) {
					t.Errorf("scheduler %d got budget %v", g, a.Budget)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	writer.Wait()
	if pred.Version() != 1 {
		t.Fatalf("expected one published snapshot, got version %d", pred.Version())
	}
}

// The facade satisfies the batch-scoring and feedback surfaces of the
// orchestration engine.
var (
	_ sched.BatchPredictor = (*Predictor)(nil)
	_ sched.Observer       = (*Predictor)(nil)
)

// engineShared lazily trains one bounds-enabled predictor shared by the
// orchestration-engine tests below (training dominates their runtime, and
// under -race a per-test model pushes the package past the suite timeout).
// Tests that Observe assert version/observation deltas, never absolutes.
var engineShared struct {
	once sync.Once
	ds   *Dataset
	pred *Predictor
	err  error
}

func enginePredictor(t *testing.T) (*Predictor, *Dataset) {
	t.Helper()
	engineShared.once.Do(func() {
		engineShared.ds = smallDataset()
		engineShared.pred, engineShared.err = Train(engineShared.ds, smallOptions(77, true))
	})
	if engineShared.err != nil {
		t.Fatal(engineShared.err)
	}
	return engineShared.pred, engineShared.ds
}

// TestBatchPlacementMatchesScalar pins the acceptance property on the real
// model: batch-scored placement (one BoundBatch per candidate scan, wave
// pre-scoring in PlaceAll) picks the identical platform as scalar scoring
// for the same policy and job stream, including across completions.
func TestBatchPlacementMatchesScalar(t *testing.T) {
	pred, ds := enginePredictor(t)
	for _, pol := range []sched.Policy{sched.MeanPolicy{}, sched.BoundPolicy{Eps: 0.1}} {
		cfg := sched.Config{NumPlatforms: ds.NumPlatforms(), MaxColocation: 3}
		scalarCfg := cfg
		scalarCfg.DisableBatch = true
		sb, err := sched.New(cfg, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := sched.New(scalarCfg, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		if !sb.Batched() || ss.Batched() {
			t.Fatal("batch wiring wrong")
		}
		jrng := rand.New(rand.NewSource(5))
		var jobs []sched.Job
		for i := 0; i < 30; i++ {
			w := jrng.Intn(ds.NumWorkloads())
			p := jrng.Intn(ds.NumPlatforms())
			jobs = append(jobs, sched.Job{
				Workload: w,
				Deadline: pred.Estimate(w, p, nil) * (1.2 + 2*jrng.Float64()),
			})
		}
		// First half as individual placements with interleaved completes,
		// second half as one wave.
		var live []sched.JobID
		for i, job := range jobs[:15] {
			ab, as := sb.Place(job), ss.Place(job)
			if ab.Platform != as.Platform || ab.ID != as.ID || ab.Rejected != as.Rejected {
				t.Fatalf("policy %s job %d: batch (p=%d id=%d) != scalar (p=%d id=%d)",
					pol.Name(), i, ab.Platform, ab.ID, as.Platform, as.ID)
			}
			if ab.Placed() {
				live = append(live, ab.ID)
			}
			if len(live) > 2 && i%3 == 0 {
				id := live[0]
				live = live[1:]
				if err := sb.Complete(id); err != nil {
					t.Fatal(err)
				}
				if err := ss.Complete(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		wb, ws := sb.PlaceAll(jobs[15:]), ss.PlaceAll(jobs[15:])
		for i := range wb {
			if wb[i].Platform != ws[i].Platform || wb[i].ID != ws[i].ID {
				t.Fatalf("policy %s wave job %d: batch p=%d != scalar p=%d",
					pol.Name(), i, wb[i].Platform, ws[i].Platform)
			}
		}
	}
}

// TestConcurrentPlaceCompleteDuringObserve drives the full engine against
// a live predictor while Observe publishes new snapshots — the event-driven
// lifecycle racing online learning. Run under -race.
func TestConcurrentPlaceCompleteDuringObserve(t *testing.T) {
	pred, ds := enginePredictor(t)
	v0 := pred.Version()
	s, err := sched.New(sched.Config{
		NumPlatforms: ds.NumPlatforms(), MaxColocation: 4, MaxInFlight: 24,
	}, sched.BoundPolicy{Eps: 0.1}, pred)
	if err != nil {
		t.Fatal(err)
	}

	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; i < 2; i++ {
			obs := []Observation{{
				Workload: i, Platform: 1,
				Seconds: pred.Estimate(i, 1, nil) * 1.2,
			}}
			if err := pred.Observe(obs); err != nil {
				t.Error(err)
			}
		}
	}()

	const workers = 4
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []sched.JobID
			for i := 0; i < 20; i++ {
				if len(mine) > 0 && rng.Float64() < 0.5 {
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := s.Complete(id); err != nil {
						t.Errorf("worker %d complete: %v", g, err)
						return
					}
					continue
				}
				w := rng.Intn(ds.NumWorkloads())
				p := rng.Intn(ds.NumPlatforms())
				deadline := pred.BoundSeconds(w, p, nil, 0.1) * (1.2 + rng.Float64())
				a := s.Place(sched.Job{Workload: w, Deadline: deadline})
				if a.Placed() {
					if a.Budget > a.Job.Deadline {
						t.Errorf("worker %d budget %v over deadline %v", g, a.Budget, a.Job.Deadline)
						return
					}
					mine = append(mine, a.ID)
				}
			}
			for _, id := range mine {
				if err := s.Complete(id); err != nil {
					t.Errorf("worker %d drain: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	writer.Wait()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain: %d", got)
	}
	if got := pred.Version() - v0; got != 2 {
		t.Fatalf("expected two published snapshots, got %d", got)
	}
}

// TestReplicaPlacementMatchesScheduler pins the sharded-placement identity
// property on the real trained model: a single-replica ReplicaSet over the
// shared slot store makes bitwise the same decisions as the plain
// Scheduler — platforms, IDs, budgets, rejections — across interleaved
// placements, waves, and completions.
func TestReplicaPlacementMatchesScheduler(t *testing.T) {
	pred, ds := enginePredictor(t)
	for _, pol := range []sched.Policy{sched.MeanPolicy{}, sched.BoundPolicy{Eps: 0.1}} {
		cfg := sched.Config{NumPlatforms: ds.NumPlatforms(), MaxColocation: 3, MaxInFlight: 16}
		s, err := sched.New(cfg, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sched.NewReplicaSet(cfg, sched.ReplicaConfig{Replicas: 1, Shards: 1}, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		jrng := rand.New(rand.NewSource(11))
		var live []sched.JobID
		for i := 0; i < 40; i++ {
			if len(live) > 2 && i%4 == 0 {
				id := live[0]
				live = live[1:]
				errS, errR := s.Complete(id), rs.Complete(id)
				if (errS == nil) != (errR == nil) {
					t.Fatalf("policy %s complete(%d): scheduler %v, replica %v", pol.Name(), id, errS, errR)
				}
				continue
			}
			if i%7 == 0 {
				var jobs []sched.Job
				for j := 0; j < 3; j++ {
					w := jrng.Intn(ds.NumWorkloads())
					p := jrng.Intn(ds.NumPlatforms())
					jobs = append(jobs, sched.Job{
						Workload: w,
						Deadline: pred.Estimate(w, p, nil) * (1.2 + 2*jrng.Float64()),
					})
				}
				wS, wR := s.PlaceAll(jobs), rs.PlaceAll(jobs)
				for j := range wS {
					if wS[j].Platform != wR[j].Platform || wS[j].ID != wR[j].ID ||
						wS[j].Budget != wR[j].Budget || wS[j].Rejected != wR[j].Rejected {
						t.Fatalf("policy %s wave job %d: scheduler %+v != replica %+v",
							pol.Name(), j, wS[j], wR[j])
					}
					if wS[j].Placed() {
						live = append(live, wS[j].ID)
					}
				}
				continue
			}
			w := jrng.Intn(ds.NumWorkloads())
			p := jrng.Intn(ds.NumPlatforms())
			job := sched.Job{
				Workload: w,
				Deadline: pred.Estimate(w, p, nil) * (1.2 + 2*jrng.Float64()),
			}
			aS, aR := s.Place(job), rs.Place(job)
			if aS.Platform != aR.Platform || aS.ID != aR.ID || aS.Budget != aR.Budget ||
				aS.Rejected != aR.Rejected || aS.Reason != aR.Reason {
				t.Fatalf("policy %s op %d: scheduler %+v != replica %+v", pol.Name(), i, aS, aR)
			}
			if aS.Placed() {
				live = append(live, aS.ID)
			}
		}
		if s.InFlight() != rs.InFlight() {
			t.Fatalf("policy %s: in-flight %d != %d", pol.Name(), s.InFlight(), rs.InFlight())
		}
	}
}

// TestObserveSecondsFeedbackBridge checks the sched.Observer bridge: a
// measured-runtime batch publishes a new snapshot whose calibration pool
// includes the measurements, and predictions keep serving throughout.
func TestObserveSecondsFeedbackBridge(t *testing.T) {
	pred, _ := enginePredictor(t)
	before := pred.Info()
	ms := []sched.Measurement{
		{Workload: 0, Platform: 0, Seconds: pred.Estimate(0, 0, nil) * 1.1},
		{Workload: 1, Platform: 2, Interferers: []int{3}, Seconds: pred.Estimate(1, 2, []int{3}) * 0.9},
	}
	if err := pred.ObserveSeconds(ms); err != nil {
		t.Fatal(err)
	}
	after := pred.Info()
	if after.Version != before.Version+1 {
		t.Fatalf("version %d -> %d", before.Version, after.Version)
	}
	if after.Observations != before.Observations+len(ms) {
		t.Fatalf("observations %d -> %d", before.Observations, after.Observations)
	}
	if _, err := pred.Bound(0, 0, nil, 0.1); err != nil {
		t.Fatalf("bound after feedback: %v", err)
	}
	// Empty flushes (timer-driven with nothing pending) are a no-op, not
	// an error, and must not publish a new snapshot.
	if err := pred.ObserveSeconds(nil); err != nil {
		t.Fatalf("empty measurement batch: %v", err)
	}
	if got := pred.Info().Version; got != after.Version {
		t.Fatalf("empty batch published snapshot: v%d -> v%d", after.Version, got)
	}
}
