package pitot

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sched"
)

// equalAssignment compares everything a placement decision carries,
// including the interference set the job was scored under.
func equalAssignment(a, b sched.Assignment) bool {
	if a.ID != b.ID || a.Platform != b.Platform || a.Budget != b.Budget ||
		a.Rejected != b.Rejected || a.Reason != b.Reason || a.Job != b.Job ||
		len(a.Interferers) != len(b.Interferers) {
		return false
	}
	for i := range a.Interferers {
		if a.Interferers[i] != b.Interferers[i] {
			return false
		}
	}
	return true
}

// cacheArm is the lifecycle surface the identity checks drive in lockstep;
// both *sched.Scheduler and *sched.ReplicaSet satisfy it.
type cacheArm interface {
	PlaceAll(jobs []sched.Job) []sched.Assignment
	Complete(id sched.JobID) error
	Fail(p int) ([]sched.Orphan, error)
	Degrade(p int) error
	Recover(p int) error
}

// TestScoreCacheRealPredictorDecisionIdentity is the acceptance property on
// the trained model: under dup-heavy waves, completions, and platform
// Fail/Degrade/Recover churn, the cache-on Scheduler and the cache-on
// single-replica ReplicaSet produce assignments bitwise identical to the
// cache-off Scheduler — same platforms, same budgets, same unplaced
// reasons.
func TestScoreCacheRealPredictorDecisionIdentity(t *testing.T) {
	pred, ds := enginePredictor(t)
	nP := ds.NumPlatforms()

	for _, pol := range []sched.Policy{
		sched.MeanBoundPolicy{Eps: 0.1},
		sched.BoundPolicy{Eps: 0.1},
	} {
		cfg := sched.Config{
			NumPlatforms:    nP,
			MaxColocation:   3,
			WaveChunk:       8,
			DegradedPenalty: 1.25,
		}
		cfgOn := cfg
		cfgOn.ScoreCache = true
		ref, err := sched.New(cfg, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := sched.New(cfgOn, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		rsOn, err := sched.NewReplicaSet(cfgOn, sched.ReplicaConfig{Replicas: 1, Shards: 1}, pol, pred)
		if err != nil {
			t.Fatal(err)
		}
		arms := map[string]cacheArm{"sched+cache": cached, "rset+cache": rsOn}

		rng := rand.New(rand.NewSource(41))
		var live []sched.JobID
		for op := 0; op < 60; op++ {
			switch k := rng.Intn(100); {
			case k < 55: // wave drawn from a small workload pool (heavy duplication)
				nJ := 1 + rng.Intn(12)
				jobs := make([]sched.Job, nJ)
				for i := range jobs {
					w := rng.Intn(6)
					jobs[i] = sched.Job{
						Workload: w,
						Deadline: pred.Estimate(w, rng.Intn(nP), nil) * (0.8 + 2*rng.Float64()),
					}
				}
				want := ref.PlaceAll(jobs)
				for name, arm := range arms {
					got := arm.PlaceAll(jobs)
					for i := range want {
						if !equalAssignment(got[i], want[i]) {
							t.Fatalf("%s op %d %s: job %d got %+v want %+v",
								pol.Name(), op, name, i, got[i], want[i])
						}
					}
				}
				for _, a := range want {
					if a.Placed() {
						live = append(live, a.ID)
					}
				}
			case k < 75 && len(live) > 0:
				i := rng.Intn(len(live))
				id := live[i]
				live = append(live[:i], live[i+1:]...)
				wantErr := ref.Complete(id)
				for name, arm := range arms {
					if err := arm.Complete(id); (err == nil) != (wantErr == nil) {
						t.Fatalf("%s op %d %s: Complete(%d) = %v want %v", pol.Name(), op, name, id, err, wantErr)
					}
				}
			case k < 85:
				p := rng.Intn(nP)
				want, wantErr := ref.Fail(p)
				for name, arm := range arms {
					got, err := arm.Fail(p)
					if (err == nil) != (wantErr == nil) || len(got) != len(want) {
						t.Fatalf("%s op %d %s: Fail(%d) = (%d, %v) want (%d, %v)",
							pol.Name(), op, name, p, len(got), err, len(want), wantErr)
					}
				}
				for _, o := range want {
					for i, id := range live {
						if id == o.ID {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			case k < 93:
				p := rng.Intn(nP)
				wantErr := ref.Degrade(p)
				for name, arm := range arms {
					if err := arm.Degrade(p); (err == nil) != (wantErr == nil) {
						t.Fatalf("%s op %d %s: Degrade(%d) = %v want %v", pol.Name(), op, name, p, err, wantErr)
					}
				}
			default:
				p := rng.Intn(nP)
				wantErr := ref.Recover(p)
				for name, arm := range arms {
					if err := arm.Recover(p); (err == nil) != (wantErr == nil) {
						t.Fatalf("%s op %d %s: Recover(%d) = %v want %v", pol.Name(), op, name, p, err, wantErr)
					}
				}
			}
		}
		if st, on := cached.ScoreCacheStats(); !on || st.Hits == 0 {
			t.Errorf("%s: cached scheduler saw no hits (on=%v stats=%+v)", pol.Name(), on, st)
		}
	}
}

// TestScoreCacheIdentityAcrossObserveAndFastToggle pins the two epoch
// inputs on the real model: an Observe that publishes a fresh snapshot and
// a runtime fast-scoring toggle (same snapshot version, different kernel)
// must both invalidate cached columns, keeping the cached scheduler
// bitwise identical to an uncached one scoring through the same churn. A
// private predictor keeps the shared engine fixture's snapshot lineage
// untouched.
func TestScoreCacheIdentityAcrossObserveAndFastToggle(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(59, true))
	if err != nil {
		t.Fatal(err)
	}
	nP := ds.NumPlatforms()
	pol := sched.MeanBoundPolicy{Eps: 0.1}
	cfg := sched.Config{NumPlatforms: nP, MaxColocation: 3}
	cfgOn := cfg
	cfgOn.ScoreCache = true
	ref, err := sched.New(cfg, pol, pred)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := sched.New(cfgOn, pol, pred)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	wave := func() []sched.Job {
		jobs := make([]sched.Job, 8)
		for i := range jobs {
			w := rng.Intn(5)
			jobs[i] = sched.Job{
				Workload: w,
				Deadline: pred.Estimate(w, rng.Intn(nP), nil) * (0.8 + 2*rng.Float64()),
			}
		}
		return jobs
	}
	check := func(stage string) {
		jobs := wave()
		want := ref.PlaceAll(jobs)
		got := cached.PlaceAll(jobs)
		for i := range want {
			if !equalAssignment(got[i], want[i]) {
				t.Fatalf("%s: job %d got %+v want %+v", stage, i, got[i], want[i])
			}
		}
		for _, a := range want {
			if a.Placed() {
				if err := ref.Complete(a.ID); err != nil {
					t.Fatal(err)
				}
				if err := cached.Complete(a.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	check("cold")
	check("warm")

	// Snapshot publish: scores for the same (workload, platform) move. Two
	// waves per stage: the doorkeeper admits a changed epoch only on its
	// second sighting, so the second wave is the one that resets columns.
	if err := pred.ObserveSeconds([]sched.Measurement{
		{Workload: 0, Platform: 0, Seconds: pred.Estimate(0, 0, nil) * 1.5},
		{Workload: 1, Platform: 1, Seconds: pred.Estimate(1, 1, nil) * 0.7},
	}); err != nil {
		t.Fatal(err)
	}
	check("post-observe")
	check("post-observe-2")

	// Kernel toggle without a version bump: the epoch's fast bit must
	// invalidate on its own.
	pred.SetFastScoring(true)
	check("fast-on")
	check("fast-on-2")
	pred.SetFastScoring(false)
	check("fast-off")
	check("fast-off-2")

	st, on := cached.ScoreCacheStats()
	if !on || st.Hits == 0 || st.Invalidations == 0 {
		t.Fatalf("epoch churn not exercised: on=%v stats=%+v", on, st)
	}
}

// TestScoreCacheReplicaConcurrentSmoke drives a cache-on two-replica set
// from concurrent goroutines against the real model — the shared cache's
// locking discipline under the race detector — and checks job conservation:
// everything placed completes exactly once.
func TestScoreCacheReplicaConcurrentSmoke(t *testing.T) {
	pred, ds := enginePredictor(t)
	nP := ds.NumPlatforms()
	rs, err := sched.NewReplicaSet(
		sched.Config{NumPlatforms: nP, MaxColocation: 3, ScoreCache: true},
		sched.ReplicaConfig{Replicas: 2, Shards: 1},
		sched.MeanBoundPolicy{Eps: 0.1}, pred)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			r := rs.Replica(g)
			for round := 0; round < 10; round++ {
				jobs := make([]sched.Job, 6)
				for i := range jobs {
					w := rng.Intn(4)
					jobs[i] = sched.Job{
						Workload: w,
						Deadline: pred.Estimate(w, rng.Intn(nP), nil) * 3,
					}
				}
				for _, a := range r.PlaceAll(jobs) {
					if a.Placed() {
						if err := rs.Complete(a.ID); err != nil {
							t.Errorf("goroutine %d: Complete(%d): %v", g, a.ID, err)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := rs.InFlight(); n != 0 {
		t.Fatalf("%d jobs still in flight after all completions", n)
	}
	if st, on := rs.ScoreCacheStats(); !on || st.Hits == 0 {
		t.Fatalf("shared cache unexercised: on=%v stats=%+v", on, st)
	}
}
