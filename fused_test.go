package pitot

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// The facade exposes the fused two-head scoring surface.
var _ sched.FusedPredictor = (*Predictor)(nil)

// fusedQueries builds a scheduler-shaped batch over the real dataset:
// platform-major spans sharing resident sets (degrees 0..3, hitting
// several conformal calibration pools), plus a shuffled tail of singleton
// groups so the fused path's span detection sees narrow spans too.
func fusedQueries(ds *Dataset, rng *rand.Rand) []Query {
	var qs []Query
	for p := 0; p < ds.NumPlatforms(); p++ {
		deg := p % 4
		resident := make([]int, deg)
		for i := range resident {
			resident[i] = (p + 3*i + 1) % ds.NumWorkloads()
		}
		if deg == 0 {
			resident = nil
		}
		for w := 0; w < ds.NumWorkloads(); w += 2 {
			qs = append(qs, Query{Workload: w, Platform: p, Interferers: resident})
		}
	}
	for i := 0; i < 40; i++ {
		var ks []int
		for k := 0; k < rng.Intn(4); k++ {
			ks = append(ks, rng.Intn(ds.NumWorkloads()))
		}
		qs = append(qs, Query{
			Workload:    rng.Intn(ds.NumWorkloads()),
			Platform:    rng.Intn(ds.NumPlatforms()),
			Interferers: ks,
		})
	}
	return qs
}

// TestScoreBatchBitwiseIdentical pins the fused kernel's core guarantee:
// ScoreBatch's mean and bound outputs are bitwise-identical to the
// separate EstimateBatch + BoundBatch passes — fusion shares traversal and
// folds but never reassociates arithmetic — across epsilons (distinct
// conformal heads/offsets) and under the worker fan-out.
func TestScoreBatchBitwiseIdentical(t *testing.T) {
	pred, ds := enginePredictor(t)
	qs := fusedQueries(ds, rand.New(rand.NewSource(17)))
	for _, eps := range []float64{0.05, 0.1, 0.3} {
		mean, bound, err := pred.ScoreBatch(qs, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantMean := pred.EstimateBatch(qs)
		wantBound, err := pred.BoundBatch(qs, eps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if mean[i] != wantMean[i] {
				t.Fatalf("eps %v query %d (%+v): fused mean %v != EstimateBatch %v",
					eps, i, qs[i], mean[i], wantMean[i])
			}
			if bound[i] != wantBound[i] {
				t.Fatalf("eps %v query %d (%+v): fused bound %v != BoundBatch %v",
					eps, i, qs[i], bound[i], wantBound[i])
			}
			if !(mean[i] > 0) || math.IsNaN(bound[i]) {
				t.Fatalf("degenerate outputs: mean %v bound %v", mean[i], bound[i])
			}
		}
	}
	// ScoreSecondsBatch (the scheduler surface) must agree with ScoreBatch.
	meanOut := make([]float64, len(qs))
	boundOut := make([]float64, len(qs))
	pred.ScoreSecondsBatch(qs, 0.1, meanOut, boundOut)
	mean, bound, err := pred.ScoreBatch(qs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if meanOut[i] != mean[i] || boundOut[i] != bound[i] {
			t.Fatalf("ScoreSecondsBatch diverges from ScoreBatch at %d", i)
		}
	}
}

// The shared engine predictor runs rank 16; this variant pins bitwise
// identity on the default rank-32 configuration, whose span kernel takes
// the fully unrolled dot32 fast path.
func TestScoreBatchBitwiseIdenticalRank32(t *testing.T) {
	ds := smallDataset()
	cfg := DefaultModelConfig(3)
	cfg.Hidden = 32
	cfg.Steps = 60
	cfg.EvalEvery = 30
	pred, err := Train(ds, Options{Seed: 3, Model: &cfg, EnableBounds: true})
	if err != nil {
		t.Fatal(err)
	}
	qs := fusedQueries(ds, rand.New(rand.NewSource(29)))
	mean, bound, err := pred.ScoreBatch(qs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := pred.EstimateBatch(qs)
	wantBound, err := pred.BoundBatch(qs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if mean[i] != wantMean[i] || bound[i] != wantBound[i] {
			t.Fatalf("rank-32 query %d: fused (%v, %v) != separate (%v, %v)",
				i, mean[i], bound[i], wantMean[i], wantBound[i])
		}
	}
}

// Without bounds, ScoreBatch errors while ScoreSecondsBatch degrades to
// +Inf bounds with valid means — the scheduler's infeasibility convention.
func TestScoreBatchWithoutBounds(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(31, false))
	if err != nil {
		t.Fatal(err)
	}
	qs := []Query{{Workload: 0, Platform: 0}, {Workload: 1, Platform: 1, Interferers: []int{2}}}
	if _, _, err := pred.ScoreBatch(qs, 0.1); err == nil {
		t.Fatal("ScoreBatch without bounds did not error")
	}
	meanOut := make([]float64, len(qs))
	boundOut := make([]float64, len(qs))
	pred.ScoreSecondsBatch(qs, 0.1, meanOut, boundOut)
	want := pred.EstimateBatch(qs)
	for i := range qs {
		if meanOut[i] != want[i] {
			t.Fatalf("mean fallback %v != EstimateBatch %v", meanOut[i], want[i])
		}
		if !math.IsInf(boundOut[i], 1) {
			t.Fatalf("bound without quantile model: %v, want +Inf", boundOut[i])
		}
	}
	// A bad eps degrades the same way even with bounds enabled.
	predB, ds2 := enginePredictor(t)
	qs2 := []Query{{Workload: 0, Platform: 0}}
	_ = ds2
	pb := make([]float64, 1)
	mb := make([]float64, 1)
	predB.ScoreSecondsBatch(qs2, math.NaN(), mb, pb)
	if !math.IsInf(pb[0], 1) {
		t.Fatalf("NaN eps bound: %v, want +Inf", pb[0])
	}
}

// TestFusedWavePlacementMatchesScalar pins the mixed-policy acceptance
// property on the real model: fused-wave scoring (one ScoreBatch per
// candidate scan / wave) picks the identical platform as scalar ScoreDual
// scoring, including across completions and waves.
func TestFusedWavePlacementMatchesScalar(t *testing.T) {
	pred, ds := enginePredictor(t)
	for _, pol := range []sched.Policy{
		sched.MeanBoundPolicy{Eps: 0.1},
		sched.PaddedBoundPolicy{Eps: 0.1, Factor: 1.3},
	} {
		for _, strat := range []sched.Strategy{sched.LeastLoaded{}, sched.BestFit{}} {
			cfg := sched.Config{NumPlatforms: ds.NumPlatforms(), MaxColocation: 3, Strategy: strat}
			scalarCfg := cfg
			scalarCfg.DisableBatch = true
			sf, err := sched.New(cfg, pol, pred)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := sched.New(scalarCfg, pol, pred)
			if err != nil {
				t.Fatal(err)
			}
			if !sf.Fused() || ss.Batched() {
				t.Fatal("fused/scalar wiring wrong")
			}
			jrng := rand.New(rand.NewSource(23))
			var jobs []sched.Job
			for i := 0; i < 30; i++ {
				w := jrng.Intn(ds.NumWorkloads())
				p := jrng.Intn(ds.NumPlatforms())
				jobs = append(jobs, sched.Job{
					Workload: w,
					Deadline: pred.BoundSeconds(w, p, nil, 0.1) * (0.9 + 1.5*jrng.Float64()),
				})
			}
			var live []sched.JobID
			for i, job := range jobs[:15] {
				af, as := sf.Place(job), ss.Place(job)
				if af.Platform != as.Platform || af.ID != as.ID || af.Rejected != as.Rejected {
					t.Fatalf("policy %s strategy %s job %d: fused (p=%d id=%d) != scalar (p=%d id=%d)",
						pol.Name(), strat.Name(), i, af.Platform, af.ID, as.Platform, as.ID)
				}
				if af.Placed() {
					live = append(live, af.ID)
				}
				if len(live) > 2 && i%3 == 0 {
					id := live[0]
					live = live[1:]
					if err := sf.Complete(id); err != nil {
						t.Fatal(err)
					}
					if err := ss.Complete(id); err != nil {
						t.Fatal(err)
					}
				}
			}
			wf, ws := sf.PlaceAll(jobs[15:]), ss.PlaceAll(jobs[15:])
			for i := range wf {
				if wf[i].Platform != ws[i].Platform || wf[i].ID != ws[i].ID {
					t.Fatalf("policy %s strategy %s wave job %d: fused p=%d != scalar p=%d",
						pol.Name(), strat.Name(), i, wf[i].Platform, ws[i].Platform)
				}
			}
		}
	}
}
