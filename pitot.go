// Package pitot is the public API of this repository: a Go implementation
// of Pitot, the interference-aware edge runtime predictor with conformal
// uncertainty bounds from
//
//	"Interference-aware Edge Runtime Prediction with Conformal Matrix
//	Completion" (Huang et al., MLSys 2025, arXiv:2503.06428).
//
// The package wraps the internal building blocks (two-tower matrix
// factorization with side information, log-residual objective,
// interference term, conformalized quantile regression) behind a small
// deployment-oriented surface:
//
//	ds := pitot.GenerateDataset(pitot.DatasetConfig{Seed: 1})
//	pred, _ := pitot.Train(ds, pitot.Options{Seed: 1, EnableBounds: true})
//	sec := pred.Estimate(workload, platform, interferers)
//	bound, _ := pred.Bound(workload, platform, interferers, 0.05)
//
// Estimate returns the expected runtime; Bound returns a runtime budget
// sufficient with probability ≥ 1−ε, guaranteed by split conformal
// calibration. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-reproduction results.
package pitot

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/conformal"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/wasmcluster"
)

// Dataset is a collection of runtime observations with entity metadata and
// side-information features.
type Dataset = dataset.Dataset

// Observation is one measured (workload, platform, interference) runtime.
type Observation = dataset.Observation

// DatasetConfig controls synthetic dataset generation (the substitute for
// the paper's physical WebAssembly cluster; see DESIGN.md).
type DatasetConfig = wasmcluster.Config

// GenerateDataset produces a synthetic runtime dataset with the paper's
// structure: heterogeneous platforms, suite-structured workloads, opcode
// and platform features, and 2/3/4-way interference observations.
func GenerateDataset(cfg DatasetConfig) *Dataset {
	return wasmcluster.New(cfg).Generate()
}

// ReadDataset deserializes a dataset written by Dataset.WriteJSON.
func ReadDataset(r io.Reader) (*Dataset, error) { return dataset.ReadJSON(r) }

// ModelConfig exposes the full hyperparameter surface of the core model.
type ModelConfig = core.Config

// DefaultModelConfig returns paper-faithful hyperparameters.
func DefaultModelConfig(seed int64) ModelConfig { return core.DefaultConfig(seed) }

// Options configures Train.
type Options struct {
	// Seed drives all randomness (splits, initialization, batching).
	Seed int64
	// Model overrides the model configuration; zero value = defaults.
	Model *ModelConfig
	// EnableBounds additionally trains the multi-quantile model required
	// by Bound; Estimate works either way.
	EnableBounds bool
	// HoldoutFraction is the share of observations reserved for validation
	// and conformal calibration (default 0.2, split evenly).
	HoldoutFraction float64
}

// Predictor is a trained Pitot model ready for estimation and bounding.
type Predictor struct {
	ds    *Dataset
	mean  *core.Model
	quant *core.Model
	split dataset.Split

	bounders map[float64]*conformal.Bounder
}

// Train fits Pitot on the dataset. All observations are used: 80% (by
// default) for fitting and the rest for validation and calibration.
func Train(ds *Dataset, opts Options) (*Predictor, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	hold := opts.HoldoutFraction
	if hold == 0 {
		hold = 0.2
	}
	if hold <= 0 || hold >= 1 {
		return nil, fmt.Errorf("pitot: holdout fraction %v out of (0,1)", hold)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(ds.Obs))
	nHold := int(hold * float64(len(ds.Obs)))
	nVal := nHold / 2
	split := dataset.Split{
		Val:   perm[:nVal],
		Cal:   perm[nVal:nHold],
		Train: perm[nHold:],
	}

	cfg := core.DefaultConfig(opts.Seed)
	if opts.Model != nil {
		cfg = *opts.Model
		cfg.Seed = opts.Seed
	}
	cfg.Quantiles = nil
	mean, err := core.NewModel(cfg, ds)
	if err != nil {
		return nil, err
	}
	if _, err := mean.Train(split); err != nil {
		return nil, err
	}
	p := &Predictor{ds: ds, mean: mean, split: split, bounders: map[float64]*conformal.Bounder{}}

	if opts.EnableBounds {
		qcfg := cfg
		qcfg.Quantiles = core.PaperQuantiles()
		qcfg.Seed = opts.Seed + 1
		quant, err := core.NewModel(qcfg, ds)
		if err != nil {
			return nil, err
		}
		if _, err := quant.Train(split); err != nil {
			return nil, err
		}
		p.quant = quant
	}
	return p, nil
}

// Estimate returns the predicted runtime in seconds of workload w on
// platform pl while the interferers run simultaneously (nil for isolation).
func (p *Predictor) Estimate(w, pl int, interferers []int) float64 {
	return p.mean.PredictSeconds(w, pl, interferers, 0)
}

// Query identifies one (workload, platform, interferers) prediction for
// EstimateBatch and BoundBatch.
type Query = core.Query

// EstimateBatch returns the predicted runtime in seconds for every query.
// It vectorizes over the cached embedding tables: queries sharing a
// (platform, interferer set) — the shape of a scheduler scanning candidate
// workloads per platform — amortize the interference term into a single
// effective platform vector, and independent groups fan out across
// worker goroutines. Several times faster than looping Estimate; up to
// ~10^-12 relative floating-point reassociation difference per prediction.
func (p *Predictor) EstimateBatch(qs []Query) []float64 {
	out := make([]float64, len(qs))
	p.mean.PredictSecondsBatch(qs, 0, out)
	return out
}

// BoundBatch returns, for every query, a runtime budget in seconds that is
// sufficient with probability at least 1−eps — Bound vectorized the same
// way as EstimateBatch, with the conformal calibration shared across the
// whole batch. Requires Options.EnableBounds at training time.
func (p *Predictor) BoundBatch(qs []Query, eps float64) ([]float64, error) {
	if p.quant == nil {
		return nil, fmt.Errorf("pitot: bounds not enabled; train with Options.EnableBounds")
	}
	b, err := p.bounder(eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(qs))
	p.quant.PredictLogSecondsBatch(qs, b.Head, out)
	for i := range out {
		out[i] = math.Exp(b.Bound(out[i], len(qs[i].Interferers)))
	}
	return out, nil
}

// Bound returns a runtime budget in seconds that is sufficient with
// probability at least 1−eps (paper Eq. 10), using conformalized quantile
// regression with per-degree calibration pools and optimal head selection.
// Requires Options.EnableBounds at training time. A +Inf result means the
// calibration set is too small for the requested eps.
func (p *Predictor) Bound(w, pl int, interferers []int, eps float64) (float64, error) {
	if p.quant == nil {
		return 0, fmt.Errorf("pitot: bounds not enabled; train with Options.EnableBounds")
	}
	b, err := p.bounder(eps)
	if err != nil {
		return 0, err
	}
	pred := p.quant.PredictLogSeconds(w, pl, interferers, b.Head)
	return math.Exp(b.Bound(pred, len(interferers))), nil
}

// bounder calibrates (and caches) the conformal bounder for eps.
func (p *Predictor) bounder(eps float64) (*conformal.Bounder, error) {
	if b, ok := p.bounders[eps]; ok {
		return b, nil
	}
	hp := eval.BuildHeadPredictions(p.ds, quantAdapter{p.quant}, p.split)
	b, err := conformal.Calibrate(hp, eps, conformal.SelectOptimal)
	if err != nil {
		return nil, err
	}
	p.bounders[eps] = b
	return b, nil
}

// quantAdapter exposes the quantile model through eval.Trained.
type quantAdapter struct{ m *core.Model }

func (a quantAdapter) PredictLogObs(idx []int, head int) []float64 {
	d := a.m.Dataset()
	out := make([]float64, len(idx))
	for i, oi := range idx {
		o := d.Obs[oi]
		out[i] = a.m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, head)
	}
	return out
}
func (a quantAdapter) NumHeads() int        { return a.m.Cfg.NumHeads() }
func (a quantAdapter) Quantiles() []float64 { return a.m.Cfg.Quantiles }

// WorkloadEmbeddings returns the learned per-workload embedding vectors
// (rows aligned with Dataset.WorkloadNames), usable for clustering or
// anomaly detection (paper §5.4).
func (p *Predictor) WorkloadEmbeddings() [][]float64 {
	m := p.mean.WorkloadEmbeddings(0)
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// PlatformEmbeddings returns the learned per-platform embedding vectors.
func (p *Predictor) PlatformEmbeddings() [][]float64 {
	m := p.mean.PlatformEmbeddings()
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// InterferenceNorm returns ‖F_j‖₂ for a platform: how strongly workloads
// can interfere there (paper Fig. 12d).
func (p *Predictor) InterferenceNorm(platform int) float64 {
	return p.mean.InterferenceNorm(platform)
}

// EstimateSeconds is Estimate under the name internal/sched.Predictor
// expects, so a trained Predictor plugs directly into the scheduler.
func (p *Predictor) EstimateSeconds(w, pl int, interferers []int) float64 {
	return p.Estimate(w, pl, interferers)
}

// BoundSeconds is Bound with errors mapped to +Inf (infeasible), matching
// internal/sched.Predictor.
func (p *Predictor) BoundSeconds(w, pl int, interferers []int, eps float64) float64 {
	b, err := p.Bound(w, pl, interferers, eps)
	if err != nil {
		return math.Inf(1)
	}
	return b
}

// Observe incorporates freshly measured observations into the predictor —
// the paper's "efficient online learning" future-work extension (§6). New
// measurements are appended to the dataset and the model is fine-tuned on
// them (with replay of the original training data to prevent forgetting).
// Conformal calibrations are invalidated and recomputed lazily on the next
// Bound call.
func (p *Predictor) Observe(obs []Observation) error {
	if len(obs) == 0 {
		return fmt.Errorf("pitot: no observations")
	}
	start := len(p.ds.Obs)
	p.ds.Obs = append(p.ds.Obs, obs...)
	if err := p.ds.Validate(); err != nil {
		p.ds.Obs = p.ds.Obs[:start]
		return err
	}
	newIdx := make([]int, len(obs))
	for i := range newIdx {
		newIdx[i] = start + i
	}
	if err := p.mean.OnlineUpdate(newIdx, p.split.Train, core.OnlineConfig{Seed: int64(start)}); err != nil {
		return err
	}
	if p.quant != nil {
		if err := p.quant.OnlineUpdate(newIdx, p.split.Train, core.OnlineConfig{Seed: int64(start) + 1}); err != nil {
			return err
		}
	}
	// Fold the new observations into the calibration pool and drop stale
	// bounders (recomputed on demand).
	p.split.Cal = append(p.split.Cal, newIdx...)
	p.bounders = map[float64]*conformal.Bounder{}
	return nil
}

// SaveModel persists the mean model (and quantile model if present).
func (p *Predictor) SaveModel(meanW, quantW io.Writer) error {
	if err := p.mean.Save(meanW); err != nil {
		return err
	}
	if p.quant != nil && quantW != nil {
		return p.quant.Save(quantW)
	}
	return nil
}
