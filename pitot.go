// Package pitot is the public API of this repository: a Go implementation
// of Pitot, the interference-aware edge runtime predictor with conformal
// uncertainty bounds from
//
//	"Interference-aware Edge Runtime Prediction with Conformal Matrix
//	Completion" (Huang et al., MLSys 2025, arXiv:2503.06428).
//
// The package wraps the internal building blocks (two-tower matrix
// factorization with side information, log-residual objective,
// interference term, conformalized quantile regression) behind a small
// deployment-oriented surface:
//
//	ds := pitot.GenerateDataset(pitot.DatasetConfig{Seed: 1})
//	pred, _ := pitot.Train(ds, pitot.Options{Seed: 1, EnableBounds: true})
//	sec := pred.Estimate(workload, platform, interferers)
//	bound, _ := pred.Bound(workload, platform, interferers, 0.05)
//
// Estimate returns the expected runtime; Bound returns a runtime budget
// sufficient with probability ≥ 1−ε, guaranteed by split conformal
// calibration.
//
// A Predictor is safe for concurrent use by any number of goroutines: all
// read state lives in an immutable snapshot behind an atomic pointer, so
// Estimate/EstimateBatch/Bound/BoundBatch are lock-free, and Observe
// fine-tunes a private copy of the model before publishing a new snapshot
// (readers never see a half-updated model).
//
// The predictor also backs the failure-aware orchestration stack
// (internal/sched, internal/serve): it implements the scheduler-facing
// batch, fused two-head, and feedback surfaces, so placement policies
// score candidate platforms — skipping failed ones and padding degraded
// ones — directly against the live model snapshot. See DESIGN.md for the
// snapshot and failure-model architecture and EXPERIMENTS.md for the
// paper-reproduction results.
package pitot

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/conformal"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/sched"
	"repro/internal/wasmcluster"
)

// Dataset is a collection of runtime observations with entity metadata and
// side-information features.
type Dataset = dataset.Dataset

// Observation is one measured (workload, platform, interference) runtime.
type Observation = dataset.Observation

// DatasetConfig controls synthetic dataset generation (the substitute for
// the paper's physical WebAssembly cluster; see DESIGN.md).
type DatasetConfig = wasmcluster.Config

// GenerateDataset produces a synthetic runtime dataset with the paper's
// structure: heterogeneous platforms, suite-structured workloads, opcode
// and platform features, and 2/3/4-way interference observations.
func GenerateDataset(cfg DatasetConfig) *Dataset {
	return wasmcluster.New(cfg).Generate()
}

// ReadDataset deserializes a dataset written by Dataset.WriteJSON.
func ReadDataset(r io.Reader) (*Dataset, error) { return dataset.ReadJSON(r) }

// ModelConfig exposes the full hyperparameter surface of the core model.
type ModelConfig = core.Config

// DefaultModelConfig returns paper-faithful hyperparameters.
func DefaultModelConfig(seed int64) ModelConfig { return core.DefaultConfig(seed) }

// Options configures Train.
type Options struct {
	// Seed drives all randomness (splits, initialization, batching).
	Seed int64
	// Model overrides the model configuration; zero value = defaults.
	Model *ModelConfig
	// EnableBounds additionally trains the multi-quantile model required
	// by Bound; Estimate works either way.
	EnableBounds bool
	// HoldoutFraction is the share of observations reserved for validation
	// and conformal calibration (default 0.2, split evenly).
	HoldoutFraction float64
}

// snapshot is one immutable published state of a Predictor: the dataset
// view, the trained models with their embedding caches, the holdout split
// used for calibration, and the per-eps conformal bounder cache. Once a
// snapshot is published via Predictor.snap nothing in it is mutated — the
// only "write" is the copy-on-write insertion of freshly calibrated
// bounders, which swaps an immutable map for an extended copy.
type snapshot struct {
	ds      *dataset.Dataset
	mean    *core.Model
	quant   *core.Model // nil unless Options.EnableBounds
	split   dataset.Split
	version uint64
	// fast selects the approximate fused scoring kernel
	// (core.PredictFusedBatchFast) for this snapshot's ScoreBatch/
	// ScoreSecondsBatch. Carried on the snapshot — not read from mutable
	// config — so a concurrent SetFastScoring never mixes kernels inside
	// one batch: every reader scores its whole batch with the kernel of
	// the snapshot it loaded.
	fast bool

	// bounders holds the per-eps conformal calibrations for this snapshot.
	// Reads are a single atomic load; a cache miss calibrates off to the
	// side and publishes old∪{eps} with a compare-and-swap. Losing the race
	// costs a redundant (idempotent) calibration, never correctness.
	bounders atomic.Pointer[map[float64]*conformal.Bounder]
}

func newSnapshot(ds *dataset.Dataset, mean, quant *core.Model, split dataset.Split, version uint64, fast bool) *snapshot {
	s := &snapshot{ds: ds, mean: mean, quant: quant, split: split, version: version, fast: fast}
	empty := map[float64]*conformal.Bounder{}
	s.bounders.Store(&empty)
	return s
}

// bounder returns the conformal bounder for eps, calibrating it on first
// use. Lock-free: concurrent callers with the same fresh eps may both
// calibrate, but exactly one result is published and calibration is
// deterministic, so both callers return equivalent bounders.
func (s *snapshot) bounder(eps float64) (*conformal.Bounder, error) {
	if b, ok := (*s.bounders.Load())[eps]; ok {
		return b, nil
	}
	// Calibrate once, off to the side; the retry loop below only re-merges
	// the result if another eps was published concurrently.
	hp := eval.BuildHeadPredictions(s.ds, quantAdapter{s.quant}, s.split)
	b, err := conformal.Calibrate(hp, eps, conformal.SelectOptimal)
	if err != nil {
		return nil, err
	}
	for {
		cur := s.bounders.Load()
		if published, ok := (*cur)[eps]; ok {
			// A racing caller published this eps first; converge on the
			// single published instance.
			return published, nil
		}
		next := make(map[float64]*conformal.Bounder, len(*cur)+1)
		for k, v := range *cur {
			next[k] = v
		}
		next[eps] = b
		if s.bounders.CompareAndSwap(cur, &next) {
			return b, nil
		}
	}
}

// Predictor is a trained Pitot model ready for estimation and bounding.
//
// A Predictor must be obtained from Train or LoadPredictor. It is safe for
// concurrent use: Estimate, EstimateBatch, Bound, BoundBatch, and the
// embedding accessors are lock-free reads of the current snapshot, while
// Observe (the only writer) prepares a new snapshot privately and publishes
// it with one atomic pointer swap. Readers that started on the previous
// snapshot finish on it — predictions are snapshot-consistent, never torn.
type Predictor struct {
	snap atomic.Pointer[snapshot]
	mu   sync.Mutex // serializes writers (Observe); readers never take it
}

func newPredictor(s *snapshot) *Predictor {
	p := &Predictor{}
	p.snap.Store(s)
	return p
}

// Train fits Pitot on the dataset. All observations are used: 80% (by
// default) for fitting and the rest for validation and calibration. The
// dataset is owned by the returned Predictor and must not be mutated by
// the caller afterwards.
func Train(ds *Dataset, opts Options) (*Predictor, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	hold := opts.HoldoutFraction
	if hold == 0 {
		hold = 0.2
	}
	if hold <= 0 || hold >= 1 {
		return nil, fmt.Errorf("pitot: holdout fraction %v out of (0,1)", hold)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(ds.Obs))
	nHold := int(hold * float64(len(ds.Obs)))
	nVal := nHold / 2
	split := dataset.Split{
		Val:   perm[:nVal],
		Cal:   perm[nVal:nHold],
		Train: perm[nHold:],
	}

	cfg := core.DefaultConfig(opts.Seed)
	if opts.Model != nil {
		cfg = *opts.Model
		cfg.Seed = opts.Seed
	}
	cfg.Quantiles = nil
	mean, err := core.NewModel(cfg, ds)
	if err != nil {
		return nil, err
	}
	if _, err := mean.Train(split); err != nil {
		return nil, err
	}

	var quant *core.Model
	if opts.EnableBounds {
		qcfg := cfg
		qcfg.Quantiles = core.PaperQuantiles()
		qcfg.Seed = opts.Seed + 1
		quant, err = core.NewModel(qcfg, ds)
		if err != nil {
			return nil, err
		}
		if _, err := quant.Train(split); err != nil {
			return nil, err
		}
	}
	return newPredictor(newSnapshot(ds, mean, quant, split, 0, cfg.FastScoring)), nil
}

// Estimate returns the predicted runtime in seconds of workload w on
// platform pl while the interferers run simultaneously (nil for isolation).
// Lock-free and safe from any number of goroutines.
func (p *Predictor) Estimate(w, pl int, interferers []int) float64 {
	return p.snap.Load().mean.PredictSeconds(w, pl, interferers, 0)
}

// Query identifies one (workload, platform, interferers) prediction for
// EstimateBatch and BoundBatch.
type Query = core.Query

// EstimateBatch returns the predicted runtime in seconds for every query.
// It vectorizes over the cached embedding tables: queries sharing a
// (platform, interferer set) — the shape of a scheduler scanning candidate
// workloads per platform — amortize the interference term into a single
// effective platform vector, and independent groups fan out across
// worker goroutines. Several times faster than looping Estimate; up to
// ~10^-12 relative floating-point reassociation difference per prediction.
// The whole batch is served from one snapshot.
func (p *Predictor) EstimateBatch(qs []Query) []float64 {
	out := make([]float64, len(qs))
	p.snap.Load().mean.PredictSecondsBatch(qs, 0, out)
	return out
}

// BoundBatch returns, for every query, a runtime budget in seconds that is
// sufficient with probability at least 1−eps — Bound vectorized the same
// way as EstimateBatch, with the conformal calibration shared across the
// whole batch. Requires Options.EnableBounds at training time.
func (p *Predictor) BoundBatch(qs []Query, eps float64) ([]float64, error) {
	s := p.snap.Load()
	if s.quant == nil {
		return nil, fmt.Errorf("pitot: bounds not enabled; train with Options.EnableBounds")
	}
	b, err := s.bounder(eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(qs))
	s.quant.PredictLogSecondsBatch(qs, b.Head, out)
	for i := range out {
		out[i] = math.Exp(b.Bound(out[i], len(qs[i].Interferers)))
	}
	return out, nil
}

// ScoreBatch returns, for every query, both predictor heads in one fused
// pass: the expected runtime (as EstimateBatch) and the conformal (1−eps)
// budget (as BoundBatch). The two models share one platform-major span
// traversal — each platform's interference term is folded once per model
// per span instead of once per pass, the conformal offset is hoisted per
// span, and one worker fan-out serves both heads — so mixed mean/bound
// scheduling policies pay roughly one pass instead of two. Outputs are
// bitwise-identical to calling EstimateBatch and BoundBatch separately —
// unless fast scoring is on (ModelConfig.FastScoring at training time, or
// SetFastScoring), which trades bitwise identity for the approximate
// kernel: every score then stays within core.FastScoreMaxRelErr relative
// of the exact result (core.FastF32MaxRelErr for the mean head under
// ModelConfig.FastScoringF32). The scoring mode is part of the snapshot,
// so one batch is never served by a mix of kernels.
// Requires Options.EnableBounds; the whole batch is served from one
// snapshot. Lock-free and safe from any number of goroutines.
func (p *Predictor) ScoreBatch(qs []Query, eps float64) (mean, bound []float64, err error) {
	mean = make([]float64, len(qs))
	bound = make([]float64, len(qs))
	if err := p.snap.Load().scoreInto(qs, eps, mean, bound); err != nil {
		return nil, nil, err
	}
	return mean, bound, nil
}

// scoreInto is ScoreBatch into caller-owned buffers, pinned to one
// snapshot (and therefore to one scoring kernel).
func (s *snapshot) scoreInto(qs []Query, eps float64, mean, bound []float64) error {
	if s.quant == nil {
		return fmt.Errorf("pitot: bounds not enabled; train with Options.EnableBounds")
	}
	b, err := s.bounder(eps)
	if err != nil {
		return err
	}
	kernel := core.PredictFusedBatch
	if s.fast {
		kernel = core.PredictFusedBatchFast
	}
	kernel(s.mean, s.quant, qs, b.Head, func(degree int) float64 {
		off, ok := b.Offsets[degree]
		if !ok {
			off = b.MaxOffset
		}
		return off
	}, mean, bound)
	return nil
}

// SetFastScoring toggles the approximate fused scoring kernel at runtime
// by publishing a new snapshot that shares the current models, dataset,
// and conformal calibrations but scores with the requested kernel. Safe
// under concurrent readers and Observe: readers mid-batch finish on the
// kernel of the snapshot they loaded — no batch mixes kernels — and the
// mode survives subsequent Observe updates. The toggle is runtime-only:
// SaveModel persists the trained ModelConfig.FastScoring flag, not this
// override. See ScoreBatch for the accuracy contract.
func (p *Predictor) SetFastScoring(enabled bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.snap.Load()
	if cur.fast == enabled {
		return
	}
	next := newSnapshot(cur.ds, cur.mean, cur.quant, cur.split, cur.version, enabled)
	// Calibrations are immutable per (snapshot lineage, eps); carry them
	// over instead of recalibrating.
	next.bounders.Store(cur.bounders.Load())
	p.snap.Store(next)
}

// Bound returns a runtime budget in seconds that is sufficient with
// probability at least 1−eps (paper Eq. 10), using conformalized quantile
// regression with per-degree calibration pools and optimal head selection.
// Requires Options.EnableBounds at training time. A +Inf result means the
// calibration set is too small for the requested eps. Lock-free: the
// per-eps calibration is cached per snapshot with a copy-on-write swap.
func (p *Predictor) Bound(w, pl int, interferers []int, eps float64) (float64, error) {
	s := p.snap.Load()
	if s.quant == nil {
		return 0, fmt.Errorf("pitot: bounds not enabled; train with Options.EnableBounds")
	}
	b, err := s.bounder(eps)
	if err != nil {
		return 0, err
	}
	pred := s.quant.PredictLogSeconds(w, pl, interferers, b.Head)
	return math.Exp(b.Bound(pred, len(interferers))), nil
}

// quantAdapter exposes the quantile model through eval.Trained.
type quantAdapter struct{ m *core.Model }

func (a quantAdapter) PredictLogObs(idx []int, head int) []float64 {
	d := a.m.Dataset()
	out := make([]float64, len(idx))
	for i, oi := range idx {
		o := d.Obs[oi]
		out[i] = a.m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, head)
	}
	return out
}
func (a quantAdapter) NumHeads() int        { return a.m.Cfg.NumHeads() }
func (a quantAdapter) Quantiles() []float64 { return a.m.Cfg.Quantiles }

// Info describes the currently published snapshot of a Predictor.
type Info struct {
	// Version counts published snapshots, starting at 0 for the trained or
	// loaded state; every successful Observe increments it. Readers can use
	// it to detect model updates (it is monotonically non-decreasing).
	Version uint64
	// Observations is the dataset size of the snapshot.
	Observations int
	Workloads    int
	Platforms    int
	// Bounds reports whether the quantile model is present (Bound works).
	Bounds bool
	// FastScoring reports whether the snapshot scores with the approximate
	// fused kernel (ModelConfig.FastScoring or SetFastScoring).
	FastScoring bool
}

// Info returns metadata about the currently published snapshot. Lock-free.
func (p *Predictor) Info() Info {
	s := p.snap.Load()
	return Info{
		Version:      s.version,
		Observations: len(s.ds.Obs),
		Workloads:    s.ds.NumWorkloads(),
		Platforms:    s.ds.NumPlatforms(),
		Bounds:       s.quant != nil,
		FastScoring:  s.fast,
	}
}

// Version returns the published snapshot version (see Info.Version).
func (p *Predictor) Version() uint64 { return p.snap.Load().version }

// ScoreEpoch returns an opaque value that changes whenever the predictor
// would score the same query differently. It folds the snapshot version
// together with the fast-scoring mode bit: SetFastScoring republishes the
// snapshot under the same Version but swaps the scoring kernel, so version
// alone is not a safe cache key for scores. Lock-free; both facets are
// read from one atomic snapshot load, so the pair is always consistent.
func (p *Predictor) ScoreEpoch() uint64 {
	s := p.snap.Load()
	e := s.version << 1
	if s.fast {
		e |= 1
	}
	return e
}

// WorkloadEmbeddings returns the learned per-workload embedding vectors
// (rows aligned with Dataset.WorkloadNames), usable for clustering or
// anomaly detection (paper §5.4).
func (p *Predictor) WorkloadEmbeddings() [][]float64 {
	m := p.snap.Load().mean.WorkloadEmbeddings(0)
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// PlatformEmbeddings returns the learned per-platform embedding vectors.
func (p *Predictor) PlatformEmbeddings() [][]float64 {
	m := p.snap.Load().mean.PlatformEmbeddings()
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// InterferenceNorm returns ‖F_j‖₂ for a platform: how strongly workloads
// can interfere there (paper Fig. 12d).
func (p *Predictor) InterferenceNorm(platform int) float64 {
	return p.snap.Load().mean.InterferenceNorm(platform)
}

// The facade is the orchestration engine's batch-scoring predictor (fused
// two-head variant included) and its online-feedback sink.
var (
	_ sched.BatchPredictor = (*Predictor)(nil)
	_ sched.FusedPredictor = (*Predictor)(nil)
	_ sched.Observer       = (*Predictor)(nil)
)

// EstimateSeconds is Estimate under the name internal/sched.Predictor
// expects, so a trained Predictor plugs directly into the scheduler.
func (p *Predictor) EstimateSeconds(w, pl int, interferers []int) float64 {
	return p.Estimate(w, pl, interferers)
}

// BoundSeconds is Bound with errors mapped to +Inf (infeasible), matching
// internal/sched.Predictor.
func (p *Predictor) BoundSeconds(w, pl int, interferers []int, eps float64) float64 {
	b, err := p.Bound(w, pl, interferers, eps)
	if err != nil {
		return math.Inf(1)
	}
	return b
}

// EstimateSecondsBatch is EstimateBatch under the sched.BatchPredictor
// name: the scheduler scores a job's whole candidate set (or a whole wave
// of jobs) in one vectorized pass instead of one scalar call per platform.
func (p *Predictor) EstimateSecondsBatch(qs []Query) []float64 {
	return p.EstimateBatch(qs)
}

// BoundSecondsBatch is BoundBatch with errors mapped to +Inf, matching
// sched.BatchPredictor's infeasibility convention. The errors BoundBatch
// can return — bounds not enabled, or a calibration failure for eps — are
// batch-level conditions, not per-query ones, so a failure marks the
// entire batch infeasible: every query comes back +Inf. The whole batch
// shares one conformal calibration fetch and one model snapshot.
func (p *Predictor) BoundSecondsBatch(qs []Query, eps float64) []float64 {
	out, err := p.BoundBatch(qs, eps)
	if err != nil {
		out = make([]float64, len(qs))
		for i := range out {
			out[i] = math.Inf(1)
		}
	}
	return out
}

// ScoreSecondsBatch is ScoreBatch under the sched.FusedPredictor name:
// both heads of the whole wave in one pass, with errors (bounds not
// enabled, bad eps) mapped to +Inf bounds and plain mean estimates,
// matching the scheduler's infeasibility convention. The fallback fills
// the caller's buffers in place from the same snapshot that failed the
// fused pass — no allocation, and no chance of the means coming from a
// newer snapshot than the error did.
func (p *Predictor) ScoreSecondsBatch(qs []Query, eps float64, meanOut, boundOut []float64) {
	s := p.snap.Load()
	if err := s.scoreInto(qs, eps, meanOut, boundOut); err != nil {
		s.mean.PredictSecondsBatch(qs, 0, meanOut)
		for i := range boundOut {
			boundOut[i] = math.Inf(1)
		}
	}
}

// ObserveSeconds is the orchestration feedback bridge: measured runtimes
// reported by the simulator or a live orchestrator (sched.Measurement) are
// converted to dataset observations and absorbed via Observe, fine-tuning
// the models and folding the measurements into the conformal calibration
// pool of the next snapshot. An empty slice is a no-op returning nil, so
// timer-driven feedback flushes that fire with nothing buffered don't
// surface spurious failures. Implements sched.Observer.
func (p *Predictor) ObserveSeconds(ms []sched.Measurement) error {
	if len(ms) == 0 {
		return nil
	}
	obs := make([]Observation, len(ms))
	for i, m := range ms {
		obs[i] = Observation{
			Workload:    m.Workload,
			Platform:    m.Platform,
			Interferers: m.Interferers,
			Seconds:     m.Seconds,
		}
	}
	return p.Observe(obs)
}

// Observe incorporates freshly measured observations into the predictor —
// the paper's "efficient online learning" future-work extension (§6). New
// measurements are appended to a private copy of the dataset and the models
// are fine-tuned on clones (with replay of the original training data to
// prevent forgetting); the result is published as a new snapshot with one
// atomic swap, so concurrent readers are never blocked and never see a
// half-updated model — they serve the previous snapshot until the swap.
// The new snapshot's conformal calibrations start empty and are recomputed
// lazily (now folding the new observations into the calibration pool) on
// the next Bound call.
//
// Concurrent Observe calls are serialized; each incorporates the
// observations of all previously returned calls.
func (p *Predictor) Observe(obs []Observation) error {
	if len(obs) == 0 {
		return fmt.Errorf("pitot: no observations")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.snap.Load()

	ds := cur.ds.CloneAppend(obs)
	if err := ds.Validate(); err != nil {
		return err
	}
	start := len(cur.ds.Obs)
	newIdx := make([]int, len(obs))
	for i := range newIdx {
		newIdx[i] = start + i
	}

	mean, err := cur.mean.Clone(ds)
	if err != nil {
		return err
	}
	if err := mean.OnlineUpdate(newIdx, cur.split.Train, core.OnlineConfig{Seed: int64(start)}); err != nil {
		return err
	}
	var quant *core.Model
	if cur.quant != nil {
		quant, err = cur.quant.Clone(ds)
		if err != nil {
			return err
		}
		if err := quant.OnlineUpdate(newIdx, cur.split.Train, core.OnlineConfig{Seed: int64(start) + 1}); err != nil {
			return err
		}
	}

	// Fold the new observations into the calibration pool of the new
	// snapshot; Train/Val/Test index the shared prefix and are reused.
	split := dataset.Split{
		Train: cur.split.Train,
		Val:   cur.split.Val,
		Test:  cur.split.Test,
	}
	split.Cal = make([]int, 0, len(cur.split.Cal)+len(newIdx))
	split.Cal = append(split.Cal, cur.split.Cal...)
	split.Cal = append(split.Cal, newIdx...)

	p.snap.Store(newSnapshot(ds, mean, quant, split, cur.version+1, cur.fast))
	return nil
}

// predictorMagic identifies SaveModel's mean stream. Gob ignores unknown
// fields, so without it a raw core model stream (cmd/train's format) would
// silently decode into an empty predictorFile; the magic turns that
// cross-format mistake into a clear error.
const predictorMagic = "pitot/predictor-v1"

// predictorFile is the on-disk form of SaveModel's mean stream: the core
// model bytes plus the holdout split, which LoadPredictor needs to
// re-calibrate conformal bounders identically to the saved predictor.
type predictorFile struct {
	Magic string
	Split dataset.Split
	Mean  []byte
}

// SaveModel persists the predictor: the mean stream carries the mean model
// together with the holdout split (so bounders recalibrate identically on
// load); the quantile model, if present and quantW is non-nil, is written
// to quantW in the plain core format. The pair is read back with
// LoadPredictor against the dataset the predictor was trained on.
//
// If Observe has been called, the snapshot's dataset has grown past the
// caller's copy and the persisted split references the grown dataset — use
// Export instead, which also writes the dataset, or the load will fail.
// The write is snapshot-consistent under concurrent Observe.
func (p *Predictor) SaveModel(meanW, quantW io.Writer) error {
	return saveSnapshot(p.snap.Load(), meanW, quantW)
}

// Export persists the predictor's full serving state — dataset (in the
// WriteJSON wire format), mean stream, and quantile model — all taken from
// one snapshot, so the three artifacts are mutually consistent even under
// concurrent Observe. Restore with ReadDataset + LoadPredictor. This is
// the save path for a serving daemon that has accepted /observe traffic.
func (p *Predictor) Export(dataW, meanW, quantW io.Writer) error {
	s := p.snap.Load()
	if err := s.ds.WriteJSON(dataW); err != nil {
		return err
	}
	return saveSnapshot(s, meanW, quantW)
}

func saveSnapshot(s *snapshot, meanW, quantW io.Writer) error {
	var buf bytes.Buffer
	if err := s.mean.Save(&buf); err != nil {
		return err
	}
	pf := predictorFile{Magic: predictorMagic, Split: s.split, Mean: buf.Bytes()}
	if err := gob.NewEncoder(meanW).Encode(&pf); err != nil {
		return fmt.Errorf("pitot: encode predictor: %w", err)
	}
	if s.quant != nil && quantW != nil {
		return s.quant.Save(quantW)
	}
	return nil
}

// LoadPredictor rebuilds a Predictor from streams written by SaveModel and
// the dataset it was trained on (e.g. from ReadDataset). quantR may be nil
// for a predictor saved without bounds. The loaded predictor's Estimate and
// Bound outputs are bitwise identical to the saved one's: parameters and
// the baseline are restored exactly, embedding caches are recomputed
// deterministically, and conformal bounders recalibrate from the persisted
// split. The dataset is owned by the returned Predictor and must not be
// mutated by the caller afterwards.
func LoadPredictor(ds *Dataset, meanR, quantR io.Reader) (*Predictor, error) {
	if ds == nil {
		return nil, fmt.Errorf("pitot: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	var pf predictorFile
	if err := gob.NewDecoder(meanR).Decode(&pf); err != nil {
		return nil, fmt.Errorf("pitot: decode predictor: %w", err)
	}
	if pf.Magic != predictorMagic {
		return nil, fmt.Errorf("pitot: mean stream is not a predictor written by SaveModel/Export "+
			"(magic %q; raw core model files from cmd/train are a different format)", pf.Magic)
	}
	for _, idx := range [][]int{pf.Split.Train, pf.Split.Val, pf.Split.Cal, pf.Split.Test} {
		for _, i := range idx {
			if i < 0 || i >= len(ds.Obs) {
				return nil, fmt.Errorf("pitot: split index %d out of range for %d observations "+
					"(was the predictor saved after Observe? persist the grown dataset with Export)", i, len(ds.Obs))
			}
		}
	}
	mean, err := core.Load(bytes.NewReader(pf.Mean), ds)
	if err != nil {
		return nil, err
	}
	var quant *core.Model
	if quantR != nil {
		quant, err = core.Load(quantR, ds)
		if err != nil {
			return nil, err
		}
	}
	// The fast-scoring flag rides in the persisted model config, so a
	// predictor trained with ModelConfig.FastScoring reloads in fast mode
	// (streams written before the flag existed load with it off).
	return newPredictor(newSnapshot(ds, mean, quant, pf.Split, 0, mean.Cfg.FastScoring)), nil
}
