package pitot

import (
	"math"
	"testing"
)

func smallDataset() *Dataset {
	return GenerateDataset(DatasetConfig{Seed: 11, NumWorkloads: 24, MaxDevices: 4, SetsPerDegree: 10})
}

func smallOptions(seed int64, bounds bool) Options {
	cfg := DefaultModelConfig(seed)
	cfg.Hidden = 32
	cfg.EmbeddingDim = 16
	cfg.Steps = 400
	cfg.BatchPerDegree = 128
	cfg.EvalEvery = 100
	return Options{Seed: seed, Model: &cfg, EnableBounds: bounds}
}

func TestTrainAndEstimate(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(1, false))
	if err != nil {
		t.Fatal(err)
	}
	est := pred.Estimate(0, 0, nil)
	if !(est > 0) || math.IsInf(est, 0) {
		t.Fatalf("Estimate = %v", est)
	}
	// Sanity: the estimate for a known observation should be within a
	// factor of ~2 of the measurement for most pairs; check a loose bound
	// on the first isolation observation.
	o := ds.Obs[0]
	got := pred.Estimate(o.Workload, o.Platform, o.Interferers)
	ratio := got / o.Seconds
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("estimate %.4fs vs measured %.4fs (ratio %.2f)", got, o.Seconds, ratio)
	}
}

func TestBoundRequiresEnable(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(2, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.Bound(0, 0, nil, 0.1); err == nil {
		t.Fatal("Bound without EnableBounds must error")
	}
}

func TestBoundCoversEstimate(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(3, true))
	if err != nil {
		t.Fatal(err)
	}
	covered, total := 0, 0
	for i, o := range ds.Obs {
		if i%37 != 0 { // subsample for speed
			continue
		}
		b, err := pred.Bound(o.Workload, o.Platform, o.Interferers, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if !(b > 0) {
			t.Fatalf("bound = %v", b)
		}
		if o.Seconds <= b {
			covered++
		}
		total++
	}
	// In-sample check is optimistic, but coverage must be near 1-eps.
	if rate := float64(covered) / float64(total); rate < 0.8 {
		t.Fatalf("bound coverage %.3f too low", rate)
	}
}

func TestBoundMonotoneInEps(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(4, true))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := pred.Bound(1, 1, nil, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := pred.Bound(1, 1, nil, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if tight < loose {
		t.Fatalf("eps=0.05 bound %.4f below eps=0.2 bound %.4f", tight, loose)
	}
	// NaN eps must error, not return a garbage bound (a NaN calibration
	// would pick the least conservative quantile and its cache key could
	// never be found again, growing the bounder cache on every call).
	if _, err := pred.Bound(1, 1, nil, math.NaN()); err == nil {
		t.Fatal("Bound accepted eps=NaN")
	}
	if _, err := pred.BoundBatch([]Query{{Workload: 1, Platform: 1}}, math.NaN()); err == nil {
		t.Fatal("BoundBatch accepted eps=NaN")
	}
}

func TestEmbeddingsExposed(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(5, false))
	if err != nil {
		t.Fatal(err)
	}
	we := pred.WorkloadEmbeddings()
	if len(we) != ds.NumWorkloads() || len(we[0]) == 0 {
		t.Fatal("workload embeddings wrong shape")
	}
	pe := pred.PlatformEmbeddings()
	if len(pe) != ds.NumPlatforms() {
		t.Fatal("platform embeddings wrong shape")
	}
	for j := 0; j < ds.NumPlatforms(); j++ {
		if n := pred.InterferenceNorm(j); n < 0 {
			t.Fatal("negative interference norm")
		}
	}
}

func TestObserveOnlineLearning(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(6, false))
	if err != nil {
		t.Fatal(err)
	}
	before := pred.Estimate(0, 0, nil)
	// Feed drifted measurements of (0,0): the platform got 2x slower.
	var obs []Observation
	for i := 0; i < 30; i++ {
		obs = append(obs, Observation{Workload: 0, Platform: 0, Seconds: before * 2})
	}
	if err := pred.Observe(obs); err != nil {
		t.Fatal(err)
	}
	after := pred.Estimate(0, 0, nil)
	if after <= before*1.1 {
		t.Fatalf("Observe did not adapt: %.4f -> %.4f (want > %.4f)", before, after, before*1.1)
	}
	// Invalid observations must be rejected atomically: no new snapshot.
	info := pred.Info()
	if err := pred.Observe([]Observation{{Workload: 999, Platform: 0, Seconds: 1}}); err == nil {
		t.Fatal("accepted invalid observation")
	}
	if got := pred.Info(); got != info {
		t.Fatalf("failed Observe published a snapshot: %+v -> %+v", info, got)
	}
	if err := pred.Observe(nil); err == nil {
		t.Fatal("accepted empty Observe")
	}
}

func TestTrainRejectsBadOptions(t *testing.T) {
	ds := smallDataset()
	if _, err := Train(ds, Options{HoldoutFraction: 1.5}); err == nil {
		t.Fatal("accepted bad holdout")
	}
}

// schedQueries builds a scheduler-shaped query batch: every workload scanned
// on every platform against that platform's resident set.
func schedQueries(ds *Dataset) []Query {
	var qs []Query
	for p := 0; p < ds.NumPlatforms(); p++ {
		resident := []int{p % ds.NumWorkloads(), (p + 5) % ds.NumWorkloads()}
		for w := 0; w < ds.NumWorkloads(); w++ {
			qs = append(qs, Query{Workload: w, Platform: p, Interferers: resident})
		}
	}
	return qs
}

func TestEstimateBatchMatchesLoopedEstimate(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(7, false))
	if err != nil {
		t.Fatal(err)
	}
	qs := schedQueries(ds)
	got := pred.EstimateBatch(qs)
	if len(got) != len(qs) {
		t.Fatalf("EstimateBatch returned %d results for %d queries", len(got), len(qs))
	}
	for i, q := range qs {
		want := pred.Estimate(q.Workload, q.Platform, q.Interferers)
		if math.Abs(got[i]-want) > 1e-9*want {
			t.Fatalf("query %d: batch %.12f vs looped %.12f", i, got[i], want)
		}
	}
	if out := pred.EstimateBatch(nil); len(out) != 0 {
		t.Fatal("EstimateBatch(nil) should be empty")
	}
}

func TestBoundBatchMatchesLoopedBound(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(8, true))
	if err != nil {
		t.Fatal(err)
	}
	qs := schedQueries(ds)
	got, err := pred.BoundBatch(qs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := pred.Bound(q.Workload, q.Platform, q.Interferers, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(want, 1) {
			if !math.IsInf(got[i], 1) {
				t.Fatalf("query %d: batch %v, looped +Inf", i, got[i])
			}
			continue
		}
		if math.Abs(got[i]-want) > 1e-9*want {
			t.Fatalf("query %d: batch %.12f vs looped %.12f", i, got[i], want)
		}
	}
}

func TestBoundBatchRequiresEnable(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(9, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.BoundBatch(schedQueries(ds)[:3], 0.1); err == nil {
		t.Fatal("BoundBatch without EnableBounds must error")
	}
}
