package pitot

// Benchmark harness: one benchmark per paper table/figure (regenerating the
// data behind it at Quick scale via the experiment registry), plus
// microbenchmarks for the design decisions called out in DESIGN.md §5.
//
// The per-figure benchmarks measure end-to-end experiment regeneration
// time; their *output shape* (who wins, by what factor) is recorded in
// EXPERIMENTS.md, produced by `go run ./cmd/experiments -all -scale standard`.

import (
	"math/rand"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exp"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/wasmcluster"
)

// benchExperiment runs one registry experiment at Quick scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(exp.Quick, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_InterferenceHistogram(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkTable2_DeviceCatalog(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkTable3_RuntimeCatalog(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkFig4a_LossAblation(b *testing.B)          { benchExperiment(b, "fig4a") }
func BenchmarkFig4b_SideInfo(b *testing.B)              { benchExperiment(b, "fig4b") }
func BenchmarkFig4c_Interference(b *testing.B)          { benchExperiment(b, "fig4c") }
func BenchmarkFig4d_Activation(b *testing.B)            { benchExperiment(b, "fig4d") }
func BenchmarkFig5_UQ(b *testing.B)                     { benchExperiment(b, "fig5") }
func BenchmarkFig6a_Baselines(b *testing.B)             { benchExperiment(b, "fig6a") }
func BenchmarkFig6b_BaselineBounds(b *testing.B)        { benchExperiment(b, "fig6b") }
func BenchmarkFig7_WorkloadEmbedding(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8_QuantileChoice(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig10_Hyperparams(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkFig11_BoundGrid(b *testing.B)             { benchExperiment(b, "fig11") }
func BenchmarkFig12bc_PlatformEmbedding(b *testing.B)   { benchExperiment(b, "fig12bc") }
func BenchmarkFig12d_InterferenceNorm(b *testing.B)     { benchExperiment(b, "fig12d") }
func BenchmarkHeadline_AccuracyComparison(b *testing.B) { benchExperiment(b, "headline") }
func BenchmarkExtSched_PlacementPolicies(b *testing.B)  { benchExperiment(b, "ext-sched") }

// --- microbenchmarks -------------------------------------------------------

// benchSetup builds a small dataset + model for the micro benches.
func benchSetup(b *testing.B, quantiles []float64) (*core.Model, dataset.Split) {
	b.Helper()
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: 1, NumWorkloads: 48, MaxDevices: 8, SetsPerDegree: 15,
	}).Generate()
	cfg := core.DefaultConfig(1)
	cfg.Quantiles = quantiles
	cfg.Steps = 1
	m, err := core.NewModel(cfg, ds)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.8)
	split.EnsureCoverage(ds)
	if _, err := m.Train(split); err != nil {
		b.Fatal(err)
	}
	return m, split
}

// BenchmarkTrainStep measures one optimization step of the mean model
// (paper §3.6 reports ~12s for 20k steps on a GPU; this is the CPU cost).
func BenchmarkTrainStep(b *testing.B) {
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: 1, NumWorkloads: 48, MaxDevices: 8, SetsPerDegree: 15,
	}).Generate()
	rng := rand.New(rand.NewSource(2))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.8)
	cfg := core.DefaultConfig(1)
	cfg.EvalEvery = 1 << 30 // no validation inside the loop
	b.ReportAllocs()
	b.ResetTimer()
	// Steps scale linearly; train b.N steps in one call.
	cfg.Steps = b.N
	m, err := core.NewModel(cfg, ds)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Train(split); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTrainStepQuantile measures one step of the 8-head quantile
// model (the paper reports only ~5% overhead thanks to shared embeddings).
func BenchmarkTrainStepQuantile(b *testing.B) {
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: 1, NumWorkloads: 48, MaxDevices: 8, SetsPerDegree: 15,
	}).Generate()
	rng := rand.New(rand.NewSource(2))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.8)
	cfg := core.DefaultConfig(1)
	cfg.Quantiles = core.PaperQuantiles()
	cfg.EvalEvery = 1 << 30
	b.ReportAllocs()
	b.ResetTimer()
	cfg.Steps = b.N
	m, err := core.NewModel(cfg, ds)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Train(split); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkInference measures a single cached-embedding prediction
// (paper §3.6: ~400K flops per inference call).
func BenchmarkInference(b *testing.B) {
	m, _ := benchSetup(b, nil)
	ks := []int{1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictLogSeconds(i%40, i%50, ks, 0)
	}
}

// BenchmarkDatasetGeneration measures full-scale synthetic data generation
// (the substitute for 80 hours of physical data collection).
func BenchmarkDatasetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wasmcluster.New(wasmcluster.Config{
			Seed: int64(i), NumWorkloads: 60, MaxDevices: 8, SetsPerDegree: 25,
		}).Generate()
	}
}

// BenchmarkAutodiffOverhead compares the tape-based two-tower forward
// against a hand-fused implementation of the same math (DESIGN.md §5:
// the price paid for ablation flexibility).
func BenchmarkAutodiffOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const batch, r = 256, 32
	w := tensor.New(batch, r)
	p := tensor.New(batch, r)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
		p.Data[i] = rng.NormFloat64()
	}
	b.Run("tape", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wv := autodiff.NewParam(w)
			pv := autodiff.NewParam(p)
			loss := autodiff.Mean(autodiff.Square(autodiff.RowSum(autodiff.Mul(wv, pv))))
			loss.Backward()
		}
	})
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		gw := tensor.New(batch, r)
		gp := tensor.New(batch, r)
		for i := 0; i < b.N; i++ {
			// forward: mean(rowsum(w∘p)²); backward fused by hand.
			var loss float64
			for row := 0; row < batch; row++ {
				wr, pr := w.Row(row), p.Row(row)
				var s float64
				for k := range wr {
					s += wr[k] * pr[k]
				}
				loss += s * s
				c := 2 * s / batch
				gwr, gpr := gw.Row(row), gp.Row(row)
				for k := range wr {
					gwr[k] = c * pr[k]
					gpr[k] = c * wr[k]
				}
			}
			_ = loss / batch
		}
	})
}

// BenchmarkBatching compares per-degree fixed-shape batches (the paper's
// strategy, App. B.3) against mixed-degree batches padded to the maximum
// degree — the design choice called out in DESIGN.md §5.
func BenchmarkBatching(b *testing.B) {
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: 4, NumWorkloads: 48, MaxDevices: 8, SetsPerDegree: 15,
	}).Generate()
	rng := rand.New(rand.NewSource(5))
	all := rng.Perm(len(ds.Obs))
	batcher := dataset.NewBatcher(rand.New(rand.NewSource(6)), ds, all)
	b.Run("per-degree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, deg := range batcher.Degrees {
				idx := batcher.Sample(deg, 256)
				_ = idx
			}
		}
	})
	b.Run("mixed-padded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// One mixed batch of 1024 padded to degree 3: every sample
			// carries 3 interferer slots, zero-filled for lower degrees.
			idx := make([]int, 1024)
			pad := make([][3]int, 1024)
			for j := range idx {
				oi := all[rng.Intn(len(all))]
				idx[j] = oi
				for m2, k := range ds.Obs[oi].Interferers {
					pad[j][m2] = k
				}
			}
			_ = pad
		}
	})
}

// benchPredictor trains a small public-API predictor plus a
// scheduler-shaped query batch: every workload scanned on every platform
// against the platform's resident set (the orchestrator/capacity pattern).
func benchPredictor(b *testing.B) (*Predictor, []Query) {
	b.Helper()
	ds := GenerateDataset(DatasetConfig{
		Seed: 1, NumWorkloads: 48, MaxDevices: 8, SetsPerDegree: 15,
	})
	cfg := DefaultModelConfig(1)
	cfg.Steps = 60
	cfg.EvalEvery = 30
	pred, err := Train(ds, Options{Seed: 1, Model: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	var qs []Query
	for p := 0; p < ds.NumPlatforms(); p++ {
		resident := []int{p % ds.NumWorkloads(), (p + 7) % ds.NumWorkloads(), (p + 13) % ds.NumWorkloads()}
		for w := 0; w < ds.NumWorkloads(); w++ {
			qs = append(qs, Query{Workload: w, Platform: p, Interferers: resident})
		}
	}
	return pred, qs
}

var sinkFloat float64

// BenchmarkEstimateLoop serves the scheduler scan one Estimate call at a
// time — the pre-batch-API serving pattern.
func BenchmarkEstimateLoop(b *testing.B) {
	pred, qs := benchPredictor(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		for _, q := range qs {
			s += pred.Estimate(q.Workload, q.Platform, q.Interferers)
		}
		sinkFloat = s
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkEstimateBatch serves the same scan through EstimateBatch, which
// folds each platform's interference term into one effective vector and
// fans groups out across workers.
func BenchmarkEstimateBatch(b *testing.B) {
	pred, qs := benchPredictor(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := pred.EstimateBatch(qs)
		sinkFloat = out[0]
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkFusedRowDot compares the fused RowDot op against the unfused
// RowSum(Mul(...)) composition it replaces in predictBatch, forward +
// backward.
func BenchmarkFusedRowDot(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const batch, r = 256, 32
	w := tensor.New(batch, r)
	p := tensor.New(batch, r)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
		p.Data[i] = rng.NormFloat64()
	}
	wv := autodiff.NewParam(w)
	pv := autodiff.NewParam(p)
	b.Run("unfused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loss := autodiff.Mean(autodiff.Square(autodiff.RowSum(autodiff.Mul(wv, pv))))
			loss.Backward()
			wv.ZeroGrad()
			pv.ZeroGrad()
			autodiff.ReleaseGraph(loss)
		}
	})
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loss := autodiff.Mean(autodiff.Square(autodiff.RowDot(wv, pv)))
			loss.Backward()
			wv.ZeroGrad()
			pv.ZeroGrad()
			autodiff.ReleaseGraph(loss)
		}
	})
}

// BenchmarkFusedGatherCols compares the fused GatherCols op against the
// Gather+SliceCols composition on an 8-head-wide embedding table (the
// quantile model's lookup shape).
func BenchmarkFusedGatherCols(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	const n, r, heads, batch = 64, 32, 8, 256
	table := tensor.New(n, r*heads)
	for i := range table.Data {
		table.Data[i] = rng.NormFloat64()
	}
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	tv := autodiff.NewParam(table)
	b.Run("unfused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := i % heads
			loss := autodiff.Mean(autodiff.Square(
				autodiff.SliceCols(autodiff.Gather(tv, idx), h*r, (h+1)*r)))
			loss.Backward()
			tv.ZeroGrad()
			autodiff.ReleaseGraph(loss)
		}
	})
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := i % heads
			loss := autodiff.Mean(autodiff.Square(
				autodiff.GatherCols(tv, idx, h*r, (h+1)*r)))
			loss.Backward()
			tv.ZeroGrad()
			autodiff.ReleaseGraph(loss)
		}
	})
}

// BenchmarkMatrixAlloc compares pool-recycled matrix storage against fresh
// heap allocation at the training graph's dominant shape.
func BenchmarkMatrixAlloc(b *testing.B) {
	const rows, cols = 256, 64
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := tensor.New(rows, cols)
			sinkFloat = m.Data[0]
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := tensor.GetPooled(rows, cols)
			sinkFloat = m.Data[0]
			tensor.PutPooled(m)
		}
	})
}

// BenchmarkConformalCalibration measures calibrating one epsilon over the
// full calibration set.
func BenchmarkConformalCalibration(b *testing.B) {
	m, split := benchSetup(b, []float64{0.5, 0.8, 0.9, 0.95})
	d := m.Dataset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d
		_ = split
		// Calibration = per-head predictions + sorting per pool; exercised
		// through the public facade path in pitot.go.
		pr := quantAdapter{m}
		hp := buildHP(d, pr, split)
		if hp == nil {
			b.Fatal("nil head predictions")
		}
	}
}

// buildHP mirrors eval.BuildHeadPredictions without importing eval into
// the root package's bench (avoiding an import cycle through test code).
func buildHP(d *dataset.Dataset, tr quantAdapter, split dataset.Split) any {
	nh := tr.NumHeads()
	cal := make([][]float64, nh)
	val := make([][]float64, nh)
	for h := 0; h < nh; h++ {
		cal[h] = tr.PredictLogObs(split.Cal, h)
		val[h] = tr.PredictLogObs(split.Val, h)
	}
	return [2][][]float64{cal, val}
}

// placementBench trains a bounds-enabled predictor and builds a
// steady-state 24-platform cluster: every platform pre-loaded with two
// long-running residents, so candidate scoring pays the full interference
// fold the orchestrator sees under load.
func placementBench(b *testing.B, disableBatch bool) (*sched.Scheduler, []sched.Job) {
	b.Helper()
	ds := GenerateDataset(DatasetConfig{
		Seed: 1, NumWorkloads: 40, MaxDevices: 8, SetsPerDegree: 15,
	})
	const platforms = 24
	if ds.NumPlatforms() < platforms {
		b.Fatalf("dataset has %d platforms, need %d", ds.NumPlatforms(), platforms)
	}
	cfg := DefaultModelConfig(1)
	cfg.Steps = 60
	cfg.EvalEvery = 30
	pred, err := Train(ds, Options{Seed: 1, Model: &cfg, EnableBounds: true})
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.New(sched.Config{
		NumPlatforms:  platforms,
		MaxColocation: 4,
		DisableBatch:  disableBatch,
	}, sched.BoundPolicy{Eps: 0.1}, pred)
	if err != nil {
		b.Fatal(err)
	}
	// Two permanent residents per platform: deadlines far above any bound,
	// placed round-robin by the least-loaded strategy.
	for i := 0; i < 2*platforms; i++ {
		if a := s.Place(sched.Job{Workload: i % ds.NumWorkloads(), Deadline: 1e9}); !a.Placed() {
			b.Fatalf("resident %d unplaced", i)
		}
	}
	rng := rand.New(rand.NewSource(9))
	wave := make([]sched.Job, 32)
	for i := range wave {
		w := rng.Intn(ds.NumWorkloads())
		wave[i] = sched.Job{Workload: w, Deadline: pred.Estimate(w, rng.Intn(platforms), nil) * 20}
	}
	return s, wave
}

// runPlacementBench steadily places and retires one wave per iteration —
// the event-driven steady state — and reports placement throughput.
func runPlacementBench(b *testing.B, s *sched.Scheduler, wave []sched.Job) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	placed := 0
	for i := 0; i < b.N; i++ {
		as := s.PlaceAll(wave)
		b.StopTimer()
		for _, a := range as {
			if a.Placed() {
				placed++
				if err := s.Complete(a.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
	}
	if placed == 0 {
		b.Fatal("nothing placed")
	}
	b.ReportMetric(float64(placed)/b.Elapsed().Seconds(), "placements/s")
}

// benchScoreSetup trains a bounds-enabled predictor and builds the
// 24-platform scheduler scan both heads are consumed over: every workload
// on every platform against the platform's resident set.
func benchScoreSetup(b *testing.B) (*Predictor, []Query) {
	return benchScoreSetupCfg(b, nil)
}

func benchScoreSetupCfg(b *testing.B, mutate func(*ModelConfig)) (*Predictor, []Query) {
	b.Helper()
	ds := GenerateDataset(DatasetConfig{
		Seed: 1, NumWorkloads: 40, MaxDevices: 8, SetsPerDegree: 15,
	})
	const platforms = 24
	if ds.NumPlatforms() < platforms {
		b.Fatalf("dataset has %d platforms, need %d", ds.NumPlatforms(), platforms)
	}
	cfg := DefaultModelConfig(1)
	cfg.Steps = 60
	cfg.EvalEvery = 30
	if mutate != nil {
		mutate(&cfg)
	}
	pred, err := Train(ds, Options{Seed: 1, Model: &cfg, EnableBounds: true})
	if err != nil {
		b.Fatal(err)
	}
	var qs []Query
	for p := 0; p < platforms; p++ {
		resident := []int{p % ds.NumWorkloads(), (p + 7) % ds.NumWorkloads(), (p + 13) % ds.NumWorkloads()}
		for w := 0; w < ds.NumWorkloads(); w++ {
			qs = append(qs, Query{Workload: w, Platform: p, Interferers: resident})
		}
	}
	// Prime the conformal bounder so calibration cost stays out of the
	// timed loop for both variants.
	if _, err := pred.BoundBatch(qs[:1], 0.1); err != nil {
		b.Fatal(err)
	}
	return pred, qs
}

// BenchmarkScoreTwoPass24 serves a mixed mean/bound policy the pre-fusion
// way: back-to-back EstimateBatch + BoundBatch over the same queries (two
// span traversals, two interference folds per platform, a per-query
// conformal pool lookup).
func BenchmarkScoreTwoPass24(b *testing.B) {
	pred, qs := benchScoreSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean := pred.EstimateBatch(qs)
		bound, err := pred.BoundBatch(qs, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		sinkFloat = mean[0] + bound[0]
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkScoreFused24 serves both heads through the fused ScoreBatch:
// one span traversal, one fold per (platform, model), the conformal offset
// hoisted per span. Outputs are bitwise-identical to the two-pass variant.
func BenchmarkScoreFused24(b *testing.B) {
	pred, qs := benchScoreSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean, bound, err := pred.ScoreBatch(qs, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		sinkFloat = mean[0] + bound[0]
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkScoreFast24 serves the same scan through the opt-in fast
// kernel (SetFastScoring): query-blocked multi-chain FMA dots, an FMA
// fold, and the bounded-error polynomial exp — every score within
// core.FastScoreMaxRelErr of the fused exact output.
func BenchmarkScoreFast24(b *testing.B) {
	pred, qs := benchScoreSetup(b)
	pred.SetFastScoring(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean, bound, err := pred.ScoreBatch(qs, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		sinkFloat = mean[0] + bound[0]
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkScoreFastF3224 additionally accumulates the mean (ranking)
// head in float32 (ModelConfig.FastScoringF32); the feasibility head
// stays float64.
func BenchmarkScoreFastF3224(b *testing.B) {
	pred, qs := benchScoreSetupCfg(b, func(cfg *ModelConfig) {
		cfg.FastScoring = true
		cfg.FastScoringF32 = true
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean, bound, err := pred.ScoreBatch(qs, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		sinkFloat = mean[0] + bound[0]
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkPlacementScalar24 scores every candidate platform with one
// scalar BoundSeconds call — the pre-engine serving pattern.
func BenchmarkPlacementScalar24(b *testing.B) {
	s, wave := placementBench(b, true)
	runPlacementBench(b, s, wave)
}

// BenchmarkPlacementBatch24 scores through the batched path: the whole
// wave is pre-scored in one BoundBatch call (platform-major, so each
// platform's interference term is folded once and shared across the wave)
// with per-job refreshes only for platforms dirtied mid-wave.
func BenchmarkPlacementBatch24(b *testing.B) {
	s, wave := placementBench(b, false)
	runPlacementBench(b, s, wave)
}
