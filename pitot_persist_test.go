package pitot

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"
)

// TestSaveLoadRoundTrip exercises the full persistence path the serving
// daemon uses: SaveModel → (dataset through its JSON wire format) →
// LoadPredictor. Estimate and Bound must be bitwise identical across the
// round trip on the full query grid — parameters and baseline restore
// exactly, embedding caches recompute deterministically, and the conformal
// bounders recalibrate from the persisted split.
func TestSaveLoadRoundTrip(t *testing.T) {
	pred, ds := sharedBoundsPredictor(t)

	var meanBuf, quantBuf bytes.Buffer
	if err := pred.SaveModel(&meanBuf, &quantBuf); err != nil {
		t.Fatal(err)
	}
	var dsBuf bytes.Buffer
	if err := ds.WriteJSON(&dsBuf); err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadDataset(&dsBuf)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(ds2, &meanBuf, &quantBuf)
	if err != nil {
		t.Fatal(err)
	}
	if info := loaded.Info(); !info.Bounds || info.Observations != len(ds.Obs) {
		t.Fatalf("loaded predictor info %+v", info)
	}

	interfererSets := [][]int{nil, {0}, {1, 2}, {3, 4, 5}}
	epsGrid := []float64{0.05, 0.1, 0.2}
	for w := 0; w < ds.NumWorkloads(); w++ {
		for p := 0; p < ds.NumPlatforms(); p++ {
			for _, ks := range interfererSets {
				if a, b := pred.Estimate(w, p, ks), loaded.Estimate(w, p, ks); a != b {
					t.Fatalf("Estimate(%d,%d,%v): %v vs loaded %v", w, p, ks, a, b)
				}
				for _, eps := range epsGrid {
					a, errA := pred.Bound(w, p, ks, eps)
					b, errB := loaded.Bound(w, p, ks, eps)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("Bound(%d,%d,%v,%v) errors diverge: %v vs %v", w, p, ks, eps, errA, errB)
					}
					if errA != nil {
						continue
					}
					if math.IsInf(a, 1) && math.IsInf(b, 1) {
						continue
					}
					if a != b {
						t.Fatalf("Bound(%d,%d,%v,%v): %v vs loaded %v", w, p, ks, eps, a, b)
					}
				}
			}
		}
	}

	// Batch paths must agree with the loaded predictor too.
	qs := schedQueries(ds)
	want := pred.EstimateBatch(qs)
	got := loaded.EstimateBatch(qs)
	for i := range qs {
		if want[i] != got[i] {
			t.Fatalf("EstimateBatch[%d]: %v vs loaded %v", i, want[i], got[i])
		}
	}
}

// A predictor saved without bounds loads with a nil quantile stream and
// must reject Bound, while Estimate still round-trips bitwise.
func TestSaveLoadMeanOnly(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(31, false))
	if err != nil {
		t.Fatal(err)
	}
	var meanBuf bytes.Buffer
	if err := pred.SaveModel(&meanBuf, nil); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(ds, &meanBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := pred.Estimate(3, 1, []int{2}), loaded.Estimate(3, 1, []int{2}); a != b {
		t.Fatalf("mean-only round trip: %v vs %v", a, b)
	}
	if _, err := loaded.Bound(0, 0, nil, 0.1); err == nil {
		t.Fatal("loaded mean-only predictor accepted Bound")
	}
}

// A predictor that has Observed owns a grown dataset the caller no longer
// holds; Export persists dataset and models from one snapshot so the full
// serving state round-trips (SaveModel alone would reference out-of-range
// split indices).
func TestExportAfterObserveRoundTrip(t *testing.T) {
	ds := smallDataset()
	pred, err := Train(ds, smallOptions(33, false))
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{
		{Workload: 0, Platform: 0, Seconds: pred.Estimate(0, 0, nil) * 1.5},
		{Workload: 1, Platform: 1, Seconds: pred.Estimate(1, 1, nil) * 1.5},
	}
	if err := pred.Observe(obs); err != nil {
		t.Fatal(err)
	}

	// SaveModel + the stale dataset must fail loudly, not mis-load.
	var staleMean bytes.Buffer
	if err := pred.SaveModel(&staleMean, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictor(ds, &staleMean, nil); err == nil {
		t.Fatal("LoadPredictor accepted a post-Observe save against the pre-Observe dataset")
	}

	var dataBuf, meanBuf bytes.Buffer
	if err := pred.Export(&dataBuf, &meanBuf, nil); err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadDataset(&dataBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Obs) != len(ds.Obs)+len(obs) {
		t.Fatalf("exported dataset has %d observations, want %d", len(ds2.Obs), len(ds.Obs)+len(obs))
	}
	loaded, err := LoadPredictor(ds2, &meanBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < ds.NumWorkloads(); w++ {
		for _, ks := range [][]int{nil, {2, 4}} {
			if a, b := pred.Estimate(w, 1, ks), loaded.Estimate(w, 1, ks); a != b {
				t.Fatalf("Estimate(%d,1,%v): %v vs exported %v", w, ks, a, b)
			}
		}
	}
}

func TestLoadPredictorRejectsCorruptInput(t *testing.T) {
	ds := smallDataset()
	if _, err := LoadPredictor(ds, bytes.NewReader([]byte("not a gob stream")), nil); err == nil {
		t.Fatal("accepted garbage mean stream")
	}
	// A gob stream of a disjoint type (e.g. a raw cmd/train core model)
	// fails at decode; one that happens to share fields but carries the
	// wrong magic must fail the format check with a clear message.
	var foreign bytes.Buffer
	if err := gob.NewEncoder(&foreign).Encode(struct{ Cfg int }{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictor(ds, &foreign, nil); err == nil {
		t.Fatal("accepted a foreign gob stream")
	}
	var wrongMagic bytes.Buffer
	if err := gob.NewEncoder(&wrongMagic).Encode(struct{ Magic string }{"pitot/other-v9"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictor(ds, &wrongMagic, nil); err == nil || !strings.Contains(err.Error(), "SaveModel") {
		t.Fatalf("wrong-magic stream error = %v, want format-magic error", err)
	}
	if _, err := LoadPredictor(nil, bytes.NewReader(nil), nil); err == nil {
		t.Fatal("accepted nil dataset")
	}
	// A valid model stream against the wrong dataset must fail cleanly
	// (split indices out of range for the truncated dataset).
	pred, err := Train(ds, smallOptions(32, false))
	if err != nil {
		t.Fatal(err)
	}
	var meanBuf bytes.Buffer
	if err := pred.SaveModel(&meanBuf, nil); err != nil {
		t.Fatal(err)
	}
	short := ds.CloneAppend(nil)
	short.Obs = short.Obs[:len(short.Obs)/2]
	if _, err := LoadPredictor(short, &meanBuf, nil); err == nil {
		t.Fatal("accepted a dataset smaller than the persisted split")
	}
}
