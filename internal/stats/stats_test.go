package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdErr(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if math.Abs(Variance(xs)-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if math.Abs(StdErr(xs)-StdDev(xs)/math.Sqrt(8)) > 1e-12 {
		t.Fatal("StdErr inconsistent")
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 || StdErr(nil) != 0 {
		t.Fatal("empty/degenerate cases wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if math.Abs(GeoMean([]float64{1, 100})-10) > 1e-9 {
		t.Fatalf("GeoMean = %v", GeoMean([]float64{1, 100}))
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestSummary(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs((s.Hi()-s.Lo())-4*s.StdErr) > 1e-12 {
		t.Fatal("Lo/Hi not ±2 stderr")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n8 uint8) bool {
		n := int(n8%50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestConformalQuantileIndex(t *testing.T) {
	// n=9, eps=0.1: k = ceil(10*0.9) = 9 -> the max.
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := ConformalQuantile(scores, 0.1); got != 9 {
		t.Fatalf("got %v want 9", got)
	}
	// n=19, eps=0.1: k = ceil(20*0.9) = 18.
	scores19 := make([]float64, 19)
	for i := range scores19 {
		scores19[i] = float64(i + 1)
	}
	if got := ConformalQuantile(scores19, 0.1); got != 18 {
		t.Fatalf("got %v want 18", got)
	}
}

func TestConformalQuantileInfWhenTooSmall(t *testing.T) {
	// n=5, eps=0.01: ceil(6*0.99)=6 > 5 -> +Inf.
	if !math.IsInf(ConformalQuantile([]float64{1, 2, 3, 4, 5}, 0.01), 1) {
		t.Fatal("expected +Inf for insufficient calibration data")
	}
	if !math.IsInf(ConformalQuantile(nil, 0.1), 1) {
		t.Fatal("expected +Inf for empty calibration set")
	}
}

// Property: conformal coverage guarantee holds empirically — for iid
// samples, P(new ≤ offset) ≥ 1-ε on average.
func TestConformalCoverageGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const trials = 400
	const n = 99
	eps := 0.1
	covered := 0
	for tr := 0; tr < trials; tr++ {
		cal := make([]float64, n)
		for i := range cal {
			cal[i] = rng.NormFloat64()
		}
		off := ConformalQuantile(cal, eps)
		if rng.NormFloat64() <= off {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 1-eps-0.04 {
		t.Fatalf("empirical coverage %v < %v", rate, 1-eps)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 3, 7, 9.9, -5, 50} {
		h.Add(v)
	}
	if h.Total != 8 {
		t.Fatalf("Total = %d", h.Total)
	}
	// clamping: -5 in bin 0, 50 in bin 4
	if h.Counts[0] != 3 { // 0.5, 1, -5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[3] != 1 { // 7
		t.Fatalf("bin3 = %d", h.Counts[3])
	}
	if h.Counts[4] != 2 { // 9.9, 50 (clamped)
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if h.BinCenter(0) != 1 {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
	var total float64
	w := 2.0
	for b := range h.Counts {
		total += h.Density(b) * w
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("densities integrate to %v", total)
	}
	if h.Render(20, func(b int) string { return "x" }) == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 3)
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := SampleWithoutReplacement(rng, 10, 5)
	if len(s) != 5 {
		t.Fatalf("len %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", s)
		}
		seen[v] = true
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if math.Abs(Pearson(xs, ys)-1) > 1e-12 {
		t.Fatalf("Pearson = %v", Pearson(xs, ys))
	}
	neg := []float64{8, 6, 4, 2}
	if math.Abs(Pearson(xs, neg)+1) > 1e-12 {
		t.Fatal("negative correlation wrong")
	}
	if Pearson([]float64{1, 1}, []float64{1, 2}) != 0 {
		t.Fatal("zero-variance should be 0")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	if math.Abs(Spearman(xs, ys)-1) > 1e-12 {
		t.Fatalf("Spearman = %v", Spearman(xs, ys))
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{0, 1.5, 1.5, 3}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v want %v", r, want)
		}
	}
}

// Property: quantile of sorted data at k/(n-1) returns the k-th element.
func TestQuantileExactAtGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 11)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for k := 0; k < 11; k++ {
		q := float64(k) / 10
		if math.Abs(Quantile(xs, q)-sorted[k]) > 1e-12 {
			t.Fatalf("grid quantile %v wrong", q)
		}
	}
}
