// Package stats provides the statistical utilities shared across the
// repository: quantiles (including the finite-sample conformal quantile),
// summary statistics with standard errors, histograms for the interference
// analysis (paper Fig. 1), and deterministic sampling helpers.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values, the
// benchmarking-correct average (paper §3.2).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean. The paper's figures show
// ±2 standard errors.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles mean and ±2-stderr bounds across replicates, matching the
// error bars in the paper's figures.
type Summary struct {
	Mean   float64
	StdErr float64
	N      int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{Mean: Mean(xs), StdErr: StdErr(xs), N: len(xs)}
}

// Lo returns mean - 2*stderr.
func (s Summary) Lo() float64 { return s.Mean - 2*s.StdErr }

// Hi returns mean + 2*stderr.
func (s Summary) Hi() float64 { return s.Mean + 2*s.StdErr }

// String formats the summary as "mean ± 2se".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f", s.Mean, 2*s.StdErr)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
// Panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ConformalQuantile returns the split-conformal calibration offset for
// one-sided coverage: the ⌈(n+1)(1-ε)⌉-th smallest score, which guarantees
// P(new score ≤ offset) ≥ 1-ε under exchangeability (Shafer & Vovk 2008).
// Returns +Inf when the calibration set is too small for the requested ε
// (i.e. ⌈(n+1)(1-ε)⌉ > n), the standard conservative fallback.
func ConformalQuantile(scores []float64, eps float64) float64 {
	n := len(scores)
	if n == 0 {
		return math.Inf(1)
	}
	k := int(math.Ceil(float64(n+1) * (1 - eps)))
	if k > n {
		return math.Inf(1)
	}
	if k < 1 {
		k = 1
	}
	s := append([]float64(nil), scores...)
	sort.Float64s(s)
	return s[k-1]
}

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v) x%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a value.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.Total++
}

// BinCenter returns the midpoint of bin b.
func (h *Histogram) BinCenter(b int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(b)+0.5)
}

// Density returns the normalized density of bin b.
func (h *Histogram) Density(b int) float64 {
	if h.Total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[b]) / (float64(h.Total) * w)
}

// Render draws an ASCII bar chart of the histogram with the given label
// function for bins, used by cmd/datagen for the Fig. 1 reproduction.
func (h *Histogram) Render(width int, label func(b int) string) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(empty histogram)\n"
	}
	out := ""
	for b, c := range h.Counts {
		// Log scale, matching the paper's log-density histogram.
		frac := math.Log1p(float64(c)) / math.Log1p(float64(maxC))
		n := int(frac * float64(width))
		bar := ""
		for i := 0; i < n; i++ {
			bar += "#"
		}
		out += fmt.Sprintf("%12s |%s %d\n", label(b), bar, c)
	}
	return out
}

// Shuffle permutes idx deterministically with rng.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Perm returns a deterministic permutation of [0,n).
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// SampleWithoutReplacement draws k distinct values from [0,n).
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("stats: sample %d from %d", k, n))
	}
	p := rng.Perm(n)
	return p[:k]
}

// Pearson returns the Pearson correlation coefficient of paired samples.
// Returns 0 when either side has zero variance or inputs are shorter than 2.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of paired samples.
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks, handling ties.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
