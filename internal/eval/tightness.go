package eval

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/conformal"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// BuildHeadPredictions assembles the conformal calibration inputs from a
// trained model: per-head predictions on the calibration and validation
// sets, with interference degree as the pool label (§3.5).
func BuildHeadPredictions(d *dataset.Dataset, tr Trained, split dataset.Split) *conformal.HeadPredictions {
	hp := &conformal.HeadPredictions{Quantiles: tr.Quantiles()}
	nh := tr.NumHeads()
	hp.Cal = make([][]float64, nh)
	hp.Val = make([][]float64, nh)
	for h := 0; h < nh; h++ {
		hp.Cal[h] = tr.PredictLogObs(split.Cal, h)
		hp.Val[h] = tr.PredictLogObs(split.Val, h)
	}
	for _, i := range split.Cal {
		hp.CalTrue = append(hp.CalTrue, d.Obs[i].LogSeconds())
		hp.CalPool = append(hp.CalPool, d.Obs[i].Degree())
	}
	for _, i := range split.Val {
		hp.ValTrue = append(hp.ValTrue, d.Obs[i].LogSeconds())
		hp.ValPool = append(hp.ValPool, d.Obs[i].Degree())
	}
	return hp
}

// TightnessPoint is one cell of a tightness sweep: method x miscoverage
// rate, summarized over replicates, split by interference.
type TightnessPoint struct {
	Method         string
	Eps            float64
	MarginIso      stats.Summary
	MarginInterf   stats.Summary
	CoverageIso    stats.Summary
	CoverageInterf stats.Summary
}

// BoundSpec pairs a method with the head-selection strategy used to
// calibrate it (Pitot: SelectOptimal; naive CQR: SelectNaive; squared-loss
// models: SelectOnly).
type BoundSpec struct {
	Method    Method
	Selection conformal.Selection
}

// boundsOnTest calibrates tr for eps and returns bounds/truths on the test
// subsets.
func boundsOnTest(d *dataset.Dataset, tr Trained, split dataset.Split,
	eps float64, sel conformal.Selection) (marginIso, marginInt, covIso, covInt float64, err error) {
	hp := BuildHeadPredictions(d, tr, split)
	b, err := conformal.Calibrate(hp, eps, sel)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	iso, interf := SplitByInterference(d, split.Test)
	score := func(idx []int) (margin, cov float64) {
		pred := tr.PredictLogObs(idx, b.Head)
		bounds := make([]float64, len(idx))
		truths := make([]float64, len(idx))
		for i, oi := range idx {
			bounds[i] = b.Bound(pred[i], d.Obs[oi].Degree())
			truths[i] = d.Obs[oi].LogSeconds()
		}
		return conformal.Margin(bounds, truths), conformal.Coverage(bounds, truths)
	}
	mi, ci := score(iso)
	mt, ct := score(interf)
	return mi, mt, ci, ct, nil
}

// SweepTightness evaluates bound tightness for each spec and miscoverage
// rate at a fixed train fraction (paper Fig. 5 / 6b protocol: 50% split,
// ε from 0.10 down to 0.01), with replicates in parallel.
func SweepTightness(d *dataset.Dataset, specs []BoundSpec, frac float64,
	epsGrid []float64, reps int, seed int64) ([]TightnessPoint, error) {
	type cell struct{ mIso, mInt, cIso, cInt []float64 }
	cells := make([][]cell, len(specs))
	for s := range cells {
		cells[s] = make([]cell, len(epsGrid))
	}
	type tjob struct {
		spec, rep int
		seed      int64
	}
	var jobs []tjob
	for s := range specs {
		for r := 0; r < reps; r++ {
			jobs = append(jobs, tjob{s, r, seed + int64(100*s+r)})
		}
	}
	var mu sync.Mutex
	var firstErr error
	runJobs(len(jobs), func(ji int) {
		j := jobs[ji]
		rng := rand.New(rand.NewSource(j.seed))
		split := dataset.NewSplit(rng, len(d.Obs), frac)
		split.EnsureCoverage(d)
		tr, err := specs[j.spec].Method.Fit(d, split, j.seed)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("eval: tightness %s rep %d: %w", specs[j.spec].Method.Name, j.rep, err)
			}
			mu.Unlock()
			return
		}
		for e, eps := range epsGrid {
			mi, mt, ci, ct, err := boundsOnTest(d, tr, split, eps, specs[j.spec].Selection)
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			c := &cells[j.spec][e]
			c.mIso = append(c.mIso, mi)
			c.mInt = append(c.mInt, mt)
			c.cIso = append(c.cIso, ci)
			c.cInt = append(c.cInt, ct)
			mu.Unlock()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	var out []TightnessPoint
	for s := range specs {
		for e, eps := range epsGrid {
			c := cells[s][e]
			out = append(out, TightnessPoint{
				Method:         specs[s].Method.Name,
				Eps:            eps,
				MarginIso:      stats.Summarize(c.mIso),
				MarginInterf:   stats.Summarize(c.mInt),
				CoverageIso:    stats.Summarize(c.cIso),
				CoverageInterf: stats.Summarize(c.cInt),
			})
		}
	}
	return out, nil
}

// QuantileChoiceCurve reproduces Fig. 8: for one trained quantile model,
// the validation overprovisioning margin after calibrating each head at
// the target miscoverage rate.
func QuantileChoiceCurve(d *dataset.Dataset, tr Trained, split dataset.Split, eps float64) (quantiles, margins []float64, err error) {
	hp := BuildHeadPredictions(d, tr, split)
	bs, err := conformal.CalibrateAllHeads(hp, eps)
	if err != nil {
		return nil, nil, err
	}
	for h, b := range bs {
		q := 0.0
		if qs := tr.Quantiles(); len(qs) > h {
			q = qs[h]
		}
		quantiles = append(quantiles, q)
		margins = append(margins, b.ValMargin)
	}
	return quantiles, margins, nil
}
