// Package eval orchestrates the paper's evaluation protocol (§5.1):
// train-fraction sweeps with independent replicates, MAPE reported
// separately for test data with and without interference, and bound
// tightness (overprovisioning margin) across miscoverage rates.
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Trained is a fitted model that predicts log runtimes for dataset
// observations. head selects the quantile head (0 for mean models).
type Trained interface {
	PredictLogObs(idx []int, head int) []float64
	NumHeads() int
	Quantiles() []float64
}

// Method couples a name with a training constructor. Fit must be safe for
// concurrent invocation with distinct seeds.
type Method struct {
	Name string
	Fit  func(d *dataset.Dataset, split dataset.Split, seed int64) (Trained, error)
}

// pitotTrained adapts core.Model to the Trained interface.
type pitotTrained struct{ m *core.Model }

func (p pitotTrained) PredictLogObs(idx []int, head int) []float64 {
	d := p.m.Dataset()
	out := make([]float64, len(idx))
	for i, oi := range idx {
		o := d.Obs[oi]
		out[i] = p.m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, head)
	}
	return out
}

func (p pitotTrained) NumHeads() int        { return p.m.Cfg.NumHeads() }
func (p pitotTrained) Quantiles() []float64 { return p.m.Cfg.Quantiles }

// PitotMethod wraps a core.Config as an eval Method. The config's Seed is
// replaced per replicate.
func PitotMethod(name string, cfg core.Config) Method {
	return Method{Name: name, Fit: func(d *dataset.Dataset, split dataset.Split, seed int64) (Trained, error) {
		c := cfg
		c.Seed = seed
		m, err := core.NewModel(c, d)
		if err != nil {
			return nil, err
		}
		if _, err := m.Train(split); err != nil {
			return nil, err
		}
		return pitotTrained{m}, nil
	}}
}

// MFMethod wraps the matrix-factorization baseline.
func MFMethod(name string, cfg baselines.TrainConfig, dim int) Method {
	return Method{Name: name, Fit: func(d *dataset.Dataset, split dataset.Split, seed int64) (Trained, error) {
		c := cfg
		c.Seed = seed
		m := baselines.NewMatrixFactorization(c, dim)
		if err := m.Train(d, split); err != nil {
			return nil, err
		}
		return m, nil
	}}
}

// NNMethod wraps the neural-network baseline.
func NNMethod(name string, cfg baselines.TrainConfig, hidden int) Method {
	return Method{Name: name, Fit: func(d *dataset.Dataset, split dataset.Split, seed int64) (Trained, error) {
		c := cfg
		c.Seed = seed
		m := baselines.NewNeuralNet(c, hidden)
		if err := m.Train(d, split); err != nil {
			return nil, err
		}
		return m, nil
	}}
}

// AttentionMethod wraps the attention baseline.
func AttentionMethod(name string, cfg baselines.TrainConfig, hidden int) Method {
	return Method{Name: name, Fit: func(d *dataset.Dataset, split dataset.Split, seed int64) (Trained, error) {
		c := cfg
		c.Seed = seed
		m := baselines.NewAttention(c, hidden)
		if err := m.Train(d, split); err != nil {
			return nil, err
		}
		return m, nil
	}}
}

// MAPE returns the mean absolute percent error over the given observation
// indices, |Ĉ−C*|/C* averaged (paper §5.1 "Error").
func MAPE(d *dataset.Dataset, idx []int, predLog []float64) float64 {
	if len(idx) == 0 {
		return math.NaN()
	}
	var s float64
	for i, oi := range idx {
		c := d.Obs[oi].Seconds
		s += math.Abs(math.Exp(predLog[i])-c) / c
	}
	return s / float64(len(idx))
}

// SplitByInterference partitions observation indices into isolation and
// interference subsets.
func SplitByInterference(d *dataset.Dataset, idx []int) (iso, interf []int) {
	for _, i := range idx {
		if d.Obs[i].Degree() == 0 {
			iso = append(iso, i)
		} else {
			interf = append(interf, i)
		}
	}
	return
}

// ErrorPoint is one cell of an error sweep: a method at a train fraction,
// summarized over replicates.
type ErrorPoint struct {
	Method     string
	Frac       float64
	MAPEIso    stats.Summary
	MAPEInterf stats.Summary
}

// job is one (method, frac, replicate) training run.
type job struct {
	method  int
	fracIdx int
	rep     int
	seed    int64
}

// SweepError runs the full §5.1 protocol: for every method and train
// fraction, train `reps` replicates (each with its own random split) and
// summarize test MAPE with and without interference. Replicates run in
// parallel across CPU cores.
func SweepError(d *dataset.Dataset, methods []Method, fracs []float64, reps int, seed int64) ([]ErrorPoint, error) {
	type cell struct{ iso, interf []float64 }
	cells := make([][]cell, len(methods))
	for m := range cells {
		cells[m] = make([]cell, len(fracs))
	}
	var jobs []job
	for m := range methods {
		for f := range fracs {
			for r := 0; r < reps; r++ {
				jobs = append(jobs, job{m, f, r, seed + int64(1000*m+100*f+r)})
			}
		}
	}
	var mu sync.Mutex
	var firstErr error
	runJobs(len(jobs), func(ji int) {
		j := jobs[ji]
		rng := rand.New(rand.NewSource(j.seed))
		split := dataset.NewSplit(rng, len(d.Obs), fracs[j.fracIdx])
		split.EnsureCoverage(d)
		tr, err := methods[j.method].Fit(d, split, j.seed)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("eval: %s frac %.2f rep %d: %w",
					methods[j.method].Name, fracs[j.fracIdx], j.rep, err)
			}
			mu.Unlock()
			return
		}
		iso, interf := SplitByInterference(d, split.Test)
		eIso := MAPE(d, iso, tr.PredictLogObs(iso, 0))
		eInt := MAPE(d, interf, tr.PredictLogObs(interf, 0))
		mu.Lock()
		c := &cells[j.method][j.fracIdx]
		c.iso = append(c.iso, eIso)
		c.interf = append(c.interf, eInt)
		mu.Unlock()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	var out []ErrorPoint
	for m := range methods {
		for f := range fracs {
			out = append(out, ErrorPoint{
				Method:     methods[m].Name,
				Frac:       fracs[f],
				MAPEIso:    stats.Summarize(cells[m][f].iso),
				MAPEInterf: stats.Summarize(cells[m][f].interf),
			})
		}
	}
	return out, nil
}

// runJobs executes n jobs on a bounded worker pool.
func runJobs(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}
