package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/conformal"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/wasmcluster"
)

func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	return wasmcluster.New(wasmcluster.Config{
		Seed: 7, NumWorkloads: 30, MaxDevices: 5, SetsPerDegree: 15,
	}).Generate()
}

func quickPitot() core.Config {
	cfg := core.DefaultConfig(0)
	cfg.Hidden = 32
	cfg.EmbeddingDim = 16
	cfg.Steps = 600
	cfg.BatchPerDegree = 128
	cfg.EvalEvery = 150
	return cfg
}

func quickBase() baselines.TrainConfig {
	cfg := baselines.DefaultTrainConfig(0)
	cfg.Steps = 600
	cfg.BatchPerDegree = 128
	cfg.EvalEvery = 150
	return cfg
}

func TestMAPEKnownValues(t *testing.T) {
	ds := testData(t)
	idx := []int{0, 1}
	pred := []float64{
		ds.Obs[0].LogSeconds() + math.Log(1.1), // 10% over
		ds.Obs[1].LogSeconds() + math.Log(0.8), // 20% under
	}
	got := MAPE(ds, idx, pred)
	if math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("MAPE = %v want 0.15", got)
	}
	if !math.IsNaN(MAPE(ds, nil, nil)) {
		t.Fatal("empty MAPE should be NaN")
	}
}

func TestSplitByInterference(t *testing.T) {
	ds := testData(t)
	all := make([]int, len(ds.Obs))
	for i := range all {
		all[i] = i
	}
	iso, interf := SplitByInterference(ds, all)
	if len(iso)+len(interf) != len(all) {
		t.Fatal("partition lost observations")
	}
	for _, i := range iso {
		if ds.Obs[i].Degree() != 0 {
			t.Fatal("interference in iso subset")
		}
	}
	for _, i := range interf {
		if ds.Obs[i].Degree() == 0 {
			t.Fatal("isolation in interference subset")
		}
	}
}

func TestSweepErrorPitotBeatsMF(t *testing.T) {
	ds := testData(t)
	methods := []Method{
		PitotMethod("pitot", quickPitot()),
		MFMethod("mf", quickBase(), 16),
	}
	points, err := SweepError(ds, methods, []float64{0.6}, 2, 123)
	if err != nil {
		t.Fatal(err)
	}
	res := map[string]ErrorPoint{}
	for _, p := range points {
		res[p.Method] = p
	}
	pitot, mf := res["pitot"], res["mf"]
	if pitot.MAPEIso.N != 2 || mf.MAPEIso.N != 2 {
		t.Fatalf("replicate counts wrong: %+v %+v", pitot, mf)
	}
	if pitot.MAPEIso.Mean >= mf.MAPEIso.Mean {
		t.Fatalf("pitot iso MAPE %.3f not better than MF %.3f",
			pitot.MAPEIso.Mean, mf.MAPEIso.Mean)
	}
	if pitot.MAPEIso.Mean > 0.40 {
		t.Fatalf("pitot iso MAPE %.3f implausibly high", pitot.MAPEIso.Mean)
	}
	t.Logf("pitot iso %.3f interf %.3f | mf iso %.3f interf %.3f",
		pitot.MAPEIso.Mean, pitot.MAPEInterf.Mean, mf.MAPEIso.Mean, mf.MAPEInterf.Mean)
}

func TestTightnessPitotQuantiles(t *testing.T) {
	ds := testData(t)
	qcfg := quickPitot()
	qcfg.Quantiles = []float64{0.5, 0.8, 0.9, 0.95}
	specs := []BoundSpec{
		{Method: PitotMethod("pitot", qcfg), Selection: conformal.SelectOptimal},
		{Method: PitotMethod("naive-cqr", qcfg), Selection: conformal.SelectNaive},
	}
	points, err := SweepTightness(ds, specs, 0.6, []float64{0.1, 0.05}, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if math.IsNaN(p.MarginIso.Mean) {
			t.Fatalf("NaN margin for %s eps %v", p.Method, p.Eps)
		}
		// Coverage must respect the conformal guarantee (with finite-sample
		// slack on small test sets).
		if p.CoverageIso.Mean < 1-p.Eps-0.06 {
			t.Fatalf("%s eps=%.2f iso coverage %.3f below guarantee",
				p.Method, p.Eps, p.CoverageIso.Mean)
		}
		t.Logf("%s eps=%.2f marginIso=%.3f marginInt=%.3f covIso=%.3f",
			p.Method, p.Eps, p.MarginIso.Mean, p.MarginInterf.Mean, p.CoverageIso.Mean)
	}
}

func TestQuantileChoiceCurve(t *testing.T) {
	ds := testData(t)
	cfg := quickPitot()
	cfg.Quantiles = []float64{0.5, 0.9}
	cfg.Steps = 300
	rng := rand.New(rand.NewSource(5))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.6)
	split.EnsureCoverage(ds)
	tr, err := PitotMethod("p", cfg).Fit(ds, split, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs, ms, err := QuantileChoiceCurve(ds, tr, split, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || len(ms) != 2 || qs[0] != 0.5 || qs[1] != 0.9 {
		t.Fatalf("curve: %v %v", qs, ms)
	}
}

func TestBuildHeadPredictionsShapes(t *testing.T) {
	ds := testData(t)
	cfg := quickPitot()
	cfg.Steps = 100
	rng := rand.New(rand.NewSource(6))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.6)
	tr, err := PitotMethod("p", cfg).Fit(ds, split, 6)
	if err != nil {
		t.Fatal(err)
	}
	hp := BuildHeadPredictions(ds, tr, split)
	if hp.NumHeads() != 1 {
		t.Fatalf("heads = %d", hp.NumHeads())
	}
	if len(hp.Cal[0]) != len(split.Cal) || len(hp.Val[0]) != len(split.Val) {
		t.Fatal("prediction lengths wrong")
	}
	if len(hp.CalPool) != len(hp.CalTrue) {
		t.Fatal("pool labels wrong")
	}
}

func TestRunJobsExecutesAll(t *testing.T) {
	done := make([]bool, 37)
	runJobs(len(done), func(i int) { done[i] = true })
	for i, d := range done {
		if !d {
			t.Fatalf("job %d not executed", i)
		}
	}
	runJobs(0, func(i int) { t.Fatal("job executed for n=0") })
}
