package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/tensor"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3, ActNone)
	x := autodiff.NewConst(tensor.New(5, 4))
	y := l.Forward(x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("forward shape %dx%d", y.Rows(), y.Cols())
	}
}

func TestLinearBiasZeroInit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 4, 3, ActNone)
	if l.B.Data.MaxAbs() != 0 {
		t.Fatal("bias not zero-initialized")
	}
}

func TestLinearInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(rng, 1024, 64, ActNone)
	var ss float64
	for _, v := range l.W.Data.Data {
		ss += v * v
	}
	std := math.Sqrt(ss / float64(len(l.W.Data.Data)))
	want := 1 / math.Sqrt(1024)
	if std < want*0.9 || std > want*1.1 {
		t.Fatalf("init std %v, want ~%v", std, want)
	}
}

func TestMLPSizesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, ActGELU, 10, 128, 128, 32)
	if len(m.Layers) != 3 {
		t.Fatalf("layers %d", len(m.Layers))
	}
	// hidden layers activated, output layer linear
	if m.Layers[0].Act != ActGELU || m.Layers[2].Act != ActNone {
		t.Fatal("activation placement wrong")
	}
	want := (10*128 + 128) + (128*128 + 128) + (128*32 + 32)
	if got := NumParams(m.Params()); got != want {
		t.Fatalf("NumParams = %d want %d", got, want)
	}
}

func TestMLPForwardDeterministic(t *testing.T) {
	m1 := NewMLP(rand.New(rand.NewSource(5)), ActGELU, 3, 8, 2)
	m2 := NewMLP(rand.New(rand.NewSource(5)), ActGELU, 3, 8, 2)
	x := autodiff.NewConst(tensor.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	y1 := m1.Forward(x)
	y2 := m2.Forward(x)
	if !tensor.Equal(y1.Data, y2.Data, 0) {
		t.Fatal("same seed produced different networks")
	}
}

func TestMLPPanicsOnTooFewSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP(rand.New(rand.NewSource(6)), ActGELU, 4)
}

func TestMLPCanFitXOR(t *testing.T) {
	// A tiny end-to-end training sanity check: gradient flow through the
	// full stack must be able to fit a non-linear function.
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, ActTanh, 2, 16, 1)
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := tensor.FromSlice(4, 1, []float64{0, 1, 1, 0})
	params := m.Params()
	lr := 0.2
	var loss float64
	for step := 0; step < 2000; step++ {
		out := m.Forward(autodiff.NewConst(x))
		l := autodiff.MSE(out, y)
		loss = l.Scalar()
		l.Backward()
		for _, p := range params {
			tensor.AXPY(p.Data, -lr, p.Grad)
			p.ZeroGrad()
		}
	}
	if loss > 0.01 {
		t.Fatalf("failed to fit XOR: loss %v", loss)
	}
}

func TestEmbeddingLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := NewEmbedding(rng, 5, 3, 0.1)
	out := e.Lookup([]int{2, 2, 0})
	if out.Rows() != 3 || out.Cols() != 3 {
		t.Fatalf("lookup shape %dx%d", out.Rows(), out.Cols())
	}
	for j := 0; j < 3; j++ {
		if out.Data.At(0, j) != e.Table.Data.At(2, j) {
			t.Fatal("lookup content wrong")
		}
		if out.Data.At(0, j) != out.Data.At(1, j) {
			t.Fatal("repeated index mismatch")
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, ActGELU, 2, 4, 1)
	ps := m.Params()
	snap := Snapshot(ps)
	orig := ps[0].Data.At(0, 0)
	ps[0].Data.Set(0, 0, 999)
	Restore(ps, snap)
	if ps[0].Data.At(0, 0) != orig {
		t.Fatal("Restore did not recover value")
	}
	// Snapshot must be independent of live params.
	ps[0].Data.Set(0, 0, 123)
	if snap[0].At(0, 0) == 123 {
		t.Fatal("Snapshot aliases parameter storage")
	}
}

func TestActivationString(t *testing.T) {
	cases := map[Activation]string{
		ActNone: "none", ActGELU: "gelu", ActReLU: "relu",
		ActTanh: "tanh", ActSigmoid: "sigmoid", Activation(99): "unknown",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("%d.String() = %q want %q", a, a.String(), want)
		}
	}
}

func TestMLPInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, act := range []Activation{ActGELU, ActReLU, ActTanh, ActSigmoid, ActNone} {
		mlp := NewMLP(rng, act, 6, 10, 4)
		x := tensor.New(7, 6)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		want := mlp.Forward(autodiff.NewConst(x))
		got := mlp.Infer(x)
		if !tensor.Equal(got, want.Data, 0) {
			t.Fatalf("%v: Infer diverges from Forward", act)
		}
		tensor.PutPooled(got)
	}
}
