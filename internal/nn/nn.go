// Package nn provides neural-network building blocks on top of the autodiff
// engine: linear layers, multi-layer perceptrons, weight initialization, and
// a parameter registry for optimizers and serialization.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/tensor"
)

// Activation selects the nonlinearity of a layer.
type Activation int

// Supported activations.
const (
	ActNone Activation = iota
	ActGELU
	ActReLU
	ActTanh
	ActSigmoid
)

func (a Activation) apply(v *autodiff.Value) *autodiff.Value {
	switch a {
	case ActNone:
		return v
	case ActGELU:
		return autodiff.GELU(v)
	case ActReLU:
		return autodiff.ReLU(v)
	case ActTanh:
		return autodiff.Tanh(v)
	case ActSigmoid:
		return autodiff.Sigmoid(v)
	}
	panic(fmt.Sprintf("nn: unknown activation %d", a))
}

// scalar returns the pointwise function of the activation, for the
// tape-free inference path. The formulas match the autodiff ops exactly.
func (a Activation) scalar() func(float64) float64 {
	switch a {
	case ActNone:
		return nil
	case ActGELU:
		const invSqrt2 = 0.7071067811865476
		return func(x float64) float64 { return 0.5 * x * (1 + math.Erf(x*invSqrt2)) }
	case ActReLU:
		return func(x float64) float64 { return math.Max(x, 0) }
	case ActTanh:
		return math.Tanh
	case ActSigmoid:
		return func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	}
	panic(fmt.Sprintf("nn: unknown activation %d", a))
}

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActGELU:
		return "gelu"
	case ActReLU:
		return "relu"
	case ActTanh:
		return "tanh"
	case ActSigmoid:
		return "sigmoid"
	}
	return "unknown"
}

// Linear is a fully connected layer y = x*W + b.
type Linear struct {
	W, B *autodiff.Value
	Act  Activation
}

// NewLinear creates a layer with LeCun/Xavier-style initialization:
// weights ~ N(0, 1/fanIn), biases zero.
func NewLinear(rng *rand.Rand, in, out int, act Activation) *Linear {
	w := tensor.New(in, out)
	std := 1 / math.Sqrt(float64(in))
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * std
	}
	return &Linear{
		W:   autodiff.NewParam(w),
		B:   autodiff.NewParam(tensor.New(1, out)),
		Act: act,
	}
}

// Forward applies the layer to a batch (rows are samples).
func (l *Linear) Forward(x *autodiff.Value) *autodiff.Value {
	return l.Act.apply(autodiff.AddRowVector(autodiff.MatMul(x, l.W), l.B))
}

// Params returns the trainable parameters of the layer.
func (l *Linear) Params() []*autodiff.Value { return []*autodiff.Value{l.W, l.B} }

// MLP is a stack of Linear layers.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer sizes. hidden activations use
// act; the output layer is linear. sizes must contain at least the input
// and output dimensions, e.g. NewMLP(rng, ActGELU, 64, 128, 128, 32).
func NewMLP(rng *rand.Rand, act Activation, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i < len(sizes)-1; i++ {
		a := act
		if i == len(sizes)-2 {
			a = ActNone
		}
		m.Layers = append(m.Layers, NewLinear(rng, sizes[i], sizes[i+1], a))
	}
	return m
}

// Forward applies all layers in order.
func (m *MLP) Forward(x *autodiff.Value) *autodiff.Value {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Infer runs the MLP forward on a plain matrix without building a tape —
// no Value nodes, no gradient buffers. Intermediates come from the tensor
// pool; the returned matrix is pool-backed and owned by the caller (release
// it with tensor.PutPooled when done).
func (m *MLP) Infer(x *tensor.Matrix) *tensor.Matrix {
	out := m.Layers[len(m.Layers)-1].W.Data.Cols
	return m.InferInto(tensor.GetPooled(x.Rows, out), x)
}

// InferInto is Infer with the output written into dst, which is returned.
// A dst of the right shape is reused in place — the steady state of an
// embedding-cache refresh, which would otherwise clone a pooled result
// every sync; nil or a mismatched dst is replaced by a fresh heap matrix.
// Hidden-layer intermediates still come from the tensor pool. dst must not
// be read concurrently during the call.
func (m *MLP) InferInto(dst *tensor.Matrix, x *tensor.Matrix) *tensor.Matrix {
	last := len(m.Layers) - 1
	cur := x
	for li, l := range m.Layers {
		w, b := l.W.Data, l.B.Data
		var next *tensor.Matrix
		if li == last {
			if dst == nil || dst.Rows != cur.Rows || dst.Cols != w.Cols {
				dst = tensor.New(cur.Rows, w.Cols)
			}
			next = dst
		} else {
			next = tensor.GetPooled(cur.Rows, w.Cols)
		}
		tensor.MatMulInto(next, cur, w, false)
		for i := 0; i < next.Rows; i++ {
			row := next.Row(i)
			for j := range row {
				row[j] += b.Data[j]
			}
		}
		if f := l.Act.scalar(); f != nil {
			tensor.ApplyInto(next, next, f)
		}
		if cur != x {
			tensor.PutPooled(cur)
		}
		cur = next
	}
	return dst
}

// Params returns all trainable parameters in order.
func (m *MLP) Params() []*autodiff.Value {
	var ps []*autodiff.Value
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams counts scalar parameters, mirroring the paper's 111,200-parameter
// accounting (§3.3).
func NumParams(ps []*autodiff.Value) int {
	n := 0
	for _, p := range ps {
		n += len(p.Data.Data)
	}
	return n
}

// Embedding is a trainable lookup table with one row per entity, used for
// the matrix-factorization baseline and for Pitot's extra learned features φ.
type Embedding struct {
	Table *autodiff.Value
}

// NewEmbedding creates an n x dim table initialized ~ N(0, std²).
func NewEmbedding(rng *rand.Rand, n, dim int, std float64) *Embedding {
	t := tensor.New(n, dim)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return &Embedding{Table: autodiff.NewParam(t)}
}

// Lookup gathers the rows for idx.
func (e *Embedding) Lookup(idx []int) *autodiff.Value {
	return autodiff.Gather(e.Table, idx)
}

// Params returns the table as the single trainable parameter.
func (e *Embedding) Params() []*autodiff.Value { return []*autodiff.Value{e.Table} }

// Snapshot copies all parameter values; used for best-checkpoint tracking.
func Snapshot(ps []*autodiff.Value) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(ps))
	for i, p := range ps {
		out[i] = p.Data.Clone()
	}
	return out
}

// Restore copies snapshot values back into the parameters.
func Restore(ps []*autodiff.Value, snap []*tensor.Matrix) {
	if len(ps) != len(snap) {
		panic(fmt.Sprintf("nn: Restore %d params vs %d snapshots", len(ps), len(snap)))
	}
	for i, p := range ps {
		p.Data.CopyFrom(snap[i])
	}
}
