// Package dataset defines the observation containers, train/validation/
// calibration/test splitting, and batching used by all models.
//
// An Observation is one measured (workload, platform, interference) tuple —
// the unit of the paper's matrix-completion formulation (§3.1). The paper's
// real dataset holds 410,970 observations from 249 workloads and 231
// platforms; the synthetic substitute in internal/wasmcluster produces the
// same structure at configurable scale.
package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// Observation records the measured runtime of Workload running on Platform
// while the Interferers set runs simultaneously (empty for isolation runs).
type Observation struct {
	Workload    int     `json:"w"`
	Platform    int     `json:"p"`
	Interferers []int   `json:"k,omitempty"`
	Seconds     float64 `json:"t"`
}

// Degree returns the number of simultaneously-running interfering workloads.
func (o Observation) Degree() int { return len(o.Interferers) }

// LogSeconds returns log(runtime).
func (o Observation) LogSeconds() float64 { return math.Log(o.Seconds) }

// Dataset bundles observations with entity metadata and side-information
// feature matrices.
type Dataset struct {
	WorkloadNames  []string `json:"workload_names"`
	WorkloadSuites []string `json:"workload_suites"`

	PlatformNames    []string `json:"platform_names"`
	PlatformRuntimes []string `json:"platform_runtimes"` // runtime config per platform
	PlatformArchs    []string `json:"platform_archs"`    // CPU class per platform

	// WorkloadFeatures is Nw x dw (opcode log-counts, paper App. C.2).
	WorkloadFeatures *tensor.Matrix `json:"-"`
	// PlatformFeatures is Np x dp (runtime/microarch one-hots, cache info).
	PlatformFeatures *tensor.Matrix `json:"-"`

	Obs []Observation `json:"obs"`
}

// NumWorkloads returns the number of unique workloads.
func (d *Dataset) NumWorkloads() int { return len(d.WorkloadNames) }

// NumPlatforms returns the number of unique platforms.
func (d *Dataset) NumPlatforms() int { return len(d.PlatformNames) }

// CountByDegree returns observation counts keyed by interference degree.
func (d *Dataset) CountByDegree() map[int]int {
	out := map[int]int{}
	for _, o := range d.Obs {
		out[o.Degree()]++
	}
	return out
}

// Validate checks internal consistency: index bounds, positive runtimes,
// and feature matrix shapes.
func (d *Dataset) Validate() error {
	nw, np := d.NumWorkloads(), d.NumPlatforms()
	if len(d.WorkloadSuites) != nw {
		return fmt.Errorf("dataset: %d suites for %d workloads", len(d.WorkloadSuites), nw)
	}
	if len(d.PlatformRuntimes) != np || len(d.PlatformArchs) != np {
		return fmt.Errorf("dataset: platform metadata length mismatch")
	}
	if d.WorkloadFeatures != nil && d.WorkloadFeatures.Rows != nw {
		return fmt.Errorf("dataset: workload features %d rows for %d workloads", d.WorkloadFeatures.Rows, nw)
	}
	if d.PlatformFeatures != nil && d.PlatformFeatures.Rows != np {
		return fmt.Errorf("dataset: platform features %d rows for %d platforms", d.PlatformFeatures.Rows, np)
	}
	for i, o := range d.Obs {
		if o.Workload < 0 || o.Workload >= nw {
			return fmt.Errorf("dataset: obs %d workload %d out of range", i, o.Workload)
		}
		if o.Platform < 0 || o.Platform >= np {
			return fmt.Errorf("dataset: obs %d platform %d out of range", i, o.Platform)
		}
		if !(o.Seconds > 0) || math.IsInf(o.Seconds, 0) {
			return fmt.Errorf("dataset: obs %d non-positive runtime %v", i, o.Seconds)
		}
		for _, k := range o.Interferers {
			if k < 0 || k >= nw {
				return fmt.Errorf("dataset: obs %d interferer %d out of range", i, k)
			}
		}
	}
	return nil
}

// CloneAppend returns a new Dataset with extra appended to the observation
// list. Entity metadata and feature matrices are shared (they are immutable
// by convention once a dataset is in use); the observation slice is a fresh
// copy, so the original dataset is never mutated — the snapshot-isolation
// primitive behind Predictor.Observe. The result is not validated; call
// Validate before publishing it to readers.
func (d *Dataset) CloneAppend(extra []Observation) *Dataset {
	nd := *d
	nd.Obs = make([]Observation, 0, len(d.Obs)+len(extra))
	nd.Obs = append(nd.Obs, d.Obs...)
	nd.Obs = append(nd.Obs, extra...)
	return &nd
}

// Split partitions observation indices for one replicate, mirroring the
// paper's protocol (§5.1): a train fraction f of all observations, of which
// 80% is used for fitting and 20% for validation + calibration; the
// remainder is the test set.
type Split struct {
	Train []int // model fitting
	Val   []int // checkpoint selection + quantile-head selection
	Cal   []int // conformal calibration
	Test  []int // held-out evaluation
}

// NewSplit draws a random split with the given train fraction. The 20%
// holdout within train is divided evenly between validation and
// calibration.
func NewSplit(rng *rand.Rand, n int, trainFrac float64) Split {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: train fraction %v out of (0,1)", trainFrac))
	}
	perm := rng.Perm(n)
	nTrainTotal := int(math.Round(trainFrac * float64(n)))
	if nTrainTotal < 4 {
		nTrainTotal = 4
	}
	nFit := nTrainTotal * 8 / 10
	nVal := (nTrainTotal - nFit) / 2
	var s Split
	s.Train = append(s.Train, perm[:nFit]...)
	s.Val = append(s.Val, perm[nFit:nFit+nVal]...)
	s.Cal = append(s.Cal, perm[nFit+nVal:nTrainTotal]...)
	s.Test = append(s.Test, perm[nTrainTotal:]...)
	return s
}

// EnsureCoverage moves observations from Test into Train so that every
// workload and platform appearing in the dataset is observed at least once
// during training — the paper's assumption that "each workload is observed
// at least once" (§3.1). Only isolation observations are promoted.
func (s *Split) EnsureCoverage(d *Dataset) {
	seenW := make([]bool, d.NumWorkloads())
	seenP := make([]bool, d.NumPlatforms())
	for _, i := range s.Train {
		seenW[d.Obs[i].Workload] = true
		seenP[d.Obs[i].Platform] = true
	}
	var keep []int
	for _, i := range s.Test {
		o := d.Obs[i]
		if o.Degree() == 0 && (!seenW[o.Workload] || !seenP[o.Platform]) {
			s.Train = append(s.Train, i)
			seenW[o.Workload] = true
			seenP[o.Platform] = true
			continue
		}
		keep = append(keep, i)
	}
	s.Test = keep
}

// ByDegree groups observation indices by interference degree, preserving
// order. Degrees are returned in ascending order via the second result.
func ByDegree(d *Dataset, idx []int) (map[int][]int, []int) {
	pools := map[int][]int{}
	for _, i := range idx {
		g := d.Obs[i].Degree()
		pools[g] = append(pools[g], i)
	}
	degrees := make([]int, 0, len(pools))
	for g := range pools {
		degrees = append(degrees, g)
	}
	sort.Ints(degrees)
	return pools, degrees
}

// Batcher draws fixed-size batches per interference degree, the paper's
// GPU-friendly sampling strategy (App. B.3) that also keeps all autodiff
// shapes static per degree.
type Batcher struct {
	rng     *rand.Rand
	pools   map[int][]int
	Degrees []int
}

// NewBatcher builds a batcher over the given observation indices.
func NewBatcher(rng *rand.Rand, d *Dataset, idx []int) *Batcher {
	pools, degrees := ByDegree(d, idx)
	return &Batcher{rng: rng, pools: pools, Degrees: degrees}
}

// PoolSize returns the number of observations of the given degree.
func (b *Batcher) PoolSize(degree int) int { return len(b.pools[degree]) }

// Sample draws size observation indices (with replacement) of the given
// degree. Returns nil when the pool is empty.
func (b *Batcher) Sample(degree, size int) []int {
	pool := b.pools[degree]
	if len(pool) == 0 {
		return nil
	}
	out := make([]int, size)
	for i := range out {
		out[i] = pool[b.rng.Intn(len(pool))]
	}
	return out
}

// jsonDataset is the serialized form including feature matrices.
type jsonDataset struct {
	Dataset
	WFRows int       `json:"wf_rows,omitempty"`
	WFCols int       `json:"wf_cols,omitempty"`
	WFData []float64 `json:"wf_data,omitempty"`
	PFRows int       `json:"pf_rows,omitempty"`
	PFCols int       `json:"pf_cols,omitempty"`
	PFData []float64 `json:"pf_data,omitempty"`
}

// WriteJSON serializes the dataset (including features) to w.
func (d *Dataset) WriteJSON(w io.Writer) error {
	jd := jsonDataset{Dataset: *d}
	if d.WorkloadFeatures != nil {
		jd.WFRows, jd.WFCols = d.WorkloadFeatures.Rows, d.WorkloadFeatures.Cols
		jd.WFData = d.WorkloadFeatures.Data
	}
	if d.PlatformFeatures != nil {
		jd.PFRows, jd.PFCols = d.PlatformFeatures.Rows, d.PlatformFeatures.Cols
		jd.PFData = d.PlatformFeatures.Data
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jd)
}

// featureMatrix rebuilds one serialized feature matrix, rejecting shapes
// that do not match the payload. Snapshots arrive over the wire in the
// serving path, so malformed input must fail with an error, never a panic
// (tensor.FromSlice panics on length mismatch).
func featureMatrix(name string, rows, cols int, data []float64) (*tensor.Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("dataset: %s features negative shape %dx%d", name, rows, cols)
	}
	if rows == 0 {
		// No feature matrix — but only if the payload agrees; a zeroed
		// rows field with data still present is corruption, and dropping
		// the matrix silently would crash consumers that require it.
		if cols != 0 || len(data) != 0 {
			return nil, fmt.Errorf("dataset: %s features %d values for %dx%d", name, len(data), rows, cols)
		}
		return nil, nil
	}
	if cols == 0 || len(data)/cols != rows || len(data)%cols != 0 {
		return nil, fmt.Errorf("dataset: %s features %d values for %dx%d", name, len(data), rows, cols)
	}
	return tensor.FromSlice(rows, cols, data), nil
}

// ReadJSON deserializes a dataset written by WriteJSON. Malformed input —
// truncated JSON, feature payloads that disagree with their declared shape,
// out-of-range entity indices, non-positive or non-finite runtimes — is
// reported as an error; ReadJSON never panics on bad bytes.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	d := jd.Dataset
	var err error
	if d.WorkloadFeatures, err = featureMatrix("workload", jd.WFRows, jd.WFCols, jd.WFData); err != nil {
		return nil, err
	}
	if d.PlatformFeatures, err = featureMatrix("platform", jd.PFRows, jd.PFCols, jd.PFData); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
