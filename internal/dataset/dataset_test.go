package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// tiny builds a small consistent dataset by hand.
func tiny() *Dataset {
	return &Dataset{
		WorkloadNames:    []string{"w0", "w1", "w2"},
		WorkloadSuites:   []string{"a", "a", "b"},
		PlatformNames:    []string{"p0", "p1"},
		PlatformRuntimes: []string{"r0", "r1"},
		PlatformArchs:    []string{"x86", "arm"},
		WorkloadFeatures: tensor.New(3, 4),
		PlatformFeatures: tensor.New(2, 5),
		Obs: []Observation{
			{Workload: 0, Platform: 0, Seconds: 1.5},
			{Workload: 1, Platform: 1, Seconds: 0.25},
			{Workload: 2, Platform: 0, Interferers: []int{0}, Seconds: 3.0},
			{Workload: 0, Platform: 1, Interferers: []int{1, 2}, Seconds: 2.0},
		},
	}
}

func TestObservationAccessors(t *testing.T) {
	o := Observation{Workload: 1, Platform: 2, Interferers: []int{3, 4}, Seconds: math.E}
	if o.Degree() != 2 {
		t.Fatalf("Degree = %d", o.Degree())
	}
	if math.Abs(o.LogSeconds()-1) > 1e-12 {
		t.Fatalf("LogSeconds = %v", o.LogSeconds())
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []func(*Dataset){
		func(d *Dataset) { d.Obs[0].Workload = 99 },
		func(d *Dataset) { d.Obs[0].Platform = -1 },
		func(d *Dataset) { d.Obs[0].Seconds = 0 },
		func(d *Dataset) { d.Obs[0].Seconds = math.Inf(1) },
		func(d *Dataset) { d.Obs[2].Interferers[0] = 77 },
		func(d *Dataset) { d.WorkloadSuites = d.WorkloadSuites[:1] },
		func(d *Dataset) { d.PlatformArchs = nil },
		func(d *Dataset) { d.WorkloadFeatures = tensor.New(7, 4) },
		func(d *Dataset) { d.PlatformFeatures = tensor.New(9, 5) },
	}
	for i, corrupt := range cases {
		d := tiny()
		corrupt(d)
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d: corruption not detected", i)
		}
	}
}

func TestCountByDegree(t *testing.T) {
	by := tiny().CountByDegree()
	if by[0] != 2 || by[1] != 1 || by[2] != 1 {
		t.Fatalf("CountByDegree = %v", by)
	}
}

func TestNewSplitPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n16 uint16, frac8 uint8) bool {
		n := int(n16%1000) + 20
		frac := 0.1 + 0.8*float64(frac8)/255
		s := NewSplit(rng, n, frac)
		seen := make([]int, n)
		for _, part := range [][]int{s.Train, s.Val, s.Cal, s.Test} {
			for _, i := range part {
				if i < 0 || i >= n {
					return false
				}
				seen[i]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false // every index exactly once
			}
		}
		// 80/10/10 structure of the train fraction.
		nTrain := len(s.Train) + len(s.Val) + len(s.Cal)
		wantTrain := int(math.Round(frac * float64(n)))
		if wantTrain < 4 {
			wantTrain = 4
		}
		return nTrain == wantTrain && len(s.Train) >= len(s.Val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewSplitPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSplit(rand.New(rand.NewSource(1)), 10, 0)
}

func TestEnsureCoverage(t *testing.T) {
	d := tiny()
	// Split where workload 1 / platform 1 appear only in Test.
	s := Split{Train: []int{0}, Test: []int{1, 2, 3}}
	s.EnsureCoverage(d)
	seenW := map[int]bool{}
	seenP := map[int]bool{}
	for _, i := range s.Train {
		seenW[d.Obs[i].Workload] = true
		seenP[d.Obs[i].Platform] = true
	}
	// Isolation obs 1 (w1,p1) must have been promoted.
	if !seenW[1] || !seenP[1] {
		t.Fatalf("coverage not ensured: train=%v", s.Train)
	}
	// Interference-only obs stay in test.
	for _, i := range s.Test {
		if i == 1 {
			t.Fatal("promoted observation still in test")
		}
	}
	if len(s.Train)+len(s.Test) != 4 {
		t.Fatal("observations lost")
	}
}

func TestByDegree(t *testing.T) {
	d := tiny()
	pools, degrees := ByDegree(d, []int{0, 1, 2, 3})
	if len(degrees) != 3 || degrees[0] != 0 || degrees[1] != 1 || degrees[2] != 2 {
		t.Fatalf("degrees = %v", degrees)
	}
	if len(pools[0]) != 2 || len(pools[1]) != 1 || len(pools[2]) != 1 {
		t.Fatalf("pools = %v", pools)
	}
}

func TestBatcher(t *testing.T) {
	d := tiny()
	b := NewBatcher(rand.New(rand.NewSource(2)), d, []int{0, 1, 2, 3})
	if b.PoolSize(0) != 2 || b.PoolSize(1) != 1 {
		t.Fatal("pool sizes wrong")
	}
	batch := b.Sample(0, 10)
	if len(batch) != 10 {
		t.Fatalf("batch size %d", len(batch))
	}
	for _, i := range batch {
		if d.Obs[i].Degree() != 0 {
			t.Fatal("wrong degree in batch")
		}
	}
	if b.Sample(7, 5) != nil {
		t.Fatal("sample from empty pool should be nil")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := tiny()
	d.WorkloadFeatures.Set(1, 2, 3.25)
	d.PlatformFeatures.Set(0, 4, -1.5)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumWorkloads() != 3 || got.NumPlatforms() != 2 || len(got.Obs) != 4 {
		t.Fatal("round trip lost entities")
	}
	if got.WorkloadFeatures.At(1, 2) != 3.25 || got.PlatformFeatures.At(0, 4) != -1.5 {
		t.Fatal("features lost")
	}
	if got.Obs[3].Degree() != 2 || got.Obs[3].Seconds != 2.0 {
		t.Fatal("observations corrupted")
	}
	if got.WorkloadSuites[2] != "b" || got.PlatformArchs[1] != "arm" {
		t.Fatal("metadata corrupted")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("accepted garbage")
	}
	// Valid JSON but inconsistent dataset.
	d := tiny()
	d.Obs[0].Workload = 0 // fine
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := bytes.Replace(buf.Bytes(), []byte(`"w":0`), []byte(`"w":55`), 1)
	if _, err := ReadJSON(bytes.NewReader(s)); err == nil {
		t.Fatal("accepted out-of-range workload")
	}
}
