package dataset

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

// fuzzSeedDataset builds a tiny but fully featured dataset by hand (this
// package cannot import wasmcluster without a cycle through its tests).
func fuzzSeedDataset() *Dataset {
	return &Dataset{
		WorkloadNames:    []string{"w0", "w1", "w2"},
		WorkloadSuites:   []string{"a", "a", "b"},
		PlatformNames:    []string{"p0", "p1"},
		PlatformRuntimes: []string{"rt0", "rt1"},
		PlatformArchs:    []string{"x86", "arm"},
		WorkloadFeatures: tensor.FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6}),
		PlatformFeatures: tensor.FromSlice(2, 3, []float64{0.5, 1, 0, 2, 0.25, 1}),
		Obs: []Observation{
			{Workload: 0, Platform: 0, Seconds: 1.5},
			{Workload: 1, Platform: 1, Seconds: 0.25, Interferers: []int{0}},
			{Workload: 2, Platform: 0, Seconds: 3.75, Interferers: []int{0, 1}},
		},
	}
}

// FuzzReadDataset asserts that malformed snapshots arriving from the wire
// (the serving daemon reads datasets over deployment channels) fail with
// errors, never panics, and that anything ReadJSON accepts is internally
// consistent. The corpus is seeded from WriteJSON output plus mutations
// that target the feature-matrix shape fields.
func FuzzReadDataset(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedDataset().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Shape/payload disagreements that used to panic in tensor.FromSlice.
	f.Add([]byte(`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[],"wf_rows":2,"wf_cols":3,"wf_data":[1]}`))
	f.Add([]byte(`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[],"pf_rows":1,"pf_cols":-1,"pf_data":[]}`))
	f.Add([]byte(`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[{"w":9,"p":0,"t":1}]}`))
	f.Add([]byte(`{"obs":[{"w":0,"p":0,"t":-1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must be safe for every consumer downstream.
		if err := d.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted a dataset that fails Validate: %v", err)
		}
		// And it must survive a write/read cycle.
		var rt bytes.Buffer
		if err := d.WriteJSON(&rt); err != nil {
			t.Fatalf("re-encode of accepted dataset failed: %v", err)
		}
		if _, err := ReadJSON(&rt); err != nil {
			t.Fatalf("re-decode of accepted dataset failed: %v", err)
		}
	})
}

func TestCloneAppendIsolatesObservations(t *testing.T) {
	d := fuzzSeedDataset()
	n := len(d.Obs)
	nd := d.CloneAppend([]Observation{{Workload: 0, Platform: 1, Seconds: 2}})
	if err := nd.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nd.Obs) != n+1 || len(d.Obs) != n {
		t.Fatalf("CloneAppend sizes: original %d, clone %d", len(d.Obs), len(nd.Obs))
	}
	// Mutating the clone's observations must not reach the original.
	nd.Obs[0].Seconds = 99
	if d.Obs[0].Seconds == 99 {
		t.Fatal("CloneAppend shares the observation backing array")
	}
	if nd.WorkloadFeatures != d.WorkloadFeatures {
		t.Fatal("CloneAppend should share immutable feature matrices")
	}
}

func TestReadJSONRejectsMalformedFeatureShapes(t *testing.T) {
	cases := []string{
		`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[],"wf_rows":2,"wf_cols":3,"wf_data":[1,2]}`,
		`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[],"wf_rows":-2,"wf_cols":3}`,
		`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[],"pf_rows":1,"pf_cols":0,"pf_data":[1]}`,
		`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[],"pf_rows":4611686018427387904,"pf_cols":4,"pf_data":[1,2,3,4]}`,
		// rows zeroed out (corruption) with the payload still present must
		// not silently drop the matrix — downstream model loading requires it.
		`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[],"wf_rows":0,"wf_cols":2,"wf_data":[1,2]}`,
		`{"workload_names":["w"],"workload_suites":["s"],"platform_names":["p"],"platform_runtimes":["r"],"platform_archs":["a"],"obs":[],"pf_rows":0,"pf_cols":0,"pf_data":[1]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: malformed feature shape accepted", i)
		}
	}
}
