package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	pitot "repro"
)

// fakeBackend is a deterministic Backend recording every batched call.
// With gate non-nil, the first EstimateBatch call blocks until the gate is
// closed — the deterministic way to hold a flush in flight so the next
// batch provably accumulates behind it.
type fakeBackend struct {
	mu         sync.Mutex
	estBatches [][]pitot.Query
	boundCalls map[float64][]int // eps -> batch sizes
	obs        int
	version    atomic.Uint64
	boundErr   error

	gate     chan struct{}
	gateUsed bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{boundCalls: map[float64][]int{}}
}

// flushInFlight reports whether the gated first call has started.
func (f *fakeBackend) flushInFlight() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gateUsed
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func (f *fakeBackend) estimate(q pitot.Query) float64 {
	return float64(q.Workload+1) + 0.001*float64(q.Platform)
}

// Estimate is the scalar (inline fast path) call; it records as a batch of
// one and honors the gate exactly like EstimateBatch.
func (f *fakeBackend) Estimate(w, pl int, interferers []int) float64 {
	q := pitot.Query{Workload: w, Platform: pl, Interferers: interferers}
	return f.EstimateBatch([]pitot.Query{q})[0]
}

// Bound is the scalar bound call used by the inline fast path.
func (f *fakeBackend) Bound(w, pl int, interferers []int, eps float64) (float64, error) {
	q := pitot.Query{Workload: w, Platform: pl, Interferers: interferers}
	out, err := f.BoundBatch([]pitot.Query{q}, eps)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

func (f *fakeBackend) EstimateBatch(qs []pitot.Query) []float64 {
	f.mu.Lock()
	f.estBatches = append(f.estBatches, append([]pitot.Query(nil), qs...))
	block := f.gate != nil && !f.gateUsed
	if block {
		f.gateUsed = true
	}
	f.mu.Unlock()
	if block {
		<-f.gate
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = f.estimate(q)
	}
	return out
}

func (f *fakeBackend) BoundBatch(qs []pitot.Query, eps float64) ([]float64, error) {
	f.mu.Lock()
	f.boundCalls[eps] = append(f.boundCalls[eps], len(qs))
	err := f.boundErr
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = f.estimate(q) * (1 + eps)
	}
	return out, nil
}

func (f *fakeBackend) Observe(obs []pitot.Observation) error {
	f.mu.Lock()
	f.obs += len(obs)
	f.mu.Unlock()
	f.version.Add(1)
	return nil
}

func (f *fakeBackend) Info() pitot.Info {
	f.mu.Lock()
	obs := f.obs
	f.mu.Unlock()
	return pitot.Info{
		Version:      f.version.Load(),
		Observations: obs,
		Workloads:    100,
		Platforms:    10,
		Bounds:       true,
	}
}

// A request arriving while the pipeline is idle must be served immediately
// (idle flush), not wait out a batching window.
func TestLoneRequestFlushesImmediately(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{MaxBatch: 1024, Window: time.Minute})
	defer s.Close()

	start := time.Now()
	got, err := s.Estimate(context.Background(), pitot.Query{Workload: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := be.estimate(pitot.Query{Workload: 3}); got != want {
		t.Fatalf("estimate %v, want %v", got, want)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone request waited %v despite idle pipeline", elapsed)
	}
	m := s.Metrics()
	if m.InlineFlushes != 1 || m.IdleFlushes != 0 || m.TimeoutFlushes != 0 || m.FullFlushes != 0 {
		t.Fatalf("flush counters: %+v", m)
	}
}

// A batch stuck behind an in-flight flush must be flushed by the window
// timer — flush-on-timeout.
func TestFlushOnTimeout(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	s := New(be, Config{MaxBatch: 1024, Window: 5 * time.Millisecond})
	defer s.Close()

	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Estimate(context.Background(), pitot.Query{Workload: 1})
		blockerDone <- err
	}()
	waitFor(t, "blocker flush to start", be.flushInFlight)

	// The second request accumulates behind the blocked flush; only the
	// window timer can release it.
	got, err := s.Estimate(context.Background(), pitot.Query{Workload: 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := be.estimate(pitot.Query{Workload: 7}); got != want {
		t.Fatalf("estimate %v, want %v", got, want)
	}
	if m := s.Metrics(); m.TimeoutFlushes != 1 {
		t.Fatalf("metrics %+v — expected exactly one timeout flush", m)
	}
	close(be.gate)
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}
}

// With the pipeline held busy, MaxBatch pending requests must fuse into
// exactly one EstimateBatch call (a full flush fires even while another
// flush is in flight).
func TestFullBatchFusesIntoOneCall(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	const n = 8
	s := New(be, Config{MaxBatch: n, Window: time.Minute})
	defer s.Close()

	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Estimate(context.Background(), pitot.Query{Workload: 99})
		blockerDone <- err
	}()
	waitFor(t, "blocker flush to start", be.flushInFlight)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := s.Estimate(context.Background(), pitot.Query{Workload: i})
			if err == nil && got != be.estimate(pitot.Query{Workload: i}) {
				err = errors.New("wrong value for query")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	close(be.gate)
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}

	be.mu.Lock()
	defer be.mu.Unlock()
	// Batch 0 is the blocker; the n concurrent requests must form one
	// full batch.
	if len(be.estBatches) != 2 || len(be.estBatches[1]) != n {
		sizes := []int{}
		for _, b := range be.estBatches {
			sizes = append(sizes, len(b))
		}
		t.Fatalf("expected batches [1 %d], got sizes %v", n, sizes)
	}
	if m := s.Metrics(); m.FullFlushes != 1 || m.Requests != n+1 {
		t.Fatalf("metrics %+v", m)
	}
}

// Mixed estimate/bound batches must issue one EstimateBatch plus one
// BoundBatch per distinct eps.
func TestBoundGroupsByEps(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	const n = 6
	s := New(be, Config{MaxBatch: n, Window: time.Minute})
	defer s.Close()

	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Estimate(context.Background(), pitot.Query{Workload: 99})
		blockerDone <- err
	}()
	waitFor(t, "blocker flush to start", be.flushInFlight)

	var wg sync.WaitGroup
	launch := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				t.Error(err)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		i := i
		launch(func() error {
			_, err := s.Estimate(context.Background(), pitot.Query{Workload: i})
			return err
		})
		launch(func() error {
			got, err := s.Bound(context.Background(), pitot.Query{Workload: i}, 0.1)
			if err == nil && got != be.estimate(pitot.Query{Workload: i})*1.1 {
				return errors.New("wrong bound value")
			}
			return err
		})
		launch(func() error {
			_, err := s.Bound(context.Background(), pitot.Query{Workload: i}, 0.2)
			return err
		})
	}
	wg.Wait()
	close(be.gate)
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}

	be.mu.Lock()
	defer be.mu.Unlock()
	if len(be.estBatches) != 2 || len(be.estBatches[1]) != 2 {
		t.Fatalf("estimate batches %v", be.estBatches)
	}
	if got := be.boundCalls[0.1]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("eps=0.1 calls %v", got)
	}
	if got := be.boundCalls[0.2]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("eps=0.2 calls %v", got)
	}
}

// A BoundBatch error must propagate to every waiter in the group, and bad
// eps is rejected before enqueueing.
func TestBoundErrors(t *testing.T) {
	be := newFakeBackend()
	be.boundErr = errors.New("bounds not enabled")
	s := New(be, Config{MaxBatch: 4, Window: time.Millisecond})
	defer s.Close()
	if _, err := s.Bound(context.Background(), pitot.Query{}, 0.1); err == nil {
		t.Fatal("backend error not propagated")
	}
	if _, err := s.Bound(context.Background(), pitot.Query{}, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := s.Bound(context.Background(), pitot.Query{}, 1.5); err == nil {
		t.Fatal("eps>1 accepted")
	}
	// NaN must be rejected before enqueueing: a queued NaN eps would
	// defeat the flusher's per-eps grouping (NaN != NaN).
	if _, err := s.Bound(context.Background(), pitot.Query{}, math.NaN()); err == nil {
		t.Fatal("eps=NaN accepted")
	}
}

// Admission control: when the queue is full, submit fails fast with
// ErrOverloaded. White-box: the collector is not started, so the queue
// stays full deterministically.
func TestAdmissionOverload(t *testing.T) {
	s := &Server{
		be:            newFakeBackend(),
		cfg:           Config{MaxBatch: 4, Window: time.Minute, MaxQueue: 1}.withDefaults(),
		closing:       make(chan struct{}),
		collectorDone: make(chan struct{}),
	}
	s.queue = make(chan *request, 1)
	// Pretend a flush is in flight so requests take the queued path
	// instead of the inline fast path.
	s.inFlight.Add(1)

	done := make(chan error, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_, err := s.Estimate(ctx, pitot.Query{})
		done <- err
	}()
	waitFor(t, "first request to queue", func() bool { return len(s.queue) == 1 })
	if _, err := s.Estimate(context.Background(), pitot.Query{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected counter %d", m.Rejected)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request err = %v", err)
	}
	close(s.closing)
	close(s.collectorDone)
}

// Close must fail queued and future requests with ErrClosed and leave no
// goroutines wedged.
func TestCloseFailsPending(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{MaxBatch: 1024, Window: time.Minute})
	var wg sync.WaitGroup
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Estimate(context.Background(), pitot.Query{Workload: i})
			results <- err
		}(i)
	}
	// Some requests may be served before the close lands; the rest must
	// fail fast with ErrClosed. Either way nothing may hang.
	time.Sleep(10 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if _, err := s.Estimate(context.Background(), pitot.Query{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v", err)
	}
	s.Close() // idempotent
}

// Context cancellation unblocks a waiter whose batch has not flushed yet
// (held behind a gated in-flight flush with a long window).
func TestContextCancelUnblocks(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	s := New(be, Config{MaxBatch: 1024, Window: time.Minute})
	defer func() {
		close(be.gate)
		s.Close()
	}()

	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Estimate(context.Background(), pitot.Query{})
		blockerDone <- err
	}()
	waitFor(t, "blocker flush to start", be.flushInFlight)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Estimate(ctx, pitot.Query{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// Per-snapshot metrics must attribute batches to the snapshot version that
// served them.
func TestPerSnapshotMetrics(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{MaxBatch: 4, Window: time.Millisecond})
	defer s.Close()
	if _, err := s.Estimate(context.Background(), pitot.Query{Workload: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe([]pitot.Observation{{Workload: 0, Platform: 0, Seconds: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Estimate(context.Background(), pitot.Query{Workload: 2}); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Observes != 1 || m.ObserveErrors != 0 {
		t.Fatalf("observe counters %+v", m)
	}
	if len(m.PerSnapshot) != 2 {
		t.Fatalf("per-snapshot rows %+v", m.PerSnapshot)
	}
	if m.PerSnapshot[0].Version != 0 || m.PerSnapshot[1].Version != 1 {
		t.Fatalf("snapshot versions %+v", m.PerSnapshot)
	}
	for _, sm := range m.PerSnapshot {
		if sm.Batches != 1 || sm.Queries != 1 || sm.MeanBatch != 1 {
			t.Fatalf("snapshot row %+v", sm)
		}
	}
}

// The per-snapshot table must not grow without bound across many Observe
// publications: only the newest maxSnapshotRetention versions survive.
func TestPerSnapshotMetricsRetention(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{MaxBatch: 4, Window: time.Millisecond})
	defer s.Close()
	const versions = maxSnapshotRetention * 3
	for v := 0; v < versions; v++ {
		if _, err := s.Estimate(context.Background(), pitot.Query{Workload: v % 10}); err != nil {
			t.Fatal(err)
		}
		if err := s.Observe([]pitot.Observation{{Workload: 0, Platform: 0, Seconds: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if len(m.PerSnapshot) > maxSnapshotRetention {
		t.Fatalf("per-snapshot table grew to %d rows (cap %d)", len(m.PerSnapshot), maxSnapshotRetention)
	}
	// The newest recorded version must be retained.
	last := m.PerSnapshot[len(m.PerSnapshot)-1].Version
	if last < uint64(versions-maxSnapshotRetention) {
		t.Fatalf("retained versions end at %d, expected the newest to survive", last)
	}
}
