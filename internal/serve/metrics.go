package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	pitot "repro"
)

// counter is a cache-line-friendly alias for the hot-path counters.
type counter = atomic.Int64

// maxSnapshotRetention bounds the per-snapshot metrics table: a daemon
// taking periodic /observe traffic publishes a new version per update, and
// without a cap the table (and every /healthz payload) would grow forever.
// Only the newest versions are kept — staleness questions are about the
// recent transition, not months-old snapshots.
const maxSnapshotRetention = 8

// metrics holds the server's internal counters. Everything on the request
// path — including the per-snapshot attribution used by the inline fast
// path — is lock-free: plain atomics plus a sync.Map whose read path is a
// single atomic load once a version's entry exists. The only mutex guards
// pruning, which runs at most once per published snapshot beyond the
// retention window.
type metrics struct {
	requests       counter
	rejected       counter
	observes       counter
	observeErrors  counter
	fullFlushes    counter
	idleFlushes    counter
	timeoutFlushes counter
	inlineFlushes  counter

	// Placement lifecycle (populated only when EnablePlacement ran).
	// placeWaves/placeWaveJobs count fused accumulation-window waves and
	// the single-job calls they absorbed; placeInline counts single-job
	// calls served on the caller's goroutine because nothing was in
	// flight to fuse with.
	placed          counter
	placeUnplaced   counter
	placeRejected   counter
	completed       counter
	completeUnknown counter
	completeStale   counter
	placeWaves      counter
	placeWaveJobs   counter
	placeInline     counter
	// placeShed counts single-job calls that found the accumulation queue
	// full and fell back to the direct path — overload traffic that fused
	// waves never see, so it must be accounted separately or /place volume
	// is under-reported exactly when the server is busiest.
	placeShed counter

	// Failure lifecycle: admin fail/degrade/recover events, residents
	// orphaned by failures and whether their re-placement succeeded, and
	// waves shed because the placeable set was empty.
	failEvents     counter
	degradeEvents  counter
	recoverEvents  counter
	orphaned       counter
	orphanReplaced counter
	orphanLost     counter
	placeNoHealthy counter

	perSnap   sync.Map // uint64 (snapshot version) -> *snapCounters
	snapCount counter  // approximate entry count, drives pruning
	pruneMu   sync.Mutex

	// calVersion[p] is the snapshot version published by the most recent
	// successful Observe that carried a measurement for platform p — the
	// platform's calibration watermark. The current version minus the
	// watermark is how many snapshots the platform's serving bounds lag
	// its freshest measurements (per-platform staleness gauge). Guarded
	// by calMu; Observe is far off the hot path.
	calMu      sync.Mutex
	calVersion map[int]uint64
}

// noteCalibrated advances the calibration watermarks of every platform
// appearing in obs to the given snapshot version.
func (m *metrics) noteCalibrated(obs []pitot.Observation, version uint64) {
	m.calMu.Lock()
	defer m.calMu.Unlock()
	if m.calVersion == nil {
		m.calVersion = make(map[int]uint64)
	}
	for _, o := range obs {
		if v, ok := m.calVersion[o.Platform]; !ok || version > v {
			m.calVersion[o.Platform] = version
		}
	}
}

// calibrationLag returns, for each platform index, how many snapshot
// versions its calibration watermark lags the current version. Platforms
// that never received an Observe lag the full version history: their
// bounds still rest on the initial training calibration.
func (m *metrics) calibrationLag(platforms int, current uint64) []uint64 {
	m.calMu.Lock()
	defer m.calMu.Unlock()
	lag := make([]uint64, platforms)
	for p := range lag {
		v, ok := m.calVersion[p]
		if !ok || v > current {
			// Unobserved (or racing a not-yet-visible publish): lag is the
			// whole history, resp. zero.
			if ok {
				continue
			}
			lag[p] = current
			continue
		}
		lag[p] = current - v
	}
	return lag
}

type snapCounters struct {
	batches counter
	queries counter
	maxSize counter
}

func (m *metrics) recordBatch(version uint64, size int) {
	v, ok := m.perSnap.Load(version)
	if !ok {
		var loaded bool
		v, loaded = m.perSnap.LoadOrStore(version, &snapCounters{})
		if !loaded && m.snapCount.Add(1) > maxSnapshotRetention {
			m.prune()
		}
	}
	sc := v.(*snapCounters)
	sc.batches.Add(1)
	sc.queries.Add(int64(size))
	for {
		cur := sc.maxSize.Load()
		if int64(size) <= cur || sc.maxSize.CompareAndSwap(cur, int64(size)) {
			break
		}
	}
}

// prune drops the oldest versions beyond the retention cap. A stale flush
// racing the prune of its (ancient) version loses its counts — acceptable
// for aged-out telemetry.
func (m *metrics) prune() {
	m.pruneMu.Lock()
	defer m.pruneMu.Unlock()
	var versions []uint64
	m.perSnap.Range(func(k, _ any) bool {
		versions = append(versions, k.(uint64))
		return true
	})
	if len(versions) <= maxSnapshotRetention {
		return
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	for _, v := range versions[:len(versions)-maxSnapshotRetention] {
		m.perSnap.Delete(v)
		m.snapCount.Add(-1)
	}
}

// SnapshotMetrics summarizes the traffic served from one published model
// snapshot — the per-snapshot view that makes staleness visible: after an
// Observe, new flushes land on the next version while in-flight ones
// finish on the previous.
type SnapshotMetrics struct {
	Version      uint64  `json:"version"`
	Batches      int64   `json:"batches"`
	Queries      int64   `json:"queries"`
	MaxBatchSize int     `json:"max_batch_size"`
	MeanBatch    float64 `json:"mean_batch"`
}

// Metrics is a point-in-time copy of the server's counters.
type Metrics struct {
	Requests      int64 `json:"requests"`
	Rejected      int64 `json:"rejected"`
	Observes      int64 `json:"observes"`
	ObserveErrors int64 `json:"observe_errors"`
	// FullFlushes counts batches flushed at MaxBatch, IdleFlushes batches
	// flushed because the pipeline was idle, TimeoutFlushes batches that
	// waited out a Window behind an in-flight flush, and InlineFlushes
	// single queries served synchronously on the caller's goroutine
	// because there was nothing to co-batch with.
	FullFlushes    int64 `json:"full_flushes"`
	IdleFlushes    int64 `json:"idle_flushes"`
	TimeoutFlushes int64 `json:"timeout_flushes"`
	InlineFlushes  int64 `json:"inline_flushes"`

	// Placement lifecycle counters: jobs placed, infeasible (no platform
	// meets the deadline), rejected by admission control, completions, and
	// completion calls for unknown/already-retired jobs. All zero unless
	// placement is enabled.
	Placed          int64 `json:"placed,omitempty"`
	PlaceUnplaced   int64 `json:"place_unplaced,omitempty"`
	PlaceRejected   int64 `json:"place_rejected,omitempty"`
	Completed       int64 `json:"completed,omitempty"`
	CompleteUnknown int64 `json:"complete_unknown,omitempty"`
	// CompleteStale counts completion calls for IDs already retired —
	// double completions and stale completions of orphaned jobs.
	CompleteStale int64 `json:"complete_stale,omitempty"`
	// Failure-lifecycle counters: /fail and /recover admin events, the
	// residents they orphaned (split by re-placement outcome), breaker
	// trips/re-admissions/closes, and placements shed because no healthy
	// platform remained. All zero unless placement is enabled.
	FailEvents      int64  `json:"fail_events,omitempty"`
	DegradeEvents   int64  `json:"degrade_events,omitempty"`
	RecoverEvents   int64  `json:"recover_events,omitempty"`
	Orphaned        int64  `json:"orphaned,omitempty"`
	OrphanReplaced  int64  `json:"orphan_replaced,omitempty"`
	OrphanLost      int64  `json:"orphan_lost,omitempty"`
	PlaceNoHealthy  int64  `json:"place_no_healthy,omitempty"`
	BreakerTrips    uint64 `json:"breaker_trips,omitempty"`
	BreakerReadmits uint64 `json:"breaker_readmits,omitempty"`
	BreakerCloses   uint64 `json:"breaker_closes,omitempty"`
	// PlatformHealth[p] names platform p's health state; nil unless
	// placement is enabled.
	PlatformHealth []string `json:"platform_health,omitempty"`
	// PlaceWaves counts fused accumulation-window waves, PlaceWaveJobs
	// the single-job /place calls they absorbed, PlaceInline the
	// single-job calls served inline because nothing was in flight, and
	// PlaceShed the single-job calls shed to the direct path because the
	// accumulation queue was full (overload). All zero unless
	// PlacementConfig.Window is set.
	PlaceWaves    int64 `json:"place_waves,omitempty"`
	PlaceWaveJobs int64 `json:"place_wave_jobs,omitempty"`
	PlaceInline   int64 `json:"place_inline,omitempty"`
	PlaceShed     int64 `json:"place_shed,omitempty"`

	// Replicated-placement counters (PlacementConfig.Replicas > 1):
	// scheduler replicas serving /place, optimistic slot reservations
	// attempted, reservations that lost the commit race, jobs shed after
	// exhausting their conflict-retry budget, and shard-map rebalances.
	PlaceReplicas     int    `json:"place_replicas,omitempty"`
	ReserveAttempts   uint64 `json:"reserve_attempts,omitempty"`
	ReserveConflicts  uint64 `json:"reserve_conflicts,omitempty"`
	PlaceConflictShed uint64 `json:"place_conflict_shed,omitempty"`
	PlaceRebalances   uint64 `json:"place_rebalances,omitempty"`

	// Score-cache counters (PlacementConfig.ScoreCache): distinct-workload
	// column lookups served from the cross-wave cache vs scored through
	// the predictor, FIFO capacity evictions, whole-column invalidations
	// (slot-version or snapshot-epoch change), and current resident
	// entries. ScoreCacheEnabled distinguishes a cold enabled cache from a
	// disabled one.
	ScoreCacheEnabled       bool   `json:"score_cache_enabled,omitempty"`
	ScoreCacheHits          uint64 `json:"score_cache_hits,omitempty"`
	ScoreCacheMisses        uint64 `json:"score_cache_misses,omitempty"`
	ScoreCacheEvictions     uint64 `json:"score_cache_evictions,omitempty"`
	ScoreCacheInvalidations uint64 `json:"score_cache_invalidations,omitempty"`
	ScoreCacheEntries       int64  `json:"score_cache_entries,omitempty"`

	// PerSnapshot is ordered by snapshot version; only the newest
	// maxSnapshotRetention versions are retained.
	PerSnapshot []SnapshotMetrics `json:"per_snapshot,omitempty"`
}

// Metrics returns a consistent-enough copy of the server's counters for
// health reporting (individual counters are read atomically; the set is
// not a single linearizable cut).
func (s *Server) Metrics() Metrics {
	m := &s.metrics
	out := Metrics{
		Requests:        m.requests.Load(),
		Rejected:        m.rejected.Load(),
		Observes:        m.observes.Load(),
		ObserveErrors:   m.observeErrors.Load(),
		FullFlushes:     m.fullFlushes.Load(),
		IdleFlushes:     m.idleFlushes.Load(),
		TimeoutFlushes:  m.timeoutFlushes.Load(),
		InlineFlushes:   m.inlineFlushes.Load(),
		Placed:          m.placed.Load(),
		PlaceUnplaced:   m.placeUnplaced.Load(),
		PlaceRejected:   m.placeRejected.Load(),
		Completed:       m.completed.Load(),
		CompleteUnknown: m.completeUnknown.Load(),
		CompleteStale:   m.completeStale.Load(),
		PlaceWaves:      m.placeWaves.Load(),
		PlaceWaveJobs:   m.placeWaveJobs.Load(),
		PlaceInline:     m.placeInline.Load(),
		PlaceShed:       m.placeShed.Load(),
		FailEvents:      m.failEvents.Load(),
		DegradeEvents:   m.degradeEvents.Load(),
		RecoverEvents:   m.recoverEvents.Load(),
		Orphaned:        m.orphaned.Load(),
		OrphanReplaced:  m.orphanReplaced.Load(),
		OrphanLost:      m.orphanLost.Load(),
		PlaceNoHealthy:  m.placeNoHealthy.Load(),
	}
	if s.placer != nil {
		st := s.placer.FailureStats()
		out.BreakerTrips = st.Trips
		out.BreakerReadmits = st.Readmissions
		out.BreakerCloses = st.Closes
		hs := s.placer.HealthSnapshot()
		out.PlatformHealth = make([]string, len(hs))
		for p, h := range hs {
			out.PlatformHealth[p] = h.String()
		}
		if cr, ok := s.placer.(conflictReporter); ok {
			cs := cr.ConflictStats()
			out.PlaceReplicas = cr.NumReplicas()
			out.ReserveAttempts = cs.Attempts
			out.ReserveConflicts = cs.Conflicts
			out.PlaceConflictShed = cs.Shed
			out.PlaceRebalances = cs.Rebalances
		}
		if sr, ok := s.placer.(scoreCacheReporter); ok {
			if cs, enabled := sr.ScoreCacheStats(); enabled {
				out.ScoreCacheEnabled = true
				out.ScoreCacheHits = cs.Hits
				out.ScoreCacheMisses = cs.Misses
				out.ScoreCacheEvictions = cs.Evictions
				out.ScoreCacheInvalidations = cs.Invalidations
				out.ScoreCacheEntries = cs.Entries
			}
		}
	}
	m.perSnap.Range(func(k, v any) bool {
		sc := v.(*snapCounters)
		sm := SnapshotMetrics{
			Version:      k.(uint64),
			Batches:      sc.batches.Load(),
			Queries:      sc.queries.Load(),
			MaxBatchSize: int(sc.maxSize.Load()),
		}
		if sm.Batches > 0 {
			sm.MeanBatch = float64(sm.Queries) / float64(sm.Batches)
		}
		out.PerSnapshot = append(out.PerSnapshot, sm)
		return true
	})
	sort.Slice(out.PerSnapshot, func(i, j int) bool {
		return out.PerSnapshot[i].Version < out.PerSnapshot[j].Version
	})
	return out
}

// PlatformCalibrationLag returns, per platform index, how many snapshot
// versions the platform's serving calibration lags its freshest observed
// measurements — 0 for a platform whose measurements are folded into the
// currently published snapshot, the full version count for one never
// observed since startup. This is the data behind the Prometheus
// pitot_platform_calibration_lag gauge.
func (s *Server) PlatformCalibrationLag() []uint64 {
	info := s.Info()
	return s.metrics.calibrationLag(info.Platforms, info.Version)
}
