package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// TestReplicatedPlacementConcurrent drives the replicated /place engine
// the way parallel frontends would: goroutines placing and completing
// against one shared slot store. Placement accounting must conserve jobs,
// in-flight must drain, and the replica metrics must surface.
func TestReplicatedPlacementConcurrent(t *testing.T) {
	pred, ds := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "bound", Eps: 0.1, MaxColocation: 4, Replicas: 4,
	}); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var placed, other, completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				w := (g*10 + i) % ds.NumWorkloads()
				b, err := pred.Bound(w, 0, nil, 0.1)
				if err != nil {
					t.Errorf("bound: %v", err)
					return
				}
				as, err := s.PlaceJobs([]sched.Job{{Workload: w, Deadline: b * 4}})
				if err != nil {
					t.Errorf("place: %v", err)
					return
				}
				for _, a := range as {
					if !a.Placed() {
						other.Add(1)
						continue
					}
					placed.Add(1)
					n, _, _, err := s.CompleteJobs([]sched.JobID{a.ID}, []bool{false})
					if err != nil {
						t.Errorf("complete: %v", err)
						return
					}
					completed.Add(int64(n))
				}
			}
		}(g)
	}
	wg.Wait()

	if got := placed.Load() + other.Load(); got != workers*10 {
		t.Fatalf("accounted %d of %d jobs", got, workers*10)
	}
	if completed.Load() != placed.Load() {
		t.Fatalf("completed %d of %d placements", completed.Load(), placed.Load())
	}
	if got := s.Placer().InFlight(); got != 0 {
		t.Fatalf("in-flight after drain: %d", got)
	}
	m := s.Metrics()
	if m.PlaceReplicas != 4 {
		t.Fatalf("PlaceReplicas = %d, want 4", m.PlaceReplicas)
	}
	if m.ReserveAttempts < uint64(placed.Load()) {
		t.Fatalf("reserve attempts %d < placements %d", m.ReserveAttempts, placed.Load())
	}
	if m.Placed != placed.Load() || m.Completed != completed.Load() {
		t.Fatalf("metrics placed=%d completed=%d, counted %d/%d",
			m.Placed, m.Completed, placed.Load(), completed.Load())
	}
}
