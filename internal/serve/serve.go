// Package serve is the concurrent serving layer on top of the snapshot-
// isolated Predictor: request admission, micro-batching of single
// Estimate/Bound calls into EstimateBatch/BoundBatch windows, and
// per-snapshot serving metrics. cmd/serve wraps it in an HTTP daemon.
//
// Micro-batching: every request is enqueued on one channel; a collector
// goroutine accumulates requests and hands batches to flushers that issue
// one EstimateBatch call (and one BoundBatch call per distinct eps) against
// the predictor. The flush policy is natural batching with single-flight
// pipelining:
//
//   - a full batch (MaxBatch pending) flushes immediately, always;
//   - when no flush is in flight, whatever has accumulated flushes
//     immediately — a lone request never waits for co-batching;
//   - while a flush is in flight, requests accumulate into the next batch
//     (the batch size adapts to the flush duration, which is what makes
//     the pipeline self-balancing under load), capped by the Window timer
//     so no request waits more than one window behind a slow flush.
//
// Because predictor reads are lock-free, overlapping flushes are safe — a
// slow flush never stalls admission or the next batch. Admission is
// bounded by MaxQueue; when the queue is full, requests fail fast with
// ErrOverloaded instead of piling up latency.
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	pitot "repro"
	"repro/internal/obs"
)

// Backend is the predictor surface the server batches over. *pitot.Predictor
// implements it; tests substitute fakes. Implementations must be safe for
// concurrent use (any prediction may run while Observe publishes). The
// scalar Estimate/Bound power the uncontended inline fast path; the batch
// calls serve fused flushes.
type Backend interface {
	Estimate(w, pl int, interferers []int) float64
	Bound(w, pl int, interferers []int, eps float64) (float64, error)
	EstimateBatch(qs []pitot.Query) []float64
	BoundBatch(qs []pitot.Query, eps float64) ([]float64, error)
	Observe(obs []pitot.Observation) error
	Info() pitot.Info
}

// ErrOverloaded is returned when admission control rejects a request
// because the pending queue is full.
var ErrOverloaded = errors.New("serve: overloaded, request queue full")

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrPlacementDisabled is returned for placement calls when
// EnablePlacement was never configured.
var ErrPlacementDisabled = errors.New("serve: placement not enabled")

// Config tunes the micro-batching window and admission control.
type Config struct {
	// MaxBatch flushes a batch as soon as this many requests are pending
	// (default 256).
	MaxBatch int
	// Window is the maximum time a pending batch waits behind an in-flight
	// flush before being flushed concurrently anyway (default 100µs). A
	// request that arrives while the pipeline is idle never waits: it
	// flushes immediately.
	Window time.Duration
	// MaxQueue bounds the admission queue (default 4096). Requests beyond
	// it fail with ErrOverloaded.
	MaxQueue int
	// BuildVersion stamps /healthz and the pitot_build_info metric; cmd/serve
	// injects it via -ldflags "-X main.buildVersion=...". Empty means "dev".
	BuildVersion string
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Window <= 0 {
		c.Window = 100 * time.Microsecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4096
	}
	if c.BuildVersion == "" {
		c.BuildVersion = "dev"
	}
	return c
}

// serveHists holds the request-latency histograms on the ungated serving
// surface. They exist from New on (no placement required) so /metrics always
// exposes the full latency shape of the prediction path.
type serveHists struct {
	estimate     *obs.Histogram // end-to-end /estimate handler latency
	bound        *obs.Histogram // end-to-end /bound handler latency
	place        *obs.Histogram // end-to-end /place handler latency
	observeFlush *obs.Histogram // Observe: backend fine-tune + publish duration
}

func newServeHists() serveHists {
	lb := obs.LatencyBuckets()
	return serveHists{
		estimate:     obs.NewHistogram("pitot_http_estimate_seconds", "End-to-end /estimate request latency.", lb),
		bound:        obs.NewHistogram("pitot_http_bound_seconds", "End-to-end /bound request latency.", lb),
		place:        obs.NewHistogram("pitot_http_place_seconds", "End-to-end /place request latency.", lb),
		observeFlush: obs.NewHistogram("pitot_observe_flush_seconds", "Observe flush duration (fine-tune + snapshot publish).", lb),
	}
}

// request is one queued Estimate or Bound call.
type request struct {
	q     pitot.Query
	eps   float64 // negative for Estimate, the target miscoverage for Bound
	reply chan reply
}

type reply struct {
	seconds float64
	err     error
}

// requestPool recycles request structs (and their reply channels) across
// calls: the micro-batch hot path allocates nothing per request in steady
// state.
var requestPool = sync.Pool{
	New: func() any { return &request{reply: make(chan reply, 1)} },
}

// Server micro-batches single-prediction calls into batch windows over a
// Backend. Create with New, release with Close.
type Server struct {
	be  Backend
	cfg Config

	queue   chan *request
	closing chan struct{}
	closed  sync.Once

	// inFlight counts flushes (batched and inline) currently executing;
	// the collector and the inline fast path read it to decide whether
	// queueing would buy any co-batching.
	inFlight atomic.Int64

	collectorDone chan struct{}
	flushes       sync.WaitGroup

	metrics metrics
	hists   serveHists

	// start anchors the uptime gauge; both /healthz and /metrics report
	// time since New.
	start time.Time

	// recorder is the placement flight recorder (nil until EnablePlacement
	// runs with tracing on); schedMetrics are the placement-stack latency
	// histograms exposed under pitot_place_*. Both feed /debug/trace and
	// the gated /metrics block.
	recorder     *obs.Recorder
	schedMetrics *obs.SchedMetrics

	// placer is the optional orchestration engine behind /place; nil until
	// EnablePlacement. Its decisions read the same lock-free snapshot the
	// prediction paths serve. A single scheduler by default, a
	// sched.ReplicaSet when PlacementConfig.Replicas > 1.
	placer            Placer
	placementPolicy   string
	placementStrategy string

	// placeQueue/placeDone drive the optional /place accumulation window
	// (PlacementConfig.Window): concurrent single-job placements are fused
	// into one wave so the scheduler pre-scores them together — one
	// platform-major interference fold per platform per wave instead of
	// per call. placeInFlight counts waves currently placing (fused and
	// direct); placePending counts single-job calls submitted to the
	// batcher and not yet flushed (the collector moves them into its
	// private batch immediately, so the queue length alone cannot tell an
	// open accumulation window from an idle pipeline). The inline fast
	// path reads both.
	placeQueue    chan *placeReq
	placeDone     chan struct{}
	placeInFlight atomic.Int64
	placePending  atomic.Int64
}

// New starts a server over the backend.
func New(be Backend, cfg Config) *Server {
	s := &Server{
		be:            be,
		cfg:           cfg.withDefaults(),
		closing:       make(chan struct{}),
		collectorDone: make(chan struct{}),
		hists:         newServeHists(),
		start:         time.Now(),
	}
	s.queue = make(chan *request, s.cfg.MaxQueue)
	go s.collect()
	return s
}

// Close stops the collector, fails queued requests with ErrClosed, and
// waits for dispatched flushes to finish. Predictions executing on the
// inline fast path run on their callers' goroutines and complete on their
// own — after Close returns, no server-spawned goroutine is running, but
// callers concurrently inside Estimate/Bound may still be. Safe to call
// more than once.
func (s *Server) Close() {
	s.closed.Do(func() { close(s.closing) })
	<-s.collectorDone
	if s.placeDone != nil {
		<-s.placeDone
	}
	s.flushes.Wait()
}

// Estimate predicts the runtime of one query through the micro-batching
// path. It blocks until the batch containing the query is flushed, ctx is
// done, or the server is closed.
func (s *Server) Estimate(ctx context.Context, q pitot.Query) (float64, error) {
	return s.submit(ctx, q, -1)
}

// Bound returns the 1−eps runtime budget of one query through the
// micro-batching path; queries with the same eps in a window share one
// BoundBatch call.
func (s *Server) Bound(ctx context.Context, q pitot.Query, eps float64) (float64, error) {
	// Negated-range check rejects NaN as well: a NaN eps in the queue
	// would defeat the flusher's per-eps grouping (NaN != NaN).
	if !(eps > 0 && eps < 1) {
		return 0, errors.New("serve: eps out of (0,1)")
	}
	return s.submit(ctx, q, eps)
}

// Observe forwards measurements to the backend. The backend serializes
// writers internally and never blocks concurrent reads, so Observe needs
// no batching: its latency is the fine-tune itself. Successful calls
// advance each touched platform's calibration watermark, the basis of the
// per-platform staleness gauge in /metrics.
func (s *Server) Observe(observations []pitot.Observation) error {
	s.metrics.observes.Add(1)
	start := time.Now()
	err := s.be.Observe(observations)
	s.hists.observeFlush.ObserveSince(start)
	if err != nil {
		s.metrics.observeErrors.Add(1)
		return err
	}
	s.metrics.noteCalibrated(observations, s.be.Info().Version)
	return nil
}

// Info exposes the backend's current snapshot metadata.
func (s *Server) Info() pitot.Info { return s.be.Info() }

func (s *Server) submit(ctx context.Context, q pitot.Query, eps float64) (float64, error) {
	select {
	case <-s.closing:
		return 0, ErrClosed
	default:
	}
	// Inline fast path: with nothing queued and no flush in flight there
	// is nothing to co-batch with, so queueing would only add goroutine
	// hand-offs. Serve the query synchronously on the caller's goroutine —
	// micro-batching engages exactly when requests actually overlap.
	if len(s.queue) == 0 && s.inFlight.Load() == 0 {
		s.inFlight.Add(1)
		s.metrics.requests.Add(1)
		s.metrics.inlineFlushes.Add(1)
		version := s.be.Info().Version
		var (
			sec float64
			err error
		)
		if eps < 0 {
			sec = s.be.Estimate(q.Workload, q.Platform, q.Interferers)
		} else {
			sec, err = s.be.Bound(q.Workload, q.Platform, q.Interferers, eps)
		}
		s.metrics.recordBatch(version, 1)
		s.inFlight.Add(-1)
		return sec, err
	}
	r := requestPool.Get().(*request)
	r.q, r.eps = q, eps
	select {
	case s.queue <- r:
	default:
		requestPool.Put(r)
		s.metrics.rejected.Add(1)
		return 0, ErrOverloaded
	}
	s.metrics.requests.Add(1)
	select {
	case rep := <-r.reply:
		requestPool.Put(r)
		return rep.seconds, rep.err
	case <-ctx.Done():
		// The flusher may still write to r.reply (buffered, never blocks);
		// the request cannot be pooled again.
		return 0, ctx.Err()
	case <-s.collectorDone:
		// Close raced our enqueue: the collector may have exited without
		// ever seeing this request. Prefer a reply if one already landed
		// (a final flush may have carried it); otherwise report closed.
		select {
		case rep := <-r.reply:
			requestPool.Put(r)
			return rep.seconds, rep.err
		default:
			return 0, ErrClosed
		}
	}
}

// collect accumulates requests into batches and dispatches flushes under
// the natural-batching policy described in the package comment.
func (s *Server) collect() {
	defer close(s.collectorDone)
	var (
		batch  []*request
		timer  *time.Timer
		timerC <-chan time.Time
	)
	// flushDone is buffered so flushers never block signalling completion,
	// even if the collector is mid-shutdown.
	flushDone := make(chan struct{}, 1024)
	stopTimer := func() {
		if timerC != nil && !timer.Stop() {
			// Fired while we were busy: drain the stale tick so a later
			// Reset cannot flush a batch early. The collector is the only
			// reader of timer.C, so the non-blocking drain is safe.
			select {
			case <-timer.C:
			default:
			}
		}
		timerC = nil
	}
	start := func(counter *counter) {
		if counter != nil {
			counter.Add(1)
		}
		stopTimer()
		s.dispatch(batch, flushDone)
		batch = nil
	}
	for {
		// Drain everything already queued without blocking.
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r := <-s.queue:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		switch {
		case len(batch) >= s.cfg.MaxBatch:
			// Full batches flush immediately and concurrently: predictor
			// reads are lock-free, so overlapping flushes scale.
			start(&s.metrics.fullFlushes)
			continue
		case len(batch) > 0 && s.inFlight.Load() == 0:
			// Pipeline idle: serve what we have now. A lone request pays
			// zero co-batching latency; under load the next batch has
			// been accumulating while this flush runs.
			start(&s.metrics.idleFlushes)
			continue
		case len(batch) > 0 && timerC == nil:
			// Batch pending behind an in-flight flush: cap its wait.
			if timer == nil {
				timer = time.NewTimer(s.cfg.Window)
			} else {
				timer.Reset(s.cfg.Window)
			}
			timerC = timer.C
		}
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-flushDone:
			// A dispatched flush retired; recheck whether the accumulated
			// batch can go out. (Inline flushes do not signal: a batch
			// pending behind one is bounded by the window timer instead.)
		case <-timerC:
			timerC = nil
			if len(batch) > 0 {
				start(&s.metrics.timeoutFlushes)
			}
		case <-s.closing:
			if len(batch) > 0 {
				start(nil)
			}
			s.drainAndFail()
			return
		}
	}
}

// drainAndFail rejects everything still queued at shutdown.
func (s *Server) drainAndFail() {
	for {
		select {
		case r := <-s.queue:
			r.reply <- reply{err: ErrClosed}
		default:
			return
		}
	}
}

// dispatch hands a completed batch to a flusher goroutine so collection of
// the next batch continues immediately (predictor reads are lock-free, so
// overlapping flushes are safe and scale across cores). done receives one
// token when the flush retires, driving the single-flight pacing.
func (s *Server) dispatch(batch []*request, done chan<- struct{}) {
	s.flushes.Add(1)
	s.inFlight.Add(1)
	go func() {
		defer s.flushes.Done()
		s.flush(batch)
		s.inFlight.Add(-1)
		select {
		case done <- struct{}{}:
		default:
			// Buffer full can only happen long after the collector stopped
			// consuming (shutdown); dropping the token is then harmless.
		}
	}()
}

// flush partitions a batch into the estimate span and per-eps bound spans,
// issues one batched predictor call per span, and fans results back out.
func (s *Server) flush(batch []*request) {
	// Record against the snapshot version current at flush start, before
	// any reply is delivered: a client that has its answer can rely on the
	// batch being visible in Metrics.
	version := s.be.Info().Version
	s.metrics.recordBatch(version, len(batch))

	// Partition in place: estimates first, then bounds grouped by eps.
	// Batches are small (≤MaxBatch) and eps values few, so a simple
	// stable two-phase walk beats building maps.
	var estimates []*request
	var bounds []*request
	for _, r := range batch {
		if r.eps < 0 {
			estimates = append(estimates, r)
		} else {
			bounds = append(bounds, r)
		}
	}

	if len(estimates) > 0 {
		qs := make([]pitot.Query, len(estimates))
		for i, r := range estimates {
			qs[i] = r.q
		}
		out := s.be.EstimateBatch(qs)
		for i, r := range estimates {
			r.reply <- reply{seconds: out[i]}
		}
	}

	for len(bounds) > 0 {
		// The pivot joins its group by position, not by comparison, so the
		// loop shrinks every iteration even for pathological eps values
		// (NaN != NaN) that slip past validation.
		eps := bounds[0].eps
		group := []*request{bounds[0]}
		var rest []*request
		for _, r := range bounds[1:] {
			if r.eps == eps {
				group = append(group, r)
			} else {
				rest = append(rest, r)
			}
		}
		qs := make([]pitot.Query, len(group))
		for i, r := range group {
			qs[i] = r.q
		}
		out, err := s.be.BoundBatch(qs, eps)
		for i, r := range group {
			if err != nil {
				r.reply <- reply{err: err}
			} else {
				r.reply <- reply{seconds: out[i]}
			}
		}
		bounds = rest
	}
}
