package serve

import (
	"errors"
	"fmt"
	"math"
	"time"

	pitot "repro"
	"repro/internal/obs"
	"repro/internal/sched"
)

// PlacementConfig enables the /place orchestration surface: the daemon
// holds a live sched.Scheduler over the serving predictor and serves
// placement decisions against the current model snapshot.
type PlacementConfig struct {
	// Platforms in the cluster; 0 uses the predictor's platform count.
	Platforms int
	// MaxColocation caps workloads per platform (default 4).
	MaxColocation int
	// MaxInFlight bounds admission; 0 = platform capacity only.
	MaxInFlight int
	// Policy is "bound" (default), "mean", "padded", or the mixed-head
	// "mean-bound" / "padded-bound" (rank on (padded) mean, feasibility on
	// the conformal bound, scored in one fused pass).
	Policy string
	// Eps is the bound policy's per-job miss budget (default 0.1).
	Eps float64
	// PadFactor is the padded policy's safety factor (default 1.3).
	PadFactor float64
	// Strategy is "least-loaded" (default), "best-fit", or "utilization".
	Strategy string
	// WaveChunk bounds jobs placed per scheduler-lock hold (see
	// sched.Config.WaveChunk); 0 = default.
	WaveChunk int
	// Window accumulates concurrent single-job PlaceJobs calls for up to
	// this long and places them as one wave — like the prediction
	// micro-batcher, it converts lock-serialized single placements into
	// wave-scored ones (the platform interference fold is shared across
	// the fused wave). 0 disables fusion: every call places directly. A
	// lone call never waits: with nothing in flight it places inline.
	Window time.Duration
	// MaxWave caps a fused wave (default 64).
	MaxWave int
	// DegradedPenalty multiplies the feasibility score on Degraded
	// platforms (see sched.Config.DegradedPenalty); 0 = default (1.25).
	DegradedPenalty float64
	// Breaker tunes the per-platform circuit breaker fed by /complete
	// outcome reports; the zero value disables automatic trips.
	Breaker sched.BreakerConfig
	// Replicas runs N scheduler replicas over one shared snapshot-isolated
	// slot store instead of a single mutex-serialized scheduler: /place
	// requests round-robin across replicas, which commit optimistically and
	// retry on conflict. 0 or 1 keeps the plain scheduler.
	Replicas int
	// Shards partitions platforms across replicas (see
	// sched.ReplicaConfig.Shards). The serving default (0) is one shared
	// pool — every HTTP client's job must be placeable on any platform no
	// matter which replica handles it; set >1 only when callers accept
	// shard-local placement.
	Shards int
	// TraceDepth sizes the flight-recorder ring behind /debug/trace
	// (retained lifecycle events, overwrite-oldest). 0 uses
	// obs.DefaultTraceDepth; a negative depth disables the recorder
	// entirely (the scheduler's record sites reduce to one nil check).
	// The pitot_place_* latency histograms are always attached — they are
	// lock-free atomics with no retention to size.
	TraceDepth int
	// ScoreCache enables the memoized wave-scoring path (intra-wave
	// workload dedup plus the version-keyed cross-wave score cache; see
	// sched.Config.ScoreCache). Decisions are bitwise identical to the
	// uncached path; off by default.
	ScoreCache bool
	// ScoreCacheCap bounds total cached score entries across all
	// platforms; 0 = sched's default (4096).
	ScoreCacheCap int
}

// Placer is the placement engine behind /place — either a
// *sched.Scheduler (Replicas <= 1) or a *sched.ReplicaSet. Both make
// identical decisions for a serial request stream; the replica set adds
// optimistic concurrency for parallel frontends.
type Placer interface {
	Place(job sched.Job) sched.Assignment
	PlaceAll(jobs []sched.Job) []sched.Assignment
	Complete(id sched.JobID) error
	CompleteOutcome(id sched.JobID, miss bool) (bool, error)
	Fail(p int) ([]sched.Orphan, error)
	Degrade(p int) error
	Recover(p int) error
	Health(p int) sched.HealthState
	HealthSnapshot() []sched.HealthState
	FailureStats() sched.FailureStats
	InFlight() int
	Batched() bool
	Fused() bool
}

// conflictReporter is the optional replica-mode stats surface of a Placer;
// *sched.ReplicaSet implements it.
type conflictReporter interface {
	ConflictStats() sched.ConflictStats
	NumReplicas() int
}

// scoreCacheReporter is the optional score-cache stats surface of a
// Placer; both *sched.Scheduler and *sched.ReplicaSet implement it (the
// second return reports whether the cache is enabled).
type scoreCacheReporter interface {
	ScoreCacheStats() (sched.ScoreCacheStats, bool)
}

// placeReq is one queued single-job placement awaiting wave fusion.
type placeReq struct {
	job   sched.Job
	reply chan placeReply
}

type placeReply struct {
	a   sched.Assignment
	err error
}

// backendPredictor adapts the serving Backend to sched.BatchPredictor:
// placement scoring goes straight to the vectorized batch calls (already a
// batch — micro-batching single calls would only add hand-offs), with
// errors mapped to +Inf per the scheduler's infeasibility convention. When
// the backend exposes the fused two-head pass (ScorerBackend; the Pitot
// facade does), the adapter forwards it so mixed mean/bound policies score
// whole waves in one pass.
type backendPredictor struct{ be Backend }

// ScorerBackend is the optional fused two-head surface of a Backend.
// *pitot.Predictor implements it.
type ScorerBackend interface {
	ScoreSecondsBatch(qs []pitot.Query, eps float64, meanOut, boundOut []float64)
}

// Version reports the backend's published snapshot version; the scheduler
// stamps it onto flight-recorder events so a trace can be correlated with
// the model snapshot that scored each decision.
func (b backendPredictor) Version() uint64 { return b.be.Info().Version }

// ScoreEpoch is the score-cache invalidation key: the snapshot version
// folded with the fast-scoring mode bit, mirroring pitot's own ScoreEpoch
// (SetFastScoring republishes under the same version but a different
// kernel, so version alone is not a safe score key). Both facets come from
// one Info() snapshot read, so the pair is consistent.
func (b backendPredictor) ScoreEpoch() uint64 {
	info := b.be.Info()
	e := info.Version << 1
	if info.FastScoring {
		e |= 1
	}
	return e
}

func (b backendPredictor) EstimateSeconds(w, pl int, interferers []int) float64 {
	return b.be.Estimate(w, pl, interferers)
}

func (b backendPredictor) BoundSeconds(w, pl int, interferers []int, eps float64) float64 {
	v, err := b.be.Bound(w, pl, interferers, eps)
	if err != nil {
		return math.Inf(1)
	}
	return v
}

func (b backendPredictor) EstimateSecondsBatch(qs []pitot.Query) []float64 {
	return b.be.EstimateBatch(qs)
}

func (b backendPredictor) BoundSecondsBatch(qs []pitot.Query, eps float64) []float64 {
	out, err := b.be.BoundBatch(qs, eps)
	if err != nil {
		out = make([]float64, len(qs))
		for i := range out {
			out[i] = math.Inf(1)
		}
	}
	return out
}

// fusedBackendPredictor additionally satisfies sched.FusedPredictor; it is
// used when the backend implements ScorerBackend.
type fusedBackendPredictor struct {
	backendPredictor
	sb ScorerBackend
}

func (b fusedBackendPredictor) ScoreSecondsBatch(qs []pitot.Query, eps float64, meanOut, boundOut []float64) {
	b.sb.ScoreSecondsBatch(qs, eps, meanOut, boundOut)
}

// EnablePlacement constructs the placement engine. Must be called before
// the handler serves /place; not safe to call concurrently with requests.
func (s *Server) EnablePlacement(pc PlacementConfig) error {
	if pc.Platforms == 0 {
		pc.Platforms = s.be.Info().Platforms
	}
	if pc.Policy == "" {
		pc.Policy = "bound"
	}
	if pc.Eps == 0 {
		pc.Eps = 0.1
	}
	needsBounds := pc.Policy == "bound" || pc.Policy == "mean-bound" || pc.Policy == "padded-bound"
	if needsBounds && !s.be.Info().Bounds {
		return fmt.Errorf("serve: %s placement policy needs a quantile model (train with bounds)", pc.Policy)
	}
	pol, err := sched.ParsePolicy(pc.Policy, pc.Eps, pc.PadFactor)
	if err != nil {
		return err
	}
	strat, err := sched.ParseStrategy(pc.Strategy)
	if err != nil {
		return err
	}
	var pred sched.Predictor = backendPredictor{s.be}
	if sb, ok := s.be.(ScorerBackend); ok {
		pred = fusedBackendPredictor{backendPredictor{s.be}, sb}
	}
	// Observability: the placement-stack histograms are always attached
	// (atomic counters, no retention); the flight recorder is sized by
	// TraceDepth and skipped entirely when it is negative.
	s.schedMetrics = obs.NewSchedMetrics("pitot_place_")
	if pc.TraceDepth >= 0 {
		s.recorder = obs.NewRecorder(pc.TraceDepth)
	}
	cfg := sched.Config{
		NumPlatforms:    pc.Platforms,
		MaxColocation:   pc.MaxColocation,
		MaxInFlight:     pc.MaxInFlight,
		Strategy:        strat,
		WaveChunk:       pc.WaveChunk,
		DegradedPenalty: pc.DegradedPenalty,
		Breaker:         pc.Breaker,
		Metrics:         s.schedMetrics,
		Recorder:        s.recorder,
		ScoreCache:      pc.ScoreCache,
		ScoreCacheCap:   pc.ScoreCacheCap,
	}
	if pc.Replicas > 1 {
		shards := pc.Shards
		if shards == 0 {
			shards = 1 // shared pool: any replica can place anywhere
		}
		rs, err := sched.NewReplicaSet(cfg, sched.ReplicaConfig{
			Replicas: pc.Replicas,
			Shards:   shards,
		}, pol, pred)
		if err != nil {
			return err
		}
		s.placer = rs
	} else {
		placer, err := sched.New(cfg, pol, pred)
		if err != nil {
			return err
		}
		s.placer = placer
	}
	s.placementPolicy = pol.Name()
	s.placementStrategy = strat.Name()
	if pc.Window > 0 {
		maxWave := pc.MaxWave
		if maxWave <= 0 {
			maxWave = 64
		}
		s.placeQueue = make(chan *placeReq, 4*maxWave)
		s.placeDone = make(chan struct{})
		go s.collectPlacements(pc.Window, maxWave)
	}
	return nil
}

// Placer returns the placement engine, nil unless EnablePlacement ran.
func (s *Server) Placer() Placer { return s.placer }

// PlaceJobs places a wave of jobs through the placement engine, updating
// the serving metrics. Multi-job calls are already waves and place
// directly; a single-job call joins the accumulation window (when
// configured) so concurrent callers fuse into one scheduler wave, unless
// the pipeline is idle — then it places inline with zero added latency.
func (s *Server) PlaceJobs(jobs []sched.Job) ([]sched.Assignment, error) {
	if s.placer == nil {
		return nil, ErrPlacementDisabled
	}
	if len(jobs) != 1 || s.placeQueue == nil {
		return s.placeDirect(jobs), nil
	}
	// Inline fast path: nothing queued, nothing accumulating in the
	// collector, and no wave in flight — fusing has nothing to fuse with,
	// so place on the caller's goroutine. placePending matters: without
	// it, a request waiting out an open window (already moved into the
	// collector's private batch) would be invisible here, and later
	// arrivals would jump ahead inline instead of joining its wave.
	if len(s.placeQueue) == 0 && s.placeInFlight.Load() == 0 && s.placePending.Load() == 0 {
		s.metrics.placeInline.Add(1)
		return s.placeDirect(jobs), nil
	}
	r := &placeReq{job: jobs[0], reply: make(chan placeReply, 1)}
	s.placePending.Add(1)
	select {
	case s.placeQueue <- r:
	case <-s.closing:
		s.placePending.Add(-1)
		return nil, ErrClosed
	default:
		// Queue full: shed to the direct path rather than rejecting — the
		// scheduler's own admission control is the intended backpressure.
		// Counted separately: shed placements bypass the wave accounting
		// (placeWaves/placeWaveJobs), so without this the busiest traffic
		// would vanish from the /place fusion metrics.
		s.metrics.placeShed.Add(1)
		s.placePending.Add(-1)
		return s.placeDirect(jobs), nil
	}
	select {
	case rep := <-r.reply:
		if rep.err != nil {
			return nil, rep.err
		}
		return []sched.Assignment{rep.a}, nil
	case <-s.placeDone:
		// Close raced our enqueue; prefer a reply if the final wave
		// carried it.
		select {
		case rep := <-r.reply:
			if rep.err != nil {
				return nil, rep.err
			}
			return []sched.Assignment{rep.a}, nil
		default:
			return nil, ErrClosed
		}
	}
}

// placeDirect runs one wave on the caller's goroutine.
func (s *Server) placeDirect(jobs []sched.Job) []sched.Assignment {
	s.placeInFlight.Add(1)
	as := s.placer.PlaceAll(jobs)
	s.placeInFlight.Add(-1)
	s.recordAssignments(as)
	return as
}

// collectPlacements is the /place accumulation loop: the first queued job
// opens a window; everything arriving within it (capped at maxWave) is
// placed as one wave and fanned back out.
func (s *Server) collectPlacements(window time.Duration, maxWave int) {
	defer close(s.placeDone)
	var batch []*placeReq
	timer := time.NewTimer(window)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	stopTimer := func() {
		if timerLive && !timer.Stop() {
			<-timer.C
		}
		timerLive = false
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// Hand the batch's pending count over to the in-flight count
		// before clearing it, so there is no window where the inline fast
		// path sees neither.
		s.placeInFlight.Add(1)
		s.placePending.Add(int64(-len(batch)))
		jobs := make([]sched.Job, len(batch))
		for i, r := range batch {
			jobs[i] = r.job
		}
		as := s.placer.PlaceAll(jobs)
		s.recordAssignments(as)
		s.metrics.placeWaves.Add(1)
		s.metrics.placeWaveJobs.Add(int64(len(batch)))
		for i, r := range batch {
			r.reply <- placeReply{a: as[i]}
		}
		batch = batch[:0]
		s.placeInFlight.Add(-1)
	}
	for {
		select {
		case r := <-s.placeQueue:
			batch = append(batch, r)
			if len(batch) >= maxWave {
				stopTimer()
				flush()
				continue
			}
			if !timerLive {
				timer.Reset(window)
				timerLive = true
			}
		case <-timer.C:
			timerLive = false
			flush()
		case <-s.closing:
			stopTimer()
			// Final wave for everything accumulated, then fail what is
			// still queued.
			for {
				select {
				case r := <-s.placeQueue:
					batch = append(batch, r)
				default:
					flush()
					return
				}
			}
		}
	}
}

// recordAssignments updates the placement lifecycle counters for one wave.
func (s *Server) recordAssignments(as []sched.Assignment) {
	for _, a := range as {
		switch {
		case a.Rejected:
			s.metrics.placeRejected.Add(1)
		case !a.Placed():
			s.metrics.placeUnplaced.Add(1)
			if a.Reason == sched.ReasonNoHealthy {
				s.metrics.placeNoHealthy.Add(1)
			}
		default:
			s.metrics.placed.Add(1)
		}
	}
}

// CompleteJobs retires placed jobs, freeing their colocation slots and —
// when missed is non-nil (same length as ids) — feeding each execution's
// deadline outcome to the platform circuit breaker. IDs the scheduler
// never issued come back in unknown; IDs already retired (double
// completions, or jobs orphaned by a platform failure) come back in
// stale. Valid IDs complete even when the same request carries bad ones.
func (s *Server) CompleteJobs(ids []sched.JobID, missed []bool) (completed int, unknown, stale []sched.JobID, err error) {
	if s.placer == nil {
		return 0, nil, nil, ErrPlacementDisabled
	}
	for i, id := range ids {
		miss := missed != nil && missed[i]
		_, cerr := s.placer.CompleteOutcome(id, miss)
		switch {
		case cerr == nil:
			completed++
			s.metrics.completed.Add(1)
		case errors.Is(cerr, sched.ErrJobCompleted):
			stale = append(stale, id)
			s.metrics.completeStale.Add(1)
		default:
			unknown = append(unknown, id)
			s.metrics.completeUnknown.Add(1)
		}
	}
	return completed, unknown, stale, nil
}

// FailPlatform marks a platform Down, orphans its resident jobs, and
// immediately re-places the orphans on the surviving platforms as one
// high-priority wave. The returned assignments (one per orphan, in
// eviction order) report where each orphan landed — or why it could not
// be re-placed; unplaced orphans are shed, not retried.
func (s *Server) FailPlatform(p int) ([]sched.Assignment, error) {
	if s.placer == nil {
		return nil, ErrPlacementDisabled
	}
	orphans, err := s.placer.Fail(p)
	if err != nil {
		return nil, err
	}
	s.metrics.failEvents.Add(1)
	if len(orphans) == 0 {
		return nil, nil
	}
	s.metrics.orphaned.Add(int64(len(orphans)))
	jobs := make([]sched.Job, len(orphans))
	for i, o := range orphans {
		jobs[i] = o.Job
	}
	as := s.placeDirect(jobs)
	for _, a := range as {
		if a.Placed() {
			s.metrics.orphanReplaced.Add(1)
		} else {
			s.metrics.orphanLost.Add(1)
		}
	}
	return as, nil
}

// DegradePlatform marks a platform Degraded (placements pay the penalty).
func (s *Server) DegradePlatform(p int) error {
	if s.placer == nil {
		return ErrPlacementDisabled
	}
	if err := s.placer.Degrade(p); err != nil {
		return err
	}
	s.metrics.degradeEvents.Add(1)
	return nil
}

// RecoverPlatform advances a platform toward Healthy (half-open from
// Down/Quarantined, closed from Degraded).
func (s *Server) RecoverPlatform(p int) error {
	if s.placer == nil {
		return ErrPlacementDisabled
	}
	if err := s.placer.Recover(p); err != nil {
		return err
	}
	s.metrics.recoverEvents.Add(1)
	return nil
}

// PlatformHealth returns every platform's health state, nil when
// placement is disabled.
func (s *Server) PlatformHealth() []sched.HealthState {
	if s.placer == nil {
		return nil
	}
	return s.placer.HealthSnapshot()
}
