package serve

import (
	"fmt"
	"math"

	pitot "repro"
	"repro/internal/sched"
)

// PlacementConfig enables the /place orchestration surface: the daemon
// holds a live sched.Scheduler over the serving predictor and serves
// placement decisions against the current model snapshot.
type PlacementConfig struct {
	// Platforms in the cluster; 0 uses the predictor's platform count.
	Platforms int
	// MaxColocation caps workloads per platform (default 4).
	MaxColocation int
	// MaxInFlight bounds admission; 0 = platform capacity only.
	MaxInFlight int
	// Policy is "bound" (default), "mean", or "padded".
	Policy string
	// Eps is the bound policy's per-job miss budget (default 0.1).
	Eps float64
	// PadFactor is the padded policy's safety factor (default 1.3).
	PadFactor float64
	// Strategy is "least-loaded" (default), "best-fit", or "utilization".
	Strategy string
}

// backendPredictor adapts the serving Backend to sched.BatchPredictor:
// placement scoring goes straight to the vectorized batch calls (already a
// batch — micro-batching single calls would only add hand-offs), with
// errors mapped to +Inf per the scheduler's infeasibility convention.
type backendPredictor struct{ be Backend }

func (b backendPredictor) EstimateSeconds(w, pl int, interferers []int) float64 {
	return b.be.Estimate(w, pl, interferers)
}

func (b backendPredictor) BoundSeconds(w, pl int, interferers []int, eps float64) float64 {
	v, err := b.be.Bound(w, pl, interferers, eps)
	if err != nil {
		return math.Inf(1)
	}
	return v
}

func (b backendPredictor) EstimateSecondsBatch(qs []pitot.Query) []float64 {
	return b.be.EstimateBatch(qs)
}

func (b backendPredictor) BoundSecondsBatch(qs []pitot.Query, eps float64) []float64 {
	out, err := b.be.BoundBatch(qs, eps)
	if err != nil {
		out = make([]float64, len(qs))
		for i := range out {
			out[i] = math.Inf(1)
		}
	}
	return out
}

// EnablePlacement constructs the placement engine. Must be called before
// the handler serves /place; not safe to call concurrently with requests.
func (s *Server) EnablePlacement(pc PlacementConfig) error {
	if pc.Platforms == 0 {
		pc.Platforms = s.be.Info().Platforms
	}
	if pc.Policy == "" {
		pc.Policy = "bound"
	}
	if pc.Eps == 0 {
		pc.Eps = 0.1
	}
	if pc.Policy == "bound" && !s.be.Info().Bounds {
		return fmt.Errorf("serve: bound placement policy needs a quantile model (train with bounds)")
	}
	pol, err := sched.ParsePolicy(pc.Policy, pc.Eps, pc.PadFactor)
	if err != nil {
		return err
	}
	strat, err := sched.ParseStrategy(pc.Strategy)
	if err != nil {
		return err
	}
	placer, err := sched.New(sched.Config{
		NumPlatforms:  pc.Platforms,
		MaxColocation: pc.MaxColocation,
		MaxInFlight:   pc.MaxInFlight,
		Strategy:      strat,
	}, pol, backendPredictor{s.be})
	if err != nil {
		return err
	}
	s.placer = placer
	s.placementPolicy = pol.Name()
	s.placementStrategy = strat.Name()
	return nil
}

// Placer returns the placement engine, nil unless EnablePlacement ran.
func (s *Server) Placer() *sched.Scheduler { return s.placer }

// PlaceJobs places a wave of jobs through the placement engine, updating
// the serving metrics.
func (s *Server) PlaceJobs(jobs []sched.Job) ([]sched.Assignment, error) {
	if s.placer == nil {
		return nil, ErrPlacementDisabled
	}
	as := s.placer.PlaceAll(jobs)
	for _, a := range as {
		switch {
		case a.Rejected:
			s.metrics.placeRejected.Add(1)
		case !a.Placed():
			s.metrics.placeUnplaced.Add(1)
		default:
			s.metrics.placed.Add(1)
		}
	}
	return as, nil
}

// CompleteJobs retires placed jobs, freeing their colocation slots; the
// returned slice flags per-ID success.
func (s *Server) CompleteJobs(ids []sched.JobID) ([]bool, error) {
	if s.placer == nil {
		return nil, ErrPlacementDisabled
	}
	ok := make([]bool, len(ids))
	for i, id := range ids {
		if err := s.placer.Complete(id); err == nil {
			ok[i] = true
			s.metrics.completed.Add(1)
		} else {
			s.metrics.completeUnknown.Add(1)
		}
	}
	return ok, nil
}
