package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/sched"
)

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestDebugTraceEndpoints drives the flight-recorder HTTP surface end to
// end: place a wave, complete one job, fail a platform, and check that
// /debug/trace?job= reconstructs a single job's lifecycle while
// /debug/trace/recent returns the global tail.
func TestDebugTraceEndpoints(t *testing.T) {
	pred, ds := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{Policy: "bound", Eps: 0.1, MaxColocation: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var jobs []sched.Job
	for w := 0; w < 4; w++ {
		b, err := pred.Bound(w, w%ds.NumPlatforms(), nil, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, sched.Job{Workload: w, Deadline: b * 3})
	}
	as, err := s.PlaceJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var placed []sched.Assignment
	for _, a := range as {
		if a.Placed() {
			placed = append(placed, a)
		}
	}
	if len(placed) == 0 {
		t.Fatal("nothing placed")
	}
	if _, _, _, err := s.CompleteJobs([]sched.JobID{placed[0].ID}, nil); err != nil {
		t.Fatal(err)
	}

	var tr TraceResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/trace?job="+strconv.FormatUint(uint64(placed[0].ID), 10), &tr); code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", code)
	}
	kinds := map[string]int{}
	for _, e := range tr.Events {
		if e.Job != uint64(placed[0].ID) {
			t.Fatalf("foreign event in job trace: %+v", e)
		}
		kinds[e.Kind]++
	}
	if kinds["place"] != 1 || kinds["complete"] != 1 {
		t.Fatalf("job trace missing place/complete: %v", kinds)
	}

	var recent TraceResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/trace/recent", &recent); code != http.StatusOK {
		t.Fatalf("/debug/trace/recent: status %d", code)
	}
	if len(recent.Events) == 0 || recent.Total == 0 {
		t.Fatalf("recent trace empty: %+v", recent)
	}
	for i := 1; i < len(recent.Events); i++ {
		if recent.Events[i].Seq <= recent.Events[i-1].Seq {
			t.Fatalf("recent events out of order at %d", i)
		}
	}

	// Parameter validation.
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/trace", nil); code != http.StatusBadRequest {
		t.Fatalf("missing job param: status %d, want 400", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/trace?job=frog", nil); code != http.StatusBadRequest {
		t.Fatalf("bad job param: status %d, want 400", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/debug/trace/recent?n=0", nil); code != http.StatusBadRequest {
		t.Fatalf("bad n param: status %d, want 400", code)
	}
}

// TestDebugTraceDisabled pins the gating: without placement (or with a
// negative TraceDepth) the endpoints answer 503, not empty traces.
func TestDebugTraceDisabled(t *testing.T) {
	pred, _ := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	for _, path := range []string{"/debug/trace?job=1", "/debug/trace/recent"} {
		if code := getJSON(t, ts.Client(), ts.URL+path, nil); code != http.StatusServiceUnavailable {
			t.Fatalf("%s with recorder off: status %d, want 503", path, code)
		}
	}

	// TraceDepth < 0 disables the recorder but keeps placement (and its
	// histograms) fully functional.
	s2 := New(pred, Config{})
	defer s2.Close()
	if err := s2.EnablePlacement(PlacementConfig{Policy: "bound", Eps: 0.1, TraceDepth: -1}); err != nil {
		t.Fatal(err)
	}
	if s2.FlightRecorder() != nil {
		t.Fatal("recorder attached despite TraceDepth < 0")
	}
	if _, err := s2.PlaceJobs([]sched.Job{{Workload: 0, Deadline: 1e9}}); err != nil {
		t.Fatal(err)
	}
	if s2.schedMetrics.WavePlace.Count() == 0 {
		t.Fatal("placement histograms dead with recorder disabled")
	}
}
