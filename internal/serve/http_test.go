package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	pitot "repro"
)

// trained lazily fits one small bounds-enabled predictor shared by the
// end-to-end tests (training dominates the package's test time).
var trained struct {
	once sync.Once
	ds   *pitot.Dataset
	pred *pitot.Predictor
	err  error
}

func testPredictor(tb testing.TB) (*pitot.Predictor, *pitot.Dataset) {
	tb.Helper()
	trained.once.Do(func() {
		trained.ds = pitot.GenerateDataset(pitot.DatasetConfig{
			Seed: 11, NumWorkloads: 24, MaxDevices: 4, SetsPerDegree: 10,
		})
		cfg := pitot.DefaultModelConfig(1)
		cfg.Hidden = 32
		cfg.EmbeddingDim = 16
		cfg.Steps = 400
		cfg.BatchPerDegree = 128
		cfg.EvalEvery = 100
		trained.pred, trained.err = pitot.Train(trained.ds, pitot.Options{
			Seed: 1, Model: &cfg, EnableBounds: true,
		})
	})
	if trained.err != nil {
		tb.Fatal(trained.err)
	}
	return trained.pred, trained.ds
}

func postJSON(t *testing.T, client *http.Client, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	// Every endpoint answers JSON on every status (error replies are
	// {"error": ...}), so decode whenever the caller wants a payload —
	// partial-success replies like /complete's 409 carry real fields.
	if out != nil && raw.Len() > 0 {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decode %q: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

// TestHTTPEndpoints drives all four endpoints of the daemon end to end
// against a real trained predictor: micro-batched /estimate and /bound
// agree with the direct predictor, /observe publishes a new snapshot that
// subsequent predictions and /healthz reflect, and malformed requests are
// rejected with client errors.
func TestHTTPEndpoints(t *testing.T) {
	pred, ds := testPredictor(t)
	s := New(pred, Config{MaxBatch: 64, Window: 200 * time.Microsecond})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	client := ts.Client()

	// --- /estimate: concurrent singles must match the direct predictor.
	rng := rand.New(rand.NewSource(5))
	type q struct {
		req  EstimateRequest
		want float64
	}
	var qs []q
	for i := 0; i < 40; i++ {
		w := rng.Intn(ds.NumWorkloads())
		p := rng.Intn(ds.NumPlatforms())
		ks := []int{rng.Intn(ds.NumWorkloads()), rng.Intn(ds.NumWorkloads())}
		qs = append(qs, q{
			req:  EstimateRequest{Workload: w, Platform: p, Interferers: ks},
			want: pred.Estimate(w, p, ks),
		})
	}
	var wg sync.WaitGroup
	for _, qq := range qs {
		qq := qq
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got PredictionResponse
			status, raw := postJSON(t, client, ts.URL+"/estimate", qq.req, &got)
			if status != http.StatusOK {
				t.Errorf("/estimate status %d: %s", status, raw)
				return
			}
			if math.Abs(got.Seconds-qq.want) > 1e-9*qq.want {
				t.Errorf("/estimate %+v: %v, direct %v", qq.req, got.Seconds, qq.want)
			}
		}()
	}
	wg.Wait()

	// --- /bound agrees with the direct predictor at the same eps.
	wantBound, err := pred.Bound(1, 1, []int{2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var bound PredictionResponse
	status, raw := postJSON(t, client, ts.URL+"/bound",
		EstimateRequest{Workload: 1, Platform: 1, Interferers: []int{2}, Eps: 0.1}, &bound)
	if status != http.StatusOK {
		t.Fatalf("/bound status %d: %s", status, raw)
	}
	if math.Abs(bound.Seconds-wantBound) > 1e-9*wantBound {
		t.Fatalf("/bound %v, direct %v", bound.Seconds, wantBound)
	}

	// --- /bound at an eps the calibration set cannot support: +Inf is a
	// documented predictor outcome; the wire carries it as infeasible, not
	// as a 200 with an unencodable body.
	var inf PredictionResponse
	status, raw = postJSON(t, client, ts.URL+"/bound",
		EstimateRequest{Workload: 1, Platform: 1, Eps: 1e-6}, &inf)
	if status != http.StatusOK {
		t.Fatalf("/bound tiny eps status %d: %s", status, raw)
	}
	if !inf.Infeasible || inf.Seconds != 0 {
		t.Fatalf("/bound tiny eps response %+v, want infeasible", inf)
	}

	// --- /healthz before observe.
	var health HealthResponse
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.OK || health.Version != 0 || !health.Bounds ||
		health.Workloads != ds.NumWorkloads() || health.Platforms != ds.NumPlatforms() {
		t.Fatalf("healthz %+v", health)
	}
	if health.Metrics.Requests < int64(len(qs)) {
		t.Fatalf("healthz metrics %+v after %d requests", health.Metrics, len(qs))
	}

	// --- /observe publishes snapshot v1; estimates keep working.
	before := health.Observations
	var obsResp ObserveResponse
	obs := ObserveRequest{Observations: []pitot.Observation{
		{Workload: 0, Platform: 0, Seconds: pred.Estimate(0, 0, nil) * 2},
		{Workload: 1, Platform: 0, Seconds: pred.Estimate(1, 0, nil) * 2},
	}}
	status, raw = postJSON(t, client, ts.URL+"/observe", obs, &obsResp)
	if status != http.StatusOK {
		t.Fatalf("/observe status %d: %s", status, raw)
	}
	if obsResp.Accepted != 2 || obsResp.Version != 1 {
		t.Fatalf("/observe response %+v", obsResp)
	}
	var after PredictionResponse
	status, raw = postJSON(t, client, ts.URL+"/estimate", EstimateRequest{Workload: 0, Platform: 0}, &after)
	if status != http.StatusOK || !(after.Seconds > 0) {
		t.Fatalf("post-observe estimate status %d %s %+v", status, raw, after)
	}
	if after.Version != 1 {
		t.Fatalf("post-observe estimate version %d", after.Version)
	}
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = HealthResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Version != 1 || health.Observations != before+2 {
		t.Fatalf("healthz after observe %+v", health)
	}

	// --- error paths.
	for _, tc := range []struct {
		name   string
		url    string
		body   any
		status int
	}{
		{"estimate workload out of range", "/estimate", EstimateRequest{Workload: 10_000}, http.StatusBadRequest},
		{"estimate negative platform", "/estimate", EstimateRequest{Platform: -1}, http.StatusBadRequest},
		{"estimate interferer out of range", "/estimate", EstimateRequest{Interferers: []int{-3}}, http.StatusBadRequest},
		{"bound eps zero", "/bound", EstimateRequest{Workload: 1}, http.StatusBadRequest},
		{"bound eps one", "/bound", EstimateRequest{Workload: 1, Eps: 1}, http.StatusBadRequest},
		{"observe empty", "/observe", ObserveRequest{}, http.StatusBadRequest},
		{"observe invalid entity", "/observe", ObserveRequest{Observations: []pitot.Observation{{Workload: 9999, Platform: 0, Seconds: 1}}}, http.StatusBadRequest},
		{"observe non-positive runtime", "/observe", ObserveRequest{Observations: []pitot.Observation{{Workload: 0, Platform: 0, Seconds: -1}}}, http.StatusBadRequest},
	} {
		if status, raw := postJSON(t, client, ts.URL+tc.url, tc.body, nil); status != tc.status {
			t.Errorf("%s: status %d (want %d): %s", tc.name, status, tc.status, raw)
		}
	}
	// Malformed JSON body.
	resp, err = client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d", resp.StatusCode)
	}
	// Wrong methods.
	if resp, err = client.Get(ts.URL + "/estimate"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /estimate status %d", resp.StatusCode)
		}
	}
	if resp, err = client.Post(ts.URL+"/healthz", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /healthz status %d", resp.StatusCode)
		}
	}
}

// TestHTTPFlushOnTimeout exercises the micro-batch timeout path end to end
// over HTTP: with one flush held in flight (gated fake backend), a second
// request can only complete through the window-timer flush.
func TestHTTPFlushOnTimeout(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	s := New(be, Config{MaxBatch: 4096, Window: 2 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	client := ts.Client()

	blockerDone := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, client, ts.URL+"/estimate", EstimateRequest{Workload: 1}, nil)
		blockerDone <- status
	}()
	waitFor(t, "blocker flush to start", be.flushInFlight)

	var got PredictionResponse
	start := time.Now()
	status, raw := postJSON(t, client, ts.URL+"/estimate", EstimateRequest{Workload: 2, Platform: 1}, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout-flushed HTTP request took %v", elapsed)
	}
	want := be.estimate(pitot.Query{Workload: 2, Platform: 1})
	if math.Abs(got.Seconds-want) > 1e-12 {
		t.Fatalf("estimate %v, want %v", got.Seconds, want)
	}
	if m := s.Metrics(); m.TimeoutFlushes < 1 {
		t.Fatalf("metrics %+v — expected a timeout flush", m)
	}
	close(be.gate)
	if status := <-blockerDone; status != http.StatusOK {
		t.Fatalf("blocker request status %d", status)
	}
}

// A lone request through HTTP while the pipeline is idle is served without
// waiting for any batching window.
func TestHTTPLoneRequestLatency(t *testing.T) {
	pred, _ := testPredictor(t)
	s := New(pred, Config{MaxBatch: 4096, Window: time.Minute})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var got PredictionResponse
	start := time.Now()
	status, raw := postJSON(t, ts.Client(), ts.URL+"/estimate", EstimateRequest{Workload: 2, Platform: 1}, &got)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("lone HTTP request took %v with an idle pipeline", elapsed)
	}
	want := pred.Estimate(2, 1, nil)
	if math.Abs(got.Seconds-want) > 1e-9*want {
		t.Fatalf("estimate %v, direct %v", got.Seconds, want)
	}
	if m := s.Metrics(); m.InlineFlushes+m.IdleFlushes < 1 {
		t.Fatalf("metrics %+v — expected an inline or idle flush", m)
	}
}

// TestHTTPConcurrentObserveAndEstimate hammers /estimate while /observe
// retrains, end to end: every reply must be a valid prediction and the
// reported versions must be non-decreasing per client.
func TestHTTPConcurrentObserveAndEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains during serving")
	}
	pred, ds := testPredictor(t)
	s := New(pred, Config{MaxBatch: 64, Window: 200 * time.Microsecond})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	client := ts.Client()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var got PredictionResponse
				req := EstimateRequest{Workload: (r + i) % ds.NumWorkloads(), Platform: i % ds.NumPlatforms()}
				status, raw := postJSON(t, client, ts.URL+"/estimate", req, &got)
				if status != http.StatusOK {
					t.Errorf("status %d: %s", status, raw)
					return
				}
				if !(got.Seconds > 0) || got.Version < last {
					t.Errorf("reply %+v after version %d", got, last)
					return
				}
				last = got.Version
			}
		}(r)
	}
	base := pred.Version()
	obs := ObserveRequest{Observations: []pitot.Observation{
		{Workload: 3, Platform: 1, Seconds: pred.Estimate(3, 1, nil) * 1.5},
	}}
	var obsResp ObserveResponse
	status, raw := postJSON(t, client, ts.URL+"/observe", obs, &obsResp)
	close(stop)
	wg.Wait()
	if status != http.StatusOK {
		t.Fatalf("/observe status %d: %s", status, raw)
	}
	if obsResp.Version != base+1 {
		t.Fatalf("observe version %d, want %d", obsResp.Version, base+1)
	}
}
