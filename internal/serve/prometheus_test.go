package serve

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sched"
)

// parseExposition validates Prometheus text exposition format 0.0.4
// structure: every sample's metric name is declared by a # HELP and a
// # TYPE (HELP first) before its first sample, declarations are unique,
// and a metric's samples are contiguous — no samples after another
// metric's declarations begin. Returns the set of sampled metric names.
func parseExposition(t *testing.T, body string) map[string]int {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	samples := map[string]int{}
	current := "" // metric family whose sample block is open
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := fields[0], fields[1]
			if kind != "counter" && kind != "gauge" {
				t.Fatalf("line %d: unexpected type %q for %s", ln+1, kind, name)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE for %s precedes its HELP", ln+1, name)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typed[name] = kind
			current = name
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			// Sample: name{labels} value — strip the label set if present.
			nameEnd := strings.IndexAny(line, "{ ")
			if nameEnd < 0 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			name := line[:nameEnd]
			if !strings.HasPrefix(name, "pitot_") {
				t.Fatalf("line %d: metric %s outside the pitot_ namespace", ln+1, name)
			}
			if _, ok := typed[name]; !ok {
				t.Fatalf("line %d: sample for %s has no preceding # TYPE", ln+1, name)
			}
			if name != current {
				t.Fatalf("line %d: sample for %s outside its contiguous block (current family %s)", ln+1, name, current)
			}
			valStart := strings.LastIndexByte(line, ' ')
			if _, err := strconv.ParseFloat(line[valStart+1:], 64); err != nil {
				t.Fatalf("line %d: unparseable value in %q: %v", ln+1, line, err)
			}
			samples[name]++
		}
	}
	// A declared family with zero samples is legal (per-version series
	// before any traffic), so only structural violations fail above.
	return samples
}

// TestPrometheusExpositionWellFormed audits the full /metrics surface with
// every gated series enabled: replicated placement (conflict counters +
// replica gauge), lifecycle counters, breaker counters, and per-platform
// gauges must all carry # HELP and # TYPE and parse as exposition format.
func TestPrometheusExpositionWellFormed(t *testing.T) {
	pred, ds := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "bound", Eps: 0.1, MaxColocation: 2, Replicas: 2,
	}); err != nil {
		t.Fatal(err)
	}

	// Exercise the gated paths so counters are live, not just declared:
	// place a wave, complete part of it, fail and recover a platform.
	var jobs []sched.Job
	for w := 0; w < 4; w++ {
		b, err := pred.Bound(w, w%ds.NumPlatforms(), nil, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, sched.Job{Workload: w, Deadline: b * 3})
	}
	as, err := s.PlaceJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) > 0 && as[0].Placed() {
		if _, _, _, err := s.CompleteJobs([]sched.JobID{as[0].ID}, []bool{false}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.FailPlatform(0); err != nil {
		t.Fatal(err)
	}
	if err := s.RecoverPlatform(0); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())

	for _, want := range []string{
		"pitot_requests_total",
		"pitot_placed_total",
		"pitot_completed_total",
		"pitot_fail_events_total",
		"pitot_breaker_trips_total",
		"pitot_place_reserve_attempts_total",
		"pitot_place_conflicts_total",
		"pitot_place_conflict_shed_total",
		"pitot_place_rebalances_total",
		"pitot_place_replicas",
		"pitot_place_in_flight",
		"pitot_platform_health",
		"pitot_platform_calibration_lag",
		"pitot_snapshot_version",
	} {
		if samples[want] == 0 {
			t.Errorf("series %s missing from exposition", want)
		}
	}
	if samples["pitot_platform_health"] != ds.NumPlatforms() {
		t.Errorf("pitot_platform_health has %d samples, want one per platform (%d)",
			samples["pitot_platform_health"], ds.NumPlatforms())
	}
}

// TestPrometheusExpositionWithoutPlacement pins the ungated surface: with
// placement disabled no pitot_place*/pitot_platform_health series leak,
// and the format still parses.
func TestPrometheusExpositionWithoutPlacement(t *testing.T) {
	pred, _ := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	for name := range samples {
		if strings.HasPrefix(name, "pitot_place") || name == "pitot_platform_health" {
			t.Errorf("placement-gated series %s leaked with placement disabled", name)
		}
	}
	if samples["pitot_requests_total"] == 0 {
		t.Error("pitot_requests_total missing")
	}
}
