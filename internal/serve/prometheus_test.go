package serve

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sched"
)

// histState tracks per-histogram-family invariants while the parser walks
// the family's sample block.
type histState struct {
	lastLe    float64 // last bucket upper bound seen (must ascend)
	lastCum   float64 // last cumulative bucket value seen (must be monotone)
	infCum    float64 // the +Inf bucket's value
	infSeen   bool
	sumSeen   bool
	count     float64
	countSeen bool
}

// parseExposition validates Prometheus text exposition format 0.0.4
// structure: every sample's metric name is declared by a # HELP and a
// # TYPE (HELP first) before its first sample, declarations are unique,
// and a metric's samples are contiguous — no samples after another
// metric's declarations begin. Histogram families additionally must emit
// strictly ascending le bounds with monotone non-decreasing cumulative
// counts, a +Inf bucket, and _sum/_count samples with +Inf == _count.
// Returns sample counts keyed by family name (histogram _bucket/_sum/
// _count samples all count toward their family).
func parseExposition(t *testing.T, body string) map[string]int {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	samples := map[string]int{}
	hists := map[string]*histState{}
	current := "" // metric family whose sample block is open
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := fields[0], fields[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unexpected type %q for %s", ln+1, kind, name)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE for %s precedes its HELP", ln+1, name)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typed[name] = kind
			if kind == "histogram" {
				hists[name] = &histState{lastLe: math.Inf(-1)}
			}
			current = name
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			// Sample: name{labels} value — strip the label set if present.
			nameEnd := strings.IndexAny(line, "{ ")
			if nameEnd < 0 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			name := line[:nameEnd]
			if !strings.HasPrefix(name, "pitot_") {
				t.Fatalf("line %d: metric %s outside the pitot_ namespace", ln+1, name)
			}
			// Histogram samples carry the family's name plus a _bucket,
			// _sum, or _count suffix; resolve them to their family.
			family := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suf)
				if base != name && typed[base] == "histogram" {
					family = base
					break
				}
			}
			kind, ok := typed[family]
			if !ok {
				t.Fatalf("line %d: sample for %s has no preceding # TYPE", ln+1, name)
			}
			if kind == "histogram" && family == name {
				t.Fatalf("line %d: bare sample %s inside histogram family", ln+1, name)
			}
			if family != current {
				t.Fatalf("line %d: sample for %s outside its contiguous block (current family %s)", ln+1, name, current)
			}
			valStart := strings.LastIndexByte(line, ' ')
			val, err := strconv.ParseFloat(line[valStart+1:], 64)
			if err != nil {
				t.Fatalf("line %d: unparseable value in %q: %v", ln+1, line, err)
			}
			if st := hists[family]; st != nil {
				switch {
				case strings.HasSuffix(name, "_bucket"):
					leStart := strings.Index(line, `le="`)
					if leStart < 0 {
						t.Fatalf("line %d: histogram bucket without le label: %q", ln+1, line)
					}
					leStr := line[leStart+len(`le="`):]
					leEnd := strings.IndexByte(leStr, '"')
					if leEnd < 0 {
						t.Fatalf("line %d: unterminated le label: %q", ln+1, line)
					}
					le, err := strconv.ParseFloat(leStr[:leEnd], 64)
					if err != nil {
						t.Fatalf("line %d: unparseable le %q: %v", ln+1, leStr[:leEnd], err)
					}
					if le <= st.lastLe {
						t.Fatalf("line %d: bucket bounds not ascending (%g after %g)", ln+1, le, st.lastLe)
					}
					if val < st.lastCum {
						t.Fatalf("line %d: cumulative bucket counts decreased (%g after %g)", ln+1, val, st.lastCum)
					}
					st.lastLe, st.lastCum = le, val
					if math.IsInf(le, 1) {
						st.infSeen, st.infCum = true, val
					}
				case strings.HasSuffix(name, "_sum"):
					st.sumSeen = true
				case strings.HasSuffix(name, "_count"):
					st.countSeen, st.count = true, val
				}
			}
			samples[family]++
		}
	}
	for name, st := range hists {
		if samples[name] == 0 {
			continue // declared but sample-less family (legal)
		}
		if !st.infSeen {
			t.Errorf("histogram %s has no +Inf bucket", name)
		}
		if !st.sumSeen || !st.countSeen {
			t.Errorf("histogram %s missing _sum/_count (sum=%v count=%v)", name, st.sumSeen, st.countSeen)
		}
		if st.infSeen && st.countSeen && st.infCum != st.count {
			t.Errorf("histogram %s: +Inf bucket %g != _count %g", name, st.infCum, st.count)
		}
	}
	// A declared family with zero samples is legal (per-version series
	// before any traffic), so only structural violations fail above.
	return samples
}

// TestPrometheusExpositionWellFormed audits the full /metrics surface with
// every gated series enabled: replicated placement (conflict counters +
// replica gauge), lifecycle counters, breaker counters, and per-platform
// gauges must all carry # HELP and # TYPE and parse as exposition format.
func TestPrometheusExpositionWellFormed(t *testing.T) {
	pred, ds := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "bound", Eps: 0.1, MaxColocation: 2, Replicas: 2,
		ScoreCache: true,
	}); err != nil {
		t.Fatal(err)
	}

	// Exercise the gated paths so counters are live, not just declared:
	// place a wave, complete part of it, fail and recover a platform.
	var jobs []sched.Job
	for w := 0; w < 4; w++ {
		b, err := pred.Bound(w, w%ds.NumPlatforms(), nil, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, sched.Job{Workload: w, Deadline: b * 3})
	}
	as, err := s.PlaceJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) > 0 && as[0].Placed() {
		if _, _, _, err := s.CompleteJobs([]sched.JobID{as[0].ID}, []bool{false}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.FailPlatform(0); err != nil {
		t.Fatal(err)
	}
	if err := s.RecoverPlatform(0); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())

	for _, want := range []string{
		"pitot_requests_total",
		"pitot_placed_total",
		"pitot_completed_total",
		"pitot_fail_events_total",
		"pitot_breaker_trips_total",
		"pitot_place_reserve_attempts_total",
		"pitot_place_conflicts_total",
		"pitot_place_conflict_shed_total",
		"pitot_place_rebalances_total",
		"pitot_place_replicas",
		"pitot_place_in_flight",
		// Score-cache counters + entries gauge (PR 10), gated on
		// PlacementConfig.ScoreCache.
		"pitot_place_score_cache_hits_total",
		"pitot_place_score_cache_misses_total",
		"pitot_place_score_cache_evictions_total",
		"pitot_place_score_cache_invalidations_total",
		"pitot_place_score_cache_entries",
		"pitot_platform_health",
		"pitot_platform_calibration_lag",
		"pitot_snapshot_version",
		"pitot_uptime_seconds",
		"pitot_build_info",
		// Latency/size histogram families (PR 9): the placement stack...
		"pitot_place_score_batch_seconds",
		"pitot_place_wave_seconds",
		"pitot_place_chunk_hold_seconds",
		"pitot_place_wave_jobs",
		"pitot_place_score_cache_lookup_seconds",
		// ...and the ungated end-to-end request surface.
		"pitot_http_estimate_seconds",
		"pitot_http_bound_seconds",
		"pitot_http_place_seconds",
		"pitot_observe_flush_seconds",
	} {
		if samples[want] == 0 {
			t.Errorf("series %s missing from exposition", want)
		}
	}
	if samples["pitot_platform_health"] != ds.NumPlatforms() {
		t.Errorf("pitot_platform_health has %d samples, want one per platform (%d)",
			samples["pitot_platform_health"], ds.NumPlatforms())
	}
	// The wave actually placed through the instrumented path, so the
	// placement histograms must hold live observations, not just a ladder.
	if s.schedMetrics.WavePlace.Count() == 0 || s.schedMetrics.WaveSize.Count() == 0 {
		t.Errorf("placement wave histograms empty after PlaceJobs (wave=%d size=%d)",
			s.schedMetrics.WavePlace.Count(), s.schedMetrics.WaveSize.Count())
	}
}

// TestPrometheusExpositionWithoutPlacement pins the ungated surface: with
// placement disabled no pitot_place*/pitot_platform_health series leak,
// and the format still parses.
func TestPrometheusExpositionWithoutPlacement(t *testing.T) {
	pred, _ := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	for name := range samples {
		if strings.HasPrefix(name, "pitot_place") || name == "pitot_platform_health" {
			t.Errorf("placement-gated series %s leaked with placement disabled", name)
		}
	}
	if samples["pitot_requests_total"] == 0 {
		t.Error("pitot_requests_total missing")
	}
	// The request-latency histograms are ungated: they must be exposed (with
	// a full ladder) even before placement is enabled or traffic arrives.
	for _, want := range []string{
		"pitot_http_estimate_seconds",
		"pitot_http_bound_seconds",
		"pitot_http_place_seconds",
		"pitot_observe_flush_seconds",
		"pitot_uptime_seconds",
		"pitot_build_info",
	} {
		if samples[want] == 0 {
			t.Errorf("ungated series %s missing from exposition", want)
		}
	}
}
