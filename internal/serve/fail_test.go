package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestHTTPFailureLifecycle drives the failure-lifecycle admin surface over
// HTTP: /fail orphans a platform's residents and re-places them on
// survivors, /complete flags the orphaned IDs as stale with a 409,
// /recover walks the platform back through half-open to healthy, and the
// whole lifecycle shows up in /metrics.
func TestHTTPFailureLifecycle(t *testing.T) {
	pred, ds := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "bound", Eps: 0.1, MaxColocation: 2, Strategy: "least-loaded",
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	client := ts.Client()

	// A wave that spreads across platforms.
	var jobs []JobSpec
	for w := 0; w < 6; w++ {
		b, err := pred.Bound(w, w%ds.NumPlatforms(), nil, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, JobSpec{Workload: w, Deadline: b * 5})
	}
	var placeResp PlaceResponse
	code, raw := postJSON(t, client, ts.URL+"/place", PlaceRequest{Jobs: jobs}, &placeResp)
	if code != http.StatusOK || placeResp.Placed != len(jobs) {
		t.Fatalf("/place: %d %s", code, raw)
	}
	target := placeResp.Assignments[0].Platform
	var onTarget []uint64
	for _, a := range placeResp.Assignments {
		if a.Platform == target {
			onTarget = append(onTarget, a.ID)
		}
	}

	// Fail the platform: its residents are orphaned and re-placed on
	// survivors.
	var failResp FailResponse
	code, raw = postJSON(t, client, ts.URL+"/fail", FailRequest{Platform: target}, &failResp)
	if code != http.StatusOK {
		t.Fatalf("/fail: %d %s", code, raw)
	}
	if failResp.State != "down" || failResp.Orphaned != len(onTarget) {
		t.Fatalf("fail response %+v, want state=down orphaned=%d", failResp, len(onTarget))
	}
	var survivors []uint64
	for i, a := range failResp.Reassigned {
		if !a.Placed {
			t.Fatalf("orphan %d not re-placed: %+v (%s)", i, a, raw)
		}
		if a.Platform == target {
			t.Fatalf("orphan %d re-placed on the failed platform: %+v", i, a)
		}
		survivors = append(survivors, a.ID)
	}

	// Failing a down platform is a no-op; degrading it is a conflict.
	var refail FailResponse
	if code, raw = postJSON(t, client, ts.URL+"/fail", FailRequest{Platform: target}, &refail); code != http.StatusOK || refail.Orphaned != 0 {
		t.Fatalf("re-fail: %d %s", code, raw)
	}
	if code, _ = postJSON(t, client, ts.URL+"/fail", FailRequest{Platform: target, Degrade: true}, nil); code != http.StatusConflict {
		t.Fatalf("degrade down platform: %d", code)
	}
	if code, _ = postJSON(t, client, ts.URL+"/fail", FailRequest{Platform: 99}, nil); code != http.StatusBadRequest {
		t.Fatalf("fail out-of-range platform: %d", code)
	}

	// The orphaned IDs are stale (retired), not unknown: completing the
	// original wave flags them with a 409 while the untouched IDs and the
	// re-placed orphans retire normally.
	var all []uint64
	for _, a := range placeResp.Assignments {
		all = append(all, a.ID)
	}
	all = append(all, survivors...)
	var compResp CompleteResponse
	code, raw = postJSON(t, client, ts.URL+"/complete", CompleteRequest{IDs: all}, &compResp)
	if code != http.StatusConflict {
		t.Fatalf("/complete with orphaned ids: %d %s", code, raw)
	}
	if compResp.Completed != len(all)-len(onTarget) || len(compResp.Stale) != len(onTarget) || len(compResp.Unknown) != 0 {
		t.Fatalf("complete response %+v, want %d completed and %d stale", compResp, len(all)-len(onTarget), len(onTarget))
	}
	if got := s.Placer().InFlight(); got != 0 {
		t.Fatalf("in-flight after completing everything: %d", got)
	}

	// Recover: down → half-open (degraded), → healthy.
	var recResp RecoverResponse
	code, raw = postJSON(t, client, ts.URL+"/recover", RecoverRequest{Platform: target}, &recResp)
	if code != http.StatusOK || recResp.State != "degraded" {
		t.Fatalf("/recover: %d %s", code, raw)
	}
	code, raw = postJSON(t, client, ts.URL+"/recover", RecoverRequest{Platform: target}, &recResp)
	if code != http.StatusOK || recResp.State != "healthy" {
		t.Fatalf("second /recover: %d %s", code, raw)
	}

	// The lifecycle is visible in both metric surfaces.
	m := s.Metrics()
	if m.FailEvents != 2 || m.Orphaned != int64(len(onTarget)) ||
		m.OrphanReplaced != int64(len(onTarget)) || m.OrphanLost != 0 ||
		m.CompleteStale != int64(len(onTarget)) || m.RecoverEvents != 2 {
		t.Fatalf("metrics %+v", m)
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"pitot_fail_events_total 2",
		"pitot_recover_events_total 2",
		"pitot_orphan_lost_total 0",
		"pitot_platform_health{platform=\"0\"} 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestHTTPAllPlatformsDownSheds: with every platform failed, /place sheds
// jobs with the no-healthy-platform reason (still a 200 — shedding is a
// per-job outcome, not a request error) and the shed counter moves.
func TestHTTPAllPlatformsDownSheds(t *testing.T) {
	pred, ds := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{Policy: "mean"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	client := ts.Client()

	for p := 0; p < ds.NumPlatforms(); p++ {
		if code, raw := postJSON(t, client, ts.URL+"/fail", FailRequest{Platform: p}, nil); code != http.StatusOK {
			t.Fatalf("fail platform %d: %d %s", p, code, raw)
		}
	}
	for _, h := range s.PlatformHealth() {
		if h != sched.Down {
			t.Fatalf("health snapshot: %v", s.PlatformHealth())
		}
	}
	var placeResp PlaceResponse
	code, raw := postJSON(t, client, ts.URL+"/place",
		PlaceRequest{Jobs: []JobSpec{{Workload: 0, Deadline: 100}}}, &placeResp)
	if code != http.StatusOK || placeResp.Placed != 0 {
		t.Fatalf("/place with cluster down: %d %s", code, raw)
	}
	if a := placeResp.Assignments[0]; a.Placed || a.Rejected || a.Reason != sched.ReasonNoHealthy {
		t.Fatalf("shed assignment %+v", a)
	}
	if m := s.Metrics(); m.PlaceNoHealthy != 1 {
		t.Fatalf("PlaceNoHealthy = %d", m.PlaceNoHealthy)
	}
}

// TestHTTPBreakerTripsFromCompleteOutcomes: deadline-miss reports on
// /complete trip the circuit breaker, quarantining the platform; /recover
// re-admits it half-open and a clean trial completion closes it.
func TestHTTPBreakerTripsFromCompleteOutcomes(t *testing.T) {
	pred, _ := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	// A one-platform cluster concentrates every outcome on platform 0.
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "mean", Platforms: 1, MaxColocation: 8,
		Breaker: sched.BreakerConfig{Window: 4, Threshold: 0.5, MinSamples: 2, Probation: 1},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	client := ts.Client()

	place := func(n int) []uint64 {
		t.Helper()
		var jobs []JobSpec
		for w := 0; w < n; w++ {
			jobs = append(jobs, JobSpec{Workload: w, Deadline: 1e6})
		}
		var resp PlaceResponse
		code, raw := postJSON(t, client, ts.URL+"/place", PlaceRequest{Jobs: jobs}, &resp)
		if code != http.StatusOK || resp.Placed != n {
			t.Fatalf("/place: %d %s", code, raw)
		}
		ids := make([]uint64, n)
		for i, a := range resp.Assignments {
			ids[i] = a.ID
		}
		return ids
	}

	// Two misses in a window of two trips the breaker.
	ids := place(2)
	var compResp CompleteResponse
	code, raw := postJSON(t, client, ts.URL+"/complete",
		CompleteRequest{IDs: ids, Missed: ids}, &compResp)
	if code != http.StatusOK || compResp.Completed != 2 {
		t.Fatalf("/complete with misses: %d %s", code, raw)
	}
	if h := s.PlatformHealth(); h[0] != sched.Quarantined {
		t.Fatalf("health after misses: %v", h)
	}
	if m := s.Metrics(); m.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d", m.BreakerTrips)
	}
	// Quarantined: placements shed.
	var shed PlaceResponse
	code, raw = postJSON(t, client, ts.URL+"/place",
		PlaceRequest{Jobs: []JobSpec{{Workload: 0, Deadline: 1e6}}}, &shed)
	if code != http.StatusOK || shed.Placed != 0 || shed.Assignments[0].Reason != sched.ReasonNoHealthy {
		t.Fatalf("place on quarantined cluster: %d %s", code, raw)
	}

	// Half-open re-admission, then one on-deadline completion closes.
	var recResp RecoverResponse
	if code, raw = postJSON(t, client, ts.URL+"/recover", RecoverRequest{Platform: 0}, &recResp); code != http.StatusOK || recResp.State != "degraded" {
		t.Fatalf("/recover: %d %s", code, raw)
	}
	trial := place(1)
	if code, raw = postJSON(t, client, ts.URL+"/complete", CompleteRequest{IDs: trial}, &compResp); code != http.StatusOK {
		t.Fatalf("trial completion: %d %s", code, raw)
	}
	if h := s.PlatformHealth(); h[0] != sched.Healthy {
		t.Fatalf("health after probation closes: %v", h)
	}
	m := s.Metrics()
	if m.BreakerReadmits != 1 || m.BreakerCloses != 1 {
		t.Fatalf("breaker metrics %+v", m)
	}
	if len(m.PlatformHealth) != 1 || m.PlatformHealth[0] != "healthy" {
		t.Fatalf("PlatformHealth JSON %v", m.PlatformHealth)
	}
}
