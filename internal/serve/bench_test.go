package serve

import (
	"context"
	"math/rand"
	"testing"
	"time"

	pitot "repro"
)

// benchQueries builds a serving-shaped workload: every query is an
// independent (workload, platform, resident-set) arrival, so the direct
// batch path gets no cross-query amortization — the honest baseline for
// the micro-batching overhead.
func benchQueries(ds *pitot.Dataset, n int) []pitot.Query {
	rng := rand.New(rand.NewSource(99))
	qs := make([]pitot.Query, n)
	for i := range qs {
		qs[i] = pitot.Query{
			Workload: rng.Intn(ds.NumWorkloads()),
			Platform: rng.Intn(ds.NumPlatforms()),
			Interferers: []int{
				rng.Intn(ds.NumWorkloads()),
				rng.Intn(ds.NumWorkloads()),
			},
		}
	}
	return qs
}

// BenchmarkDirectEstimateBatch is the lower bound: the caller already holds
// a batch and calls EstimateBatch directly. Reported per query.
func BenchmarkDirectEstimateBatch(b *testing.B) {
	pred, ds := testPredictor(b)
	qs := benchQueries(ds, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.EstimateBatch(qs)
	}
	b.StopTimer()
	perQuery := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(qs))
	b.ReportMetric(perQuery, "ns/query")
	b.ReportMetric(1e9/perQuery, "queries/s")
}

// BenchmarkMicroBatchedEstimate is the serving path: independent concurrent
// clients each submit one query; the server fuses them into batch windows.
// One benchmark op is one served query, so ns/op compares directly against
// BenchmarkDirectEstimateBatch's ns/query.
func BenchmarkMicroBatchedEstimate(b *testing.B) {
	pred, ds := testPredictor(b)
	s := New(pred, Config{MaxBatch: 512, Window: 100 * time.Microsecond, MaxQueue: 1 << 16})
	defer s.Close()
	qs := benchQueries(ds, 4096)
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		i := rand.Intn(len(qs))
		for pb.Next() {
			if _, err := s.Estimate(ctx, qs[i%len(qs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	perQuery := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(1e9/perQuery, "queries/s")
}
