package serve

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	pitot "repro"
	"repro/internal/sched"
)

// benchQueries builds a serving-shaped workload: every query is an
// independent (workload, platform, resident-set) arrival, so the direct
// batch path gets no cross-query amortization — the honest baseline for
// the micro-batching overhead.
func benchQueries(ds *pitot.Dataset, n int) []pitot.Query {
	rng := rand.New(rand.NewSource(99))
	qs := make([]pitot.Query, n)
	for i := range qs {
		qs[i] = pitot.Query{
			Workload: rng.Intn(ds.NumWorkloads()),
			Platform: rng.Intn(ds.NumPlatforms()),
			Interferers: []int{
				rng.Intn(ds.NumWorkloads()),
				rng.Intn(ds.NumWorkloads()),
			},
		}
	}
	return qs
}

// BenchmarkDirectEstimateBatch is the lower bound: the caller already holds
// a batch and calls EstimateBatch directly. Reported per query.
func BenchmarkDirectEstimateBatch(b *testing.B) {
	pred, ds := testPredictor(b)
	qs := benchQueries(ds, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.EstimateBatch(qs)
	}
	b.StopTimer()
	perQuery := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(qs))
	b.ReportMetric(perQuery, "ns/query")
	b.ReportMetric(1e9/perQuery, "queries/s")
}

// BenchmarkMicroBatchedEstimate is the serving path: independent concurrent
// clients each submit one query; the server fuses them into batch windows.
// One benchmark op is one served query, so ns/op compares directly against
// BenchmarkDirectEstimateBatch's ns/query.
func BenchmarkMicroBatchedEstimate(b *testing.B) {
	pred, ds := testPredictor(b)
	s := New(pred, Config{MaxBatch: 512, Window: 100 * time.Microsecond, MaxQueue: 1 << 16})
	defer s.Close()
	qs := benchQueries(ds, 4096)
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		i := rand.Intn(len(qs))
		for pb.Next() {
			if _, err := s.Estimate(ctx, qs[i%len(qs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	perQuery := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(1e9/perQuery, "queries/s")
}

// BenchmarkPlaceSingleJob drives concurrent single-job /place traffic
// through the placement engine, direct (every call its own lock-serialized
// wave) versus through the accumulation window (concurrent calls fused
// into one wave whose platform folds are shared). One op = one placed-and-
// completed job.
func BenchmarkPlaceSingleJob(b *testing.B) {
	pred, ds := testPredictor(b)
	for _, mode := range []struct {
		name   string
		window time.Duration
	}{
		{"direct", 0},
		{"window", 200 * time.Microsecond},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s := New(pred, Config{})
			defer s.Close()
			if err := s.EnablePlacement(PlacementConfig{
				Policy: "mean-bound", Eps: 0.1, MaxColocation: 64,
				Window: mode.window, MaxWave: 64,
			}); err != nil {
				b.Fatal(err)
			}
			// Three permanent residents per platform: candidate scoring
			// pays the full interference fold a loaded cluster sees —
			// the shared work wave fusion amortizes.
			for i := 0; i < 3*ds.NumPlatforms(); i++ {
				if a := s.Placer().Place(sched.Job{Workload: i % ds.NumWorkloads(), Deadline: 1e9}); !a.Placed() {
					b.Fatalf("resident %d unplaced", i)
				}
			}
			var seq atomic.Int64
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					w := int(seq.Add(1)) % ds.NumWorkloads()
					as, err := s.PlaceJobs([]sched.Job{{Workload: w, Deadline: 1e9}})
					if err != nil {
						b.Error(err)
						return
					}
					if as[0].Placed() {
						if err := s.Placer().Complete(as[0].ID); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "placements/s")
		})
	}
}

// BenchmarkPlaceWaveFusion quantifies what the accumulation window buys
// per fused wave, independent of goroutine scheduling: sixteen jobs
// placed as sixteen single-job waves (each paying its own lock
// acquisition and per-platform interference folds) versus one fused
// 16-job wave (one platform-major pre-score, folds shared across the
// wave). One benchmark op is one placed-and-completed job in both
// variants.
func BenchmarkPlaceWaveFusion(b *testing.B) {
	pred, ds := testPredictor(b)
	const waveSize = 16
	for _, mode := range []string{"serial-1x16", "fused-16"} {
		b.Run(mode, func(b *testing.B) {
			s := New(pred, Config{})
			defer s.Close()
			if err := s.EnablePlacement(PlacementConfig{
				Policy: "mean-bound", Eps: 0.1, MaxColocation: 64,
			}); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 3*ds.NumPlatforms(); i++ {
				if a := s.Placer().Place(sched.Job{Workload: i % ds.NumWorkloads(), Deadline: 1e9}); !a.Placed() {
					b.Fatalf("resident %d unplaced", i)
				}
			}
			wave := make([]sched.Job, waveSize)
			for i := range wave {
				wave[i] = sched.Job{Workload: i % ds.NumWorkloads(), Deadline: 1e9}
			}
			complete := func(as []sched.Assignment) {
				for _, a := range as {
					if a.Placed() {
						if err := s.Placer().Complete(a.ID); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n += waveSize {
				if mode == "fused-16" {
					as, err := s.PlaceJobs(wave)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					complete(as)
					b.StartTimer()
				} else {
					var as []sched.Assignment
					for _, j := range wave {
						a, err := s.PlaceJobs([]sched.Job{j})
						if err != nil {
							b.Fatal(err)
						}
						as = append(as, a...)
					}
					b.StopTimer()
					complete(as)
					b.StartTimer()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "placements/s")
		})
	}
}
