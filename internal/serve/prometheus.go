package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders the server's counters and snapshot gauges in the
// Prometheus plain-text exposition format (version 0.0.4) — the scrape
// surface behind GET /metrics. Counter semantics match Metrics; snapshot
// attribution appears as version-labeled series over the retained window.
func (s *Server) WritePrometheus(w io.Writer) error {
	m := s.Metrics()
	info := s.Info()
	var b strings.Builder

	c := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	c("pitot_requests_total", "Prediction requests admitted (estimate and bound).", m.Requests)
	c("pitot_rejected_total", "Requests rejected by admission control (queue full).", m.Rejected)
	c("pitot_observes_total", "Observe calls forwarded to the predictor.", m.Observes)
	c("pitot_observe_errors_total", "Observe calls that returned an error.", m.ObserveErrors)
	c("pitot_flushes_full_total", "Batches flushed at MaxBatch.", m.FullFlushes)
	c("pitot_flushes_idle_total", "Batches flushed because the pipeline was idle.", m.IdleFlushes)
	c("pitot_flushes_timeout_total", "Batches released by the window timer behind an in-flight flush.", m.TimeoutFlushes)
	c("pitot_flushes_inline_total", "Single queries served synchronously on the caller's goroutine.", m.InlineFlushes)
	if s.placer != nil {
		c("pitot_placed_total", "Jobs placed on a platform.", m.Placed)
		c("pitot_place_unplaced_total", "Jobs with no feasible platform.", m.PlaceUnplaced)
		c("pitot_place_rejected_total", "Jobs rejected by placement admission control.", m.PlaceRejected)
		c("pitot_completed_total", "Placed jobs retired via /complete.", m.Completed)
		c("pitot_complete_unknown_total", "Completion calls for IDs the scheduler never issued.", m.CompleteUnknown)
		c("pitot_complete_stale_total", "Completion calls for already-retired jobs (duplicates or orphans).", m.CompleteStale)
		c("pitot_place_waves_total", "Fused /place accumulation-window waves.", m.PlaceWaves)
		c("pitot_place_wave_jobs_total", "Single-job /place calls absorbed into fused waves.", m.PlaceWaveJobs)
		c("pitot_place_inline_total", "Single-job /place calls served inline (nothing in flight to fuse with).", m.PlaceInline)
		c("pitot_place_shed_total", "Single-job /place calls shed to the direct path (accumulation queue full).", m.PlaceShed)
		c("pitot_fail_events_total", "Platform failures injected via /fail.", m.FailEvents)
		c("pitot_degrade_events_total", "Platform degradations injected via /fail.", m.DegradeEvents)
		c("pitot_recover_events_total", "Platform recoveries via /recover.", m.RecoverEvents)
		c("pitot_orphaned_total", "Resident jobs orphaned by platform failures.", m.Orphaned)
		c("pitot_orphan_replaced_total", "Orphaned jobs re-placed on a surviving platform.", m.OrphanReplaced)
		c("pitot_orphan_lost_total", "Orphaned jobs shed (no surviving platform could take them).", m.OrphanLost)
		c("pitot_place_no_healthy_total", "Jobs shed because no healthy platform remained.", m.PlaceNoHealthy)
		c("pitot_breaker_trips_total", "Circuit-breaker quarantine trips.", int64(m.BreakerTrips))
		c("pitot_breaker_readmits_total", "Half-open re-admissions of quarantined platforms.", int64(m.BreakerReadmits))
		c("pitot_breaker_closes_total", "Probations closed back to healthy.", int64(m.BreakerCloses))
		if m.PlaceReplicas > 0 {
			c("pitot_place_reserve_attempts_total", "Optimistic slot reservations attempted by scheduler replicas.", int64(m.ReserveAttempts))
			c("pitot_place_conflicts_total", "Slot reservations that lost the optimistic commit race.", int64(m.ReserveConflicts))
			c("pitot_place_conflict_shed_total", "Jobs shed after exhausting their conflict-retry budget.", int64(m.PlaceConflictShed))
			c("pitot_place_rebalances_total", "Shard-map rebalances triggered by load skew.", int64(m.PlaceRebalances))
			fmt.Fprintf(&b, "# HELP pitot_place_replicas Scheduler replicas serving /place.\n# TYPE pitot_place_replicas gauge\npitot_place_replicas %d\n",
				m.PlaceReplicas)
		}
		if m.ScoreCacheEnabled {
			c("pitot_place_score_cache_hits_total", "Distinct-workload score columns served from the cross-wave cache.", int64(m.ScoreCacheHits))
			c("pitot_place_score_cache_misses_total", "Distinct-workload score columns scored through the predictor.", int64(m.ScoreCacheMisses))
			c("pitot_place_score_cache_evictions_total", "Score-cache entries evicted at the per-platform capacity bound.", int64(m.ScoreCacheEvictions))
			c("pitot_place_score_cache_invalidations_total", "Score-cache columns invalidated by a slot-version or snapshot-epoch change.", int64(m.ScoreCacheInvalidations))
			fmt.Fprintf(&b, "# HELP pitot_place_score_cache_entries Score-cache entries currently resident.\n# TYPE pitot_place_score_cache_entries gauge\npitot_place_score_cache_entries %d\n",
				m.ScoreCacheEntries)
		}
		fmt.Fprintf(&b, "# HELP pitot_place_in_flight Placed jobs not yet completed.\n# TYPE pitot_place_in_flight gauge\npitot_place_in_flight %d\n",
			s.placer.InFlight())
		// Placement-stack latency histograms (attached by EnablePlacement):
		// batched scoring, whole-wave placement, per-chunk scheduler-lock
		// hold, and the wave-size distribution.
		if s.schedMetrics != nil {
			s.schedMetrics.ScoreBatch.WritePrometheus(&b)
			s.schedMetrics.WavePlace.WritePrometheus(&b)
			s.schedMetrics.ChunkHold.WritePrometheus(&b)
			s.schedMetrics.WaveSize.WritePrometheus(&b)
			s.schedMetrics.CacheLookup.WritePrometheus(&b)
		}
		// 0=healthy 1=degraded 2=quarantined 3=down, matching sched.HealthState.
		fmt.Fprintf(&b, "# HELP pitot_platform_health Platform health state (0=healthy 1=degraded 2=quarantined 3=down).\n# TYPE pitot_platform_health gauge\n")
		for p, h := range s.placer.HealthSnapshot() {
			fmt.Fprintf(&b, "pitot_platform_health{platform=\"%d\"} %d\n", p, h)
		}
	}

	// Per-platform calibration staleness: how many snapshot versions each
	// platform's serving bounds lag the freshest measurements observed for
	// it (never-observed platforms lag the whole version history).
	fmt.Fprintf(&b, "# HELP pitot_platform_calibration_lag Snapshot versions the platform's calibration lags its freshest observed measurements.\n# TYPE pitot_platform_calibration_lag gauge\n")
	for p, lag := range s.PlatformCalibrationLag() {
		fmt.Fprintf(&b, "pitot_platform_calibration_lag{platform=\"%d\"} %d\n", p, lag)
	}

	// End-to-end request-latency histograms on the ungated serving surface.
	s.hists.estimate.WritePrometheus(&b)
	s.hists.bound.WritePrometheus(&b)
	s.hists.place.WritePrometheus(&b)
	s.hists.observeFlush.WritePrometheus(&b)

	fmt.Fprintf(&b, "# HELP pitot_uptime_seconds Time since the server started.\n# TYPE pitot_uptime_seconds gauge\npitot_uptime_seconds %g\n",
		time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "# HELP pitot_build_info Build metadata (constant 1; version from -ldflags).\n# TYPE pitot_build_info gauge\npitot_build_info{version=%q} 1\n",
		s.cfg.BuildVersion)

	fast := 0
	if info.FastScoring {
		fast = 1
	}
	fmt.Fprintf(&b, "# HELP pitot_fast_scoring Whether the published snapshot scores with the approximate fast kernel (1) or the exact kernel (0).\n# TYPE pitot_fast_scoring gauge\npitot_fast_scoring %d\n", fast)
	fmt.Fprintf(&b, "# HELP pitot_snapshot_version Currently published model snapshot version.\n# TYPE pitot_snapshot_version gauge\npitot_snapshot_version %d\n", info.Version)
	fmt.Fprintf(&b, "# HELP pitot_snapshot_observations Dataset size of the published snapshot.\n# TYPE pitot_snapshot_observations gauge\npitot_snapshot_observations %d\n", info.Observations)

	sort.Slice(m.PerSnapshot, func(i, j int) bool { return m.PerSnapshot[i].Version < m.PerSnapshot[j].Version })
	fmt.Fprintf(&b, "# HELP pitot_snapshot_batches_total Batches served per model snapshot (retained window).\n# TYPE pitot_snapshot_batches_total counter\n")
	for _, sm := range m.PerSnapshot {
		fmt.Fprintf(&b, "pitot_snapshot_batches_total{version=\"%d\"} %d\n", sm.Version, sm.Batches)
	}
	fmt.Fprintf(&b, "# HELP pitot_snapshot_queries_total Queries served per model snapshot (retained window).\n# TYPE pitot_snapshot_queries_total counter\n")
	for _, sm := range m.PerSnapshot {
		fmt.Fprintf(&b, "pitot_snapshot_queries_total{version=\"%d\"} %d\n", sm.Version, sm.Queries)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
