package serve

import (
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	pitot "repro"
	"repro/internal/sched"
)

var errTest = errors.New("test: bounds unavailable")

// TestHTTPPlaceEndToEnd drives the orchestration surface over HTTP against
// a real trained predictor: a wave placed through /place lands on
// platforms whose bound respects each deadline, /complete frees the slots
// (verified by re-placing), admission and infeasibility are reported
// per-job, and /metrics exposes the lifecycle counters in Prometheus
// plain-text format.
func TestHTTPPlaceEndToEnd(t *testing.T) {
	pred, ds := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "bound", Eps: 0.1, MaxColocation: 2, Strategy: "least-loaded",
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	client := ts.Client()

	// A wave of feasible jobs: deadlines well above the 0.1-bound.
	var jobs []JobSpec
	for w := 0; w < 6; w++ {
		b, err := pred.Bound(w, w%ds.NumPlatforms(), nil, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, JobSpec{Workload: w, Deadline: b * 3})
	}
	var placeResp PlaceResponse
	code, raw := postJSON(t, client, ts.URL+"/place", PlaceRequest{Jobs: jobs}, &placeResp)
	if code != http.StatusOK {
		t.Fatalf("/place: %d %s", code, raw)
	}
	if placeResp.Placed != len(jobs) {
		t.Fatalf("placed %d of %d: %s", placeResp.Placed, len(jobs), raw)
	}
	var ids []uint64
	for i, a := range placeResp.Assignments {
		if !a.Placed || a.Platform < 0 || a.ID == 0 {
			t.Fatalf("assignment %d not placed: %+v", i, a)
		}
		if a.Budget > a.Deadline {
			t.Fatalf("assignment %d budget %v over deadline %v", i, a.Budget, a.Deadline)
		}
		ids = append(ids, a.ID)
	}

	// An impossible deadline is unplaced (not rejected), not an error.
	var tight PlaceResponse
	code, raw = postJSON(t, client, ts.URL+"/place",
		PlaceRequest{Jobs: []JobSpec{{Workload: 0, Deadline: 1e-12}}}, &tight)
	if code != http.StatusOK || tight.Placed != 0 {
		t.Fatalf("tight-deadline place: %d %s", code, raw)
	}
	if a := tight.Assignments[0]; a.Placed || a.Rejected {
		t.Fatalf("tight-deadline assignment misreported: %+v", a)
	}

	// Complete the wave, plus one unknown ID: the bad ID flags the batch
	// with a 409 while the valid completions still take effect.
	var compResp CompleteResponse
	code, raw = postJSON(t, client, ts.URL+"/complete",
		CompleteRequest{IDs: append(append([]uint64{}, ids...), 99999)}, &compResp)
	if code != http.StatusConflict {
		t.Fatalf("/complete with unknown id: %d %s", code, raw)
	}
	if compResp.Completed != len(ids) || len(compResp.Unknown) != 1 || compResp.Unknown[0] != 99999 {
		t.Fatalf("complete response %+v", compResp)
	}
	if got := s.Placer().InFlight(); got != 0 {
		t.Fatalf("in-flight after completion: %d", got)
	}

	// Validation errors.
	if code, _ := postJSON(t, client, ts.URL+"/place",
		PlaceRequest{Jobs: []JobSpec{{Workload: -1, Deadline: 1}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative workload: %d", code)
	}
	if code, _ := postJSON(t, client, ts.URL+"/place",
		PlaceRequest{Jobs: []JobSpec{{Workload: 0, Deadline: 0}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("zero deadline: %d", code)
	}
	if code, _ := postJSON(t, client, ts.URL+"/place",
		PlaceRequest{Jobs: []JobSpec{{Workload: 0, Deadline: -3}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative deadline: %d", code)
	}
	if code, _ := postJSON(t, client, ts.URL+"/place", PlaceRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty wave: %d", code)
	}

	// Prometheus exposition carries the lifecycle counters.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"pitot_placed_total 6",
		"pitot_place_unplaced_total 1",
		"pitot_completed_total 6",
		"pitot_complete_unknown_total 1",
		"pitot_place_in_flight 0",
		"pitot_snapshot_version",
		"# TYPE pitot_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// Placement endpoints answer 503 until EnablePlacement configures them;
// the predictor-serving endpoints are unaffected.
func TestPlaceDisabled(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	code, body := postJSON(t, ts.Client(), ts.URL+"/place",
		PlaceRequest{Jobs: []JobSpec{{Workload: 0, Deadline: 1}}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/place disabled: %d %s", code, body)
	}
	code, body = postJSON(t, ts.Client(), ts.URL+"/complete", CompleteRequest{IDs: []uint64{1}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/complete disabled: %d %s", code, body)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body2), "pitot_placed_total") {
		t.Fatal("placement counters exposed while disabled")
	}
}

// The backendPredictor adapter maps batch errors to +Inf per query, so a
// backend whose bounds are unavailable yields unplaced jobs rather than
// failures.
func TestBackendPredictorErrorMapsToInfeasible(t *testing.T) {
	be := newFakeBackend()
	be.boundErr = errTest
	bp := backendPredictor{be}
	out := bp.BoundSecondsBatch([]pitot.Query{{Workload: 0, Platform: 0}}, 0.1)
	if !math.IsInf(out[0], 1) {
		t.Fatalf("bound error not mapped to +Inf: %v", out)
	}
	if v := bp.BoundSeconds(0, 0, nil, 0.1); !math.IsInf(v, 1) {
		t.Fatalf("scalar bound error not mapped to +Inf: %v", v)
	}
	s := New(be, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{Policy: "mean"}); err != nil {
		t.Fatal(err)
	}
	as, err := s.PlaceJobs([]sched.Job{{Workload: 0, Deadline: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	if !as[0].Placed() {
		t.Fatalf("mean placement through fake backend failed: %+v", as[0])
	}
}
