package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	pitot "repro"
	"repro/internal/sched"
)

// Concurrent single-job PlaceJobs calls arriving while a wave is in flight
// must fuse into one scheduler wave. Deterministic via the backend gate:
// the first (inline) placement blocks mid-score, the next five queue
// behind it and flush together when the wave cap is reached.
func TestPlaceWindowFusesConcurrentCalls(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "mean", Window: 2 * time.Second, MaxWave: 5,
	}); err != nil {
		t.Fatal(err)
	}
	be.gate = make(chan struct{})

	type result struct {
		as  []sched.Assignment
		err error
	}
	results := make(chan result, 6)
	placeOne := func(w int) {
		as, err := s.PlaceJobs([]sched.Job{{Workload: w, Deadline: 1e9}})
		results <- result{as, err}
	}
	// First call takes the inline path and blocks on the gate inside the
	// scheduler's pre-score, holding a wave in flight.
	go placeOne(0)
	waitFor(t, "gated inline placement to start", be.flushInFlight)

	// Five more: the inline check sees the in-flight wave, so they queue;
	// the collector flushes exactly when the MaxWave-th arrives (the
	// window timer is far away).
	for w := 1; w <= 5; w++ {
		go placeOne(w)
	}
	waitFor(t, "fused wave to start", func() bool { return s.placeInFlight.Load() >= 2 })

	close(be.gate)
	seen := map[sched.JobID]bool{}
	for i := 0; i < 6; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.as) != 1 || !r.as[0].Placed() {
			t.Fatalf("assignment %d: %+v", i, r.as)
		}
		if seen[r.as[0].ID] {
			t.Fatalf("duplicate job ID %d", r.as[0].ID)
		}
		seen[r.as[0].ID] = true
	}
	m := s.Metrics()
	if m.PlaceInline != 1 {
		t.Fatalf("inline placements %d, want 1", m.PlaceInline)
	}
	if m.PlaceWaves != 1 || m.PlaceWaveJobs != 5 {
		t.Fatalf("fused waves %d / jobs %d, want 1 / 5", m.PlaceWaves, m.PlaceWaveJobs)
	}
	if m.Placed != 6 {
		t.Fatalf("placed %d, want 6", m.Placed)
	}
}

// A single-job call arriving with the accumulation queue full must shed to
// the direct path — placed, not rejected — and be counted in PlaceShed so
// overload traffic doesn't silently vanish from the fusion metrics.
// Deterministic via the backend gate: the inline first placement blocks
// mid-score holding the scheduler, the collector blocks flushing behind
// it (MaxWave 1 → queue capacity 4), four more calls fill the queue, and
// the next one finds it full.
func TestPlaceWindowQueueFullSheds(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "mean", Window: time.Hour, MaxWave: 1,
	}); err != nil {
		t.Fatal(err)
	}
	be.gate = make(chan struct{})

	errUnplaced := errors.New("assignment not placed")
	results := make(chan error, 7)
	placeOne := func(w int) {
		as, err := s.PlaceJobs([]sched.Job{{Workload: w, Deadline: 1e9}})
		if err == nil && (len(as) != 1 || !as[0].Placed()) {
			err = errUnplaced
		}
		results <- err
	}
	// Inline placement blocks on the gate, holding the scheduler.
	go placeOne(0)
	waitFor(t, "gated inline placement to start", be.flushInFlight)
	// The collector drains exactly one job and blocks flushing it (the
	// scheduler is held); with MaxWave 1 it cannot batch further.
	go placeOne(1)
	waitFor(t, "collector flush to start", func() bool { return s.placeInFlight.Load() >= 2 })
	// Fill the queue to capacity while the collector is stuck.
	for w := 2; w <= 5; w++ {
		go placeOne(w)
	}
	waitFor(t, "queue to fill", func() bool { return len(s.placeQueue) == cap(s.placeQueue) })
	// Queue full: this call must shed to the direct path. Poll the raw
	// counter — Metrics() reads scheduler stats under the scheduler lock,
	// which the gated placement is holding.
	go placeOne(6)
	waitFor(t, "shed placement", func() bool { return s.metrics.placeShed.Load() == 1 })

	close(be.gate)
	for i := 0; i < 7; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.PlaceShed != 1 {
		t.Fatalf("shed %d, want 1", m.PlaceShed)
	}
	if m.Placed != 7 {
		t.Fatalf("placed %d, want 7", m.Placed)
	}
	if m.PlaceInline != 1 {
		t.Fatalf("inline %d, want 1", m.PlaceInline)
	}
	// Shed placements bypass the wave counters by design.
	if m.PlaceWaves != 5 || m.PlaceWaveJobs != 5 {
		t.Fatalf("waves %d / jobs %d, want 5 / 5", m.PlaceWaves, m.PlaceWaveJobs)
	}
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pitot_place_shed_total 1") {
		t.Fatal("pitot_place_shed_total missing from the Prometheus exposition")
	}
}

// With nothing in flight, a single-job call must place inline — the window
// never taxes an idle pipeline.
func TestPlaceWindowInlineWhenIdle(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "mean", Window: time.Minute, MaxWave: 8,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	as, err := s.PlaceJobs([]sched.Job{{Workload: 1, Deadline: 1e9}})
	if err != nil || len(as) != 1 || !as[0].Placed() {
		t.Fatalf("inline placement failed: %v %+v", err, as)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("inline placement waited %v", since)
	}
	m := s.Metrics()
	if m.PlaceInline != 1 || m.PlaceWaves != 0 {
		t.Fatalf("inline %d waves %d, want 1 / 0", m.PlaceInline, m.PlaceWaves)
	}
	// Multi-job calls are already waves: direct path, no fusion counters.
	if _, err := s.PlaceJobs([]sched.Job{
		{Workload: 2, Deadline: 1e9}, {Workload: 3, Deadline: 1e9},
	}); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.PlaceWaves != 0 || m.PlaceWaveJobs != 0 {
		t.Fatalf("multi-job wave counted as fused: %+v", m)
	}
}

// Close must flush accumulated single-job placements (they get answers,
// not hangs) and stop the collector.
func TestPlaceWindowCloseFlushesPending(t *testing.T) {
	be := newFakeBackend()
	s := New(be, Config{})
	if err := s.EnablePlacement(PlacementConfig{
		Policy: "mean", Window: time.Hour, MaxWave: 64,
	}); err != nil {
		t.Fatal(err)
	}
	be.gate = make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.PlaceJobs([]sched.Job{{Workload: 0, Deadline: 1e9}}) // gated inline
	}()
	waitFor(t, "gated inline placement", be.flushInFlight)
	answered := make(chan error, 2)
	for w := 1; w <= 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, err := s.PlaceJobs([]sched.Job{{Workload: w, Deadline: 1e9}})
			answered <- err
		}(w)
	}
	// Give the two calls a moment to enqueue behind the gated wave (any
	// interleaving is acceptable: a call racing Close gets ErrClosed, an
	// enqueued one is answered by the final flush).
	time.Sleep(20 * time.Millisecond)
	close(be.gate)
	s.Close()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-answered; err != nil && err != ErrClosed {
			t.Fatalf("queued placement got %v, want an answer or ErrClosed", err)
		}
	}
}

// The per-platform calibration staleness gauge: a platform's lag drops to
// zero when an Observe carries its measurements and grows by one with
// every snapshot published without them.
func TestCalibrationLagGauge(t *testing.T) {
	be := newFakeBackend() // 10 platforms, version bumps per Observe
	s := New(be, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{Policy: "mean"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe([]pitot.Observation{{Workload: 1, Platform: 2, Seconds: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe([]pitot.Observation{
		{Workload: 1, Platform: 5, Seconds: 1},
		{Workload: 2, Platform: 5, Interferers: []int{1}, Seconds: 2},
	}); err != nil {
		t.Fatal(err)
	}
	lag := s.PlatformCalibrationLag()
	if len(lag) != 10 {
		t.Fatalf("lag for %d platforms, want 10", len(lag))
	}
	if lag[2] != 1 || lag[5] != 0 {
		t.Fatalf("lag[2]=%d lag[5]=%d, want 1 and 0", lag[2], lag[5])
	}
	// Never-observed platforms lag the whole version history (2 Observes).
	if lag[0] != 2 || lag[9] != 2 {
		t.Fatalf("unobserved platform lag %d/%d, want 2", lag[0], lag[9])
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE pitot_platform_calibration_lag gauge",
		"pitot_platform_calibration_lag{platform=\"5\"} 0",
		"pitot_platform_calibration_lag{platform=\"2\"} 1",
		"pitot_platform_calibration_lag{platform=\"0\"} 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// The real predictor's fused two-head surface reaches the placement engine
// through the backend adapter: mixed policies score through one pass.
func TestPlacementFusedThroughBackend(t *testing.T) {
	pred, _ := testPredictor(t)
	s := New(pred, Config{})
	defer s.Close()
	if err := s.EnablePlacement(PlacementConfig{Policy: "mean-bound", Eps: 0.1}); err != nil {
		t.Fatal(err)
	}
	if !s.Placer().Fused() {
		t.Fatal("mean-bound placement over the real predictor is not fused")
	}
	as, err := s.PlaceJobs([]sched.Job{{Workload: 0, Deadline: 1e9}})
	if err != nil || !as[0].Placed() {
		t.Fatalf("fused placement failed: %v %+v", err, as)
	}
	// Budget must be the conservative bound head, not the mean.
	mean := pred.Estimate(0, as[0].Platform, as[0].Interferers)
	if as[0].Budget <= mean {
		t.Fatalf("budget %v not above mean %v — fused policy served the wrong head", as[0].Budget, mean)
	}
}
