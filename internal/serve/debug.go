package serve

import (
	"errors"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// ErrTracingDisabled is returned by the /debug/trace endpoints when the
// flight recorder is off (placement disabled, or PlacementConfig.TraceDepth
// negative).
var ErrTracingDisabled = errors.New("serve: flight recorder not enabled")

// TraceEventJSON is one flight-recorder event in /debug/trace replies — the
// human-readable rendering of obs.Event (kinds and reasons as strings, time
// as seconds since the recorder epoch).
type TraceEventJSON struct {
	Seq      uint64  `json:"seq"`
	T        float64 `json:"t_seconds"`
	Kind     string  `json:"kind"`
	Job      uint64  `json:"job"`
	ID       uint64  `json:"id,omitempty"`
	Platform int     `json:"platform"`
	N        int     `json:"n,omitempty"`
	Cached   int     `json:"cached,omitempty"`
	Version  uint64  `json:"snapshot_version,omitempty"`
	Reason   string  `json:"reason,omitempty"`
}

func toTraceEventJSON(e obs.Event) TraceEventJSON {
	return TraceEventJSON{
		Seq:      e.Seq,
		T:        e.T.Seconds(),
		Kind:     e.Kind.String(),
		Job:      e.Job,
		ID:       e.ID,
		Platform: int(e.Platform),
		N:        int(e.N),
		Cached:   int(e.Cached),
		Version:  e.Version,
		Reason:   e.Reason.String(),
	}
}

// TraceResponse is the JSON reply of the /debug/trace endpoints. Total
// counts every event ever recorded; Dropped counts the ones the bounded
// ring has already overwritten (a job older than the retention window may
// have an incomplete — or empty — trace).
type TraceResponse struct {
	Job     uint64           `json:"job,omitempty"`
	Total   uint64           `json:"total_events"`
	Dropped uint64           `json:"dropped_events"`
	Events  []TraceEventJSON `json:"events"`
}

func (s *Server) traceResponse(job uint64, events []obs.Event) TraceResponse {
	resp := TraceResponse{
		Job:     job,
		Total:   s.recorder.Total(),
		Dropped: s.recorder.Dropped(),
		Events:  make([]TraceEventJSON, len(events)),
	}
	for i, e := range events {
		resp.Events[i] = toTraceEventJSON(e)
	}
	return resp
}

// handleTrace serves GET /debug/trace?job=ID: every retained lifecycle
// event for one job, in order.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.recorder == nil {
		writeError(w, http.StatusServiceUnavailable, ErrTracingDisabled)
		return
	}
	jobParam := r.URL.Query().Get("job")
	if jobParam == "" {
		writeError(w, http.StatusBadRequest, errors.New("job query parameter required (use /debug/trace/recent for the global tail)"))
		return
	}
	job, err := strconv.ParseUint(jobParam, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, errors.New("job must be an unsigned integer"))
		return
	}
	writeJSON(w, http.StatusOK, s.traceResponse(job, s.recorder.JobTrace(job)))
}

// handleTraceRecent serves GET /debug/trace/recent?n=N: the most recent N
// retained events across all jobs (default 256).
func (s *Server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.recorder == nil {
		writeError(w, http.StatusServiceUnavailable, ErrTracingDisabled)
		return
	}
	n := 256
	if nParam := r.URL.Query().Get("n"); nParam != "" {
		v, err := strconv.Atoi(nParam)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("n must be a positive integer"))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, s.traceResponse(0, s.recorder.Recent(n)))
}

// FlightRecorder exposes the placement flight recorder, nil unless
// EnablePlacement ran with tracing on.
func (s *Server) FlightRecorder() *obs.Recorder { return s.recorder }
