package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	pitot "repro"
	"repro/internal/sched"
)

// EstimateRequest is the JSON body of POST /estimate and (with Eps) of
// POST /bound.
type EstimateRequest struct {
	Workload    int     `json:"workload"`
	Platform    int     `json:"platform"`
	Interferers []int   `json:"interferers,omitempty"`
	Eps         float64 `json:"eps,omitempty"` // /bound only
}

// PredictionResponse is the JSON reply of /estimate and /bound. Version is
// the snapshot version published at reply time — an upper bound on the
// version that served the query (a concurrent Observe may land between
// flush and reply), letting clients track staleness across updates.
// Infeasible marks a +Inf bound (the calibration set is too small for the
// requested eps — a documented predictor outcome JSON cannot carry as a
// number); Seconds is 0 in that case.
type PredictionResponse struct {
	Seconds    float64 `json:"seconds"`
	Version    uint64  `json:"version"`
	Infeasible bool    `json:"infeasible,omitempty"`
}

// ObserveRequest is the JSON body of POST /observe. Observations use the
// dataset wire format: w (workload), p (platform), k (interferers),
// t (seconds).
type ObserveRequest struct {
	Observations []pitot.Observation `json:"observations"`
}

// ObserveResponse is the JSON reply of /observe.
type ObserveResponse struct {
	Accepted int    `json:"accepted"`
	Version  uint64 `json:"version"`
}

// JobSpec is one placement request inside POST /place.
type JobSpec struct {
	Workload int     `json:"workload"`
	Deadline float64 `json:"deadline"`
}

// PlaceRequest is the JSON body of POST /place: a wave of jobs placed in
// order against the live cluster state, scored in one batched predictor
// pass.
type PlaceRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// AssignmentJSON is one placement decision in the /place reply. Platform
// is -1 when the job was not placed; Rejected distinguishes admission
// refusal (cluster at capacity) from infeasibility, and Reason spells out
// why an unplaced job was shed ("admission", "no-healthy-platform",
// "capacity", "infeasible"). Budget is omitted for unplaced jobs (it
// would be +Inf, which JSON cannot carry).
type AssignmentJSON struct {
	ID       uint64  `json:"id,omitempty"`
	Workload int     `json:"workload"`
	Deadline float64 `json:"deadline"`
	Platform int     `json:"platform"`
	Budget   float64 `json:"budget,omitempty"`
	Placed   bool    `json:"placed"`
	Rejected bool    `json:"rejected,omitempty"`
	Reason   string  `json:"reason,omitempty"`
}

func toAssignmentJSON(a sched.Assignment) AssignmentJSON {
	aj := AssignmentJSON{
		ID:       uint64(a.ID),
		Workload: a.Job.Workload,
		Deadline: a.Job.Deadline,
		Platform: a.Platform,
		Placed:   a.Placed(),
		Rejected: a.Rejected,
		Reason:   a.Reason,
	}
	if a.Placed() {
		aj.Budget = a.Budget
	}
	return aj
}

// PlaceResponse is the JSON reply of POST /place. Version is the model
// snapshot version at reply time, as in PredictionResponse.
type PlaceResponse struct {
	Assignments []AssignmentJSON `json:"assignments"`
	Placed      int              `json:"placed"`
	Version     uint64           `json:"version"`
}

// CompleteRequest is the JSON body of POST /complete: job IDs (from
// /place) whose executions finished, freeing their colocation slots.
// Missed optionally lists the subset of IDs whose executions overran
// their deadline — the outcome signal the platform circuit breaker trips
// on.
type CompleteRequest struct {
	IDs    []uint64 `json:"ids"`
	Missed []uint64 `json:"missed,omitempty"`
}

// CompleteResponse is the JSON reply of POST /complete. Unknown lists IDs
// the scheduler never issued; Stale lists IDs already retired (double
// completions, or jobs orphaned by a platform failure). Any entry in
// either makes the reply a 409 — the valid IDs still complete.
type CompleteResponse struct {
	Completed int      `json:"completed"`
	Unknown   []uint64 `json:"unknown,omitempty"`
	Stale     []uint64 `json:"stale,omitempty"`
}

// FailRequest is the JSON body of POST /fail: the platform to fail hard
// (orphaning and re-placing its residents) or, with Degrade set, to mark
// flaky (residents keep running; placements pay the degraded penalty).
type FailRequest struct {
	Platform int  `json:"platform"`
	Degrade  bool `json:"degrade,omitempty"`
}

// FailResponse is the JSON reply of POST /fail. For a hard failure,
// Reassigned reports where each orphaned resident landed (in eviction
// order); orphans with no surviving feasible platform are shed with their
// reason.
type FailResponse struct {
	Platform   int              `json:"platform"`
	State      string           `json:"state"`
	Orphaned   int              `json:"orphaned"`
	Reassigned []AssignmentJSON `json:"reassigned,omitempty"`
}

// RecoverRequest is the JSON body of POST /recover.
type RecoverRequest struct {
	Platform int `json:"platform"`
}

// RecoverResponse is the JSON reply of POST /recover: the platform's
// post-recovery state — "degraded" (half-open probation) when it was down
// or quarantined, "healthy" when it was degraded.
type RecoverResponse struct {
	Platform int    `json:"platform"`
	State    string `json:"state"`
}

// HealthResponse is the JSON reply of /healthz. FastScoring reports the
// scoring mode of the published snapshot: true when scores come from the
// approximate fast kernel (within its documented error bound), false for
// the exact bitwise path.
type HealthResponse struct {
	OK           bool    `json:"ok"`
	Version      uint64  `json:"version"`
	Observations int     `json:"observations"`
	Workloads    int     `json:"workloads"`
	Platforms    int     `json:"platforms"`
	Bounds       bool    `json:"bounds"`
	FastScoring  bool    `json:"fast_scoring"`
	// UptimeSeconds is the time since the server was constructed;
	// BuildVersion is the binary stamp injected at link time (cmd/serve
	// builds with -ldflags "-X main.buildVersion=...", default "dev").
	UptimeSeconds float64 `json:"uptime_seconds"`
	BuildVersion  string  `json:"build_version"`
	Metrics       Metrics `json:"metrics"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP surface of the serving daemon:
//
//	POST /estimate  — one query through the micro-batched estimate path
//	POST /bound     — one query through the micro-batched bound path
//	POST /observe   — feed measurements; publishes a new model snapshot
//	POST /place     — place a wave of deadline jobs (requires EnablePlacement)
//	POST /complete  — retire placed jobs, freeing colocation slots
//	POST /fail      — admin: fail a platform hard (orphans re-placed) or degrade it
//	POST /recover   — admin: re-admit a failed/quarantined platform (half-open)
//	GET  /healthz   — liveness, snapshot info, and serving metrics
//	GET  /metrics   — Prometheus plain-text exposition of the same counters
//	GET  /debug/trace?job=ID    — flight-recorder events for one job
//	GET  /debug/trace/recent    — the most recent flight-recorder events
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		s.handlePrediction(w, r, false)
	})
	mux.HandleFunc("/bound", func(w http.ResponseWriter, r *http.Request) {
		s.handlePrediction(w, r, true)
	})
	mux.HandleFunc("/observe", s.handleObserve)
	mux.HandleFunc("/place", s.handlePlace)
	mux.HandleFunc("/complete", s.handleComplete)
	mux.HandleFunc("/fail", s.handleFail)
	mux.HandleFunc("/recover", s.handleRecover)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/trace/recent", s.handleTraceRecent)
	return mux
}

// writeJSON encodes before touching the ResponseWriter, so an encoding
// failure (e.g. a non-finite float reaching a response struct) becomes an
// HTTP 500 instead of a 200 with an empty body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		body, _ = json.Marshal(errorResponse{Error: "encode response: " + err.Error()})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// validateQuery bounds-checks entity indices against the current snapshot
// before they reach the embedding tables.
func (s *Server) validateQuery(q pitot.Query) error {
	info := s.Info()
	if q.Workload < 0 || q.Workload >= info.Workloads {
		return fmt.Errorf("workload %d out of range [0,%d)", q.Workload, info.Workloads)
	}
	if q.Platform < 0 || q.Platform >= info.Platforms {
		return fmt.Errorf("platform %d out of range [0,%d)", q.Platform, info.Platforms)
	}
	for _, k := range q.Interferers {
		if k < 0 || k >= info.Workloads {
			return fmt.Errorf("interferer %d out of range [0,%d)", k, info.Workloads)
		}
	}
	return nil
}

func (s *Server) handlePrediction(w http.ResponseWriter, r *http.Request, bound bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	// End-to-end handler latency: decode + queue wait + flush + encode.
	h := s.hists.estimate
	if bound {
		h = s.hists.bound
	}
	start := time.Now()
	defer h.ObserveSince(start)
	var req EstimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	q := pitot.Query{Workload: req.Workload, Platform: req.Platform, Interferers: req.Interferers}
	if err := s.validateQuery(q); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var (
		sec float64
		err error
	)
	if bound {
		sec, err = s.Bound(r.Context(), q, req.Eps)
	} else {
		sec, err = s.Estimate(r.Context(), q)
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
			writeError(w, http.StatusRequestTimeout, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	resp := PredictionResponse{Seconds: sec, Version: s.Info().Version}
	if math.IsInf(sec, 1) {
		resp = PredictionResponse{Infeasible: true, Version: resp.Version}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Observations) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no observations"))
		return
	}
	if err := s.Observe(req.Observations); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ObserveResponse{
		Accepted: len(req.Observations),
		Version:  s.Info().Version,
	})
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.placer == nil {
		writeError(w, http.StatusServiceUnavailable, ErrPlacementDisabled)
		return
	}
	start := time.Now()
	defer s.hists.place.ObserveSince(start)
	var req PlaceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no jobs"))
		return
	}
	info := s.Info()
	jobs := make([]sched.Job, len(req.Jobs))
	for i, j := range req.Jobs {
		if j.Workload < 0 || j.Workload >= info.Workloads {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("job %d: workload %d out of range [0,%d)", i, j.Workload, info.Workloads))
			return
		}
		if !(j.Deadline > 0) || math.IsInf(j.Deadline, 1) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("job %d: deadline must be a finite positive number of seconds", i))
			return
		}
		jobs[i] = sched.Job{Workload: j.Workload, Deadline: j.Deadline}
	}
	as, err := s.PlaceJobs(jobs)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	resp := PlaceResponse{Assignments: make([]AssignmentJSON, len(as)), Version: s.Info().Version}
	for i, a := range as {
		resp.Assignments[i] = toAssignmentJSON(a)
		if a.Placed() {
			resp.Placed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.placer == nil {
		writeError(w, http.StatusServiceUnavailable, ErrPlacementDisabled)
		return
	}
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no ids"))
		return
	}
	ids := make([]sched.JobID, len(req.IDs))
	for i, id := range req.IDs {
		ids[i] = sched.JobID(id)
	}
	var missed []bool
	if len(req.Missed) > 0 {
		missedSet := make(map[uint64]struct{}, len(req.Missed))
		for _, id := range req.Missed {
			missedSet[id] = struct{}{}
		}
		missed = make([]bool, len(ids))
		for i, id := range req.IDs {
			_, missed[i] = missedSet[id]
		}
	}
	completed, unknown, stale, err := s.CompleteJobs(ids, missed)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	resp := CompleteResponse{Completed: completed}
	for _, id := range unknown {
		resp.Unknown = append(resp.Unknown, uint64(id))
	}
	for _, id := range stale {
		resp.Stale = append(resp.Stale, uint64(id))
	}
	// Bad IDs are a client-side bookkeeping error: flag the batch with a
	// 409 (the valid completions in it still took effect).
	status := http.StatusOK
	if len(resp.Unknown) > 0 || len(resp.Stale) > 0 {
		status = http.StatusConflict
	}
	writeJSON(w, status, resp)
}

// failStatus maps scheduler failure-event errors onto HTTP statuses.
func failStatus(err error) int {
	switch {
	case errors.Is(err, sched.ErrPlatformOutOfRange):
		return http.StatusBadRequest
	case errors.Is(err, sched.ErrPlatformUnavailable):
		return http.StatusConflict
	case errors.Is(err, ErrPlacementDisabled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.placer == nil {
		writeError(w, http.StatusServiceUnavailable, ErrPlacementDisabled)
		return
	}
	var req FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Degrade {
		if err := s.DegradePlatform(req.Platform); err != nil {
			writeError(w, failStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, FailResponse{
			Platform: req.Platform,
			State:    s.placer.Health(req.Platform).String(),
		})
		return
	}
	as, err := s.FailPlatform(req.Platform)
	if err != nil {
		writeError(w, failStatus(err), err)
		return
	}
	resp := FailResponse{
		Platform: req.Platform,
		State:    s.placer.Health(req.Platform).String(),
		Orphaned: len(as),
	}
	for _, a := range as {
		resp.Reassigned = append(resp.Reassigned, toAssignmentJSON(a))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.placer == nil {
		writeError(w, http.StatusServiceUnavailable, ErrPlacementDisabled)
		return
	}
	var req RecoverRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := s.RecoverPlatform(req.Platform); err != nil {
		writeError(w, failStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RecoverResponse{
		Platform: req.Platform,
		State:    s.placer.Health(req.Platform).String(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	info := s.Info()
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:            true,
		Version:       info.Version,
		Observations:  info.Observations,
		Workloads:     info.Workloads,
		Platforms:     info.Platforms,
		Bounds:        info.Bounds,
		FastScoring:   info.FastScoring,
		UptimeSeconds: time.Since(s.start).Seconds(),
		BuildVersion:  s.cfg.BuildVersion,
		Metrics:       s.Metrics(),
	})
}
