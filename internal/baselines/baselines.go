// Package baselines implements the three comparison methods of paper §5.3:
//
//   - MatrixFactorization: per-entity embeddings with no side information,
//     trained on isolation data only (Quasar/Paragon-style); it discards
//     interference observations and is interference-blind at prediction.
//   - NeuralNet: a feature-based MLP predicting log runtime, plus a second
//     MLP predicting a per-interferer log multiplier (Pham et al. /
//     Saeed et al. style).
//   - Attention: the NeuralNet base augmented with a single-headed
//     attention mechanism over the interferer set producing one combined
//     interference multiplier.
//
// All baselines are trained like Pitot (log domain, AdaMax, per-degree
// batches, best-validation checkpointing) to keep the comparison fair
// (App. B.4 "Common settings").
package baselines

import (
	"fmt"
	"math"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// TrainConfig holds the shared training schedule.
type TrainConfig struct {
	Seed           int64
	Steps          int
	BatchPerDegree int
	LR             float64
	EvalEvery      int
	Beta           float64 // interference objective weight (as in Pitot)
}

// DefaultTrainConfig mirrors core.DefaultConfig's schedule.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{Seed: seed, Steps: 2500, BatchPerDegree: 256, LR: 0.003, EvalEvery: 250, Beta: 0.5}
}

// runTraining is the shared optimization loop: stepLoss builds one
// stochastic loss graph; valLoss scores the current parameters. The best
// checkpoint by validation loss is restored at the end.
func runTraining(cfg TrainConfig, params []*autodiff.Value,
	stepLoss func() *autodiff.Value, valLoss func() float64) error {
	optimizer := opt.NewAdaMax(params, cfg.LR, 0, 0)
	bestVal := math.Inf(1)
	var best []*tensor.Matrix
	for step := 1; step <= cfg.Steps; step++ {
		l := stepLoss()
		if l == nil {
			return fmt.Errorf("baselines: no training batches")
		}
		l.Backward()
		optimizer.Step()
		optimizer.ZeroGrads()
		if step%cfg.EvalEvery == 0 || step == cfg.Steps {
			if vl := valLoss(); vl < bestVal {
				bestVal = vl
				best = nn.Snapshot(params)
			}
		}
	}
	if best != nil {
		nn.Restore(params, best)
	}
	return nil
}

// standardize z-scores feature columns (constant columns become zero).
func standardize(m *tensor.Matrix) *tensor.Matrix {
	out := m.Clone()
	for j := 0; j < m.Cols; j++ {
		var sum, sq float64
		for i := 0; i < m.Rows; i++ {
			v := m.At(i, j)
			sum += v
			sq += v * v
		}
		n := float64(m.Rows)
		mean := sum / n
		va := sq/n - mean*mean
		if va < 1e-12 {
			for i := 0; i < m.Rows; i++ {
				out.Set(i, j, 0)
			}
			continue
		}
		inv := 1 / math.Sqrt(va)
		for i := 0; i < m.Rows; i++ {
			out.Set(i, j, (m.At(i, j)-mean)*inv)
		}
	}
	return out
}

// logTargets extracts log runtimes for a batch.
func logTargets(d *dataset.Dataset, idx []int) *tensor.Matrix {
	t := tensor.New(len(idx), 1)
	for i, oi := range idx {
		t.Data[i] = d.Obs[oi].LogSeconds()
	}
	return t
}

// chunkIndices splits idx into chunks of at most n.
func chunkIndices(idx []int, n int) [][]int {
	var out [][]int
	for lo := 0; lo < len(idx); lo += n {
		hi := lo + n
		if hi > len(idx) {
			hi = len(idx)
		}
		out = append(out, idx[lo:hi])
	}
	return out
}
