package baselines

import (
	"math"
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MatrixFactorization predicts log C_ij = w_iᵀ p_j from learned per-entity
// embeddings, with no side information, residual baseline, or interference
// modeling (paper §5.3 "Matrix Factorization"). Observations with
// interference are discarded during training, and interferers are ignored
// at prediction time.
type MatrixFactorization struct {
	Cfg TrainConfig
	Dim int

	w, p *nn.Embedding
	data *dataset.Dataset
}

// NewMatrixFactorization creates the baseline with factorization rank dim
// (the paper uses r=32, matching Pitot).
func NewMatrixFactorization(cfg TrainConfig, dim int) *MatrixFactorization {
	return &MatrixFactorization{Cfg: cfg, Dim: dim}
}

// Train fits the embeddings on the isolation observations of split.Train.
func (m *MatrixFactorization) Train(d *dataset.Dataset, split dataset.Split) error {
	m.data = d
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	m.w = nn.NewEmbedding(rng, d.NumWorkloads(), m.Dim, 0.3)
	m.p = nn.NewEmbedding(rng, d.NumPlatforms(), m.Dim, 0.3)
	params := append(m.w.Params(), m.p.Params()...)

	iso := func(idx []int) []int {
		var out []int
		for _, i := range idx {
			if d.Obs[i].Degree() == 0 {
				out = append(out, i)
			}
		}
		return out
	}
	train, val := iso(split.Train), iso(split.Val)
	if len(train) == 0 {
		return errNoIsolation
	}
	batchRng := rand.New(rand.NewSource(m.Cfg.Seed + 1))

	lossOn := func(idx []int) *autodiff.Value {
		wi := make([]int, len(idx))
		pj := make([]int, len(idx))
		for i, oi := range idx {
			wi[i] = d.Obs[oi].Workload
			pj[i] = d.Obs[oi].Platform
		}
		pred := autodiff.RowSum(autodiff.Mul(m.w.Lookup(wi), m.p.Lookup(pj)))
		return autodiff.MSE(pred, logTargets(d, idx))
	}
	step := func() *autodiff.Value {
		idx := make([]int, m.Cfg.BatchPerDegree)
		for i := range idx {
			idx[i] = train[batchRng.Intn(len(train))]
		}
		return lossOn(idx)
	}
	valLoss := func() float64 {
		if len(val) == 0 {
			return math.Inf(1)
		}
		var sum float64
		var n int
		for _, c := range chunkIndices(val, 4096) {
			sum += lossOn(c).Scalar() * float64(len(c))
			n += len(c)
		}
		return sum / float64(n)
	}
	return runTraining(m.Cfg, params, step, valLoss)
}

// PredictLogObs returns log-runtime predictions for dataset observations;
// interferers are ignored (the model is interference-blind). head must be 0.
func (m *MatrixFactorization) PredictLogObs(idx []int, head int) []float64 {
	out := make([]float64, len(idx))
	for i, oi := range idx {
		o := m.data.Obs[oi]
		out[i] = dotRows(m.w.Table.Data, o.Workload, m.p.Table.Data, o.Platform)
	}
	return out
}

// NumHeads returns 1: a single mean head.
func (m *MatrixFactorization) NumHeads() int { return 1 }

// Quantiles returns nil: this is not a quantile model.
func (m *MatrixFactorization) Quantiles() []float64 { return nil }

func dotRows(a *tensor.Matrix, i int, b *tensor.Matrix, j int) float64 {
	ra, rb := a.Row(i), b.Row(j)
	var s float64
	for k, v := range ra {
		s += v * rb[k]
	}
	return s
}
