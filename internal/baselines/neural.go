package baselines

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

var errNoIsolation = errors.New("baselines: no isolation observations in training split")

// NeuralNet is the paper's "Neural Network" baseline (App. B.4): a base MLP
// over concatenated workload+platform features predicting an
// interference-blind log runtime, and an interference MLP over (current
// workload, interfering workload, platform) features predicting a log
// multiplier applied per interferer.
type NeuralNet struct {
	Cfg    TrainConfig
	Hidden int

	base, interf *nn.MLP
	xw, xp       *tensor.Matrix
	data         *dataset.Dataset
}

// NewNeuralNet creates the baseline; the paper uses hidden layers of 256
// units (twice Pitot's width).
func NewNeuralNet(cfg TrainConfig, hidden int) *NeuralNet {
	return &NeuralNet{Cfg: cfg, Hidden: hidden}
}

// Train fits both networks on split.Train with per-degree batches.
func (m *NeuralNet) Train(d *dataset.Dataset, split dataset.Split) error {
	m.data = d
	m.xw = standardize(d.WorkloadFeatures)
	m.xp = standardize(d.PlatformFeatures)
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	dw, dp := m.xw.Cols, m.xp.Cols
	m.base = nn.NewMLP(rng, nn.ActGELU, dw+dp, m.Hidden, m.Hidden, 1)
	m.interf = nn.NewMLP(rng, nn.ActGELU, 2*dw+dp, m.Hidden, m.Hidden, 1)
	params := append(m.base.Params(), m.interf.Params()...)

	batchRng := rand.New(rand.NewSource(m.Cfg.Seed + 1))
	batcher := dataset.NewBatcher(batchRng, d, split.Train)

	step := func() *autodiff.Value {
		var total *autodiff.Value
		var wsum float64
		for _, deg := range batcher.Degrees {
			idx := batcher.Sample(deg, m.Cfg.BatchPerDegree)
			if idx == nil {
				continue
			}
			weight := 1.0
			if deg > 0 {
				weight = m.Cfg.Beta / 3
			}
			l := autodiff.Scale(m.lossOn(idx), weight)
			wsum += weight
			if total == nil {
				total = l
			} else {
				total = autodiff.Add(total, l)
			}
		}
		if total == nil {
			return nil
		}
		return autodiff.Scale(total, 1/wsum)
	}
	valLoss := func() float64 { return m.chunkedLoss(split.Val) }
	return runTraining(m.Cfg, params, step, valLoss)
}

// predictGraph builds predictions for same-degree observations.
func (m *NeuralNet) predictGraph(idx []int) *autodiff.Value {
	d := m.data
	xwC := autodiff.NewConst(m.xw)
	xpC := autodiff.NewConst(m.xp)
	wi := make([]int, len(idx))
	pj := make([]int, len(idx))
	deg := d.Obs[idx[0]].Degree()
	for i, oi := range idx {
		wi[i] = d.Obs[oi].Workload
		pj[i] = d.Obs[oi].Platform
	}
	fw := autodiff.Gather(xwC, wi)
	fp := autodiff.Gather(xpC, pj)
	pred := m.base.Forward(autodiff.ConcatCols(fw, fp))
	for mi := 0; mi < deg; mi++ {
		ks := make([]int, len(idx))
		for i, oi := range idx {
			ks[i] = d.Obs[oi].Interferers[mi]
		}
		fk := autodiff.Gather(xwC, ks)
		mult := m.interf.Forward(autodiff.ConcatCols(autodiff.ConcatCols(fw, fk), fp))
		pred = autodiff.Add(pred, mult)
	}
	return pred
}

func (m *NeuralNet) lossOn(idx []int) *autodiff.Value {
	return autodiff.MSE(m.predictGraph(idx), logTargets(m.data, idx))
}

// chunkedLoss evaluates the degree-weighted loss over arbitrary indices.
func (m *NeuralNet) chunkedLoss(idx []int) float64 {
	return degreeWeightedLoss(m.data, idx, m.Cfg.Beta, m.lossOn)
}

// PredictLogObs returns log-runtime predictions for dataset observations.
func (m *NeuralNet) PredictLogObs(idx []int, head int) []float64 {
	return batchPredict(m.data, idx, m.predictGraph)
}

// NumHeads returns 1.
func (m *NeuralNet) NumHeads() int { return 1 }

// Quantiles returns nil.
func (m *NeuralNet) Quantiles() []float64 { return nil }

// degreeWeightedLoss mirrors the training weighting across degree pools.
func degreeWeightedLoss(d *dataset.Dataset, idx []int, beta float64,
	lossOn func([]int) *autodiff.Value) float64 {
	if len(idx) == 0 {
		return math.Inf(1)
	}
	pools, degrees := dataset.ByDegree(d, idx)
	var total, wsum float64
	for _, deg := range degrees {
		weight := 1.0
		if deg > 0 {
			weight = beta / 3
		}
		var sum float64
		var n int
		for _, c := range chunkIndices(pools[deg], 2048) {
			sum += lossOn(c).Scalar() * float64(len(c))
			n += len(c)
		}
		total += weight * sum / float64(n)
		wsum += weight
	}
	return total / wsum
}

// batchPredict evaluates a same-degree prediction graph over mixed-degree
// indices by grouping, preserving input order in the output.
func batchPredict(d *dataset.Dataset, idx []int, graph func([]int) *autodiff.Value) []float64 {
	out := make([]float64, len(idx))
	pos := map[int]int{}
	for i, oi := range idx {
		pos[oi] = i
	}
	pools, degrees := dataset.ByDegree(d, idx)
	for _, deg := range degrees {
		for _, c := range chunkIndices(pools[deg], 2048) {
			pred := graph(c)
			for i, oi := range c {
				out[pos[oi]] = pred.Data.At(i, 0)
			}
		}
	}
	return out
}
