package baselines

import (
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Attention is the paper's strongest baseline (App. B.4): the NeuralNet
// base network additionally emits a query vector; a key/value network
// embeds each interfering workload; attention weights over the interferer
// set produce a combined context vector, and an output head predicts a
// single log interference multiplier.
type Attention struct {
	Cfg       TrainConfig
	Hidden    int
	KDim      int // key/query/value dimension (paper tuned: 8)
	OutHidden int // output head hidden width (paper tuned: 32)

	base *nn.MLP // [xw|xp] -> 1 + KDim (base log runtime, query)
	kv   *nn.MLP // [xw_k|xp] -> 2*KDim (key, value)
	out  *nn.MLP // KDim -> OutHidden -> 1

	xw, xp *tensor.Matrix
	data   *dataset.Dataset
}

// NewAttention creates the baseline with the paper's tuned dimensions.
func NewAttention(cfg TrainConfig, hidden int) *Attention {
	return &Attention{Cfg: cfg, Hidden: hidden, KDim: 8, OutHidden: 32}
}

// Train fits all three networks on split.Train.
func (m *Attention) Train(d *dataset.Dataset, split dataset.Split) error {
	m.data = d
	m.xw = standardize(d.WorkloadFeatures)
	m.xp = standardize(d.PlatformFeatures)
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	dw, dp := m.xw.Cols, m.xp.Cols
	m.base = nn.NewMLP(rng, nn.ActGELU, dw+dp, m.Hidden, m.Hidden, 1+m.KDim)
	m.kv = nn.NewMLP(rng, nn.ActGELU, dw+dp, m.Hidden, m.Hidden, 2*m.KDim)
	m.out = nn.NewMLP(rng, nn.ActGELU, m.KDim, m.OutHidden, 1)
	var params []*autodiff.Value
	params = append(params, m.base.Params()...)
	params = append(params, m.kv.Params()...)
	params = append(params, m.out.Params()...)

	batchRng := rand.New(rand.NewSource(m.Cfg.Seed + 1))
	batcher := dataset.NewBatcher(batchRng, d, split.Train)
	step := func() *autodiff.Value {
		var total *autodiff.Value
		var wsum float64
		for _, deg := range batcher.Degrees {
			idx := batcher.Sample(deg, m.Cfg.BatchPerDegree)
			if idx == nil {
				continue
			}
			weight := 1.0
			if deg > 0 {
				weight = m.Cfg.Beta / 3
			}
			l := autodiff.Scale(m.lossOn(idx), weight)
			wsum += weight
			if total == nil {
				total = l
			} else {
				total = autodiff.Add(total, l)
			}
		}
		if total == nil {
			return nil
		}
		return autodiff.Scale(total, 1/wsum)
	}
	valLoss := func() float64 {
		return degreeWeightedLoss(m.data, split.Val, m.Cfg.Beta, m.lossOn)
	}
	return runTraining(m.Cfg, params, step, valLoss)
}

// predictGraph builds predictions for same-degree observations.
func (m *Attention) predictGraph(idx []int) *autodiff.Value {
	d := m.data
	xwC := autodiff.NewConst(m.xw)
	xpC := autodiff.NewConst(m.xp)
	wi := make([]int, len(idx))
	pj := make([]int, len(idx))
	deg := d.Obs[idx[0]].Degree()
	for i, oi := range idx {
		wi[i] = d.Obs[oi].Workload
		pj[i] = d.Obs[oi].Platform
	}
	fw := autodiff.Gather(xwC, wi)
	fp := autodiff.Gather(xpC, pj)
	baseOut := m.base.Forward(autodiff.ConcatCols(fw, fp))
	pred := autodiff.SliceCols(baseOut, 0, 1)
	if deg == 0 {
		return pred
	}
	query := autodiff.SliceCols(baseOut, 1, 1+m.KDim)
	// Per-interferer keys/values and attention logits.
	logits := make([]*autodiff.Value, deg)
	values := make([]*autodiff.Value, deg)
	for mi := 0; mi < deg; mi++ {
		ks := make([]int, len(idx))
		for i, oi := range idx {
			ks[i] = d.Obs[oi].Interferers[mi]
		}
		fk := autodiff.Gather(xwC, ks)
		kvOut := m.kv.Forward(autodiff.ConcatCols(fk, fp))
		key := autodiff.SliceCols(kvOut, 0, m.KDim)
		values[mi] = autodiff.SliceCols(kvOut, m.KDim, 2*m.KDim)
		logits[mi] = autodiff.RowSum(autodiff.Mul(query, key))
	}
	// Softmax across the interferer axis.
	allLogits := logits[0]
	for mi := 1; mi < deg; mi++ {
		allLogits = autodiff.ConcatCols(allLogits, logits[mi])
	}
	attn := autodiff.Softmax(allLogits) // B x deg
	var context *autodiff.Value
	for mi := 0; mi < deg; mi++ {
		wcol := autodiff.SliceCols(attn, mi, mi+1) // B x 1
		// Broadcast the weight across the value dimension.
		wide := wcol
		for k := 1; k < m.KDim; k++ {
			wide = autodiff.ConcatCols(wide, wcol)
		}
		weighted := autodiff.Mul(wide, values[mi])
		if context == nil {
			context = weighted
		} else {
			context = autodiff.Add(context, weighted)
		}
	}
	return autodiff.Add(pred, m.out.Forward(context))
}

func (m *Attention) lossOn(idx []int) *autodiff.Value {
	return autodiff.MSE(m.predictGraph(idx), logTargets(m.data, idx))
}

// PredictLogObs returns log-runtime predictions for dataset observations.
func (m *Attention) PredictLogObs(idx []int, head int) []float64 {
	return batchPredict(m.data, idx, m.predictGraph)
}

// NumHeads returns 1.
func (m *Attention) NumHeads() int { return 1 }

// Quantiles returns nil.
func (m *Attention) Quantiles() []float64 { return nil }
