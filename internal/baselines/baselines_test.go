package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/wasmcluster"
)

func testData(t testing.TB) (*dataset.Dataset, dataset.Split) {
	t.Helper()
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: 99, NumWorkloads: 24, MaxDevices: 4, SetsPerDegree: 10,
	}).Generate()
	rng := rand.New(rand.NewSource(1))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	split.EnsureCoverage(ds)
	return ds, split
}

func smallCfg(seed int64) TrainConfig {
	cfg := DefaultTrainConfig(seed)
	cfg.Steps = 300
	cfg.BatchPerDegree = 128
	cfg.EvalEvery = 100
	return cfg
}

// mape computes mean absolute percent error over observation indices.
func mape(d *dataset.Dataset, idx []int, pred []float64) float64 {
	var s float64
	for i, oi := range idx {
		c := d.Obs[oi].Seconds
		s += math.Abs(math.Exp(pred[i])-c) / c
	}
	return s / float64(len(idx))
}

func TestMatrixFactorizationLearns(t *testing.T) {
	ds, split := testData(t)
	cfg := smallCfg(2)
	cfg.Steps = 800
	m := NewMatrixFactorization(cfg, 16)
	if err := m.Train(ds, split); err != nil {
		t.Fatal(err)
	}
	var iso []int
	for _, i := range split.Test {
		if ds.Obs[i].Degree() == 0 {
			iso = append(iso, i)
		}
	}
	pred := m.PredictLogObs(iso, 0)
	e := mape(ds, iso, pred)
	// MF without features is data-hungry and the paper reports >75% error
	// in most regimes (Fig. 9b); just require it to be in a sane range
	// rather than diverging.
	if e > 4.0 {
		t.Fatalf("MF isolation MAPE %.2f implausibly high", e)
	}
	if math.IsNaN(e) {
		t.Fatal("NaN predictions")
	}
}

func TestMFIsInterferenceBlind(t *testing.T) {
	ds, split := testData(t)
	m := NewMatrixFactorization(smallCfg(3), 8)
	if err := m.Train(ds, split); err != nil {
		t.Fatal(err)
	}
	// Find two observations with the same (w,p) but different interference.
	type key struct{ w, p int }
	byPair := map[key][]int{}
	for i, o := range ds.Obs {
		byPair[key{o.Workload, o.Platform}] = append(byPair[key{o.Workload, o.Platform}], i)
	}
	for _, idx := range byPair {
		if len(idx) < 2 {
			continue
		}
		pred := m.PredictLogObs(idx[:2], 0)
		if pred[0] != pred[1] {
			t.Fatal("MF prediction depends on interference")
		}
		return
	}
	t.Skip("no repeated pair found")
}

func TestNeuralNetLearnsAndUsesInterference(t *testing.T) {
	ds, split := testData(t)
	m := NewNeuralNet(smallCfg(4), 32)
	if err := m.Train(ds, split); err != nil {
		t.Fatal(err)
	}
	pred := m.PredictLogObs(split.Test, 0)
	if e := mape(ds, split.Test, pred); e > 1.5 || math.IsNaN(e) {
		t.Fatalf("NN MAPE %.3f", e)
	}
	// Interference must change the prediction: compare one interference
	// observation against its isolation counterpart prediction.
	var isoIdx, intIdx int = -1, -1
	for i, o := range ds.Obs {
		if o.Degree() == 0 && isoIdx < 0 {
			isoIdx = i
		}
		if o.Degree() == 2 && intIdx < 0 {
			intIdx = i
		}
	}
	if isoIdx < 0 || intIdx < 0 {
		t.Skip("missing degrees")
	}
	o := ds.Obs[intIdx]
	pInt := m.PredictLogObs([]int{intIdx}, 0)[0]
	// Same pair without interference via a synthetic isolation obs: reuse
	// the base net by finding an isolation obs with the same pair if any.
	found := false
	for i, q := range ds.Obs {
		if q.Degree() == 0 && q.Workload == o.Workload && q.Platform == o.Platform {
			pIso := m.PredictLogObs([]int{i}, 0)[0]
			if pIso == pInt {
				t.Fatal("NN interference multiplier has no effect")
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no matching isolation observation")
	}
}

func TestAttentionLearns(t *testing.T) {
	ds, split := testData(t)
	m := NewAttention(smallCfg(5), 32)
	if err := m.Train(ds, split); err != nil {
		t.Fatal(err)
	}
	pred := m.PredictLogObs(split.Test, 0)
	if e := mape(ds, split.Test, pred); e > 1.5 || math.IsNaN(e) {
		t.Fatalf("attention MAPE %.3f", e)
	}
}

func TestBaselineInterfaceContract(t *testing.T) {
	ds, split := testData(t)
	models := []interface {
		Train(*dataset.Dataset, dataset.Split) error
		PredictLogObs([]int, int) []float64
		NumHeads() int
		Quantiles() []float64
	}{
		NewMatrixFactorization(smallCfg(6), 8),
		NewNeuralNet(smallCfg(6), 16),
		NewAttention(smallCfg(6), 16),
	}
	for _, m := range models {
		cfgd := m
		if err := cfgd.Train(ds, split); err != nil {
			t.Fatal(err)
		}
		if cfgd.NumHeads() != 1 || cfgd.Quantiles() != nil {
			t.Fatal("baseline head contract violated")
		}
		out := cfgd.PredictLogObs(split.Test[:5], 0)
		if len(out) != 5 {
			t.Fatal("wrong prediction count")
		}
	}
}

func TestPredictionOrderPreserved(t *testing.T) {
	// batchPredict groups by degree internally; output order must match
	// the input index order.
	ds, split := testData(t)
	m := NewNeuralNet(smallCfg(7), 16)
	cfg := m.Cfg
	cfg.Steps = 50
	m.Cfg = cfg
	if err := m.Train(ds, split); err != nil {
		t.Fatal(err)
	}
	idx := split.Test[:20]
	all := m.PredictLogObs(idx, 0)
	for i, oi := range idx {
		single := m.PredictLogObs([]int{oi}, 0)[0]
		if math.Abs(single-all[i]) > 1e-10 {
			t.Fatalf("order not preserved at %d: %v vs %v", i, single, all[i])
		}
	}
}

func TestStandardize(t *testing.T) {
	m := wasmcluster.New(wasmcluster.Config{Seed: 1}).Generate().WorkloadFeatures
	s := standardize(m)
	for j := 0; j < s.Cols; j++ {
		var sum, sq float64
		for i := 0; i < s.Rows; i++ {
			sum += s.At(i, j)
			sq += s.At(i, j) * s.At(i, j)
		}
		n := float64(s.Rows)
		mean := sum / n
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean %v", j, mean)
		}
		va := sq/n - mean*mean
		if va > 1e-9 && math.Abs(va-1) > 1e-6 {
			t.Fatalf("col %d variance %v", j, va)
		}
	}
}
