package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// relErr returns |got−want|/max(|want|, tiny), tolerating want == 0.
func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if d == 0 {
		return 0
	}
	den := math.Abs(want)
	if den < math.SmallestNonzeroFloat64 {
		return math.Inf(1)
	}
	return d / den
}

// ExpFast must stay within its documented relative-error bound against
// math.Exp over a dense sweep of the reduced range, and behave exactly
// like math.Exp on every special value and outside the guarded range.
func TestExpFastErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var worst float64
	check := func(x float64) {
		re := relErr(ExpFast(x), math.Exp(x))
		if re > worst {
			worst = re
		}
		if re > FastExpMaxRelErr {
			t.Fatalf("ExpFast(%v) rel err %.3e exceeds bound %.1e", x, re, FastExpMaxRelErr)
		}
	}
	// Dense grid over the guarded range plus random fill, with extra
	// density around the scheduler's working range of log-runtimes.
	for x := -708.0; x <= 708.0; x += 0.01 {
		check(x)
	}
	for i := 0; i < 200000; i++ {
		check(rng.Float64()*1416 - 708)
		check(rng.NormFloat64() * 8) // typical log-seconds magnitudes
	}
	t.Logf("worst relative error %.3e (bound %.1e)", worst, FastExpMaxRelErr)

	// Exactness at zero and identity with math.Exp off the fast path.
	if ExpFast(0) != 1 {
		t.Fatalf("ExpFast(0) = %v, want exactly 1", ExpFast(0))
	}
	for _, x := range []float64{
		math.Inf(1), math.Inf(-1), math.NaN(),
		709, 710, 1000, -709, -745, -1000, // overflow and subnormal tails
		math.MaxFloat64, -math.MaxFloat64,
	} {
		got, want := ExpFast(x), math.Exp(x)
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("ExpFast(NaN) = %v, want NaN", got)
			}
			continue
		}
		if got != want {
			t.Fatalf("ExpFast(%v) = %v, want math.Exp's %v", x, got, want)
		}
	}
}

// fastTestModels trains a rank-32 (mean, quantile) pair — the paired
// configuration the fast kernel targets — at test-sized step counts.
func fastTestModels(t *testing.T, mutate func(*Config)) (*Model, *Model, *dataset.Dataset) {
	t.Helper()
	ds := testData(t)
	cfg := DefaultConfig(5)
	cfg.Hidden = 32
	cfg.Steps = 50
	cfg.BatchPerDegree = 128
	cfg.EvalEvery = 25
	if mutate != nil {
		mutate(&cfg)
	}
	split := dataset.NewSplit(rand.New(rand.NewSource(6)), len(ds.Obs), 0.7)
	mean, err := NewModel(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mean.Train(split); err != nil {
		t.Fatal(err)
	}
	qcfg := cfg
	qcfg.Quantiles = []float64{0.5, 0.9}
	qcfg.Seed = cfg.Seed + 1
	quant, err := NewModel(qcfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quant.Train(split); err != nil {
		t.Fatal(err)
	}
	return mean, quant, ds
}

// fastTestQueries builds a platform-major scan with mixed interferer
// degrees — the scheduler's wave shape, including empty interferer sets
// and span boundaries.
func fastTestQueries(ds *dataset.Dataset) []Query {
	var qs []Query
	for p := 0; p < ds.NumPlatforms(); p++ {
		var ks []int
		switch p % 3 {
		case 1:
			ks = []int{p % ds.NumWorkloads()}
		case 2:
			ks = []int{p % ds.NumWorkloads(), (p + 3) % ds.NumWorkloads()}
		}
		for w := 0; w < ds.NumWorkloads(); w++ {
			qs = append(qs, Query{Workload: w, Platform: p, Interferers: ks})
		}
	}
	return qs
}

func testBoundOffset(degree int) float64 {
	if degree >= 2 {
		return math.Inf(1) // exercise the infeasible (+Inf bound) path
	}
	return 0.05 * float64(degree+1)
}

// The fast kernel must agree with the exact kernel within the documented
// relative-error bound on every query, including +Inf conformal offsets.
func TestFastFusedMatchesExactWithinBound(t *testing.T) {
	mean, quant, ds := fastTestModels(t, nil)
	qs := fastTestQueries(ds)
	n := len(qs)
	em, eb := make([]float64, n), make([]float64, n)
	fm, fb := make([]float64, n), make([]float64, n)
	PredictFusedBatch(mean, quant, qs, 1, testBoundOffset, em, eb)
	PredictFusedBatchFast(mean, quant, qs, 1, testBoundOffset, fm, fb)
	var worstM, worstB float64
	for i := range qs {
		if math.IsInf(eb[i], 1) {
			if !math.IsInf(fb[i], 1) {
				t.Fatalf("query %d: exact bound +Inf but fast bound %v", i, fb[i])
			}
		} else if re := relErr(fb[i], eb[i]); re > FastScoreMaxRelErr {
			t.Fatalf("query %d: bound rel err %.3e exceeds %.1e", i, re, FastScoreMaxRelErr)
		} else if re > worstB {
			worstB = re
		}
		if re := relErr(fm[i], em[i]); re > FastScoreMaxRelErr {
			t.Fatalf("query %d: mean rel err %.3e exceeds %.1e", i, re, FastScoreMaxRelErr)
		} else if re > worstM {
			worstM = re
		}
	}
	t.Logf("worst relative error: mean %.3e, bound %.3e (bound %.1e)", worstM, worstB, FastScoreMaxRelErr)
}

// With FastScoringF32 the mean head loosens to the float32 bound; the
// feasibility/bound head must stay float64-tight.
func TestFastFusedF32WithinBound(t *testing.T) {
	mean, quant, ds := fastTestModels(t, func(c *Config) { c.FastScoringF32 = true })
	qs := fastTestQueries(ds)
	n := len(qs)
	em, eb := make([]float64, n), make([]float64, n)
	fm, fb := make([]float64, n), make([]float64, n)
	PredictFusedBatch(mean, quant, qs, 0, testBoundOffset, em, eb)
	PredictFusedBatchFast(mean, quant, qs, 0, testBoundOffset, fm, fb)
	var worstM float64
	for i := range qs {
		if re := relErr(fm[i], em[i]); re > FastF32MaxRelErr {
			t.Fatalf("query %d: f32 mean rel err %.3e exceeds %.1e", i, re, FastF32MaxRelErr)
		} else if re > worstM {
			worstM = re
		}
		if !math.IsInf(eb[i], 1) {
			if re := relErr(fb[i], eb[i]); re > FastScoreMaxRelErr {
				t.Fatalf("query %d: bound head must stay float64-tight, rel err %.3e", i, re)
			}
		}
	}
	t.Logf("worst f32 mean relative error %.3e (bound %.1e)", worstM, FastF32MaxRelErr)
}

// Non-paired configurations (here: rank 16) must fall through to the
// exact kernel bitwise.
func TestFastFusedFallbackNonPaired(t *testing.T) {
	mean, quant, ds := fastTestModels(t, func(c *Config) { c.EmbeddingDim = 16 })
	qs := fastTestQueries(ds)
	n := len(qs)
	em, eb := make([]float64, n), make([]float64, n)
	fm, fb := make([]float64, n), make([]float64, n)
	PredictFusedBatch(mean, quant, qs, 0, testBoundOffset, em, eb)
	PredictFusedBatchFast(mean, quant, qs, 0, testBoundOffset, fm, fb)
	for i := range qs {
		if em[i] != fm[i] || eb[i] != fb[i] {
			t.Fatalf("query %d: non-paired fast path not bitwise exact: mean %v vs %v, bound %v vs %v",
				i, em[i], fm[i], eb[i], fb[i])
		}
	}
}

// The pure-Go fallback kernels must satisfy the same bound as the vector
// kernels: force the scalar path and re-run the fused comparison. On
// machines without AVX2 this duplicates the main test, which is fine.
func TestFastFusedScalarFallbackWithinBound(t *testing.T) {
	saved := useFastVec
	useFastVec = false
	defer func() { useFastVec = saved }()
	mean, quant, ds := fastTestModels(t, nil)
	qs := fastTestQueries(ds)
	n := len(qs)
	em, eb := make([]float64, n), make([]float64, n)
	fm, fb := make([]float64, n), make([]float64, n)
	PredictFusedBatch(mean, quant, qs, 1, testBoundOffset, em, eb)
	PredictFusedBatchFast(mean, quant, qs, 1, testBoundOffset, fm, fb)
	for i := range qs {
		if math.IsInf(eb[i], 1) {
			if !math.IsInf(fb[i], 1) {
				t.Fatalf("query %d: exact bound +Inf but fast bound %v", i, fb[i])
			}
		} else if re := relErr(fb[i], eb[i]); re > FastScoreMaxRelErr {
			t.Fatalf("query %d: scalar bound rel err %.3e exceeds %.1e", i, re, FastScoreMaxRelErr)
		}
		if re := relErr(fm[i], em[i]); re > FastScoreMaxRelErr {
			t.Fatalf("query %d: scalar mean rel err %.3e exceeds %.1e", i, re, FastScoreMaxRelErr)
		}
	}
}

// expSpan must stay within the exp bound on every lane arrangement the
// span loop produces: vector-width groups, ragged tails, values outside
// the guard (+Inf offsets, NaN) at any position, and the scalar fallback.
func TestExpSpanMatchesExpWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	check := func(src []float64) {
		t.Helper()
		got := append([]float64(nil), src...)
		expSpan(got)
		for i, x := range src {
			want := math.Exp(x)
			if math.IsNaN(want) {
				if !math.IsNaN(got[i]) {
					t.Fatalf("lane %d: exp(NaN) = %v, want NaN", i, got[i])
				}
				continue
			}
			if re := relErr(got[i], want); re > FastExpMaxRelErr {
				t.Fatalf("lane %d: expSpan(%v) = %v rel err %.3e exceeds %.1e", i, x, got[i], want, FastExpMaxRelErr)
			}
		}
	}
	for n := 0; n <= 9; n++ { // widths around the vector boundary
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
		}
		check(xs)
	}
	// Unguarded lanes at every position of a two-group span.
	for pos := 0; pos < 8; pos++ {
		for _, bad := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), 709, -745} {
			xs := make([]float64, 8)
			for i := range xs {
				xs[i] = rng.NormFloat64() * 3
			}
			xs[pos] = bad
			check(xs)
		}
	}
	// Whole-span infeasibility: all +Inf, the conformal-offset case.
	inf := make([]float64, 12)
	for i := range inf {
		inf[i] = math.Inf(1)
	}
	check(inf)
	if !useFastVec {
		t.Log("vector kernels unavailable; exercised scalar path only")
	}
}
