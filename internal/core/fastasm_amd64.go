//go:build amd64 && gc && !purego

package core

import "unsafe"

// The span kernels in fastasm_amd64.s read Query.Workload at offset 0 and
// advance by the struct size; both break loudly here if the layout moves.
var (
	_ [unsafe.Sizeof(Query{}) - 40]byte
	_ [40 - unsafe.Sizeof(Query{})]byte
	_ [0 - unsafe.Offsetof(Query{}.Workload)]byte
)

// useFastVec gates the AVX2+FMA span kernels. Runtime-detected so the
// same binary runs everywhere; the pure-Go blocked kernels take over when
// the CPU (or OS ymm state) can't. Variable, not constant, so tests can
// force the fallback path on capable machines.
var useFastVec = detectFastVec()

func detectFastVec() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	_, _, c, _ := cpuid(1, 0)
	if c&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	// OS must save/restore xmm+ymm state (XCR0 bits 1 and 2).
	if eax, _ := xgetbv(); eax&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

// dotSpanAVX2 adds base[qs[i].Workload*stride : +32]·peff into out[i] for
// each of the n queries. peff must hold ≥ 32 elements; out arrives with
// the baseline sums already in place.
//
//go:noescape
func dotSpanAVX2(base *float64, stride int, qs *Query, n int, peff *float64, out *float64)

// dot32PairAVX2 computes both models' rank-32 dots (a1·b1, a2·b2) in one
// call. All four pointers must address ≥ 32 float64s.
//
//go:noescape
func dot32PairAVX2(a1, b1, a2, b2 *float64) (s, t float64)

// foldAxpyPairAVX2 applies the interference fold's rank-32 update for
// both models: peffM += magM·vsM, peffQ += magQ·vsQ (32 float64s each).
//
//go:noescape
func foldAxpyPairAVX2(peffM, vsM *float64, magM float64, peffQ, vsQ *float64, magQ float64)

// expSpanAVX2 exponentiates in place, four lanes per iteration, the
// longest prefix of v[0:n] whose lanes all pass ExpFast's |x| ≤ 708
// guard, and returns how many elements it wrote (a multiple of 4). The
// expSpan wrapper finishes the rest — tail and unguarded values — with
// the scalar kernel.
//
//go:noescape
func expSpanAVX2(v *float64, n int) (done int)
