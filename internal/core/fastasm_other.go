//go:build !amd64 || !gc || purego

package core

// Non-amd64 (or purego) builds always take the pure-Go blocked kernels.
// A variable (matching the amd64 build) so shared tests can save/restore it.
var useFastVec = false

func dotSpanAVX2(base *float64, stride int, qs *Query, n int, peff *float64, out *float64) {
	panic("core: dotSpanAVX2 without vector support")
}

func dot32PairAVX2(a1, b1, a2, b2 *float64) (s, t float64) {
	panic("core: dot32PairAVX2 without vector support")
}

func foldAxpyPairAVX2(peffM, vsM *float64, magM float64, peffQ, vsQ *float64, magQ float64) {
	panic("core: foldAxpyPairAVX2 without vector support")
}

func expSpanAVX2(v *float64, n int) (done int) {
	panic("core: expSpanAVX2 without vector support")
}
