package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// A model file whose parameter payload or baseline disagrees with its
// declared shape must fail Load with an error, not panic — model files
// reach Load from disk and from the serving wire (LoadPredictor).
func TestLoadRejectsCorruptPayload(t *testing.T) {
	ds := testData(t)
	m, err := NewModel(smallConfig(8), ds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	decode := func() modelFile {
		var mf modelFile
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&mf); err != nil {
			t.Fatal(err)
		}
		return mf
	}
	reload := func(mf modelFile) error {
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(&mf); err != nil {
			t.Fatal(err)
		}
		_, err := Load(&out, ds)
		return err
	}

	truncated := decode()
	truncated.Params[0].Data = truncated.Params[0].Data[:len(truncated.Params[0].Data)-1]
	if err := reload(truncated); err == nil {
		t.Fatal("Load accepted a parameter payload shorter than its shape")
	}

	badBaseline := decode()
	badBaseline.BaselineW = []float64{1}
	badBaseline.BaselineP = []float64{1}
	if err := reload(badBaseline); err == nil {
		t.Fatal("Load accepted a baseline sized for a different dataset")
	}
}

// Clone must predict bitwise identically to the original and be fully
// isolated from it: fine-tuning the clone must not move the original.
func TestCloneIsDeepAndBitwiseIdentical(t *testing.T) {
	ds := testData(t)
	cfg := smallConfig(5)
	m, err := NewModel(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	split := dataset.NewSplit(rand.New(rand.NewSource(5)), len(ds.Obs), 0.8)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}

	probe := func(mm *Model) []float64 {
		var out []float64
		for w := 0; w < 5; w++ {
			out = append(out,
				mm.PredictSeconds(w, w%ds.NumPlatforms(), nil, 0),
				mm.PredictSeconds(w, (w+1)%ds.NumPlatforms(), []int{(w + 2) % ds.NumWorkloads()}, 0))
		}
		return out
	}
	before := probe(m)

	c, err := m.Clone(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range probe(c) {
		if v != before[i] {
			t.Fatalf("clone prediction %d differs: %v vs %v", i, v, before[i])
		}
	}

	// Rebind the clone to an extended dataset and fine-tune it; the
	// original must be untouched (this is the Observe copy-on-write path).
	extra := []dataset.Observation{}
	for i := 0; i < 20; i++ {
		extra = append(extra, dataset.Observation{Workload: 0, Platform: 0, Seconds: before[0] * 3})
	}
	nds := ds.CloneAppend(extra)
	if err := nds.Validate(); err != nil {
		t.Fatal(err)
	}
	c2, err := m.Clone(nds)
	if err != nil {
		t.Fatal(err)
	}
	newIdx := make([]int, len(extra))
	for i := range newIdx {
		newIdx[i] = len(ds.Obs) + i
	}
	if err := c2.OnlineUpdate(newIdx, split.Train, OnlineConfig{Steps: 50, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if c2.PredictSeconds(0, 0, nil, 0) == before[0] {
		t.Fatal("fine-tuned clone did not move")
	}
	for i, v := range probe(m) {
		if v != before[i] {
			t.Fatalf("fine-tuning the clone mutated the original (probe %d: %v vs %v)", i, v, before[i])
		}
	}
	if len(ds.Obs) != len(nds.Obs)-len(extra) {
		t.Fatal("CloneAppend mutated the original dataset")
	}
}

// A persisted config that requires side-information features must reject a
// dataset arriving without them (wire corruption) instead of panicking in
// standardize.
func TestNewModelRequiresDeclaredFeatures(t *testing.T) {
	ds := testData(t)
	stripped := ds.CloneAppend(nil)
	stripped.WorkloadFeatures = nil
	cfg := smallConfig(7)
	if !cfg.UseWorkloadFeatures {
		t.Skip("default config does not use workload features")
	}
	if _, err := NewModel(cfg, stripped); err == nil {
		t.Fatal("NewModel accepted a dataset missing required workload features")
	}
	stripped = ds.CloneAppend(nil)
	stripped.PlatformFeatures = nil
	if cfg.UsePlatformFeatures {
		if _, err := NewModel(cfg, stripped); err == nil {
			t.Fatal("NewModel accepted a dataset missing required platform features")
		}
	}
}

func TestCloneRejectsMismatchedDataset(t *testing.T) {
	ds := testData(t)
	m, err := NewModel(smallConfig(6), ds)
	if err != nil {
		t.Fatal(err)
	}
	bad := &dataset.Dataset{
		WorkloadNames:  []string{"only"},
		WorkloadSuites: []string{"s"},
	}
	if _, err := m.Clone(bad); err == nil {
		t.Fatal("Clone accepted a dataset with mismatched features")
	}
}
