package core

// FastScoreMaxRelErr bounds the relative difference, per query, between
// PredictFusedBatchFast and PredictFusedBatch outputs in the default
// float64 fast mode, on every build (vector or scalar fallback).
// Composition of the per-kernel bounds, in the log domain where both
// heads accumulate:
//
//   - Rank-32 dots: the fast kernels reassociate the exact dot's chain
//     order — four FMA-contracted vector lanes on AVX2, plain regrouped
//     mul+add chains elsewhere — so each log-domain head differs from the
//     exact kernel by a few ulps of the accumulated term magnitudes:
//     ≲ 64·2^-53·Σ|terms| ≈ 1e-13 absolute for the O(1) residuals and
//     O(10) baselines this model produces. The interference fold is the
//     exact kernel's (per span, off the hot path), contributing nothing.
//   - The final exp maps a log-domain absolute error δ to a relative
//     error e^δ − 1 ≈ δ, and adds ExpFast's own FastExpMaxRelErr (1e-12).
//
// Total ≈ 1.1e-12; the documented bound 1e-9 leaves three orders of
// margin for unusually ill-conditioned embeddings and is what the
// tolerance-aware identity tests assert.
const FastScoreMaxRelErr = 1e-9

// FastF32MaxRelErr is the corresponding bound for the mean (ranking) head
// when Config.FastScoringF32 is set: float32 accumulation rounds each of
// the 32 products and partial sums at 2^-24, giving a log-domain error
// ≲ 32·2^-24·Σ|terms| ≈ 1e-5 absolute, hence ≈ 1e-5 relative after exp.
// Documented bound 1e-3 (margin for ill-conditioned spans); the bound
// head is always float64 and stays within FastScoreMaxRelErr.
const FastF32MaxRelErr = 1e-3

// PredictFusedBatchFast is the opt-in approximate twin of
// PredictFusedBatch: same signature, same span detection, same worker
// fan-out and scratch (runFusedSpans), but the per-span arithmetic trades
// bitwise identity for speed. On amd64 with AVX2+FMA each span runs two
// vector passes — dotSpanAVX2 streams both heads' dots with the effective
// platform vectors pinned in registers, expSpanAVX2 exponentiates four
// lanes at a time; elsewhere a blocked plain-mul loop loads the platform
// vectors once per four queries and ExpFast replaces math.Exp. Every
// query's result is within FastScoreMaxRelErr relative of the exact
// kernel's (FastF32MaxRelErr for the mean head under
// Config.FastScoringF32).
//
// Only the default paired configuration (both models log-residual,
// rank 32, same interference structure) has a distinct fast kernel;
// any other configuration falls through to the exact PredictFusedBatch,
// so callers may dispatch on the flag alone.
func PredictFusedBatchFast(mean, quant *Model, qs []Query, quantHead int, boundOffset func(degree int) float64, meanSec, boundSec []float64) {
	paired := mean.Cfg.Objective == ObjLogResidual && quant.Cfg.Objective == ObjLogResidual &&
		mean.Cfg.EmbeddingDim == 32 && quant.Cfg.EmbeddingDim == 32 &&
		mean.Cfg.Interference == quant.Cfg.Interference &&
		mean.Cfg.InterferenceTypes == quant.Cfg.InterferenceTypes
	if !paired {
		PredictFusedBatch(mean, quant, qs, quantHead, boundOffset, meanSec, boundSec)
		return
	}
	if mean.wEmb == nil || quant.wEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	if len(meanSec) != len(qs) || len(boundSec) != len(qs) {
		panic("core: fast fused batch out lens mismatch")
	}
	if len(qs) == 0 {
		return
	}
	f32 := mean.Cfg.FastScoringF32
	vec := useFastVec && !f32 // the f32 option keeps the scalar reference kernel
	runSpan := func(sp qspan, peffM, peffQ []float64) {
		q0 := qs[sp.lo]
		effectivePlatformPairFast(mean, quant, peffM, peffQ, q0.Platform, q0.Interferers, quantHead)
		off := boundOffset(len(q0.Interferers))
		wDataM, wColsM := mean.wEmb.Data, mean.wEmb.Cols
		wDataQ, wColsQ := quant.wEmb.Data, quant.wEmb.Cols
		wloQ := quantHead * 32
		bWm, bPm := mean.Baseline.W, mean.Baseline.P[q0.Platform]
		bWq, bPq := quant.Baseline.W, quant.Baseline.P[q0.Platform]
		peffM, peffQ = peffM[:32], peffQ[:32]
		if vec {
			// Baselines (and the hoisted conformal offset) land first so
			// the vector dot pass is a pure accumulate; the offset rides
			// along before exp exactly as in the exact kernel.
			for i := sp.lo; i < sp.hi; i++ {
				w := qs[i].Workload
				meanSec[i] = bWm[w] + bPm
				boundSec[i] = bWq[w] + bPq + off
			}
			n := sp.hi - sp.lo
			dotSpanAVX2(&wDataM[0], wColsM, &qs[sp.lo], n, &peffM[0], &meanSec[sp.lo])
			dotSpanAVX2(&wDataQ[wloQ], wColsQ, &qs[sp.lo], n, &peffQ[0], &boundSec[sp.lo])
			expSpan(meanSec[sp.lo:sp.hi])
			expSpan(boundSec[sp.lo:sp.hi])
			return
		}
		i := sp.lo
		if f32 {
			var pm32 [32]float32
			for e := 0; e < 32; e++ {
				pm32[e] = float32(peffM[e])
			}
			if useFastVec {
				// The always-float64 bound head still takes the vector
				// pass; only the mean head pays the scalar f32 loop.
				for ; i < sp.hi; i++ {
					w := qs[i].Workload
					boundSec[i] = bWq[w] + bPq + off
					meanSec[i] = ExpFast(bWm[w] + bPm + dot32F32(wDataM[w*wColsM:], &pm32))
				}
				dotSpanAVX2(&wDataQ[wloQ], wColsQ, &qs[sp.lo], sp.hi-sp.lo, &peffQ[0], &boundSec[sp.lo])
				expSpan(boundSec[sp.lo:sp.hi])
				return
			}
			for ; i < sp.hi; i++ {
				w := qs[i].Workload
				meanSec[i] = bWm[w] + bPm + dot32F32(wDataM[w*wColsM:], &pm32)
				boundSec[i] = bWq[w] + bPq + dot32Fast(wDataQ[w*wColsQ+wloQ:], peffQ)
			}
		} else {
			// Four queries per block: the two peff vectors stream through
			// registers once per block, so the load traffic per query
			// drops from 4 streams to 2.5 — the exact kernel's eight-chain
			// pair dot is load-bound, and this is where the scalar dot
			// speedup comes from. Plain mul+add on purpose: math.FMA is a
			// branch-plus-call under GOAMD64=v1 (see fastmath.go).
			for ; i+4 <= sp.hi; i += 4 {
				w0, w1, w2, w3 := qs[i].Workload, qs[i+1].Workload, qs[i+2].Workload, qs[i+3].Workload
				a0 := wDataM[w0*wColsM:][:32]
				a1 := wDataM[w1*wColsM:][:32]
				a2 := wDataM[w2*wColsM:][:32]
				a3 := wDataM[w3*wColsM:][:32]
				c0 := wDataQ[w0*wColsQ+wloQ:][:32]
				c1 := wDataQ[w1*wColsQ+wloQ:][:32]
				c2 := wDataQ[w2*wColsQ+wloQ:][:32]
				c3 := wDataQ[w3*wColsQ+wloQ:][:32]
				var m0, m1, m2, m3, u0, u1, u2, u3 float64
				for e := 0; e < 32; e++ {
					pm, pq := peffM[e], peffQ[e]
					m0 += a0[e] * pm
					m1 += a1[e] * pm
					m2 += a2[e] * pm
					m3 += a3[e] * pm
					u0 += c0[e] * pq
					u1 += c1[e] * pq
					u2 += c2[e] * pq
					u3 += c3[e] * pq
				}
				meanSec[i] = bWm[w0] + bPm + m0
				meanSec[i+1] = bWm[w1] + bPm + m1
				meanSec[i+2] = bWm[w2] + bPm + m2
				meanSec[i+3] = bWm[w3] + bPm + m3
				boundSec[i] = bWq[w0] + bPq + u0
				boundSec[i+1] = bWq[w1] + bPq + u1
				boundSec[i+2] = bWq[w2] + bPq + u2
				boundSec[i+3] = bWq[w3] + bPq + u3
			}
			for ; i < sp.hi; i++ {
				w := qs[i].Workload
				dM, dQ := dot32Pair(wDataM[w*wColsM:], peffM, wDataQ[w*wColsQ+wloQ:], peffQ)
				meanSec[i] = bWm[w] + bPm + dM
				boundSec[i] = bWq[w] + bPq + dQ
			}
		}
		for i = sp.lo; i < sp.hi; i++ {
			meanSec[i] = ExpFast(meanSec[i])
			boundSec[i] = ExpFast(boundSec[i] + off)
		}
	}
	runFusedSpans(mean, qs, 32, 32, runSpan)
}

// effectivePlatformPairFast is effectivePlatformPair with the inner pair
// dots dispatched to the AVX2 kernel when available (per interferer the
// fold walks two full rank-32 rows — the dominant per-span cost on dense
// interference). Without vector support the fold is the exact kernel's:
// the scalar blocked dots give the per-query loop its win, and the fold
// is too short to reassociate profitably in scalar code. Either way every
// reassociation stays within the FastScoreMaxRelErr derivation.
func effectivePlatformPairFast(mean, quant *Model, peffM, peffQ []float64, j int, ks []int, hQ int) {
	if !useFastVec {
		effectivePlatformPair(mean, quant, peffM, peffQ, j, ks, hQ)
		return
	}
	const r = 32
	s := mean.Cfg.InterferenceTypes
	prowM := mean.pEmb.Row(j)
	prowQ := quant.pEmb.Row(j)
	copy(peffM, prowM[:r])
	copy(peffQ, prowQ[:r])
	if len(ks) == 0 || mean.Cfg.Interference != InterferenceAware || s == 0 {
		return
	}
	loQ := hQ * r
	wM, wQ := mean.wEmb, quant.wEmb
	for t := 0; t < s; t++ {
		vsM := prowM[r*(1+t) : r*(2+t)]
		vgM := prowM[r*(1+s+t) : r*(2+s+t)]
		vsQ := prowQ[r*(1+t) : r*(2+t)]
		vgQ := prowQ[r*(1+s+t) : r*(2+s+t)]
		var magM, magQ float64
		for _, k := range ks {
			rowM, rowQ := wM.Row(k), wQ.Row(k)[loQ:][:r]
			dM, dQ := dot32PairAVX2(&rowM[0], &vgM[0], &rowQ[0], &vgQ[0])
			magM += dM
			magQ += dQ
		}
		if mean.Cfg.UseActivation && magM < 0 {
			magM *= mean.Cfg.ActivationSlope
		}
		if quant.Cfg.UseActivation && magQ < 0 {
			magQ *= quant.Cfg.ActivationSlope
		}
		foldAxpyPairAVX2(&peffM[0], &vsM[0], magM, &peffQ[0], &vsQ[0], magQ)
	}
}
