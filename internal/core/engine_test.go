package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// trainSnapshot trains a fresh model and returns its parameter matrices.
func trainSnapshot(t *testing.T, workers int, quantiles []float64) []*tensor.Matrix {
	t.Helper()
	ds := testData(t)
	cfg := smallConfig(7)
	cfg.Steps = 60
	cfg.EvalEvery = 20
	cfg.Workers = workers
	cfg.Quantiles = quantiles
	m, err := NewModel(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	out := make([]*tensor.Matrix, len(m.params))
	for i, p := range m.params {
		out[i] = p.Data.Clone()
	}
	return out
}

// Parallel training must be bitwise identical to sequential training:
// gradient accumulation order is fixed regardless of worker count.
func TestParallelTrainingDeterministic(t *testing.T) {
	for _, quantiles := range [][]float64{nil, {0.5, 0.9, 0.99}} {
		seq := trainSnapshot(t, 1, quantiles)
		par := trainSnapshot(t, 4, quantiles)
		for i := range seq {
			if !tensor.Equal(seq[i], par[i], 0) {
				t.Fatalf("quantiles %v: param %d diverges between workers=1 and workers=4",
					quantiles, i)
			}
		}
	}
}

// engineModel trains one small model for the engine tests, reusing the
// property-test helper.
func engineModel(t *testing.T, quantiles []float64) *Model {
	t.Helper()
	return trainedModel(t, 9, func(c *Config) {
		c.Steps = 50
		c.EvalEvery = 25
		c.Quantiles = quantiles
	})
}

func batchQueries(m *Model) []Query {
	d := m.Dataset()
	var qs []Query
	for p := 0; p < d.NumPlatforms(); p++ {
		resident := []int{p % d.NumWorkloads(), (p + 7) % d.NumWorkloads()}
		for w := 0; w < d.NumWorkloads(); w++ {
			qs = append(qs, Query{Workload: w, Platform: p, Interferers: resident})
		}
		// Isolation queries exercise the no-interference group path.
		qs = append(qs, Query{Workload: p % d.NumWorkloads(), Platform: p})
	}
	return qs
}

// The grouped batch path must agree with the one-at-a-time path up to
// floating-point reassociation of the interference fold.
func TestPredictLogSecondsBatchMatchesSingle(t *testing.T) {
	for _, quantiles := range [][]float64{nil, {0.5, 0.9}} {
		m := engineModel(t, quantiles)
		qs := batchQueries(m)
		for h := 0; h < m.Cfg.NumHeads(); h++ {
			out := make([]float64, len(qs))
			m.PredictLogSecondsBatch(qs, h, out)
			for i, q := range qs {
				want := m.PredictLogSeconds(q.Workload, q.Platform, q.Interferers, h)
				if math.Abs(out[i]-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("head %d query %d: batch %.12f vs single %.12f", h, i, out[i], want)
				}
			}
		}
	}
}

// Batch inference must be deterministic across worker counts.
func TestPredictLogSecondsBatchWorkerInvariant(t *testing.T) {
	m := engineModel(t, nil)
	qs := batchQueries(m)
	m.Cfg.Workers = 1
	seq := make([]float64, len(qs))
	m.PredictLogSecondsBatch(qs, 0, seq)
	m.Cfg.Workers = 8
	par := make([]float64, len(qs))
	m.PredictLogSecondsBatch(qs, 0, par)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("query %d: workers=1 %v vs workers=8 %v", i, seq[i], par[i])
		}
	}
}

// The tape-free validation loss must match the graph-built loss.
func TestEvalLossMatchesGraphLoss(t *testing.T) {
	for _, quantiles := range [][]float64{nil, {0.5, 0.9}} {
		m := engineModel(t, quantiles)
		var idx []int
		for i, o := range m.data.Obs {
			if o.Degree() == 2 {
				idx = append(idx, i)
			}
			if len(idx) == 64 {
				break
			}
		}
		bt := m.makeBatch(idx, false)
		w, p := m.embeddings()
		want := m.batchLoss(w, p, bt).Scalar()
		wE, pE := m.embeddingsInfer()
		got := m.batchLossInfer(wE, pE, bt)
		tensor.PutPooled(wE)
		tensor.PutPooled(pE)
		if math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
			t.Fatalf("quantiles %v: infer loss %.12f vs graph loss %.12f", quantiles, got, want)
		}
	}
}

// standardize must be robust to large-mean columns: a column with mean 1e9
// and tiny spread still z-scores to unit variance instead of collapsing
// to zero (or NaN) through E[x²]−E[x]² cancellation.
func TestStandardizeLargeMeanColumn(t *testing.T) {
	m := tensor.New(4, 1)
	base := 1e9
	offsets := []float64{-1.5, -0.5, 0.5, 1.5}
	for i, o := range offsets {
		m.Data[i] = base + o
	}
	out := standardize(m)
	var mean, variance float64
	for _, v := range out.Data {
		mean += v
	}
	mean /= 4
	for _, v := range out.Data {
		variance += (v - mean) * (v - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
		t.Fatalf("standardized large-mean column: mean %v variance %v", mean, variance)
	}
	if out.HasNaN() {
		t.Fatal("standardize produced NaN")
	}
}

// A warm training step must not allocate matrix payloads: everything comes
// from the pool. The bound covers fixed per-node bookkeeping only.
func TestTrainStepSteadyStateAllocs(t *testing.T) {
	m := engineModel(t, nil)
	var idx []int
	for i, o := range m.data.Obs {
		if o.Degree() == 2 {
			idx = append(idx, i)
		}
		if len(idx) == 128 {
			break
		}
	}
	bt := m.makeBatch(idx, false)
	batches := []batch{bt}
	weights := []float64{1}
	m.Cfg.Workers = 1
	m.runStep(batches, weights)
	for _, p := range m.params {
		p.ZeroGrad()
	}
	allocs := testing.AllocsPerRun(10, func() {
		m.runStep(batches, weights)
		for _, p := range m.params {
			p.ZeroGrad()
		}
	})
	// ~40 graph nodes × a few bookkeeping objects each; a single escaped
	// 128-row matrix payload would add hundreds of KiB and show up as the
	// pool degrading, not as a small constant.
	if allocs > 400 {
		t.Fatalf("warm train step allocates %v objects; pool not effective", allocs)
	}
}

// Batch inference on a warm path allocates only the per-call group
// bookkeeping, independent of matrix sizes.
func TestPredictBatchAllocs(t *testing.T) {
	m := engineModel(t, nil)
	qs := batchQueries(m)
	out := make([]float64, len(qs))
	m.Cfg.Workers = 1
	m.PredictLogSecondsBatch(qs, 0, out)
	allocs := testing.AllocsPerRun(10, func() {
		m.PredictLogSecondsBatch(qs, 0, out)
	})
	groups := float64(m.data.NumPlatforms() * 2)
	if allocs > 8*groups {
		t.Fatalf("batch inference allocates %v objects for %v groups", allocs, groups)
	}
}
