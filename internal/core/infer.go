package core

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SyncEmbeddings recomputes and caches the tower outputs for inference.
// Train calls this automatically; call it manually after mutating
// parameters (e.g. after Load).
func (m *Model) SyncEmbeddings() {
	w, p := m.embeddings()
	m.wEmb = w.Data.Clone()
	m.pEmb = p.Data.Clone()
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// PredictResidual returns head h's raw model output (the residual under
// the configured objective) for workload w on platform p with interferers
// ks. Uses the cached embeddings.
func (m *Model) PredictResidual(w, p int, ks []int, h int) float64 {
	if m.wEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	r, s := m.Cfg.EmbeddingDim, m.Cfg.InterferenceTypes
	wrow := m.wEmb.Row(w)[h*r : (h+1)*r]
	prow := m.pEmb.Row(p)
	pred := dot(wrow, prow[:r])
	if len(ks) > 0 && m.Cfg.Interference == InterferenceAware && s > 0 {
		for t := 0; t < s; t++ {
			vs := prow[r*(1+t) : r*(2+t)]
			vg := prow[r*(1+s+t) : r*(2+s+t)]
			var mag float64
			for _, k := range ks {
				mag += dot(m.wEmb.Row(k)[h*r:(h+1)*r], vg)
			}
			if m.Cfg.UseActivation && mag < 0 {
				mag *= m.Cfg.ActivationSlope
			}
			pred += dot(wrow, vs) * mag
		}
	}
	return pred
}

// PredictLogSeconds returns head h's predicted log runtime, combining the
// residual with the linear-scaling baseline according to the objective.
func (m *Model) PredictLogSeconds(w, p int, ks []int, h int) float64 {
	res := m.PredictResidual(w, p, ks, h)
	switch m.Cfg.Objective {
	case ObjLogResidual:
		return m.Baseline.LogBaseline(w, p) + res
	case ObjLog:
		return res
	case ObjProportional:
		// The model output is a linear-space runtime; clamp to positive.
		if res < 1e-9 {
			res = 1e-9
		}
		return math.Log(res)
	}
	panic("core: unknown objective")
}

// PredictSeconds returns head h's predicted runtime in seconds.
func (m *Model) PredictSeconds(w, p int, ks []int, h int) float64 {
	return math.Exp(m.PredictLogSeconds(w, p, ks, h))
}

// HeadForQuantile returns the head index trained at target quantile xi.
func (m *Model) HeadForQuantile(xi float64) (int, error) {
	for h, q := range m.Cfg.Quantiles {
		if q == xi {
			return h, nil
		}
	}
	return 0, fmt.Errorf("core: no head trained for quantile %v", xi)
}

// WorkloadEmbeddings returns a copy of head h's Nw x r workload embedding
// block, for interpretation (paper Fig. 7).
func (m *Model) WorkloadEmbeddings(h int) *tensor.Matrix {
	if m.wEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	r := m.Cfg.EmbeddingDim
	return tensor.SliceCols(m.wEmb, h*r, (h+1)*r)
}

// PlatformEmbeddings returns a copy of the Np x r platform embedding block
// (paper Fig. 12b/c).
func (m *Model) PlatformEmbeddings() *tensor.Matrix {
	if m.pEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	return tensor.SliceCols(m.pEmb, 0, m.Cfg.EmbeddingDim)
}

// InterferenceNorm returns the spectral norm ‖F_j‖₂ of platform j's
// interference matrix F_j = Σ_t v_s⁽ᵗ⁾ v_g⁽ᵗ⁾ᵀ (paper Eq. 15, Fig. 12d),
// computed by power iteration on FᵀF.
func (m *Model) InterferenceNorm(j int) float64 {
	r, s := m.Cfg.EmbeddingDim, m.Cfg.InterferenceTypes
	if s == 0 {
		return 0
	}
	prow := m.pEmb.Row(j)
	f := tensor.New(r, r)
	for t := 0; t < s; t++ {
		vs := prow[r*(1+t) : r*(2+t)]
		vg := prow[r*(1+s+t) : r*(2+s+t)]
		for a := 0; a < r; a++ {
			row := f.Row(a)
			for b := 0; b < r; b++ {
				row[b] += vs[a] * vg[b]
			}
		}
	}
	// Power iteration on FᵀF for the dominant singular value.
	v := make([]float64, r)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(r))
	}
	var sigma float64
	for it := 0; it < 100; it++ {
		// u = F v ; w = Fᵀ u
		u := make([]float64, r)
		for a := 0; a < r; a++ {
			u[a] = dot(f.Row(a), v)
		}
		w := make([]float64, r)
		for a := 0; a < r; a++ {
			fa := f.Row(a)
			for b := 0; b < r; b++ {
				w[b] += fa[b] * u[a]
			}
		}
		norm := math.Sqrt(dot(w, w))
		if norm == 0 {
			return 0
		}
		for i := range w {
			v[i] = w[i] / norm
		}
		next := math.Sqrt(norm)
		if math.Abs(next-sigma) < 1e-12*math.Max(1, sigma) {
			sigma = next
			break
		}
		sigma = next
	}
	return sigma
}
