package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/tensor"
)

// SyncEmbeddings recomputes and caches the tower outputs for inference.
// Train calls this automatically; call it manually after mutating
// parameters (e.g. after Load). The recompute runs on the tape-free
// forward path, writing in place into the previous cache buffers — one
// sync's tables are steady-state allocation-free — so it must not run
// concurrently with predictions on the same model (the serving layer's
// snapshot discipline already guarantees this: only private clones are
// ever re-synced).
func (m *Model) SyncEmbeddings() {
	m.wEmb = m.towerInferInto(m.wEmb, m.fw, m.xw, m.phiW)
	m.pEmb = m.towerInferInto(m.pEmb, m.fp, m.xp, m.phiP)
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// PredictResidual returns head h's raw model output (the residual under
// the configured objective) for workload w on platform p with interferers
// ks. Uses the cached embeddings.
func (m *Model) PredictResidual(w, p int, ks []int, h int) float64 {
	if m.wEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	r, s := m.Cfg.EmbeddingDim, m.Cfg.InterferenceTypes
	wrow := m.wEmb.Row(w)[h*r : (h+1)*r]
	prow := m.pEmb.Row(p)
	pred := dot(wrow, prow[:r])
	if len(ks) > 0 && m.Cfg.Interference == InterferenceAware && s > 0 {
		for t := 0; t < s; t++ {
			vs := prow[r*(1+t) : r*(2+t)]
			vg := prow[r*(1+s+t) : r*(2+s+t)]
			var mag float64
			for _, k := range ks {
				mag += dot(m.wEmb.Row(k)[h*r:(h+1)*r], vg)
			}
			if m.Cfg.UseActivation && mag < 0 {
				mag *= m.Cfg.ActivationSlope
			}
			pred += dot(wrow, vs) * mag
		}
	}
	return pred
}

// PredictLogSeconds returns head h's predicted log runtime, combining the
// residual with the linear-scaling baseline according to the objective.
func (m *Model) PredictLogSeconds(w, p int, ks []int, h int) float64 {
	return m.logSecondsFromResidual(m.PredictResidual(w, p, ks, h), w, p)
}

// PredictSeconds returns head h's predicted runtime in seconds.
func (m *Model) PredictSeconds(w, p int, ks []int, h int) float64 {
	return math.Exp(m.PredictLogSeconds(w, p, ks, h))
}

// Query identifies one (workload, platform, interferers) prediction for
// the batch inference path.
type Query struct {
	Workload, Platform int
	Interferers        []int
}

// PredictLogSecondsBatch fills out with head h's predicted log runtimes
// for all queries, using the cached embedding tables. Queries are grouped
// by (platform, interferer set) and each group's interference term is
// folded into a single effective platform vector
//
//	p̃ⱼ = pⱼ + Σ_t α(mag_t) · v_s⁽ᵗ⁾ ,  mag_t = Σ_k w_kᵀ v_g⁽ᵗ⁾
//
// so that every query in the group costs one rank-r dot product — the
// algebraic identity wᵢᵀpⱼ + Σ_t (wᵢᵀv_s⁽ᵗ⁾)·α(mag_t) = wᵢᵀp̃ⱼ. Groups fan
// out across Config.Workers goroutines (scheduler-style scans share a
// platform's resident set across many candidate workloads, so groups are
// few and wide). Results are deterministic: each output index is written
// exactly once, independent of scheduling.
func (m *Model) PredictLogSecondsBatch(qs []Query, h int, out []float64) {
	m.predictBatchInto(qs, h, out, false)
}

// PredictSecondsBatch is PredictLogSecondsBatch with the final exp applied
// per span while its results are still cache-hot: out holds predicted
// runtimes in seconds, with no full second pass over the results.
func (m *Model) PredictSecondsBatch(qs []Query, h int, out []float64) {
	m.predictBatchInto(qs, h, out, true)
}

func (m *Model) predictBatchInto(qs []Query, h int, out []float64, inSeconds bool) {
	if m.wEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	if len(out) != len(qs) {
		panic(fmt.Sprintf("core: batch predict out len %d for %d queries", len(out), len(qs)))
	}
	if len(qs) == 0 {
		return
	}
	r := m.Cfg.EmbeddingDim
	runSpan := func(sp qspan, peff []float64) {
		q0 := qs[sp.lo]
		m.effectivePlatform(peff, q0.Platform, q0.Interferers, h)
		m.spanLogInto(qs, sp.lo, sp.hi, peff, h, out)
		if inSeconds {
			// Separate exp sweep: keeping the transcendental out of the
			// dot loop leaves its registers free and pipelines better.
			for i := sp.lo; i < sp.hi; i++ {
				out[i] = math.Exp(out[i])
			}
		}
	}
	if workers := m.workers(); workers > 1 {
		// Detect spans up front, then fan them out.
		spans := detectSpans(qs)
		if workers > len(spans) {
			workers = len(spans)
		}
		if workers > 1 {
			var wg sync.WaitGroup
			next := make(chan qspan)
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					peff := make([]float64, r)
					for sp := range next {
						runSpan(sp, peff)
					}
				}()
			}
			for _, sp := range spans {
				next <- sp
			}
			close(next)
			wg.Wait()
			return
		}
	}
	// Single worker: detect each span and process it immediately, one
	// streaming pass over the query array.
	peff := make([]float64, r)
	for lo := 0; lo < len(qs); {
		hi := lo + 1
		for hi < len(qs) && sameGroup(&qs[hi], &qs[lo]) {
			hi++
		}
		runSpan(qspan{lo, hi}, peff)
		lo = hi
	}
}

// qspan is one run of consecutive queries sharing a (platform, interferer
// set); the unit the interference fold is amortized over.
type qspan struct{ lo, hi int }

// detectSpans partitions qs into maximal same-group runs. Consecutive
// queries with the same (platform, interferer set) form a group — the
// natural shape of a scheduler scanning candidates per platform.
// Non-consecutive repeats just open a fresh group, which costs amortization
// but never correctness, and keeps grouping an allocation-free scan instead
// of a keyed map.
func detectSpans(qs []Query) []qspan {
	spans := make([]qspan, 0, 16)
	for lo := 0; lo < len(qs); {
		hi := lo + 1
		for hi < len(qs) && sameGroup(&qs[hi], &qs[lo]) {
			hi++
		}
		spans = append(spans, qspan{lo, hi})
		lo = hi
	}
	return spans
}

// spanLogInto fills out[lo:hi] with head h's predicted log runtimes for
// queries qs[lo:hi], which must all share qs[lo]'s platform and interferer
// set, whose interference term the caller has already folded into peff.
// This is the per-span inner kernel shared by the single-model batch path
// and the fused two-model path — sharing it is what makes the fused outputs
// bitwise-identical to the separate calls.
func (m *Model) spanLogInto(qs []Query, lo, hi int, peff []float64, h int, out []float64) {
	r := m.Cfg.EmbeddingDim
	wlo, whi := h*r, (h+1)*r
	wData, wCols := m.wEmb.Data, m.wEmb.Cols
	q0 := qs[lo]
	switch {
	case m.Cfg.Objective == ObjLogResidual && whi-wlo == 32:
		// Tight loop for the default configuration: baseline platform
		// offset hoisted, single-step row slicing, fully unrolled
		// rank-32 kernel, no per-query dispatch.
		bW := m.Baseline.W
		bP := m.Baseline.P[q0.Platform]
		for i := lo; i < hi; i++ {
			w := qs[i].Workload
			base := w * wCols
			out[i] = bW[w] + bP + dot32(wData[base+wlo:], peff)
		}
	case m.Cfg.Objective == ObjLogResidual:
		bW := m.Baseline.W
		bP := m.Baseline.P[q0.Platform]
		for i := lo; i < hi; i++ {
			w := qs[i].Workload
			base := w * wCols
			out[i] = bW[w] + bP + dotUnrolled(wData[base+wlo:base+whi], peff)
		}
	default:
		for i := lo; i < hi; i++ {
			w := qs[i].Workload
			base := w * wCols
			res := dotUnrolled(wData[base+wlo:base+whi], peff)
			out[i] = m.logSecondsFromResidual(res, w, q0.Platform)
		}
	}
}

// sameGroup reports whether two queries share a platform and interferer
// set (compared by value, in order). Queries that share the same backing
// slice — a scheduler reusing one resident set across a scan — short-cut
// on pointer identity.
func sameGroup(a, b *Query) bool {
	if a.Platform != b.Platform || len(a.Interferers) != len(b.Interferers) {
		return false
	}
	if len(a.Interferers) == 0 || &a.Interferers[0] == &b.Interferers[0] {
		return true
	}
	for i, k := range a.Interferers {
		if k != b.Interferers[i] {
			return false
		}
	}
	return true
}

// dot32 is dotUnrolled with the bounds fixed at the default embedding rank,
// letting the compiler drop all loop-bound checks.
func dot32(a, b []float64) float64 {
	a = a[:32]
	b = b[:32]
	var s0, s1, s2, s3 float64
	for i := 0; i < 32; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	return s0 + s1 + s2 + s3
}

// dot32Pair computes dot32(a1, b1) and dot32(a2, b2) in one eight-chain
// loop — the fused two-model span kernel's shape, where every query pays
// one dot per model. Each result accumulates in exactly dot32's order
// (bitwise interchangeable with two dot32 calls) while sharing loop
// overhead and exposing twice the instruction-level parallelism.
func dot32Pair(a1, b1, a2, b2 []float64) (float64, float64) {
	a1, b1 = a1[:32], b1[:32]
	a2, b2 = a2[:32], b2[:32]
	var s0, s1, s2, s3 float64
	var t0, t1, t2, t3 float64
	for i := 0; i < 32; i += 4 {
		s0 += a1[i] * b1[i]
		s1 += a1[i+1] * b1[i+1]
		s2 += a1[i+2] * b1[i+2]
		s3 += a1[i+3] * b1[i+3]
		t0 += a2[i] * b2[i]
		t1 += a2[i+1] * b2[i+1]
		t2 += a2[i+2] * b2[i+2]
		t3 += a2[i+3] * b2[i+3]
	}
	return s0 + s1 + s2 + s3, t0 + t1 + t2 + t3
}

// dotUnrolled is the batch path's inner-product kernel: four accumulators
// expose instruction-level parallelism the simple reduction loop serializes
// (~1.5x on rank-32 embeddings). Summation order differs from dot, so
// results may drift from the scalar path by reassociation rounding.
func dotUnrolled(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	b = b[:len(a)]
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// effectivePlatform writes platform j's rank-r base embedding with the
// interference contribution of ks folded in, for head h.
func (m *Model) effectivePlatform(peff []float64, j int, ks []int, h int) {
	r, s := m.Cfg.EmbeddingDim, m.Cfg.InterferenceTypes
	prow := m.pEmb.Row(j)
	copy(peff, prow[:r])
	if len(ks) == 0 || m.Cfg.Interference != InterferenceAware || s == 0 {
		return
	}
	lo, hi := h*r, (h+1)*r
	for t := 0; t < s; t++ {
		vs := prow[r*(1+t) : r*(2+t)]
		vg := prow[r*(1+s+t) : r*(2+s+t)]
		var mag float64
		for _, k := range ks {
			mag += dotUnrolled(m.wEmb.Row(k)[lo:hi], vg)
		}
		if m.Cfg.UseActivation && mag < 0 {
			mag *= m.Cfg.ActivationSlope
		}
		for a := 0; a < r; a++ {
			peff[a] += mag * vs[a]
		}
	}
}

// logSecondsFromResidual applies the objective's residual-to-log-runtime
// mapping, mirroring PredictLogSeconds.
func (m *Model) logSecondsFromResidual(res float64, w, p int) float64 {
	switch m.Cfg.Objective {
	case ObjLogResidual:
		return m.Baseline.LogBaseline(w, p) + res
	case ObjLog:
		return res
	case ObjProportional:
		if res < 1e-9 {
			res = 1e-9
		}
		return math.Log(res)
	}
	panic("core: unknown objective")
}

// HeadForQuantile returns the head index trained at target quantile xi.
func (m *Model) HeadForQuantile(xi float64) (int, error) {
	for h, q := range m.Cfg.Quantiles {
		if q == xi {
			return h, nil
		}
	}
	return 0, fmt.Errorf("core: no head trained for quantile %v", xi)
}

// WorkloadEmbeddings returns a copy of head h's Nw x r workload embedding
// block, for interpretation (paper Fig. 7).
func (m *Model) WorkloadEmbeddings(h int) *tensor.Matrix {
	if m.wEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	r := m.Cfg.EmbeddingDim
	return tensor.SliceCols(m.wEmb, h*r, (h+1)*r)
}

// PlatformEmbeddings returns a copy of the Np x r platform embedding block
// (paper Fig. 12b/c).
func (m *Model) PlatformEmbeddings() *tensor.Matrix {
	if m.pEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	return tensor.SliceCols(m.pEmb, 0, m.Cfg.EmbeddingDim)
}

// InterferenceNorm returns the spectral norm ‖F_j‖₂ of platform j's
// interference matrix F_j = Σ_t v_s⁽ᵗ⁾ v_g⁽ᵗ⁾ᵀ (paper Eq. 15, Fig. 12d),
// computed by power iteration on FᵀF.
func (m *Model) InterferenceNorm(j int) float64 {
	r, s := m.Cfg.EmbeddingDim, m.Cfg.InterferenceTypes
	if s == 0 {
		return 0
	}
	prow := m.pEmb.Row(j)
	f := tensor.New(r, r)
	for t := 0; t < s; t++ {
		vs := prow[r*(1+t) : r*(2+t)]
		vg := prow[r*(1+s+t) : r*(2+s+t)]
		for a := 0; a < r; a++ {
			row := f.Row(a)
			for b := 0; b < r; b++ {
				row[b] += vs[a] * vg[b]
			}
		}
	}
	// Power iteration on FᵀF for the dominant singular value. The iterate
	// and scratch vectors are allocated once, outside the loop.
	v := make([]float64, r)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(r))
	}
	u := make([]float64, r)
	w := make([]float64, r)
	var sigma float64
	for it := 0; it < 100; it++ {
		// u = F v ; w = Fᵀ u
		for a := 0; a < r; a++ {
			u[a] = dot(f.Row(a), v)
		}
		clear(w)
		for a := 0; a < r; a++ {
			fa := f.Row(a)
			for b := 0; b < r; b++ {
				w[b] += fa[b] * u[a]
			}
		}
		norm := math.Sqrt(dot(w, w))
		if norm == 0 {
			return 0
		}
		for i := range w {
			v[i] = w[i] / norm
		}
		next := math.Sqrt(norm)
		if math.Abs(next-sigma) < 1e-12*math.Max(1, sigma) {
			sigma = next
			break
		}
		sigma = next
	}
	return sigma
}
