// Package core implements Pitot, the paper's contribution: a matrix
// factorization-inspired runtime predictor with a log-residual objective
// (§3.2), two-tower embedding networks over side information (§3.3), an
// interference term modeling arbitrary co-location effects (§3.4), and
// multi-quantile heads for conformalized quantile regression (§3.5).
package core

import "fmt"

// Objective selects the regression target/loss (paper Fig. 4a ablation).
type Objective int

// Objectives.
const (
	// ObjLogResidual minimizes squared error on log-runtime residuals of
	// the linear-scaling baseline (the paper's choice).
	ObjLogResidual Objective = iota
	// ObjLog minimizes squared error on raw log runtimes (no baseline).
	ObjLog
	// ObjProportional is the naive proportional loss: squared relative
	// error in linear space, E[((Ĉ-C*)/C*)²].
	ObjProportional
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case ObjLogResidual:
		return "log-residual"
	case ObjLog:
		return "log"
	case ObjProportional:
		return "proportional"
	}
	return "unknown"
}

// InterferenceMode selects how observations with interference are used
// (paper Fig. 4c ablation).
type InterferenceMode int

// Interference handling modes.
const (
	// InterferenceAware trains the interference term on co-location data
	// (the paper's method).
	InterferenceAware InterferenceMode = iota
	// InterferenceDiscard drops all observations with interference.
	InterferenceDiscard
	// InterferenceIgnore keeps co-location observations but treats them as
	// interference-free, averaging the slowdowns into the base prediction.
	InterferenceIgnore
)

// String names the mode.
func (m InterferenceMode) String() string {
	switch m {
	case InterferenceAware:
		return "aware"
	case InterferenceDiscard:
		return "discard"
	case InterferenceIgnore:
		return "ignore"
	}
	return "unknown"
}

// Config holds Pitot's hyperparameters. Paper defaults (App. B.3, D.2):
// r=32, q=1, s=2, β=0.5, two hidden layers of 128 GELU units, AdaMax with
// lr=0.001, batches of 512 per interference mode, 20,000 steps.
type Config struct {
	Seed int64

	// EmbeddingDim is the factorization rank r.
	EmbeddingDim int
	// LearnedFeatures is q, the per-entity learned feature count appended
	// to side information.
	LearnedFeatures int
	// InterferenceTypes is s, the rank of the interference matrix Fj.
	InterferenceTypes int
	// Hidden is the width of the two hidden layers of each tower.
	Hidden int

	// Quantiles, when non-empty, trains one pinball-loss head per target
	// quantile ξ (§3.5); when empty a single squared-loss head is trained.
	Quantiles []float64

	// Beta weighs the interference objectives: weight 1 for isolation and
	// β/3 for each of the three interference degrees (App. D.2).
	Beta float64

	Objective    Objective
	Interference InterferenceMode

	// UseWorkloadFeatures / UsePlatformFeatures gate the side-information
	// inputs (Fig. 4b ablation); learned features φ are always available.
	UseWorkloadFeatures bool
	UsePlatformFeatures bool

	// UseActivation applies leaky-ReLU (slope ActivationSlope) to summed
	// interference magnitudes (Eq. 9); false reduces to the simple
	// multiplicative model (Fig. 4d ablation).
	UseActivation   bool
	ActivationSlope float64

	// Training schedule.
	Steps          int
	BatchPerDegree int
	LR             float64
	EvalEvery      int // validation cadence for best-checkpoint selection

	// Workers caps the goroutines used for per-(batch, head) loss graphs
	// and batch inference; 0 means GOMAXPROCS. Results are identical for
	// every worker count: gradient accumulation order is fixed.
	Workers int

	// FastScoring opts the fused scoring path into the approximate kernel
	// (PredictFusedBatchFast): FMA-reassociated multi-chain rank-32 dots
	// and a polynomial exp with a documented relative-error bound
	// (FastExpMaxRelErr), in exchange for giving up bitwise identity with
	// the scalar path. Training, the single-model batch paths, and the
	// scalar Estimate/Bound paths are unaffected. The flag is persisted
	// with the model (Save/Load round-trips it; files written before the
	// flag existed load with it off).
	FastScoring bool
	// FastScoringF32, with FastScoring, accumulates the *mean* (ranking)
	// head's dot products in float32; the quantile (feasibility/bound)
	// head always stays float64. On scalar amd64 this is an error-model
	// option, not a speedup — it exists to pin down the accuracy cost of
	// half-width ranking accumulation (FastF32MaxRelErr) ahead of any
	// SIMD backend, where halving the element width doubles lane count.
	FastScoringF32 bool
}

// DefaultConfig returns paper-faithful hyperparameters at a training scale
// suited to CPU execution (fewer steps than the paper's 20,000; the
// experiments harness raises Steps for full runs).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		EmbeddingDim:        32,
		LearnedFeatures:     1,
		InterferenceTypes:   2,
		Hidden:              64,
		Beta:                0.5,
		Objective:           ObjLogResidual,
		Interference:        InterferenceAware,
		UseWorkloadFeatures: true,
		UsePlatformFeatures: true,
		UseActivation:       true,
		ActivationSlope:     0.1,
		Steps:               2500,
		BatchPerDegree:      256,
		LR:                  0.003,
		EvalEvery:           250,
	}
}

// PaperQuantiles is the spread of target quantiles the paper trains
// (App. B.2), denser near 1 where tightness is most sensitive.
func PaperQuantiles() []float64 {
	return []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99}
}

// NumHeads returns the number of workload-embedding heads (one per target
// quantile, or one for the mean model).
func (c Config) NumHeads() int {
	if len(c.Quantiles) == 0 {
		return 1
	}
	return len(c.Quantiles)
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.EmbeddingDim <= 0 {
		return fmt.Errorf("core: embedding dim %d", c.EmbeddingDim)
	}
	if c.InterferenceTypes < 0 || c.Hidden <= 0 || c.Steps <= 0 || c.BatchPerDegree <= 0 {
		return fmt.Errorf("core: invalid config %+v", c)
	}
	if c.LearnedFeatures < 0 {
		return fmt.Errorf("core: negative learned features")
	}
	for _, q := range c.Quantiles {
		if q <= 0 || q >= 1 {
			return fmt.Errorf("core: quantile %v out of (0,1)", q)
		}
	}
	if c.Objective == ObjProportional && len(c.Quantiles) > 0 {
		return fmt.Errorf("core: proportional objective does not support quantile heads")
	}
	return nil
}
