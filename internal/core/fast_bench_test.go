package core

import (
	"math"
	"math/rand"
	"testing"
)

// Microbenchmarks for the fast-kernel design space: the per-span dot
// strategies and the exp sweep, isolated from span detection and model
// plumbing. The span shape matches the 24-platform scheduler scan (40
// workloads per span, rank 32).

const benchSpanQueries = 40

func benchDotData() (wM, wQ []float64, peffM, peffQ []float64, idx []int) {
	rng := rand.New(rand.NewSource(7))
	wM = make([]float64, benchSpanQueries*32)
	wQ = make([]float64, benchSpanQueries*32)
	for i := range wM {
		wM[i] = rng.NormFloat64()
		wQ[i] = rng.NormFloat64()
	}
	peffM = make([]float64, 32)
	peffQ = make([]float64, 32)
	for i := range peffM {
		peffM[i] = rng.NormFloat64()
		peffQ[i] = rng.NormFloat64()
	}
	idx = rng.Perm(benchSpanQueries)
	return
}

var benchSink float64

// blocked4MulDots is the no-FMA variant of the blocked-four loop: plain
// mul+add chains, platform vectors loaded once per block of four queries.
func blocked4MulDots(wM, wQ, peffM, peffQ []float64, idx []int, mOut, uOut []float64) {
	peffM, peffQ = peffM[:32], peffQ[:32]
	i := 0
	for ; i+4 <= len(idx); i += 4 {
		a0 := wM[idx[i]*32:][:32]
		a1 := wM[idx[i+1]*32:][:32]
		a2 := wM[idx[i+2]*32:][:32]
		a3 := wM[idx[i+3]*32:][:32]
		c0 := wQ[idx[i]*32:][:32]
		c1 := wQ[idx[i+1]*32:][:32]
		c2 := wQ[idx[i+2]*32:][:32]
		c3 := wQ[idx[i+3]*32:][:32]
		var m0, m1, m2, m3, u0, u1, u2, u3 float64
		for e := 0; e < 32; e++ {
			pm, pq := peffM[e], peffQ[e]
			m0 += a0[e] * pm
			m1 += a1[e] * pm
			m2 += a2[e] * pm
			m3 += a3[e] * pm
			u0 += c0[e] * pq
			u1 += c1[e] * pq
			u2 += c2[e] * pq
			u3 += c3[e] * pq
		}
		mOut[i], mOut[i+1], mOut[i+2], mOut[i+3] = m0, m1, m2, m3
		uOut[i], uOut[i+1], uOut[i+2], uOut[i+3] = u0, u1, u2, u3
	}
	for ; i < len(idx); i++ {
		m, u := dot32Pair(wM[idx[i]*32:], peffM, wQ[idx[i]*32:], peffQ)
		mOut[i], uOut[i] = m, u
	}
}

// blocked4FMADots is the math.FMA variant of the same loop.
func blocked4FMADots(wM, wQ, peffM, peffQ []float64, idx []int, mOut, uOut []float64) {
	peffM, peffQ = peffM[:32], peffQ[:32]
	i := 0
	for ; i+4 <= len(idx); i += 4 {
		a0 := wM[idx[i]*32:][:32]
		a1 := wM[idx[i+1]*32:][:32]
		a2 := wM[idx[i+2]*32:][:32]
		a3 := wM[idx[i+3]*32:][:32]
		c0 := wQ[idx[i]*32:][:32]
		c1 := wQ[idx[i+1]*32:][:32]
		c2 := wQ[idx[i+2]*32:][:32]
		c3 := wQ[idx[i+3]*32:][:32]
		var m0, m1, m2, m3, u0, u1, u2, u3 float64
		for e := 0; e < 32; e++ {
			pm, pq := peffM[e], peffQ[e]
			m0 = math.FMA(a0[e], pm, m0)
			m1 = math.FMA(a1[e], pm, m1)
			m2 = math.FMA(a2[e], pm, m2)
			m3 = math.FMA(a3[e], pm, m3)
			u0 = math.FMA(c0[e], pq, u0)
			u1 = math.FMA(c1[e], pq, u1)
			u2 = math.FMA(c2[e], pq, u2)
			u3 = math.FMA(c3[e], pq, u3)
		}
		mOut[i], mOut[i+1], mOut[i+2], mOut[i+3] = m0, m1, m2, m3
		uOut[i], uOut[i+1], uOut[i+2], uOut[i+3] = u0, u1, u2, u3
	}
	for ; i < len(idx); i++ {
		m, u := dot32Pair(wM[idx[i]*32:], peffM, wQ[idx[i]*32:], peffQ)
		mOut[i], uOut[i] = m, u
	}
}

// pairDots is the exact kernel's per-query eight-chain pair dot.
func pairDots(wM, wQ, peffM, peffQ []float64, idx []int, mOut, uOut []float64) {
	for i, w := range idx {
		m, u := dot32Pair(wM[w*32:], peffM, wQ[w*32:], peffQ)
		mOut[i], uOut[i] = m, u
	}
}

func BenchmarkSpanDotStrategies(b *testing.B) {
	wM, wQ, peffM, peffQ, idx := benchDotData()
	mOut := make([]float64, benchSpanQueries)
	uOut := make([]float64, benchSpanQueries)
	run := func(f func(wM, wQ, peffM, peffQ []float64, idx []int, mOut, uOut []float64)) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f(wM, wQ, peffM, peffQ, idx, mOut, uOut)
				benchSink = mOut[0] + uOut[0]
			}
			b.ReportMetric(float64(benchSpanQueries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		}
	}
	b.Run("pair-exact", run(pairDots))
	b.Run("blocked4-mul", run(blocked4MulDots))
	b.Run("blocked4-fma", run(blocked4FMADots))
	if useFastVec {
		qs := make([]Query, len(idx))
		for i, w := range idx {
			qs[i] = Query{Workload: w}
		}
		b.Run("avx2-span", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := range mOut {
					mOut[j], uOut[j] = 0, 0
				}
				dotSpanAVX2(&wM[0], 32, &qs[0], len(qs), &peffM[0], &mOut[0])
				dotSpanAVX2(&wQ[0], 32, &qs[0], len(qs), &peffQ[0], &uOut[0])
				benchSink = mOut[0] + uOut[0]
			}
			b.ReportMetric(float64(benchSpanQueries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

func BenchmarkExpStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 960)
	out := make([]float64, 960)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	b.Run("math-exp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, x := range xs {
				out[j] = math.Exp(x)
			}
			benchSink = out[0]
		}
	})
	b.Run("exp-fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, x := range xs {
				out[j] = ExpFast(x)
			}
			benchSink = out[0]
		}
	})
	b.Run("exp-span", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(out, xs)
			expSpan(out)
			benchSink = out[0]
		}
	})
}
