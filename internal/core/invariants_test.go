package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/wasmcluster"
)

// Property tests on the core model's structural invariants.

// trainedModel trains one tiny model shared by the property tests.
func trainedModel(t *testing.T, seed int64, mutate func(*Config)) *Model {
	t.Helper()
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: seed, NumWorkloads: 24, MaxDevices: 4, SetsPerDegree: 10,
	}).Generate()
	cfg := smallConfig(seed)
	cfg.Steps = 120
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewModel(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	split.EnsureCoverage(ds)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	return m
}

// Interferer order must not matter: the interference term sums magnitudes.
func TestInterfererOrderInvariance(t *testing.T) {
	m := trainedModel(t, 21, nil)
	nw := m.Dataset().NumWorkloads()
	np := m.Dataset().NumPlatforms()
	rng := rand.New(rand.NewSource(22))
	f := func(w8, p8, a8, b8, c8 uint8) bool {
		w, p := int(w8)%nw, int(p8)%np
		a, b, c := int(a8)%nw, int(b8)%nw, int(c8)%nw
		perm1 := m.PredictLogSeconds(w, p, []int{a, b, c}, 0)
		perm2 := m.PredictLogSeconds(w, p, []int{c, a, b}, 0)
		return math.Abs(perm1-perm2) < 1e-10
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// With the interference term active, adding an interferer must change the
// prediction for at least some tuples (non-degenerate interference model).
func TestInterferenceNotDegenerate(t *testing.T) {
	m := trainedModel(t, 23, nil)
	changed := 0
	for w := 0; w < 10; w++ {
		iso := m.PredictLogSeconds(w, 0, nil, 0)
		with := m.PredictLogSeconds(w, 0, []int{(w + 1) % 10}, 0)
		if math.Abs(iso-with) > 1e-9 {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("interference term degenerate: no prediction changed")
	}
}

// Predictions must be finite for every (w, p, ks) combination.
func TestPredictionsAlwaysFinite(t *testing.T) {
	for _, mutate := range []func(*Config){
		nil,
		func(c *Config) { c.Objective = ObjLog },
		func(c *Config) { c.Objective = ObjProportional },
		func(c *Config) { c.Interference = InterferenceIgnore },
		func(c *Config) { c.Quantiles = []float64{0.5, 0.9}; c.Objective = ObjLogResidual },
	} {
		m := trainedModel(t, 29, mutate)
		nw, np := m.Dataset().NumWorkloads(), m.Dataset().NumPlatforms()
		rng := rand.New(rand.NewSource(30))
		for trial := 0; trial < 200; trial++ {
			w, p := rng.Intn(nw), rng.Intn(np)
			deg := rng.Intn(4)
			ks := make([]int, deg)
			for i := range ks {
				ks[i] = rng.Intn(nw)
			}
			for h := 0; h < m.Cfg.NumHeads(); h++ {
				v := m.PredictLogSeconds(w, p, ks, h)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite prediction %v (obj=%v w=%d p=%d ks=%v h=%d)",
						v, m.Cfg.Objective, w, p, ks, h)
				}
			}
		}
	}
}

// Training must be bit-for-bit deterministic given the same seed.
func TestTrainingDeterministic(t *testing.T) {
	a := trainedModel(t, 31, nil)
	b := trainedModel(t, 31, nil)
	for w := 0; w < 5; w++ {
		pa := a.PredictLogSeconds(w, 1, []int{2}, 0)
		pb := b.PredictLogSeconds(w, 1, []int{2}, 0)
		if pa != pb {
			t.Fatalf("nondeterministic training: %v vs %v", pa, pb)
		}
	}
}

// The s=0 configuration must degrade gracefully to interference-blind.
func TestZeroInterferenceTypes(t *testing.T) {
	m := trainedModel(t, 37, func(c *Config) { c.InterferenceTypes = 0 })
	iso := m.PredictLogSeconds(0, 0, nil, 0)
	with := m.PredictLogSeconds(0, 0, []int{1, 2}, 0)
	if iso != with {
		t.Fatal("s=0 model still interference-sensitive")
	}
	if m.InterferenceNorm(0) != 0 {
		t.Fatal("s=0 interference norm should be 0")
	}
}

// Duplicate interferers accumulate: two copies of the same aggressive
// workload must shift the magnitude more than one (before the activation's
// nonlinearity, the magnitudes add; verify the raw sum property via s=1,
// no activation).
func TestInterferenceMagnitudeAdditive(t *testing.T) {
	m := trainedModel(t, 41, func(c *Config) {
		c.InterferenceTypes = 1
		c.UseActivation = false
	})
	base := m.PredictResidual(0, 0, nil, 0)
	one := m.PredictResidual(0, 0, []int{3}, 0) - base
	two := m.PredictResidual(0, 0, []int{3, 3}, 0) - base
	if math.Abs(two-2*one) > 1e-9*math.Max(1, math.Abs(two)) {
		t.Fatalf("magnitudes not additive without activation: 1x=%v 2x=%v", one, two)
	}
}
