package core

import "math"

// This file holds the scalar arithmetic kernels of the opt-in fast scoring
// path (Config.FastScoring): an exp approximation with a documented
// relative error bound and reassociated multi-chain rank-32 dot kernels.
// None of it runs unless the caller explicitly chose PredictFusedBatchFast
// — the exact kernels in infer.go/fused.go are untouched. On amd64 with
// AVX2+FMA the span loops dispatch to the vector twins in
// fastasm_amd64.s; these scalar forms are the everywhere-fallback and the
// reference the vector kernels are tested against.
//
// Deliberately no math.FMA anywhere: under the default GOAMD64=v1 the
// compiler cannot assume FMA3 and lowers every math.FMA call to a feature
// test plus a function-call fallback, which benchmarks slower than plain
// mul+add on this code (see BenchmarkSpanDotStrategies). Hardware FMA is
// used only in the runtime-dispatched assembly kernels.

// FastExpMaxRelErr bounds |ExpFast(x) − exp(x)| / exp(x) for all finite x
// in the reduced range (|x| ≤ 708; outside it ExpFast defers to math.Exp,
// so the bound holds everywhere). The vectorized expSpanAVX2 shares the
// algorithm and the bound (its FMA contraction only removes roundings).
//
// Derivation: ExpFast computes exp(x) = 2^k · exp(r) with k = round(x·log₂e)
// and r = x − k·ln2 reduced Cody–Waite style, |r| ≤ ln2/2 ≈ 0.34658.
//
//   - Reduction: ln2Hi carries the top 40 bits of ln2, so k·ln2Hi is exact
//     for |k| ≤ 2^10 and subtracting it cancels exactly; the ln2Lo
//     correction leaves a residual of |k|·|ln2 − ln2Hi − ln2Lo| ≤
//     2^10·1.7e-27 ≈ 1.8e-24 — negligible — plus two roundings of the
//     correction term (≤ 2^-52·|r|).
//   - Polynomial: the degree-10 Taylor series of exp on [−ln2/2, ln2/2]
//     truncates at |r|^11/11! ≤ 0.34658^11/39916800 ≈ 2.2e-13, i.e. a
//     relative error ≤ 2.2e-13/exp(−ln2/2) ≈ 3.1e-13. The ten Horner
//     steps each round a multiply and an add, ≤ 20·2^-53 ≈ 2.3e-15
//     relative in total.
//   - Scaling by 2^k is an exact exponent-field add (k keeps the result
//     normal in the guarded range).
//
// Total ≤ 3.2e-13 relative; 1e-12 (≈ 2^12.2 ulp of a float64) is the
// documented bound, leaving a 3x margin, and TestExpFastErrorBound
// measures both the scalar and vector kernels against math.Exp over a
// dense sweep of the reduced range.
const FastExpMaxRelErr = 1e-12

const (
	expLog2E = 1.44269504088896338700e+00 // log₂e
	expLn2Hi = 6.93147180369123816490e-01 // high 40 bits of ln2
	expLn2Lo = 1.90821492927058770002e-10 // ln2 − expLn2Hi
	// expRound shifts a float64 so its integer part lands in the low
	// mantissa bits: adding and subtracting it rounds to nearest even
	// without a math.Round call, for |v| < 2^51.
	expRound = 1.5 / 0x1p-52
)

// Taylor coefficients 1/n! for the degree-10 polynomial.
const (
	expC2  = 1.0 / 2
	expC3  = 1.0 / 6
	expC4  = 1.0 / 24
	expC5  = 1.0 / 120
	expC6  = 1.0 / 720
	expC7  = 1.0 / 5040
	expC8  = 1.0 / 40320
	expC9  = 1.0 / 362880
	expC10 = 1.0 / 3628800
)

// ExpFast approximates math.Exp within FastExpMaxRelErr relative error.
// Arguments outside [−708, 708] — including NaN and ±Inf, and every input
// whose exact exp overflows or goes subnormal — take the math.Exp path,
// so special-value behavior is identical to the exact kernel; only the
// well-scaled interior pays the (branch-predictable) fast path.
func ExpFast(x float64) float64 {
	if !(x >= -708 && x <= 708) {
		return math.Exp(x)
	}
	kf := (x*expLog2E + expRound) - expRound
	r := x - kf*expLn2Hi // exact: kf·ln2Hi has ≥ 12 trailing zero bits
	r -= kf * expLn2Lo
	p := expC10
	p = p*r + expC9
	p = p*r + expC8
	p = p*r + expC7
	p = p*r + expC6
	p = p*r + expC5
	p = p*r + expC4
	p = p*r + expC3
	p = p*r + expC2
	p = p*r + 1
	p = p*r + 1
	return p * math.Float64frombits(uint64(1023+int64(kf))<<52)
}

// expSpan exponentiates v in place within FastExpMaxRelErr. The vector
// kernel guards its own lanes and stops at the first group holding a
// value outside ExpFast's range — a +Inf conformal offset marking a span
// infeasible is the common case — so the scalar loop (whose guard defers
// to math.Exp exactly like the exact kernel) finishes whatever remains.
func expSpan(v []float64) {
	i := 0
	if useFastVec && len(v) >= 4 {
		i = expSpanAVX2(&v[0], len(v))
	}
	for ; i < len(v); i++ {
		v[i] = ExpFast(v[i])
	}
}

// dot32Fast is a rank-32 dot in four plain mul+add chains — the scalar
// fast path's single-model kernel. Reassociates relative to dot32 only
// through the chain regrouping, so it differs from the exact dot by at
// most a few roundings of the term magnitude sum (≤ 32·2^-53·Σ|aᵢbᵢ|).
func dot32Fast(a, b []float64) float64 {
	a = a[:32]
	b = b[:32]
	var s0, s1, s2, s3 float64
	for i := 0; i < 32; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	return s0 + s1 + s2 + s3
}

// dot32F32 accumulates a rank-32 dot in float32 — the FastScoringF32
// ranking-head option. Eight chains keep the short-latency float32 adds
// pipelined; elements are narrowed on load.
func dot32F32(a []float64, b *[32]float32) float64 {
	a = a[:32]
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	for i := 0; i < 32; i += 8 {
		s0 += float32(a[i]) * b[i]
		s1 += float32(a[i+1]) * b[i+1]
		s2 += float32(a[i+2]) * b[i+2]
		s3 += float32(a[i+3]) * b[i+3]
		s4 += float32(a[i+4]) * b[i+4]
		s5 += float32(a[i+5]) * b[i+5]
		s6 += float32(a[i+6]) * b[i+6]
		s7 += float32(a[i+7]) * b[i+7]
	}
	return float64(((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7)))
}
