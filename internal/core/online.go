package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/opt"
)

// OnlineConfig controls incremental model updates — the "efficient online
// learning" extension the paper lists as future work (§6). New
// observations are mixed with replayed old observations to avoid
// catastrophic forgetting, and only the factorization parameters are
// updated (the linear-scaling baseline stays fixed, so residual targets
// remain comparable across updates).
type OnlineConfig struct {
	// Steps of AdaMax on the mixed stream (default 200).
	Steps int
	// Batch size per step (default 256).
	Batch int
	// ReplayFraction is the share of each batch drawn from old
	// observations (default 0.5).
	ReplayFraction float64
	// LR for the update (default: half the training LR).
	LR float64
	// Seed for batch sampling.
	Seed int64
}

func (c OnlineConfig) defaults(base Config) OnlineConfig {
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.Batch == 0 {
		c.Batch = 256
	}
	if c.ReplayFraction == 0 {
		c.ReplayFraction = 0.5
	}
	if c.LR == 0 {
		c.LR = base.LR / 2
	}
	return c
}

// OnlineUpdate fine-tunes the model on newly observed data. newIdx are
// indices of observations appended to the model's dataset since training;
// replayIdx are (a sample of) the original training indices. The model
// must already be trained; the baseline is not refitted.
//
// Mixed-degree batches are handled by grouping each batch per degree, as
// in training. Embedding caches are refreshed on return.
func (m *Model) OnlineUpdate(newIdx, replayIdx []int, cfg OnlineConfig) error {
	if m.Baseline == nil {
		return fmt.Errorf("core: OnlineUpdate before Train")
	}
	if len(newIdx) == 0 {
		return fmt.Errorf("core: no new observations")
	}
	for _, i := range newIdx {
		if i < 0 || i >= len(m.data.Obs) {
			return fmt.Errorf("core: new observation index %d out of range", i)
		}
	}
	cfg = cfg.defaults(m.Cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	optimizer := opt.NewAdaMax(m.params, cfg.LR, 0, 0)

	nNew := int(float64(cfg.Batch) * (1 - cfg.ReplayFraction))
	if nNew < 1 {
		nNew = 1
	}
	nOld := cfg.Batch - nNew
	if len(replayIdx) == 0 {
		nOld = 0
	}
	var batches []batch
	var weights []float64
	for step := 0; step < cfg.Steps; step++ {
		idx := make([]int, 0, cfg.Batch)
		for i := 0; i < nNew; i++ {
			idx = append(idx, newIdx[rng.Intn(len(newIdx))])
		}
		for i := 0; i < nOld; i++ {
			idx = append(idx, replayIdx[rng.Intn(len(replayIdx))])
		}
		pools, degrees := dataset.ByDegree(m.data, idx)
		batches, weights = batches[:0], weights[:0]
		for _, deg := range degrees {
			batches = append(batches, m.makeBatch(pools[deg], m.Cfg.Interference == InterferenceIgnore))
			weights = append(weights, float64(len(pools[deg]))/float64(len(idx)))
		}
		m.runStep(batches, weights)
		optimizer.Step()
		optimizer.ZeroGrads()
	}
	m.SyncEmbeddings()
	return nil
}
