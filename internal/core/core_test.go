package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/wasmcluster"
)

// testData generates a small dataset once for the package tests.
func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: 42, NumWorkloads: 30, MaxDevices: 5, SetsPerDegree: 12,
	}).Generate()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Hidden = 32
	cfg.EmbeddingDim = 16
	cfg.Steps = 400
	cfg.BatchPerDegree = 128
	cfg.EvalEvery = 100
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(1)
	bad.EmbeddingDim = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero embedding dim")
	}
	bad = DefaultConfig(1)
	bad.Quantiles = []float64{1.5}
	if bad.Validate() == nil {
		t.Fatal("accepted quantile > 1")
	}
	bad = DefaultConfig(1)
	bad.Objective = ObjProportional
	bad.Quantiles = []float64{0.9}
	if bad.Validate() == nil {
		t.Fatal("accepted proportional+quantiles")
	}
}

func TestObjectiveAndModeStrings(t *testing.T) {
	if ObjLogResidual.String() != "log-residual" || ObjLog.String() != "log" ||
		ObjProportional.String() != "proportional" || Objective(9).String() != "unknown" {
		t.Fatal("objective names wrong")
	}
	if InterferenceAware.String() != "aware" || InterferenceDiscard.String() != "discard" ||
		InterferenceIgnore.String() != "ignore" || InterferenceMode(9).String() != "unknown" {
		t.Fatal("mode names wrong")
	}
}

func TestLinearBaselineReducesLoss(t *testing.T) {
	ds := testData(t)
	all := seq(len(ds.Obs))
	var iso []int
	for _, i := range all {
		if ds.Obs[i].Degree() == 0 {
			iso = append(iso, i)
		}
	}
	zero := &LinearBaseline{W: make([]float64, ds.NumWorkloads()), P: make([]float64, ds.NumPlatforms())}
	fit := FitLinearBaseline(ds, all, 0)
	if fit.Loss(ds, iso) >= zero.Loss(ds, iso)*0.2 {
		t.Fatalf("baseline loss %.3f vs zero %.3f: insufficient reduction",
			fit.Loss(ds, iso), zero.Loss(ds, iso))
	}
}

func TestLinearBaselineMonotoneConvergence(t *testing.T) {
	ds := testData(t)
	all := seq(len(ds.Obs))
	var iso []int
	for _, i := range all {
		if ds.Obs[i].Degree() == 0 {
			iso = append(iso, i)
		}
	}
	prev := math.Inf(1)
	for _, iters := range []int{1, 2, 5, 20} {
		l := FitLinearBaseline(ds, all, iters).Loss(ds, iso)
		if l > prev+1e-9 {
			t.Fatalf("loss increased with more iterations: %v -> %v", prev, l)
		}
		prev = l
	}
}

func TestScaleInvarianceOfResidual(t *testing.T) {
	// Paper Eq. 3: duplicating a job γ times leaves the residual unchanged.
	for _, gamma := range []float64{2, 10, 0.5} {
		orig, scaled := scaleInvariantResidual(1.7, 0.4, gamma)
		if math.Abs(orig-scaled) > 1e-12 {
			t.Fatalf("residual not scale invariant: %v vs %v", orig, scaled)
		}
	}
}

func TestBaselineHandlesInterferenceOnlyEntities(t *testing.T) {
	ds := testData(t)
	// Keep only observations where workload 0 appears with interference.
	var idx []int
	for i, o := range ds.Obs {
		if o.Workload == 0 && o.Degree() == 0 {
			continue
		}
		idx = append(idx, i)
	}
	b := FitLinearBaseline(ds, idx, 0)
	if math.IsNaN(b.W[0]) || math.IsInf(b.W[0], 0) {
		t.Fatal("interference-only workload got invalid baseline")
	}
}

func TestNewModelParamCount(t *testing.T) {
	ds := testData(t)
	cfg := smallConfig(1)
	m, err := NewModel(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	dw := ds.WorkloadFeatures.Cols + 1 // q=1
	dp := ds.PlatformFeatures.Cols + 1
	r, s, hdn := cfg.EmbeddingDim, cfg.InterferenceTypes, cfg.Hidden
	want := (dw*hdn + hdn) + (hdn*hdn + hdn) + (hdn*r + r) + // fw
		(dp*hdn + hdn) + (hdn*hdn + hdn) + (hdn*r*(1+2*s) + r*(1+2*s)) + // fp
		ds.NumWorkloads() + ds.NumPlatforms() // φ
	if got := m.NumParams(); got != want {
		t.Fatalf("NumParams = %d want %d", got, want)
	}
}

func TestNewModelRejectsNoInputs(t *testing.T) {
	ds := testData(t)
	cfg := smallConfig(1)
	cfg.UseWorkloadFeatures = false
	cfg.UsePlatformFeatures = false
	cfg.LearnedFeatures = 0
	if _, err := NewModel(cfg, ds); err == nil {
		t.Fatal("accepted model with no inputs")
	}
}

func TestTrainImprovesOverBaseline(t *testing.T) {
	ds := testData(t)
	rng := rand.New(rand.NewSource(9))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	split.EnsureCoverage(ds)

	cfg := smallConfig(2)
	cfg.Steps = 800
	m, err := NewModel(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Train(split)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValHistory) == 0 || math.IsInf(res.BestValLoss, 1) {
		t.Fatal("no validation history")
	}

	// Compare squared log error on test vs. the baseline alone.
	var mseModel, mseBase float64
	n := 0
	for _, i := range split.Test {
		o := ds.Obs[i]
		lp := m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, 0)
		dm := lp - o.LogSeconds()
		db := m.Baseline.LogBaseline(o.Workload, o.Platform) - o.LogSeconds()
		mseModel += dm * dm
		mseBase += db * db
		n++
	}
	mseModel /= float64(n)
	mseBase /= float64(n)
	if mseModel >= mseBase {
		t.Fatalf("model mse %.4f not better than baseline %.4f", mseModel, mseBase)
	}
}

func TestPredictConsistencyBatchVsSingle(t *testing.T) {
	ds := testData(t)
	cfg := smallConfig(3)
	cfg.Steps = 50
	m, err := NewModel(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	// The autodiff graph and the cached-embedding fast path must agree.
	w, p := m.embeddings()
	var idx []int
	for i, o := range ds.Obs {
		if o.Degree() == 2 {
			idx = append(idx, i)
		}
		if len(idx) == 16 {
			break
		}
	}
	bt := m.makeBatch(idx, false)
	graphPred := m.predictBatch(w, p, bt, 0)
	for b, oi := range idx {
		o := ds.Obs[oi]
		fast := m.PredictResidual(o.Workload, o.Platform, o.Interferers, 0)
		if math.Abs(fast-graphPred.Data.At(b, 0)) > 1e-10 {
			t.Fatalf("obs %d: fast %.8f vs graph %.8f", oi, fast, graphPred.Data.At(b, 0))
		}
	}
}

func TestInterferencePredictionChangesWithInterferers(t *testing.T) {
	ds := testData(t)
	cfg := smallConfig(5)
	cfg.Steps = 300
	m, _ := NewModel(cfg, ds)
	rng := rand.New(rand.NewSource(6))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	iso := m.PredictLogSeconds(0, 0, nil, 0)
	with := m.PredictLogSeconds(0, 0, []int{1, 2}, 0)
	if iso == with {
		t.Fatal("interference term has no effect")
	}
}

func TestDiscardModeIgnoresInterferers(t *testing.T) {
	ds := testData(t)
	cfg := smallConfig(7)
	cfg.Steps = 60
	cfg.Interference = InterferenceDiscard
	m, _ := NewModel(cfg, ds)
	rng := rand.New(rand.NewSource(8))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	iso := m.PredictLogSeconds(0, 0, nil, 0)
	with := m.PredictLogSeconds(0, 0, []int{1, 2}, 0)
	if iso != with {
		t.Fatal("discard-mode prediction depends on interferers")
	}
}

func TestQuantileHeadsOrdered(t *testing.T) {
	// Higher target quantiles must produce (on average) higher predictions.
	ds := testData(t)
	cfg := smallConfig(10)
	cfg.Quantiles = []float64{0.5, 0.9}
	cfg.Steps = 800
	m, _ := NewModel(cfg, ds)
	rng := rand.New(rand.NewSource(11))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for _, i := range split.Test[:min(300, len(split.Test))] {
		o := ds.Obs[i]
		lo += m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, 0)
		hi += m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, 1)
	}
	if hi <= lo {
		t.Fatalf("q=0.9 head mean %.4f not above q=0.5 head %.4f", hi, lo)
	}
	if h, err := m.HeadForQuantile(0.9); err != nil || h != 1 {
		t.Fatalf("HeadForQuantile: %v %v", h, err)
	}
	if _, err := m.HeadForQuantile(0.123); err == nil {
		t.Fatal("HeadForQuantile accepted unknown quantile")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := testData(t)
	cfg := smallConfig(12)
	cfg.Steps = 60
	m, _ := NewModel(cfg, ds)
	rng := rand.New(rand.NewSource(13))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []struct{ w, p int }{{0, 0}, {3, 2}, {5, 1}} {
		a := m.PredictLogSeconds(o.w, o.p, []int{1}, 0)
		b := m2.PredictLogSeconds(o.w, o.p, []int{1}, 0)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("prediction changed after reload: %v vs %v", a, b)
		}
	}
}

func TestEmbeddingAccessors(t *testing.T) {
	ds := testData(t)
	cfg := smallConfig(14)
	cfg.Steps = 30
	m, _ := NewModel(cfg, ds)
	rng := rand.New(rand.NewSource(15))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	we := m.WorkloadEmbeddings(0)
	if we.Rows != ds.NumWorkloads() || we.Cols != cfg.EmbeddingDim {
		t.Fatalf("workload embeddings %dx%d", we.Rows, we.Cols)
	}
	pe := m.PlatformEmbeddings()
	if pe.Rows != ds.NumPlatforms() || pe.Cols != cfg.EmbeddingDim {
		t.Fatalf("platform embeddings %dx%d", pe.Rows, pe.Cols)
	}
	for j := 0; j < ds.NumPlatforms(); j++ {
		if n := m.InterferenceNorm(j); n < 0 || math.IsNaN(n) {
			t.Fatalf("InterferenceNorm(%d) = %v", j, n)
		}
	}
}

func TestInterferenceNormMatchesDense(t *testing.T) {
	// Power iteration must match a brute-force SVD-free check: σ₁² is the
	// largest eigenvalue of FᵀF, which for small r we can bound via the
	// Frobenius norm: σ₁ ≤ ‖F‖_F ≤ √s σ₁... here just verify rank-1 case
	// where ‖F‖₂ = ‖vs‖‖vg‖ exactly.
	ds := testData(t)
	cfg := smallConfig(16)
	cfg.InterferenceTypes = 1
	cfg.Steps = 30
	m, _ := NewModel(cfg, ds)
	rng := rand.New(rand.NewSource(17))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	r := cfg.EmbeddingDim
	prow := m.pEmb.Row(0)
	vs := prow[r : 2*r]
	vg := prow[2*r : 3*r]
	want := math.Sqrt(dot(vs, vs)) * math.Sqrt(dot(vg, vg))
	if got := m.InterferenceNorm(0); math.Abs(got-want) > 1e-8*math.Max(1, want) {
		t.Fatalf("rank-1 spectral norm %v want %v", got, want)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
