package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Model is the trained (or trainable) Pitot predictor.
//
// Architecture (paper Fig. 2): two embedding towers fw, fp map side
// information concatenated with learned features φ to embeddings. The
// workload tower emits one rank-r embedding per head (one head per target
// quantile); the platform tower emits the platform embedding p plus the
// interference susceptibility/magnitude directions v_s, v_g for each of the
// s interference types.
type Model struct {
	Cfg      Config
	Baseline *LinearBaseline

	data *dataset.Dataset

	fw, fp     *nn.MLP
	phiW, phiP *nn.Embedding // extra learned features (q per entity)

	params []*autodiff.Value

	// Standardized (z-scored) copies of the side-information matrices;
	// raw opcode log-counts span tens of log units and would saturate the
	// towers otherwise.
	xw, xp *tensor.Matrix

	// Inference-time embedding caches, refreshed by SyncEmbeddings.
	wEmb *tensor.Matrix // Nw x r*H
	pEmb *tensor.Matrix // Np x r*(1+2s)

	// Cached constant tower inputs, valid when a tower has no learned
	// features (the input then never changes across steps).
	wInConst, pInConst *autodiff.Value
}

// standardize z-scores each column; constant columns become zero. The
// variance uses the two-pass formula Σ(x−mean)² rather than E[x²]−E[x]²,
// which cancels catastrophically for large-mean columns (such as raw
// opcode log-counts).
func standardize(m *tensor.Matrix) *tensor.Matrix {
	out := m.Clone()
	n := float64(m.Rows)
	for j := 0; j < m.Cols; j++ {
		var sum float64
		for i := 0; i < m.Rows; i++ {
			sum += m.At(i, j)
		}
		mean := sum / n
		var sumSq float64
		for i := 0; i < m.Rows; i++ {
			d := m.At(i, j) - mean
			sumSq += d * d
		}
		variance := sumSq / n
		if variance < 1e-12 {
			for i := 0; i < m.Rows; i++ {
				out.Set(i, j, 0)
			}
			continue
		}
		inv := 1 / math.Sqrt(variance)
		for i := 0; i < m.Rows; i++ {
			out.Set(i, j, (m.At(i, j)-mean)*inv)
		}
	}
	return out
}

// NewModel builds an untrained model for the dataset.
func NewModel(cfg Config, d *dataset.Dataset) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.UseWorkloadFeatures && !cfg.UsePlatformFeatures && cfg.LearnedFeatures == 0 {
		return nil, fmt.Errorf("core: model needs features or learned features")
	}
	// A config can arrive from a persisted model and the dataset from the
	// wire (LoadPredictor); a missing feature matrix must be an error, not
	// a panic in standardize.
	if cfg.UseWorkloadFeatures && d.WorkloadFeatures == nil {
		return nil, fmt.Errorf("core: config requires workload features but dataset has none")
	}
	if cfg.UsePlatformFeatures && d.PlatformFeatures == nil {
		return nil, fmt.Errorf("core: config requires platform features but dataset has none")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, data: d}
	if cfg.UseWorkloadFeatures {
		m.xw = standardize(d.WorkloadFeatures)
	}
	if cfg.UsePlatformFeatures {
		m.xp = standardize(d.PlatformFeatures)
	}

	dw, dp := 0, 0
	if cfg.UseWorkloadFeatures {
		dw = d.WorkloadFeatures.Cols
	}
	if cfg.UsePlatformFeatures {
		dp = d.PlatformFeatures.Cols
	}
	r, s, h := cfg.EmbeddingDim, cfg.InterferenceTypes, cfg.NumHeads()
	m.fw = nn.NewMLP(rng, nn.ActGELU, dw+cfg.LearnedFeatures, cfg.Hidden, cfg.Hidden, r*h)
	m.fp = nn.NewMLP(rng, nn.ActGELU, dp+cfg.LearnedFeatures, cfg.Hidden, cfg.Hidden, r*(1+2*s))
	m.params = append(m.params, m.fw.Params()...)
	m.params = append(m.params, m.fp.Params()...)
	if cfg.LearnedFeatures > 0 {
		m.phiW = nn.NewEmbedding(rng, d.NumWorkloads(), cfg.LearnedFeatures, 0.1)
		m.phiP = nn.NewEmbedding(rng, d.NumPlatforms(), cfg.LearnedFeatures, 0.1)
		m.params = append(m.params, m.phiW.Params()...)
		m.params = append(m.params, m.phiP.Params()...)
	}
	if m.phiW == nil && m.xw != nil {
		m.wInConst = autodiff.NewConst(m.xw)
	}
	if m.phiP == nil && m.xp != nil {
		m.pInConst = autodiff.NewConst(m.xp)
	}
	return m, nil
}

// workers returns the goroutine fan-out for parallel loss tasks and batch
// inference.
func (m *Model) workers() int {
	if m.Cfg.Workers > 0 {
		return m.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// NumParams returns the number of scalar trainable parameters.
func (m *Model) NumParams() int { return nn.NumParams(m.params) }

// Params exposes the trainable parameters (for the optimizer and tests).
func (m *Model) Params() []*autodiff.Value { return m.params }

// Dataset returns the dataset the model was built for.
func (m *Model) Dataset() *dataset.Dataset { return m.data }

// towerInput assembles [features | φ] for one tower. Either part may be
// absent depending on the configuration. With learned features the concat
// is a single fused op (the old per-step identity gather over the φ table
// is elided); without them the cached constant is reused across steps.
func towerInput(feats *tensor.Matrix, phi *nn.Embedding, cached *autodiff.Value) *autodiff.Value {
	if phi == nil {
		return cached
	}
	if feats == nil {
		return phi.Table
	}
	return autodiff.ConcatConstCols(feats, phi.Table)
}

// embeddings runs both towers over every workload and platform. Computing
// all embeddings each step and gathering the needed rows matches the
// paper's implementation strategy (App. B.3) — the tables are small
// relative to the batch.
func (m *Model) embeddings() (w, p *autodiff.Value) {
	xw := towerInput(m.xw, m.phiW, m.wInConst)
	xp := towerInput(m.xp, m.phiP, m.pInConst)
	return m.fw.Forward(xw), m.fp.Forward(xp)
}

// embeddingsInfer computes both towers' outputs without building a tape:
// no Value graph, no gradient buffers. The returned matrices are
// pool-backed and owned by the caller (release with tensor.PutPooled).
func (m *Model) embeddingsInfer() (w, p *tensor.Matrix) {
	return m.towerInfer(m.fw, m.xw, m.phiW), m.towerInfer(m.fp, m.xp, m.phiP)
}

func (m *Model) towerInfer(f *nn.MLP, feats *tensor.Matrix, phi *nn.Embedding) *tensor.Matrix {
	cat, x := m.towerInput2(feats, phi)
	if cat != nil {
		defer tensor.PutPooled(cat)
	}
	return f.Infer(x)
}

// towerInferInto is towerInfer writing into a caller-reused output buffer
// (see nn.MLP.InferInto). The [features | φ] concat scratch comes from the
// size-classed tensor pool, so consecutive tower syncs — including the
// mean and quantile models' towers inside one Observe, whose concat shapes
// match — recycle one backing buffer instead of allocating per tower.
func (m *Model) towerInferInto(dst *tensor.Matrix, f *nn.MLP, feats *tensor.Matrix, phi *nn.Embedding) *tensor.Matrix {
	cat, x := m.towerInput2(feats, phi)
	if cat != nil {
		defer tensor.PutPooled(cat)
	}
	return f.InferInto(dst, x)
}

// towerInput2 assembles the tape-free tower input [features | φ]; cat is
// non-nil (pool-backed, owned by the caller) only when a concat was needed.
func (m *Model) towerInput2(feats *tensor.Matrix, phi *nn.Embedding) (cat, x *tensor.Matrix) {
	x = feats
	if phi != nil {
		t := phi.Table.Data
		if feats == nil {
			x = t
		} else {
			cat = tensor.GetPooled(feats.Rows, feats.Cols+t.Cols)
			tensor.ConcatColsInto(cat, feats, t)
			x = cat
		}
	}
	return cat, x
}

// batch describes one fixed-degree minibatch: parallel index slices into
// the entity tables.
type batch struct {
	degree int
	wi, pj []int   // workload / platform per sample
	ks     [][]int // ks[m][b]: m-th interferer of sample b (len = degree)
	target []float64
}

// makeBatch converts observation indices (all of the same degree) into a
// batch with regression targets under the model's objective. When
// stripInterference is true (InterferenceIgnore), interferer indices are
// dropped so the model treats the samples as isolation runs.
func (m *Model) makeBatch(obsIdx []int, stripInterference bool) batch {
	var bt batch
	if len(obsIdx) == 0 {
		return bt
	}
	deg := m.data.Obs[obsIdx[0]].Degree()
	if stripInterference {
		deg = 0
	}
	bt.degree = deg
	bt.ks = make([][]int, deg)
	for mi := range bt.ks {
		bt.ks[mi] = make([]int, 0, len(obsIdx))
	}
	for _, oi := range obsIdx {
		o := m.data.Obs[oi]
		if !stripInterference && o.Degree() != bt.degree {
			panic("core: mixed degrees in batch")
		}
		bt.wi = append(bt.wi, o.Workload)
		bt.pj = append(bt.pj, o.Platform)
		for mi := 0; mi < deg; mi++ {
			bt.ks[mi] = append(bt.ks[mi], o.Interferers[mi])
		}
		bt.target = append(bt.target, residualTarget(m.Cfg.Objective, m.Baseline, o))
	}
	return bt
}

// predictBatch builds the prediction graph for one batch and head h
// (paper Eq. 9):
//
//	ŷ = wᵢᵀpⱼ + Σ_t (wᵢᵀ v_s⁽ᵗ⁾) · α( Σ_k w_kᵀ v_g⁽ᵗ⁾ )
//
// returning a B x 1 Value of residual predictions. Embedding lookups use
// the fused GatherCols (no full-width row copies for multi-head tables)
// and the inner products use the fused RowDot (no B x r intermediates).
func (m *Model) predictBatch(w, p *autodiff.Value, bt batch, h int) *autodiff.Value {
	r, s := m.Cfg.EmbeddingDim, m.Cfg.InterferenceTypes
	lo, hi := h*r, (h+1)*r
	wi := autodiff.GatherCols(w, bt.wi, lo, hi)
	pj := autodiff.GatherCols(p, bt.pj, 0, r)
	pred := autodiff.RowDot(wi, pj)

	if bt.degree > 0 && m.Cfg.Interference == InterferenceAware && s > 0 {
		// Gather interferer embeddings once per slot.
		wks := make([]*autodiff.Value, bt.degree)
		for mi := 0; mi < bt.degree; mi++ {
			wks[mi] = autodiff.GatherCols(w, bt.ks[mi], lo, hi)
		}
		for t := 0; t < s; t++ {
			vs := autodiff.GatherCols(p, bt.pj, r*(1+t), r*(2+t))
			vg := autodiff.GatherCols(p, bt.pj, r*(1+s+t), r*(2+s+t))
			var mag *autodiff.Value
			for mi := 0; mi < bt.degree; mi++ {
				term := autodiff.RowDot(wks[mi], vg)
				if mag == nil {
					mag = term
				} else {
					mag = autodiff.Add(mag, term)
				}
			}
			if m.Cfg.UseActivation {
				mag = autodiff.LeakyReLU(mag, m.Cfg.ActivationSlope)
			}
			sus := autodiff.RowDot(wi, vs)
			pred = autodiff.Add(pred, autodiff.Mul(sus, mag))
		}
	}
	return pred
}

// headLoss builds the loss graph of one batch for a single head: pinball
// at the head's quantile, or the configured squared loss for the mean
// model (head 0).
func (m *Model) headLoss(w, p *autodiff.Value, bt batch, h int) *autodiff.Value {
	target := tensor.FromSlice(len(bt.target), 1, bt.target)
	pred := m.predictBatch(w, p, bt, h)
	if len(m.Cfg.Quantiles) == 0 {
		if m.Cfg.Objective == ObjProportional {
			// Relative squared error: weight each sample by 1/C*².
			wgt := tensor.New(target.Rows, 1)
			for i, c := range bt.target {
				wgt.Data[i] = 1 / (c * c)
			}
			return autodiff.WeightedMSE(pred, target, wgt)
		}
		return autodiff.MSE(pred, target)
	}
	return autodiff.Pinball(pred, target, m.Cfg.Quantiles[h])
}

// batchLoss computes the training loss of one batch across all heads.
// Quantile heads get equal weight (App. B.3).
func (m *Model) batchLoss(w, p *autodiff.Value, bt batch) *autodiff.Value {
	if len(m.Cfg.Quantiles) == 0 {
		return m.headLoss(w, p, bt, 0)
	}
	var total *autodiff.Value
	for h := range m.Cfg.Quantiles {
		l := m.headLoss(w, p, bt, h)
		if total == nil {
			total = l
		} else {
			total = autodiff.Add(total, l)
		}
	}
	return autodiff.Scale(total, 1/float64(len(m.Cfg.Quantiles)))
}

// predictResidualsInto fills dst with head h's residual predictions for
// the batch using plain embedding matrices — the tape-free twin of
// predictBatch, used by validation and batch inference.
func (m *Model) predictResidualsInto(dst []float64, wE, pE *tensor.Matrix, bt batch, h int) {
	r, s := m.Cfg.EmbeddingDim, m.Cfg.InterferenceTypes
	lo, hi := h*r, (h+1)*r
	interference := bt.degree > 0 && m.Cfg.Interference == InterferenceAware && s > 0
	for b := range dst {
		wrow := wE.Row(bt.wi[b])[lo:hi]
		prow := pE.Row(bt.pj[b])
		pred := dot(wrow, prow[:r])
		if interference {
			for t := 0; t < s; t++ {
				vs := prow[r*(1+t) : r*(2+t)]
				vg := prow[r*(1+s+t) : r*(2+s+t)]
				var mag float64
				for mi := 0; mi < bt.degree; mi++ {
					mag += dot(wE.Row(bt.ks[mi][b])[lo:hi], vg)
				}
				if m.Cfg.UseActivation && mag < 0 {
					mag *= m.Cfg.ActivationSlope
				}
				pred += dot(wrow, vs) * mag
			}
		}
		dst[b] = pred
	}
}

// batchLossInfer computes the training loss of one batch across all heads
// without building a tape, mirroring batchLoss.
func (m *Model) batchLossInfer(wE, pE *tensor.Matrix, bt batch) float64 {
	n := len(bt.target)
	if n == 0 {
		return 0
	}
	preds := make([]float64, n)
	if len(m.Cfg.Quantiles) == 0 {
		m.predictResidualsInto(preds, wE, pE, bt, 0)
		var loss float64
		if m.Cfg.Objective == ObjProportional {
			for i, p := range preds {
				c := bt.target[i]
				d := (p - c) / c
				loss += d * d
			}
		} else {
			for i, p := range preds {
				d := p - bt.target[i]
				loss += d * d
			}
		}
		return loss / float64(n)
	}
	var total float64
	for h, xi := range m.Cfg.Quantiles {
		m.predictResidualsInto(preds, wE, pE, bt, h)
		var loss float64
		for i, p := range preds {
			d := bt.target[i] - p
			if d > 0 {
				loss += xi * d
			} else {
				loss += (xi - 1) * d
			}
		}
		total += loss / float64(n)
	}
	return total / float64(len(m.Cfg.Quantiles))
}
