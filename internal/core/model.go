package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Model is the trained (or trainable) Pitot predictor.
//
// Architecture (paper Fig. 2): two embedding towers fw, fp map side
// information concatenated with learned features φ to embeddings. The
// workload tower emits one rank-r embedding per head (one head per target
// quantile); the platform tower emits the platform embedding p plus the
// interference susceptibility/magnitude directions v_s, v_g for each of the
// s interference types.
type Model struct {
	Cfg      Config
	Baseline *LinearBaseline

	data *dataset.Dataset

	fw, fp     *nn.MLP
	phiW, phiP *nn.Embedding // extra learned features (q per entity)

	params []*autodiff.Value

	// Standardized (z-scored) copies of the side-information matrices;
	// raw opcode log-counts span tens of log units and would saturate the
	// towers otherwise.
	xw, xp *tensor.Matrix

	// Inference-time embedding caches, refreshed by SyncEmbeddings.
	wEmb *tensor.Matrix // Nw x r*H
	pEmb *tensor.Matrix // Np x r*(1+2s)
}

// standardize z-scores each column; constant columns become zero.
func standardize(m *tensor.Matrix) *tensor.Matrix {
	out := m.Clone()
	for j := 0; j < m.Cols; j++ {
		var sum, sumSq float64
		for i := 0; i < m.Rows; i++ {
			v := m.At(i, j)
			sum += v
			sumSq += v * v
		}
		n := float64(m.Rows)
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 1e-12 {
			for i := 0; i < m.Rows; i++ {
				out.Set(i, j, 0)
			}
			continue
		}
		inv := 1 / math.Sqrt(variance)
		for i := 0; i < m.Rows; i++ {
			out.Set(i, j, (m.At(i, j)-mean)*inv)
		}
	}
	return out
}

// NewModel builds an untrained model for the dataset.
func NewModel(cfg Config, d *dataset.Dataset) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.UseWorkloadFeatures && !cfg.UsePlatformFeatures && cfg.LearnedFeatures == 0 {
		return nil, fmt.Errorf("core: model needs features or learned features")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, data: d}
	if cfg.UseWorkloadFeatures {
		m.xw = standardize(d.WorkloadFeatures)
	}
	if cfg.UsePlatformFeatures {
		m.xp = standardize(d.PlatformFeatures)
	}

	dw, dp := 0, 0
	if cfg.UseWorkloadFeatures {
		dw = d.WorkloadFeatures.Cols
	}
	if cfg.UsePlatformFeatures {
		dp = d.PlatformFeatures.Cols
	}
	r, s, h := cfg.EmbeddingDim, cfg.InterferenceTypes, cfg.NumHeads()
	m.fw = nn.NewMLP(rng, nn.ActGELU, dw+cfg.LearnedFeatures, cfg.Hidden, cfg.Hidden, r*h)
	m.fp = nn.NewMLP(rng, nn.ActGELU, dp+cfg.LearnedFeatures, cfg.Hidden, cfg.Hidden, r*(1+2*s))
	m.params = append(m.params, m.fw.Params()...)
	m.params = append(m.params, m.fp.Params()...)
	if cfg.LearnedFeatures > 0 {
		m.phiW = nn.NewEmbedding(rng, d.NumWorkloads(), cfg.LearnedFeatures, 0.1)
		m.phiP = nn.NewEmbedding(rng, d.NumPlatforms(), cfg.LearnedFeatures, 0.1)
		m.params = append(m.params, m.phiW.Params()...)
		m.params = append(m.params, m.phiP.Params()...)
	}
	return m, nil
}

// NumParams returns the number of scalar trainable parameters.
func (m *Model) NumParams() int { return nn.NumParams(m.params) }

// Params exposes the trainable parameters (for the optimizer and tests).
func (m *Model) Params() []*autodiff.Value { return m.params }

// Dataset returns the dataset the model was built for.
func (m *Model) Dataset() *dataset.Dataset { return m.data }

// towerInput assembles [features | φ] for one tower. Either part may be
// absent depending on the configuration.
func towerInput(feats *tensor.Matrix, use bool, phi *nn.Embedding, n int) *autodiff.Value {
	var x *autodiff.Value
	if use {
		x = autodiff.NewConst(feats)
	}
	if phi != nil {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		phiV := phi.Lookup(all)
		if x == nil {
			return phiV
		}
		return autodiff.ConcatCols(x, phiV)
	}
	return x
}

// embeddings runs both towers over every workload and platform. Computing
// all embeddings each step and gathering the needed rows matches the
// paper's implementation strategy (App. B.3) — the tables are small
// relative to the batch.
func (m *Model) embeddings() (w, p *autodiff.Value) {
	xw := towerInput(m.xw, m.Cfg.UseWorkloadFeatures, m.phiW, m.data.NumWorkloads())
	xp := towerInput(m.xp, m.Cfg.UsePlatformFeatures, m.phiP, m.data.NumPlatforms())
	return m.fw.Forward(xw), m.fp.Forward(xp)
}

// batch describes one fixed-degree minibatch: parallel index slices into
// the entity tables.
type batch struct {
	degree int
	wi, pj []int   // workload / platform per sample
	ks     [][]int // ks[m][b]: m-th interferer of sample b (len = degree)
	target []float64
}

// makeBatch converts observation indices (all of the same degree) into a
// batch with regression targets under the model's objective. When
// stripInterference is true (InterferenceIgnore), interferer indices are
// dropped so the model treats the samples as isolation runs.
func (m *Model) makeBatch(obsIdx []int, stripInterference bool) batch {
	var bt batch
	if len(obsIdx) == 0 {
		return bt
	}
	deg := m.data.Obs[obsIdx[0]].Degree()
	if stripInterference {
		deg = 0
	}
	bt.degree = deg
	bt.ks = make([][]int, deg)
	for mi := range bt.ks {
		bt.ks[mi] = make([]int, 0, len(obsIdx))
	}
	for _, oi := range obsIdx {
		o := m.data.Obs[oi]
		if !stripInterference && o.Degree() != bt.degree {
			panic("core: mixed degrees in batch")
		}
		bt.wi = append(bt.wi, o.Workload)
		bt.pj = append(bt.pj, o.Platform)
		for mi := 0; mi < deg; mi++ {
			bt.ks[mi] = append(bt.ks[mi], o.Interferers[mi])
		}
		bt.target = append(bt.target, residualTarget(m.Cfg.Objective, m.Baseline, o))
	}
	return bt
}

// headSlice extracts head h's rank-r embedding block from the workload
// tower output.
func (m *Model) headSlice(w *autodiff.Value, h int) func(idx []int) *autodiff.Value {
	r := m.Cfg.EmbeddingDim
	return func(idx []int) *autodiff.Value {
		return autodiff.SliceCols(autodiff.Gather(w, idx), h*r, (h+1)*r)
	}
}

// predictBatch builds the prediction graph for one batch and head h
// (paper Eq. 9):
//
//	ŷ = wᵢᵀpⱼ + Σ_t (wᵢᵀ v_s⁽ᵗ⁾) · α( Σ_k w_kᵀ v_g⁽ᵗ⁾ )
//
// returning a B x 1 Value of residual predictions.
func (m *Model) predictBatch(w, p *autodiff.Value, bt batch, h int) *autodiff.Value {
	r, s := m.Cfg.EmbeddingDim, m.Cfg.InterferenceTypes
	getW := m.headSlice(w, h)
	wi := getW(bt.wi)
	pAll := autodiff.Gather(p, bt.pj)
	pj := autodiff.SliceCols(pAll, 0, r)
	pred := autodiff.RowSum(autodiff.Mul(wi, pj))

	if bt.degree > 0 && m.Cfg.Interference == InterferenceAware && s > 0 {
		// Gather interferer embeddings once per slot.
		wks := make([]*autodiff.Value, bt.degree)
		for mi := 0; mi < bt.degree; mi++ {
			wks[mi] = getW(bt.ks[mi])
		}
		for t := 0; t < s; t++ {
			vs := autodiff.SliceCols(pAll, r*(1+t), r*(2+t))
			vg := autodiff.SliceCols(pAll, r*(1+s+t), r*(2+s+t))
			var mag *autodiff.Value
			for mi := 0; mi < bt.degree; mi++ {
				term := autodiff.RowSum(autodiff.Mul(wks[mi], vg))
				if mag == nil {
					mag = term
				} else {
					mag = autodiff.Add(mag, term)
				}
			}
			if m.Cfg.UseActivation {
				mag = autodiff.LeakyReLU(mag, m.Cfg.ActivationSlope)
			}
			sus := autodiff.RowSum(autodiff.Mul(wi, vs))
			pred = autodiff.Add(pred, autodiff.Mul(sus, mag))
		}
	}
	return pred
}

// batchLoss computes the training loss of one batch across all heads.
func (m *Model) batchLoss(w, p *autodiff.Value, bt batch) *autodiff.Value {
	target := tensor.FromSlice(len(bt.target), 1, bt.target)
	if len(m.Cfg.Quantiles) == 0 {
		pred := m.predictBatch(w, p, bt, 0)
		if m.Cfg.Objective == ObjProportional {
			// Relative squared error: weight each sample by 1/C*².
			wgt := tensor.New(target.Rows, 1)
			for i, c := range bt.target {
				wgt.Data[i] = 1 / (c * c)
			}
			return autodiff.WeightedMSE(pred, target, wgt)
		}
		return autodiff.MSE(pred, target)
	}
	// Quantile heads: equal weight per head (App. B.3).
	var total *autodiff.Value
	for h, xi := range m.Cfg.Quantiles {
		pred := m.predictBatch(w, p, bt, h)
		l := autodiff.Pinball(pred, target, xi)
		if total == nil {
			total = l
		} else {
			total = autodiff.Add(total, l)
		}
	}
	return autodiff.Scale(total, 1/float64(len(m.Cfg.Quantiles)))
}
