package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// modelFile is the on-disk representation of a trained model.
type modelFile struct {
	Cfg       Config
	BaselineW []float64
	BaselineP []float64
	Params    []savedMatrix
}

type savedMatrix struct {
	Rows, Cols int
	Data       []float64
}

// Save writes the model's configuration, baseline, and parameters.
func (m *Model) Save(w io.Writer) error {
	mf := modelFile{Cfg: m.Cfg}
	if m.Baseline != nil {
		mf.BaselineW = m.Baseline.W
		mf.BaselineP = m.Baseline.P
	}
	for _, p := range m.params {
		mf.Params = append(mf.Params, savedMatrix{p.Data.Rows, p.Data.Cols, p.Data.Data})
	}
	return gob.NewEncoder(w).Encode(&mf)
}

// Load reads a model saved by Save, rebinding it to the given dataset
// (which must have the same entity counts and feature dimensions).
func Load(r io.Reader, d *dataset.Dataset) (*Model, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	m, err := NewModel(mf.Cfg, d)
	if err != nil {
		return nil, err
	}
	if len(mf.Params) != len(m.params) {
		return nil, fmt.Errorf("core: model has %d parameter tensors, file has %d",
			len(m.params), len(mf.Params))
	}
	for i, sp := range mf.Params {
		if m.params[i].Data.Rows != sp.Rows || m.params[i].Data.Cols != sp.Cols {
			return nil, fmt.Errorf("core: parameter %d shape %dx%d, file has %dx%d",
				i, m.params[i].Data.Rows, m.params[i].Data.Cols, sp.Rows, sp.Cols)
		}
		// The file arrives from disk or the wire: a payload that disagrees
		// with its declared shape must error, not panic in FromSlice.
		if len(sp.Data) != sp.Rows*sp.Cols {
			return nil, fmt.Errorf("core: parameter %d has %d values for %dx%d",
				i, len(sp.Data), sp.Rows, sp.Cols)
		}
		m.params[i].Data.CopyFrom(tensor.FromSlice(sp.Rows, sp.Cols, sp.Data))
	}
	if mf.BaselineW != nil {
		if len(mf.BaselineW) != d.NumWorkloads() || len(mf.BaselineP) != d.NumPlatforms() {
			return nil, fmt.Errorf("core: baseline sized %dx%d for a %dx%d dataset",
				len(mf.BaselineW), len(mf.BaselineP), d.NumWorkloads(), d.NumPlatforms())
		}
		m.Baseline = &LinearBaseline{W: mf.BaselineW, P: mf.BaselineP}
	}
	m.SyncEmbeddings()
	return m, nil
}
