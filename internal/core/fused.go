package core

import (
	"fmt"
	"math"
	"sync"
)

// PredictFusedBatch scores every query through two models in one
// platform-major pass: meanSec receives the mean model's head-0 predicted
// runtime in seconds, boundSec the quantile model's head-quantHead budget
// exp(logPred + boundOffset(degree)) — the conformal bound with the
// log-domain offset supplied by the caller per interference degree.
//
// Both models share one span detection over qs, one worker fan-out, and
// per-span scratch: each span's interference term is folded exactly once
// per model (into that model's effective platform vector) and the conformal
// offset — constant within a span, whose queries all share one interferer
// set — is hoisted out of the inner loop, where the separate BoundBatch
// path pays a per-query pool lookup.
//
// The outputs are bitwise-identical to the separate calls
//
//	mean.PredictSecondsBatch(qs, 0, meanSec)
//	quant.PredictLogSecondsBatch(qs, quantHead, tmp)
//	boundSec[i] = math.Exp(tmp[i] + boundOffset(len(qs[i].Interferers)))
//
// because every per-element operation runs through the same spanLogInto
// kernel in the same order; fusion only removes duplicated traversal and
// dispatch, never reassociates arithmetic.
func PredictFusedBatch(mean, quant *Model, qs []Query, quantHead int, boundOffset func(degree int) float64, meanSec, boundSec []float64) {
	if mean.wEmb == nil || quant.wEmb == nil {
		panic("core: SyncEmbeddings not called")
	}
	if len(meanSec) != len(qs) || len(boundSec) != len(qs) {
		panic(fmt.Sprintf("core: fused batch out lens %d/%d for %d queries", len(meanSec), len(boundSec), len(qs)))
	}
	if len(qs) == 0 {
		return
	}
	rM, rQ := mean.Cfg.EmbeddingDim, quant.Cfg.EmbeddingDim
	// The default configuration (log-residual objective, rank 32 on both
	// models) takes a paired kernel: one traversal loads each query once
	// and computes both models' dots in a single eight-chain loop, instead
	// of two three-pass span walks. Each dot accumulates in exactly
	// dot32's order, so outputs stay bitwise-identical.
	paired := mean.Cfg.Objective == ObjLogResidual && quant.Cfg.Objective == ObjLogResidual &&
		rM == 32 && quant.Cfg.EmbeddingDim == 32
	// The interference folds pair under the same conditions when both
	// models carry the same interference structure: one walk over the
	// interferer set feeds both models' magnitude accumulators.
	pairedFold := paired && mean.Cfg.Interference == quant.Cfg.Interference &&
		mean.Cfg.InterferenceTypes == quant.Cfg.InterferenceTypes
	runSpan := func(sp qspan, peffM, peffQ []float64) {
		q0 := qs[sp.lo]
		if pairedFold {
			effectivePlatformPair(mean, quant, peffM, peffQ, q0.Platform, q0.Interferers, quantHead)
		} else {
			mean.effectivePlatform(peffM, q0.Platform, q0.Interferers, 0)
			quant.effectivePlatform(peffQ, q0.Platform, q0.Interferers, quantHead)
		}
		off := boundOffset(len(q0.Interferers))
		if paired {
			wDataM, wColsM := mean.wEmb.Data, mean.wEmb.Cols
			wDataQ, wColsQ := quant.wEmb.Data, quant.wEmb.Cols
			wloQ := quantHead * 32
			bWm, bPm := mean.Baseline.W, mean.Baseline.P[q0.Platform]
			bWq, bPq := quant.Baseline.W, quant.Baseline.P[q0.Platform]
			for i := sp.lo; i < sp.hi; i++ {
				w := qs[i].Workload
				dM, dQ := dot32Pair(wDataM[w*wColsM:], peffM, wDataQ[w*wColsQ+wloQ:], peffQ)
				meanSec[i] = bWm[w] + bPm + dM
				boundSec[i] = bWq[w] + bPq + dQ
			}
		} else {
			mean.spanLogInto(qs, sp.lo, sp.hi, peffM, 0, meanSec)
			quant.spanLogInto(qs, sp.lo, sp.hi, peffQ, quantHead, boundSec)
		}
		// One exp sweep over both heads while the span is cache-hot; the
		// hoisted offset replaces the per-query pool lookup.
		for i := sp.lo; i < sp.hi; i++ {
			meanSec[i] = math.Exp(meanSec[i])
			boundSec[i] = math.Exp(boundSec[i] + off)
		}
	}
	runFusedSpans(mean, qs, rM, rQ, runSpan)
}

// runFusedSpans drives runSpan over every (platform, interferer set) span
// of qs with the fused path's worker fan-out and per-worker effective
// platform scratch. Shared by the exact (PredictFusedBatch) and fast
// (PredictFusedBatchFast) kernels: both see identical span boundaries and
// scratch discipline, so the two paths differ only in per-span arithmetic.
func runFusedSpans(mean *Model, qs []Query, rM, rQ int, runSpan func(sp qspan, peffM, peffQ []float64)) {
	if workers := mean.workers(); workers > 1 {
		spans := detectSpans(qs)
		if workers > len(spans) {
			workers = len(spans)
		}
		if workers > 1 {
			var wg sync.WaitGroup
			next := make(chan qspan)
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					peffM := make([]float64, rM)
					peffQ := make([]float64, rQ)
					for sp := range next {
						runSpan(sp, peffM, peffQ)
					}
				}()
			}
			for _, sp := range spans {
				next <- sp
			}
			close(next)
			wg.Wait()
			return
		}
	}
	peffM := make([]float64, rM)
	peffQ := make([]float64, rQ)
	for lo := 0; lo < len(qs); {
		hi := lo + 1
		for hi < len(qs) && sameGroup(&qs[hi], &qs[lo]) {
			hi++
		}
		runSpan(qspan{lo, hi}, peffM, peffQ)
		lo = hi
	}
}

// effectivePlatformPair folds platform j's interference term for both
// models in one walk over the interferer set: each (type, interferer) step
// accumulates the mean and quantile magnitudes through the paired dot
// kernel, so the interferer embedding rows of both models stream through
// one loop instead of two separate folds. Accumulation order per model
// matches effectivePlatform exactly (dotUnrolled at rank 32 is dot32's
// chain order), keeping the fold bitwise-identical to the separate calls.
// Both models must be rank 32 with the same interference structure.
func effectivePlatformPair(mean, quant *Model, peffM, peffQ []float64, j int, ks []int, hQ int) {
	const r = 32
	s := mean.Cfg.InterferenceTypes
	prowM := mean.pEmb.Row(j)
	prowQ := quant.pEmb.Row(j)
	copy(peffM, prowM[:r])
	copy(peffQ, prowQ[:r])
	if len(ks) == 0 || mean.Cfg.Interference != InterferenceAware || s == 0 {
		return
	}
	loQ := hQ * r
	wM, wQ := mean.wEmb, quant.wEmb
	for t := 0; t < s; t++ {
		vsM := prowM[r*(1+t) : r*(2+t)]
		vgM := prowM[r*(1+s+t) : r*(2+s+t)]
		vsQ := prowQ[r*(1+t) : r*(2+t)]
		vgQ := prowQ[r*(1+s+t) : r*(2+s+t)]
		var magM, magQ float64
		for _, k := range ks {
			dM, dQ := dot32Pair(wM.Row(k), vgM, wQ.Row(k)[loQ:], vgQ)
			magM += dM
			magQ += dQ
		}
		if mean.Cfg.UseActivation && magM < 0 {
			magM *= mean.Cfg.ActivationSlope
		}
		if quant.Cfg.UseActivation && magQ < 0 {
			magQ *= quant.Cfg.ActivationSlope
		}
		for a := 0; a < r; a++ {
			peffM[a] += magM * vsM[a]
			peffQ[a] += magQ * vsQ[a]
		}
	}
}
