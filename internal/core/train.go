package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// TrainResult summarizes one training run.
type TrainResult struct {
	Steps       int
	BestValLoss float64
	ValHistory  []float64
}

// Train fits the model on split.Train with AdaMax, selecting the checkpoint
// with the lowest validation loss (App. B.3). It fits the linear-scaling
// baseline first, then optimizes the factorization residual.
func (m *Model) Train(split dataset.Split) (*TrainResult, error) {
	cfg := m.Cfg
	if cfg.Objective == ObjLogResidual {
		m.Baseline = FitLinearBaseline(m.data, split.Train, 0)
	} else {
		m.Baseline = &LinearBaseline{
			W: make([]float64, m.data.NumWorkloads()),
			P: make([]float64, m.data.NumPlatforms()),
		}
	}

	trainIdx := m.filterIndices(split.Train)
	valIdx := m.filterIndices(split.Val)
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("core: empty training set after filtering")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	batcher := dataset.NewBatcher(rng, m.data, trainIdx)

	optimizer := opt.NewAdaMax(m.params, cfg.LR, 0, 0)
	res := &TrainResult{BestValLoss: math.Inf(1)}
	var best []*tensor.Matrix

	for step := 1; step <= cfg.Steps; step++ {
		w, p := m.embeddings()
		var total *autodiff.Value
		var wsum float64
		for _, deg := range batcher.Degrees {
			idx := batcher.Sample(deg, cfg.BatchPerDegree)
			if idx == nil {
				continue
			}
			bt := m.makeBatch(idx, cfg.Interference == InterferenceIgnore)
			weight := 1.0
			if deg > 0 {
				weight = cfg.Beta / 3
			}
			l := autodiff.Scale(m.batchLoss(w, p, bt), weight)
			wsum += weight
			if total == nil {
				total = l
			} else {
				total = autodiff.Add(total, l)
			}
		}
		if total == nil {
			return nil, fmt.Errorf("core: no batches drawn")
		}
		total = autodiff.Scale(total, 1/wsum)
		total.Backward()
		optimizer.Step()
		optimizer.ZeroGrads()

		if step%cfg.EvalEvery == 0 || step == cfg.Steps {
			vl := m.evalLoss(valIdx)
			res.ValHistory = append(res.ValHistory, vl)
			if vl < res.BestValLoss {
				res.BestValLoss = vl
				best = nn.Snapshot(m.params)
			}
		}
	}
	if best != nil {
		nn.Restore(m.params, best)
	}
	res.Steps = cfg.Steps
	m.SyncEmbeddings()
	return res, nil
}

// filterIndices applies the interference-mode filter: InterferenceDiscard
// keeps only isolation observations; other modes keep everything.
func (m *Model) filterIndices(idx []int) []int {
	if m.Cfg.Interference != InterferenceDiscard {
		return idx
	}
	var out []int
	for _, i := range idx {
		if m.data.Obs[i].Degree() == 0 {
			out = append(out, i)
		}
	}
	return out
}

// evalLoss computes the training objective on held-out indices, in fixed-
// degree chunks, with the same degree weighting as training.
func (m *Model) evalLoss(idx []int) float64 {
	if len(idx) == 0 {
		return math.Inf(1)
	}
	pools, degrees := dataset.ByDegree(m.data, idx)
	w, p := m.embeddings()
	var total, wsum float64
	const chunk = 2048
	for _, deg := range degrees {
		pool := pools[deg]
		weight := 1.0
		if deg > 0 {
			weight = m.Cfg.Beta / 3
		}
		var sum float64
		var n int
		for lo := 0; lo < len(pool); lo += chunk {
			hi := lo + chunk
			if hi > len(pool) {
				hi = len(pool)
			}
			bt := m.makeBatch(pool[lo:hi], m.Cfg.Interference == InterferenceIgnore)
			l := m.batchLoss(w, p, bt)
			sum += l.Scalar() * float64(hi-lo)
			n += hi - lo
		}
		total += weight * sum / float64(n)
		wsum += weight
	}
	return total / wsum
}
