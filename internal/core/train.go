package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/autodiff"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// TrainResult summarizes one training run.
type TrainResult struct {
	Steps       int
	BestValLoss float64
	ValHistory  []float64
}

// Train fits the model on split.Train with AdaMax, selecting the checkpoint
// with the lowest validation loss (App. B.3). It fits the linear-scaling
// baseline first, then optimizes the factorization residual.
func (m *Model) Train(split dataset.Split) (*TrainResult, error) {
	cfg := m.Cfg
	if cfg.Objective == ObjLogResidual {
		m.Baseline = FitLinearBaseline(m.data, split.Train, 0)
	} else {
		m.Baseline = &LinearBaseline{
			W: make([]float64, m.data.NumWorkloads()),
			P: make([]float64, m.data.NumPlatforms()),
		}
	}

	trainIdx := m.filterIndices(split.Train)
	valIdx := m.filterIndices(split.Val)
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("core: empty training set after filtering")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	batcher := dataset.NewBatcher(rng, m.data, trainIdx)

	optimizer := opt.NewAdaMax(m.params, cfg.LR, 0, 0)
	res := &TrainResult{BestValLoss: math.Inf(1)}
	var best []*tensor.Matrix

	var batches []batch
	var weights []float64
	for step := 1; step <= cfg.Steps; step++ {
		batches, weights = batches[:0], weights[:0]
		var wsum float64
		for _, deg := range batcher.Degrees {
			idx := batcher.Sample(deg, cfg.BatchPerDegree)
			if idx == nil {
				continue
			}
			weight := 1.0
			if deg > 0 {
				weight = cfg.Beta / 3
			}
			batches = append(batches, m.makeBatch(idx, cfg.Interference == InterferenceIgnore))
			weights = append(weights, weight)
			wsum += weight
		}
		if len(batches) == 0 {
			return nil, fmt.Errorf("core: no batches drawn")
		}
		for i := range weights {
			weights[i] /= wsum
		}
		m.runStep(batches, weights)
		optimizer.Step()
		optimizer.ZeroGrads()

		if step%cfg.EvalEvery == 0 || step == cfg.Steps {
			vl := m.evalLoss(valIdx)
			res.ValHistory = append(res.ValHistory, vl)
			if vl < res.BestValLoss {
				res.BestValLoss = vl
				best = nn.Snapshot(m.params)
			}
		}
	}
	if best != nil {
		nn.Restore(m.params, best)
	}
	res.Steps = cfg.Steps
	m.SyncEmbeddings()
	return res, nil
}

// lossTask is one (degree-batch, head) unit of a training step's objective.
type lossTask struct {
	bt     batch
	head   int
	weight float64 // this task's contribution to the total loss
}

// expandTasks flattens normalized per-batch weights into per-(batch, head)
// tasks. Quantile heads split their batch's weight evenly (App. B.3), which
// also lets each head's graph run on its own goroutine.
func (m *Model) expandTasks(batches []batch, weights []float64) []lossTask {
	nh := m.Cfg.NumHeads()
	tasks := make([]lossTask, 0, len(batches)*nh)
	for i, bt := range batches {
		for h := 0; h < nh; h++ {
			tasks = append(tasks, lossTask{bt: bt, head: h, weight: weights[i] / float64(nh)})
		}
	}
	return tasks
}

// runStep executes one optimization step over pre-normalized batch weights:
// shared tower forward, per-(batch, head) loss graphs fanned out across
// workers, deterministic gradient accumulation, tower backward, and graph
// release back to the matrix pool. It returns the weighted training loss.
//
// Parallelism never changes the result: each task differentiates a fully
// disjoint subgraph rooted at stubs of the tower outputs, and stub
// gradients are folded into the tower gradients sequentially in task order,
// so floating-point accumulation order is fixed regardless of worker count
// or goroutine scheduling.
func (m *Model) runStep(batches []batch, weights []float64) float64 {
	w, p := m.embeddings()
	tasks := m.expandTasks(batches, weights)

	type taskGraph struct {
		root, wStub, pStub *autodiff.Value
	}
	graphs := make([]taskGraph, len(tasks))
	run := func(i int) {
		t := tasks[i]
		wS, pS := autodiff.Stub(w), autodiff.Stub(p)
		loss := m.headLoss(wS, pS, t.bt, t.head)
		loss.Grad.Data[0] = t.weight
		loss.BackwardSeeded()
		graphs[i] = taskGraph{root: loss, wStub: wS, pStub: pS}
	}
	workers := m.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for i := range tasks {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		for i := range tasks {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	var total float64
	for i := range graphs {
		g := &graphs[i]
		total += tasks[i].weight * g.root.Scalar()
		tensor.AddInPlace(w.Grad, g.wStub.Grad)
		tensor.AddInPlace(p.Grad, g.pStub.Grad)
		autodiff.ReleaseGraph(g.root)
	}
	w.BackwardSeeded()
	p.BackwardSeeded()
	autodiff.ReleaseGraph(w, p)
	return total
}

// filterIndices applies the interference-mode filter: InterferenceDiscard
// keeps only isolation observations; other modes keep everything.
func (m *Model) filterIndices(idx []int) []int {
	if m.Cfg.Interference != InterferenceDiscard {
		return idx
	}
	var out []int
	for _, i := range idx {
		if m.data.Obs[i].Degree() == 0 {
			out = append(out, i)
		}
	}
	return out
}

// evalLoss computes the training objective on held-out indices, in fixed-
// degree chunks, with the same degree weighting as training. Validation
// never needs gradients, so it runs on the tape-free forward path — no
// graph nodes, no gradient buffers.
func (m *Model) evalLoss(idx []int) float64 {
	if len(idx) == 0 {
		return math.Inf(1)
	}
	pools, degrees := dataset.ByDegree(m.data, idx)
	wE, pE := m.embeddingsInfer()
	defer tensor.PutPooled(wE)
	defer tensor.PutPooled(pE)
	var total, wsum float64
	const chunk = 2048
	for _, deg := range degrees {
		pool := pools[deg]
		weight := 1.0
		if deg > 0 {
			weight = m.Cfg.Beta / 3
		}
		var sum float64
		var n int
		for lo := 0; lo < len(pool); lo += chunk {
			hi := lo + chunk
			if hi > len(pool) {
				hi = len(pool)
			}
			bt := m.makeBatch(pool[lo:hi], m.Cfg.Interference == InterferenceIgnore)
			sum += m.batchLossInfer(wE, pE, bt) * float64(hi-lo)
			n += hi - lo
		}
		total += weight * sum / float64(n)
		wsum += weight
	}
	return total / wsum
}
