package core

import (
	"fmt"

	"repro/internal/dataset"
)

// compatible reports whether d can replace old as a model's dataset:
// same entity counts and the same feature-matrix shapes.
func compatible(old, d *dataset.Dataset) error {
	if d.NumWorkloads() != old.NumWorkloads() || d.NumPlatforms() != old.NumPlatforms() {
		return fmt.Errorf("core: dataset has %dx%d entities, model was built for %dx%d",
			d.NumWorkloads(), d.NumPlatforms(), old.NumWorkloads(), old.NumPlatforms())
	}
	if (d.WorkloadFeatures == nil) != (old.WorkloadFeatures == nil) ||
		(d.WorkloadFeatures != nil && d.WorkloadFeatures.Cols != old.WorkloadFeatures.Cols) {
		return fmt.Errorf("core: workload feature shape mismatch")
	}
	if (d.PlatformFeatures == nil) != (old.PlatformFeatures == nil) ||
		(d.PlatformFeatures != nil && d.PlatformFeatures.Cols != old.PlatformFeatures.Cols) {
		return fmt.Errorf("core: platform feature shape mismatch")
	}
	return nil
}

// Clone returns a deep copy of the model bound to dataset d (pass nil to
// keep the current dataset). The copy shares nothing mutable with the
// receiver: parameters, the baseline, and the inference embedding caches
// are all private, so the clone can be fine-tuned (OnlineUpdate) while the
// original keeps serving reads — the building block of the serving layer's
// copy-on-write snapshot swap.
//
// d must have the same entity counts and feature dimensions as the model's
// current dataset (appending observations to a CloneAppend'ed dataset
// satisfies this). The embedding caches are recomputed from the copied
// parameters, which is deterministic, so the clone predicts bitwise
// identically to the receiver.
func (m *Model) Clone(d *dataset.Dataset) (*Model, error) {
	if d == nil {
		d = m.data
	} else if err := compatible(m.data, d); err != nil {
		return nil, err
	}
	c, err := NewModel(m.Cfg, d)
	if err != nil {
		return nil, err
	}
	for i, p := range m.params {
		c.params[i].Data.CopyFrom(p.Data)
	}
	if m.Baseline != nil {
		c.Baseline = &LinearBaseline{
			W: append([]float64(nil), m.Baseline.W...),
			P: append([]float64(nil), m.Baseline.P...),
		}
	}
	if m.wEmb != nil {
		c.SyncEmbeddings()
	}
	return c, nil
}
