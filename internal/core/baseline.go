package core

import (
	"math"

	"repro/internal/dataset"
)

// LinearBaseline is the interference-blind linear-scaling model of paper
// Eq. 2 / App. B.1: log C̄_ij = w̄_i + p̄_j, with workload log "difficulty"
// w̄ and platform log "speed" p̄ learned by alternating minimization, which
// converges because the log loss is convex in each block.
type LinearBaseline struct {
	W []float64 // per-workload log difficulty
	P []float64 // per-platform log speed offset
}

// FitLinearBaseline learns the baseline from the isolation observations
// among obsIdx (App. B.1: the baseline uses only interference-free data).
// Entities that appear only under interference are fitted afterwards from
// those observations; entirely unseen entities fall back to 0 (the global
// offset is carried by the seen parameters).
func FitLinearBaseline(d *dataset.Dataset, obsIdx []int, iters int) *LinearBaseline {
	nw, np := d.NumWorkloads(), d.NumPlatforms()
	b := &LinearBaseline{W: make([]float64, nw), P: make([]float64, np)}

	var iso []int
	for _, i := range obsIdx {
		if d.Obs[i].Degree() == 0 {
			iso = append(iso, i)
		}
	}
	if iters <= 0 {
		iters = 50
	}
	// Alternating minimization (Eq. 14): each update sets the block to the
	// mean residual of its observations.
	sumW := make([]float64, nw)
	cntW := make([]float64, nw)
	sumP := make([]float64, np)
	cntP := make([]float64, np)
	for it := 0; it < iters; it++ {
		for i := range sumW {
			sumW[i], cntW[i] = 0, 0
		}
		for _, oi := range iso {
			o := d.Obs[oi]
			sumW[o.Workload] += o.LogSeconds() - b.P[o.Platform]
			cntW[o.Workload]++
		}
		for i := range sumW {
			if cntW[i] > 0 {
				b.W[i] = sumW[i] / cntW[i]
			}
		}
		for j := range sumP {
			sumP[j], cntP[j] = 0, 0
		}
		for _, oi := range iso {
			o := d.Obs[oi]
			sumP[o.Platform] += o.LogSeconds() - b.W[o.Workload]
			cntP[o.Platform]++
		}
		for j := range sumP {
			if cntP[j] > 0 {
				b.P[j] = sumP[j] / cntP[j]
			}
		}
	}
	// Fallback fit for entities with no isolation observations: average
	// residual over whatever observations mention them (slowdowns bias the
	// estimate upward slightly; the factorization residual absorbs it).
	for i := range sumW {
		sumW[i], cntW[i] = 0, 0
	}
	for j := range sumP {
		sumP[j], cntP[j] = 0, 0
	}
	for _, oi := range obsIdx {
		o := d.Obs[oi]
		if cntW[o.Workload] == 0 && o.Degree() > 0 {
			sumW[o.Workload] += o.LogSeconds() - b.P[o.Platform]
		}
		if cntP[o.Platform] == 0 && o.Degree() > 0 {
			sumP[o.Platform] += o.LogSeconds() - b.W[o.Workload]
		}
	}
	seenIsoW := make([]bool, nw)
	seenIsoP := make([]bool, np)
	for _, oi := range iso {
		seenIsoW[d.Obs[oi].Workload] = true
		seenIsoP[d.Obs[oi].Platform] = true
	}
	nObsW := make([]float64, nw)
	nObsP := make([]float64, np)
	for _, oi := range obsIdx {
		o := d.Obs[oi]
		if !seenIsoW[o.Workload] {
			nObsW[o.Workload]++
		}
		if !seenIsoP[o.Platform] {
			nObsP[o.Platform]++
		}
	}
	for _, oi := range obsIdx {
		o := d.Obs[oi]
		if !seenIsoW[o.Workload] && nObsW[o.Workload] > 0 {
			b.W[o.Workload] += (o.LogSeconds() - b.P[o.Platform]) / nObsW[o.Workload]
		}
		if !seenIsoP[o.Platform] && nObsP[o.Platform] > 0 {
			b.P[o.Platform] += (o.LogSeconds() - b.W[o.Workload]) / nObsP[o.Platform]
		}
	}
	return b
}

// LogBaseline returns log C̄_ij = w̄_i + p̄_j.
func (b *LinearBaseline) LogBaseline(w, p int) float64 { return b.W[w] + b.P[p] }

// Loss returns the mean squared log error of the baseline alone on the
// given observations; used by tests to verify alternating minimization
// actually minimizes.
func (b *LinearBaseline) Loss(d *dataset.Dataset, obsIdx []int) float64 {
	if len(obsIdx) == 0 {
		return 0
	}
	var s float64
	for _, oi := range obsIdx {
		o := d.Obs[oi]
		r := o.LogSeconds() - b.LogBaseline(o.Workload, o.Platform)
		s += r * r
	}
	return s / float64(len(obsIdx))
}

// Residual returns the regression target for an observation under the
// given objective.
func residualTarget(obj Objective, b *LinearBaseline, o dataset.Observation) float64 {
	switch obj {
	case ObjLogResidual:
		return o.LogSeconds() - b.LogBaseline(o.Workload, o.Platform)
	case ObjLog:
		return o.LogSeconds()
	case ObjProportional:
		return o.Seconds
	}
	panic("core: unknown objective")
}

// scaleInvariant is referenced by tests: the residual objective is
// preserved when a job is duplicated γ times (paper Eq. 3).
func scaleInvariantResidual(logC, logBase, gamma float64) (orig, scaled float64) {
	orig = logC - logBase
	scaled = (logC + math.Log(gamma)) - (logBase + math.Log(gamma))
	return orig, scaled
}
