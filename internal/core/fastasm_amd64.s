//go:build amd64 && gc && !purego

#include "textflag.h"

// Vector kernels for the opt-in fast scoring path (Config.FastScoring).
// Gated at runtime by detectFastVec (AVX2 + FMA3 + OS ymm state); every
// caller has a pure-Go fallback, so nothing here runs on older CPUs.

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotSpanAVX2(base *float64, stride int, qs *Query, n int, peff *float64, out *float64)
//
// For each of the n queries: out[i] += base[qs[i].Workload*stride : +32] · peff.
// peff's 32 elements stay resident in Y8–Y11 across the whole span, so the
// only per-query memory traffic is the embedding row itself plus one
// read-modify-write of out[i] (which arrives holding the baseline sum).
// The four-lane FMA accumulation reassociates relative to dot32's scalar
// chains; the fast path's documented bound covers it.
//
// Layout dependency: Workload is the first field of Query and the struct
// is 40 bytes — both asserted at compile time in fastasm_amd64.go.
TEXT ·dotSpanAVX2(SB), NOSPLIT, $0-48
	MOVQ base+0(FP), DI
	MOVQ stride+8(FP), BX
	MOVQ qs+16(FP), SI
	MOVQ n+24(FP), CX
	MOVQ peff+32(FP), DX
	MOVQ out+40(FP), R8
	TESTQ CX, CX
	JLE  dotdone
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VMOVUPD 64(DX), Y10
	VMOVUPD 96(DX), Y11
	VMOVUPD 128(DX), Y12
	VMOVUPD 160(DX), Y13
	VMOVUPD 192(DX), Y14
	VMOVUPD 224(DX), Y15

	// Four queries per iteration, two FMA chains each: the sixteen
	// multiply-adds keep both FMA ports busy while the previous block's
	// transpose-reduce retires, and the four sums leave as one 256-bit
	// add+store against the baseline vector already in out.
	SUBQ $4, CX
	JL   dottail

dotloop4:
	MOVQ  (SI), AX       // qs[i..i+3].Workload → row pointers
	IMULQ BX, AX
	LEAQ  (DI)(AX*8), R9
	MOVQ  40(SI), AX
	IMULQ BX, AX
	LEAQ  (DI)(AX*8), R10
	MOVQ  80(SI), AX
	IMULQ BX, AX
	LEAQ  (DI)(AX*8), R11
	MOVQ  120(SI), AX
	IMULQ BX, AX
	LEAQ  (DI)(AX*8), DX
	VMULPD (R9), Y8, Y0
	VMULPD 32(R9), Y9, Y1
	VFMADD231PD 64(R9), Y10, Y0
	VFMADD231PD 96(R9), Y11, Y1
	VFMADD231PD 128(R9), Y12, Y0
	VFMADD231PD 160(R9), Y13, Y1
	VFMADD231PD 192(R9), Y14, Y0
	VFMADD231PD 224(R9), Y15, Y1
	VMULPD (R10), Y8, Y2
	VMULPD 32(R10), Y9, Y3
	VFMADD231PD 64(R10), Y10, Y2
	VFMADD231PD 96(R10), Y11, Y3
	VFMADD231PD 128(R10), Y12, Y2
	VFMADD231PD 160(R10), Y13, Y3
	VFMADD231PD 192(R10), Y14, Y2
	VFMADD231PD 224(R10), Y15, Y3
	VMULPD (R11), Y8, Y4
	VMULPD 32(R11), Y9, Y5
	VFMADD231PD 64(R11), Y10, Y4
	VFMADD231PD 96(R11), Y11, Y5
	VFMADD231PD 128(R11), Y12, Y4
	VFMADD231PD 160(R11), Y13, Y5
	VFMADD231PD 192(R11), Y14, Y4
	VFMADD231PD 224(R11), Y15, Y5
	VMULPD (DX), Y8, Y6
	VMULPD 32(DX), Y9, Y7
	VFMADD231PD 64(DX), Y10, Y6
	VFMADD231PD 96(DX), Y11, Y7
	VFMADD231PD 128(DX), Y12, Y6
	VFMADD231PD 160(DX), Y13, Y7
	VFMADD231PD 192(DX), Y14, Y6
	VFMADD231PD 224(DX), Y15, Y7
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y5, Y4, Y4
	VADDPD Y7, Y6, Y6
	VHADDPD Y2, Y0, Y0   // [q0+q0, q1+q1 | q0+q0, q1+q1] per 128-bit lane
	VHADDPD Y6, Y4, Y4
	VPERM2F128 $0x20, Y4, Y0, Y1 // low halves:  [s0lo, s1lo, s2lo, s3lo]
	VPERM2F128 $0x31, Y4, Y0, Y2 // high halves: [s0hi, s1hi, s2hi, s3hi]
	VADDPD Y2, Y1, Y1
	VADDPD (R8), Y1, Y1  // += baselines
	VMOVUPD Y1, (R8)
	ADDQ $160, SI        // 4·sizeof(Query)
	ADDQ $32, R8
	SUBQ $4, CX
	JGE  dotloop4

dottail:
	ADDQ $4, CX
	JLE  dotdone

dottail1:
	MOVQ  (SI), AX
	IMULQ BX, AX
	LEAQ  (DI)(AX*8), R9
	VMULPD (R9), Y8, Y0
	VMULPD 32(R9), Y9, Y1
	VMULPD 64(R9), Y10, Y2
	VMULPD 96(R9), Y11, Y3
	VFMADD231PD 128(R9), Y12, Y0
	VFMADD231PD 160(R9), Y13, Y1
	VFMADD231PD 192(R9), Y14, Y2
	VFMADD231PD 224(R9), Y15, Y3
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VMOVSD (R8), X2
	VADDSD X2, X0, X0
	VMOVSD X0, (R8)
	ADDQ $40, SI
	ADDQ $8, R8
	DECQ CX
	JNZ  dottail1

dotdone:
	VZEROUPPER
	RET

// func dot32PairAVX2(a1, b1, a2, b2 *float64) (s, t float64)
//
// Both models' rank-32 dots in one call — the fast interference fold's
// inner kernel. Four FMA lanes per model, reduced like dotSpanAVX2;
// reassociates relative to dot32Pair within the documented fast bound.
TEXT ·dot32PairAVX2(SB), NOSPLIT, $0-48
	MOVQ a1+0(FP), DI
	MOVQ b1+8(FP), SI
	MOVQ a2+16(FP), DX
	MOVQ b2+24(FP), R8
	VMOVUPD (DI), Y0
	VMULPD (SI), Y0, Y0
	VMOVUPD 32(DI), Y1
	VMULPD 32(SI), Y1, Y1
	VMOVUPD 64(DI), Y2
	VMULPD 64(SI), Y2, Y2
	VMOVUPD 96(DI), Y3
	VMULPD 96(SI), Y3, Y3
	VMOVUPD 128(DI), Y4
	VFMADD231PD 128(SI), Y4, Y0
	VMOVUPD 160(DI), Y5
	VFMADD231PD 160(SI), Y5, Y1
	VMOVUPD 192(DI), Y6
	VFMADD231PD 192(SI), Y6, Y2
	VMOVUPD 224(DI), Y7
	VFMADD231PD 224(SI), Y7, Y3
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VMOVSD X0, s+32(FP)
	VMOVUPD (DX), Y0
	VMULPD (R8), Y0, Y0
	VMOVUPD 32(DX), Y1
	VMULPD 32(R8), Y1, Y1
	VMOVUPD 64(DX), Y2
	VMULPD 64(R8), Y2, Y2
	VMOVUPD 96(DX), Y3
	VMULPD 96(R8), Y3, Y3
	VMOVUPD 128(DX), Y4
	VFMADD231PD 128(R8), Y4, Y0
	VMOVUPD 160(DX), Y5
	VFMADD231PD 160(R8), Y5, Y1
	VMOVUPD 192(DX), Y6
	VFMADD231PD 192(R8), Y6, Y2
	VMOVUPD 224(DX), Y7
	VFMADD231PD 224(R8), Y7, Y3
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VMOVSD X0, t+40(FP)
	VZEROUPPER
	RET

// func foldAxpyPairAVX2(peffM, vsM *float64, magM float64, peffQ, vsQ *float64, magQ float64)
//
// The interference fold's rank-32 update for both models:
// peffM += magM·vsM and peffQ += magQ·vsQ. All pointers address 32
// float64s.
TEXT ·foldAxpyPairAVX2(SB), NOSPLIT, $0-48
	MOVQ peffM+0(FP), DI
	MOVQ vsM+8(FP), SI
	VBROADCASTSD magM+16(FP), Y14
	MOVQ peffQ+24(FP), DX
	MOVQ vsQ+32(FP), R8
	VBROADCASTSD magQ+40(FP), Y15
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	VFMADD231PD (SI), Y14, Y0
	VFMADD231PD 32(SI), Y14, Y1
	VFMADD231PD 64(SI), Y14, Y2
	VFMADD231PD 96(SI), Y14, Y3
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD 128(DI), Y0
	VMOVUPD 160(DI), Y1
	VMOVUPD 192(DI), Y2
	VMOVUPD 224(DI), Y3
	VFMADD231PD 128(SI), Y14, Y0
	VFMADD231PD 160(SI), Y14, Y1
	VFMADD231PD 192(SI), Y14, Y2
	VFMADD231PD 224(SI), Y14, Y3
	VMOVUPD Y0, 128(DI)
	VMOVUPD Y1, 160(DI)
	VMOVUPD Y2, 192(DI)
	VMOVUPD Y3, 224(DI)
	VMOVUPD (DX), Y4
	VMOVUPD 32(DX), Y5
	VMOVUPD 64(DX), Y6
	VMOVUPD 96(DX), Y7
	VFMADD231PD (R8), Y15, Y4
	VFMADD231PD 32(R8), Y15, Y5
	VFMADD231PD 64(R8), Y15, Y6
	VFMADD231PD 96(R8), Y15, Y7
	VMOVUPD Y4, (DX)
	VMOVUPD Y5, 32(DX)
	VMOVUPD Y6, 64(DX)
	VMOVUPD Y7, 96(DX)
	VMOVUPD 128(DX), Y4
	VMOVUPD 160(DX), Y5
	VMOVUPD 192(DX), Y6
	VMOVUPD 224(DX), Y7
	VFMADD231PD 128(R8), Y15, Y4
	VFMADD231PD 160(R8), Y15, Y5
	VFMADD231PD 192(R8), Y15, Y6
	VFMADD231PD 224(R8), Y15, Y7
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// Constants for expSpanAVX2. Scalars (broadcast at entry) followed by the
// Taylor coefficients replicated four-wide so the Horner FMAs can take
// them as 256-bit memory operands.
DATA expconsts<>+0(SB)/8, $0x3FF71547652B82FE   // log2(e)
DATA expconsts<>+8(SB)/8, $0x3FE62E42FEE00000   // ln2 high 40 bits
DATA expconsts<>+16(SB)/8, $0x3DEA39EF35793C76  // ln2 low correction
DATA expconsts<>+24(SB)/8, $0x3FF0000000000000  // 1.0
DATA expconsts<>+32(SB)/8, $1023                // float64 exponent bias
DATA expconsts<>+40(SB)/8, $0x7FFFFFFFFFFFFFFF  // |x| mask
DATA expconsts<>+48(SB)/8, $0x4086200000000000  // 708.0, ExpFast's guard
GLOBL expconsts<>(SB), RODATA, $56

#define COEF4(name, off, bits) \
	DATA name<>+0(SB)/8, $bits \
	DATA name<>+8(SB)/8, $bits \
	DATA name<>+16(SB)/8, $bits \
	DATA name<>+24(SB)/8, $bits \
	GLOBL name<>(SB), RODATA, $32

COEF4(expc10, 0, 0x3E927E4FB7789F5C) // 1/10!
COEF4(expc9, 0, 0x3EC71DE3A556C734)  // 1/9!
COEF4(expc8, 0, 0x3EFA01A01A01A01A)  // 1/8!
COEF4(expc7, 0, 0x3F2A01A01A01A01A)  // 1/7!
COEF4(expc6, 0, 0x3F56C16C16C16C17)  // 1/6!
COEF4(expc5, 0, 0x3F81111111111111)  // 1/5!
COEF4(expc4, 0, 0x3FA5555555555555)  // 1/4!
COEF4(expc3, 0, 0x3FC5555555555555)  // 1/3!
COEF4(expc2, 0, 0x3FE0000000000000)  // 1/2!

// func expSpanAVX2(v *float64, n int) (done int)
//
// In-place exp, four lanes at a time, over the longest prefix of v whose
// lanes all satisfy ExpFast's |x| ≤ 708 guard; returns how many elements
// were written. Stops before the first 4-lane group holding an
// out-of-range, ±Inf, or NaN lane (the quiet LE compare fails on
// unordered), leaving it untouched for the caller's scalar sweep — a +Inf
// conformal offset (infeasible span) is the common case. Same algorithm
// as the scalar ExpFast — k = round-to-even(x·log₂e), Cody–Waite
// reduction, degree-10 Taylor Horner, exact 2^k scale through the
// exponent field — so the FastExpMaxRelErr bound carries over (the FMA
// contraction only tightens the Horner roundings).
TEXT ·expSpanAVX2(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	XORQ BX, BX               // elements written
	VBROADCASTSD expconsts<>+0(SB), Y15  // log2e
	VBROADCASTSD expconsts<>+8(SB), Y14  // ln2hi
	VBROADCASTSD expconsts<>+16(SB), Y13 // ln2lo
	VBROADCASTSD expconsts<>+24(SB), Y12 // 1.0
	VPBROADCASTQ expconsts<>+32(SB), Y11 // 1023
	VBROADCASTSD expconsts<>+40(SB), Y10 // abs mask
	VBROADCASTSD expconsts<>+48(SB), Y9  // 708.0
	SUBQ $4, CX
	JL   expdone

exploop:
	VMOVUPD (DI), Y0
	VANDPD Y10, Y0, Y1        // |x|
	VCMPPD $2, Y9, Y1, Y1     // |x| ≤ 708, false on NaN (LE_OS)
	VMOVMSKPD Y1, AX
	CMPL AX, $0xF
	JNE  expdone              // group has an unguarded lane: caller's turn
	VMULPD Y15, Y0, Y1        // x·log₂e
	VROUNDPD $0, Y1, Y1       // k (round to nearest even)
	VMOVAPD Y0, Y2
	VFNMADD231PD Y14, Y1, Y2  // r = x − k·ln2hi (exact: hi has 12 trailing zero bits)
	VFNMADD231PD Y13, Y1, Y2  // r −= k·ln2lo
	VMOVUPD expc10<>(SB), Y3
	VFMADD213PD expc9<>(SB), Y2, Y3 // p = p·r + c  (Horner)
	VFMADD213PD expc8<>(SB), Y2, Y3
	VFMADD213PD expc7<>(SB), Y2, Y3
	VFMADD213PD expc6<>(SB), Y2, Y3
	VFMADD213PD expc5<>(SB), Y2, Y3
	VFMADD213PD expc4<>(SB), Y2, Y3
	VFMADD213PD expc3<>(SB), Y2, Y3
	VFMADD213PD expc2<>(SB), Y2, Y3
	VFMADD213PD Y12, Y2, Y3
	VFMADD213PD Y12, Y2, Y3
	VCVTTPD2DQY Y1, X4        // k as 4×int32 (k is integral, truncation exact)
	VPMOVSXDQ X4, Y4
	VPADDQ Y11, Y4, Y4
	VPSLLQ $52, Y4, Y4        // bits of 2^k
	VMULPD Y4, Y3, Y3
	VMOVUPD Y3, (DI)
	ADDQ $32, DI
	ADDQ $4, BX
	SUBQ $4, CX
	JGE  exploop

expdone:
	MOVQ BX, done+16(FP)
	VZEROUPPER
	RET
