package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/wasmcluster"
)

// TestOnlineUpdateAdaptsToNewPlatformData simulates deployment drift: one
// platform becomes 1.6x slower after the model was trained (thermal
// throttling, background daemons, a firmware change). Fresh measurements
// arrive; OnlineUpdate must adapt the model to the drifted platform
// without forgetting the rest of the cluster.
func TestOnlineUpdateAdaptsToNewPlatformData(t *testing.T) {
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: 77, NumWorkloads: 30, MaxDevices: 5, SetsPerDegree: 12,
	}).Generate()

	// Platform 0 drifts: all its measurements (which the initial training
	// never sees) are 1.6x slower.
	target := 0
	var heldOut, rest []int
	rng := rand.New(rand.NewSource(1))
	for i, o := range ds.Obs {
		if o.Platform == target {
			ds.Obs[i].Seconds = o.Seconds * 1.6
			heldOut = append(heldOut, i)
		} else {
			rest = append(rest, i)
		}
	}
	// Initial split over `rest` only.
	perm := rng.Perm(len(rest))
	split := dataset.Split{}
	for i, pi := range perm {
		switch {
		case i < len(perm)*7/10:
			split.Train = append(split.Train, rest[pi])
		case i < len(perm)*8/10:
			split.Val = append(split.Val, rest[pi])
		default:
			split.Test = append(split.Test, rest[pi])
		}
	}

	cfg := smallConfig(99)
	cfg.Steps = 600
	m, err := NewModel(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}

	// Error on the held-out platform before and after the online update.
	half := len(heldOut) / 2
	newObs, probe := heldOut[:half], heldOut[half:]
	mse := func() float64 {
		var s float64
		for _, i := range probe {
			o := ds.Obs[i]
			d := m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, 0) - o.LogSeconds()
			s += d * d
		}
		return s / float64(len(probe))
	}
	restMSE := func() float64 {
		var s float64
		n := 0
		for _, i := range split.Test {
			o := ds.Obs[i]
			d := m.PredictLogSeconds(o.Workload, o.Platform, o.Interferers, 0) - o.LogSeconds()
			s += d * d
			n++
		}
		return s / float64(n)
	}
	before := mse()
	restBefore := restMSE()
	if err := m.OnlineUpdate(newObs, split.Train, OnlineConfig{Steps: 300, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	after := mse()
	restAfter := restMSE()

	if after >= before {
		t.Fatalf("online update did not improve target platform: %.4f -> %.4f", before, after)
	}
	// Replay must prevent catastrophic forgetting: error elsewhere may move
	// a little but not explode.
	if restAfter > restBefore*2+0.02 {
		t.Fatalf("catastrophic forgetting: rest MSE %.4f -> %.4f", restBefore, restAfter)
	}
	t.Logf("target platform MSE %.4f -> %.4f; rest %.4f -> %.4f",
		before, after, restBefore, restAfter)
}

func TestOnlineUpdateErrors(t *testing.T) {
	ds := wasmcluster.New(wasmcluster.Config{
		Seed: 3, NumWorkloads: 20, MaxDevices: 3, SetsPerDegree: 8,
	}).Generate()
	cfg := smallConfig(4)
	cfg.Steps = 30
	m, _ := NewModel(cfg, ds)
	if err := m.OnlineUpdate([]int{0}, nil, OnlineConfig{}); err == nil {
		t.Fatal("update before Train must error")
	}
	rng := rand.New(rand.NewSource(5))
	split := dataset.NewSplit(rng, len(ds.Obs), 0.7)
	if _, err := m.Train(split); err != nil {
		t.Fatal(err)
	}
	if err := m.OnlineUpdate(nil, nil, OnlineConfig{}); err == nil {
		t.Fatal("empty update must error")
	}
	if err := m.OnlineUpdate([]int{math.MaxInt32}, nil, OnlineConfig{}); err == nil {
		t.Fatal("out-of-range index must error")
	}
	// A valid tiny update without replay must run.
	if err := m.OnlineUpdate(split.Test[:3], nil, OnlineConfig{Steps: 5, Batch: 16}); err != nil {
		t.Fatal(err)
	}
}
