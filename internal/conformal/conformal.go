// Package conformal implements split conformal regression and
// conformalized quantile regression (CQR) for one-sided runtime bounds
// (paper §3.5).
//
// Given a model's per-head log-runtime predictions, the calibrator computes
// the conformal offset γ per calibration pool (observations grouped by
// interference degree, §3.5 "Calibration Pools") such that
//
//	P(log C* ≤ ŷ + γ) ≥ 1 − ε
//
// under exchangeability. For quantile-head models, the head used at test
// time is chosen per target ε by minimizing the overprovisioning margin on
// the validation set (§3.5 "Optimal Quantile Choice"); the naive CQR rule
// (head trained at ξ = 1−ε) and non-quantile calibration (a single
// squared-loss head) are provided for the Fig. 5 ablation.
package conformal

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// HeadPredictions carries a model's predictions on the calibration and
// validation sets: Cal[h][i] is head h's predicted log runtime for the i-th
// calibration observation, with true log runtime CalTrue[i] in pool
// CalPool[i] (pools are interference degrees).
type HeadPredictions struct {
	Quantiles []float64 // target quantile per head; nil/empty for mean models

	Cal     [][]float64
	CalTrue []float64
	CalPool []int

	Val     [][]float64
	ValTrue []float64
	ValPool []int
}

// NumHeads returns the number of prediction heads.
func (hp *HeadPredictions) NumHeads() int { return len(hp.Cal) }

// validate checks shape consistency.
func (hp *HeadPredictions) validate() error {
	if hp.NumHeads() == 0 {
		return fmt.Errorf("conformal: no heads")
	}
	for h := range hp.Cal {
		if len(hp.Cal[h]) != len(hp.CalTrue) || len(hp.Val[h]) != len(hp.ValTrue) {
			return fmt.Errorf("conformal: head %d ragged predictions", h)
		}
	}
	if len(hp.CalPool) != len(hp.CalTrue) || len(hp.ValPool) != len(hp.ValTrue) {
		return fmt.Errorf("conformal: pool labels mismatch")
	}
	return nil
}

// Bounder maps a head's prediction to a calibrated upper bound on log
// runtime.
//
// A Bounder is an immutable calibration result: every field is written
// exactly once, inside Calibrate, before the Bounder is returned. Bound is
// a pure read, so a published *Bounder may be shared by any number of
// goroutines without synchronization — the serving layer caches Bounders
// per snapshot and hands them to concurrent readers. Callers must not
// mutate Offsets after calibration.
type Bounder struct {
	Head    int
	Eps     float64
	Offsets map[int]float64 // per-pool conformal offset γ
	// MaxOffset is the most conservative per-pool offset, applied to pools
	// never seen during calibration (+Inf when no pool was calibrated).
	// Precomputed so Bound is a pure lookup with no lazy state.
	MaxOffset float64
	// ValMargin is the overprovisioning margin achieved on the validation
	// set, used for head selection and reported by Fig. 8.
	ValMargin float64
}

// Bound returns the calibrated upper bound for a prediction in the given
// pool. Pools never seen during calibration receive the most conservative
// observed offset. Safe for concurrent use.
func (b *Bounder) Bound(predLog float64, pool int) float64 {
	off, ok := b.Offsets[pool]
	if !ok {
		off = b.MaxOffset
	}
	return predLog + off
}

// calibrateHead computes per-pool offsets for one head and its validation
// margin.
func calibrateHead(hp *HeadPredictions, h int, eps float64) *Bounder {
	scores := map[int][]float64{}
	for i, truth := range hp.CalTrue {
		scores[hp.CalPool[i]] = append(scores[hp.CalPool[i]], truth-hp.Cal[h][i])
	}
	b := &Bounder{Head: h, Eps: eps, Offsets: map[int]float64{}, MaxOffset: math.Inf(-1)}
	for pool, s := range scores {
		off := stats.ConformalQuantile(s, eps)
		b.Offsets[pool] = off
		if off > b.MaxOffset {
			b.MaxOffset = off
		}
	}
	if math.IsInf(b.MaxOffset, -1) {
		b.MaxOffset = math.Inf(1)
	}
	bounds := make([]float64, len(hp.ValTrue))
	for i := range hp.ValTrue {
		bounds[i] = b.Bound(hp.Val[h][i], hp.ValPool[i])
	}
	b.ValMargin = Margin(bounds, hp.ValTrue)
	return b
}

// Selection picks the quantile head used for a target ε.
type Selection int

// Head-selection strategies (paper Fig. 5).
const (
	// SelectOptimal scans all heads and keeps the one with the smallest
	// validation overprovisioning margin (Pitot's method).
	SelectOptimal Selection = iota
	// SelectNaive uses the head trained at ξ closest to 1−ε (the common
	// CQR practice the paper argues against).
	SelectNaive
	// SelectOnly requires a single head (non-quantile models).
	SelectOnly
)

// Calibrate builds a Bounder for the target miscoverage rate eps.
func Calibrate(hp *HeadPredictions, eps float64, sel Selection) (*Bounder, error) {
	if err := hp.validate(); err != nil {
		return nil, err
	}
	// Negated-range form so NaN (for which every comparison is false) is
	// rejected too — a NaN eps would otherwise clamp to the least
	// conservative quantile and poison per-eps caches with unfindable keys.
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("conformal: eps %v out of (0,1)", eps)
	}
	switch sel {
	case SelectOnly:
		if hp.NumHeads() != 1 {
			return nil, fmt.Errorf("conformal: SelectOnly with %d heads", hp.NumHeads())
		}
		return calibrateHead(hp, 0, eps), nil
	case SelectNaive:
		if len(hp.Quantiles) != hp.NumHeads() {
			return nil, fmt.Errorf("conformal: naive selection needs quantile labels")
		}
		best, bestDist := 0, math.Inf(1)
		for h, q := range hp.Quantiles {
			if d := math.Abs(q - (1 - eps)); d < bestDist {
				best, bestDist = h, d
			}
		}
		return calibrateHead(hp, best, eps), nil
	case SelectOptimal:
		var best *Bounder
		for h := 0; h < hp.NumHeads(); h++ {
			b := calibrateHead(hp, h, eps)
			if best == nil || b.ValMargin < best.ValMargin {
				best = b
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("conformal: unknown selection %d", sel)
}

// CalibrateAllHeads returns one Bounder per head (used by the Fig. 8
// quantile-choice study).
func CalibrateAllHeads(hp *HeadPredictions, eps float64) ([]*Bounder, error) {
	if err := hp.validate(); err != nil {
		return nil, err
	}
	out := make([]*Bounder, hp.NumHeads())
	for h := range out {
		out[h] = calibrateHead(hp, h, eps)
	}
	return out, nil
}

// Margin returns the overprovisioning margin (paper Eq. 11) of log-domain
// bounds against log-domain truths:
//
//	m = E[ max(C̃ − C*, 0) / C* ] = E[ max(exp(b − t) − 1, 0) ]
//
// Undercovered samples contribute 0 (they are controlled by ε instead).
func Margin(boundLog, trueLog []float64) float64 {
	if len(boundLog) != len(trueLog) {
		panic("conformal: Margin length mismatch")
	}
	if len(boundLog) == 0 {
		return 0
	}
	var s float64
	for i, b := range boundLog {
		if over := math.Exp(b-trueLog[i]) - 1; over > 0 {
			s += over
		}
	}
	return s / float64(len(boundLog))
}

// Coverage returns the fraction of samples whose bound was sufficient.
func Coverage(boundLog, trueLog []float64) float64 {
	if len(boundLog) == 0 {
		return 0
	}
	n := 0
	for i, b := range boundLog {
		if trueLog[i] <= b {
			n++
		}
	}
	return float64(n) / float64(len(boundLog))
}
