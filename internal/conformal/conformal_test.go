package conformal

import (
	"math"
	"math/rand"
	"testing"
)

// synthHP builds HeadPredictions where head h predicts truth + bias[h] +
// noise, with pools 0 and 2.
func synthHP(rng *rand.Rand, n int, biases []float64, noise float64) *HeadPredictions {
	hp := &HeadPredictions{}
	nh := len(biases)
	hp.Cal = make([][]float64, nh)
	hp.Val = make([][]float64, nh)
	for i := 0; i < n; i++ {
		truth := rng.NormFloat64()
		pool := (i % 2) * 2
		hp.CalTrue = append(hp.CalTrue, truth)
		hp.CalPool = append(hp.CalPool, pool)
		for h, b := range biases {
			hp.Cal[h] = append(hp.Cal[h], truth+b+noise*rng.NormFloat64())
		}
		truthV := rng.NormFloat64()
		hp.ValTrue = append(hp.ValTrue, truthV)
		hp.ValPool = append(hp.ValPool, pool)
		for h, b := range biases {
			hp.Val[h] = append(hp.Val[h], truthV+b+noise*rng.NormFloat64())
		}
	}
	return hp
}

func TestCalibrateCoverageOnFreshData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hp := synthHP(rng, 600, []float64{0}, 0.3)
	b, err := Calibrate(hp, 0.1, SelectOnly)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh data from the same distribution must be covered ≥ ~90%.
	covered, total := 0, 4000
	for i := 0; i < total; i++ {
		truth := rng.NormFloat64()
		pred := truth + 0.3*rng.NormFloat64()
		if truth <= b.Bound(pred, (i%2)*2) {
			covered++
		}
	}
	rate := float64(covered) / float64(total)
	if rate < 0.88 {
		t.Fatalf("coverage %.3f < 0.88", rate)
	}
	if rate > 0.97 {
		t.Fatalf("coverage %.3f suspiciously conservative", rate)
	}
}

func TestCalibrateSelectsUnbiasedHead(t *testing.T) {
	// Heads: one hugely over-predicting (loose), one slightly over, one
	// under-predicting (needs big γ). The mid head should win on margin.
	rng := rand.New(rand.NewSource(2))
	hp := synthHP(rng, 800, []float64{2.0, 0.3, -2.0}, 0.1)
	hp.Quantiles = []float64{0.99, 0.9, 0.5}
	b, err := Calibrate(hp, 0.1, SelectOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if b.Head != 1 {
		t.Fatalf("selected head %d, want 1", b.Head)
	}
}

func TestNaiveSelectionPicksClosestQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hp := synthHP(rng, 100, []float64{0, 0, 0}, 0.1)
	hp.Quantiles = []float64{0.5, 0.9, 0.99}
	b, err := Calibrate(hp, 0.1, SelectNaive) // 1-eps = 0.9
	if err != nil {
		t.Fatal(err)
	}
	if b.Head != 1 {
		t.Fatalf("naive selected head %d, want 1 (ξ=0.9)", b.Head)
	}
	b, _ = Calibrate(hp, 0.01, SelectNaive) // 1-eps = 0.99
	if b.Head != 2 {
		t.Fatalf("naive selected head %d, want 2 (ξ=0.99)", b.Head)
	}
}

func TestPerPoolOffsetsDiffer(t *testing.T) {
	// Pool 2 has much noisier predictions: its offset must be larger.
	rng := rand.New(rand.NewSource(4))
	hp := &HeadPredictions{Cal: make([][]float64, 1), Val: make([][]float64, 1)}
	for i := 0; i < 1000; i++ {
		truth := rng.NormFloat64()
		pool := (i % 2) * 2
		sigma := 0.05
		if pool == 2 {
			sigma = 1.0
		}
		hp.CalTrue = append(hp.CalTrue, truth)
		hp.CalPool = append(hp.CalPool, pool)
		hp.Cal[0] = append(hp.Cal[0], truth+sigma*rng.NormFloat64())
		hp.ValTrue = append(hp.ValTrue, truth)
		hp.ValPool = append(hp.ValPool, pool)
		hp.Val[0] = append(hp.Val[0], truth+sigma*rng.NormFloat64())
	}
	b, err := Calibrate(hp, 0.1, SelectOnly)
	if err != nil {
		t.Fatal(err)
	}
	if b.Offsets[2] <= b.Offsets[0] {
		t.Fatalf("noisy pool offset %.3f not above clean pool %.3f", b.Offsets[2], b.Offsets[0])
	}
}

func TestBoundUnknownPoolConservative(t *testing.T) {
	// Calibrate two pools with clearly different score levels; a pool never
	// seen during calibration must receive the most conservative offset,
	// precomputed at calibration time (Bounder is immutable afterwards).
	hp := &HeadPredictions{
		Cal:     [][]float64{{1, 1, 1, 2, 2, 2}},
		CalTrue: []float64{1.1, 1.1, 1.1, 2.5, 2.5, 2.5},
		CalPool: []int{0, 0, 0, 2, 2, 2},
		Val:     [][]float64{{1}},
		ValTrue: []float64{1},
		ValPool: []int{0},
	}
	b, err := Calibrate(hp, 0.5, SelectOnly)
	if err != nil {
		t.Fatal(err)
	}
	if b.Offsets[2] <= b.Offsets[0] {
		t.Fatalf("offsets %v not ordered by pool score level", b.Offsets)
	}
	if b.MaxOffset != b.Offsets[2] {
		t.Fatalf("MaxOffset %v, want the largest per-pool offset %v", b.MaxOffset, b.Offsets[2])
	}
	if got, want := b.Bound(1.0, 7), 1.0+b.Offsets[2]; got != want {
		t.Fatalf("unknown pool bound %v, want %v", got, want)
	}
	empty := &Bounder{Offsets: map[int]float64{}, MaxOffset: math.Inf(1)}
	if !math.IsInf(empty.Bound(1.0, 0), 1) {
		t.Fatal("empty bounder should return +Inf")
	}
}

func TestSmallCalibrationSetInfinite(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hp := synthHP(rng, 6, []float64{0}, 0.1) // 3 per pool; eps=0.01 infeasible
	b, err := Calibrate(hp, 0.01, SelectOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(b.Bound(0, 0), 1) {
		t.Fatal("insufficient calibration data must give +Inf bound")
	}
}

func TestMarginAndCoverage(t *testing.T) {
	trueLog := []float64{0, 0, 0, 0}
	boundLog := []float64{math.Log(1.5), math.Log(2.0), -1, 0}
	// overprovision: 0.5, 1.0, 0 (undercovered), 0 -> mean 0.375
	if m := Margin(boundLog, trueLog); math.Abs(m-0.375) > 1e-12 {
		t.Fatalf("Margin = %v want 0.375", m)
	}
	if c := Coverage(boundLog, trueLog); c != 0.75 {
		t.Fatalf("Coverage = %v want 0.75", c)
	}
	if Margin(nil, nil) != 0 || Coverage(nil, nil) != 0 {
		t.Fatal("empty margin/coverage not 0")
	}
}

func TestCalibrateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hp := synthHP(rng, 10, []float64{0, 1}, 0.1)
	if _, err := Calibrate(hp, 0.1, SelectOnly); err == nil {
		t.Fatal("SelectOnly with 2 heads must error")
	}
	if _, err := Calibrate(hp, 0.1, SelectNaive); err == nil {
		t.Fatal("naive without quantiles must error")
	}
	if _, err := Calibrate(hp, 0, SelectOptimal); err == nil {
		t.Fatal("eps=0 must error")
	}
	if _, err := Calibrate(&HeadPredictions{}, 0.1, SelectOptimal); err == nil {
		t.Fatal("empty predictions must error")
	}
}

func TestCalibrateAllHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hp := synthHP(rng, 200, []float64{0.5, -0.5}, 0.1)
	bs, err := CalibrateAllHeads(hp, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || bs[0].Head != 0 || bs[1].Head != 1 {
		t.Fatal("per-head bounders wrong")
	}
	// The over-predicting head needs a smaller (more negative) offset.
	if bs[0].Offsets[0] >= bs[1].Offsets[0] {
		t.Fatalf("offsets not ordered: %v vs %v", bs[0].Offsets[0], bs[1].Offsets[0])
	}
}

// Per-pool calibration must maintain coverage within each pool, which a
// single global calibration set cannot when pools have different noise —
// the paper's motivation for calibration pools (§3.5): it preserves
// conditional exchangeability under shift of the pool variable.
func TestPoolingMaintainsConditionalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const eps = 0.1
	gen := func(pool int) (truth, pred float64) {
		truth = rng.NormFloat64()
		sigma := 0.05
		if pool == 2 {
			sigma = 0.8
		}
		return truth, truth + sigma*rng.NormFloat64()
	}
	build := func(pooled bool) *Bounder {
		hp := &HeadPredictions{Cal: make([][]float64, 1), Val: make([][]float64, 1)}
		for i := 0; i < 3000; i++ {
			pool := (i % 2) * 2
			truth, pred := gen(pool)
			label := pool
			if !pooled {
				label = 0
			}
			hp.CalTrue = append(hp.CalTrue, truth)
			hp.CalPool = append(hp.CalPool, label)
			hp.Cal[0] = append(hp.Cal[0], pred)
			hp.ValTrue = append(hp.ValTrue, truth)
			hp.ValPool = append(hp.ValPool, label)
			hp.Val[0] = append(hp.Val[0], pred)
		}
		b, err := Calibrate(hp, eps, SelectOnly)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	coverageIn := func(b *Bounder, pool, label int) float64 {
		covered := 0
		const n = 3000
		for i := 0; i < n; i++ {
			truth, pred := gen(pool)
			if truth <= b.Bound(pred, label) {
				covered++
			}
		}
		return float64(covered) / n
	}
	pooled := build(true)
	global := build(false)
	// Pooled: both pools individually covered at ≥ 1-eps (minus slack).
	if c := coverageIn(pooled, 0, 0); c < 1-eps-0.03 {
		t.Fatalf("pooled clean-pool coverage %.3f", c)
	}
	if c := coverageIn(pooled, 2, 2); c < 1-eps-0.03 {
		t.Fatalf("pooled noisy-pool coverage %.3f", c)
	}
	// Global calibration undercovers the noisy pool.
	if c := coverageIn(global, 2, 0); c >= 1-eps-0.01 {
		t.Fatalf("global calibration unexpectedly covers noisy pool: %.3f", c)
	}
}
