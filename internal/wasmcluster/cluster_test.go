package wasmcluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestCatalogCounts(t *testing.T) {
	if n := len(Devices()); n != 24 {
		t.Fatalf("devices = %d want 24", n)
	}
	if n := len(Runtimes()); n != 10 {
		t.Fatalf("runtime configs = %d want 10", n)
	}
	total := 0
	for _, s := range Suites() {
		total += s.Count
	}
	if total != 249 {
		t.Fatalf("suite workloads = %d want 249", total)
	}
}

func TestSuiteMixesNormalized(t *testing.T) {
	for _, s := range Suites() {
		var sum float64
		for _, m := range s.mix {
			sum += m
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("suite %s mix sums to %v", s.Name, sum)
		}
		if len(s.latentCenter) != latentDim {
			t.Fatalf("suite %s latent dim %d", s.Name, len(s.latentCenter))
		}
	}
}

func TestSupportRules(t *testing.T) {
	devs := Devices()
	rts := Runtimes()
	byName := func(n string) RuntimeConfig {
		for _, r := range rts {
			if r.Name == n {
				return r
			}
		}
		t.Fatalf("runtime %s missing", n)
		return RuntimeConfig{}
	}
	var m7, riscv, a72 Device
	for _, d := range devs {
		switch {
		case d.Arch == "cortex-m7":
			m7 = d
		case d.Class == "riscv":
			riscv = d
		case d.Arch == "cortex-a72" && a72.Model == "":
			a72 = d
		}
	}
	if !Supports(m7, byName("wamr-llvm-aot")) {
		t.Fatal("M7 must support WAMR AOT")
	}
	if Supports(m7, byName("wasmtime-cranelift-jit")) {
		t.Fatal("M7 must not support wasmtime")
	}
	if !Supports(riscv, byName("wasm3-interp")) || Supports(riscv, byName("wasmer-llvm-aot")) {
		t.Fatal("RISC-V support rules wrong")
	}
	if Supports(a72, byName("wamr-llvm-aot")) {
		t.Fatal("A72 must exclude WAMR AOT")
	}
	if !Supports(a72, byName("wamr-interp")) {
		t.Fatal("A72 must support WAMR interp")
	}
}

func TestFullScalePlatformCount(t *testing.T) {
	c := New(Full(1))
	// 24 devices x 10 configs = 240, minus support exclusions (App. C.1):
	// M7 keeps 1 of 10 (-9), RISC-V keeps 3 (-7), four A72 devices lose
	// WAMR AOT (-4) => 220. The paper reports Np=231 for its cluster; the
	// difference is the exact support matrix, documented in DESIGN.md.
	if n := len(c.Platforms); n != 220 {
		t.Fatalf("platforms = %d want 220", n)
	}
	if n := len(c.Workloads); n != 249 {
		t.Fatalf("workloads = %d want 249", n)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := New(Config{Seed: 7}).Generate()
	b := New(Config{Seed: 7}).Generate()
	if len(a.Obs) != len(b.Obs) {
		t.Fatalf("obs counts differ: %d vs %d", len(a.Obs), len(b.Obs))
	}
	for i := range a.Obs {
		if a.Obs[i].Seconds != b.Obs[i].Seconds {
			t.Fatal("same seed produced different observations")
		}
	}
	c := New(Config{Seed: 8}).Generate()
	if len(a.Obs) == len(c.Obs) && a.Obs[0].Seconds == c.Obs[0].Seconds {
		t.Fatal("different seeds produced identical dataset")
	}
}

func TestGeneratedDatasetValidates(t *testing.T) {
	ds := New(Config{Seed: 3}).Generate()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degree counts interferers: sets of 2/3/4 running workloads yield
	// degrees 1/2/3 for each member.
	by := ds.CountByDegree()
	for _, g := range []int{0, 1, 2, 3} {
		if by[g] == 0 {
			t.Fatalf("no degree-%d observations: %v", g, by)
		}
	}
	if by[4] != 0 {
		t.Fatal("unexpected degree-4 observations")
	}
}

func TestRuntimeSpansOrdersOfMagnitude(t *testing.T) {
	// Paper §3.2: runtimes vary by several orders of magnitude.
	c := New(Config{Seed: 4, MaxDevices: 24})
	lo, hi := math.Inf(1), math.Inf(-1)
	for p := range c.Platforms {
		for w := 0; w < len(c.Workloads); w += 7 {
			v := c.TrueIsolationSeconds(w, p)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi/lo < 1e4 {
		t.Fatalf("dynamic range only %.1fx", hi/lo)
	}
}

func TestInterpretersSlowerThanAOT(t *testing.T) {
	c := New(Config{Seed: 5})
	// Compare geometric-mean runtime of interp vs aot platforms on the same
	// device.
	byKind := map[string][]float64{}
	for p, pl := range c.Platforms {
		kind := c.Runtimes[pl.RuntimeIdx].Kind
		for w := 0; w < len(c.Workloads); w += 5 {
			byKind[kind] = append(byKind[kind], c.TrueIsolationSeconds(w, p))
		}
	}
	if stats.GeoMean(byKind["interp"]) < 5*stats.GeoMean(byKind["aot"]) {
		t.Fatalf("interp gm %.3f vs aot gm %.3f: interpreters should be much slower",
			stats.GeoMean(byKind["interp"]), stats.GeoMean(byKind["aot"]))
	}
}

func TestInterferenceSlowdownDistribution(t *testing.T) {
	// Fig. 1: slowdowns range from ~1x up to ~20x, heavier with more
	// interferers.
	c := New(Config{Seed: 6, MaxDevices: 24, NumWorkloads: 120})
	rng := rand.New(rand.NewSource(1))
	byDeg := map[int][]float64{}
	for trial := 0; trial < 4000; trial++ {
		p := rng.Intn(len(c.Platforms))
		deg := 2 + rng.Intn(3)
		members := pickDistinct(rng, seq(len(c.Workloads)), deg)
		w := members[0]
		slow := math.Exp(c.TrueInterferenceLogSlowdown(w, p, members[1:]))
		byDeg[deg] = append(byDeg[deg], slow)
	}
	med2 := stats.Quantile(byDeg[2], 0.5)
	med4 := stats.Quantile(byDeg[4], 0.5)
	if med2 < 1.0 || med2 > 2.0 {
		t.Fatalf("2-way median slowdown %.2f outside [1,2]", med2)
	}
	if med4 <= med2 {
		t.Fatalf("4-way median %.2f not worse than 2-way %.2f", med4, med2)
	}
	max4 := stats.Quantile(byDeg[4], 1.0)
	if max4 < 5 || max4 > 80 {
		t.Fatalf("4-way max slowdown %.1fx outside plausible [5,80] tail", max4)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFeatureMatrices(t *testing.T) {
	c := New(Config{Seed: 7})
	wf := c.WorkloadFeatureMatrix()
	if wf.Rows != len(c.Workloads) || wf.Cols != NumOpcodes() {
		t.Fatalf("workload features %dx%d", wf.Rows, wf.Cols)
	}
	pf := c.PlatformFeatureMatrix()
	if pf.Rows != len(c.Platforms) {
		t.Fatalf("platform features %d rows", pf.Rows)
	}
	if len(c.PlatformFeatureNames()) != pf.Cols {
		t.Fatalf("feature names %d for %d cols", len(c.PlatformFeatureNames()), pf.Cols)
	}
	if wf.HasNaN() || pf.HasNaN() {
		t.Fatal("NaN in features")
	}
	// One-hot sections: each platform row must have exactly one arch and
	// one runtime set.
	archN := 14
	for i := 0; i < pf.Rows; i++ {
		row := pf.Row(i)
		var aSum, rSum float64
		for _, v := range row[:archN] {
			aSum += v
		}
		for _, v := range row[archN : archN+10] {
			rSum += v
		}
		if aSum != 1 || rSum != 1 {
			t.Fatalf("platform %d one-hots: arch %v runtime %v", i, aSum, rSum)
		}
	}
}

func TestWorkloadFeaturesInformative(t *testing.T) {
	// Total opcode count must correlate strongly with difficulty: the
	// features carry real signal (paper: opcode counts predict runtime).
	c := New(Config{Seed: 8, NumWorkloads: 120})
	var tot, diff []float64
	for _, w := range c.Workloads {
		var s float64
		for _, v := range w.opcodeCounts {
			s += v
		}
		tot = append(tot, math.Log(s))
		diff = append(diff, w.logDiff)
	}
	if r := stats.Pearson(tot, diff); r < 0.9 {
		t.Fatalf("opcode-total vs difficulty correlation %.2f < 0.9", r)
	}
}

func TestMCUFastOnTinyBenchmarks(t *testing.T) {
	// Paper §4 fn.5: the microcontroller beats some Linux platforms on the
	// smallest benchmarks due to missing OS overhead. Verify the additive
	// latency floor makes this possible: MCU latency << Linux latency.
	c := New(Full(9))
	var mcu, linux []float64
	for _, p := range c.Platforms {
		if c.Devices[p.DeviceIdx].Class == "arm-m" {
			mcu = append(mcu, p.osLatency)
		} else {
			linux = append(linux, p.osLatency)
		}
	}
	if len(mcu) == 0 {
		t.Fatal("no MCU platform generated")
	}
	if stats.Mean(mcu) > stats.Mean(linux)/5 {
		t.Fatalf("MCU latency %.5f not well below linux %.5f", stats.Mean(mcu), stats.Mean(linux))
	}
}

func TestGenerateObservationVolumeFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	ds := New(Full(10)).Generate()
	by := ds.CountByDegree()
	// Paper: 53,637 isolation and 357,333 interference observations.
	if by[0] < 40000 || by[0] > 60000 {
		t.Fatalf("isolation obs %d outside [40k,60k]", by[0])
	}
	interf := by[2] + by[3] + by[4]
	if interf < 250000 || interf > 500000 {
		t.Fatalf("interference obs %d outside [250k,500k]", interf)
	}
}
