// Package wasmcluster simulates the paper's heterogeneous WebAssembly test
// cluster (§4, Fig. 3) and generates the runtime dataset used to train and
// evaluate Pitot.
//
// The paper measured 249 benchmarks on a physical cluster of 24 devices
// running 10 WebAssembly runtime configurations for roughly 80 hours. That
// hardware is not available here, so this package substitutes a generative
// model with the same structure (documented in DESIGN.md):
//
//   - the device catalog reproduces Table 2 (vendors, microarchitectures,
//     caches, clock speeds), and the runtime catalog reproduces Table 3;
//   - per-arch support rules follow App. C.1 (the Cortex-M7 runs only
//     AOT-compiled WAMR, the RISC-V board only WAMR and wasm3, and WAMR AOT
//     is excluded on Cortex-A72);
//   - true runtimes follow a multiplicative (log-additive) model: workload
//     difficulty + platform speed + a low-rank workload×platform interaction
//   - heavy-tailed measurement noise, matching the paper's motivation for
//     the log objective (§3.2);
//   - interference follows a per-platform low-rank threshold model that
//     produces the 1x–20x slowdown distribution of Fig. 1.
package wasmcluster

// Device describes one physical machine of the cluster (paper Table 2).
type Device struct {
	Model string
	CPU   string
	Arch  string // microarchitecture, one-hot feature
	Class string // vendor/ISA class for Fig. 12c: amd-x86, intel-x86, arm-a, riscv, arm-m
	GHz   float64
	L1dKB float64 // 0 = absent
	L1iKB float64
	L2KB  float64
	L3KB  float64 // 0 = absent
	MemMB float64
	// logSpeed is the true log throughput offset of the device (negative =
	// slower); chosen to span the several-orders-of-magnitude range the
	// paper reports. Hidden from features.
	logSpeed float64
	// fragility scales interference susceptibility: resource-constrained
	// devices suffer more from co-located workloads.
	fragility float64
}

// Devices returns the 24-device catalog. The first 22 rows follow paper
// Table 2; the paper states 24 devices, so two plausible cluster members
// (a second RPi 4 and an NXP i.MX 8M, NXP being listed as a cluster vendor
// in App. C.1) complete the set.
func Devices() []Device {
	return []Device{
		{Model: "NUC 8", CPU: "Intel i7-8650U", Arch: "skylake", Class: "intel-x86", GHz: 1.9, L1dKB: 32, L1iKB: 32, L2KB: 256, L3KB: 8192, MemMB: 16384, logSpeed: 0.0, fragility: 0.18},
		{Model: "NUC 4", CPU: "Intel i3-4010U", Arch: "haswell", Class: "intel-x86", GHz: 1.7, L1dKB: 32, L1iKB: 32, L2KB: 256, L3KB: 3072, MemMB: 8192, logSpeed: -0.45, fragility: 0.22},
		{Model: "Generic ITX", CPU: "Intel i7-4770TE", Arch: "haswell", Class: "intel-x86", GHz: 2.3, L1dKB: 32, L1iKB: 32, L2KB: 256, L3KB: 8192, MemMB: 16384, logSpeed: -0.15, fragility: 0.18},
		{Model: "Compute Stick", CPU: "Intel x5-Z8330", Arch: "silvermont", Class: "intel-x86", GHz: 1.44, L1dKB: 24, L1iKB: 32, L2KB: 1024, L3KB: 0, MemMB: 2048, logSpeed: -1.6, fragility: 0.55},
		{Model: "NUC 11 i5", CPU: "Intel i5-1145G7", Arch: "tigerlake", Class: "intel-x86", GHz: 2.6, L1dKB: 48, L1iKB: 32, L2KB: 1280, L3KB: 8192, MemMB: 16384, logSpeed: 0.35, fragility: 0.15},
		{Model: "NUC 11 i7", CPU: "Intel i7-1165G7", Arch: "tigerlake", Class: "intel-x86", GHz: 2.8, L1dKB: 48, L1iKB: 32, L2KB: 1280, L3KB: 12288, MemMB: 16384, logSpeed: 0.45, fragility: 0.15},
		{Model: "Mini PC N4020", CPU: "Intel N4020", Arch: "goldmontplus", Class: "intel-x86", GHz: 1.1, L1dKB: 24, L1iKB: 32, L2KB: 4096, L3KB: 0, MemMB: 4096, logSpeed: -1.3, fragility: 0.5},
		{Model: "EliteDesk 805 G8", CPU: "AMD R5-5650G", Arch: "znver3", Class: "amd-x86", GHz: 3.9, L1dKB: 32, L1iKB: 32, L2KB: 512, L3KB: 16384, MemMB: 32768, logSpeed: 0.6, fragility: 0.12},
		{Model: "Mini PC 4500U", CPU: "AMD R5-4500U", Arch: "znver2", Class: "amd-x86", GHz: 2.3, L1dKB: 32, L1iKB: 32, L2KB: 512, L3KB: 8192, MemMB: 16384, logSpeed: 0.2, fragility: 0.18},
		{Model: "Mini PC 3200U", CPU: "AMD R3-3200U", Arch: "znver1", Class: "amd-x86", GHz: 2.6, L1dKB: 32, L1iKB: 64, L2KB: 512, L3KB: 4096, MemMB: 8192, logSpeed: -0.35, fragility: 0.25},
		{Model: "Mini PC A6", CPU: "AMD A6-1450", Arch: "jaguar", Class: "amd-x86", GHz: 1.0, L1dKB: 32, L1iKB: 32, L2KB: 2048, L3KB: 0, MemMB: 4096, logSpeed: -1.9, fragility: 0.55},
		{Model: "RPi 4 Rev 1.2", CPU: "Broadcom BCM2711", Arch: "cortex-a72", Class: "arm-a", GHz: 1.5, L1dKB: 32, L1iKB: 48, L2KB: 1024, L3KB: 0, MemMB: 4096, logSpeed: -1.8, fragility: 0.6},
		{Model: "RPi 3B+ Rev 1.3", CPU: "Broadcom BCM2837B0", Arch: "cortex-a53", Class: "arm-a", GHz: 1.4, L1dKB: 32, L1iKB: 32, L2KB: 512, L3KB: 0, MemMB: 1024, logSpeed: -2.6, fragility: 0.75},
		{Model: "Banana Pi M5", CPU: "Amlogic S905X3", Arch: "cortex-a55", Class: "arm-a", GHz: 2.0, L1dKB: 32, L1iKB: 32, L2KB: 512, L3KB: 0, MemMB: 4096, logSpeed: -2.1, fragility: 0.65},
		{Model: "Le Potato", CPU: "Amlogic S905X", Arch: "cortex-a53", Class: "arm-a", GHz: 1.512, L1dKB: 32, L1iKB: 32, L2KB: 512, L3KB: 0, MemMB: 2048, logSpeed: -2.5, fragility: 0.72},
		{Model: "Odroid C4", CPU: "Amlogic S905X3", Arch: "cortex-a55", Class: "arm-a", GHz: 2.0, L1dKB: 32, L1iKB: 32, L2KB: 512, L3KB: 0, MemMB: 4096, logSpeed: -2.05, fragility: 0.65},
		{Model: "RockPro64", CPU: "RockChip RK3399", Arch: "cortex-a72", Class: "arm-a", GHz: 1.8, L1dKB: 32, L1iKB: 48, L2KB: 1024, L3KB: 0, MemMB: 4096, logSpeed: -1.75, fragility: 0.6},
		{Model: "Rock Pi 4b", CPU: "RockChip RK3399", Arch: "cortex-a72", Class: "arm-a", GHz: 1.8, L1dKB: 32, L1iKB: 48, L2KB: 1024, L3KB: 0, MemMB: 4096, logSpeed: -1.78, fragility: 0.6},
		{Model: "Renegade", CPU: "RockChip RK3328", Arch: "cortex-a53", Class: "arm-a", GHz: 1.4, L1dKB: 32, L1iKB: 32, L2KB: 256, L3KB: 0, MemMB: 4096, logSpeed: -2.55, fragility: 0.72},
		{Model: "Orange Pi 3", CPU: "Allwinner H6", Arch: "cortex-a53", Class: "arm-a", GHz: 1.8, L1dKB: 32, L1iKB: 32, L2KB: 512, L3KB: 0, MemMB: 2048, logSpeed: -2.4, fragility: 0.7},
		{Model: "Starfive VF2", CPU: "SiFive U74", Arch: "sifive-u74", Class: "riscv", GHz: 1.5, L1dKB: 32, L1iKB: 32, L2KB: 2048, L3KB: 0, MemMB: 8192, logSpeed: -2.3, fragility: 0.68},
		{Model: "Nucleo-F767ZI", CPU: "STMicro STM32F767ZI", Arch: "cortex-m7", Class: "arm-m", GHz: 0.216, L1dKB: 16, L1iKB: 16, L2KB: 0, L3KB: 0, MemMB: 0.512, logSpeed: -4.6, fragility: 0.45},
		{Model: "RPi 4 Rev 1.4", CPU: "Broadcom BCM2711", Arch: "cortex-a72", Class: "arm-a", GHz: 1.8, L1dKB: 32, L1iKB: 48, L2KB: 1024, L3KB: 0, MemMB: 8192, logSpeed: -1.7, fragility: 0.6},
		{Model: "i.MX 8M Mini", CPU: "NXP i.MX8MM", Arch: "cortex-a53", Class: "arm-a", GHz: 1.8, L1dKB: 32, L1iKB: 32, L2KB: 512, L3KB: 0, MemMB: 2048, logSpeed: -2.45, fragility: 0.7},
	}
}

// RuntimeConfig describes one WebAssembly runtime configuration (paper
// Table 3: 5 runtimes, 10 configurations).
type RuntimeConfig struct {
	Name string
	Kind string // "interp", "aot", "jit"
	// logSlowdown is the true log runtime penalty relative to native-speed
	// AOT code. Interpreters are 1–2 orders of magnitude slower (§3.2).
	logSlowdown float64
	// memPressure scales how much cache/memory contention the runtime both
	// causes and suffers (interpreters touch far more memory per op).
	memPressure float64
}

// Runtimes returns the 10 runtime configurations of paper Table 3.
func Runtimes() []RuntimeConfig {
	return []RuntimeConfig{
		{Name: "wasm3-interp", Kind: "interp", logSlowdown: 3.0, memPressure: 1.2},
		{Name: "wamr-interp", Kind: "interp", logSlowdown: 3.6, memPressure: 1.3},
		{Name: "wamr-llvm-aot", Kind: "aot", logSlowdown: 0.15, memPressure: 0.8},
		{Name: "wasmedge-interp", Kind: "interp", logSlowdown: 4.1, memPressure: 1.4},
		{Name: "wasmtime-cranelift-aot", Kind: "aot", logSlowdown: 0.3, memPressure: 0.85},
		{Name: "wasmtime-cranelift-jit", Kind: "jit", logSlowdown: 0.4, memPressure: 0.95},
		{Name: "wasmer-singlepass-jit", Kind: "jit", logSlowdown: 1.0, memPressure: 1.0},
		{Name: "wasmer-cranelift-jit", Kind: "jit", logSlowdown: 0.45, memPressure: 0.95},
		{Name: "wasmer-cranelift-aot", Kind: "aot", logSlowdown: 0.35, memPressure: 0.85},
		{Name: "wasmer-llvm-aot", Kind: "aot", logSlowdown: 0.1, memPressure: 0.8},
	}
}

// Supports implements the support rules of App. C.1.
func Supports(d Device, r RuntimeConfig) bool {
	switch {
	case d.Arch == "cortex-m7":
		// Only AOT WAMR runs on the Cortex-M7.
		return r.Name == "wamr-llvm-aot"
	case d.Class == "riscv":
		// Only WAMR and wasm3 run on the RISC-V device.
		return r.Name == "wasm3-interp" || r.Name == "wamr-interp" || r.Name == "wamr-llvm-aot"
	case d.Arch == "cortex-a72" && r.Name == "wamr-llvm-aot":
		// WAMR AOT excluded on Cortex-A72 (code generation bug).
		return false
	}
	return true
}

// Suite describes one benchmark suite (paper §4): the number of workloads it
// contributes and the generative profile of its members.
type Suite struct {
	Name  string
	Count int
	// difficulty range: log seconds on the reference platform.
	logDiffLo, logDiffHi float64
	// opcodeCenter indexes into opcode groups (see opcodeGroups) giving the
	// suite's characteristic instruction mix.
	mix []float64
	// memIntensity range: drives cache-contention aggression/susceptibility.
	memLo, memHi float64
	// latentCenter: suite center in the hidden workload-behaviour space that
	// interacts with platforms (FPU use, locality, branchiness, syscalls).
	latentCenter []float64
}

// opcodeNames are the instrumented instruction counters collected as
// workload features (paper App. C.2: opcode log-frequencies from the WAMR
// fast interpreter). Grouped loosely by functional unit.
var opcodeNames = []string{
	// integer ALU
	"i32.add", "i32.sub", "i32.mul", "i32.div_s", "i32.and", "i32.or", "i32.xor", "i32.shl", "i32.shr_u",
	"i64.add", "i64.mul", "i64.shl",
	// float
	"f32.add", "f32.mul", "f32.div", "f64.add", "f64.sub", "f64.mul", "f64.div", "f64.sqrt",
	// memory
	"i32.load", "i32.store", "i64.load", "i64.store", "f32.load", "f32.store", "f64.load", "f64.store",
	"i32.load8_u", "i32.store8", "memory.grow", "memory.copy",
	// control
	"br", "br_if", "br_table", "call", "call_indirect", "return", "if", "loop", "block",
	// comparison / conversion
	"i32.eq", "i32.lt_s", "i32.gt_s", "f64.lt", "f64.gt", "i32.wrap_i64", "f64.convert_i32_s",
	// misc / host
	"local.get", "local.set", "global.get", "select", "drop", "wasi.fd_read", "wasi.fd_write",
}

// opcode group boundaries (half-open) into opcodeNames, used by suite mixes:
// ialu [0,12), float [12,20), mem [20,32), ctrl [32,41), cmp [41,48),
// misc/host [48,55).
var opcodeGroups = [][2]int{{0, 12}, {12, 20}, {20, 32}, {32, 41}, {41, 48}, {48, 55}}

// NumOpcodes returns the workload feature dimensionality.
func NumOpcodes() int { return len(opcodeNames) }

// OpcodeNames returns the instrumented opcode counter names.
func OpcodeNames() []string { return append([]string(nil), opcodeNames...) }

// latentDim is the dimensionality of the hidden workload-behaviour space
// whose interaction with platforms the factorization must learn.
const latentDim = 4

// Suites returns the benchmark-suite catalog; counts sum to 249 (§4).
func Suites() []Suite {
	return []Suite{
		{
			Name: "polybench", Count: 30,
			logDiffLo: -3.5, logDiffHi: 1.0,
			mix:   []float64{0.18, 0.38, 0.25, 0.08, 0.06, 0.05}, // float-heavy kernels
			memLo: 0.4, memHi: 0.9,
			latentCenter: []float64{1.0, 0.6, -0.3, -0.5},
		},
		{
			Name: "mibench", Count: 35,
			logDiffLo: -4.5, logDiffHi: 0.5,
			mix:   []float64{0.32, 0.08, 0.22, 0.18, 0.12, 0.08}, // diverse embedded mix
			memLo: 0.2, memHi: 0.8,
			latentCenter: []float64{-0.2, 0.1, 0.4, 0.0},
		},
		{
			Name: "cortex", Count: 44,
			logDiffLo: -2.5, logDiffHi: 2.0,
			mix:   []float64{0.22, 0.28, 0.28, 0.08, 0.08, 0.06}, // ML/vision
			memLo: 0.5, memHi: 1.0,
			latentCenter: []float64{0.7, 1.0, -0.1, -0.2},
		},
		{
			Name: "sdvbs", Count: 28,
			logDiffLo: -2.8, logDiffHi: 1.6,
			mix:   []float64{0.24, 0.26, 0.30, 0.07, 0.08, 0.05}, // vision
			memLo: 0.5, memHi: 1.0,
			latentCenter: []float64{0.6, 0.9, 0.0, -0.1},
		},
		{
			Name: "libsodium", Count: 100,
			logDiffLo: -5.0, logDiffHi: -0.5,
			mix:   []float64{0.52, 0.03, 0.18, 0.10, 0.12, 0.05}, // integer crypto
			memLo: 0.1, memHi: 0.45,
			latentCenter: []float64{-0.8, -0.4, 0.8, -0.4},
		},
		{
			Name: "python", Count: 12,
			logDiffLo: -1.0, logDiffHi: 2.5,
			mix:   []float64{0.25, 0.06, 0.25, 0.22, 0.10, 0.12}, // interpreter-on-interpreter
			memLo: 0.6, memHi: 1.0,
			latentCenter: []float64{-0.3, 0.5, 0.6, 1.0},
		},
	}
}
