package wasmcluster

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/wasmvm"
)

// The VM's counted instruction set must align 1:1 with the dataset's
// feature columns — profiled mixes index directly into features.
func TestOpcodeColumnsAlignWithVM(t *testing.T) {
	vm := wasmvm.CountedNames()
	ds := OpcodeNames()
	if len(vm) != len(ds) {
		t.Fatalf("VM counts %d opcodes, features have %d columns", len(vm), len(ds))
	}
	for i := range vm {
		if vm[i] != ds[i] {
			t.Fatalf("column %d: VM %q vs features %q", i, vm[i], ds[i])
		}
	}
}

func TestProfiledMixValid(t *testing.T) {
	for _, s := range Suites() {
		mix := profiledMix(s.Name, newTestRng(1), 3)
		if mix == nil {
			t.Fatalf("suite %s: no profiled mix", s.Name)
		}
		var sum float64
		for _, v := range mix {
			if v < 0 {
				t.Fatalf("suite %s: negative frequency", s.Name)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("suite %s: mix sums to %v", s.Name, sum)
		}
	}
	if profiledMix("unknown-suite", newTestRng(1), 1) != nil {
		t.Fatal("unknown suite should return nil")
	}
}

// UseVM datasets must validate and keep the suite-feature correlation that
// makes side information useful (paper Fig. 4b).
func TestGenerateWithVMFeatures(t *testing.T) {
	ds := New(Config{Seed: 13, NumWorkloads: 24, MaxDevices: 4, SetsPerDegree: 8, UseVM: true}).Generate()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Workloads of the same suite should have more similar feature vectors
	// than workloads of different suites (profiled mixes are
	// suite-characteristic).
	f := ds.WorkloadFeatures
	var within, across []float64
	for i := 0; i < f.Rows; i++ {
		for j := i + 1; j < f.Rows; j++ {
			var d float64
			for k := 0; k < f.Cols; k++ {
				diff := f.At(i, k) - f.At(j, k)
				d += diff * diff
			}
			if ds.WorkloadSuites[i] == ds.WorkloadSuites[j] {
				within = append(within, d)
			} else {
				across = append(across, d)
			}
		}
	}
	if stats.Mean(within) >= stats.Mean(across) {
		t.Fatalf("within-suite distance %.2f not below across-suite %.2f",
			stats.Mean(within), stats.Mean(across))
	}
}

// VM-profiled generation must remain deterministic.
func TestGenerateWithVMDeterministic(t *testing.T) {
	a := New(Config{Seed: 5, NumWorkloads: 12, MaxDevices: 3, SetsPerDegree: 4, UseVM: true}).Generate()
	b := New(Config{Seed: 5, NumWorkloads: 12, MaxDevices: 3, SetsPerDegree: 4, UseVM: true}).Generate()
	if len(a.Obs) != len(b.Obs) {
		t.Fatal("nondeterministic observation count")
	}
	for k := range a.WorkloadFeatures.Data {
		if a.WorkloadFeatures.Data[k] != b.WorkloadFeatures.Data[k] {
			t.Fatal("nondeterministic VM features")
		}
	}
}

// newTestRng is a tiny helper for profile tests.
func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
