package wasmcluster

import (
	"math/rand"

	"repro/internal/wasmvm"
)

// profiledMix generates a benchmark program in the suite's style and
// measures its opcode-execution frequencies on the instrumented
// interpreter (internal/wasmvm) — the reproduction of the paper's
// feature-collection pipeline (App. C.2: an instrumented WAMR fast
// interpreter counting every executed opcode). Returns nil if the suite
// has no generator or the program fails to execute, in which case the
// caller falls back to the synthetic mixture.
func profiledMix(suite string, rng *rand.Rand, size int) []float64 {
	prog, err := wasmvm.Generate(suite, rng, size)
	if err != nil {
		return nil
	}
	// 200k instructions capture the loop-dominated steady-state mix; the
	// paper likewise profiles once on a fast machine, not per-platform.
	mix, err := wasmvm.Profile(prog, 200_000)
	if err != nil {
		return nil
	}
	if len(mix) != NumOpcodes() {
		return nil
	}
	return mix
}
