package wasmcluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// numTrueTypes is the number of ground-truth interference types: memory/
// cache contention (0) and CPU/scheduler contention (1). The learned model
// does not see this; paper App. D.2 finds s=2 learned types sufficient,
// consistent with this generator.
const numTrueTypes = 2

// Config controls the scale of the generated dataset. The zero value is
// adjusted to Defaults; use Full() for paper-scale generation.
type Config struct {
	Seed int64
	// NumWorkloads caps the number of workloads drawn from the suite
	// catalog (proportionally); 0 = all 249.
	NumWorkloads int
	// MaxDevices caps the device catalog; 0 = all 24.
	MaxDevices int
	// SetsPerDegree is the number of random co-location sets per platform
	// per degree (paper: 250 sets each of 2, 3, 4 workloads).
	SetsPerDegree int
	// TimeoutSeconds drops isolation measurements longer than this,
	// mirroring the paper's exclusion of timed-out benchmarks.
	TimeoutSeconds float64
	// CrashRate is the probability an individual (workload, platform)
	// measurement fails for implementation reasons (paper App. C.3).
	CrashRate float64
	// UseVM derives each workload's opcode mix by generating a benchmark
	// program in its suite's style and executing it on the instrumented
	// interpreter in internal/wasmvm — the reproduction of the paper's
	// instrumented-WAMR feature collection (App. C.2) — instead of the
	// synthetic Dirichlet mixture. Slower but yields features grounded in
	// real executed instruction streams.
	UseVM bool
}

// Defaults fills unset fields with small-scale values suitable for tests.
func (c Config) Defaults() Config {
	if c.NumWorkloads == 0 {
		c.NumWorkloads = 48
	}
	if c.MaxDevices == 0 {
		c.MaxDevices = 8
	}
	if c.SetsPerDegree == 0 {
		c.SetsPerDegree = 25
	}
	if c.TimeoutSeconds == 0 {
		c.TimeoutSeconds = 120
	}
	if c.CrashRate == 0 {
		c.CrashRate = 0.03
	}
	return c
}

// Full returns the paper-scale configuration (249 workloads, 24 devices,
// 250 sets per degree).
func Full(seed int64) Config {
	return Config{Seed: seed, NumWorkloads: 249, MaxDevices: 24, SetsPerDegree: 250,
		TimeoutSeconds: 120, CrashRate: 0.03}
}

// Workload is one benchmark with its hidden generative parameters.
type Workload struct {
	Name  string
	Suite string

	logDiff      float64   // log seconds on the reference platform
	mix          []float64 // opcode distribution
	memIntensity float64
	latent       []float64             // hidden behaviour vector (latentDim)
	aggression   [numTrueTypes]float64 // interference caused per type
	suscept      [numTrueTypes]float64 // interference suffered per type
	opcodeCounts []float64             // instrumented counter values
}

// Platform is a (device, runtime) pair with its hidden parameters.
type Platform struct {
	Name       string
	DeviceIdx  int
	RuntimeIdx int

	latent    []float64 // hidden response vector (latentDim)
	susScale  [numTrueTypes]float64
	threshold [numTrueTypes]float64
	osLatency float64 // additive scheduling/OS overhead in seconds
}

// Cluster holds the generated ground truth and produces observations.
type Cluster struct {
	Config    Config
	Devices   []Device
	Runtimes  []RuntimeConfig
	Workloads []Workload
	Platforms []Platform

	rng *rand.Rand
}

// cores approximates the device core count by class; the catalog's devices
// are all quad-core except the single-core microcontroller.
func cores(d Device) int {
	if d.Class == "arm-m" {
		return 1
	}
	return 4
}

// New generates a cluster with the given configuration.
func New(cfg Config) *Cluster {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Cluster{Config: cfg, rng: rng}

	devs := Devices()
	if cfg.MaxDevices < len(devs) {
		devs = devs[:cfg.MaxDevices]
	}
	c.Devices = devs
	c.Runtimes = Runtimes()

	c.buildWorkloads()
	c.buildPlatforms()
	return c
}

// buildWorkloads samples workloads from the suite catalog, allocating the
// configured count proportionally across suites (at least one per suite).
func (c *Cluster) buildWorkloads() {
	suites := Suites()
	total := 0
	for _, s := range suites {
		total += s.Count
	}
	target := c.Config.NumWorkloads
	if target > total {
		target = total
	}
	for si, s := range suites {
		n := s.Count * target / total
		if n < 1 {
			n = 1
		}
		if si == len(suites)-1 {
			// absorb rounding so the total is exact
			n = target - len(c.Workloads)
			if n < 1 {
				n = 1
			}
		}
		for i := 0; i < n; i++ {
			c.Workloads = append(c.Workloads, c.makeWorkload(s, i))
		}
	}
}

func (c *Cluster) makeWorkload(s Suite, i int) Workload {
	rng := c.rng
	w := Workload{
		Name:         fmt.Sprintf("%s/%02d", s.Name, i),
		Suite:        s.Name,
		logDiff:      s.logDiffLo + rng.Float64()*(s.logDiffHi-s.logDiffLo),
		memIntensity: s.memLo + rng.Float64()*(s.memHi-s.memLo),
	}
	if c.Config.UseVM {
		w.mix = profiledMix(s.Name, rng, i)
	}
	if w.mix == nil {
		// Synthetic mix: suite group mix perturbed per workload, spread
		// across the opcodes of each group with a random within-group
		// profile.
		w.mix = make([]float64, NumOpcodes())
		var norm float64
		for g, bounds := range opcodeGroups {
			share := s.mix[g] * math.Exp(0.35*rng.NormFloat64())
			lo, hi := bounds[0], bounds[1]
			weights := make([]float64, hi-lo)
			var wsum float64
			for j := range weights {
				weights[j] = rng.ExpFloat64()
				wsum += weights[j]
			}
			for j := range weights {
				w.mix[lo+j] = share * weights[j] / wsum
				norm += w.mix[lo+j]
			}
		}
		for k := range w.mix {
			w.mix[k] /= norm
		}
	}
	// Hidden behaviour vector: suite center plus idiosyncratic noise.
	w.latent = make([]float64, latentDim)
	for d := 0; d < latentDim; d++ {
		w.latent[d] = s.latentCenter[d] + 0.45*rng.NormFloat64()
	}
	// Interference ground truth. Memory-type aggression/susceptibility
	// follow memory intensity; CPU-type reflects that every benchmark runs
	// hot in a loop (paper App. C.3).
	w.aggression[0] = w.memIntensity * (0.5 + 0.5*rng.Float64())
	w.aggression[1] = 0.3 + 0.4*rng.Float64()
	w.suscept[0] = w.memIntensity * (0.4 + 0.6*rng.Float64())
	w.suscept[1] = 0.2 + 0.5*rng.Float64()
	// Instrumented opcode counters: total executed ops follow difficulty
	// (a reference platform retiring ~e^19 ops/sec) with profiling noise.
	totalOps := math.Exp(w.logDiff + 19 + 0.2*rng.NormFloat64())
	w.opcodeCounts = make([]float64, NumOpcodes())
	for k, m := range w.mix {
		w.opcodeCounts[k] = totalOps * m
	}
	return w
}

// buildPlatforms enumerates supported (device, runtime) pairs and derives
// their hidden parameters.
func (c *Cluster) buildPlatforms() {
	rng := c.rng
	for di, d := range c.Devices {
		for ri, r := range c.Runtimes {
			if !Supports(d, r) {
				continue
			}
			p := Platform{
				Name:       d.Model + "+" + r.Name,
				DeviceIdx:  di,
				RuntimeIdx: ri,
			}
			// Hidden response vector, aligned with the workload latent
			// dimensions: [FPU weakness, cache smallness, int throughput,
			// syscall cost].
			fpuWeak := 0.15
			if d.Class == "arm-m" {
				fpuWeak = 1.0
			} else if d.Class == "arm-a" || d.Class == "riscv" {
				fpuWeak = 0.45
			}
			if r.Kind == "interp" {
				fpuWeak *= 0.5 // dispatch dominates; relative FPU cost shrinks
			}
			cacheSmall := 1.2 - 0.12*math.Log1p(d.L2KB+d.L3KB)
			intThroughput := -0.2 * d.logSpeed
			syscall := 0.3
			if d.Class == "arm-m" {
				syscall = -0.5 // no OS: syscall-ish work is cheap (paper §4 fn.5)
			}
			p.latent = []float64{
				-(fpuWeak + 0.1*rng.NormFloat64()) * 0.5,
				-(cacheSmall + 0.1*rng.NormFloat64()) * 0.3,
				-(intThroughput + 0.1*rng.NormFloat64()) * 0.3,
				-(syscall + 0.1*rng.NormFloat64()) * 0.3,
			}
			// Interference response: fragile devices and memory-hungry
			// runtimes suffer more; strong devices have higher thresholds.
			p.susScale[0] = 1.6 * d.fragility * r.memPressure * math.Exp(0.15*rng.NormFloat64())
			p.susScale[1] = 0.6 * d.fragility * math.Exp(0.15*rng.NormFloat64())
			if cores(d) == 1 {
				p.susScale[1] = 1.1
			}
			p.threshold[0] = 0.35 + 1.3*(1-d.fragility) + 0.1*rng.NormFloat64()
			p.threshold[1] = 0.7*float64(cores(d)-1) + 0.1 + 0.1*rng.NormFloat64()
			// OS/scheduler overhead: additive latency floor on Linux
			// platforms, nearly absent on the bare-metal MCU.
			if d.Class == "arm-m" {
				p.osLatency = 0.0002
			} else {
				p.osLatency = 0.004 * math.Exp(0.5*rng.NormFloat64())
			}
			c.Platforms = append(c.Platforms, p)
		}
	}
}

// TrueIsolationSeconds returns the noise-free runtime of workload w on
// platform p with no interference.
func (c *Cluster) TrueIsolationSeconds(w, p int) float64 {
	wl, pl := &c.Workloads[w], &c.Platforms[p]
	d := c.Devices[pl.DeviceIdx]
	r := c.Runtimes[pl.RuntimeIdx]
	logC := wl.logDiff - d.logSpeed + r.logSlowdown
	for i := 0; i < latentDim; i++ {
		// platform latent entries are negative costs; subtracting yields a
		// penalty for workloads exercising that dimension.
		logC -= wl.latent[i] * pl.latent[i]
	}
	return math.Exp(logC) + pl.osLatency
}

// TrueInterferenceLogSlowdown returns the noise-free log slowdown of
// workload w on platform p with interferer set ks.
func (c *Cluster) TrueInterferenceLogSlowdown(w, p int, ks []int) float64 {
	if len(ks) == 0 {
		return 0
	}
	wl, pl := &c.Workloads[w], &c.Platforms[p]
	var total float64
	for t := 0; t < numTrueTypes; t++ {
		var mag float64
		for _, k := range ks {
			mag += c.Workloads[k].aggression[t]
		}
		// Threshold response: strong effect past the platform's capacity,
		// mild sub-threshold effect (random alignment, paper App. C.3).
		excess := mag - pl.threshold[t]
		alpha := 0.03 * mag
		if excess > 0 {
			alpha += excess
		}
		total += wl.suscept[t] * pl.susScale[t] * alpha
	}
	// Global gain calibrated so random 4-way co-locations reach the ~20x
	// slowdown tail of Fig. 1 while typical pairs stay near 1x.
	return 2.2 * total
}

// MeasureSeconds returns one noisy runtime measurement; noise grows with
// the interference degree (paper §3.5 notes interference data is noisier).
func (c *Cluster) MeasureSeconds(rng *rand.Rand, w, p int, ks []int) float64 {
	base := c.TrueIsolationSeconds(w, p)
	slow := c.TrueInterferenceLogSlowdown(w, p, ks)
	sigma := 0.04 + 0.03*float64(len(ks))
	noise := sigma * rng.NormFloat64()
	if rng.Float64() < 0.02 {
		noise += 0.3 * rng.NormFloat64() // occasional heavy-tail disturbance
	}
	return base * math.Exp(slow+noise)
}

// Generate collects the full observation dataset: every supported
// (workload, platform) pair in isolation (minus crashes and timeouts), plus
// SetsPerDegree random co-location sets of 2, 3, and 4 workloads per
// platform (paper App. C.3).
func (c *Cluster) Generate() *dataset.Dataset {
	rng := rand.New(rand.NewSource(c.Config.Seed + 1))
	ds := &dataset.Dataset{
		WorkloadFeatures: c.WorkloadFeatureMatrix(),
		PlatformFeatures: c.PlatformFeatureMatrix(),
	}
	for _, w := range c.Workloads {
		ds.WorkloadNames = append(ds.WorkloadNames, w.Name)
		ds.WorkloadSuites = append(ds.WorkloadSuites, w.Suite)
	}
	for _, p := range c.Platforms {
		ds.PlatformNames = append(ds.PlatformNames, p.Name)
		ds.PlatformRuntimes = append(ds.PlatformRuntimes, c.Runtimes[p.RuntimeIdx].Name)
		ds.PlatformArchs = append(ds.PlatformArchs, c.Devices[p.DeviceIdx].Class)
	}

	// Isolation observations; track which workloads run on each platform so
	// interference sets only use supported combinations.
	supported := make([][]int, len(c.Platforms))
	for p := range c.Platforms {
		for w := range c.Workloads {
			t := c.TrueIsolationSeconds(w, p)
			if t > c.Config.TimeoutSeconds || rng.Float64() < c.Config.CrashRate {
				continue
			}
			supported[p] = append(supported[p], w)
			ds.Obs = append(ds.Obs, dataset.Observation{
				Workload: w, Platform: p,
				Seconds: c.MeasureSeconds(rng, w, p, nil),
			})
		}
	}

	// Interference observations: for each platform and degree, draw random
	// sets; every member contributes one observation with the others as its
	// interferer set. Timed-out members are dropped individually; whole-set
	// crashes are dropped entirely (paper App. C.3).
	for p := range c.Platforms {
		sup := supported[p]
		for degree := 2; degree <= 4; degree++ {
			if len(sup) < degree {
				continue
			}
			for set := 0; set < c.Config.SetsPerDegree; set++ {
				members := pickDistinct(rng, sup, degree)
				if rng.Float64() < 0.05 {
					continue // set crashed
				}
				for mi, w := range members {
					ks := make([]int, 0, degree-1)
					for mj, k := range members {
						if mj != mi {
							ks = append(ks, k)
						}
					}
					sec := c.MeasureSeconds(rng, w, p, ks)
					if sec > c.Config.TimeoutSeconds {
						continue // this member timed out; others remain
					}
					ds.Obs = append(ds.Obs, dataset.Observation{
						Workload: w, Platform: p, Interferers: ks, Seconds: sec,
					})
				}
			}
		}
	}
	return ds
}

// pickDistinct samples k distinct values from pool.
func pickDistinct(rng *rand.Rand, pool []int, k int) []int {
	idx := rng.Perm(len(pool))[:k]
	out := make([]int, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// WorkloadFeatureMatrix returns the Nw x NumOpcodes matrix of opcode
// log1p-frequencies (paper App. C.2).
func (c *Cluster) WorkloadFeatureMatrix() *tensor.Matrix {
	m := tensor.New(len(c.Workloads), NumOpcodes())
	for i, w := range c.Workloads {
		row := m.Row(i)
		for k, v := range w.opcodeCounts {
			row[k] = math.Log1p(v)
		}
	}
	return m
}

// PlatformFeatureNames returns the column labels of the platform feature
// matrix.
func (c *Cluster) PlatformFeatureNames() []string {
	var names []string
	for _, a := range archList(c.Devices) {
		names = append(names, "arch="+a)
	}
	for _, r := range c.Runtimes {
		names = append(names, "rt="+r.Name)
	}
	names = append(names, "kind=interp", "kind=aot", "kind=jit", "log_ghz",
		"log_l1d", "has_l1d", "log_l1i", "has_l1i", "log_l2", "has_l2",
		"log_l3", "has_l3", "log_mem")
	return names
}

// archList returns the distinct microarchitectures over the full catalog in
// stable order, so feature layout does not depend on MaxDevices.
func archList(_ []Device) []string {
	var out []string
	seen := map[string]bool{}
	for _, d := range Devices() {
		if !seen[d.Arch] {
			seen[d.Arch] = true
			out = append(out, d.Arch)
		}
	}
	return out
}

// PlatformFeatureMatrix returns the Np x dp platform feature matrix: one-hot
// microarchitecture and runtime configuration, runtime kind, and log-scaled
// clock/cache/memory information with presence indicators (App. C.2).
func (c *Cluster) PlatformFeatureMatrix() *tensor.Matrix {
	archs := archList(c.Devices)
	archIdx := map[string]int{}
	for i, a := range archs {
		archIdx[a] = i
	}
	dp := len(archs) + len(c.Runtimes) + 3 + 1 + 8 + 1
	m := tensor.New(len(c.Platforms), dp)
	for i, p := range c.Platforms {
		d := c.Devices[p.DeviceIdx]
		r := c.Runtimes[p.RuntimeIdx]
		row := m.Row(i)
		row[archIdx[d.Arch]] = 1
		row[len(archs)+p.RuntimeIdx] = 1
		kindOff := len(archs) + len(c.Runtimes)
		switch r.Kind {
		case "interp":
			row[kindOff] = 1
		case "aot":
			row[kindOff+1] = 1
		case "jit":
			row[kindOff+2] = 1
		}
		j := kindOff + 3
		row[j] = math.Log(d.GHz)
		j++
		for _, kb := range []float64{d.L1dKB, d.L1iKB, d.L2KB, d.L3KB} {
			if kb > 0 {
				row[j] = math.Log(kb)
				row[j+1] = 1
			}
			j += 2
		}
		row[j] = math.Log(d.MemMB)
	}
	return m
}
