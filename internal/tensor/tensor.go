// Package tensor implements dense float64 matrices and the linear-algebra
// kernels used throughout the repository. It is deliberately small: 2-D
// row-major matrices with the operations needed by the autodiff engine,
// the Pitot model, and the evaluation harness.
//
// All operations are deterministic. Operations that can profit from
// parallelism (matrix multiplication) shard across goroutines when the
// problem is large enough to amortize the synchronization cost.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix. Matrices are mutable; operations
// ending in "Into" write into an existing destination, while the plain forms
// allocate their result.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols, row-major) in a Matrix. The slice
// is used directly, not copied.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Vector returns a 1 x n row vector wrapping data.
func Vector(data []float64) *Matrix { return FromSlice(1, len(data), data) }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. Panics on shape mismatch.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.assertSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	limit := m.Rows
	if limit > 6 {
		limit = 6
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			s += "; "
		}
		cl := m.Cols
		if cl > 8 {
			cl = 8
		}
		for j := 0; j < cl; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
		if cl < m.Cols {
			s += " ..."
		}
	}
	if limit < m.Rows {
		s += "; ..."
	}
	return s + "]"
}

func (m *Matrix) assertSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// minParallelWork is the flop count below which MatMul stays single-threaded.
const minParallelWork = 1 << 18

// MatMul returns a*b.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b, false)
	return out
}

// MatMulInto computes dst = a*b, or dst += a*b when accumulate is true.
// dst must be a.Rows x b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix, accumulate bool) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if !accumulate {
		dst.Zero()
	}
	work := a.Rows * a.Cols * b.Cols
	workers := 1
	if work >= minParallelWork {
		workers = runtime.GOMAXPROCS(0)
		if workers > a.Rows {
			workers = a.Rows
		}
	}
	if workers <= 1 {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of dst += a*b using the cache-friendly
// i-k-j ordering.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ*b without materializing the transpose.
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATB dims %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	MatMulATBInto(out, a, b, true)
	return out
}

// MatMulABT returns a*bᵀ without materializing the transpose.
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT dims %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	MatMulABTInto(out, a, b, false)
	return out
}

// MatMulATBInto computes dst = aᵀ*b (or dst += aᵀ*b when accumulate is
// true) without materializing the transpose.
func MatMulATBInto(dst, a, b *Matrix, accumulate bool) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATB dims %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATB dst %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	if !accumulate {
		dst.Zero()
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulABTInto computes dst = a*bᵀ (or dst += a*bᵀ when accumulate is
// true) without materializing the transpose.
func MatMulABTInto(dst, a, b *Matrix, accumulate bool) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT dims %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT dst %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			if accumulate {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	a.assertSameShape(b, "Add")
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// AddInto computes dst = a+b elementwise.
func AddInto(dst, a, b *Matrix) {
	a.assertSameShape(b, "AddInto")
	dst.assertSameShape(a, "AddInto")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// AddInPlace computes a += b elementwise.
func AddInPlace(a, b *Matrix) {
	a.assertSameShape(b, "AddInPlace")
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	a.assertSameShape(b, "Sub")
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// SubInto computes dst = a-b elementwise.
func SubInto(dst, a, b *Matrix) {
	a.assertSameShape(b, "SubInto")
	dst.assertSameShape(a, "SubInto")
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
}

// Mul returns the elementwise (Hadamard) product a∘b.
func Mul(a, b *Matrix) *Matrix {
	a.assertSameShape(b, "Mul")
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// MulInto computes dst = a∘b elementwise.
func MulInto(dst, a, b *Matrix) {
	a.assertSameShape(b, "MulInto")
	dst.assertSameShape(a, "MulInto")
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
}

// Scale returns c*a.
func Scale(a *Matrix, c float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = c * v
	}
	return out
}

// ScaleInto computes dst = c*a.
func ScaleInto(dst, a *Matrix, c float64) {
	dst.assertSameShape(a, "ScaleInto")
	for i, v := range a.Data {
		dst.Data[i] = c * v
	}
}

// ScaleInPlace computes a *= c.
func ScaleInPlace(a *Matrix, c float64) {
	for i := range a.Data {
		a.Data[i] *= c
	}
}

// AXPY computes dst += c*src elementwise.
func AXPY(dst *Matrix, c float64, src *Matrix) {
	dst.assertSameShape(src, "AXPY")
	for i, v := range src.Data {
		dst.Data[i] += c * v
	}
}

// AddRowVector returns m with the 1 x Cols row vector v added to every row.
func AddRowVector(m, v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector %dx%d + %dx%d", m.Rows, m.Cols, v.Rows, v.Cols))
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for j, x := range row {
			orow[j] = x + v.Data[j]
		}
	}
	return out
}

// AddRowVectorInto computes dst = m + v broadcast over rows.
func AddRowVectorInto(dst, m, v *Matrix) {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVectorInto %dx%d + %dx%d", m.Rows, m.Cols, v.Rows, v.Cols))
	}
	dst.assertSameShape(m, "AddRowVectorInto")
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		drow := dst.Row(i)
		for j, x := range row {
			drow[j] = x + v.Data[j]
		}
	}
}

// Apply returns f applied elementwise to m.
func Apply(m *Matrix, f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInto computes dst = f applied elementwise to m. dst may alias m.
func ApplyInto(dst, m *Matrix, f func(float64) float64) {
	dst.assertSameShape(m, "ApplyInto")
	for i, v := range m.Data {
		dst.Data[i] = f(v)
	}
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// RowSums returns a Rows x 1 matrix of per-row sums.
func (m *Matrix) RowSums() *Matrix {
	out := New(m.Rows, 1)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// RowSumsInto computes dst = per-row sums of m (dst is Rows x 1).
func (m *Matrix) RowSumsInto(dst *Matrix) {
	if dst.Rows != m.Rows || dst.Cols != 1 {
		panic(fmt.Sprintf("tensor: RowSumsInto dst %dx%d for %d rows", dst.Rows, dst.Cols, m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		dst.Data[i] = s
	}
}

// ColSums returns a 1 x Cols matrix of per-column sums.
func (m *Matrix) ColSums() *Matrix {
	out := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			out.Data[j] += v
		}
	}
	return out
}

// AddColSums accumulates m's per-column sums into the 1 x Cols matrix dst,
// fusing ColSums + AddInPlace for bias gradients.
func AddColSums(dst, m *Matrix) {
	if dst.Rows != 1 || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddColSums dst %dx%d for %d cols", dst.Rows, dst.Cols, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			dst.Data[j] += v
		}
	}
}

// RowDot returns the Rows x 1 matrix of per-row inner products Σ_j a_ij·b_ij,
// fusing RowSums(Mul(a, b)) without the Rows x Cols intermediate.
func RowDot(a, b *Matrix) *Matrix {
	out := New(a.Rows, 1)
	RowDotInto(out, a, b)
	return out
}

// RowDotInto computes dst = per-row inner products of a and b (dst Rows x 1).
func RowDotInto(dst, a, b *Matrix) {
	a.assertSameShape(b, "RowDotInto")
	if dst.Rows != a.Rows || dst.Cols != 1 {
		panic(fmt.Sprintf("tensor: RowDotInto dst %dx%d for %d rows", dst.Rows, dst.Cols, a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		var s float64
		for k, av := range arow {
			s += av * brow[k]
		}
		dst.Data[i] = s
	}
}

// MaxAbs returns the largest absolute value in m (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-shape matrices viewed as vectors.
func Dot(a, b *Matrix) float64 {
	a.assertSameShape(b, "Dot")
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// GatherRows returns the matrix whose i-th row is m.Row(idx[i]).
func GatherRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	GatherRowsInto(out, m, idx)
	return out
}

// GatherRowsInto computes dst[i] = m.Row(idx[i]).
func GatherRowsInto(dst, m *Matrix, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: GatherRowsInto dst %dx%d for %d idx of %d cols",
			dst.Rows, dst.Cols, len(idx), m.Cols))
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
}

// GatherCols returns the len(idx) x (hi-lo) matrix whose i-th row is
// m.Row(idx[i])[lo:hi], fusing GatherRows + SliceCols so multi-head lookups
// copy only the head's block instead of the full row.
func GatherCols(m *Matrix, idx []int, lo, hi int) *Matrix {
	out := New(len(idx), hi-lo)
	GatherColsInto(out, m, idx, lo, hi)
	return out
}

// GatherColsInto computes dst[i] = m.Row(idx[i])[lo:hi].
func GatherColsInto(dst, m *Matrix, idx []int, lo, hi int) {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: GatherCols [%d,%d) of %d cols", lo, hi, m.Cols))
	}
	if dst.Rows != len(idx) || dst.Cols != hi-lo {
		panic(fmt.Sprintf("tensor: GatherColsInto dst %dx%d for %d idx of %d cols",
			dst.Rows, dst.Cols, len(idx), hi-lo))
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r)[lo:hi])
	}
}

// ScatterAddCols adds each row of src into dst.Row(idx[i])[lo:lo+src.Cols).
// The backward pass of GatherCols.
func ScatterAddCols(dst, src *Matrix, idx []int, lo int) {
	if src.Rows != len(idx) || lo < 0 || lo+src.Cols > dst.Cols {
		panic(fmt.Sprintf("tensor: ScatterAddCols src %dx%d idx %d into %dx%d at %d",
			src.Rows, src.Cols, len(idx), dst.Rows, dst.Cols, lo))
	}
	for i, r := range idx {
		drow := dst.Row(r)[lo : lo+src.Cols]
		for j, v := range src.Row(i) {
			drow[j] += v
		}
	}
}

// ScatterAddRows adds each row of src into dst.Row(idx[i]). Used for the
// backward pass of GatherRows.
func ScatterAddRows(dst, src *Matrix, idx []int) {
	if src.Rows != len(idx) || src.Cols != dst.Cols {
		panic(fmt.Sprintf("tensor: ScatterAddRows src %dx%d idx %d dst %dx%d",
			src.Rows, src.Cols, len(idx), dst.Rows, dst.Cols))
	}
	for i, r := range idx {
		drow := dst.Row(r)
		for j, v := range src.Row(i) {
			drow[j] += v
		}
	}
}

// ConcatCols returns [a | b], the column-wise concatenation.
func ConcatCols(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols+b.Cols)
	ConcatColsInto(out, a, b)
	return out
}

// ConcatColsInto computes dst = [a | b].
func ConcatColsInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols rows %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic(fmt.Sprintf("tensor: ConcatColsInto dst %dx%d for %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols+b.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := dst.Row(i)
		copy(row[:a.Cols], a.Row(i))
		copy(row[a.Cols:], b.Row(i))
	}
}

// SliceCols returns columns [lo,hi) of m as a copy.
func SliceCols(m *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	SliceColsInto(out, m, lo, hi)
	return out
}

// SliceColsInto computes dst = columns [lo,hi) of m.
func SliceColsInto(dst, m *Matrix, lo, hi int) {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceColsInto [%d,%d) of %d cols", lo, hi, m.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != hi-lo {
		panic(fmt.Sprintf("tensor: SliceColsInto dst %dx%d for %dx%d",
			dst.Rows, dst.Cols, m.Rows, hi-lo))
	}
	for i := 0; i < m.Rows; i++ {
		copy(dst.Row(i), m.Row(i)[lo:hi])
	}
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or ±Inf.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
