package tensor

import (
	"math/bits"
	"sync"
)

// The matrix pool recycles backing slices for the short-lived matrices the
// autodiff engine allocates every training step (op outputs, gradients,
// scratch). Slices are kept in power-of-two size classes so a request can be
// served by any previously released slice of the same class.
//
// GetPooled always returns zeroed storage, so callers may rely on the same
// invariant New provides. PutPooled is optional: storage that is never
// returned is simply collected by the GC.

// maxPoolClass bounds pooled slices at 1<<maxPoolClass floats (512 MiB);
// anything larger is allocated and freed normally.
const maxPoolClass = 26

var pools [maxPoolClass + 1]sync.Pool

// sizeClass returns the pool class for n floats: the smallest k with
// 1<<k >= n.
func sizeClass(n int) int {
	return bits.Len(uint(n - 1))
}

// GetPooled returns a zeroed rows x cols matrix, reusing pooled storage when
// available. Release it with PutPooled once no longer referenced.
func GetPooled(rows, cols int) *Matrix {
	n := rows * cols
	if n <= 0 {
		return New(rows, cols)
	}
	class := sizeClass(n)
	if class > maxPoolClass {
		return New(rows, cols)
	}
	if v := pools[class].Get(); v != nil {
		buf := *(v.(*[]float64))
		data := buf[:n]
		clear(data)
		return &Matrix{Rows: rows, Cols: cols, Data: data}
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, n, 1<<class)}
}

// PutPooled returns m's backing storage to the pool. m (and any matrix
// sharing its storage) must not be used afterwards. Matrices whose capacity
// is not a pool size class (e.g. built by New or FromSlice) are dropped for
// the GC to collect.
func PutPooled(m *Matrix) {
	if m == nil {
		return
	}
	c := cap(m.Data)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c)) - 1
	if class > maxPoolClass {
		return
	}
	buf := m.Data[:c]
	pools[class].Put(&buf)
	m.Data = nil
}
