package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New not zero-initialized")
		}
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(1, 1, 42)
	if m.At(1, 1) != 42 {
		t.Fatal("Set failed")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %v", m)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Fatal("FromRows(nil) not empty")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	want := FromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !Equal(tr, want, 0) {
		t.Fatalf("Transpose = %v want %v", tr, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%16)+1, int(c8%16)+1
		m := randMatrix(rng, r, c)
		return Equal(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 5, 5)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if !Equal(MatMul(m, id), m, 1e-12) || !Equal(MatMul(id, m), m, 1e-12) {
		t.Fatal("identity multiplication failed")
	}
}

// TestMatMulParallelMatchesSerial checks that the goroutine-sharded path
// produces exactly the same result as the serial path.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 300, 120) // 300*120*90 > minParallelWork
	b := randMatrix(rng, 120, 90)
	par := MatMul(a, b)
	ser := New(a.Rows, b.Cols)
	matMulRange(ser, a, b, 0, a.Rows)
	if !Equal(par, ser, 0) {
		t.Fatal("parallel MatMul differs from serial")
	}
}

func TestMatMulAccumulate(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(2, 1, []float64{3, 4})
	dst := FromSlice(1, 1, []float64{100})
	MatMulInto(dst, a, b, true)
	if dst.At(0, 0) != 111 {
		t.Fatalf("accumulate got %v want 111", dst.At(0, 0))
	}
	MatMulInto(dst, a, b, false)
	if dst.At(0, 0) != 11 {
		t.Fatalf("overwrite got %v want 11", dst.At(0, 0))
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 7, 4)
	b := randMatrix(rng, 7, 5)
	got := MatMulATB(a, b)
	want := MatMul(a.Transpose(), b)
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulATB != Aᵀ*B")
	}
}

func TestMatMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 6, 4)
	b := randMatrix(rng, 3, 4)
	got := MatMulABT(a, b)
	want := MatMul(a, b.Transpose())
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulABT != A*Bᵀ")
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(r8, k8, c8 uint8) bool {
		r, k, c := int(r8%8)+1, int(k8%8)+1, int(c8%8)+1
		a := randMatrix(rng, r, k)
		b := randMatrix(rng, k, c)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return Equal(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if !Equal(Add(a, b), FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatal("Add wrong")
	}
	if !Equal(Sub(b, a), FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatal("Sub wrong")
	}
	if !Equal(Mul(a, b), FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Fatal("Mul wrong")
	}
	if !Equal(Scale(a, 2), FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatal("Scale wrong")
	}
}

func TestAddInPlaceAndAXPY(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{10, 20, 30})
	AddInPlace(a, b)
	if !Equal(a, FromSlice(1, 3, []float64{11, 22, 33}), 0) {
		t.Fatal("AddInPlace wrong")
	}
	AXPY(a, -1, b)
	if !Equal(a, FromSlice(1, 3, []float64{1, 2, 3}), 1e-15) {
		t.Fatal("AXPY wrong")
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := FromSlice(1, 3, []float64{10, 20, 30})
	got := AddRowVector(m, v)
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !Equal(got, want, 0) {
		t.Fatal("AddRowVector wrong")
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.Sum() != 21 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Mean() != 3.5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if !Equal(m.RowSums(), FromSlice(2, 1, []float64{6, 15}), 0) {
		t.Fatal("RowSums wrong")
	}
	if !Equal(m.ColSums(), FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Fatal("ColSums wrong")
	}
	if New(0, 0).Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
}

func TestNorms(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, -4})
	if m.FrobeniusNorm() != 5 {
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestDot(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(rng, 6, 3)
	idx := []int{5, 0, 3, 3}
	g := GatherRows(m, idx)
	if g.Rows != 4 || g.Cols != 3 {
		t.Fatalf("gather shape %dx%d", g.Rows, g.Cols)
	}
	for i, r := range idx {
		for j := 0; j < 3; j++ {
			if g.At(i, j) != m.At(r, j) {
				t.Fatal("gather content wrong")
			}
		}
	}
	// Scatter of ones counts index multiplicity.
	ones := New(4, 3)
	ones.Fill(1)
	dst := New(6, 3)
	ScatterAddRows(dst, ones, idx)
	if dst.At(3, 0) != 2 || dst.At(0, 0) != 1 || dst.At(1, 0) != 0 {
		t.Fatalf("scatter wrong: %v", dst.Data)
	}
}

func TestConcatSliceCols(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 1, []float64{9, 10})
	c := ConcatCols(a, b)
	want := FromSlice(2, 3, []float64{1, 2, 9, 3, 4, 10})
	if !Equal(c, want, 0) {
		t.Fatal("ConcatCols wrong")
	}
	if !Equal(SliceCols(c, 0, 2), a, 0) || !Equal(SliceCols(c, 2, 3), b, 0) {
		t.Fatal("SliceCols does not invert ConcatCols")
	}
}

func TestApply(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 4, 9})
	got := Apply(m, math.Sqrt)
	if !Equal(got, FromSlice(1, 3, []float64{1, 2, 3}), 1e-15) {
		t.Fatal("Apply wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestHasNaN(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	if m.HasNaN() {
		t.Fatal("false positive")
	}
	m.Set(0, 1, math.NaN())
	if !m.HasNaN() {
		t.Fatal("missed NaN")
	}
	m.Set(0, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("missed Inf")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(1, 2), New(2, 1), 1) {
		t.Fatal("Equal ignored shape")
	}
}

// Property: matrix multiplication distributes over addition.
func TestMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(r8, k8, c8 uint8) bool {
		r, k, c := int(r8%6)+1, int(k8%6)+1, int(c8%6)+1
		a := randMatrix(rng, r, k)
		b := randMatrix(rng, k, c)
		d := randMatrix(rng, k, c)
		lhs := MatMul(a, Add(b, d))
		rhs := Add(MatMul(a, b), MatMul(a, d))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randMatrix(rng, 128, 128)
	y := randMatrix(rng, 128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y, false)
	}
}

func BenchmarkMatMul512(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randMatrix(rng, 512, 512)
	y := randMatrix(rng, 512, 512)
	dst := New(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y, false)
	}
}

func TestRowDotMatchesRowSumsOfMul(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a, b := randMatrix(rng, 7, 5), randMatrix(rng, 7, 5)
	want := Mul(a, b).RowSums()
	got := RowDot(a, b)
	if !Equal(got, want, 1e-12) {
		t.Fatalf("RowDot %v want %v", got, want)
	}
}

func TestGatherColsMatchesGatherThenSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randMatrix(rng, 6, 8)
	idx := []int{5, 0, 3, 3}
	want := SliceCols(GatherRows(m, idx), 2, 7)
	got := GatherCols(m, idx, 2, 7)
	if !Equal(got, want, 0) {
		t.Fatalf("GatherCols %v want %v", got, want)
	}
}

func TestScatterAddColsInvertsGatherCols(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := randMatrix(rng, 3, 4)
	dst := New(5, 9)
	idx := []int{4, 1, 1}
	ScatterAddCols(dst, src, idx, 3)
	for i, r := range idx {
		for j := 0; j < src.Cols; j++ {
			var want float64
			for i2, r2 := range idx {
				if r2 == r {
					want += src.At(i2, j)
				}
			}
			if math.Abs(dst.At(r, 3+j)-want) > 1e-12 {
				t.Fatalf("ScatterAddCols row %d col %d: %v want %v", i, j, dst.At(r, 3+j), want)
			}
		}
	}
	// Columns outside [3,7) stay zero.
	for i := 0; i < dst.Rows; i++ {
		for _, j := range []int{0, 1, 2, 7, 8} {
			if dst.At(i, j) != 0 {
				t.Fatalf("ScatterAddCols wrote outside slice at (%d,%d)", i, j)
			}
		}
	}
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a, b := randMatrix(rng, 4, 6), randMatrix(rng, 4, 6)
	v := randMatrix(rng, 1, 6)
	check := func(name string, want *Matrix, into func(dst *Matrix)) {
		t.Helper()
		dst := New(want.Rows, want.Cols)
		into(dst)
		if !Equal(dst, want, 1e-12) {
			t.Fatalf("%s Into variant diverges", name)
		}
	}
	check("Add", Add(a, b), func(d *Matrix) { AddInto(d, a, b) })
	check("Sub", Sub(a, b), func(d *Matrix) { SubInto(d, a, b) })
	check("Mul", Mul(a, b), func(d *Matrix) { MulInto(d, a, b) })
	check("Scale", Scale(a, -2.5), func(d *Matrix) { ScaleInto(d, a, -2.5) })
	check("AddRowVector", AddRowVector(a, v), func(d *Matrix) { AddRowVectorInto(d, a, v) })
	check("Apply", Apply(a, math.Exp), func(d *Matrix) { ApplyInto(d, a, math.Exp) })
	check("RowSums", a.RowSums(), func(d *Matrix) { a.RowSumsInto(d) })
	check("GatherRows", GatherRows(a, []int{3, 0}), func(d *Matrix) { GatherRowsInto(d, a, []int{3, 0}) })
	check("SliceCols", SliceCols(a, 1, 5), func(d *Matrix) { SliceColsInto(d, a, 1, 5) })
	check("ConcatCols", ConcatCols(a, b), func(d *Matrix) { ConcatColsInto(d, a, b) })
}

func TestMatMulIntoTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a, b := randMatrix(rng, 5, 3), randMatrix(rng, 5, 4)
	want := MatMul(a.Transpose(), b)
	got := New(3, 4)
	MatMulATBInto(got, a, b, false)
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulATBInto wrong")
	}
	MatMulATBInto(got, a, b, true)
	if !Equal(got, Scale(want, 2), 1e-12) {
		t.Fatal("MatMulATBInto accumulate wrong")
	}

	c := randMatrix(rng, 6, 3)
	d := randMatrix(rng, 2, 3)
	wantABT := MatMul(c, d.Transpose())
	gotABT := New(6, 2)
	MatMulABTInto(gotABT, c, d, false)
	if !Equal(gotABT, wantABT, 1e-12) {
		t.Fatal("MatMulABTInto wrong")
	}
	MatMulABTInto(gotABT, c, d, true)
	if !Equal(gotABT, Scale(wantABT, 2), 1e-12) {
		t.Fatal("MatMulABTInto accumulate wrong")
	}
}

func TestPoolRoundTrip(t *testing.T) {
	m := GetPooled(3, 5)
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("GetPooled not zeroed")
		}
	}
	m.Fill(7)
	PutPooled(m)
	// The next same-class request must come back zeroed even if it reuses
	// the dirtied storage.
	n := GetPooled(5, 3)
	for _, v := range n.Data {
		if v != 0 {
			t.Fatal("pooled storage not re-zeroed")
		}
	}
	PutPooled(n)
	// Non-power-of-two capacities (plain New) are silently dropped.
	PutPooled(New(3, 5))
	// Empty and nil matrices are no-ops.
	PutPooled(New(0, 0))
	PutPooled(nil)
}

func TestPoolSizeClassReuse(t *testing.T) {
	m := GetPooled(1, 100) // class 7, cap 128
	if cap(m.Data) != 128 {
		t.Fatalf("cap %d want 128", cap(m.Data))
	}
	PutPooled(m)
	n := GetPooled(1, 128) // same class, different length
	if len(n.Data) != 128 {
		t.Fatalf("len %d want 128", len(n.Data))
	}
	PutPooled(n)
}
