package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/tensor"
)

// quadratic builds params for f(x) = Σ (x_i - c_i)², whose minimum is x=c.
func quadratic(c []float64) (*autodiff.Value, func() *autodiff.Value) {
	x := autodiff.NewParam(tensor.New(1, len(c)))
	target := tensor.Vector(append([]float64(nil), c...))
	loss := func() *autodiff.Value {
		return autodiff.MSE(x, target)
	}
	return x, loss
}

func runOpt(t *testing.T, name string, makeOpt func(ps []*autodiff.Value) Optimizer, steps int, tol float64) {
	t.Helper()
	c := []float64{3, -2, 0.5}
	x, loss := quadratic(c)
	o := makeOpt([]*autodiff.Value{x})
	for i := 0; i < steps; i++ {
		l := loss()
		l.Backward()
		o.Step()
		o.ZeroGrads()
	}
	for i, want := range c {
		if math.Abs(x.Data.Data[i]-want) > tol {
			t.Fatalf("%s: x[%d]=%v want %v", name, i, x.Data.Data[i], want)
		}
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	runOpt(t, "sgd", func(ps []*autodiff.Value) Optimizer {
		return NewSGD(ps, 0.5, 0)
	}, 200, 1e-6)
}

func TestSGDMomentumConverges(t *testing.T) {
	runOpt(t, "sgd+momentum", func(ps []*autodiff.Value) Optimizer {
		return NewSGD(ps, 0.1, 0.9)
	}, 400, 1e-6)
}

func TestAdamConverges(t *testing.T) {
	runOpt(t, "adam", func(ps []*autodiff.Value) Optimizer {
		return NewAdam(ps, 0.1, 0.9, 0.999, 0)
	}, 600, 1e-3)
}

func TestAdaMaxConverges(t *testing.T) {
	runOpt(t, "adamax", func(ps []*autodiff.Value) Optimizer {
		return NewAdaMax(ps, 0.1, 0.9, 0.999)
	}, 600, 1e-3)
}

func TestAdaMaxDefaults(t *testing.T) {
	p := autodiff.NewParam(tensor.New(1, 1))
	a := NewAdaMax([]*autodiff.Value{p}, 0, 0, 0)
	if a.LR != 0.001 || a.Beta1 != 0.9 || a.Beta2 != 0.999 {
		t.Fatalf("defaults = %v %v %v", a.LR, a.Beta1, a.Beta2)
	}
}

// AdaMax step size is bounded by lr/(1-β1^t), regardless of gradient scale —
// the defining property of the l∞ variant.
func TestAdaMaxBoundedStep(t *testing.T) {
	p := autodiff.NewParam(tensor.FromSlice(1, 1, []float64{0}))
	a := NewAdaMax([]*autodiff.Value{p}, 0.01, 0.9, 0.999)
	p.Grad.Data[0] = 1e9 // enormous gradient
	before := p.Data.Data[0]
	a.Step()
	step := math.Abs(p.Data.Data[0] - before)
	bound := 0.01/(1-0.9) + 1e-9
	if step > bound {
		t.Fatalf("step %v exceeds AdaMax bound %v", step, bound)
	}
}

func TestAdamVsSGDOnIllConditioned(t *testing.T) {
	// f(x,y) = 100x² + y²: adaptive methods normalize per-coordinate scale.
	build := func() (*autodiff.Value, func() *autodiff.Value) {
		x := autodiff.NewParam(tensor.FromSlice(1, 2, []float64{1, 1}))
		loss := func() *autodiff.Value {
			xs := autodiff.Mul(x, x)
			w := tensor.FromSlice(1, 2, []float64{100, 1})
			return autodiff.Sum(autodiff.Mul(autodiff.NewConst(w), xs))
		}
		return x, loss
	}
	x, loss := build()
	o := NewAdam([]*autodiff.Value{x}, 0.05, 0.9, 0.999, 0)
	for i := 0; i < 500; i++ {
		loss().Backward()
		o.Step()
		o.ZeroGrads()
	}
	if math.Abs(x.Data.Data[0]) > 1e-2 || math.Abs(x.Data.Data[1]) > 0.2 {
		t.Fatalf("adam did not converge: %v", x.Data.Data)
	}
}

func TestZeroGrads(t *testing.T) {
	p := autodiff.NewParam(tensor.FromSlice(1, 1, []float64{1}))
	o := NewSGD([]*autodiff.Value{p}, 0.1, 0)
	p.Grad.Data[0] = 5
	o.ZeroGrads()
	if p.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrads failed")
	}
}

func TestClipGradients(t *testing.T) {
	p := autodiff.NewParam(tensor.FromSlice(1, 2, []float64{0, 0}))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4 // norm 5
	norm := ClipGradients([]*autodiff.Value{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	var after float64
	for _, g := range p.Grad.Data {
		after += g * g
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", math.Sqrt(after))
	}
	// No-op when within bounds.
	norm2 := ClipGradients([]*autodiff.Value{p}, 10)
	if math.Abs(norm2-1) > 1e-12 || math.Abs(p.Grad.Data[0]-3.0/5) > 1e-12 {
		t.Fatal("clip modified in-bounds gradients")
	}
}

func TestStochasticNoiseConvergence(t *testing.T) {
	// AdaMax on a noisy quadratic still converges near the optimum —
	// mirrors the real training regime.
	rng := rand.New(rand.NewSource(1))
	x := autodiff.NewParam(tensor.FromSlice(1, 1, []float64{5}))
	o := NewAdaMax([]*autodiff.Value{x}, 0.05, 0.9, 0.999)
	for i := 0; i < 3000; i++ {
		noisyTarget := tensor.FromSlice(1, 1, []float64{2 + 0.1*rng.NormFloat64()})
		autodiff.MSE(x, noisyTarget).Backward()
		o.Step()
		o.ZeroGrads()
	}
	if math.Abs(x.Data.Data[0]-2) > 0.2 {
		t.Fatalf("noisy convergence: %v want ~2", x.Data.Data[0])
	}
}
