// Package opt implements first-order stochastic optimizers over autodiff
// parameters: SGD (with momentum), Adam, and AdaMax — the l∞ Adam variant
// the paper trains Pitot with (App. B.3: lr=0.001, β1=0.9, β2=0.999).
package opt

import (
	"math"

	"repro/internal/autodiff"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the current gradients, then leaves the
	// gradients untouched (call ZeroGrads before the next accumulation).
	Step()
	// ZeroGrads clears all parameter gradients.
	ZeroGrads()
}

// baseOpt holds the shared parameter list.
type baseOpt struct {
	params []*autodiff.Value
}

func (b *baseOpt) ZeroGrads() {
	for _, p := range b.params {
		p.ZeroGrad()
	}
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	baseOpt
	LR       float64
	Momentum float64
	vel      []*tensor.Matrix
}

// NewSGD creates an SGD optimizer.
func NewSGD(params []*autodiff.Value, lr, momentum float64) *SGD {
	s := &SGD{baseOpt: baseOpt{params}, LR: lr, Momentum: momentum}
	if momentum != 0 {
		s.vel = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			s.vel[i] = tensor.New(p.Data.Rows, p.Data.Cols)
		}
	}
	return s
}

// Step applies p -= lr * (momentum-smoothed) gradient.
func (s *SGD) Step() {
	for i, p := range s.params {
		if s.Momentum == 0 {
			tensor.AXPY(p.Data, -s.LR, p.Grad)
			continue
		}
		v := s.vel[i]
		for j, g := range p.Grad.Data {
			v.Data[j] = s.Momentum*v.Data[j] + g
			p.Data.Data[j] -= s.LR * v.Data[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	baseOpt
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  []*tensor.Matrix
}

// NewAdam creates Adam with the given hyperparameters; pass eps<=0 for the
// default 1e-8.
func NewAdam(params []*autodiff.Value, lr, beta1, beta2, eps float64) *Adam {
	if eps <= 0 {
		eps = 1e-8
	}
	a := &Adam{baseOpt: baseOpt{params}, LR: lr, Beta1: beta1, Beta2: beta2, Eps: eps}
	a.m = make([]*tensor.Matrix, len(params))
	a.v = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Data.Rows, p.Data.Cols)
		a.v[i] = tensor.New(p.Data.Rows, p.Data.Cols)
	}
	return a
}

// Step applies one Adam update.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			p.Data.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// AdaMax is the l∞ variant of Adam. The second moment is replaced by an
// exponentially-decayed infinity norm u = max(β2·u, |g|), removing the need
// for the second bias correction. This is the optimizer used for Pitot and
// all baselines in the paper.
type AdaMax struct {
	baseOpt
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, u                  []*tensor.Matrix
}

// NewAdaMax creates AdaMax; pass lr<=0 for the paper default 0.001,
// beta1/beta2<=0 for 0.9/0.999.
func NewAdaMax(params []*autodiff.Value, lr, beta1, beta2 float64) *AdaMax {
	if lr <= 0 {
		lr = 0.001
	}
	if beta1 <= 0 {
		beta1 = 0.9
	}
	if beta2 <= 0 {
		beta2 = 0.999
	}
	a := &AdaMax{baseOpt: baseOpt{params}, LR: lr, Beta1: beta1, Beta2: beta2, Eps: 1e-8}
	a.m = make([]*tensor.Matrix, len(params))
	a.u = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Data.Rows, p.Data.Cols)
		a.u[i] = tensor.New(p.Data.Rows, p.Data.Cols)
	}
	return a
}

// Step applies one AdaMax update.
func (a *AdaMax) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	for i, p := range a.params {
		m, u := a.m[i], a.u[i]
		for j, g := range p.Grad.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			au := math.Abs(g)
			if b := a.Beta2 * u.Data[j]; b > au {
				u.Data[j] = b
			} else {
				u.Data[j] = au
			}
			if u.Data[j] > 0 {
				p.Data.Data[j] -= (a.LR / bc1) * m.Data[j] / (u.Data[j] + a.Eps)
			}
		}
	}
}

// ClipGradients scales all gradients so the global l2 norm is at most
// maxNorm; returns the pre-clip norm. A no-op when the norm is already
// within bounds or maxNorm <= 0.
func ClipGradients(params []*autodiff.Value, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return norm
}
