package exp

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/wasmcluster"
)

// runFig1 reproduces Figure 1: the log-density histogram of interference
// slowdowns, split by the number of simultaneously running workloads.
// Slowdown is the measured runtime under interference divided by the mean
// isolated runtime of the same (workload, platform) pair.
func runFig1(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	iso := meanIsolationSeconds(d)

	// Bins in log2 space from 1x to 32x.
	const bins = 12
	hists := map[int]*stats.Histogram{}
	maxSlow := map[int]float64{}
	for _, o := range d.Obs {
		if o.Degree() == 0 {
			continue
		}
		base, ok := iso[[2]int{o.Workload, o.Platform}]
		if !ok {
			continue
		}
		slow := o.Seconds / base
		g := o.Degree() + 1 // paper counts total running workloads
		h, ok := hists[g]
		if !ok {
			h = stats.NewHistogram(0, 5, bins) // log2(1x)..log2(32x)
			hists[g] = h
		}
		h.Add(math.Log2(slow))
		if slow > maxSlow[g] {
			maxSlow[g] = slow
		}
	}
	t := &Table{
		ID:     "fig1",
		Title:  "Interference slowdown histogram (counts per log2 bin)",
		Header: []string{"slowdown bin", "2-way", "3-way", "4-way"},
	}
	for b := 0; b < bins; b++ {
		row := []string{fmt.Sprintf("%.2fx-%.2fx",
			math.Exp2(5*float64(b)/bins), math.Exp2(5*float64(b+1)/bins))}
		for _, g := range []int{2, 3, 4} {
			c := 0
			if h := hists[g]; h != nil {
				c = h.Counts[b]
			}
			row = append(row, fmt.Sprintf("%d", c))
		}
		t.AddRow(row...)
	}
	t.Notes = fmt.Sprintf("max slowdown: 2-way %.1fx, 3-way %.1fx, 4-way %.1fx (paper: up to ~20x)",
		maxSlow[2], maxSlow[3], maxSlow[4])
	return []*Table{t}, nil
}

// runTable2 reproduces Table 2: the device catalog.
func runTable2(scale Scale, seed int64) ([]*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Cluster devices (paper Table 2 + 2 completing members)",
		Header: []string{"model", "cpu", "microarch", "class", "GHz"},
	}
	for _, d := range wasmcluster.Devices() {
		t.AddRow(d.Model, d.CPU, d.Arch, d.Class, fmt.Sprintf("%.2f", d.GHz))
	}
	t.Notes = fmt.Sprintf("%d devices", len(wasmcluster.Devices()))
	return []*Table{t}, nil
}

// runTable3 reproduces Table 3: runtime configurations.
func runTable3(scale Scale, seed int64) ([]*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "WebAssembly runtime configurations (paper Table 3)",
		Header: []string{"config", "type"},
	}
	for _, r := range wasmcluster.Runtimes() {
		t.AddRow(r.Name, r.Kind)
	}
	t.Notes = fmt.Sprintf("%d configurations", len(wasmcluster.Runtimes()))
	return []*Table{t}, nil
}
