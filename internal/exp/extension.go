package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/conformal"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/sched"
	"repro/internal/wasmcluster"
)

// runExtSched is an extension experiment beyond the paper's evaluation:
// it closes the loop on the paper's motivating application (§1) by
// comparing placement policies — mean estimate, padded mean, conformal
// bound — on deadline-miss rate and overprovisioning against the
// ground-truth runtime model.
func runExtSched(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	cluster := wasmcluster.New(s.data)
	d := cluster.Generate()

	// Train a quantile Pitot through the eval wrapper at the largest
	// fraction, then expose it as a sched.Predictor.
	cfg := s.pitot
	cfg.Quantiles = quantileGrid(scale)
	rng := rand.New(rand.NewSource(seed))
	split := dataset.NewSplit(rng, len(d.Obs), s.fracs[len(s.fracs)-1])
	split.EnsureCoverage(d)
	tr, err := eval.PitotMethod("pitot", cfg).Fit(d, split, seed)
	if err != nil {
		return nil, err
	}
	meanCfg := s.pitot
	meanTr, err := eval.PitotMethod("pitot-mean", meanCfg).Fit(d, split, seed+1)
	if err != nil {
		return nil, err
	}
	pred := &schedPredictor{d: d, mean: meanTr, quant: tr, split: split}

	// A stream of jobs with deadlines moderately above the expected
	// runtime on a random platform.
	jrng := rand.New(rand.NewSource(seed + 7))
	var jobs []sched.Job
	for i := 0; i < 48; i++ {
		w := jrng.Intn(d.NumWorkloads())
		p := jrng.Intn(d.NumPlatforms())
		deadline := pred.EstimateSeconds(w, p, nil) * (1.5 + 2*jrng.Float64())
		jobs = append(jobs, sched.Job{Workload: w, Deadline: deadline})
	}

	const eps = 0.1
	t := &Table{
		ID:     "ext-sched",
		Title:  fmt.Sprintf("Placement policies vs ground truth (eps=%.2f)", eps),
		Header: []string{"policy", "placed", "unplaced", "miss rate", "headroom"},
	}
	for _, pol := range []sched.Policy{
		sched.MeanPolicy{},
		sched.PaddedMeanPolicy{Factor: 1.3},
		sched.BoundPolicy{Eps: eps},
	} {
		sc, err := sched.New(sched.Config{NumPlatforms: d.NumPlatforms(), MaxColocation: 4}, pol, pred)
		if err != nil {
			return nil, err
		}
		as := sc.PlaceAll(jobs)
		oracle := &clusterOracle{c: cluster, rng: rand.New(rand.NewSource(seed + 99))}
		out := sched.Simulate(pol.Name(), as, oracle, sc.Residents, 20)
		t.AddRow(out.Policy, fmt.Sprintf("%d", out.Placed), fmt.Sprintf("%d", out.Unplaced),
			pct(out.MissRate), pct(out.AvgHeadroom))
	}
	t.Notes = "extension beyond the paper: the conformal-bound policy keeps misses within eps; mean placement does not"
	return []*Table{t}, nil
}

// schedPredictor adapts trained eval models to sched.Predictor, with
// conformal calibration for bounds.
type schedPredictor struct {
	d     *dataset.Dataset
	mean  eval.Trained
	quant eval.Trained
	split dataset.Split

	bounders map[float64]*conformal.Bounder
}

func (sp *schedPredictor) EstimateSeconds(w, p int, ks []int) float64 {
	return expOf(predictLogOne(sp.d, sp.mean, w, p, ks, 0))
}

func (sp *schedPredictor) BoundSeconds(w, p int, ks []int, eps float64) float64 {
	if sp.bounders == nil {
		sp.bounders = map[float64]*conformal.Bounder{}
	}
	b, ok := sp.bounders[eps]
	if !ok {
		hp := eval.BuildHeadPredictions(sp.d, sp.quant, sp.split)
		var err error
		b, err = conformal.Calibrate(hp, eps, conformal.SelectOptimal)
		if err != nil {
			return inf()
		}
		sp.bounders[eps] = b
	}
	logPred := predictLogOne(sp.d, sp.quant, w, p, ks, b.Head)
	return expOf(b.Bound(logPred, len(ks)))
}

// predictLogOne routes a single ad-hoc tuple through a Trained model by
// appending a temporary observation; the temporary entry is removed before
// returning. Returns the log-runtime prediction.
func predictLogOne(d *dataset.Dataset, tr eval.Trained, w, p int, ks []int, head int) float64 {
	d.Obs = append(d.Obs, dataset.Observation{Workload: w, Platform: p, Interferers: ks, Seconds: 1})
	idx := len(d.Obs) - 1
	out := tr.PredictLogObs([]int{idx}, head)[0]
	d.Obs = d.Obs[:idx]
	return out
}

func inf() float64            { return math.Inf(1) }
func expOf(x float64) float64 { return math.Exp(x) }

// clusterOracle draws true runtimes from the generative cluster.
type clusterOracle struct {
	c   *wasmcluster.Cluster
	rng *rand.Rand
}

func (o *clusterOracle) TrueSeconds(w, p int, ks []int) float64 {
	return o.c.MeasureSeconds(o.rng, w, p, ks)
}
