package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// errorSweepTables runs a SweepError over method variants and renders the
// paired (without / with interference) tables used by Fig. 4, 6a, 9, 10.
func errorSweepTables(id, title string, d *dataset.Dataset, methods []eval.Method,
	s settings, seed int64) ([]*Table, error) {
	points, err := eval.SweepError(d, methods, s.fracs, s.reps, seed)
	if err != nil {
		return nil, err
	}
	byKey := map[string]eval.ErrorPoint{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s@%.2f", p.Method, p.Frac)] = p
	}
	mk := func(kind string, pick func(eval.ErrorPoint) string) *Table {
		t := &Table{
			ID:     id,
			Title:  fmt.Sprintf("%s — MAPE %s interference", title, kind),
			Header: []string{"train frac"},
		}
		for _, m := range methods {
			t.Header = append(t.Header, m.Name)
		}
		for _, f := range s.fracs {
			row := []string{pct(f)}
			for _, m := range methods {
				row = append(row, pick(byKey[fmt.Sprintf("%s@%.2f", m.Name, f)]))
			}
			t.AddRow(row...)
		}
		return t
	}
	iso := mk("without", func(p eval.ErrorPoint) string {
		return pctPair(p.MAPEIso.Mean, 2*p.MAPEIso.StdErr)
	})
	interf := mk("with", func(p eval.ErrorPoint) string {
		return pctPair(p.MAPEInterf.Mean, 2*p.MAPEInterf.StdErr)
	})
	return []*Table{iso, interf}, nil
}

// runFig4a: loss-formulation ablation (log-residual vs log vs naive
// proportional).
func runFig4a(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	logRes := s.pitot
	logOnly := s.pitot
	logOnly.Objective = core.ObjLog
	prop := s.pitot
	prop.Objective = core.ObjProportional
	methods := []eval.Method{
		eval.PitotMethod("log-residual", logRes),
		eval.PitotMethod("log", logOnly),
		eval.PitotMethod("proportional", prop),
	}
	return errorSweepTables("fig4a", "Loss formulations", d, methods, s, seed)
}

// runFig4b: side-information ablation (all / platform-only / workload-only
// / none). The uncropped Fig. 9a is the same data.
func runFig4b(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	all := s.pitot
	pOnly := s.pitot
	pOnly.UseWorkloadFeatures = false
	wOnly := s.pitot
	wOnly.UsePlatformFeatures = false
	none := s.pitot
	none.UseWorkloadFeatures = false
	none.UsePlatformFeatures = false
	methods := []eval.Method{
		eval.PitotMethod("all-features", all),
		eval.PitotMethod("platform-only", pOnly),
		eval.PitotMethod("workload-only", wOnly),
		eval.PitotMethod("no-features", none),
	}
	return errorSweepTables("fig4b", "Side information", d, methods, s, seed)
}

// runFig4c: interference handling (aware / discard / ignore).
func runFig4c(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	aware := s.pitot
	discard := s.pitot
	discard.Interference = core.InterferenceDiscard
	ignore := s.pitot
	ignore.Interference = core.InterferenceIgnore
	methods := []eval.Method{
		eval.PitotMethod("aware", aware),
		eval.PitotMethod("discard", discard),
		eval.PitotMethod("ignore", ignore),
	}
	return errorSweepTables("fig4c", "Interference handling", d, methods, s, seed)
}

// runFig4d: activation function vs simple multiplicative interference.
func runFig4d(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	withAct := s.pitot
	noAct := s.pitot
	noAct.UseActivation = false
	methods := []eval.Method{
		eval.PitotMethod("with-activation", withAct),
		eval.PitotMethod("multiplicative", noAct),
	}
	return errorSweepTables("fig4d", "Interference activation", d, methods, s, seed)
}

// runFig10: hyperparameter ablations for q (learned features), r
// (embedding dim), s (interference types), and β (interference weight).
func runFig10(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	// Trim grids at quick scale.
	qGrid := []int{0, 1, 4}
	rGrid := []int{8, 32, 64}
	sGrid := []int{1, 2, 8}
	bGrid := []float64{0.1, 0.5, 2.0}
	if scale == FullScale {
		qGrid = []int{0, 1, 2, 4, 8}
		rGrid = []int{4, 8, 16, 32, 64}
		sGrid = []int{1, 2, 4, 8, 16}
		bGrid = []float64{0.1, 0.2, 0.5, 1.0, 2.0}
	}
	var out []*Table
	sweep := func(name string, methods []eval.Method) error {
		sub := s
		// Hyperparameter plots use a single mid fraction at smaller scales.
		if scale != FullScale {
			sub.fracs = []float64{s.fracs[len(s.fracs)/2]}
		}
		ts, err := errorSweepTables("fig10", "Hyperparameters: "+name, d, methods, sub, seed)
		if err != nil {
			return err
		}
		out = append(out, ts...)
		return nil
	}
	var ms []eval.Method
	for _, q := range qGrid {
		c := s.pitot
		c.LearnedFeatures = q
		ms = append(ms, eval.PitotMethod(fmt.Sprintf("q=%d", q), c))
	}
	if err := sweep("learned features q", ms); err != nil {
		return nil, err
	}
	ms = nil
	for _, r := range rGrid {
		c := s.pitot
		c.EmbeddingDim = r
		ms = append(ms, eval.PitotMethod(fmt.Sprintf("r=%d", r), c))
	}
	if err := sweep("embedding dim r", ms); err != nil {
		return nil, err
	}
	ms = nil
	for _, st := range sGrid {
		c := s.pitot
		c.InterferenceTypes = st
		ms = append(ms, eval.PitotMethod(fmt.Sprintf("s=%d", st), c))
	}
	if err := sweep("interference types s", ms); err != nil {
		return nil, err
	}
	ms = nil
	for _, b := range bGrid {
		c := s.pitot
		c.Beta = b
		ms = append(ms, eval.PitotMethod(fmt.Sprintf("beta=%.1f", b), c))
	}
	if err := sweep("interference weight beta", ms); err != nil {
		return nil, err
	}
	return out, nil
}
