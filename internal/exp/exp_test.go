package exp

import (
	"strings"
	"testing"
)

func TestRegistryCoversPaper(t *testing.T) {
	want := []string{"fig1", "table2", "table3", "fig4a", "fig4b", "fig4c", "fig4d",
		"fig5", "fig6a", "fig6b", "fig7", "fig8", "fig10", "fig11", "fig12bc", "fig12d",
		"headline", "ext-sched"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Paper == "" || reg[i].Run == nil {
			t.Fatalf("registry entry %s incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig1"); !ok {
		t.Fatal("fig1 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}, Notes: "note"}
	tb.AddRow("1", "2")
	out := tb.Render()
	for _, want := range []string{"== x: T ==", "a", "bb", "1", "2", "-- note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Standard.String() != "standard" ||
		FullScale.String() != "full" || Scale(9).String() != "unknown" {
		t.Fatal("scale names wrong")
	}
}

// checkTables verifies an experiment produced non-empty, well-formed tables.
func checkTables(t *testing.T, id string, tables []*Table) {
	t.Helper()
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s table %q has no rows", id, tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s table %q ragged row %v vs header %v", id, tb.Title, row, tb.Header)
			}
		}
		if tb.Render() == "" {
			t.Fatalf("%s empty render", id)
		}
	}
}

// Cheap experiments run individually for clearer failures.

func TestFig1Quick(t *testing.T) {
	tables, err := runFig1(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "fig1", tables)
	// Some mass must exist beyond 2x slowdown (log2 > 1 = bins >= 3).
	total := 0
	for bi, row := range tables[0].Rows {
		_ = bi
		for _, c := range row[1:] {
			if c != "0" {
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("histogram entirely empty")
	}
}

func TestTables23(t *testing.T) {
	tables, err := runTable2(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "table2", tables)
	if len(tables[0].Rows) != 24 {
		t.Fatalf("table2 rows = %d", len(tables[0].Rows))
	}
	tables, err = runTable3(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "table3", tables)
	if len(tables[0].Rows) != 10 {
		t.Fatalf("table3 rows = %d", len(tables[0].Rows))
	}
}

// The training-based experiments are expensive; run a representative
// subset at Quick scale unless -short.

func TestFig4aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	tables, err := runFig4a(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "fig4a", tables)
	if len(tables) != 2 {
		t.Fatalf("want iso+interf tables, got %d", len(tables))
	}
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	tables, err := runFig5(Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "fig5", tables)
}

func TestFig7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	tables, err := runFig7(Quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "fig7", tables)
}

func TestFig12dQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	tables, err := runFig12d(Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "fig12d", tables)
}

func TestHeadlineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	if raceEnabled {
		t.Skip("full baseline sweep exceeds the package timeout under the race detector; engine concurrency is race-tested in core and autodiff")
	}
	tables, err := runHeadline(Quick, 6)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "headline", tables)
	if len(tables[0].Rows) != 4 {
		t.Fatalf("headline rows = %d (want pitot + 3 baselines)", len(tables[0].Rows))
	}
}

func TestChanceLevel(t *testing.T) {
	// Two labels, 2 members each of 4: chance = 2 * (0.5 * 1/3) = 1/3.
	got := chanceLevel([]string{"a", "a", "b", "b"})
	if diff := got - 1.0/3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("chanceLevel = %v want 1/3", got)
	}
}

func TestPerplexityFor(t *testing.T) {
	if perplexityFor(4) != 2 || perplexityFor(200) != 20 || perplexityFor(40) != 10 {
		t.Fatal("perplexity clamping wrong")
	}
}

func TestExtSchedQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	tables, err := runExtSched(Quick, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, "ext-sched", tables)
	if len(tables[0].Rows) != 3 {
		t.Fatalf("ext-sched rows = %d (want 3 policies)", len(tables[0].Rows))
	}
}
