// Package exp is the experiment registry: one entry per table and figure
// of the paper's evaluation, shared by cmd/experiments and the benchmark
// harness. Each experiment regenerates the data behind its figure as a
// plain-text table, at a configurable scale (the paper's exact scale is
// impractical for every CI run; -full reproduces it).
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/wasmcluster"
)

// Scale selects the cost/fidelity trade-off of an experiment run.
type Scale int

// Scales.
const (
	// Quick: seconds per experiment; used by tests and benches.
	Quick Scale = iota
	// Standard: minutes for the full registry; used to produce
	// EXPERIMENTS.md.
	Standard
	// FullScale: paper-scale dataset and training budget.
	FullScale
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Standard:
		return "standard"
	case FullScale:
		return "full"
	}
	return "unknown"
}

// Table is one rendered result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

// Experiment regenerates one paper figure or table.
type Experiment struct {
	ID    string
	Title string
	// Paper describes the expected qualitative result from the paper.
	Paper string
	Run   func(scale Scale, seed int64) ([]*Table, error)
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Interference slowdown distribution", "log-density histogram; up to ~20x slowdown, heavier tails with more interferers", runFig1},
		{"table2", "Cluster device catalog", "24 devices across 9 vendors and 14 microarchitectures", runTable2},
		{"table3", "WebAssembly runtime configurations", "5 runtimes, 10 configurations", runTable3},
		{"fig4a", "Loss-formulation ablation", "log-residual < log < naive proportional error", runFig4a},
		{"fig4b", "Side-information ablation", "all features best; platform features higher marginal value (also Fig. 9a uncropped)", runFig4b},
		{"fig4c", "Interference-handling ablation", "aware best; ignore much worse with interference; discard cannot predict interference", runFig4c},
		{"fig4d", "Interference-activation ablation", "activation modestly but consistently better than simple multiplicative", runFig4d},
		{"fig5", "Uncertainty-quantification ablation", "Pitot CQR tighter than naive CQR and non-quantile conformal", runFig5},
		{"fig6a", "Error vs baselines", "Pitot < attention/NN << MF at all train fractions (also Fig. 9b uncropped)", runFig6a},
		{"fig6b", "Bound tightness vs baselines", "Pitot tighter than all baselines at every miscoverage rate", runFig6b},
		{"fig7", "Workload-embedding t-SNE", "workloads cluster by benchmark suite (also Fig. 12a)", runFig7},
		{"fig8", "Quantile-choice study", "optimal target quantile ξ well below 1-ε", runFig8},
		{"fig10", "Hyperparameter ablations", "insensitive given enough capacity: q≥1, r≥16, s≈2, β≈0.5", runFig10},
		{"fig11", "Tightness across train splits", "Pitot tighter than baselines at every split and ε", runFig11},
		{"fig12bc", "Platform-embedding t-SNE", "platforms cluster by runtime and microarchitecture class", runFig12bc},
		{"fig12d", "Interference-norm correlation", "‖F_j‖₂ positively correlated with measured mean interference", runFig12d},
		{"headline", "Headline accuracy (§5.3)", "≈5% MAPE without interference; large improvement over best baseline", runHeadline},
		{"ext-sched", "Extension: bound-aware placement", "conformal-bound placement keeps deadline misses within eps; mean placement does not (beyond-paper experiment)", runExtSched},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// settings bundles the per-scale knobs shared by experiments.
type settings struct {
	data    wasmcluster.Config
	fracs   []float64
	epsGrid []float64
	reps    int
	pitot   core.Config
	base    baselines.TrainConfig
	nnHid   int
}

func settingsFor(scale Scale, seed int64) settings {
	switch scale {
	case Quick:
		cfg := core.DefaultConfig(seed)
		cfg.Hidden = 32
		cfg.EmbeddingDim = 16
		cfg.Steps = 500
		cfg.BatchPerDegree = 128
		cfg.EvalEvery = 125
		b := baselines.DefaultTrainConfig(seed)
		b.Steps = 500
		b.BatchPerDegree = 128
		b.EvalEvery = 125
		return settings{
			data:    wasmcluster.Config{Seed: seed, NumWorkloads: 30, MaxDevices: 5, SetsPerDegree: 15},
			fracs:   []float64{0.3, 0.7},
			epsGrid: []float64{0.1, 0.05},
			reps:    2,
			pitot:   cfg,
			base:    b,
			nnHid:   48,
		}
	case FullScale:
		cfg := core.DefaultConfig(seed)
		cfg.Hidden = 128
		cfg.EmbeddingDim = 32
		cfg.Steps = 20000
		cfg.BatchPerDegree = 512
		cfg.LR = 0.001
		cfg.EvalEvery = 200
		b := baselines.DefaultTrainConfig(seed)
		b.Steps = 20000
		b.BatchPerDegree = 512
		b.LR = 0.001
		b.EvalEvery = 200
		return settings{
			data:    wasmcluster.Full(seed),
			fracs:   []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
			epsGrid: []float64{0.1, 0.09, 0.08, 0.07, 0.06, 0.05, 0.04, 0.03, 0.02, 0.01},
			reps:    5,
			pitot:   cfg,
			base:    b,
			nnHid:   256,
		}
	default: // Standard
		cfg := core.DefaultConfig(seed)
		cfg.Hidden = 64
		cfg.EmbeddingDim = 32
		cfg.Steps = 2000
		cfg.BatchPerDegree = 256
		cfg.EvalEvery = 200
		b := baselines.DefaultTrainConfig(seed)
		b.Steps = 2000
		b.BatchPerDegree = 256
		b.EvalEvery = 200
		return settings{
			data:    wasmcluster.Config{Seed: seed, NumWorkloads: 80, MaxDevices: 10, SetsPerDegree: 40},
			fracs:   []float64{0.1, 0.3, 0.5, 0.7, 0.9},
			epsGrid: []float64{0.1, 0.08, 0.06, 0.04, 0.02},
			reps:    3,
			pitot:   cfg,
			base:    b,
			nnHid:   128,
		}
	}
}

// datasetFor generates the synthetic dataset for a settings bundle.
func (s settings) dataset() *dataset.Dataset {
	return wasmcluster.New(s.data).Generate()
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// pctPair formats "mean ± 2se" percentages.
func pctPair(mean, se2 float64) string {
	return fmt.Sprintf("%.1f%% ± %.1f%%", 100*mean, 100*se2)
}

// meanIsolationSeconds returns the mean isolated runtime per (workload,
// platform) pair, used to convert interference observations to slowdowns.
func meanIsolationSeconds(d *dataset.Dataset) map[[2]int]float64 {
	sums := map[[2]int]float64{}
	counts := map[[2]int]float64{}
	for _, o := range d.Obs {
		if o.Degree() == 0 {
			k := [2]int{o.Workload, o.Platform}
			sums[k] += o.Seconds
			counts[k]++
		}
	}
	out := make(map[[2]int]float64, len(sums))
	for k, s := range sums {
		out[k] = s / counts[k]
	}
	return out
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
