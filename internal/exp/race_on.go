//go:build race

package exp

// raceEnabled reports whether the race detector is active; the heavyweight
// experiment sweeps scale themselves down under its ~10x slowdown.
const raceEnabled = true
