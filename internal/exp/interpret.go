package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/tsne"
)

// trainPitotOnce trains a single Pitot model at the mid split for the
// interpretation experiments.
func trainPitotOnce(s settings, d *dataset.Dataset, seed int64) (*core.Model, dataset.Split, error) {
	rng := rand.New(rand.NewSource(seed))
	split := dataset.NewSplit(rng, len(d.Obs), s.fracs[len(s.fracs)-1])
	split.EnsureCoverage(d)
	cfg := s.pitot
	cfg.Seed = seed
	m, err := core.NewModel(cfg, d)
	if err != nil {
		return nil, split, err
	}
	if _, err := m.Train(split); err != nil {
		return nil, split, err
	}
	return m, split, nil
}

// runFig7: t-SNE of workload embeddings, quantified as kNN suite purity
// (paper Fig. 7 / 12a: clear clusters for homogeneous suites).
func runFig7(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	m, _, err := trainPitotOnce(s, d, seed)
	if err != nil {
		return nil, err
	}
	emb := m.WorkloadEmbeddings(0)
	y := tsne.Embed(emb, tsne.Config{Seed: seed, Perplexity: perplexityFor(emb.Rows)})
	labels := d.WorkloadSuites
	overall := tsne.KNNPurity(y, labels, 5)
	t := &Table{
		ID:     "fig7",
		Title:  "Workload embedding t-SNE: kNN(5) suite purity",
		Header: []string{"suite", "count", "purity"},
	}
	counts := map[string]int{}
	for _, l := range labels {
		counts[l]++
	}
	for _, suite := range sortedKeys(counts, func(a, b string) bool { return a < b }) {
		var idx []int
		for i, l := range labels {
			if l == suite {
				idx = append(idx, i)
			}
		}
		t.AddRow(suite, fmt.Sprintf("%d", counts[suite]),
			fmt.Sprintf("%.2f", tsne.KNNPuritySubset(y, labels, idx, 5)))
	}
	chance := chanceLevel(labels)
	t.Notes = fmt.Sprintf("overall purity %.2f vs chance %.2f — clusters form when purity >> chance", overall, chance)
	return []*Table{t}, nil
}

// runFig12bc: t-SNE of platform embeddings, purity by runtime config and
// by CPU class.
func runFig12bc(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	m, _, err := trainPitotOnce(s, d, seed)
	if err != nil {
		return nil, err
	}
	emb := m.PlatformEmbeddings()
	y := tsne.Embed(emb, tsne.Config{Seed: seed, Perplexity: perplexityFor(emb.Rows)})
	t := &Table{
		ID:     "fig12bc",
		Title:  "Platform embedding t-SNE: kNN(5) purity",
		Header: []string{"grouping", "purity", "chance"},
	}
	t.AddRow("runtime config", fmt.Sprintf("%.2f", tsne.KNNPurity(y, d.PlatformRuntimes, 5)),
		fmt.Sprintf("%.2f", chanceLevel(d.PlatformRuntimes)))
	t.AddRow("cpu class", fmt.Sprintf("%.2f", tsne.KNNPurity(y, d.PlatformArchs, 5)),
		fmt.Sprintf("%.2f", chanceLevel(d.PlatformArchs)))
	t.Notes = "paper: clear clusters by runtime; microarch clusters within runtime clusters"
	return []*Table{t}, nil
}

// runFig12d: correlation between the learned interference norm ‖F_j‖₂ and
// the measured mean interference slowdown per platform.
func runFig12d(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	m, _, err := trainPitotOnce(s, d, seed)
	if err != nil {
		return nil, err
	}
	iso := meanIsolationSeconds(d)
	slowSum := make([]float64, d.NumPlatforms())
	slowCnt := make([]float64, d.NumPlatforms())
	for _, o := range d.Obs {
		if o.Degree() == 0 {
			continue
		}
		base, ok := iso[[2]int{o.Workload, o.Platform}]
		if !ok {
			continue
		}
		slowSum[o.Platform] += math.Log(o.Seconds / base)
		slowCnt[o.Platform]++
	}
	var norms, measured []float64
	for j := 0; j < d.NumPlatforms(); j++ {
		if slowCnt[j] == 0 {
			continue
		}
		norms = append(norms, m.InterferenceNorm(j))
		measured = append(measured, slowSum[j]/slowCnt[j])
	}
	t := &Table{
		ID:     "fig12d",
		Title:  "Learned ‖F_j‖₂ vs measured mean interference (log slowdown)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("platforms", fmt.Sprintf("%d", len(norms)))
	t.AddRow("pearson r", fmt.Sprintf("%.3f", stats.Pearson(norms, measured)))
	t.AddRow("spearman rho", fmt.Sprintf("%.3f", stats.Spearman(norms, measured)))
	t.Notes = "paper observes a positive correlation (Fig. 12d)"
	return []*Table{t}, nil
}

// perplexityFor keeps t-SNE perplexity valid for small embeddings.
func perplexityFor(n int) float64 {
	p := float64(n) / 4
	if p > 20 {
		p = 20
	}
	if p < 2 {
		p = 2
	}
	return p
}

// chanceLevel is the purity a random embedding would achieve: the expected
// fraction of same-label neighbors under label frequencies.
func chanceLevel(labels []string) float64 {
	counts := map[string]float64{}
	for _, l := range labels {
		counts[l]++
	}
	n := float64(len(labels))
	var c float64
	for _, v := range counts {
		c += (v / n) * ((v - 1) / (n - 1))
	}
	return c
}
