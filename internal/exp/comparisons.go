package exp

import (
	"fmt"

	"repro/internal/eval"
)

// baselineMethods builds the §5.3 comparison set.
func baselineMethods(s settings) []eval.Method {
	return []eval.Method{
		eval.NNMethod("neural-net", s.base, s.nnHid),
		eval.AttentionMethod("attention", s.base, s.nnHid),
		eval.MFMethod("matrix-fact", s.base, s.pitot.EmbeddingDim),
	}
}

// runFig6a: prediction error of Pitot vs the three baselines across train
// fractions. Fig. 9b is the uncropped version of the same data.
func runFig6a(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	methods := append([]eval.Method{eval.PitotMethod("pitot", s.pitot)}, baselineMethods(s)...)
	return errorSweepTables("fig6a", "Pitot vs baselines", d, methods, s, seed)
}

// runHeadline: the §5.3 headline numbers — Pitot's MAPE at the largest
// train fraction, and the relative improvement over the best baseline.
func runHeadline(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	s.fracs = []float64{s.fracs[len(s.fracs)-1]}
	methods := append([]eval.Method{eval.PitotMethod("pitot", s.pitot)}, baselineMethods(s)...)
	points, err := eval.SweepError(d, methods, s.fracs, s.reps, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "headline",
		Title:  fmt.Sprintf("Headline error at train %s", pct(s.fracs[0])),
		Header: []string{"method", "MAPE (no interference)", "MAPE (interference)"},
	}
	var pitotIso, bestBaseIso float64
	for _, p := range points {
		t.AddRow(p.Method,
			pctPair(p.MAPEIso.Mean, 2*p.MAPEIso.StdErr),
			pctPair(p.MAPEInterf.Mean, 2*p.MAPEInterf.StdErr))
		if p.Method == "pitot" {
			pitotIso = p.MAPEIso.Mean
		} else if bestBaseIso == 0 || p.MAPEIso.Mean < bestBaseIso {
			bestBaseIso = p.MAPEIso.Mean
		}
	}
	if bestBaseIso > 0 {
		t.Notes = fmt.Sprintf("pitot improves on best baseline by %.0f%% (paper: 5.2%% error, up to 48%% less error than next best)",
			100*(1-pitotIso/bestBaseIso))
	}
	return []*Table{t}, nil
}
