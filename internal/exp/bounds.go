package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/conformal"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// tightnessTables renders SweepTightness output as the paired
// (without / with interference) margin tables of Fig. 5 / 6b / 11.
func tightnessTables(id, title string, d *dataset.Dataset, specs []eval.BoundSpec,
	frac float64, s settings, seed int64) ([]*Table, error) {
	points, err := eval.SweepTightness(d, specs, frac, s.epsGrid, s.reps, seed)
	if err != nil {
		return nil, err
	}
	byKey := map[string]eval.TightnessPoint{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s@%.3f", p.Method, p.Eps)] = p
	}
	mk := func(kind string, pick func(eval.TightnessPoint) string) *Table {
		t := &Table{
			ID:     id,
			Title:  fmt.Sprintf("%s — bound tightness %s interference (train %s)", title, kind, pct(frac)),
			Header: []string{"miscoverage eps"},
		}
		for _, sp := range specs {
			t.Header = append(t.Header, sp.Method.Name)
		}
		for _, eps := range s.epsGrid {
			row := []string{fmt.Sprintf("%.2f", eps)}
			for _, sp := range specs {
				row = append(row, pick(byKey[fmt.Sprintf("%s@%.3f", sp.Method.Name, eps)]))
			}
			t.AddRow(row...)
		}
		return t
	}
	iso := mk("without", func(p eval.TightnessPoint) string {
		return pctPair(p.MarginIso.Mean, 2*p.MarginIso.StdErr)
	})
	interf := mk("with", func(p eval.TightnessPoint) string {
		return pctPair(p.MarginInterf.Mean, 2*p.MarginInterf.StdErr)
	})
	return []*Table{iso, interf}, nil
}

// midFrac returns the 50%-ish train fraction used by Fig. 5/6b/8.
func (s settings) midFrac() float64 { return s.fracs[len(s.fracs)/2] }

// runFig5: Pitot's CQR vs naive CQR vs calibrating a non-quantile model.
func runFig5(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	quant := s.pitot
	quant.Quantiles = quantileGrid(scale)
	mean := s.pitot
	specs := []eval.BoundSpec{
		{Method: eval.PitotMethod("pitot", quant), Selection: conformal.SelectOptimal},
		{Method: eval.PitotMethod("naive-cqr", quant), Selection: conformal.SelectNaive},
		{Method: eval.PitotMethod("non-quantile", mean), Selection: conformal.SelectOnly},
	}
	return tightnessTables("fig5", "UQ ablation", d, specs, s.midFrac(), s, seed)
}

// quantileGrid trims the paper's 8-head spread at quick scale.
func quantileGrid(scale Scale) []float64 {
	if scale == Quick {
		return []float64{0.5, 0.8, 0.9, 0.95}
	}
	return []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99}
}

// baselineBoundSpecs builds the baseline bound methods (split conformal on
// their squared-loss outputs, App. B.4 / §5.3).
func baselineBoundSpecs(s settings) []eval.BoundSpec {
	return []eval.BoundSpec{
		{Method: eval.NNMethod("neural-net", s.base, s.nnHid), Selection: conformal.SelectOnly},
		{Method: eval.AttentionMethod("attention", s.base, s.nnHid), Selection: conformal.SelectOnly},
		{Method: eval.MFMethod("matrix-fact", s.base, s.pitot.EmbeddingDim), Selection: conformal.SelectOnly},
	}
}

// runFig6b: bound tightness of Pitot vs all baselines at the mid split.
func runFig6b(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	quant := s.pitot
	quant.Quantiles = quantileGrid(scale)
	specs := append([]eval.BoundSpec{
		{Method: eval.PitotMethod("pitot", quant), Selection: conformal.SelectOptimal},
	}, baselineBoundSpecs(s)...)
	return tightnessTables("fig6b", "Baselines", d, specs, s.midFrac(), s, seed)
}

// runFig11: the full tightness grid across train splits (App. D.3). At
// non-full scales only Pitot and the attention baseline are swept to keep
// the cost sane.
func runFig11(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	quant := s.pitot
	quant.Quantiles = quantileGrid(scale)
	specs := []eval.BoundSpec{
		{Method: eval.PitotMethod("pitot", quant), Selection: conformal.SelectOptimal},
		{Method: eval.AttentionMethod("attention", s.base, s.nnHid), Selection: conformal.SelectOnly},
	}
	if scale == FullScale {
		specs = append([]eval.BoundSpec{specs[0]}, baselineBoundSpecs(s)...)
	}
	var out []*Table
	for _, frac := range s.fracs {
		ts, err := tightnessTables("fig11", "Tightness grid", d, specs, frac, s, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// runFig8: bound tightness as a function of the quantile-regression target
// quantile ξ, at fixed miscoverage (paper: ε=0.05, 50% split; optimum
// around ξ=0.8–0.9 rather than 0.95).
func runFig8(scale Scale, seed int64) ([]*Table, error) {
	s := settingsFor(scale, seed)
	d := s.dataset()
	cfg := s.pitot
	cfg.Quantiles = quantileGrid(scale)
	const eps = 0.05
	t := &Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("Validation margin per target quantile (eps=%.2f, train %s)", eps, pct(s.midFrac())),
		Header: []string{"replicate"},
	}
	for _, q := range cfg.Quantiles {
		t.Header = append(t.Header, fmt.Sprintf("xi=%.2f", q))
	}
	bestCount := map[float64]int{}
	for rep := 0; rep < s.reps; rep++ {
		repSeed := seed + int64(rep)
		rng := rand.New(rand.NewSource(repSeed))
		split := dataset.NewSplit(rng, len(d.Obs), s.midFrac())
		split.EnsureCoverage(d)
		tr, err := eval.PitotMethod("pitot", cfg).Fit(d, split, repSeed)
		if err != nil {
			return nil, err
		}
		qs, margins, err := eval.QuantileChoiceCurve(d, tr, split, eps)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", rep)}
		bestQ, bestM := 0.0, margins[0]
		for i, m := range margins {
			row = append(row, pct(m))
			if m <= bestM {
				bestM, bestQ = m, qs[i]
			}
		}
		bestCount[bestQ]++
		t.AddRow(row...)
	}
	t.Notes = fmt.Sprintf("best ξ per replicate: %v (naive CQR would always pick ξ=%.2f)", bestCount, 1-eps)
	return []*Table{t}, nil
}
