// Package autodiff implements a small tape-based reverse-mode automatic
// differentiation engine over dense matrices (internal/tensor).
//
// A computation is expressed by composing Values; calling Backward on a
// scalar Value populates the Grad field of every Value that requires
// gradients. The engine supports exactly the operations needed by the Pitot
// model and its baselines: affine layers, activations, gathers over
// embedding tables, column slicing/concatenation, reductions, and the
// squared and pinball losses.
//
// The design intentionally mirrors "micrograd"-style tapes: each op records
// a closure that propagates the output gradient to its inputs. Graphs are
// built per step; parameters (created with Param) persist across steps and
// accumulate gradients until ZeroGrad.
//
// Two mechanisms keep the per-step graph churn off the garbage collector:
// every op output and interior gradient is drawn from the size-classed pool
// in internal/tensor, and ReleaseGraph hands a finished graph's buffers
// back. Callers that skip ReleaseGraph (tests, one-shot evaluations) simply
// fall back to GC collection.
//
// Disjoint graphs may run Backward concurrently: topological sorting marks
// nodes with a per-traversal generation stamp drawn from an atomic counter
// instead of a shared visited map. Graphs that share Values (other than
// constants, which backward never visits) must not be differentiated
// concurrently; Stub exists to cut such sharing deliberately.
package autodiff

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/tensor"
)

// Value is a node in the computation graph: a matrix, an optional gradient
// of the final scalar objective with respect to it, and the backward
// closure that propagates gradients to its parents.
type Value struct {
	Data *tensor.Matrix
	Grad *tensor.Matrix

	requiresGrad bool
	parents      []*Value
	backward     func()
	op           string
	visit        uint64 // generation stamp of the last graph traversal
}

// newMat allocates graph-lifetime storage from the shared matrix pool.
func newMat(rows, cols int) *tensor.Matrix { return tensor.GetPooled(rows, cols) }

// NewConst wraps a matrix as a constant (no gradient tracked).
func NewConst(m *tensor.Matrix) *Value {
	return &Value{Data: m, op: "const"}
}

// NewParam wraps a matrix as a trainable parameter: gradients are tracked
// and persist until ZeroGrad is called.
func NewParam(m *tensor.Matrix) *Value {
	return &Value{Data: m, Grad: tensor.New(m.Rows, m.Cols), requiresGrad: true, op: "param"}
}

// Stub returns a detached leaf that shares v's data but accumulates into
// its own gradient buffer. It cuts the graph at v: subgraphs built on stubs
// of the same upstream Value are fully disjoint and may run Backward
// concurrently; the caller then adds each stub's Grad into v.Grad (in a
// fixed order, for determinism) before differentiating v's own graph with
// BackwardSeeded.
func Stub(v *Value) *Value {
	return &Value{Data: v.Data, Grad: newMat(v.Data.Rows, v.Data.Cols), requiresGrad: true, op: "stub"}
}

// IsParam reports whether v is a leaf parameter node.
func (v *Value) IsParam() bool { return v.op == "param" }

// Rows returns the number of rows of the underlying matrix.
func (v *Value) Rows() int { return v.Data.Rows }

// Cols returns the number of columns of the underlying matrix.
func (v *Value) Cols() int { return v.Data.Cols }

// ZeroGrad clears the accumulated gradient of a parameter.
func (v *Value) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// newResult allocates the output node for an op over parents. The output
// matrix is pool-backed and zeroed; the caller computes it afterwards.
func newResult(rows, cols int, op string, parents ...*Value) *Value {
	out := &Value{Data: newMat(rows, cols), op: op, parents: parents}
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.Grad = newMat(rows, cols)
	}
	return out
}

// ensureGrad lazily allocates the gradient buffer of an interior node.
func (v *Value) ensureGrad() *tensor.Matrix {
	if v.Grad == nil {
		v.Grad = newMat(v.Data.Rows, v.Data.Cols)
	}
	return v.Grad
}

// Backward runs reverse-mode differentiation from v, which must be a 1x1
// scalar. It seeds dv/dv = 1 and propagates through the tape in reverse
// topological order.
func (v *Value) Backward() {
	if v.Data.Rows != 1 || v.Data.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward on non-scalar %dx%d", v.Data.Rows, v.Data.Cols))
	}
	if !v.requiresGrad {
		return
	}
	v.ensureGrad().Data[0] = 1
	runBackward(v)
}

// BackwardSeeded propagates gradients from v, whose Grad must already have
// been seeded by the caller (any shape). Used to resume differentiation at
// a graph cut: accumulate stub gradients into v.Grad, then call this.
func (v *Value) BackwardSeeded() {
	if !v.requiresGrad {
		return
	}
	v.ensureGrad()
	runBackward(v)
}

func runBackward(v *Value) {
	order := topoSort(v)
	for i := len(order) - 1; i >= 0; i-- {
		if n := order[i]; n.backward != nil {
			n.backward()
		}
	}
}

// topoGen issues one generation stamp per graph traversal; being atomic, it
// lets disjoint graphs traverse concurrently with no shared visited set.
var topoGen atomic.Uint64

// topoSort returns the gradient-requiring nodes reachable from root in
// topological order (parents before children), using an iterative DFS to
// avoid stack overflow on deep graphs. Constants and other grad-free
// subtrees are pruned: no gradient flows through them.
func topoSort(root *Value) []*Value {
	gen := topoGen.Add(1)
	var order []*Value
	type frame struct {
		node *Value
		next int
	}
	stack := []frame{{root, 0}}
	root.visit = gen
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.parents) {
			p := f.node.parents[f.next]
			f.next++
			if p.requiresGrad && p.visit != gen {
				p.visit = gen
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}

// ReleaseGraph returns the pool-backed buffers of every node reachable from
// roots. Parameters and constants are untouched (their storage is owned by
// the caller); stubs release only their gradient accumulator. None of the
// graph's Values — including the data of non-parameter results — may be
// used afterwards.
func ReleaseGraph(roots ...*Value) {
	gen := topoGen.Add(1)
	var stack []*Value
	for _, r := range roots {
		if r != nil && r.visit != gen {
			r.visit = gen
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range n.parents {
			if p.visit != gen {
				p.visit = gen
				stack = append(stack, p)
			}
		}
		switch n.op {
		case "param", "const":
		case "stub":
			tensor.PutPooled(n.Grad)
			n.Grad = nil
		default:
			tensor.PutPooled(n.Data)
			tensor.PutPooled(n.Grad)
			n.Data, n.Grad = nil, nil
		}
		n.parents = nil
		n.backward = nil
	}
}

// ---------------------------------------------------------------------------
// Arithmetic ops

// Add returns a+b (same shape).
func Add(a, b *Value) *Value {
	out := newResult(a.Data.Rows, a.Data.Cols, "add", a, b)
	tensor.AddInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.ensureGrad(), out.Grad)
		}
	}
	return out
}

// Sub returns a-b (same shape).
func Sub(a, b *Value) *Value {
	out := newResult(a.Data.Rows, a.Data.Cols, "sub", a, b)
	tensor.SubInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
		if b.requiresGrad {
			tensor.AXPY(b.ensureGrad(), -1, out.Grad)
		}
	}
	return out
}

// Mul returns the elementwise product a∘b (same shape).
func Mul(a, b *Value) *Value {
	out := newResult(a.Data.Rows, a.Data.Cols, "mul", a, b)
	tensor.MulInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range out.Grad.Data {
				g.Data[i] += v * b.Data.Data[i]
			}
		}
		if b.requiresGrad {
			g := b.ensureGrad()
			for i, v := range out.Grad.Data {
				g.Data[i] += v * a.Data.Data[i]
			}
		}
	}
	return out
}

// Scale returns c*a for a scalar constant c.
func Scale(a *Value, c float64) *Value {
	out := newResult(a.Data.Rows, a.Data.Cols, "scale", a)
	tensor.ScaleInto(out.Data, a.Data, c)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AXPY(a.ensureGrad(), c, out.Grad)
		}
	}
	return out
}

// AddScalar returns a+c elementwise for a scalar constant c.
func AddScalar(a *Value, c float64) *Value {
	out := newResult(a.Data.Rows, a.Data.Cols, "addscalar", a)
	tensor.ApplyInto(out.Data, a.Data, func(v float64) float64 { return v + c })
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
	}
	return out
}

// MatMul returns a*b.
func MatMul(a, b *Value) *Value {
	out := newResult(a.Data.Rows, b.Data.Cols, "matmul", a, b)
	tensor.MatMulInto(out.Data, a.Data, b.Data, false)
	out.backward = func() {
		// dL/dA = dL/dOut * Bᵀ ; dL/dB = Aᵀ * dL/dOut — accumulated
		// directly into the parent gradients, no temporaries.
		if a.requiresGrad {
			tensor.MatMulABTInto(a.ensureGrad(), out.Grad, b.Data, true)
		}
		if b.requiresGrad {
			tensor.MatMulATBInto(b.ensureGrad(), a.Data, out.Grad, true)
		}
	}
	return out
}

// AddRowVector returns m + v broadcast over rows, where v is 1 x Cols.
// Used for layer biases.
func AddRowVector(m, v *Value) *Value {
	out := newResult(m.Data.Rows, m.Data.Cols, "addrow", m, v)
	tensor.AddRowVectorInto(out.Data, m.Data, v.Data)
	out.backward = func() {
		if m.requiresGrad {
			tensor.AddInPlace(m.ensureGrad(), out.Grad)
		}
		if v.requiresGrad {
			tensor.AddColSums(v.ensureGrad(), out.Grad)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Structural ops

// Gather returns the matrix whose i-th row is table.Row(idx[i]). The
// backward pass scatter-adds gradients into the table, so repeated indices
// accumulate correctly.
func Gather(table *Value, idx []int) *Value {
	out := newResult(len(idx), table.Data.Cols, "gather", table)
	tensor.GatherRowsInto(out.Data, table.Data, idx)
	out.backward = func() {
		if table.requiresGrad {
			tensor.ScatterAddRows(table.ensureGrad(), out.Grad, idx)
		}
	}
	return out
}

// GatherCols returns the matrix whose i-th row is table.Row(idx[i])[lo:hi],
// fusing Gather + SliceCols: per-head lookups into a multi-head table copy
// only the head's rank-r block instead of the full r*H-wide row.
func GatherCols(table *Value, idx []int, lo, hi int) *Value {
	out := newResult(len(idx), hi-lo, "gathercols", table)
	tensor.GatherColsInto(out.Data, table.Data, idx, lo, hi)
	out.backward = func() {
		if table.requiresGrad {
			tensor.ScatterAddCols(table.ensureGrad(), out.Grad, idx, lo)
		}
	}
	return out
}

// ConcatCols returns [a | b].
func ConcatCols(a, b *Value) *Value {
	out := newResult(a.Data.Rows, a.Data.Cols+b.Data.Cols, "concat", a, b)
	tensor.ConcatColsInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i := 0; i < out.Grad.Rows; i++ {
				grow := g.Row(i)
				for j, v := range out.Grad.Row(i)[:a.Data.Cols] {
					grow[j] += v
				}
			}
		}
		if b.requiresGrad {
			g := b.ensureGrad()
			for i := 0; i < out.Grad.Rows; i++ {
				grow := g.Row(i)
				for j, v := range out.Grad.Row(i)[a.Data.Cols:] {
					grow[j] += v
				}
			}
		}
	}
	return out
}

// ConcatConstCols returns [feats | table] where feats is a constant
// side-information matrix and table is a full learned-feature table. It
// fuses the common "concat features with an identity gather of φ" pattern:
// the identity gather is elided and the backward pass adds the right column
// block straight into the table's gradient. feats may be nil, in which case
// the caller should normally just use table directly; it is accepted for
// uniformity and behaves as a zero-width left block.
func ConcatConstCols(feats *tensor.Matrix, table *Value) *Value {
	dw := 0
	if feats != nil {
		if feats.Rows != table.Data.Rows {
			panic(fmt.Sprintf("autodiff: ConcatConstCols rows %d vs %d", feats.Rows, table.Data.Rows))
		}
		dw = feats.Cols
	}
	out := newResult(table.Data.Rows, dw+table.Data.Cols, "concatconst", table)
	for i := 0; i < out.Data.Rows; i++ {
		row := out.Data.Row(i)
		if feats != nil {
			copy(row[:dw], feats.Row(i))
		}
		copy(row[dw:], table.Data.Row(i))
	}
	out.backward = func() {
		if !table.requiresGrad {
			return
		}
		g := table.ensureGrad()
		for i := 0; i < out.Grad.Rows; i++ {
			grow := g.Row(i)
			for j, v := range out.Grad.Row(i)[dw:] {
				grow[j] += v
			}
		}
	}
	return out
}

// SliceCols returns columns [lo,hi) of a.
func SliceCols(a *Value, lo, hi int) *Value {
	out := newResult(a.Data.Rows, hi-lo, "slice", a)
	tensor.SliceColsInto(out.Data, a.Data, lo, hi)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < out.Grad.Rows; i++ {
			grow := g.Row(i)
			for j, v := range out.Grad.Row(i) {
				grow[lo+j] += v
			}
		}
	}
	return out
}

// RowSum returns the Rows x 1 matrix of per-row sums.
func RowSum(a *Value) *Value {
	out := newResult(a.Data.Rows, 1, "rowsum", a)
	a.Data.RowSumsInto(out.Data)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < a.Data.Rows; i++ {
			gi := out.Grad.Data[i]
			row := g.Row(i)
			for j := range row {
				row[j] += gi
			}
		}
	}
	return out
}

// RowDot returns the Rows x 1 matrix of per-row inner products Σ_j a_ij·b_ij.
// It fuses RowSum(Mul(a, b)) — the factorization kernel wᵢᵀpⱼ — avoiding
// the Rows x Cols product intermediate and its gradient.
func RowDot(a, b *Value) *Value {
	out := newResult(a.Data.Rows, 1, "rowdot", a, b)
	tensor.RowDotInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i := 0; i < a.Data.Rows; i++ {
				gi := out.Grad.Data[i]
				if gi == 0 {
					continue
				}
				grow := g.Row(i)
				for j, v := range b.Data.Row(i) {
					grow[j] += gi * v
				}
			}
		}
		if b.requiresGrad {
			g := b.ensureGrad()
			for i := 0; i < b.Data.Rows; i++ {
				gi := out.Grad.Data[i]
				if gi == 0 {
					continue
				}
				grow := g.Row(i)
				for j, v := range a.Data.Row(i) {
					grow[j] += gi * v
				}
			}
		}
	}
	return out
}

// Sum returns the 1x1 sum of all elements.
func Sum(a *Value) *Value {
	out := newResult(1, 1, "sum", a)
	out.Data.Data[0] = a.Data.Sum()
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			v := out.Grad.Data[0]
			for i := range g.Data {
				g.Data[i] += v
			}
		}
	}
	return out
}

// Mean returns the 1x1 mean of all elements.
func Mean(a *Value) *Value {
	n := float64(len(a.Data.Data))
	out := newResult(1, 1, "mean", a)
	out.Data.Data[0] = a.Data.Mean()
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			v := out.Grad.Data[0] / n
			for i := range g.Data {
				g.Data[i] += v
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Activations

// apply1 builds an elementwise op with derivative df expressed in terms of
// the input value x.
func apply1(a *Value, op string, f, df func(float64) float64) *Value {
	out := newResult(a.Data.Rows, a.Data.Cols, op, a)
	tensor.ApplyInto(out.Data, a.Data, f)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, x := range a.Data.Data {
			g.Data[i] += out.Grad.Data[i] * df(x)
		}
	}
	return out
}

// GELU applies the Gaussian Error Linear Unit using the exact erf form
// 0.5*x*(1+erf(x/sqrt2)), matching the paper's architecture.
func GELU(a *Value) *Value {
	const invSqrt2 = 0.7071067811865476
	const invSqrt2Pi = 0.3989422804014327
	return apply1(a, "gelu",
		func(x float64) float64 { return 0.5 * x * (1 + math.Erf(x*invSqrt2)) },
		func(x float64) float64 {
			cdf := 0.5 * (1 + math.Erf(x*invSqrt2))
			return cdf + x*invSqrt2Pi*math.Exp(-0.5*x*x)
		})
}

// ReLU applies max(x, 0).
func ReLU(a *Value) *Value {
	return apply1(a, "relu",
		func(x float64) float64 { return math.Max(x, 0) },
		func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// LeakyReLU applies x for x>0 and slope*x otherwise. The paper uses
// slope=0.1 for the interference activation α.
func LeakyReLU(a *Value, slope float64) *Value {
	return apply1(a, "leakyrelu",
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return slope * x
		},
		func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return slope
		})
}

// Tanh applies the hyperbolic tangent.
func Tanh(a *Value) *Value {
	return apply1(a, "tanh", math.Tanh,
		func(x float64) float64 { th := math.Tanh(x); return 1 - th*th })
}

// Sigmoid applies the logistic function.
func Sigmoid(a *Value) *Value {
	sig := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	return apply1(a, "sigmoid", sig,
		func(x float64) float64 { s := sig(x); return s * (1 - s) })
}

// Exp applies e^x elementwise.
func Exp(a *Value) *Value {
	return apply1(a, "exp", math.Exp, math.Exp)
}

// Square applies x² elementwise.
func Square(a *Value) *Value {
	return apply1(a, "square",
		func(x float64) float64 { return x * x },
		func(x float64) float64 { return 2 * x })
}

// Abs applies |x| elementwise (subgradient 0 at x=0).
func Abs(a *Value) *Value {
	return apply1(a, "abs", math.Abs,
		func(x float64) float64 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			}
			return 0
		})
}

// Softmax applies a row-wise softmax; used by the attention baseline.
func Softmax(a *Value) *Value {
	out := newResult(a.Data.Rows, a.Data.Cols, "softmax", a)
	data := out.Data
	for i := 0; i < a.Data.Rows; i++ {
		row := a.Data.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		orow := data.Row(i)
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < a.Data.Rows; i++ {
			s := out.Data.Row(i)
			og := out.Grad.Row(i)
			// dL/dx_j = s_j * (og_j - Σ_k og_k s_k)
			var dot float64
			for k, v := range og {
				dot += v * s[k]
			}
			grow := g.Row(i)
			for j := range grow {
				grow[j] += s[j] * (og[j] - dot)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Losses

// MSE returns the 1x1 mean of (pred-target)² over all elements. target is
// treated as a constant.
func MSE(pred *Value, target *tensor.Matrix) *Value {
	if pred.Data.Rows != target.Rows || pred.Data.Cols != target.Cols {
		panic(fmt.Sprintf("autodiff: MSE shapes %dx%d vs %dx%d",
			pred.Data.Rows, pred.Data.Cols, target.Rows, target.Cols))
	}
	n := float64(len(target.Data))
	var loss float64
	for i, p := range pred.Data.Data {
		d := p - target.Data[i]
		loss += d * d
	}
	loss /= n
	out := newResult(1, 1, "mse", pred)
	out.Data.Data[0] = loss
	out.backward = func() {
		if !pred.requiresGrad {
			return
		}
		g := pred.ensureGrad()
		c := 2 * out.Grad.Data[0] / n
		for i, p := range pred.Data.Data {
			g.Data[i] += c * (p - target.Data[i])
		}
	}
	return out
}

// WeightedMSE is MSE with a per-element weight matrix (constant).
func WeightedMSE(pred *Value, target, weight *tensor.Matrix) *Value {
	n := float64(len(target.Data))
	var loss float64
	for i, p := range pred.Data.Data {
		d := p - target.Data[i]
		loss += weight.Data[i] * d * d
	}
	loss /= n
	out := newResult(1, 1, "wmse", pred)
	out.Data.Data[0] = loss
	out.backward = func() {
		if !pred.requiresGrad {
			return
		}
		g := pred.ensureGrad()
		c := 2 * out.Grad.Data[0] / n
		for i, p := range pred.Data.Data {
			g.Data[i] += c * weight.Data[i] * (p - target.Data[i])
		}
	}
	return out
}

// Pinball returns the 1x1 mean pinball (quantile) loss at quantile xi:
//
//	xi*(target-pred)      if target > pred
//	(1-xi)*(pred-target)  otherwise
//
// Minimizing it estimates the xi-quantile of target | pred's inputs
// (Koenker & Bassett 1978), as used by CQR (paper Eq. 13).
func Pinball(pred *Value, target *tensor.Matrix, xi float64) *Value {
	if pred.Data.Rows != target.Rows || pred.Data.Cols != target.Cols {
		panic(fmt.Sprintf("autodiff: Pinball shapes %dx%d vs %dx%d",
			pred.Data.Rows, pred.Data.Cols, target.Rows, target.Cols))
	}
	n := float64(len(target.Data))
	var loss float64
	for i, p := range pred.Data.Data {
		d := target.Data[i] - p
		if d > 0 {
			loss += xi * d
		} else {
			loss += (xi - 1) * d
		}
	}
	loss /= n
	out := newResult(1, 1, "pinball", pred)
	out.Data.Data[0] = loss
	out.backward = func() {
		if !pred.requiresGrad {
			return
		}
		g := pred.ensureGrad()
		c := out.Grad.Data[0] / n
		for i, p := range pred.Data.Data {
			if target.Data[i] > p {
				g.Data[i] += -xi * c
			} else {
				g.Data[i] += (1 - xi) * c
			}
		}
	}
	return out
}

// Scalar extracts the single element of a 1x1 Value.
func (v *Value) Scalar() float64 {
	if v.Data.Rows != 1 || v.Data.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on %dx%d", v.Data.Rows, v.Data.Cols))
	}
	return v.Data.Data[0]
}
