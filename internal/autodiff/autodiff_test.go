package autodiff

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randMat(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// numericalGrad computes the finite-difference gradient of loss(params) with
// respect to param, where build reconstructs the scalar loss from scratch
// (so perturbations propagate).
func numericalGrad(param *tensor.Matrix, build func() float64) *tensor.Matrix {
	const h = 1e-6
	g := tensor.New(param.Rows, param.Cols)
	for i := range param.Data {
		orig := param.Data[i]
		param.Data[i] = orig + h
		up := build()
		param.Data[i] = orig - h
		down := build()
		param.Data[i] = orig
		g.Data[i] = (up - down) / (2 * h)
	}
	return g
}

// checkGrad verifies analytic vs numerical gradients for a graph builder.
func checkGrad(t *testing.T, name string, params []*tensor.Matrix, build func(vals []*Value) *Value) {
	t.Helper()
	vals := make([]*Value, len(params))
	for i, p := range params {
		vals[i] = NewParam(p)
	}
	loss := build(vals)
	loss.Backward()
	for i, p := range params {
		num := numericalGrad(p, func() float64 {
			vs := make([]*Value, len(params))
			for j, q := range params {
				vs[j] = NewParam(q)
			}
			return build(vs).Scalar()
		})
		if !tensor.Equal(vals[i].Grad, num, 1e-4) {
			t.Errorf("%s param %d: analytic %v != numerical %v", name, i, vals[i].Grad, num)
		}
	}
}

func TestGradAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randMat(rng, 3, 2), randMat(rng, 3, 2)
	checkGrad(t, "add", []*tensor.Matrix{a, b}, func(v []*Value) *Value {
		return Sum(Add(v[0], v[1]))
	})
}

func TestGradSub(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 2, 3), randMat(rng, 2, 3)
	checkGrad(t, "sub", []*tensor.Matrix{a, b}, func(v []*Value) *Value {
		return Sum(Square(Sub(v[0], v[1])))
	})
}

func TestGradMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randMat(rng, 2, 2), randMat(rng, 2, 2)
	checkGrad(t, "mul", []*tensor.Matrix{a, b}, func(v []*Value) *Value {
		return Sum(Mul(v[0], v[1]))
	})
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randMat(rng, 3, 4), randMat(rng, 4, 2)
	checkGrad(t, "matmul", []*tensor.Matrix{a, b}, func(v []*Value) *Value {
		return Sum(Square(MatMul(v[0], v[1])))
	})
}

func TestGradAddRowVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, bias := randMat(rng, 4, 3), randMat(rng, 1, 3)
	checkGrad(t, "addrow", []*tensor.Matrix{m, bias}, func(v []*Value) *Value {
		return Sum(Square(AddRowVector(v[0], v[1])))
	})
}

func TestGradGather(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	table := randMat(rng, 5, 3)
	idx := []int{4, 1, 1, 0} // repeated index exercises scatter-accumulation
	checkGrad(t, "gather", []*tensor.Matrix{table}, func(v []*Value) *Value {
		return Sum(Square(Gather(v[0], idx)))
	})
}

func TestGradConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randMat(rng, 3, 2), randMat(rng, 3, 3)
	checkGrad(t, "concat+slice", []*tensor.Matrix{a, b}, func(v []*Value) *Value {
		c := ConcatCols(v[0], v[1])
		left := SliceCols(c, 0, 3)
		return Sum(Square(left))
	})
}

func TestGradRowSum(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 4, 3)
	checkGrad(t, "rowsum", []*tensor.Matrix{a}, func(v []*Value) *Value {
		return Sum(Square(RowSum(v[0])))
	})
}

func TestGradMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 3, 3)
	checkGrad(t, "mean", []*tensor.Matrix{a}, func(v []*Value) *Value {
		return Mean(Square(v[0]))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct {
		name string
		f    func(*Value) *Value
	}{
		{"gelu", GELU},
		{"relu", ReLU},
		{"leakyrelu", func(v *Value) *Value { return LeakyReLU(v, 0.1) }},
		{"tanh", Tanh},
		{"sigmoid", Sigmoid},
		{"exp", Exp},
		{"square", Square},
		{"softmax", Softmax},
	}
	for _, c := range cases {
		a := randMat(rng, 3, 4)
		// Shift away from 0 to avoid the ReLU kink breaking finite differences.
		for i := range a.Data {
			if math.Abs(a.Data[i]) < 0.05 {
				a.Data[i] += 0.2
			}
		}
		checkGrad(t, c.name, []*tensor.Matrix{a}, func(v []*Value) *Value {
			return Sum(Square(c.f(v[0])))
		})
	}
}

func TestGradAbs(t *testing.T) {
	a := tensor.FromSlice(1, 3, []float64{-2, 3, -0.5})
	checkGrad(t, "abs", []*tensor.Matrix{a}, func(v []*Value) *Value {
		return Sum(Abs(v[0]))
	})
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pred, target := randMat(rng, 5, 1), randMat(rng, 5, 1)
	checkGrad(t, "mse", []*tensor.Matrix{pred}, func(v []*Value) *Value {
		return MSE(v[0], target)
	})
}

func TestGradWeightedMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pred, target := randMat(rng, 4, 1), randMat(rng, 4, 1)
	w := tensor.FromSlice(4, 1, []float64{1, 0.5, 2, 0})
	checkGrad(t, "wmse", []*tensor.Matrix{pred}, func(v []*Value) *Value {
		return WeightedMSE(v[0], target, w)
	})
}

func TestGradPinball(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, xi := range []float64{0.1, 0.5, 0.9, 0.99} {
		pred, target := randMat(rng, 6, 1), randMat(rng, 6, 1)
		checkGrad(t, "pinball", []*tensor.Matrix{pred}, func(v []*Value) *Value {
			return Pinball(v[0], target, xi)
		})
	}
}

func TestGradSharedSubexpression(t *testing.T) {
	// x used twice: d/dx sum(x∘x + x) = 2x + 1.
	x := tensor.FromSlice(1, 3, []float64{1, -2, 3})
	v := NewParam(x)
	loss := Sum(Add(Mul(v, v), v))
	loss.Backward()
	want := tensor.FromSlice(1, 3, []float64{3, -3, 7})
	if !tensor.Equal(v.Grad, want, 1e-12) {
		t.Fatalf("shared-subexpression grad %v want %v", v.Grad, want)
	}
}

func TestGradDeepChain(t *testing.T) {
	// A long chain must not blow the stack and must stay correct:
	// f(x) = x scaled by 0.999^N, gradient is 0.999^N.
	x := tensor.FromSlice(1, 1, []float64{2})
	v := NewParam(x)
	cur := v
	const n = 5000
	for i := 0; i < n; i++ {
		cur = Scale(cur, 0.999)
	}
	Sum(cur).Backward()
	want := math.Pow(0.999, n)
	if math.Abs(v.Grad.Data[0]-want) > 1e-9 {
		t.Fatalf("deep chain grad %v want %v", v.Grad.Data[0], want)
	}
}

func TestConstantsGetNoGrad(t *testing.T) {
	c := NewConst(tensor.FromSlice(1, 2, []float64{1, 2}))
	p := NewParam(tensor.FromSlice(1, 2, []float64{3, 4}))
	loss := Sum(Mul(c, p))
	loss.Backward()
	if c.Grad != nil && c.Grad.MaxAbs() != 0 {
		t.Fatal("constant accumulated gradient")
	}
	if !tensor.Equal(p.Grad, tensor.FromSlice(1, 2, []float64{1, 2}), 1e-12) {
		t.Fatalf("param grad %v", p.Grad)
	}
}

func TestZeroGrad(t *testing.T) {
	p := NewParam(tensor.FromSlice(1, 1, []float64{5}))
	Sum(Square(p)).Backward()
	if p.Grad.Data[0] == 0 {
		t.Fatal("no grad accumulated")
	}
	p.ZeroGrad()
	if p.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestGradAccumulatesAcrossBackward(t *testing.T) {
	p := NewParam(tensor.FromSlice(1, 1, []float64{3}))
	Sum(Square(p)).Backward() // grad 6
	Sum(Square(p)).Backward() // grad 12
	if math.Abs(p.Grad.Data[0]-12) > 1e-12 {
		t.Fatalf("grad %v want 12 (accumulated)", p.Grad.Data[0])
	}
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewParam(tensor.New(2, 2)).Backward()
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%6)+1, int(c8%6)+1
		s := Softmax(NewConst(randMat(rng, r, c)))
		for i := 0; i < r; i++ {
			var sum float64
			for _, v := range s.Data.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Pinball at xi=0.5 equals half the mean absolute error.
func TestPinballHalfMAE(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pred := NewConst(randMat(rng, 10, 1))
	target := randMat(rng, 10, 1)
	pb := Pinball(pred, target, 0.5).Scalar()
	var mae float64
	for i, p := range pred.Data.Data {
		mae += math.Abs(target.Data[i] - p)
	}
	mae /= 10
	if math.Abs(pb-mae/2) > 1e-12 {
		t.Fatalf("pinball(0.5)=%v, mae/2=%v", pb, mae/2)
	}
}

// GELU must match known reference values.
func TestGELUReference(t *testing.T) {
	in := NewConst(tensor.FromSlice(1, 3, []float64{0, 1, -1}))
	out := GELU(in)
	want := []float64{0, 0.8413447460685429, -0.15865525393145707}
	for i, w := range want {
		if math.Abs(out.Data.Data[i]-w) > 1e-12 {
			t.Fatalf("gelu[%d]=%v want %v", i, out.Data.Data[i], w)
		}
	}
}

func TestEndToEndTwoTowerGradient(t *testing.T) {
	// A miniature two-tower + interference graph, exactly the composition
	// used by the Pitot model, gradient-checked end to end.
	rng := rand.New(rand.NewSource(16))
	wTable := randMat(rng, 4, 3) // 4 workload embeddings, r=3
	pTable := randMat(rng, 3, 3) // 3 platform embeddings
	vs := randMat(rng, 3, 3)     // susceptibility per platform
	vg := randMat(rng, 3, 3)     // magnitude per platform
	target := randMat(rng, 2, 1)
	wi := []int{0, 2}
	pj := []int{1, 0}
	wk := []int{3, 1}

	build := func(v []*Value) *Value {
		w := Gather(v[0], wi)
		p := Gather(v[1], pj)
		base := RowSum(Mul(w, p))
		sus := RowSum(Mul(w, Gather(v[2], pj)))
		mag := RowSum(Mul(Gather(v[0], wk), Gather(v[3], pj)))
		interf := Mul(sus, LeakyReLU(mag, 0.1))
		return MSE(Add(base, interf), target)
	}
	checkGrad(t, "two-tower", []*tensor.Matrix{wTable, pTable, vs, vg}, build)
}

func BenchmarkBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	x := NewConst(randMat(rng, 256, 64))
	w1 := NewParam(randMat(rng, 64, 128))
	b1 := NewParam(randMat(rng, 1, 128))
	w2 := NewParam(randMat(rng, 128, 128))
	b2 := NewParam(randMat(rng, 1, 128))
	w3 := NewParam(randMat(rng, 128, 32))
	target := randMat(rng, 256, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := GELU(AddRowVector(MatMul(x, w1), b1))
		h = GELU(AddRowVector(MatMul(h, w2), b2))
		loss := MSE(MatMul(h, w3), target)
		loss.Backward()
		w1.ZeroGrad()
		b1.ZeroGrad()
		w2.ZeroGrad()
		b2.ZeroGrad()
		w3.ZeroGrad()
	}
}

func TestGradRowDot(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a, b := randMat(rng, 5, 4), randMat(rng, 5, 4)
	checkGrad(t, "rowdot", []*tensor.Matrix{a, b}, func(v []*Value) *Value {
		return Sum(Square(RowDot(v[0], v[1])))
	})
}

func TestRowDotMatchesRowSumMul(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	aM, bM := randMat(rng, 6, 3), randMat(rng, 6, 3)
	a1, b1 := NewParam(aM.Clone()), NewParam(bM.Clone())
	a2, b2 := NewParam(aM.Clone()), NewParam(bM.Clone())
	fused := RowDot(a1, b1)
	unfused := RowSum(Mul(a2, b2))
	if !tensor.Equal(fused.Data, unfused.Data, 1e-12) {
		t.Fatal("RowDot forward diverges from RowSum(Mul)")
	}
	Sum(Square(fused)).Backward()
	Sum(Square(unfused)).Backward()
	if !tensor.Equal(a1.Grad, a2.Grad, 1e-12) || !tensor.Equal(b1.Grad, b2.Grad, 1e-12) {
		t.Fatal("RowDot backward diverges from RowSum(Mul)")
	}
}

func TestGradGatherCols(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	table := randMat(rng, 5, 6)
	idx := []int{4, 1, 1, 0} // repeated index exercises scatter-accumulation
	checkGrad(t, "gathercols", []*tensor.Matrix{table}, func(v []*Value) *Value {
		return Sum(Square(GatherCols(v[0], idx, 2, 5)))
	})
}

func TestGatherColsMatchesGatherSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tM := randMat(rng, 7, 8)
	idx := []int{6, 2, 2, 5}
	t1, t2 := NewParam(tM.Clone()), NewParam(tM.Clone())
	fused := GatherCols(t1, idx, 3, 7)
	unfused := SliceCols(Gather(t2, idx), 3, 7)
	if !tensor.Equal(fused.Data, unfused.Data, 0) {
		t.Fatal("GatherCols forward diverges from Gather+SliceCols")
	}
	Sum(Square(fused)).Backward()
	Sum(Square(unfused)).Backward()
	if !tensor.Equal(t1.Grad, t2.Grad, 1e-12) {
		t.Fatal("GatherCols backward diverges from Gather+SliceCols")
	}
}

func TestGradConcatConstCols(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	feats := randMat(rng, 4, 3)
	table := randMat(rng, 4, 2)
	checkGrad(t, "concatconst", []*tensor.Matrix{table}, func(v []*Value) *Value {
		return Sum(Square(ConcatConstCols(feats, v[0])))
	})
	// Forward must match the unfused ConcatCols of const + identity gather.
	p := NewParam(table)
	all := []int{0, 1, 2, 3}
	want := ConcatCols(NewConst(feats), Gather(p, all))
	got := ConcatConstCols(feats, p)
	if !tensor.Equal(got.Data, want.Data, 0) {
		t.Fatal("ConcatConstCols forward diverges")
	}
	// nil feats degenerates to an identity view of the table.
	if g := ConcatConstCols(nil, p); !tensor.Equal(g.Data, table, 0) {
		t.Fatal("ConcatConstCols(nil, table) should equal table")
	}
}

func TestStubBackwardSeededMatchesMonolithic(t *testing.T) {
	// Differentiating loss = sum((x*w)∘(x*w)) through a stub cut at h=x*w
	// must equal differentiating the monolithic graph.
	rng := rand.New(rand.NewSource(23))
	xM, wM := randMat(rng, 4, 3), randMat(rng, 3, 5)

	wMono := NewParam(wM.Clone())
	hMono := MatMul(NewConst(xM), wMono)
	Sum(Square(hMono)).Backward()

	wCut := NewParam(wM.Clone())
	h := MatMul(NewConst(xM), wCut)
	stub := Stub(h)
	loss := Sum(Square(stub))
	loss.ensureGrad().Data[0] = 1
	loss.BackwardSeeded()
	tensor.AddInPlace(h.ensureGrad(), stub.Grad)
	h.BackwardSeeded()

	if !tensor.Equal(wMono.Grad, wCut.Grad, 1e-12) {
		t.Fatalf("stub-cut grad %v != monolithic %v", wCut.Grad, wMono.Grad)
	}
}

func TestConcurrentDisjointBackward(t *testing.T) {
	// Disjoint graphs must be differentiable concurrently (the parallel
	// per-degree training path); run under -race to verify.
	rng := rand.New(rand.NewSource(24))
	base := randMat(rng, 8, 8)
	var wg sync.WaitGroup
	grads := make([]*tensor.Matrix, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewParam(base.Clone())
			Sum(Square(Gather(p, []int{1, 3, 3}))).Backward()
			grads[g] = p.Grad
		}(g)
	}
	wg.Wait()
	for g := 1; g < 16; g++ {
		if !tensor.Equal(grads[g], grads[0], 0) {
			t.Fatal("concurrent backward nondeterministic")
		}
	}
}

func TestReleaseGraphRecyclesAndPreservesLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	xM := randMat(rng, 4, 4)
	p := NewParam(xM.Clone())
	c := NewConst(xM)
	h := Mul(p, c)
	stub := Stub(h)
	loss := Sum(Square(stub))
	loss.Backward()
	gradBefore := p.Grad.Clone()
	ReleaseGraph(loss, h)
	if p.Data == nil || p.Grad == nil || !tensor.Equal(p.Grad, gradBefore, 0) {
		t.Fatal("ReleaseGraph touched parameter storage")
	}
	if c.Data == nil {
		t.Fatal("ReleaseGraph touched constant storage")
	}
	if stub.Grad != nil || h.Data != nil || loss.Data != nil {
		t.Fatal("ReleaseGraph left interior buffers live")
	}
}

// The pooled graph engine must not allocate fresh matrix storage once the
// pool is warm: only the fixed per-node bookkeeping (Value structs, slices,
// closures) remains.
func TestPooledGraphSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	x := NewConst(randMat(rng, 128, 32))
	w := NewParam(randMat(rng, 32, 32))
	step := func() {
		h := GELU(MatMul(x, w))
		loss := Mean(Square(RowDot(h, x)))
		loss.Backward()
		w.ZeroGrad()
		ReleaseGraph(loss)
	}
	step() // warm the pool
	allocs := testing.AllocsPerRun(20, step)
	// 6 graph nodes of fixed bookkeeping each; matrix payloads (128x32
	// floats = 32 KiB per op) must all come from the pool. The bound is
	// deliberately loose on node-count bookkeeping but far below a single
	// payload allocation.
	if allocs > 60 {
		t.Fatalf("pooled graph step allocates %v objects; pool not effective", allocs)
	}
}
