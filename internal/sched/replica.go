package sched

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// platformView is a replica's local snapshot of one platform: the version
// it scored against plus everything placement needs (resident workloads,
// load, effective cap, health). Views refresh at chunk start, after the
// replica's own commits, and on reserve conflicts — never mid-selection,
// so a chunk's decisions are a pure function of its snapshots.
type platformView struct {
	ver       uint64
	ks        []int
	load      int
	cap       int
	placeable bool
	degraded  bool
}

// Replica is one scheduler frontend of a ReplicaSet: it scores waves
// against a private snapshot of the shared SlotStore and commits each
// placement with an optimistic slot reservation. A version conflict at
// commit (another replica placed, a completion landed, a health event
// fired) refreshes the platform's view, re-scores the affected column, and
// retries selection with bounded backoff, up to MaxCommitRetries before the
// job is shed with ReasonConflict.
//
// With one replica and no concurrent store mutations, placements are
// bitwise identical to Scheduler.PlaceAll: the snapshot/pre-score/select/
// dirty-re-score sequence is the same algorithm over the same shared
// selection helpers, and conflict paths never execute.
//
// A Replica is safe for concurrent use; concurrent PlaceAll calls on the
// same replica serialize on its private mutex (use distinct replicas for
// parallel placement).
type Replica struct {
	set *ReplicaSet
	idx int

	mu      sync.Mutex
	views   []platformView // indexed by platform
	slotOf  []int          // platform -> shard slot for the current chunk
	scratch waveScratch

	commits   atomic.Uint64
	conflicts atomic.Uint64
	shed      atomic.Uint64

	// chunkGap, when non-nil, runs between chunk placements (test hook,
	// mirroring Scheduler.chunkGap).
	chunkGap func()
}

// PlaceAll places a wave of jobs in arrival order through this replica,
// chunked like Scheduler.PlaceAll: each chunk snapshots the replica's
// shard, pre-scores platform-major in one batched call, and commits
// per-job reservations against those snapshots.
func (r *Replica) PlaceAll(jobs []Job) []Assignment {
	// Same per-site observability guards as Scheduler.PlaceAll: the
	// disabled path never calls time.Now.
	met := r.set.met
	var waveStart time.Time
	if met != nil {
		waveStart = time.Now()
		met.WaveSize.Observe(float64(len(jobs)))
	}
	out := make([]Assignment, len(jobs))
	chunk := r.set.chunk
	if chunk < 0 || chunk > len(jobs) {
		chunk = len(jobs)
	}
	for lo := 0; lo < len(jobs); lo += chunk {
		hi := lo + chunk
		if hi > len(jobs) {
			hi = len(jobs)
		}
		r.mu.Lock()
		var holdStart time.Time
		if met != nil {
			holdStart = time.Now()
		}
		r.placeChunk(jobs[lo:hi], out[lo:hi])
		if met != nil {
			met.ChunkHold.ObserveSince(holdStart)
		}
		r.mu.Unlock()
		r.set.noteChunk()
		if r.chunkGap != nil && hi < len(jobs) {
			r.chunkGap()
		}
	}
	if met != nil {
		met.WavePlace.ObserveSince(waveStart)
	}
	return out
}

// Place assigns one job through this replica.
func (r *Replica) Place(job Job) Assignment {
	return r.PlaceAll([]Job{job})[0]
}

// refreshView rebuilds platform p's view from the store's current state.
func (r *Replica) refreshView(p int) {
	st := r.set.store.load(p)
	r.views[p] = platformView{
		ver:       st.version,
		ks:        st.workloads(),
		load:      len(st.residents),
		cap:       st.colocCap(r.set.store.maxColocation),
		placeable: st.state.Placeable(),
		degraded:  st.state == Degraded,
	}
}

// adoptCommit updates platform p's view from the state a successful
// reservation returned: the committed resident set is exactly what the
// chunk's remaining jobs must be scored against (the scheduler's
// residentWorkloadsLocked-after-commit refresh).
func (r *Replica) adoptCommit(p int, st *platformSlots) {
	r.views[p] = platformView{
		ver:       st.version,
		ks:        st.workloads(),
		load:      len(st.residents),
		cap:       st.colocCap(r.set.store.maxColocation),
		placeable: st.state.Placeable(),
		degraded:  st.state == Degraded,
	}
}

// placeChunk places one chunk of jobs under the replica mutex, filling
// out[i] for jobs[i]. The structure mirrors Scheduler.placeWaveLocked with
// the shard's view snapshots standing in for the locked cluster state.
func (r *Replica) placeChunk(jobs []Job, out []Assignment) {
	set := r.set
	shard := set.shardFor(r.idx)
	if r.views == nil {
		r.views = make([]platformView, set.cfg.NumPlatforms)
		r.slotOf = make([]int, set.cfg.NumPlatforms)
	}
	for si, p := range shard {
		r.refreshView(p)
		r.slotOf[p] = si
	}
	if set.bpred == nil {
		for i, j := range jobs {
			out[i] = r.placeOne(j, shard)
		}
		return
	}

	dual := set.dpolicy != nil
	nS, nJ := len(shard), len(jobs)
	sc := &r.scratch
	sc.reserve(nS, nJ)

	// Chunk pre-score against the snapshot state, one batched call, queries
	// platform-major in ascending platform order (shards are kept sorted) —
	// the same query sequence the scheduler would issue over this platform
	// set, so scores are bitwise identical.
	qs := sc.qs[:0]
	prescored := sc.prescored[:nS]
	for si, p := range shard {
		v := &r.views[p]
		prescored[si] = false
		if !v.placeable || v.load >= v.cap {
			continue
		}
		prescored[si] = true
		if set.cache != nil {
			continue // the memoized path builds per-column queries itself
		}
		for j := range jobs {
			qs = append(qs, Query{Workload: jobs[j].Workload, Platform: p, Interferers: v.ks})
		}
	}
	scoreAt := sc.scoreAt[:nS*nJ]
	rankAt := sc.rankAt[:nS*nJ]
	if set.cache != nil {
		r.prescoreChunkCached(jobs, shard, prescored, scoreAt, rankAt, dual)
	} else {
		pre := sc.pre[:len(qs)]
		preRank := sc.preRank[:len(qs)]
		var scoreStart time.Time
		if set.met != nil {
			scoreStart = time.Now()
		}
		if dual {
			set.dpolicy.ScoreDualBatch(set.bpred, qs, pre, preRank)
		} else {
			set.bpolicy.ScoreBatch(set.bpred, qs, pre)
		}
		if set.met != nil {
			set.met.ScoreBatch.ObserveSince(scoreStart)
		}
		if set.rec != nil {
			set.rec.Record(obs.Event{Kind: obs.EvScore, Platform: -1, N: int32(nJ),
				Version: set.snapVersion()})
		}
		next := 0
		for si := 0; si < nS; si++ {
			if !prescored[si] {
				for j := 0; j < nJ; j++ {
					scoreAt[si*nJ+j] = math.NaN()
				}
				continue
			}
			copy(scoreAt[si*nJ:(si+1)*nJ], pre[next:next+nJ])
			if dual {
				copy(rankAt[si*nJ:(si+1)*nJ], preRank[next:next+nJ])
			}
			next += nJ
		}
	}

	cands := sc.cands[:0]
	snaps := sc.snaps[:0]
	for j, job := range jobs {
		if set.store.maxInFlight > 0 && set.store.InFlight() >= set.store.maxInFlight {
			out[j] = Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Rejected: true, Reason: ReasonAdmission}
			continue
		}
		retries := 0
		for {
			cands, snaps = cands[:0], snaps[:0]
			placeable := 0
			for si, p := range shard {
				v := &r.views[p]
				if !v.placeable {
					continue
				}
				placeable++
				if v.load+1 > v.cap {
					continue
				}
				c := Candidate{
					Platform: p,
					Load:     v.load,
					Score:    scoreAt[si*nJ+j],
					Degraded: v.degraded,
				}
				if dual {
					c.Rank = rankAt[si*nJ+j]
				} else {
					c.Rank = c.Score
				}
				cands = append(cands, c)
				snaps = append(snaps, v.ks)
			}
			padDegradedCands(cands, set.degradedPenalty)
			bi := bestCandidate(set.strategy, job, cands)
			if bi < 0 {
				out[j] = Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Reason: unplacedReason(placeable, len(cands))}
				break
			}
			p := cands[bi].Platform
			id, st, status := set.store.reserve(p, r.views[p].ver, job)
			if status == reserveOK {
				r.commits.Add(1)
				if set.rec != nil {
					set.rec.Record(obs.Event{Kind: obs.EvPlace, Job: uint64(id), ID: uint64(id),
						Platform: int32(p), Version: set.snapVersion()})
				}
				out[j] = Assignment{
					ID:          id,
					Job:         job,
					Platform:    p,
					Budget:      cands[bi].Score,
					Interferers: snaps[bi],
				}
				r.adoptCommit(p, st)
				if j+1 < nJ && r.views[p].load < r.views[p].cap {
					r.rescoreColumn(p, jobs, j+1, scoreAt, rankAt)
				}
				break
			}
			if status == reserveAdmission {
				out[j] = Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Rejected: true, Reason: ReasonAdmission}
				break
			}
			// Conflict: our snapshot of p went stale. Refresh from the state
			// the store returned, re-score p's remaining column, and retry
			// the selection — the refreshed view may demote p or crown a
			// different winner.
			r.conflicts.Add(1)
			retries++
			if set.rec != nil {
				set.rec.Record(obs.Event{Kind: obs.EvConflict, Platform: int32(p),
					N: int32(retries), Version: set.snapVersion()})
			}
			if retries > set.maxRetries {
				r.shed.Add(1)
				if set.rec != nil {
					set.rec.Record(obs.Event{Kind: obs.EvShed, Reason: obs.ReasonConflict,
						Platform: int32(p), N: int32(retries), Version: set.snapVersion()})
				}
				out[j] = Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Reason: ReasonConflict}
				break
			}
			set.backoff(retries)
			r.adoptCommit(p, st)
			if r.views[p].placeable && r.views[p].load < r.views[p].cap {
				r.rescoreColumn(p, jobs, j, scoreAt, rankAt)
			} else {
				si := r.slotOf[p]
				for jj := j; jj < nJ; jj++ {
					scoreAt[si*nJ+jj] = math.NaN()
				}
			}
		}
	}
}

// prescoreChunkCached is placeChunk's memoized pre-score, mirroring
// Scheduler.prescoreCachedLocked over the shard's view snapshots: the
// chunk's jobs dedup to distinct workloads once, then each prescored
// platform's column is served through the shared cross-wave cache keyed on
// the view's SlotStore version — the same versions the optimistic commit
// protocol already validates at reserve time, so a cached column is
// provably the one this view would have scored.
func (r *Replica) prescoreChunkCached(jobs []Job, shard []int, prescored []bool, scoreAt, rankAt []float64, dual bool) {
	set := r.set
	nJ := len(jobs)
	sc := &r.scratch
	sc.reserveCache(len(shard), nJ)
	distinct, nD := dedupJobs(jobs, 0, sc.distinct, sc.dIdx)
	sc.distinct = distinct
	epoch := set.epoch()
	cached := 0
	qs := sc.colQ[:0]
	missAt := sc.missW[:0] // flat column-grid index (si*nD+d) per miss
	for si, p := range shard {
		if !prescored[si] {
			for j := 0; j < nJ; j++ {
				scoreAt[si*nJ+j] = math.NaN()
			}
			continue
		}
		v := &r.views[p]
		base := si * nD
		feas := sc.colFeas[base : base+nD]
		rank := sc.colRank[base : base+nD]
		hit := sc.colHit[base : base+nD]
		var lookStart time.Time
		if set.met != nil {
			lookStart = time.Now()
		}
		nHit := set.cache.lookup(p, v.ver, epoch, distinct, feas, rank, hit)
		if set.met != nil {
			set.met.CacheLookup.ObserveSince(lookStart)
		}
		cached += nHit
		if nHit == nD {
			continue
		}
		for d, w := range distinct {
			if !hit[d] {
				qs = append(qs, Query{Workload: w, Platform: p, Interferers: v.ks})
				missAt = append(missAt, base+d)
			}
		}
	}
	if len(qs) > 0 {
		missFeas := sc.missFeas[:len(qs)]
		missRank := sc.missRank[:len(qs)]
		var scoreStart time.Time
		if set.met != nil {
			scoreStart = time.Now()
		}
		if dual {
			set.dpolicy.ScoreDualBatch(set.bpred, qs, missFeas, missRank)
		} else {
			set.bpolicy.ScoreBatch(set.bpred, qs, missFeas)
			copy(missRank, missFeas)
		}
		if set.met != nil {
			set.met.ScoreBatch.ObserveSince(scoreStart)
		}
		for i, at := range missAt {
			sc.colFeas[at], sc.colRank[at] = missFeas[i], missRank[i]
		}
		// One whole-column store per refreshed column; already-cached
		// entries are skipped by the insert guard.
		prev := -1
		for i, at := range missAt {
			si := at / nD
			if si == prev {
				continue
			}
			prev = si
			base := si * nD
			s := set.cache
			s.store(qs[i].Platform, r.views[qs[i].Platform].ver, epoch, distinct,
				sc.colFeas[base:base+nD], sc.colRank[base:base+nD])
		}
	}
	for si := range shard {
		if !prescored[si] {
			continue
		}
		base := si * nD
		for j := 0; j < nJ; j++ {
			d := sc.dIdx[j]
			scoreAt[si*nJ+j] = sc.colFeas[base+d]
			if dual {
				rankAt[si*nJ+j] = sc.colRank[base+d]
			}
		}
	}
	if set.rec != nil {
		set.rec.Record(obs.Event{Kind: obs.EvScore, Platform: -1, N: int32(nJ),
			Cached: int32(cached), Version: set.snapVersion()})
	}
}

// rescoreColumn re-scores platform p for jobs[from:] against the view's
// refreshed residents in one batched span, updating the chunk's score
// table — the scheduler's dirty-platform re-score. On the memoized path
// the column goes through the cache under the view's refreshed version:
// after a conflict refresh the column another replica just scored (and
// cached) for the same state is served without touching the predictor.
func (r *Replica) rescoreColumn(p int, jobs []Job, from int, scoreAt, rankAt []float64) {
	set := r.set
	dual := set.dpolicy != nil
	nJ := len(jobs)
	si := r.slotOf[p]
	ks := r.views[p].ks
	sc := &r.scratch
	if set.cache != nil {
		distinct, nD := dedupJobs(jobs, from, sc.distinct, sc.dIdx)
		sc.distinct = distinct
		feas := sc.colFeas[:nD]
		rank := sc.colRank[:nD]
		scoreColumnCached(set.cache, set.met, set.bpred, set.bpolicy, set.dpolicy,
			sc, p, r.views[p].ver, set.epoch(), distinct, ks, feas, rank)
		for i, j := 0, from; j < nJ; i, j = i+1, j+1 {
			d := sc.dIdx[i]
			scoreAt[si*nJ+j] = feas[d]
			if dual {
				rankAt[si*nJ+j] = rank[d]
			}
		}
		return
	}
	rescoreQ := sc.rescoreQ[:0]
	for j := from; j < nJ; j++ {
		rescoreQ = append(rescoreQ, Query{Workload: jobs[j].Workload, Platform: p, Interferers: ks})
	}
	rescore := sc.rescore[:len(rescoreQ)]
	if dual {
		rescoreRank := sc.rescoreRank[:len(rescoreQ)]
		set.dpolicy.ScoreDualBatch(set.bpred, rescoreQ, rescore, rescoreRank)
		for i, j := 0, from; j < nJ; i, j = i+1, j+1 {
			scoreAt[si*nJ+j] = rescore[i]
			rankAt[si*nJ+j] = rescoreRank[i]
		}
		return
	}
	set.bpolicy.ScoreBatch(set.bpred, rescoreQ, rescore)
	for i, j := 0, from; j < nJ; i, j = i+1, j+1 {
		scoreAt[si*nJ+j] = rescore[i]
	}
}

// placeOne is the scalar-scoring arm (no BatchPredictor, or batching
// disabled), mirroring Scheduler.placeLocked per job with the reserve loop
// on top. Each retry re-scores the refreshed candidate set in full.
func (r *Replica) placeOne(job Job, shard []int) Assignment {
	set := r.set
	if set.store.maxInFlight > 0 && set.store.InFlight() >= set.store.maxInFlight {
		return Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Rejected: true, Reason: ReasonAdmission}
	}
	sc := &r.scratch
	sc.reserve(len(shard), 1)
	retries := 0
	for {
		cands := sc.cands[:0]
		snaps := sc.snaps[:0]
		placeable := 0
		for _, p := range shard {
			v := &r.views[p]
			if !v.placeable {
				continue
			}
			placeable++
			if v.load+1 > v.cap {
				continue
			}
			cands = append(cands, Candidate{Platform: p, Load: v.load, Degraded: v.degraded})
			snaps = append(snaps, v.ks)
		}
		if set.dpolicy != nil {
			for i, c := range cands {
				cands[i].Score, cands[i].Rank = set.dpolicy.ScoreDual(set.pred, job, c.Platform, snaps[i])
			}
		} else {
			for i, c := range cands {
				v := set.policy.Score(set.pred, job, c.Platform, snaps[i])
				cands[i].Score, cands[i].Rank = v, v
			}
		}
		padDegradedCands(cands, set.degradedPenalty)
		bi := bestCandidate(set.strategy, job, cands)
		if bi < 0 {
			return Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Reason: unplacedReason(placeable, len(cands))}
		}
		p := cands[bi].Platform
		id, st, status := set.store.reserve(p, r.views[p].ver, job)
		switch status {
		case reserveOK:
			r.commits.Add(1)
			if set.rec != nil {
				set.rec.Record(obs.Event{Kind: obs.EvPlace, Job: uint64(id), ID: uint64(id),
					Platform: int32(p), Version: set.snapVersion()})
			}
			r.adoptCommit(p, st)
			return Assignment{
				ID:          id,
				Job:         job,
				Platform:    p,
				Budget:      cands[bi].Score,
				Interferers: snaps[bi],
			}
		case reserveAdmission:
			return Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Rejected: true, Reason: ReasonAdmission}
		}
		r.conflicts.Add(1)
		retries++
		if set.rec != nil {
			set.rec.Record(obs.Event{Kind: obs.EvConflict, Platform: int32(p),
				N: int32(retries), Version: set.snapVersion()})
		}
		if retries > set.maxRetries {
			r.shed.Add(1)
			if set.rec != nil {
				set.rec.Record(obs.Event{Kind: obs.EvShed, Reason: obs.ReasonConflict,
					Platform: int32(p), N: int32(retries), Version: set.snapVersion()})
			}
			return Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Reason: ReasonConflict}
		}
		set.backoff(retries)
		r.adoptCommit(p, st)
	}
}

// backoff spaces the k-th consecutive reserve retry: yield-only when no
// base delay is configured, capped exponential otherwise. Bounded by
// design — the caller sheds the job after MaxCommitRetries.
func (rs *ReplicaSet) backoff(k int) {
	if rs.commitBackoff <= 0 {
		runtime.Gosched()
		return
	}
	d := rs.commitBackoff << uint(k-1)
	if d > rs.commitBackoffMax || d <= 0 {
		d = rs.commitBackoffMax
	}
	time.Sleep(d)
}
