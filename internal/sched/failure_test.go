package sched

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// flatPred scores every platform identically, so health effects (degraded
// padding, tie-breaks, quarantine exclusion) are the only thing that can
// separate candidates.
type flatPred struct{ v float64 }

func (f flatPred) EstimateSeconds(w, p int, ks []int) float64 { return f.v }
func (f flatPred) BoundSeconds(w, p int, ks []int, eps float64) float64 {
	return f.v * (1 + 0.5*(1-eps))
}

// TestHealthLifecycle walks the failure state machine through every
// documented transition and error.
func TestHealthLifecycle(t *testing.T) {
	pred := variedPred{base: []float64{1, 1, 1}}
	s := mustNew(t, Config{NumPlatforms: 3, MaxColocation: 4}, MeanPolicy{}, pred)

	// Out-of-range platforms are typed errors on every event method.
	if _, err := s.Fail(-1); !errors.Is(err, ErrPlatformOutOfRange) {
		t.Fatalf("Fail(-1): %v", err)
	}
	if err := s.Degrade(3); !errors.Is(err, ErrPlatformOutOfRange) {
		t.Fatalf("Degrade(3): %v", err)
	}
	if err := s.Recover(99); !errors.Is(err, ErrPlatformOutOfRange) {
		t.Fatalf("Recover(99): %v", err)
	}

	// Healthy → Degraded → Healthy.
	if err := s.Degrade(0); err != nil {
		t.Fatal(err)
	}
	if got := s.Health(0); got != Degraded {
		t.Fatalf("after Degrade: %v", got)
	}
	if err := s.Recover(0); err != nil {
		t.Fatal(err)
	}
	if got := s.Health(0); got != Healthy {
		t.Fatalf("after Recover from Degraded: %v", got)
	}

	// Fail orphans exactly the failed platform's residents, retiring their
	// IDs; residents elsewhere are untouched.
	var as []Assignment
	for i := 0; i < 4; i++ {
		a := s.Place(Job{Workload: i, Deadline: 100})
		if !a.Placed() {
			t.Fatalf("setup placement %d: %+v", i, a)
		}
		as = append(as, a)
	}
	target := as[0].Platform
	var want []Orphan
	for _, a := range as {
		if a.Platform == target {
			want = append(want, Orphan{ID: a.ID, Job: a.Job})
		}
	}
	orphans, err := s.Fail(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != len(want) {
		t.Fatalf("orphans: got %+v, want %+v", orphans, want)
	}
	for i := range want {
		if orphans[i] != want[i] {
			t.Fatalf("orphan %d carries wrong identity: %+v vs %+v", i, orphans[i], want[i])
		}
	}
	a1 := as[0]
	if got := s.Health(a1.Platform); got != Down {
		t.Fatalf("after Fail: %v", got)
	}
	if got := s.InFlight(); got != len(as)-len(want) {
		t.Fatalf("in-flight after Fail: %d, want %d", got, len(as)-len(want))
	}
	if rs := s.Residents(a1.Platform); len(rs) != 0 {
		t.Fatalf("residents survive Fail: %v", rs)
	}
	// Orphaned IDs are retired, not unknown.
	if err := s.Complete(a1.ID); !errors.Is(err, ErrJobCompleted) {
		t.Fatalf("complete orphaned id: %v", err)
	}

	// Failing a Down platform is a no-op; degrading it is an error.
	if more, err := s.Fail(a1.Platform); err != nil || more != nil {
		t.Fatalf("re-Fail: %v %v", more, err)
	}
	if err := s.Degrade(a1.Platform); !errors.Is(err, ErrPlatformUnavailable) {
		t.Fatalf("Degrade down platform: %v", err)
	}

	// Down → Recover → half-open probation (Degraded, capped at one job).
	if err := s.Recover(a1.Platform); err != nil {
		t.Fatal(err)
	}
	if got := s.Health(a1.Platform); got != Degraded {
		t.Fatalf("after Recover from Down: %v", got)
	}

	st := s.FailureStats()
	if st.Fails != 1 || st.Orphaned != uint64(len(want)) || st.Degrades != 1 ||
		st.Recovers != 2 || st.Readmissions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestPlacementSkipsUnavailable: Down and Quarantined platforms are never
// candidates; when no placeable platform remains, jobs shed with
// ReasonNoHealthy (not Rejected, not Infeasible).
func TestPlacementSkipsUnavailable(t *testing.T) {
	pred := variedPred{base: []float64{1, 1, 1}}
	s := mustNew(t, Config{NumPlatforms: 3, MaxColocation: 4}, MeanPolicy{}, pred)
	for p := 0; p < 3; p++ {
		if _, err := s.Fail(p); err != nil {
			t.Fatal(err)
		}
	}
	a := s.Place(Job{Workload: 0, Deadline: 100})
	if a.Placed() || a.Rejected || a.Reason != ReasonNoHealthy {
		t.Fatalf("all-down placement: %+v", a)
	}
	// Wave path sheds with the same reason.
	was := s.PlaceAll([]Job{{Workload: 0, Deadline: 100}, {Workload: 1, Deadline: 100}})
	for i, wa := range was {
		if wa.Placed() || wa.Reason != ReasonNoHealthy {
			t.Fatalf("wave job %d: %+v", i, wa)
		}
	}
	// Recover one platform: placements land only there.
	if err := s.Recover(1); err != nil {
		t.Fatal(err)
	}
	if a := s.Place(Job{Workload: 0, Deadline: 100}); !a.Placed() || a.Platform != 1 {
		t.Fatalf("post-recovery placement: %+v", a)
	}
	// Half-open probation caps the platform at one trial job, so a second
	// job finds every remaining platform unavailable.
	if a := s.Place(Job{Workload: 1, Deadline: 100}); a.Placed() || a.Reason != ReasonCapacity {
		t.Fatalf("probation colocation cap: %+v", a)
	}
}

// TestDegradedSteersPlacement: with identical scores everywhere, degrading
// a platform steers placements to healthy peers — via the score padding
// for single-head policies and the strategy tie-break in general.
func TestDegradedSteersPlacement(t *testing.T) {
	for _, strat := range []Strategy{LeastLoaded{}, BestFit{}, UtilizationAware{}} {
		s := mustNew(t, Config{NumPlatforms: 2, MaxColocation: 4, Strategy: strat, DisableBatch: true},
			MeanPolicy{}, flatPred{v: 1})
		if err := s.Degrade(0); err != nil {
			t.Fatal(err)
		}
		// Both platforms empty, identical scores: the tie must break toward
		// the healthy platform. (At unequal load the strategy's primary key
		// still rules — degradation is a tie-break, not an override.)
		if a := s.Place(Job{Workload: 0, Deadline: 100}); !a.Placed() || a.Platform != 1 {
			t.Fatalf("%s: degraded platform won the tie: %+v", strat.Name(), a)
		}
	}

	// The padding is a feasibility penalty, not just a tie-break: a job the
	// degraded platform could serve at score 1 is shed once the padded
	// score clears the deadline.
	s := mustNew(t, Config{NumPlatforms: 1, MaxColocation: 4, DegradedPenalty: 2, DisableBatch: true},
		MeanPolicy{}, flatPred{v: 1})
	if a := s.Place(Job{Workload: 0, Deadline: 1.5}); !a.Placed() {
		t.Fatalf("healthy baseline infeasible: %+v", a)
	}
	if err := s.Degrade(0); err != nil {
		t.Fatal(err)
	}
	if a := s.Place(Job{Workload: 1, Deadline: 1.5}); a.Placed() || a.Reason != ReasonInfeasible {
		t.Fatalf("padded score should miss the 1.5 deadline: %+v", a)
	}
	if a := s.Place(Job{Workload: 1, Deadline: 3}); !a.Placed() {
		t.Fatalf("padded score should clear the 3.0 deadline: %+v", a)
	}
}

// TestDegradedDecisionIdentity extends the batch/scalar identity property
// to impaired clusters: random fail/degrade/recover events interleave with
// placements, and the batch- and scalar-scored schedulers must keep making
// identical decisions throughout.
func TestDegradedDecisionIdentity(t *testing.T) {
	policies := []Policy{MeanPolicy{}, PaddedMeanPolicy{Factor: 1.3}, BoundPolicy{Eps: 0.1}}
	strategies := []Strategy{LeastLoaded{}, BestFit{}, UtilizationAware{}}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		nP := 3 + rng.Intn(5)
		base := make([]float64, nP)
		for i := range base {
			base[i] = 0.5 + 2*rng.Float64()
		}
		pol := policies[rng.Intn(len(policies))]
		strat := strategies[rng.Intn(len(strategies))]
		cfg := Config{NumPlatforms: nP, MaxColocation: 2, Strategy: strat, DegradedPenalty: 1.3}
		scalarCfg := cfg
		scalarCfg.DisableBatch = true
		sb := mustNew(t, cfg, pol, &batchPred{Predictor: variedPred{base}})
		ss := mustNew(t, scalarCfg, pol, &batchPred{Predictor: variedPred{base}})
		for i := 0; i < 80; i++ {
			p := rng.Intn(nP)
			switch r := rng.Float64(); {
			case r < 0.10:
				ob, errB := sb.Fail(p)
				os, errS := ss.Fail(p)
				if (errB == nil) != (errS == nil) || len(ob) != len(os) {
					t.Fatalf("seed %d: Fail(%d) diverged: %v/%v %v/%v", seed, p, ob, errB, os, errS)
				}
			case r < 0.20:
				errB, errS := sb.Degrade(p), ss.Degrade(p)
				if (errB == nil) != (errS == nil) {
					t.Fatalf("seed %d: Degrade(%d) diverged: %v vs %v", seed, p, errB, errS)
				}
			case r < 0.30:
				errB, errS := sb.Recover(p), ss.Recover(p)
				if (errB == nil) != (errS == nil) {
					t.Fatalf("seed %d: Recover(%d) diverged: %v vs %v", seed, p, errB, errS)
				}
			default:
				job := Job{Workload: rng.Intn(20), Deadline: 0.3 + 6*rng.Float64()}
				ab, as := sb.Place(job), ss.Place(job)
				if !sameAssignment(ab, as) || ab.Reason != as.Reason {
					t.Fatalf("seed %d job %d: batch %+v != scalar %+v (policy %s, strategy %s)",
						seed, i, ab, as, pol.Name(), strat.Name())
				}
			}
		}
	}
}

// TestBreakerTripHalfOpenClose drives the circuit breaker through its full
// cycle: threshold trip → quarantine → half-open probation → re-trip on a
// probation miss → second probation → close back to healthy.
func TestBreakerTripHalfOpenClose(t *testing.T) {
	s := mustNew(t, Config{
		NumPlatforms: 1, MaxColocation: 8,
		Breaker: BreakerConfig{Window: 4, Threshold: 0.5, MinSamples: 2, Probation: 2},
	}, MeanPolicy{}, flatPred{v: 1})

	place := func(n int) []JobID {
		t.Helper()
		ids := make([]JobID, n)
		for i := range ids {
			a := s.Place(Job{Workload: i, Deadline: 100})
			if !a.Placed() {
				t.Fatalf("setup placement %d: %+v", i, a)
			}
			ids[i] = a.ID
		}
		return ids
	}

	// Two misses out of two outcomes crosses Threshold at MinSamples.
	ids := place(3)
	if tripped, err := s.CompleteOutcome(ids[0], true); err != nil || tripped {
		t.Fatalf("first miss should not trip alone: %v %v", tripped, err)
	}
	tripped, err := s.CompleteOutcome(ids[1], true)
	if err != nil || !tripped {
		t.Fatalf("second miss should trip: %v %v", tripped, err)
	}
	if got := s.Health(0); got != Quarantined {
		t.Fatalf("after trip: %v", got)
	}
	// Quarantined platforms still retire residents; stragglers carry no
	// breaker signal.
	if tripped, err := s.CompleteOutcome(ids[2], true); err != nil || tripped {
		t.Fatalf("straggler on quarantined platform: %v %v", tripped, err)
	}
	// And they take no placements.
	if a := s.Place(Job{Workload: 0, Deadline: 100}); a.Placed() || a.Reason != ReasonNoHealthy {
		t.Fatalf("quarantined platform took a placement: %+v", a)
	}

	// Half-open: one trial job; a miss during probation re-trips.
	if err := s.Recover(0); err != nil {
		t.Fatal(err)
	}
	trial := place(1)
	if a := s.Place(Job{Workload: 9, Deadline: 100}); a.Placed() {
		t.Fatalf("probation cap leaked a second trial job: %+v", a)
	}
	if tripped, err := s.CompleteOutcome(trial[0], true); err != nil || !tripped {
		t.Fatalf("probation miss should re-trip: %v %v", tripped, err)
	}
	if got := s.Health(0); got != Quarantined {
		t.Fatalf("after probation miss: %v", got)
	}

	// Second probation: Probation consecutive successes close to Healthy.
	if err := s.Recover(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		id := place(1)[0]
		if tripped, err := s.CompleteOutcome(id, false); err != nil || tripped {
			t.Fatalf("probation success %d: %v %v", i, tripped, err)
		}
	}
	if got := s.Health(0); got != Healthy {
		t.Fatalf("after probation closes: %v", got)
	}
	// Healthy again: full colocation is back.
	if ids := place(3); len(ids) != 3 {
		t.Fatal("capacity not restored after close")
	}

	st := s.FailureStats()
	if st.Trips != 2 || st.Readmissions != 2 || st.Closes != 1 {
		t.Fatalf("breaker stats %+v", st)
	}
}

// TestBreakerWindowSlides: the miss window is a ring — old outcomes age
// out, so a burst of misses beyond the window no longer trips once enough
// successes displace them.
func TestBreakerWindowSlides(t *testing.T) {
	s := mustNew(t, Config{
		NumPlatforms: 1, MaxColocation: 16,
		Breaker: BreakerConfig{Window: 4, Threshold: 0.75, MinSamples: 4, Probation: 1},
	}, MeanPolicy{}, flatPred{v: 1})
	outcome := func(miss bool) bool {
		t.Helper()
		a := s.Place(Job{Workload: 0, Deadline: 100})
		if !a.Placed() {
			t.Fatalf("placement: %+v", a)
		}
		tripped, err := s.CompleteOutcome(a.ID, miss)
		if err != nil {
			t.Fatal(err)
		}
		return tripped
	}
	// Two misses, then successes: 2/4 never reaches 0.75, and the misses
	// age out of the ring.
	for _, miss := range []bool{true, true, false, false, false, false, false} {
		if outcome(miss) {
			t.Fatalf("breaker tripped below threshold (state %v)", s.Health(0))
		}
	}
	if got := s.Health(0); got != Healthy {
		t.Fatalf("state after sliding window: %v", got)
	}
}

// TestStreamChaosConservation is the job-conservation property test: across
// random chaos schedules (correlated groups, degrade mixes, retry budgets,
// backoff), every arrival ends in exactly one terminal state and every
// placement is either completed or orphaned — nothing lost, nothing
// duplicated. Identical seeds must replay identically.
func TestStreamChaosConservation(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		nP := 3 + rng.Intn(4)
		base := make([]float64, nP)
		for i := range base {
			base[i] = 0.5 + 1.5*rng.Float64()
		}
		groups := [][]int{nil} // one correlated group over a random prefix, rest independent
		cut := 1 + rng.Intn(nP)
		for p := 0; p < cut; p++ {
			groups[0] = append(groups[0], p)
		}
		for p := cut; p < nP; p++ {
			groups = append(groups, []int{p})
		}
		cfg := StreamConfig{
			Jobs:          60 + rng.Intn(60),
			ArrivalRate:   2 + 3*rng.Float64(),
			RetryLimit:    rng.Intn(3),
			FeedbackEvery: 0,
			Chaos: &ChaosConfig{
				MTTF:        4 + 10*rng.Float64(),
				MTTR:        1 + 2*rng.Float64(),
				Groups:      groups,
				DegradeProb: rng.Float64() * 0.5,
				Seed:        seed * 31,
			},
		}
		if rng.Float64() < 0.5 {
			cfg.RetryBackoff = 0.2 + rng.Float64()
			cfg.RetryBackoffMax = 4
		}
		if rng.Float64() < 0.5 {
			cfg.BreakerCooldown = 2 + 4*rng.Float64()
		}
		oracle := oracleFunc(func(w, p int, ks []int) float64 {
			return 0.4 + 0.1*float64(w%3) + 0.2*float64(len(ks))
		})
		source := func(rng *rand.Rand, i int) Job {
			return Job{Workload: i % 10, Deadline: 0.6 + 2*rng.Float64()}
		}
		run := func() StreamResult {
			s := mustNew(t, Config{
				NumPlatforms: nP, MaxColocation: 2, MaxInFlight: 2 * nP,
				Breaker: BreakerConfig{Window: 6, Threshold: 0.5, MinSamples: 3},
			}, BoundPolicy{Eps: 0.1}, &batchPred{Predictor: variedPred{base}})
			res, err := Stream(cfg, s, oracle, source, nil, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if got := s.InFlight(); got != 0 {
				t.Fatalf("seed %d: in-flight after stream: %d", seed, got)
			}
			return res
		}
		res := run()
		if res.Arrived != cfg.Jobs {
			t.Fatalf("seed %d: arrived %d of %d", seed, res.Arrived, cfg.Jobs)
		}
		if res.Arrived != res.Completed+res.Unplaced+res.Rejected {
			t.Fatalf("seed %d: arrival conservation broken: %+v", seed, res)
		}
		if res.Placed != res.Completed+res.Orphaned {
			t.Fatalf("seed %d: placement conservation broken: %+v", seed, res)
		}
		if res.Orphaned != res.OrphanReplaced+res.OrphanLost+inRetryOrphans(res) {
			t.Fatalf("seed %d: orphan accounting broken: %+v", seed, res)
		}
		if res2 := run(); res != res2 {
			t.Fatalf("seed %d: replay not deterministic:\n%+v\n%+v", seed, res, res2)
		}
	}
}

// inRetryOrphans counts orphans re-placed and later orphaned again: each
// re-orphaning increments Orphaned without a matching OrphanReplaced or
// OrphanLost for the *first* orphaning, so the residual is the number of
// extra orphan → replace cycles. (Replacement and loss are terminal per
// orphaning event; the identity below makes the residual explicit.)
func inRetryOrphans(res StreamResult) int {
	return res.Orphaned - res.OrphanReplaced - res.OrphanLost
}

// TestChaosOffIsBitIdentical: a chaos schedule whose first failure lands
// after the last completion must reproduce the failure-free replay exactly
// — the injector draws from its own rng and must not perturb the
// arrival/placement stream.
func TestChaosOffIsBitIdentical(t *testing.T) {
	base := []float64{1, 1.2, 0.8}
	oracle := oracleFunc(func(w, p int, ks []int) float64 { return 0.3 + 0.2*float64(len(ks)) })
	source := func(rng *rand.Rand, i int) Job {
		return Job{Workload: i % 10, Deadline: 0.8 + 4*rng.Float64()}
	}
	run := func(chaos *ChaosConfig) StreamResult {
		s := mustNew(t, Config{NumPlatforms: 3, MaxColocation: 2},
			BoundPolicy{Eps: 0.1}, &batchPred{Predictor: variedPred{base}})
		res, err := Stream(StreamConfig{Jobs: 50, ArrivalRate: 3, Chaos: chaos},
			s, oracle, source, nil, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	// MTTF so large that no failure fires inside the replay horizon.
	quiet := run(&ChaosConfig{MTTF: 1e12, Seed: 5})
	if plain != quiet {
		t.Fatalf("dormant chaos perturbed the replay:\n%+v\n%+v", plain, quiet)
	}
}

// TestFailRacesPlaceAllAndComplete exercises Fail/Recover/Complete racing a
// chunked PlaceAll (run under -race): failures land between chunks, and
// the exactly-once contract holds — every placed job is completed once or
// orphaned once, never both, never lost.
func TestFailRacesPlaceAllAndComplete(t *testing.T) {
	pred := &batchPred{Predictor: variedPred{base: []float64{1, 1.2, 0.8, 1.5, 0.9}}}
	s := mustNew(t, Config{NumPlatforms: 5, MaxColocation: 16, WaveChunk: 3},
		BoundPolicy{Eps: 0.1}, pred)

	var (
		mu        sync.Mutex
		orphaned  = make(map[JobID]int)
		completed = make(map[JobID]int)
	)
	gap := make(chan struct{}, 64)
	s.chunkGap = func() {
		select {
		case gap <- struct{}{}:
		default:
		}
	}
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(7))
		for range gap {
			p := rng.Intn(5)
			os, err := s.Fail(p)
			if err != nil {
				t.Errorf("Fail(%d): %v", p, err)
				return
			}
			mu.Lock()
			for _, o := range os {
				orphaned[o.ID]++
			}
			mu.Unlock()
			if err := s.Recover(p); err != nil { // down → half-open
				t.Errorf("Recover(%d): %v", p, err)
				return
			}
			if err := s.Recover(p); err != nil { // half-open → healthy
				t.Errorf("re-Recover(%d): %v", p, err)
				return
			}
		}
	}()

	const waves, perWave = 4, 30
	var placeWG sync.WaitGroup
	for g := 0; g < waves; g++ {
		placeWG.Add(1)
		go func(g int) {
			defer placeWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			jobs := make([]Job, perWave)
			for i := range jobs {
				jobs[i] = Job{Workload: rng.Intn(10), Deadline: 0.5 + 5*rng.Float64()}
			}
			as := s.PlaceAll(jobs)
			// Complete this wave's survivors while other waves still place:
			// Complete races PlaceAll chunks and the failure injector.
			for _, a := range as {
				if !a.Placed() {
					continue
				}
				err := s.Complete(a.ID)
				switch {
				case err == nil:
					mu.Lock()
					completed[a.ID]++
					mu.Unlock()
				case errors.Is(err, ErrJobCompleted):
					// Orphaned by the injector before we completed it.
				default:
					t.Errorf("complete %d: %v", a.ID, err)
					return
				}
			}
		}(g)
	}
	placeWG.Wait()
	close(gap)
	chaosWG.Wait()
	if t.Failed() {
		return
	}

	// Exactly-once: completed and orphaned partition the placed IDs.
	for id, n := range orphaned {
		if n != 1 {
			t.Fatalf("job %d orphaned %d times", id, n)
		}
		if completed[id] != 0 {
			t.Fatalf("job %d both completed and orphaned", id)
		}
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain: %d", got)
	}
	for p := 0; p < 5; p++ {
		if rs := s.Residents(p); len(rs) != 0 {
			t.Fatalf("platform %d residents after drain: %v", p, rs)
		}
	}
	st := s.FailureStats()
	if int(st.Orphaned) != len(orphaned) {
		t.Fatalf("stats count %d orphans, injector saw %d", st.Orphaned, len(orphaned))
	}
}

// TestCompleteErrors: the Complete surface distinguishes never-issued IDs
// from already-retired ones with typed errors.
func TestCompleteErrors(t *testing.T) {
	s := mustNew(t, Config{NumPlatforms: 1}, MeanPolicy{}, flatPred{v: 1})
	if err := s.Complete(1); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("never-issued id: %v", err)
	}
	a := s.Place(Job{Workload: 0, Deadline: 100})
	if !a.Placed() {
		t.Fatalf("placement: %+v", a)
	}
	if err := s.Complete(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(a.ID); !errors.Is(err, ErrJobCompleted) {
		t.Fatalf("double complete: %v", err)
	}
	if _, err := s.CompleteOutcome(a.ID, true); !errors.Is(err, ErrJobCompleted) {
		t.Fatalf("CompleteOutcome on retired id: %v", err)
	}
	if _, err := s.CompleteOutcome(999, false); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("CompleteOutcome on unknown id: %v", err)
	}
}
