package sched

import "fmt"

// Policy ranks candidate platforms for a job. Score returns the predicted
// runtime metric used for feasibility (compared against the deadline) —
// lower is better; returning +Inf marks the platform infeasible.
type Policy interface {
	Name() string
	Score(pred Predictor, job Job, platform int, residents []int) float64
}

// BatchPolicy scores a whole candidate set in one predictor call. The
// scheduler uses it whenever the predictor is a BatchPredictor — for a
// single job's platform scan and for whole waves of jobs at once, so the
// score must be fully determined by the query (deadline feasibility is the
// scheduler's concern). ScoreBatch must assign out[i] the same value Score
// would return for qs[i] (up to the predictor's own batch-vs-scalar
// floating-point reassociation), which keeps batch-scored placement
// decision-identical to scalar scoring.
type BatchPolicy interface {
	Policy
	// ScoreBatch fills out[i] with the score of qs[i]. len(out) == len(qs).
	ScoreBatch(pred BatchPredictor, qs []Query, out []float64)
}

// MeanPolicy places on the expected runtime — the natural choice when only
// a point predictor is available. It systematically underestimates tail
// latency, which the simulation harness exposes.
type MeanPolicy struct{}

// Name implements Policy.
func (MeanPolicy) Name() string { return "mean" }

// Score implements Policy.
func (MeanPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.EstimateSeconds(job.Workload, platform, residents)
}

// ScoreBatch implements BatchPolicy.
func (MeanPolicy) ScoreBatch(pred BatchPredictor, qs []Query, out []float64) {
	copy(out, pred.EstimateSecondsBatch(qs))
}

// BoundPolicy places on the conformal (1−eps)-sufficient runtime bound,
// giving each placement a per-job probabilistic deadline guarantee.
type BoundPolicy struct{ Eps float64 }

// Name implements Policy.
func (p BoundPolicy) Name() string { return fmt.Sprintf("bound(eps=%.2f)", p.Eps) }

// Score implements Policy.
func (p BoundPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.BoundSeconds(job.Workload, platform, residents, p.Eps)
}

// ScoreBatch implements BatchPolicy; all candidates share one conformal
// calibration fetch.
func (p BoundPolicy) ScoreBatch(pred BatchPredictor, qs []Query, out []float64) {
	copy(out, pred.BoundSecondsBatch(qs, p.Eps))
}

// PaddedMeanPolicy is the common heuristic alternative: mean estimate
// inflated by a fixed safety factor. It has no calibration guarantee —
// too small on volatile platforms, wasteful on stable ones.
type PaddedMeanPolicy struct{ Factor float64 }

// Name implements Policy.
func (p PaddedMeanPolicy) Name() string { return fmt.Sprintf("mean*%.1f", p.Factor) }

// Score implements Policy.
func (p PaddedMeanPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.EstimateSeconds(job.Workload, platform, residents) * p.Factor
}

// ScoreBatch implements BatchPolicy.
func (p PaddedMeanPolicy) ScoreBatch(pred BatchPredictor, qs []Query, out []float64) {
	copy(out, pred.EstimateSecondsBatch(qs))
	for i := range out {
		out[i] *= p.Factor
	}
}

// ParsePolicy resolves a policy by name: "mean", "padded" (mean×factor),
// or "bound" (conformal 1−eps budget).
func ParsePolicy(name string, eps, factor float64) (Policy, error) {
	switch name {
	case "mean":
		return MeanPolicy{}, nil
	case "padded":
		if factor <= 0 {
			factor = 1.3
		}
		return PaddedMeanPolicy{Factor: factor}, nil
	case "bound":
		if !(eps > 0 && eps < 1) {
			return nil, fmt.Errorf("sched: bound policy needs eps in (0,1), got %v", eps)
		}
		return BoundPolicy{Eps: eps}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want mean, padded, or bound)", name)
}
