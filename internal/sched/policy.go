package sched

import "fmt"

// Policy ranks candidate platforms for a job. Score returns the predicted
// runtime metric used for feasibility (compared against the deadline) —
// lower is better; returning +Inf marks the platform infeasible.
type Policy interface {
	Name() string
	Score(pred Predictor, job Job, platform int, residents []int) float64
}

// BatchPolicy scores a whole candidate set in one predictor call. The
// scheduler uses it whenever the predictor is a BatchPredictor — for a
// single job's platform scan and for whole waves of jobs at once, so the
// score must be fully determined by the query (deadline feasibility is the
// scheduler's concern). ScoreBatch must assign out[i] the same value Score
// would return for qs[i] (up to the predictor's own batch-vs-scalar
// floating-point reassociation), which keeps batch-scored placement
// decision-identical to scalar scoring.
type BatchPolicy interface {
	Policy
	// ScoreBatch fills out[i] with the score of qs[i]. len(out) == len(qs).
	ScoreBatch(pred BatchPredictor, qs []Query, out []float64)
}

// MeanPolicy places on the expected runtime — the natural choice when only
// a point predictor is available. It systematically underestimates tail
// latency, which the simulation harness exposes.
type MeanPolicy struct{}

// Name implements Policy.
func (MeanPolicy) Name() string { return "mean" }

// Score implements Policy.
func (MeanPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.EstimateSeconds(job.Workload, platform, residents)
}

// ScoreBatch implements BatchPolicy.
func (MeanPolicy) ScoreBatch(pred BatchPredictor, qs []Query, out []float64) {
	copy(out, pred.EstimateSecondsBatch(qs))
}

// BoundPolicy places on the conformal (1−eps)-sufficient runtime bound,
// giving each placement a per-job probabilistic deadline guarantee.
type BoundPolicy struct{ Eps float64 }

// Name implements Policy.
func (p BoundPolicy) Name() string { return fmt.Sprintf("bound(eps=%.2f)", p.Eps) }

// Score implements Policy.
func (p BoundPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.BoundSeconds(job.Workload, platform, residents, p.Eps)
}

// ScoreBatch implements BatchPolicy; all candidates share one conformal
// calibration fetch.
func (p BoundPolicy) ScoreBatch(pred BatchPredictor, qs []Query, out []float64) {
	copy(out, pred.BoundSecondsBatch(qs, p.Eps))
}

// PaddedMeanPolicy is the common heuristic alternative: mean estimate
// inflated by a fixed safety factor. It has no calibration guarantee —
// too small on volatile platforms, wasteful on stable ones.
type PaddedMeanPolicy struct{ Factor float64 }

// Name implements Policy.
func (p PaddedMeanPolicy) Name() string { return fmt.Sprintf("mean*%.1f", p.Factor) }

// Score implements Policy.
func (p PaddedMeanPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.EstimateSeconds(job.Workload, platform, residents) * p.Factor
}

// ScoreBatch implements BatchPolicy.
func (p PaddedMeanPolicy) ScoreBatch(pred BatchPredictor, qs []Query, out []float64) {
	copy(out, pred.EstimateSecondsBatch(qs))
	for i := range out {
		out[i] *= p.Factor
	}
}

// DualPolicy scores the two facets of a placement decision separately,
// from both predictor heads: a feasibility value (compared against the
// deadline, and reported as the assignment's Budget) and a ranking value
// (what strategies order candidates by). Single-head policies collapse the
// two — for them the scheduler sets Rank = Score — while a dual policy can
// gate feasibility on the conservative conformal bound yet rank platforms
// by the cheap mean estimate. When the predictor implements FusedPredictor
// both facets of a whole wave come out of one fused pass.
type DualPolicy interface {
	Policy
	// ScoreDual is the scalar reference path: the feasibility score and the
	// ranking score of one candidate. Batch-scored placement must be
	// decision-identical to it (up to predictor batch-vs-scalar float
	// reassociation).
	ScoreDual(pred Predictor, job Job, platform int, residents []int) (feas, rank float64)
	// ScoreDualBatch fills feas[i] and rank[i] for qs[i].
	// len(feas) == len(rank) == len(qs).
	ScoreDualBatch(pred BatchPredictor, qs []Query, feas, rank []float64)
}

// MeanBoundPolicy is the mixed-head policy the fused scoring path exists
// for: feasibility (and the reported budget) comes from the conformal
// (1−eps)-sufficient bound — every placement keeps its probabilistic
// deadline guarantee — while strategies rank the feasible platforms by the
// expected runtime, so e.g. BestFit packs on mean headroom ("best-fit
// mean, feasible bound") instead of on the padded bound.
type MeanBoundPolicy struct{ Eps float64 }

// Name implements Policy.
func (p MeanBoundPolicy) Name() string { return fmt.Sprintf("mean|bound(eps=%.2f)", p.Eps) }

// Score implements Policy: the feasibility facet alone, for schedulers
// that treat the policy as single-head.
func (p MeanBoundPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.BoundSeconds(job.Workload, platform, residents, p.Eps)
}

// ScoreBatch implements BatchPolicy (feasibility facet alone).
func (p MeanBoundPolicy) ScoreBatch(pred BatchPredictor, qs []Query, out []float64) {
	copy(out, pred.BoundSecondsBatch(qs, p.Eps))
}

// ScoreDual implements DualPolicy.
func (p MeanBoundPolicy) ScoreDual(pred Predictor, job Job, platform int, residents []int) (feas, rank float64) {
	rank = pred.EstimateSeconds(job.Workload, platform, residents)
	feas = pred.BoundSeconds(job.Workload, platform, residents, p.Eps)
	return feas, rank
}

// ScoreDualBatch implements DualPolicy: one fused two-head pass when the
// predictor supports it, two vectorized passes otherwise.
func (p MeanBoundPolicy) ScoreDualBatch(pred BatchPredictor, qs []Query, feas, rank []float64) {
	if fp, ok := pred.(FusedPredictor); ok {
		fp.ScoreSecondsBatch(qs, p.Eps, rank, feas)
		return
	}
	copy(rank, pred.EstimateSecondsBatch(qs))
	copy(feas, pred.BoundSecondsBatch(qs, p.Eps))
}

// PaddedBoundPolicy gates feasibility on the conformal bound but ranks by
// the padded mean — the tie-break heuristic deployments that already run
// padded-mean scheduling can keep while upgrading their guarantee to the
// calibrated bound.
type PaddedBoundPolicy struct {
	Eps    float64
	Factor float64
}

// Name implements Policy.
func (p PaddedBoundPolicy) Name() string {
	return fmt.Sprintf("padded*%.1f|bound(eps=%.2f)", p.Factor, p.Eps)
}

// Score implements Policy (feasibility facet alone).
func (p PaddedBoundPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.BoundSeconds(job.Workload, platform, residents, p.Eps)
}

// ScoreBatch implements BatchPolicy (feasibility facet alone).
func (p PaddedBoundPolicy) ScoreBatch(pred BatchPredictor, qs []Query, out []float64) {
	copy(out, pred.BoundSecondsBatch(qs, p.Eps))
}

// ScoreDual implements DualPolicy.
func (p PaddedBoundPolicy) ScoreDual(pred Predictor, job Job, platform int, residents []int) (feas, rank float64) {
	rank = pred.EstimateSeconds(job.Workload, platform, residents) * p.Factor
	feas = pred.BoundSeconds(job.Workload, platform, residents, p.Eps)
	return feas, rank
}

// ScoreDualBatch implements DualPolicy.
func (p PaddedBoundPolicy) ScoreDualBatch(pred BatchPredictor, qs []Query, feas, rank []float64) {
	if fp, ok := pred.(FusedPredictor); ok {
		fp.ScoreSecondsBatch(qs, p.Eps, rank, feas)
	} else {
		copy(rank, pred.EstimateSecondsBatch(qs))
		copy(feas, pred.BoundSecondsBatch(qs, p.Eps))
	}
	for i := range rank {
		rank[i] *= p.Factor
	}
}

// ParsePolicy resolves a policy by name: "mean", "padded" (mean×factor),
// "bound" (conformal 1−eps budget), or the mixed-head policies
// "mean-bound" (rank on mean, feasibility on bound) and "padded-bound"
// (rank on padded mean, feasibility on bound).
func ParsePolicy(name string, eps, factor float64) (Policy, error) {
	needEps := func() error {
		if !(eps > 0 && eps < 1) {
			return fmt.Errorf("sched: %s policy needs eps in (0,1), got %v", name, eps)
		}
		return nil
	}
	if factor <= 0 {
		factor = 1.3
	}
	switch name {
	case "mean":
		return MeanPolicy{}, nil
	case "padded":
		return PaddedMeanPolicy{Factor: factor}, nil
	case "bound":
		if err := needEps(); err != nil {
			return nil, err
		}
		return BoundPolicy{Eps: eps}, nil
	case "mean-bound":
		if err := needEps(); err != nil {
			return nil, err
		}
		return MeanBoundPolicy{Eps: eps}, nil
	case "padded-bound":
		if err := needEps(); err != nil {
			return nil, err
		}
		return PaddedBoundPolicy{Eps: eps, Factor: factor}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want mean, padded, bound, mean-bound, or padded-bound)", name)
}
