package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ReplicaConfig tunes a ReplicaSet: how many scheduler replicas share the
// slot store, how platforms shard across them, and the optimistic commit
// protocol's retry budget.
type ReplicaConfig struct {
	// Replicas is the number of scheduler frontends (default 1).
	Replicas int
	// Shards partitions the platforms: replica i places into shard
	// i % Shards. 0 shards one partition per replica (disjoint platform
	// sets, minimal commit contention); 1 is a single shared pool (every
	// replica sees every platform, conflicts resolved optimistically);
	// values above the platform count are clamped.
	Shards int
	// MaxCommitRetries bounds consecutive reserve conflicts per job before
	// it is shed with ReasonConflict (default 8).
	MaxCommitRetries int
	// CommitBackoff is the base delay between reserve retries, doubled per
	// consecutive conflict up to CommitBackoffMax (default 1ms when a base
	// is set). 0 yields the processor instead of sleeping.
	CommitBackoff    time.Duration
	CommitBackoffMax time.Duration
	// RebalanceEvery checks shard balance every N placed chunks and
	// rebalances when the hottest shard's resident load exceeds
	// RebalanceSkew times the mean (default skew 1.5). 0 disables
	// automatic rebalancing; Rebalance can still be called directly.
	RebalanceEvery int
	RebalanceSkew  float64
}

// shardMap is an immutable platform partition: shards[i] is a sorted
// platform list. Replicas read it at chunk start, so a rebalance takes
// effect at the next chunk boundary; transiently overlapping placements
// during the handoff are resolved by the commit protocol like any other
// conflict.
type shardMap struct {
	shards [][]int
}

// ConflictStats counts the optimistic commit protocol's outcomes across a
// ReplicaSet's lifetime.
type ConflictStats struct {
	// Attempts is the number of slot reservations tried; Conflicts how
	// many were refused because the scored snapshot had gone stale (the
	// conflict-retry rate is Conflicts/Attempts).
	Attempts  uint64
	Conflicts uint64
	// Shed counts jobs unplaced with ReasonConflict after exhausting
	// MaxCommitRetries.
	Shed uint64
	// Rebalances counts shard-map rewrites (skew-triggered or explicit).
	Rebalances uint64
}

// ReplicaStats is one replica's share of the commit traffic.
type ReplicaStats struct {
	Commits   uint64
	Conflicts uint64
	Shed      uint64
}

// ReplicaSet runs N scheduler replicas over one shared SlotStore and one
// shared predictor: each replica scores waves optimistically against its
// snapshot of the store and commits placements with compare-and-swap slot
// reservations, so placements from many frontends proceed without a global
// scheduler lock. Platforms are sharded across replicas (ReplicaConfig.
// Shards); shards that run hot are rebalanced by resident load.
//
// The lifecycle surface (Complete, Fail, Degrade, Recover, health and
// stats accessors) matches Scheduler's, so callers can hold either behind
// one interface. PlaceAll routes each wave to a replica round-robin;
// drivers that own their parallelism (one goroutine per frontend) should
// take Replica handles and call PlaceAll on them directly.
type ReplicaSet struct {
	cfg      Config
	policy   Policy
	strategy Strategy
	pred     Predictor
	bpred    BatchPredictor
	bpolicy  BatchPolicy
	dpolicy  DualPolicy

	chunk            int
	degradedPenalty  float64
	maxRetries       int
	commitBackoff    time.Duration
	commitBackoffMax time.Duration
	rebalanceEvery   int
	rebalanceSkew    float64

	store    *SlotStore
	replicas []*Replica
	shards   atomic.Pointer[shardMap]

	router     atomic.Uint64
	chunkCount atomic.Uint64
	rebalances atomic.Uint64
	rebalanceM sync.Mutex

	// met/rec/ver mirror the Scheduler's observability hooks: nil-safe
	// histograms and flight recorder (Config.Metrics / Config.Recorder)
	// plus the predictor's snapshot version for event stamping.
	met *obs.SchedMetrics
	rec *obs.Recorder
	ver func() uint64

	// cache is the cross-wave score cache shared by every replica
	// (Config.ScoreCache); nil when disabled. Columns key on SlotStore
	// versions, so one replica's fresh scoring serves another replica's
	// identical view. epochFn reads the predictor's scoring epoch.
	cache   *ScoreCache
	epochFn func() uint64
}

// epoch returns the predictor's current scoring epoch, or 0 for
// epoch-less predictors.
func (rs *ReplicaSet) epoch() uint64 {
	if rs.epochFn == nil {
		return 0
	}
	return rs.epochFn()
}

// ScoreCacheStats returns the shared score cache's counters and whether
// the cache is enabled on this set.
func (rs *ReplicaSet) ScoreCacheStats() (ScoreCacheStats, bool) {
	if rs.cache == nil {
		return ScoreCacheStats{}, false
	}
	return rs.cache.Stats(), true
}

// snapVersion returns the predictor's current snapshot version, or 0 when
// the predictor does not expose one. Only called on recording paths.
func (rs *ReplicaSet) snapVersion() uint64 {
	if rs.ver == nil {
		return 0
	}
	return rs.ver()
}

// NewReplicaSet builds rc.Replicas schedulers over one shared slot store.
// cfg carries the cluster shape and scoring configuration exactly as for
// New; batched and fused scoring engage under the same conditions.
func NewReplicaSet(cfg Config, rc ReplicaConfig, policy Policy, pred Predictor) (*ReplicaSet, error) {
	if rc.Replicas == 0 {
		rc.Replicas = 1
	}
	if rc.Replicas < 0 {
		return nil, fmt.Errorf("sched: negative Replicas")
	}
	if rc.Shards < 0 {
		return nil, fmt.Errorf("sched: negative Shards")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = LeastLoaded{}
	}
	chunk := cfg.WaveChunk
	if chunk == 0 {
		chunk = defaultWaveChunk
	}
	penalty := cfg.DegradedPenalty
	if penalty == 0 {
		penalty = defaultDegradedPenalty
	}
	if penalty < 1 {
		return nil, fmt.Errorf("sched: DegradedPenalty %v < 1", penalty)
	}
	if rc.MaxCommitRetries <= 0 {
		rc.MaxCommitRetries = 8
	}
	if rc.CommitBackoff > 0 && rc.CommitBackoffMax <= 0 {
		rc.CommitBackoffMax = time.Millisecond
	}
	if rc.CommitBackoffMax < rc.CommitBackoff {
		rc.CommitBackoffMax = rc.CommitBackoff
	}
	if rc.RebalanceSkew <= 1 {
		rc.RebalanceSkew = 1.5
	}
	store, err := NewSlotStore(cfg)
	if err != nil {
		return nil, err
	}
	rs := &ReplicaSet{
		cfg:              cfg,
		policy:           policy,
		strategy:         cfg.Strategy,
		pred:             pred,
		chunk:            chunk,
		degradedPenalty:  penalty,
		maxRetries:       rc.MaxCommitRetries,
		commitBackoff:    rc.CommitBackoff,
		commitBackoffMax: rc.CommitBackoffMax,
		rebalanceEvery:   rc.RebalanceEvery,
		rebalanceSkew:    rc.RebalanceSkew,
		store:            store,
		met:              cfg.Metrics,
		rec:              cfg.Recorder,
	}
	if v, ok := pred.(snapshotVersioner); ok {
		rs.ver = v.Version
	}
	if dp, ok := policy.(DualPolicy); ok {
		rs.dpolicy = dp
	}
	if !cfg.DisableBatch {
		bp, okP := pred.(BatchPredictor)
		bpol, okPol := policy.(BatchPolicy)
		if okP && okPol {
			rs.bpred, rs.bpolicy = bp, bpol
		}
	}
	if cfg.ScoreCacheCap < 0 {
		return nil, fmt.Errorf("sched: negative ScoreCacheCap")
	}
	if cfg.ScoreCache && rs.bpred != nil {
		rs.cache = newScoreCache(cfg.NumPlatforms, cfg.ScoreCacheCap)
		rs.epochFn = resolveEpochFn(pred)
	}
	nShards := rc.Shards
	if nShards == 0 {
		nShards = rc.Replicas
	}
	if nShards > cfg.NumPlatforms {
		nShards = cfg.NumPlatforms
	}
	shards := make([][]int, nShards)
	for p := 0; p < cfg.NumPlatforms; p++ {
		shards[p%nShards] = append(shards[p%nShards], p)
	}
	rs.shards.Store(&shardMap{shards: shards})
	rs.replicas = make([]*Replica, rc.Replicas)
	for i := range rs.replicas {
		rs.replicas[i] = &Replica{set: rs, idx: i}
	}
	return rs, nil
}

// shardFor returns the sorted platform list replica i currently places
// into.
func (rs *ReplicaSet) shardFor(i int) []int {
	m := rs.shards.Load()
	return m.shards[i%len(m.shards)]
}

// NumReplicas returns the replica count.
func (rs *ReplicaSet) NumReplicas() int { return len(rs.replicas) }

// NumShards returns the current shard count.
func (rs *ReplicaSet) NumShards() int { return len(rs.shards.Load().shards) }

// Replica returns frontend i, for drivers that pin work to replicas.
func (rs *ReplicaSet) Replica(i int) *Replica { return rs.replicas[i] }

// Batched reports whether placements score through the batched predictor
// path (Scheduler.Batched).
func (rs *ReplicaSet) Batched() bool { return rs.bpred != nil }

// Fused reports whether both policy facets score through one fused
// two-head pass (Scheduler.Fused).
func (rs *ReplicaSet) Fused() bool {
	if rs.bpred == nil || rs.dpolicy == nil {
		return false
	}
	_, ok := rs.bpred.(FusedPredictor)
	return ok
}

// PlaceAll places a wave through the next replica round-robin. With one
// replica this is exactly Scheduler.PlaceAll over the shared store.
func (rs *ReplicaSet) PlaceAll(jobs []Job) []Assignment {
	r := rs.replicas[(rs.router.Add(1)-1)%uint64(len(rs.replicas))]
	return r.PlaceAll(jobs)
}

// Place assigns one job through the next replica round-robin.
func (rs *ReplicaSet) Place(job Job) Assignment {
	return rs.PlaceAll([]Job{job})[0]
}

// noteChunk ticks the auto-rebalance cadence after each placed chunk.
func (rs *ReplicaSet) noteChunk() {
	if rs.rebalanceEvery <= 0 || rs.NumShards() < 2 {
		return
	}
	if rs.chunkCount.Add(1)%uint64(rs.rebalanceEvery) != 0 {
		return
	}
	if rs.shardSkew() > rs.rebalanceSkew {
		rs.Rebalance()
	}
}

// shardSkew is the hottest shard's resident load over the mean shard load
// (1 when perfectly balanced; +Inf-free: 0 loads give skew 0).
func (rs *ReplicaSet) shardSkew() float64 {
	m := rs.shards.Load()
	total, max := 0, 0
	for _, shard := range m.shards {
		load := 0
		for _, p := range shard {
			load += rs.store.Load(p)
		}
		total += load
		if load > max {
			max = load
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(m.shards))
	return float64(max) / mean
}

// Rebalance rewrites the shard map by current resident load: platforms are
// assigned greedily, heaviest first, to the lightest shard (deterministic
// tie-breaks on index), then each shard is sorted so replica scoring order
// stays ascending. Replicas pick the new map up at their next chunk;
// placements that straddle the swap are protected by the commit protocol.
func (rs *ReplicaSet) Rebalance() {
	rs.rebalanceM.Lock()
	defer rs.rebalanceM.Unlock()
	nShards := rs.NumShards()
	type platLoad struct{ p, load int }
	pls := make([]platLoad, rs.cfg.NumPlatforms)
	for p := range pls {
		pls[p] = platLoad{p: p, load: rs.store.Load(p)}
	}
	sort.Slice(pls, func(i, j int) bool {
		if pls[i].load != pls[j].load {
			return pls[i].load > pls[j].load
		}
		return pls[i].p < pls[j].p
	})
	shards := make([][]int, nShards)
	loads := make([]int, nShards)
	for _, pl := range pls {
		li := 0
		for s := 1; s < nShards; s++ {
			if loads[s] < loads[li] {
				li = s
			}
		}
		shards[li] = append(shards[li], pl.p)
		loads[li] += pl.load
	}
	for _, shard := range shards {
		sort.Ints(shard)
	}
	rs.shards.Store(&shardMap{shards: shards})
	rs.rebalances.Add(1)
}

// ConflictStats returns the commit protocol's counters.
func (rs *ReplicaSet) ConflictStats() ConflictStats {
	return ConflictStats{
		Attempts:   rs.store.reserveAttempts.Load(),
		Conflicts:  rs.store.reserveConflictsCnt.Load(),
		Shed:       rs.sumShed(),
		Rebalances: rs.rebalances.Load(),
	}
}

func (rs *ReplicaSet) sumShed() uint64 {
	var n uint64
	for _, r := range rs.replicas {
		n += r.shed.Load()
	}
	return n
}

// ReplicaStats returns per-replica commit traffic, indexed by replica.
func (rs *ReplicaSet) ReplicaStats() []ReplicaStats {
	out := make([]ReplicaStats, len(rs.replicas))
	for i, r := range rs.replicas {
		out[i] = ReplicaStats{
			Commits:   r.commits.Load(),
			Conflicts: r.conflicts.Load(),
			Shed:      r.shed.Load(),
		}
	}
	return out
}

// Store returns the shared slot store (shared-state introspection).
func (rs *ReplicaSet) Store() *SlotStore { return rs.store }

// Lifecycle surface, delegated to the shared store so every replica and
// external caller sees one cluster.

// Complete frees the colocation slot of a placed job.
func (rs *ReplicaSet) Complete(id JobID) error { return rs.store.Complete(id) }

// CompleteOutcome is Complete plus a breaker outcome report.
func (rs *ReplicaSet) CompleteOutcome(id JobID, miss bool) (bool, error) {
	return rs.store.CompleteOutcome(id, miss)
}

// Fail marks a platform Down, orphaning its residents exactly once.
func (rs *ReplicaSet) Fail(p int) ([]Orphan, error) { return rs.store.Fail(p) }

// Degrade marks a platform Degraded.
func (rs *ReplicaSet) Degrade(p int) error { return rs.store.Degrade(p) }

// Recover advances a platform toward Healthy.
func (rs *ReplicaSet) Recover(p int) error { return rs.store.Recover(p) }

// Health returns a platform's current state.
func (rs *ReplicaSet) Health(p int) HealthState { return rs.store.Health(p) }

// HealthSnapshot returns a copy of every platform's health state.
func (rs *ReplicaSet) HealthSnapshot() []HealthState { return rs.store.HealthSnapshot() }

// Impaired returns the number of platforms not currently Healthy.
func (rs *ReplicaSet) Impaired() int { return rs.store.Impaired() }

// FailureStats returns the failure-lifecycle counters.
func (rs *ReplicaSet) FailureStats() FailureStats { return rs.store.FailureStats() }

// InFlight returns the number of placed jobs that have not completed.
func (rs *ReplicaSet) InFlight() int { return rs.store.InFlight() }

// Residents returns a copy of the workloads currently placed on platform
// p.
func (rs *ReplicaSet) Residents(p int) []int { return rs.store.Residents(p) }
