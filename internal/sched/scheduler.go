package sched

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
)

// placedJob is one resident of a platform: the job's identity plus the
// job itself, kept whole so a platform failure can orphan its residents
// back into the retry path with deadlines intact.
type placedJob struct {
	id  JobID
	job Job
}

// Scheduler assigns jobs to platforms with a policy and tracks the live
// cluster state: placements occupy colocation slots until Complete frees
// them. Safe for concurrent use — Place, PlaceAll, Complete, and the
// accessors may be called from any number of goroutines; the cluster state
// is guarded by one mutex while predictor reads stay lock-free inside the
// predictor itself. PlaceAll holds the mutex only one chunk of jobs at a
// time (Config.WaveChunk), so completions and competing placements
// interleave mid-wave instead of stalling behind a long wave.
type Scheduler struct {
	cfg      Config
	policy   Policy
	strategy Strategy
	pred     Predictor

	// bpred/bpolicy are non-nil when batched scoring is active: the
	// predictor scores a job's whole candidate set (or a whole wave) in
	// one call instead of one scalar call per platform. dpolicy is non-nil
	// when the policy scores feasibility and ranking separately (mixed
	// mean/bound policies); with a FusedPredictor both facets of a wave
	// come out of one fused two-head pass.
	bpred   BatchPredictor
	bpolicy BatchPolicy
	dpolicy DualPolicy

	// chunk is the resolved Config.WaveChunk: max jobs placed per lock
	// hold in PlaceAll.
	chunk int

	// degradedPenalty multiplies the feasibility score of candidates on
	// Degraded platforms (resolved Config.DegradedPenalty, ≥ 1); breaker is
	// the resolved circuit-breaker tuning.
	degradedPenalty float64
	breaker         BreakerConfig

	mu         sync.Mutex
	residents  [][]placedJob
	platformOf map[JobID]int
	nextID     JobID
	healths    []platformHealth
	stats      FailureStats

	// scratch is the wave path's reusable working set (guarded by mu):
	// steady-state PlaceAll waves allocate only resident snapshots and the
	// returned assignments.
	scratch waveScratch

	// chunkGap, when non-nil, runs between chunk lock holds of PlaceAll
	// (test hook: deterministic mid-wave interleaving).
	chunkGap func()

	// met/rec are the optional observability hooks (Config.Metrics /
	// Config.Recorder); both nil-safe, both off the decision path. ver
	// reads the predictor's snapshot version for event stamping when the
	// predictor exposes one.
	met *obs.SchedMetrics
	rec *obs.Recorder
	ver func() uint64

	// cache is the cross-wave score cache (Config.ScoreCache); nil when
	// disabled. slotVers mirrors SlotStore's per-platform versions for the
	// locked scheduler: a per-platform counter bumped (under mu) by every
	// resident-set or health mutation, so a cached column keyed to it is
	// provably computed against the current interference state. epochFn
	// reads the predictor's scoring epoch (snapshot version + fast-scoring
	// mode); a change invalidates every column at once.
	cache    *ScoreCache
	slotVers []uint64
	epochFn  func() uint64
}

// snapshotVersioner is the optional predictor facet exposing a snapshot
// version; flight-recorder events are stamped with it so a trace ties each
// decision to the model state that made it.
type snapshotVersioner interface{ Version() uint64 }

// snapVersion returns the predictor's current snapshot version, or 0 when
// the predictor does not expose one. Only called on recording paths.
func (s *Scheduler) snapVersion() uint64 {
	if s.ver == nil {
		return 0
	}
	return s.ver()
}

// defaultWaveChunk bounds a PlaceAll lock hold when Config.WaveChunk is 0:
// large enough to amortize the wave pre-score, small enough that a
// concurrent Complete waits microseconds, not a whole 256-job wave.
const defaultWaveChunk = 64

// defaultDegradedPenalty inflates the feasibility score on Degraded
// platforms when Config.DegradedPenalty is 0: a degraded platform must
// clear the deadline with 25% headroom to win a placement.
const defaultDegradedPenalty = 1.25

// waveScratch holds PlaceAll's per-wave buffers for reuse across waves.
// The *Rank twins carry the ranking facet of dual policies; they are left
// untouched on the single-head path.
type waveScratch struct {
	qs          []Query
	pre         []float64
	preRank     []float64
	scoreAt     []float64
	rankAt      []float64
	snap        [][]int
	prescored   []bool
	cands       []Candidate
	snaps       [][]int
	rescoreQ    []Query
	rescore     []float64
	rescoreRank []float64

	// Memoized-path buffers (reserveCache; sized to the chunk's job count,
	// allocated only when the score cache is enabled): the wave's distinct
	// workloads and each job's index into them, the per-column
	// feasibility/rank/hit triple, and the cache-miss working set.
	distinct []int
	dIdx     []int
	colFeas  []float64
	colRank  []float64
	colHit   []bool
	missW    []int
	missFeas []float64
	missRank []float64
	colQ     []Query
}

// reserve grows the scratch buffers to a wave of nJ jobs over nP
// platforms.
func (sc *waveScratch) reserve(nP, nJ int) {
	if cap(sc.qs) < nP*nJ {
		sc.qs = make([]Query, 0, nP*nJ)
		sc.pre = make([]float64, nP*nJ)
		sc.preRank = make([]float64, nP*nJ)
		sc.scoreAt = make([]float64, nP*nJ)
		sc.rankAt = make([]float64, nP*nJ)
	}
	if cap(sc.snap) < nP {
		sc.snap = make([][]int, nP)
		sc.prescored = make([]bool, nP)
		sc.cands = make([]Candidate, 0, nP)
		sc.snaps = make([][]int, 0, nP)
	}
	if cap(sc.rescoreQ) < nJ {
		sc.rescoreQ = make([]Query, 0, nJ)
		sc.rescore = make([]float64, nJ)
		sc.rescoreRank = make([]float64, nJ)
	}
}

// reserveCache grows the memoized-path buffers to a chunk of nJ jobs over
// nP platforms: the column value/hit grids span every prescored column so
// the chunk's cache misses can be scored in one batched call. Called only
// on the cached path, so cache-off schedulers never pay the allocation.
func (sc *waveScratch) reserveCache(nP, nJ int) {
	if cap(sc.dIdx) >= nJ && cap(sc.colFeas) >= nP*nJ {
		return
	}
	sc.distinct = make([]int, 0, nJ)
	sc.dIdx = make([]int, nJ)
	sc.colFeas = make([]float64, nP*nJ)
	sc.colRank = make([]float64, nP*nJ)
	sc.colHit = make([]bool, nP*nJ)
	sc.missW = make([]int, 0, nP*nJ)
	sc.missFeas = make([]float64, nP*nJ)
	sc.missRank = make([]float64, nP*nJ)
	sc.colQ = make([]Query, 0, nP*nJ)
}

// New creates a scheduler. The batch scoring path engages automatically
// when pred implements BatchPredictor and policy implements BatchPolicy
// (all built-in policies do), unless cfg.DisableBatch is set; dual-head
// policies (DualPolicy) additionally score through one fused pass when the
// predictor implements FusedPredictor.
func New(cfg Config, policy Policy, pred Predictor) (*Scheduler, error) {
	if cfg.NumPlatforms <= 0 {
		return nil, fmt.Errorf("sched: no platforms")
	}
	if cfg.MaxColocation <= 0 {
		cfg.MaxColocation = 4
	}
	if cfg.Strategy == nil {
		cfg.Strategy = LeastLoaded{}
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("sched: negative MaxInFlight")
	}
	chunk := cfg.WaveChunk
	if chunk == 0 {
		chunk = defaultWaveChunk
	}
	penalty := cfg.DegradedPenalty
	if penalty == 0 {
		penalty = defaultDegradedPenalty
	}
	if penalty < 1 {
		return nil, fmt.Errorf("sched: DegradedPenalty %v < 1", penalty)
	}
	s := &Scheduler{
		cfg:             cfg,
		policy:          policy,
		strategy:        cfg.Strategy,
		pred:            pred,
		chunk:           chunk,
		degradedPenalty: penalty,
		breaker:         cfg.Breaker.withDefaults(),
		residents:       make([][]placedJob, cfg.NumPlatforms),
		platformOf:      make(map[JobID]int),
		healths:         make([]platformHealth, cfg.NumPlatforms),
		met:             cfg.Metrics,
		rec:             cfg.Recorder,
	}
	if v, ok := pred.(snapshotVersioner); ok {
		s.ver = v.Version
	}
	if dp, ok := policy.(DualPolicy); ok {
		s.dpolicy = dp
	}
	if !cfg.DisableBatch {
		bp, okP := pred.(BatchPredictor)
		bpol, okPol := policy.(BatchPolicy)
		if okP && okPol {
			s.bpred, s.bpolicy = bp, bpol
		}
	}
	if cfg.ScoreCacheCap < 0 {
		return nil, fmt.Errorf("sched: negative ScoreCacheCap")
	}
	// The score cache memoizes the batched wave path; the scalar arm has
	// no wave scoring to reuse, so ScoreCache is a no-op there.
	if cfg.ScoreCache && s.bpred != nil {
		s.cache = newScoreCache(cfg.NumPlatforms, cfg.ScoreCacheCap)
		s.slotVers = make([]uint64, cfg.NumPlatforms)
		s.epochFn = resolveEpochFn(pred)
	}
	return s, nil
}

// epoch returns the predictor's current scoring epoch, or 0 for
// epoch-less predictors (immutable for the scheduler's lifetime).
func (s *Scheduler) epoch() uint64 {
	if s.epochFn == nil {
		return 0
	}
	return s.epochFn()
}

// ScoreCacheStats returns the score cache's counters and whether the
// cache is enabled on this scheduler.
func (s *Scheduler) ScoreCacheStats() (ScoreCacheStats, bool) {
	if s.cache == nil {
		return ScoreCacheStats{}, false
	}
	return s.cache.Stats(), true
}

// bumpSlotLocked advances platform p's mutation counter; every
// resident-set or effective-capacity change must pass through here so
// cached score columns keyed to the old version can never be served
// against the new state.
func (s *Scheduler) bumpSlotLocked(p int) {
	if s.slotVers != nil {
		s.slotVers[p]++
	}
}

// Batched reports whether placements score candidates through the batched
// predictor path.
func (s *Scheduler) Batched() bool { return s.bpred != nil }

// Fused reports whether placements score both policy facets through one
// fused two-head predictor pass.
func (s *Scheduler) Fused() bool {
	if s.bpred == nil || s.dpolicy == nil {
		return false
	}
	_, ok := s.bpred.(FusedPredictor)
	return ok
}

// Residents returns a copy of the workloads currently placed on platform
// p; mutating it never affects scheduler state.
func (s *Scheduler) Residents(p int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.residentWorkloadsLocked(p)
}

// InFlight returns the number of placed jobs that have not completed.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.platformOf)
}

// residentWorkloadsLocked builds a fresh workload-index snapshot of
// platform p. Callers may hand it to policies or return it to callers;
// it never aliases internal state.
func (s *Scheduler) residentWorkloadsLocked(p int) []int {
	rs := s.residents[p]
	if len(rs) == 0 {
		return nil
	}
	ks := make([]int, len(rs))
	for i, r := range rs {
		ks[i] = r.job.Workload
	}
	return ks
}

// Place assigns one job: among feasible platforms (score ≤ deadline after
// accounting for the interference the job will experience from residents),
// the configured Strategy picks the winner. The returned assignment is
// unplaced when no platform is feasible, and Rejected when admission
// control refused the job outright (MaxInFlight reached).
func (s *Scheduler) Place(job Job) Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.placeLocked(job)
}

func (s *Scheduler) placeLocked(job Job) Assignment {
	if s.cfg.MaxInFlight > 0 && len(s.platformOf) >= s.cfg.MaxInFlight {
		return Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Rejected: true, Reason: ReasonAdmission}
	}
	// Candidate set: placeable platforms with a free colocation slot, each
	// scored under a fresh resident snapshot (the snapshot may escape into
	// the returned Assignment; the candidate/query buffers are scratch,
	// reused across calls under the mutex). Down/Quarantined platforms are
	// never candidates; half-open platforms take one trial job.
	sc := &s.scratch
	sc.reserve(s.cfg.NumPlatforms, 1)
	cands := sc.cands[:0]
	snaps := sc.snaps[:0]
	placeable := 0
	for p := 0; p < s.cfg.NumPlatforms; p++ {
		if !s.healths[p].state.Placeable() {
			continue
		}
		placeable++
		if len(s.residents[p])+1 > s.colocCapLocked(p) {
			continue
		}
		cands = append(cands, Candidate{
			Platform: p,
			Load:     len(s.residents[p]),
			Degraded: s.healths[p].state == Degraded,
		})
		snaps = append(snaps, s.residentWorkloadsLocked(p))
	}
	switch {
	case s.bpred != nil:
		qs := sc.qs[:0]
		for i, c := range cands {
			qs = append(qs, Query{Workload: job.Workload, Platform: c.Platform, Interferers: snaps[i]})
		}
		feas := sc.pre[:len(qs)]
		if s.dpolicy != nil {
			rank := sc.preRank[:len(qs)]
			s.dpolicy.ScoreDualBatch(s.bpred, qs, feas, rank)
			for i := range cands {
				cands[i].Score, cands[i].Rank = feas[i], rank[i]
			}
		} else {
			s.bpolicy.ScoreBatch(s.bpred, qs, feas)
			for i := range cands {
				cands[i].Score, cands[i].Rank = feas[i], feas[i]
			}
		}
	case s.dpolicy != nil:
		for i, c := range cands {
			cands[i].Score, cands[i].Rank = s.dpolicy.ScoreDual(s.pred, job, c.Platform, snaps[i])
		}
	default:
		for i, c := range cands {
			v := s.policy.Score(s.pred, job, c.Platform, snaps[i])
			cands[i].Score, cands[i].Rank = v, v
		}
	}
	s.padDegraded(cands)
	return s.commitBest(job, cands, snaps, placeable)
}

// padDegraded inflates the feasibility score of candidates on Degraded
// platforms by the configured penalty — the same float operation on every
// scoring path (scalar, batch, fused), so degraded padding preserves the
// paths' decision identity. Only the feasibility facet is padded: Rank
// keeps the raw prediction, because strategies interpret it as runtime
// (LeastLoaded keeps fast platforms free, BestFit packs tight) and a
// padded rank would make degraded platforms look slower — and therefore
// *more* attractive — to both. The preference for healthy platforms is
// the strategies' explicit Degraded tie-break instead.
func (s *Scheduler) padDegraded(cands []Candidate) {
	padDegradedCands(cands, s.degradedPenalty)
}

// padDegradedCands is the padding shared by the locked scheduler and the
// replicated placement path (Replica), so both arms apply the identical
// float operation.
func padDegradedCands(cands []Candidate, penalty float64) {
	for i := range cands {
		if cands[i].Degraded {
			cands[i].Score *= penalty
		}
	}
}

// bestCandidate returns the index of the strategy-best feasible candidate:
// NaN scores (unplaceable), +Inf scores (no valid bound), and scores past
// the deadline are infeasible; the strategy orders the rest by Rank. -1
// when nothing is feasible. Shared by commitBest and the replicated
// placement path so a replica's selection is bitwise the scheduler's.
func bestCandidate(strategy Strategy, job Job, cands []Candidate) int {
	bestIdx := -1
	for i, c := range cands {
		if math.IsNaN(c.Score) || math.IsInf(c.Score, 1) || c.Score > job.Deadline {
			continue
		}
		if bestIdx < 0 || strategy.Better(job, c, cands[bestIdx]) {
			bestIdx = i
		}
	}
	return bestIdx
}

// unplacedReason explains a failed selection: placeable is how many
// platforms were healthy enough to consider, nCands how many had a free
// slot and were scored.
func unplacedReason(placeable, nCands int) string {
	switch {
	case placeable == 0:
		return ReasonNoHealthy
	case nCands == 0:
		return ReasonCapacity
	}
	return ReasonInfeasible
}

// commitBest selects the strategy-best feasible candidate and commits the
// placement. Feasibility is judged on Candidate.Score; the strategy orders
// by Candidate.Rank. snaps[i] is the resident snapshot cands[i] was scored
// under; placeable is how many platforms were healthy enough to be
// considered at all, distinguishing a shrunken healthy set from a full or
// infeasible one in the unplaced Reason.
func (s *Scheduler) commitBest(job Job, cands []Candidate, snaps [][]int, placeable int) Assignment {
	bestIdx := bestCandidate(s.strategy, job, cands)
	if bestIdx < 0 {
		reason := unplacedReason(placeable, len(cands))
		if s.rec != nil {
			s.rec.Record(obs.Event{Kind: obs.EvShed, Reason: obs.ParseReason(reason),
				Platform: -1, Version: s.snapVersion()})
		}
		return Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Reason: reason}
	}
	best := cands[bestIdx]
	s.nextID++
	id := s.nextID
	s.residents[best.Platform] = append(s.residents[best.Platform], placedJob{id: id, job: job})
	s.platformOf[id] = best.Platform
	s.bumpSlotLocked(best.Platform)
	if s.rec != nil {
		s.rec.Record(obs.Event{Kind: obs.EvPlace, Job: uint64(id), ID: uint64(id),
			Platform: int32(best.Platform), Version: s.snapVersion()})
	}
	return Assignment{
		ID:          id,
		Job:         job,
		Platform:    best.Platform,
		Budget:      best.Score,
		Interferers: snaps[bestIdx],
	}
}

// Complete frees the colocation slot of a placed job; residents change
// over time, so later placements see the vacancy. Returns ErrUnknownJob
// for IDs never issued and ErrJobCompleted for IDs already retired
// (completed earlier, or orphaned by a platform failure) — both typed, so
// callers can tell a caller bug from a benign duplicate without the
// scheduler silently corrupting slot accounting. Under a concurrent
// chunked PlaceAll, Complete waits at most one chunk's scoring, never the
// whole wave.
func (s *Scheduler) Complete(id JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.completeLocked(id)
	return err
}

// completeLocked retires id and frees its slot, returning the platform it
// ran on.
func (s *Scheduler) completeLocked(id JobID) (int, error) {
	p, ok := s.platformOf[id]
	if !ok {
		if id > 0 && id <= s.nextID {
			return -1, ErrJobCompleted
		}
		return -1, ErrUnknownJob
	}
	delete(s.platformOf, id)
	rs := s.residents[p]
	for i := range rs {
		if rs[i].id == id {
			s.residents[p] = append(rs[:i], rs[i+1:]...)
			s.bumpSlotLocked(p)
			if s.rec != nil {
				s.rec.Record(obs.Event{Kind: obs.EvComplete, Job: uint64(id), ID: uint64(id),
					Platform: int32(p)})
			}
			return p, nil
		}
	}
	// platformOf and residents are updated together under the lock; a
	// missing entry would mean corrupted bookkeeping.
	panic("sched: job in platformOf but not in residents")
}

// PlaceAll places a wave of jobs in arrival order. The wave is processed
// in chunks of Config.WaveChunk jobs, each chunk atomic with respect to
// concurrent Place/Complete and the scheduler lock released between
// chunks: a completion arriving mid-wave lands between chunks, frees its
// slot, and the following chunks see the vacancy — the event loop stays
// responsive under long waves. With no concurrent events, decisions are
// identical to the unchunked wave (and to calling Place per job): each
// chunk pre-scores against the cluster state its first job would see, and
// scores are per-query deterministic, so chunk boundaries never change a
// selection.
//
// Within a chunk the batched path pre-scores every job on every platform
// in a single predictor call — queries laid out platform-major so each
// platform's resident set (and therefore its interference term) is folded
// once, per model — and eagerly re-scores a platform dirtied by a
// placement for the chunk's remaining jobs in one wide span. Dual-head
// policies fill both the feasibility and ranking facets from the same
// pass (one fused call when the predictor supports it).
func (s *Scheduler) PlaceAll(jobs []Job) []Assignment {
	// Observability is guarded per-site so the disabled path never calls
	// time.Now: one predictable branch per chunk, zero allocations.
	var waveStart time.Time
	if s.met != nil {
		waveStart = time.Now()
		s.met.WaveSize.Observe(float64(len(jobs)))
	}
	out := make([]Assignment, len(jobs))
	chunk := s.chunk
	if chunk < 0 || chunk > len(jobs) {
		chunk = len(jobs)
	}
	for lo := 0; lo < len(jobs); lo += chunk {
		hi := lo + chunk
		if hi > len(jobs) {
			hi = len(jobs)
		}
		s.mu.Lock()
		var holdStart time.Time
		if s.met != nil {
			holdStart = time.Now()
		}
		s.placeWaveLocked(jobs[lo:hi], out[lo:hi])
		if s.met != nil {
			s.met.ChunkHold.ObserveSince(holdStart)
		}
		s.mu.Unlock()
		if s.chunkGap != nil && hi < len(jobs) {
			s.chunkGap()
		}
	}
	if s.met != nil {
		s.met.WavePlace.ObserveSince(waveStart)
	}
	return out
}

// placeWaveLocked places one chunk of jobs under the held lock, filling
// out[i] for jobs[i].
func (s *Scheduler) placeWaveLocked(jobs []Job, out []Assignment) {
	if s.bpred == nil {
		for i, j := range jobs {
			out[i] = s.placeLocked(j)
		}
		return
	}
	dual := s.dpolicy != nil
	nP, nJ := s.cfg.NumPlatforms, len(jobs)
	sc := &s.scratch
	sc.reserve(nP, nJ)

	// Chunk pre-score against the chunk-start state, one batched call.
	// Queries are built platform-major, so pre[] maps back to (p, j) by
	// walking the platforms in the same order — no index bookkeeping.
	// Health is fixed for the chunk: Fail/Degrade/Recover take the same
	// mutex, so they land between chunks, never mid-chunk. On the memoized
	// path the query build is skipped: columns go through the dedup + cache
	// machinery in prescoreCachedLocked instead.
	qs := sc.qs[:0]
	snap := sc.snap[:nP]
	prescored := sc.prescored[:nP]
	placeable := 0
	for p := 0; p < nP; p++ {
		snap[p], prescored[p] = nil, false
		if !s.healths[p].state.Placeable() {
			continue // down/quarantined: never a candidate this chunk
		}
		placeable++
		if len(s.residents[p]) >= s.colocCapLocked(p) {
			continue // full at chunk start; can only stay full mid-chunk
		}
		snap[p], prescored[p] = s.residentWorkloadsLocked(p), true
		if s.cache != nil {
			continue
		}
		for j := range jobs {
			qs = append(qs, Query{Workload: jobs[j].Workload, Platform: p, Interferers: snap[p]})
		}
	}
	scoreAt := sc.scoreAt[:nP*nJ]
	rankAt := sc.rankAt[:nP*nJ]
	if s.cache != nil {
		s.prescoreCachedLocked(jobs, snap, prescored, scoreAt, rankAt, dual)
	} else {
		pre := sc.pre[:len(qs)]
		preRank := sc.preRank[:len(qs)]
		var scoreStart time.Time
		if s.met != nil {
			scoreStart = time.Now()
		}
		if dual {
			s.dpolicy.ScoreDualBatch(s.bpred, qs, pre, preRank)
		} else {
			s.bpolicy.ScoreBatch(s.bpred, qs, pre)
		}
		if s.met != nil {
			s.met.ScoreBatch.ObserveSince(scoreStart)
		}
		if s.rec != nil {
			s.rec.Record(obs.Event{Kind: obs.EvScore, Platform: -1, N: int32(nJ),
				Version: s.snapVersion()})
		}
		next := 0
		for p := 0; p < nP; p++ {
			if !prescored[p] {
				for j := 0; j < nJ; j++ {
					scoreAt[p*nJ+j] = math.NaN()
				}
				continue
			}
			copy(scoreAt[p*nJ:(p+1)*nJ], pre[next:next+nJ])
			if dual {
				copy(rankAt[p*nJ:(p+1)*nJ], preRank[next:next+nJ])
			}
			next += nJ
		}
	}

	cands := sc.cands[:0]
	snaps := sc.snaps[:0]
	rescoreQ := sc.rescoreQ[:0]
	rescore := sc.rescore[:0]
	rescoreRank := sc.rescoreRank[:0]
	for j, job := range jobs {
		if s.cfg.MaxInFlight > 0 && len(s.platformOf) >= s.cfg.MaxInFlight {
			out[j] = Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Rejected: true, Reason: ReasonAdmission}
			continue
		}
		cands, snaps = cands[:0], snaps[:0]
		for p := 0; p < nP; p++ {
			if !s.healths[p].state.Placeable() {
				continue
			}
			if len(s.residents[p])+1 > s.colocCapLocked(p) {
				continue
			}
			c := Candidate{
				Platform: p,
				Load:     len(s.residents[p]),
				Score:    scoreAt[p*nJ+j],
				Degraded: s.healths[p].state == Degraded,
			}
			if dual {
				c.Rank = rankAt[p*nJ+j]
			} else {
				c.Rank = c.Score
			}
			cands = append(cands, c)
			snaps = append(snaps, snap[p])
		}
		s.padDegraded(cands)
		out[j] = s.commitBest(job, cands, snaps, placeable)
		p := out[j].Platform
		if p < 0 || j+1 == nJ {
			continue
		}
		// Re-score the just-dirtied platform for the chunk's remaining
		// jobs: one span, one interference fold over its updated residents
		// (per model).
		ks := s.residentWorkloadsLocked(p)
		snap[p] = ks
		if len(s.residents[p]) >= s.colocCapLocked(p) {
			continue // full now; remaining jobs exclude it by the cap check
		}
		if s.cache != nil {
			// Memoized path: the commit above bumped p's slot version, so
			// this scores (and caches) the column under its new residents.
			s.rescoreCachedLocked(p, jobs, j+1, ks, scoreAt, rankAt, dual)
			continue
		}
		rescoreQ = rescoreQ[:0]
		for r := j + 1; r < nJ; r++ {
			rescoreQ = append(rescoreQ, Query{Workload: jobs[r].Workload, Platform: p, Interferers: ks})
		}
		rescore = rescore[:len(rescoreQ)]
		if dual {
			rescoreRank = rescoreRank[:len(rescoreQ)]
			s.dpolicy.ScoreDualBatch(s.bpred, rescoreQ, rescore, rescoreRank)
		} else {
			s.bpolicy.ScoreBatch(s.bpred, rescoreQ, rescore)
		}
		for i, r := 0, j+1; r < nJ; i, r = i+1, r+1 {
			scoreAt[p*nJ+r] = rescore[i]
			if dual {
				rankAt[p*nJ+r] = rescoreRank[i]
			}
		}
	}
}

// prescoreCachedLocked is placeWaveLocked's memoized pre-score: the
// chunk's jobs are deduped to distinct workloads once (level 1), then each
// prescored platform's distinct column is served through the cross-wave
// cache (level 2). Misses from every column are scored in ONE batched
// policy call — matching the uncached path's single-batch efficiency —
// then scattered back and stored per column. The scoring epoch is captured
// once for the chunk, so a concurrent Observe publish mid-chunk narrows —
// never widens — the window of mixed-snapshot scores the uncached path
// already tolerates.
func (s *Scheduler) prescoreCachedLocked(jobs []Job, snap [][]int, prescored []bool, scoreAt, rankAt []float64, dual bool) {
	nP, nJ := s.cfg.NumPlatforms, len(jobs)
	sc := &s.scratch
	sc.reserveCache(nP, nJ)
	distinct, nD := dedupJobs(jobs, 0, sc.distinct, sc.dIdx)
	sc.distinct = distinct
	epoch := s.epoch()
	cached := 0
	qs := sc.colQ[:0]
	missAt := sc.missW[:0] // flat column-grid index (p*nD+d) per miss
	for p := 0; p < nP; p++ {
		if !prescored[p] {
			for j := 0; j < nJ; j++ {
				scoreAt[p*nJ+j] = math.NaN()
			}
			continue
		}
		base := p * nD
		feas := sc.colFeas[base : base+nD]
		rank := sc.colRank[base : base+nD]
		hit := sc.colHit[base : base+nD]
		var lookStart time.Time
		if s.met != nil {
			lookStart = time.Now()
		}
		nHit := s.cache.lookup(p, s.slotVers[p], epoch, distinct, feas, rank, hit)
		if s.met != nil {
			s.met.CacheLookup.ObserveSince(lookStart)
		}
		cached += nHit
		if nHit == nD {
			continue
		}
		for d, w := range distinct {
			if !hit[d] {
				qs = append(qs, Query{Workload: w, Platform: p, Interferers: snap[p]})
				missAt = append(missAt, base+d)
			}
		}
	}
	if len(qs) > 0 {
		missFeas := sc.missFeas[:len(qs)]
		missRank := sc.missRank[:len(qs)]
		var scoreStart time.Time
		if s.met != nil {
			scoreStart = time.Now()
		}
		if dual {
			s.dpolicy.ScoreDualBatch(s.bpred, qs, missFeas, missRank)
		} else {
			s.bpolicy.ScoreBatch(s.bpred, qs, missFeas)
			copy(missRank, missFeas)
		}
		if s.met != nil {
			s.met.ScoreBatch.ObserveSince(scoreStart)
		}
		for i, at := range missAt {
			sc.colFeas[at], sc.colRank[at] = missFeas[i], missRank[i]
		}
		// Store each refreshed column back whole; entries that were hits
		// already exist under the same key and are skipped by the insert
		// guard, so this is one pass per column, not per miss.
		prev := -1
		for _, at := range missAt {
			p := at / nD
			if p == prev {
				continue
			}
			prev = p
			base := p * nD
			s.cache.store(p, s.slotVers[p], epoch, distinct,
				sc.colFeas[base:base+nD], sc.colRank[base:base+nD])
		}
	}
	for p := 0; p < nP; p++ {
		if !prescored[p] {
			continue
		}
		base := p * nD
		for j := 0; j < nJ; j++ {
			d := sc.dIdx[j]
			scoreAt[p*nJ+j] = sc.colFeas[base+d]
			if dual {
				rankAt[p*nJ+j] = sc.colRank[base+d]
			}
		}
	}
	if s.rec != nil {
		s.rec.Record(obs.Event{Kind: obs.EvScore, Platform: -1, N: int32(nJ),
			Cached: int32(cached), Version: s.snapVersion()})
	}
}

// rescoreCachedLocked is the memoized twin of the dirty-platform rescore
// span: jobs[from:] are deduped (level 1) and platform p's distinct column
// is scored in one small batch. The cross-wave cache is deliberately NOT
// consulted or fed here: the commit this rescore follows just bumped p's
// slot version, so a lookup can never hit, and a stored column would
// survive only until the placed job's completion bumps the version again —
// the next wave's prescore re-scores (and caches) the column alongside its
// other misses for the same batched cost.
func (s *Scheduler) rescoreCachedLocked(p int, jobs []Job, from int, ks []int, scoreAt, rankAt []float64, dual bool) {
	nJ := len(jobs)
	sc := &s.scratch
	distinct, nD := dedupJobs(jobs, from, sc.distinct, sc.dIdx)
	sc.distinct = distinct
	feas := sc.colFeas[:nD]
	rank := sc.colRank[:nD]
	qs := sc.colQ[:0]
	for _, w := range distinct {
		qs = append(qs, Query{Workload: w, Platform: p, Interferers: ks})
	}
	if dual {
		s.dpolicy.ScoreDualBatch(s.bpred, qs, feas, rank)
	} else {
		s.bpolicy.ScoreBatch(s.bpred, qs, feas)
	}
	for i, r := 0, from; r < nJ; i, r = i+1, r+1 {
		d := sc.dIdx[i]
		scoreAt[p*nJ+r] = feas[d]
		if dual {
			rankAt[p*nJ+r] = rank[d]
		}
	}
}
