package sched

import (
	"fmt"
	"math"
	"sync"
)

// placedJob is one resident of a platform: the job's identity plus its
// workload index (several jobs may run the same workload).
type placedJob struct {
	id       JobID
	workload int
}

// Scheduler assigns jobs to platforms with a policy and tracks the live
// cluster state: placements occupy colocation slots until Complete frees
// them. Safe for concurrent use — Place, PlaceAll, Complete, and the
// accessors may be called from any number of goroutines; the cluster state
// is guarded by one mutex while predictor reads stay lock-free inside the
// predictor itself.
type Scheduler struct {
	cfg      Config
	policy   Policy
	strategy Strategy
	pred     Predictor

	// bpred/bpolicy are non-nil when batched scoring is active: the
	// predictor scores a job's whole candidate set (or a whole wave) in
	// one call instead of one scalar call per platform.
	bpred   BatchPredictor
	bpolicy BatchPolicy

	mu         sync.Mutex
	residents  [][]placedJob
	platformOf map[JobID]int
	nextID     JobID

	// scratch is the wave path's reusable working set (guarded by mu):
	// steady-state PlaceAll waves allocate only resident snapshots and the
	// returned assignments.
	scratch waveScratch
}

// waveScratch holds PlaceAll's per-wave buffers for reuse across waves.
type waveScratch struct {
	qs        []Query
	pre       []float64
	scoreAt   []float64
	snap      [][]int
	prescored []bool
	cands     []Candidate
	snaps     [][]int
	rescoreQ  []Query
	rescore   []float64
}

// reserve grows the scratch buffers to a wave of nJ jobs over nP
// platforms.
func (sc *waveScratch) reserve(nP, nJ int) {
	if cap(sc.qs) < nP*nJ {
		sc.qs = make([]Query, 0, nP*nJ)
		sc.pre = make([]float64, nP*nJ)
		sc.scoreAt = make([]float64, nP*nJ)
	}
	if cap(sc.snap) < nP {
		sc.snap = make([][]int, nP)
		sc.prescored = make([]bool, nP)
		sc.cands = make([]Candidate, 0, nP)
		sc.snaps = make([][]int, 0, nP)
	}
	if cap(sc.rescoreQ) < nJ {
		sc.rescoreQ = make([]Query, 0, nJ)
		sc.rescore = make([]float64, nJ)
	}
}

// New creates a scheduler. The batch scoring path engages automatically
// when pred implements BatchPredictor and policy implements BatchPolicy
// (all built-in policies do), unless cfg.DisableBatch is set.
func New(cfg Config, policy Policy, pred Predictor) (*Scheduler, error) {
	if cfg.NumPlatforms <= 0 {
		return nil, fmt.Errorf("sched: no platforms")
	}
	if cfg.MaxColocation <= 0 {
		cfg.MaxColocation = 4
	}
	if cfg.Strategy == nil {
		cfg.Strategy = LeastLoaded{}
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("sched: negative MaxInFlight")
	}
	s := &Scheduler{
		cfg:        cfg,
		policy:     policy,
		strategy:   cfg.Strategy,
		pred:       pred,
		residents:  make([][]placedJob, cfg.NumPlatforms),
		platformOf: make(map[JobID]int),
	}
	if !cfg.DisableBatch {
		bp, okP := pred.(BatchPredictor)
		bpol, okPol := policy.(BatchPolicy)
		if okP && okPol {
			s.bpred, s.bpolicy = bp, bpol
		}
	}
	return s, nil
}

// Batched reports whether placements score candidates through the batched
// predictor path.
func (s *Scheduler) Batched() bool { return s.bpred != nil }

// Residents returns a copy of the workloads currently placed on platform
// p; mutating it never affects scheduler state.
func (s *Scheduler) Residents(p int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.residentWorkloadsLocked(p)
}

// InFlight returns the number of placed jobs that have not completed.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.platformOf)
}

// residentWorkloadsLocked builds a fresh workload-index snapshot of
// platform p. Callers may hand it to policies or return it to callers;
// it never aliases internal state.
func (s *Scheduler) residentWorkloadsLocked(p int) []int {
	rs := s.residents[p]
	if len(rs) == 0 {
		return nil
	}
	ks := make([]int, len(rs))
	for i, r := range rs {
		ks[i] = r.workload
	}
	return ks
}

// Place assigns one job: among feasible platforms (score ≤ deadline after
// accounting for the interference the job will experience from residents),
// the configured Strategy picks the winner. The returned assignment is
// unplaced when no platform is feasible, and Rejected when admission
// control refused the job outright (MaxInFlight reached).
func (s *Scheduler) Place(job Job) Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.placeLocked(job)
}

func (s *Scheduler) placeLocked(job Job) Assignment {
	if s.cfg.MaxInFlight > 0 && len(s.platformOf) >= s.cfg.MaxInFlight {
		return Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Rejected: true}
	}
	// Candidate set: platforms with a free colocation slot, each scored
	// under a fresh resident snapshot (the snapshot may escape into the
	// returned Assignment; the candidate/query buffers are scratch, reused
	// across calls under the mutex).
	sc := &s.scratch
	sc.reserve(s.cfg.NumPlatforms, 1)
	cands := sc.cands[:0]
	snaps := sc.snaps[:0]
	for p := 0; p < s.cfg.NumPlatforms; p++ {
		if len(s.residents[p])+1 > s.cfg.MaxColocation {
			continue
		}
		cands = append(cands, Candidate{Platform: p, Load: len(s.residents[p])})
		snaps = append(snaps, s.residentWorkloadsLocked(p))
	}
	if s.bpred != nil {
		qs := sc.qs[:0]
		for i, c := range cands {
			qs = append(qs, Query{Workload: job.Workload, Platform: c.Platform, Interferers: snaps[i]})
		}
		scores := sc.pre[:len(qs)]
		s.bpolicy.ScoreBatch(s.bpred, qs, scores)
		for i := range cands {
			cands[i].Score = scores[i]
		}
	} else {
		for i, c := range cands {
			cands[i].Score = s.policy.Score(s.pred, job, c.Platform, snaps[i])
		}
	}
	return s.commitBest(job, cands, snaps)
}

// commitBest selects the strategy-best feasible candidate and commits the
// placement. snaps[i] is the resident snapshot cands[i] was scored under.
func (s *Scheduler) commitBest(job Job, cands []Candidate, snaps [][]int) Assignment {
	bestIdx := -1
	for i, c := range cands {
		if math.IsNaN(c.Score) || math.IsInf(c.Score, 1) || c.Score > job.Deadline {
			continue
		}
		if bestIdx < 0 || s.strategy.Better(job, c, cands[bestIdx]) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Assignment{Job: job, Platform: -1, Budget: math.Inf(1)}
	}
	best := cands[bestIdx]
	s.nextID++
	id := s.nextID
	s.residents[best.Platform] = append(s.residents[best.Platform], placedJob{id: id, workload: job.Workload})
	s.platformOf[id] = best.Platform
	return Assignment{
		ID:          id,
		Job:         job,
		Platform:    best.Platform,
		Budget:      best.Score,
		Interferers: snaps[bestIdx],
	}
}

// Complete frees the colocation slot of a placed job; residents change
// over time, so later placements see the vacancy. Returns ErrUnknownJob
// for IDs never placed or already completed.
func (s *Scheduler) Complete(id JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.platformOf[id]
	if !ok {
		return ErrUnknownJob
	}
	delete(s.platformOf, id)
	rs := s.residents[p]
	for i := range rs {
		if rs[i].id == id {
			s.residents[p] = append(rs[:i], rs[i+1:]...)
			return nil
		}
	}
	// platformOf and residents are updated together under the lock; a
	// missing entry would mean corrupted bookkeeping.
	panic("sched: job in platformOf but not in residents")
}

// PlaceAll places a wave of jobs in arrival order, atomically with respect
// to concurrent Place/Complete. On the batched path the whole wave is
// pre-scored against the wave-start cluster state in a single predictor
// call — queries are laid out platform-major so every platform's resident
// set (and therefore its interference term) is folded once and shared
// across all jobs in the wave. When a placement changes a platform's
// residents mid-wave, that platform alone is eagerly re-scored for every
// remaining job, again in one wide span with a single fold, so the score
// cache stays current with O(1) folds per placement instead of one per
// (job, platform) pair. Decisions are identical to calling Place per job:
// every selection reads scores computed under the platform's current
// residents.
func (s *Scheduler) PlaceAll(jobs []Job) []Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Assignment, len(jobs))
	if s.bpred == nil {
		for i, j := range jobs {
			out[i] = s.placeLocked(j)
		}
		return out
	}
	nP, nJ := s.cfg.NumPlatforms, len(jobs)
	sc := &s.scratch
	sc.reserve(nP, nJ)

	// Wave pre-score against the wave-start state, one batched call.
	// Queries are built platform-major, so pre[] maps back to (p, j) by
	// walking the platforms in the same order — no index bookkeeping.
	qs := sc.qs[:0]
	snap := sc.snap[:nP]
	prescored := sc.prescored[:nP]
	for p := 0; p < nP; p++ {
		snap[p], prescored[p] = nil, false
		if len(s.residents[p]) >= s.cfg.MaxColocation {
			continue // full at wave start; can only stay full mid-wave
		}
		snap[p], prescored[p] = s.residentWorkloadsLocked(p), true
		for j := range jobs {
			qs = append(qs, Query{Workload: jobs[j].Workload, Platform: p, Interferers: snap[p]})
		}
	}
	pre := sc.pre[:len(qs)]
	s.bpolicy.ScoreBatch(s.bpred, qs, pre)
	scoreAt := sc.scoreAt[:nP*nJ]
	next := 0
	for p := 0; p < nP; p++ {
		if !prescored[p] {
			for j := 0; j < nJ; j++ {
				scoreAt[p*nJ+j] = math.NaN()
			}
			continue
		}
		copy(scoreAt[p*nJ:(p+1)*nJ], pre[next:next+nJ])
		next += nJ
	}

	cands := sc.cands[:0]
	snaps := sc.snaps[:0]
	rescoreQ := sc.rescoreQ[:0]
	rescore := sc.rescore[:0]
	for j, job := range jobs {
		if s.cfg.MaxInFlight > 0 && len(s.platformOf) >= s.cfg.MaxInFlight {
			out[j] = Assignment{Job: job, Platform: -1, Budget: math.Inf(1), Rejected: true}
			continue
		}
		cands, snaps = cands[:0], snaps[:0]
		for p := 0; p < nP; p++ {
			if len(s.residents[p])+1 > s.cfg.MaxColocation {
				continue
			}
			cands = append(cands, Candidate{
				Platform: p,
				Load:     len(s.residents[p]),
				Score:    scoreAt[p*nJ+j],
			})
			snaps = append(snaps, snap[p])
		}
		out[j] = s.commitBest(job, cands, snaps)
		p := out[j].Platform
		if p < 0 || j+1 == nJ {
			continue
		}
		// Re-score the just-dirtied platform for the remaining jobs: one
		// span, one interference fold over its updated residents.
		ks := s.residentWorkloadsLocked(p)
		snap[p] = ks
		if len(s.residents[p]) >= s.cfg.MaxColocation {
			continue // full now; remaining jobs exclude it by the cap check
		}
		rescoreQ = rescoreQ[:0]
		for r := j + 1; r < nJ; r++ {
			rescoreQ = append(rescoreQ, Query{Workload: jobs[r].Workload, Platform: p, Interferers: ks})
		}
		rescore = rescore[:len(rescoreQ)]
		s.bpolicy.ScoreBatch(s.bpred, rescoreQ, rescore)
		for i, r := 0, j+1; r < nJ; i, r = i+1, r+1 {
			scoreAt[p*nJ+r] = rescore[i]
		}
	}
	return out
}
