package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ScoreCache is the cross-wave score-reuse layer (level 2 of the memoized
// wave-scoring path): a bounded per-platform cache of post-policy score
// columns keyed on (workload, platform-slots version, scoring epoch). A
// platform's interference term — and therefore every score on it — is a
// pure function of its resident set and the predictor snapshot, so an
// entry stays bitwise-exact until either changes:
//
//   - the slots version is the platform's mutation counter (placement,
//     completion, failure-lifecycle event): any resident change bumps it
//     and the whole column misses on next lookup;
//   - the epoch encodes the predictor's scoring configuration (snapshot
//     version plus the fast-scoring mode bit, via the scoreEpocher facet):
//     an Observe publish or a SetFastScoring toggle invalidates every
//     column at once.
//
// Entries hold raw post-policy scores, before the degraded penalty —
// padding is applied per-use on candidates, so cached columns serve
// healthy and degraded selections alike. The policy identity and eps are
// fixed per scheduler instance (a cache is built by New/NewReplicaSet and
// never shared across configurations), so they key the cache by
// construction rather than by hash.
//
// Memory is bounded: each platform column holds at most cap/nPlatforms
// entries, evicted FIFO. Eviction and invalidation only cost future hits,
// never correctness — a miss re-scores through the predictor and yields
// the identical float64s the uncached path would produce.
//
// Stores are gated by a doorkeeper admission check: when a store arrives
// under a (ver, epoch) key different from the column's, the first sighting
// only records the key as a candidate and the column is left untouched;
// the reset-and-fill happens on the second consecutive sighting of the
// same key. A platform whose slots version moves every wave (heavy churn)
// therefore pays two integer compares per store instead of a map reset
// plus per-workload inserts that could never be read back, while a stable
// platform reaches steady-state hits one wave later than an eager store
// would. Cold columns (never filled) admit immediately, so first-touch
// warm-up is not delayed.
//
// Safe for concurrent use: each column carries its own mutex (replicas
// sharing a cache contend only when scoring the same platform), counters
// are atomics.
type ScoreCache struct {
	perCol int
	cols   []scoreCol

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
	entries       atomic.Int64
}

// scoreEntry is one cached (workload, platform) score pair: the policy's
// feasibility facet and its ranking facet (equal on single-head policies).
type scoreEntry struct {
	feas, rank float64
}

// scoreCol is one platform's cached column. vals is keyed by workload;
// order/head implement FIFO eviction without shifting. candVer/candEpoch
// is the doorkeeper: the last mismatched store key seen, admitted for a
// full reset-and-fill only when sighted twice in a row.
type scoreCol struct {
	mu        sync.Mutex
	ver       uint64
	epoch     uint64
	candVer   uint64
	candEpoch uint64
	vals      map[int]scoreEntry
	order     []int
	head      int
}

// defaultScoreCacheCap bounds total cached entries across all platforms
// when Config.ScoreCacheCap is 0. At 16 bytes per entry plus map overhead
// this keeps the whole cache comfortably under a megabyte.
const defaultScoreCacheCap = 4096

// minScoreCacheCol is the per-platform entry floor: even on huge clusters
// a column can hold at least one small wave's distinct workloads.
const minScoreCacheCol = 8

// newScoreCache builds a cache for nPlatforms platforms holding at most
// capTotal entries across them (0 = defaultScoreCacheCap).
func newScoreCache(nPlatforms, capTotal int) *ScoreCache {
	if capTotal <= 0 {
		capTotal = defaultScoreCacheCap
	}
	perCol := capTotal / nPlatforms
	if perCol < minScoreCacheCol {
		perCol = minScoreCacheCol
	}
	return &ScoreCache{
		perCol: perCol,
		cols:   make([]scoreCol, nPlatforms),
	}
}

// ScoreCacheStats is a point-in-time copy of the cache counters. Hits and
// Misses count per-workload column lookups (distinct workloads after
// intra-wave dedup, not raw wave queries); Evictions counts FIFO
// capacity evictions, Invalidations whole-column resets on a version or
// epoch change, and Entries the current resident entry count.
type ScoreCacheStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Entries       int64
}

// Stats returns the cache counters. Nil-safe (zero stats).
func (c *ScoreCache) Stats() ScoreCacheStats {
	if c == nil {
		return ScoreCacheStats{}
	}
	return ScoreCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.entries.Load(),
	}
}

// lookup fills feas[d]/rank[d] and sets hit[d] for every distinct workload
// ws[d] cached for platform p at exactly (ver, epoch), returning the hit
// count. A column keyed to any other (ver, epoch) misses wholesale without
// being cleared — the reset happens on the store that follows, so a
// replica scoring against a momentarily stale snapshot cannot wipe a
// fresher replica's column just by reading.
func (c *ScoreCache) lookup(p int, ver, epoch uint64, ws []int, feas, rank []float64, hit []bool) int {
	col := &c.cols[p]
	n := 0
	col.mu.Lock()
	if col.ver == ver && col.epoch == epoch && col.vals != nil {
		for d, w := range ws {
			if e, ok := col.vals[w]; ok {
				feas[d], rank[d] = e.feas, e.rank
				hit[d] = true
				n++
			} else {
				hit[d] = false
			}
		}
	} else {
		for d := range ws {
			hit[d] = false
		}
	}
	col.mu.Unlock()
	c.hits.Add(uint64(n))
	c.misses.Add(uint64(len(ws) - n))
	return n
}

// store inserts freshly scored entries (ws[i] -> feas[i], rank[i]) into
// platform p's column under (ver, epoch). A non-empty column keyed to a
// different version or epoch goes through the doorkeeper: the first store
// under the new key only records it as a candidate (the stale column is
// kept — lookups already reject it by key), and the second consecutive
// sighting resets the column (counted as an invalidation) and fills it.
// Inserts beyond the per-column cap evict FIFO.
func (c *ScoreCache) store(p int, ver, epoch uint64, ws []int, feas, rank []float64) {
	col := &c.cols[p]
	var evicted, invalidated uint64
	var delta int64
	col.mu.Lock()
	if col.ver != ver || col.epoch != epoch {
		if len(col.vals) > 0 {
			if col.candVer != ver || col.candEpoch != epoch {
				col.candVer, col.candEpoch = ver, epoch
				col.mu.Unlock()
				return
			}
			invalidated = 1
			delta -= int64(len(col.vals))
			clear(col.vals)
		}
		col.order = col.order[:0]
		col.head = 0
		col.ver, col.epoch = ver, epoch
	}
	if col.vals == nil {
		col.vals = make(map[int]scoreEntry, c.perCol)
	}
	for i, w := range ws {
		if _, ok := col.vals[w]; !ok {
			for len(col.vals) >= c.perCol {
				old := col.order[col.head]
				col.head++
				delete(col.vals, old)
				evicted++
				delta--
			}
			col.order = append(col.order, w)
			delta++
		}
		col.vals[w] = scoreEntry{feas: feas[i], rank: rank[i]}
	}
	// Compact the FIFO ring once the dead prefix dominates, so order does
	// not grow unboundedly across evictions.
	if col.head > 0 && col.head*2 >= len(col.order) {
		col.order = append(col.order[:0], col.order[col.head:]...)
		col.head = 0
	}
	col.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
	if invalidated > 0 {
		c.invalidations.Add(invalidated)
	}
	if delta != 0 {
		c.entries.Add(delta)
	}
}

// scoreEpocher is the optional predictor facet exposing a scoring epoch:
// an opaque value that changes whenever the predictor would score the same
// query differently (new snapshot version, fast-scoring toggle). The Pitot
// facade implements it; predictors exposing only snapshotVersioner fall
// back to the snapshot version, and epoch-less predictors pin epoch 0 —
// safe only when the predictor is immutable for the cache's lifetime.
type scoreEpocher interface{ ScoreEpoch() uint64 }

// resolveEpochFn picks the scoring-epoch source for a cache-enabled
// scheduler arm.
func resolveEpochFn(pred Predictor) func() uint64 {
	switch pv := pred.(type) {
	case scoreEpocher:
		return pv.ScoreEpoch
	case snapshotVersioner:
		return pv.Version
	}
	return nil
}

// dedupJobs collapses jobs[from:] to their distinct workloads (level 1 of
// the memoized wave-scoring path): distinct is filled in first-appearance
// order and dIdx[i] is the distinct index of jobs[from+i]. The scan is
// quadratic in the distinct count, which is bounded by the chunk size —
// a few dozen well-predicted comparisons, no map, no allocation.
func dedupJobs(jobs []Job, from int, distinct []int, dIdx []int) ([]int, int) {
	distinct = distinct[:0]
	for i, o := from, 0; i < len(jobs); i, o = i+1, o+1 {
		w := jobs[i].Workload
		d := -1
		for k, dw := range distinct {
			if dw == w {
				d = k
				break
			}
		}
		if d < 0 {
			d = len(distinct)
			distinct = append(distinct, w)
		}
		dIdx[o] = d
	}
	return distinct, len(distinct)
}

// scoreColumnCached scores platform p's distinct-workload column through
// the cache: cached entries are copied out, the remainder is scored in one
// batched policy call over residents ks and stored back under (ver,
// epoch). feas/rank must be len(ws); the rank column is filled on both
// policy shapes (equal to feas for single-head policies, matching the
// uncached c.Rank = c.Score convention). Returns how many of the column's
// scores were served from the cache.
//
// The batched kernels score each query independently (queries sharing a
// (platform, interferer-set) group fold interference once but emit
// per-query values), so a column assembled from cached and fresh entries
// is bitwise what one full batched call would produce.
func scoreColumnCached(
	cache *ScoreCache, met *obs.SchedMetrics,
	bpred BatchPredictor, bpolicy BatchPolicy, dpolicy DualPolicy,
	sc *waveScratch, p int, ver, epoch uint64, ws, ks []int,
	feas, rank []float64,
) int {
	hit := sc.colHit[:len(ws)]
	var lookStart time.Time
	if met != nil {
		lookStart = time.Now()
	}
	nHit := cache.lookup(p, ver, epoch, ws, feas, rank, hit)
	if met != nil {
		met.CacheLookup.ObserveSince(lookStart)
	}
	if nHit == len(ws) {
		return nHit
	}
	missW := sc.missW[:0]
	qs := sc.colQ[:0]
	for d, w := range ws {
		if hit[d] {
			continue
		}
		missW = append(missW, w)
		qs = append(qs, Query{Workload: w, Platform: p, Interferers: ks})
	}
	missFeas := sc.missFeas[:len(qs)]
	missRank := sc.missRank[:len(qs)]
	var scoreStart time.Time
	if met != nil {
		scoreStart = time.Now()
	}
	if dpolicy != nil {
		dpolicy.ScoreDualBatch(bpred, qs, missFeas, missRank)
	} else {
		bpolicy.ScoreBatch(bpred, qs, missFeas)
		copy(missRank, missFeas)
	}
	if met != nil {
		met.ScoreBatch.ObserveSince(scoreStart)
	}
	mi := 0
	for d := range ws {
		if hit[d] {
			continue
		}
		feas[d], rank[d] = missFeas[mi], missRank[mi]
		mi++
	}
	cache.store(p, ver, epoch, missW, missFeas, missRank)
	return nHit
}
