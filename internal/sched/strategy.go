package sched

import "fmt"

// Candidate is one feasible placement option under consideration: the
// platform, the policy's scores for it, and the platform's load (resident
// count) before this job joins. Score is the feasibility value (compared
// against the deadline; the assignment's Budget); Rank is what strategies
// order candidates by. Single-head policies collapse the two (Rank ==
// Score); dual policies (DualPolicy) gate on the conformal bound while
// ranking by the mean estimate.
type Candidate struct {
	Platform int
	Score    float64
	Rank     float64
	Load     int
	// Degraded marks a candidate on a Degraded platform: its Score was
	// padded by Config.DegradedPenalty, and the built-in strategies prefer
	// healthy platforms when their primary criterion ties.
	Degraded bool
}

// Strategy selects among feasible candidates. Better reports whether a
// strictly beats b for the job; the scheduler scans platforms in ascending
// index order and keeps the first best, so any complete non-strict order
// yields deterministic placements.
type Strategy interface {
	Name() string
	Better(job Job, a, b Candidate) bool
}

// LeastLoaded picks the platform with the fewest residents, breaking ties
// by the loosest ranking score — spreading load and keeping fast platforms
// free for tight deadlines. This is the classic headroom-preserving
// default.
type LeastLoaded struct{}

// Name implements Strategy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Better implements Strategy.
func (LeastLoaded) Better(job Job, a, b Candidate) bool {
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	if a.Degraded != b.Degraded {
		return !a.Degraded
	}
	return a.Rank > b.Rank
}

// BestFit picks the feasible platform whose ranking score sits closest to
// the deadline (minimal headroom): jobs pack onto just-fast-enough
// platforms, preserving the fastest ones for jobs that genuinely need
// them. Under a dual policy this is "best-fit on the mean, feasible on the
// bound": packing density comes from the cheap estimate while the deadline
// guarantee stays conformal.
type BestFit struct{}

// Name implements Strategy.
func (BestFit) Name() string { return "best-fit" }

// Better implements Strategy.
func (BestFit) Better(job Job, a, b Candidate) bool {
	ha, hb := job.Deadline-a.Rank, job.Deadline-b.Rank
	if ha != hb {
		return ha < hb
	}
	if a.Degraded != b.Degraded {
		return !a.Degraded
	}
	return a.Load < b.Load
}

// UtilizationAware minimizes the platform's projected occupancy — the
// ranking score weighted by the post-placement resident count — a proxy
// for total predicted busy-time that balances runtime cost against
// crowding.
type UtilizationAware struct{}

// Name implements Strategy.
func (UtilizationAware) Name() string { return "utilization" }

// Better implements Strategy.
func (UtilizationAware) Better(job Job, a, b Candidate) bool {
	ua, ub := a.Rank*float64(a.Load+1), b.Rank*float64(b.Load+1)
	if ua != ub {
		return ua < ub
	}
	if a.Degraded != b.Degraded {
		return !a.Degraded
	}
	return a.Load < b.Load
}

// ParseStrategy resolves a strategy by name: "least-loaded", "best-fit",
// or "utilization".
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded{}, nil
	case "best-fit":
		return BestFit{}, nil
	case "utilization":
		return UtilizationAware{}, nil
	}
	return nil, fmt.Errorf("sched: unknown strategy %q (want least-loaded, best-fit, or utilization)", name)
}
