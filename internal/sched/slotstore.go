package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// platformSlots is one platform's shared cluster state: its residents plus
// its failure-lifecycle core, published as an immutable value behind an
// atomic pointer. Every mutation clones the value and bumps version, so a
// replica that scored a wave against version v detects any intervening
// commit — a placement, completion, or health event — by a version
// mismatch at reserve time.
type platformSlots struct {
	version   uint64
	residents []placedJob
	// ks is the residents' workload indices, cached at mutation time so
	// every view refresh and every Assignment.Interferers can share it
	// without allocating — the published value is immutable, so aliasing
	// is safe. Mutators that change residents must call refreshKS.
	ks []int
	healthCore
}

// clone copies the state for a mutation, bumping the version. The resident
// slice and breaker ring are deep-copied (with one spare resident slot, so
// a following commit-append never reallocates); the published value is
// never mutated in place. ks still aliases the source — callers that
// change residents must refreshKS.
func (st *platformSlots) clone() *platformSlots {
	n := *st
	n.version++
	n.residents = make([]placedJob, len(st.residents), len(st.residents)+1)
	copy(n.residents, st.residents)
	if st.outcomes != nil {
		n.outcomes = append([]bool(nil), st.outcomes...)
	}
	return &n
}

// refreshKS rebuilds the cached workload snapshot after a residents
// mutation (never mutating the previous snapshot, which published views
// may still alias).
func (st *platformSlots) refreshKS() {
	if len(st.residents) == 0 {
		st.ks = nil
		return
	}
	ks := make([]int, len(st.residents))
	for i, r := range st.residents {
		ks[i] = r.job.Workload
	}
	st.ks = ks
}

// workloads returns the cached workload-index snapshot of the residents
// (nil when empty), mirroring Scheduler.residentWorkloadsLocked. The
// returned slice is shared and immutable — callers must not mutate it.
func (st *platformSlots) workloads() []int { return st.ks }

// colocCap is the platform's effective colocation cap: one trial job during
// half-open probation, maxColocation otherwise (Scheduler.colocCapLocked).
func (st *platformSlots) colocCap(maxColocation int) int {
	if st.probation {
		return 1
	}
	return maxColocation
}

// reserveStatus is the outcome of one optimistic slot reservation.
type reserveStatus uint8

const (
	// reserveOK: the slot was committed; the returned state includes the
	// new resident.
	reserveOK reserveStatus = iota
	// reserveConflict: the platform's version moved past the scored
	// snapshot (or the CAS lost a race); the caller should refresh its view
	// from the returned state, re-score, and retry.
	reserveConflict
	// reserveAdmission: the cluster-wide MaxInFlight bound refused the job.
	reserveAdmission
)

// SlotStore is the shared cluster state N scheduler replicas place into:
// per-platform resident sets and health behind atomic pointers (mutated by
// clone + compare-and-swap), a lock-free job index, and cluster-wide
// admission. Replicas score waves optimistically against a snapshot of
// this state and reserve colocation slots with reserve; a version mismatch
// at commit is a conflict the replica retries after refreshing its view.
//
// The failure lifecycle mirrors Scheduler's exactly-once contract: Fail
// orphans each resident exactly once even when completions race it (the
// byJob LoadAndDelete winner retires the job), Complete on a retired or
// reservation-burned ID returns ErrJobCompleted, and breaker outcomes feed
// the same healthCore state machine the scheduler uses.
type SlotStore struct {
	numPlatforms  int
	maxColocation int
	maxInFlight   int
	breaker       BreakerConfig

	plats []atomic.Pointer[platformSlots]

	// byJob maps a live JobID to its platform. The LoadAndDelete winner —
	// a completer or a Fail orphaning the platform — is the one retirement
	// of record for that job.
	byJob sync.Map

	// nextID allocates IDs before the commit CAS; an ID burned by a lost
	// CAS is never resident anywhere, and Complete on it reports
	// ErrJobCompleted (indistinguishable from an already-retired job, which
	// is what it morally is).
	nextID atomic.Uint64

	// inFlight counts committed-but-not-retired jobs and doubles as the
	// MaxInFlight admission token pool.
	inFlight atomic.Int64

	// Failure-lifecycle counters (FailureStats).
	fails, degrades, recovers, orphaned  atomic.Uint64
	trips, readmissions, closes          atomic.Uint64
	reserveAttempts, reserveConflictsCnt atomic.Uint64

	// reserveGap, when non-nil, runs between the version check and the
	// commit CAS (test hook: deterministic conflict interleavings).
	reserveGap func(p int)

	// rec is the optional flight recorder (Config.Recorder): the store is
	// the single retirement of record for replicated placements, so
	// reserve/complete/orphan/readmit events are emitted here, once,
	// regardless of which replica drove them.
	rec *obs.Recorder
}

// NewSlotStore builds the shared state for cfg's cluster. Only the
// capacity, admission, and breaker fields of cfg apply; scoring
// configuration lives with the replicas.
func NewSlotStore(cfg Config) (*SlotStore, error) {
	if cfg.NumPlatforms <= 0 {
		return nil, fmt.Errorf("sched: no platforms")
	}
	if cfg.MaxColocation <= 0 {
		cfg.MaxColocation = 4
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("sched: negative MaxInFlight")
	}
	st := &SlotStore{
		numPlatforms:  cfg.NumPlatforms,
		maxColocation: cfg.MaxColocation,
		maxInFlight:   cfg.MaxInFlight,
		breaker:       cfg.Breaker.withDefaults(),
		plats:         make([]atomic.Pointer[platformSlots], cfg.NumPlatforms),
		rec:           cfg.Recorder,
	}
	for p := range st.plats {
		st.plats[p].Store(&platformSlots{})
	}
	return st, nil
}

func (st *SlotStore) checkPlatform(p int) error {
	if p < 0 || p >= st.numPlatforms {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrPlatformOutOfRange, p, st.numPlatforms)
	}
	return nil
}

// load returns platform p's current published state.
func (st *SlotStore) load(p int) *platformSlots { return st.plats[p].Load() }

// reserve optimistically commits job onto platform p, valid only while p's
// state is still exactly the version the caller scored against. On success
// the returned state is the committed one (resident appended, version
// bumped). reserveConflict means the snapshot went stale — any intervening
// placement, completion, or health event on p — and returns the current
// state so the caller can refresh, re-score, and retry.
func (st *SlotStore) reserve(p int, expect uint64, job Job) (JobID, *platformSlots, reserveStatus) {
	st.reserveAttempts.Add(1)
	cur := st.plats[p].Load()
	if cur.version != expect {
		st.reserveConflictsCnt.Add(1)
		return 0, cur, reserveConflict
	}
	// A version match means cur is the exact state the caller scored, so
	// placeability and the colocation cap were already checked — re-check
	// defensively so a buggy caller can never oversubscribe a slot.
	if !cur.state.Placeable() || len(cur.residents) >= cur.colocCap(st.maxColocation) {
		st.reserveConflictsCnt.Add(1)
		return 0, cur, reserveConflict
	}
	if st.maxInFlight > 0 {
		if n := st.inFlight.Add(1); n > int64(st.maxInFlight) {
			st.inFlight.Add(-1)
			return 0, cur, reserveAdmission
		}
	} else {
		st.inFlight.Add(1)
	}
	id := JobID(st.nextID.Add(1))
	next := cur.clone()
	next.residents = append(next.residents, placedJob{id: id, job: job})
	next.refreshKS()
	if st.reserveGap != nil {
		st.reserveGap(p)
	}
	if !st.plats[p].CompareAndSwap(cur, next) {
		st.inFlight.Add(-1)
		st.reserveConflictsCnt.Add(1)
		return 0, st.plats[p].Load(), reserveConflict
	}
	st.byJob.Store(id, p)
	if st.rec != nil {
		st.rec.Record(obs.Event{Kind: obs.EvReserve, Job: uint64(id), ID: uint64(id),
			Platform: int32(p)})
	}
	return id, next, reserveOK
}

// retire removes id from the store, returning the platform it ran on. The
// byJob LoadAndDelete makes the caller the single retirement of record; a
// concurrent Fail that already swapped the resident set out just leaves
// nothing to remove here.
func (st *SlotStore) retire(id JobID) (int, error) {
	v, ok := st.byJob.LoadAndDelete(id)
	if !ok {
		if id > 0 && uint64(id) <= st.nextID.Load() {
			return -1, ErrJobCompleted
		}
		return -1, ErrUnknownJob
	}
	p := v.(int)
	for {
		cur := st.plats[p].Load()
		idx := -1
		for i := range cur.residents {
			if cur.residents[i].id == id {
				idx = i
				break
			}
		}
		if idx < 0 {
			// A racing Fail emptied the platform after we won the
			// retirement; the slot is already free.
			break
		}
		next := cur.clone()
		next.residents = append(next.residents[:idx], next.residents[idx+1:]...)
		next.refreshKS()
		if st.plats[p].CompareAndSwap(cur, next) {
			break
		}
	}
	st.inFlight.Add(-1)
	if st.rec != nil {
		st.rec.Record(obs.Event{Kind: obs.EvComplete, Job: uint64(id), ID: uint64(id),
			Platform: int32(p)})
	}
	return p, nil
}

// Complete frees the colocation slot of a placed job (Scheduler.Complete
// semantics: ErrJobCompleted for retired or burned IDs, ErrUnknownJob for
// IDs never allocated).
func (st *SlotStore) Complete(id JobID) error {
	_, err := st.retire(id)
	return err
}

// CompleteOutcome is Complete plus a deadline-outcome report feeding the
// platform's circuit breaker; tripped reports a quarantine trip.
func (st *SlotStore) CompleteOutcome(id JobID, miss bool) (tripped bool, err error) {
	p, err := st.retire(id)
	if err != nil {
		return false, err
	}
	for {
		cur := st.plats[p].Load()
		if cur.state == Down || cur.state == Quarantined {
			return false, nil
		}
		next := cur.clone()
		tripped, closed := next.noteOutcome(miss, st.breaker)
		if st.plats[p].CompareAndSwap(cur, next) {
			if tripped {
				st.trips.Add(1)
			}
			if closed {
				st.closes.Add(1)
			}
			return tripped, nil
		}
	}
}

// Fail marks platform p Down and orphans its residents exactly once: the
// state swap stops new reservations (their CAS loses), then each former
// resident is retired — unless a concurrent completer won that job's
// retirement first, in which case it is that completer's, not an orphan.
func (st *SlotStore) Fail(p int) ([]Orphan, error) {
	if err := st.checkPlatform(p); err != nil {
		return nil, err
	}
	var old *platformSlots
	for {
		cur := st.plats[p].Load()
		if cur.state == Down {
			return nil, nil
		}
		next := cur.clone()
		next.fail()
		next.residents, next.ks = nil, nil
		if st.plats[p].CompareAndSwap(cur, next) {
			old = cur
			break
		}
	}
	st.fails.Add(1)
	var orphans []Orphan
	for _, r := range old.residents {
		if _, ok := st.byJob.LoadAndDelete(r.id); !ok {
			continue
		}
		st.inFlight.Add(-1)
		orphans = append(orphans, Orphan{ID: r.id, Job: r.job})
		if st.rec != nil {
			st.rec.Record(obs.Event{Kind: obs.EvOrphan, Job: uint64(r.id), ID: uint64(r.id),
				Platform: int32(p)})
		}
	}
	st.orphaned.Add(uint64(len(orphans)))
	return orphans, nil
}

// Degrade marks platform p Degraded (Scheduler.Degrade semantics).
func (st *SlotStore) Degrade(p int) error {
	if err := st.checkPlatform(p); err != nil {
		return err
	}
	for {
		cur := st.plats[p].Load()
		if cur.state == Down || cur.state == Quarantined {
			return fmt.Errorf("%w: platform %d is %s", ErrPlatformUnavailable, p, cur.state)
		}
		if cur.state == Degraded && !cur.probation {
			return nil
		}
		next := cur.clone()
		applied := next.degrade()
		if st.plats[p].CompareAndSwap(cur, next) {
			if applied {
				st.degrades.Add(1)
			}
			return nil
		}
	}
}

// Recover advances platform p toward Healthy (Scheduler.Recover
// semantics: half-open probation from Down/Quarantined, closed from
// Degraded, no-op from Healthy).
func (st *SlotStore) Recover(p int) error {
	if err := st.checkPlatform(p); err != nil {
		return err
	}
	for {
		cur := st.plats[p].Load()
		if cur.state == Healthy {
			return nil
		}
		next := cur.clone()
		readmitted, closed := next.recover(st.breaker.Probation)
		if st.plats[p].CompareAndSwap(cur, next) {
			st.recovers.Add(1)
			if readmitted {
				st.readmissions.Add(1)
				if st.rec != nil {
					st.rec.Record(obs.Event{Kind: obs.EvReadmit, Platform: int32(p)})
				}
			}
			if closed {
				st.closes.Add(1)
			}
			return nil
		}
	}
}

// Health returns platform p's current state (Healthy for out-of-range
// indices, like Scheduler.Health).
func (st *SlotStore) Health(p int) HealthState {
	if p < 0 || p >= st.numPlatforms {
		return Healthy
	}
	return st.plats[p].Load().state
}

// HealthSnapshot returns a copy of every platform's health state.
func (st *SlotStore) HealthSnapshot() []HealthState {
	out := make([]HealthState, st.numPlatforms)
	for p := range out {
		out[p] = st.plats[p].Load().state
	}
	return out
}

// Impaired returns the number of platforms not currently Healthy.
func (st *SlotStore) Impaired() int {
	n := 0
	for p := 0; p < st.numPlatforms; p++ {
		if st.plats[p].Load().state != Healthy {
			n++
		}
	}
	return n
}

// FailureStats returns the failure-lifecycle counters.
func (st *SlotStore) FailureStats() FailureStats {
	return FailureStats{
		Fails:        st.fails.Load(),
		Degrades:     st.degrades.Load(),
		Recovers:     st.recovers.Load(),
		Orphaned:     st.orphaned.Load(),
		Trips:        st.trips.Load(),
		Readmissions: st.readmissions.Load(),
		Closes:       st.closes.Load(),
	}
}

// InFlight returns the number of placed jobs that have not completed.
func (st *SlotStore) InFlight() int {
	n := st.inFlight.Load()
	if n < 0 {
		// Transient commit-then-retire interleavings never publish a
		// negative count; guard the read anyway.
		return 0
	}
	return int(n)
}

// Residents returns a copy of the workloads currently placed on platform
// p; mutating it never affects store state.
func (st *SlotStore) Residents(p int) []int {
	if p < 0 || p >= st.numPlatforms {
		return nil
	}
	ks := st.plats[p].Load().workloads()
	if ks == nil {
		return nil
	}
	return append([]int(nil), ks...)
}

// Load returns the resident count of platform p (shard-rebalancing input).
func (st *SlotStore) Load(p int) int {
	if p < 0 || p >= st.numPlatforms {
		return 0
	}
	return len(st.plats[p].Load().residents)
}
