package sched

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/obs"
)

// StreamConfig configures one streaming replay: a Poisson arrival process
// of deadline jobs placed against the live cluster state, with true-runtime
// departures freeing colocation slots and, optionally, measured runtimes
// fed back to the predictor online.
type StreamConfig struct {
	// Jobs is the total number of arrivals.
	Jobs int
	// ArrivalRate is the mean number of arrivals per (simulated) second;
	// inter-arrival times are exponential. Default 1.
	ArrivalRate float64
	// FeedbackEvery flushes buffered measurements to the Observer after
	// every that many completions (0 disables the count trigger).
	FeedbackEvery int
	// FeedbackInterval flushes buffered measurements whenever at least
	// this much simulated time has passed since the previous flush (0
	// disables the time trigger). On sparse completion streams the count
	// trigger alone can starve the Observer for long stretches; the time
	// trigger amortizes Observe cost per wall-clock instead of per
	// completion. Both triggers may be armed together; feedback is off
	// when both are zero or the Observer is nil.
	FeedbackInterval float64
	// RetryLimit re-queues a job whose placement failed (admission
	// rejection or no feasible platform) instead of dropping it: after
	// the next completion frees capacity, queued jobs are retried in FIFO
	// order, up to this many retry attempts each. 0 drops failed jobs
	// immediately (no retry queue) — except orphans of a platform
	// failure, which always get one rescheduling attempt.
	RetryLimit int
	// RetryBackoff spaces retry attempts with capped exponential backoff
	// instead of retrying on the next completion: the k-th retry of a job
	// waits RetryBackoff·2^(k−1) simulated seconds, capped at
	// RetryBackoffMax — or, when RetryBackoffMax is 0, at the default
	// defaultBackoffCapFactor·RetryBackoff, so a high retry limit cannot
	// silently push a deferral past the replay horizon and strand the job.
	// The delay is jittered by a uniform factor in [0.5, 1.5) drawn from
	// the stream rng — deterministic per seed, but staggered, so a
	// recovering cluster is not thundering-herded by every deferred job
	// at once. 0 keeps the completion-triggered FIFO behavior.
	RetryBackoff    float64
	RetryBackoffMax float64
	// BreakerCooldown re-admits a breaker-quarantined platform half-open
	// after this much simulated time. 0 leaves tripped platforms
	// quarantined until a chaos recovery (or forever).
	BreakerCooldown float64
	// Chaos enables the seeded failure injector; nil runs a failure-free
	// replay (bit-identical to streams before the failure model existed).
	Chaos *ChaosConfig
	// Recorder, when non-nil, receives the stream's lifecycle events
	// (enqueue, place, retry, orphan, complete, shed) keyed by the 1-based
	// arrival index — stable across re-placements, unlike the JobID a
	// re-placed orphan gets reissued. Event.ID carries the scheduler JobID
	// of each placement. Independent of Config.Recorder (scheduler-keyed);
	// attach one, not both, unless you want both key spaces in one ring.
	// Recording never touches the stream's rng, so traced replays place
	// identically to untraced ones.
	Recorder *obs.Recorder
}

// ChaosConfig is the stream's deterministic failure injector: each failure
// group (a set of platforms sharing a fault domain — a rack, a power
// domain) cycles down and up with exponential times, MTTF mean time to
// failure and MTTR mean time to repair. Every draw comes from a dedicated
// rng seeded with Seed, so chaos never perturbs the arrival/job stream:
// the same replay with chaos off places the same jobs at the same times.
type ChaosConfig struct {
	// MTTF is each group's mean (simulated) seconds between repair and the
	// next failure. Chaos is off unless MTTF > 0.
	MTTF float64
	// MTTR is the group's mean seconds from failure to repair; default
	// MTTF/10.
	MTTR float64
	// Groups are the correlated failure domains; every platform in a
	// group fails and recovers together. Nil means every platform is its
	// own group (independent failures).
	Groups [][]int
	// DegradeProb is the chance a failing platform goes flaky (Degraded:
	// residents keep running, placements get the penalty) instead of
	// hard-Down (residents orphaned).
	DegradeProb float64
	// Seed seeds the injector's private rng.
	Seed int64
}

// StreamResult aggregates one streaming replay (or several, via
// AggregateStream).
type StreamResult struct {
	Policy   string
	Strategy string
	Arrived  int
	// Placed counts placement commits, including re-placements of orphaned
	// jobs — under chaos one arrival can be placed more than once. Every
	// arrival ends in exactly one of Completed/Unplaced/Rejected, and
	// every placement in Completed or Orphaned:
	//
	//	Arrived == Completed + Unplaced + Rejected
	//	Placed  == Completed + Orphaned   (nothing lost, nothing duplicated)
	Placed   int
	Unplaced int
	// Rejected counts admission-control refusals (cluster at MaxInFlight).
	Rejected  int
	Completed int
	// Missed counts completions whose true runtime exceeded the deadline;
	// MissRate is Missed/Completed — the per-execution quantity the bound
	// policy's eps controls. (Identical to the historical Missed/Placed on
	// failure-free replays, where every placement completes.)
	Missed   int
	MissRate float64
	// AvgHeadroom is the mean (deadline−runtime)/deadline over completed
	// jobs with finite positive deadlines.
	AvgHeadroom float64
	headroomSum float64
	headroomN   int
	// PostPlaced/PostMissed restrict to jobs placed after the first online
	// feedback update was absorbed — the "after Observe" miss rate the
	// feedback loop is judged on. Zero-valued without feedback.
	PostPlaced   int
	PostMissed   int
	PostMissRate float64
	// Observed counts measurements fed back to the Observer.
	Observed int
	// RetryQueued counts jobs that entered the retry queue after a failed
	// placement; Retries counts placement re-attempts made for them;
	// RetryPlaced counts the subset eventually placed by a retry.
	// RetryRate is RetryPlaced/RetryQueued — the fraction of would-be
	// drops the deferral queue saved. All zero when RetryLimit is 0.
	// Orphan rescheduling is tracked separately (Orphan* fields).
	RetryQueued int
	Retries     int
	RetryPlaced int
	RetryRate   float64

	// Failure-lifecycle scorecard; all zero on failure-free replays.
	// Failures/Degrades/Recovers count applied scheduler failure events;
	// Orphaned counts residents displaced by platform failures,
	// OrphanReplaced the subset re-placed on a surviving platform, and
	// OrphanLost the subset dropped (also counted in Unplaced/Rejected, so
	// arrival conservation still balances). OrphanLatencyMean/Max measure
	// simulated seconds from orphaning to re-placement.
	Failures       int
	Degrades       int
	Recovers       int
	Orphaned       int
	OrphanReplaced int
	OrphanLost     int
	orphanLatSum   float64

	OrphanLatencyMean float64
	OrphanLatencyMax  float64
	// BreakerTrips/Readmits/Closes count circuit-breaker quarantine
	// entries, half-open re-admissions, and probations closed back to
	// Healthy.
	BreakerTrips    int
	BreakerReadmits int
	BreakerCloses   int
	// FailWindowPlaced/Missed restrict to completions of jobs placed
	// while at least one platform was impaired (not Healthy) — the
	// during-failure miss rate the failure model is judged on.
	FailWindowPlaced   int
	FailWindowMissed   int
	FailWindowMissRate float64
}

func (r *StreamResult) finalize() {
	if r.Completed > 0 {
		r.MissRate = float64(r.Missed) / float64(r.Completed)
	}
	if r.headroomN > 0 {
		r.AvgHeadroom = r.headroomSum / float64(r.headroomN)
	}
	if r.PostPlaced > 0 {
		r.PostMissRate = float64(r.PostMissed) / float64(r.PostPlaced)
	}
	if r.RetryQueued > 0 {
		r.RetryRate = float64(r.RetryPlaced) / float64(r.RetryQueued)
	}
	if r.OrphanReplaced > 0 {
		r.OrphanLatencyMean = r.orphanLatSum / float64(r.OrphanReplaced)
	}
	if r.FailWindowPlaced > 0 {
		r.FailWindowMissRate = float64(r.FailWindowMissed) / float64(r.FailWindowPlaced)
	}
}

// defaultBackoffCapFactor caps the retry backoff exponential at
// 2^6 = 64× the base delay when RetryBackoffMax is unset: six doublings
// of spacing is past the point where further backoff helps a simulated
// cluster drain, and an explicit cap keeps notBefore within reach of the
// replay horizon regardless of RetryLimit.
const defaultBackoffCapFactor = 64

// backoffDelay returns the jittered exponential delay inserted before a
// job's tries-th placement attempt re-enters the queue. The uncapped
// exponential was a stranding bug: with RetryBackoffMax unset, a job on
// its 30th retry would be deferred 2^29 backoff units — far past any
// horizon — and silently dropped at stream end.
func (cfg StreamConfig) backoffDelay(tries int, rng *rand.Rand) float64 {
	d := cfg.RetryBackoff * math.Pow(2, float64(tries-1))
	lim := cfg.RetryBackoffMax
	if lim <= 0 {
		lim = cfg.RetryBackoff * defaultBackoffCapFactor
	}
	if d > lim {
		d = lim
	}
	return d * (0.5 + rng.Float64())
}

// JobSource generates the i-th arriving job of a trial.
type JobSource func(rng *rand.Rand, i int) Job

// eventKind discriminates the simulation clock's entries.
type eventKind uint8

const (
	evArrival eventKind = iota
	evComplete
	evFail    // chaos: a failure group goes down/flaky
	evRecover // chaos: a failure group comes back
	evRetry   // a backoff deadline passed; deferred jobs may be eligible
	evReadmit // breaker cooldown expired; re-admit a quarantined platform
)

// event is one entry of the simulation clock.
type event struct {
	t    float64
	seq  int // tie-break: deterministic order for simultaneous events
	kind eventKind
	// evArrival: the arriving job's index. evComplete: the arrival index
	// of the completing placement (flight-recorder tracking key).
	jobIdx int
	// evComplete: the runtime was drawn at placement time (so the rng
	// stream is placement-ordered), but all miss/headroom accounting
	// happens when the completion lands — an orphaned execution never
	// completes and must not count.
	id         JobID
	m          Measurement
	deadline   float64
	post       bool // placed after the first feedback update
	failWindow bool // placed while ≥1 platform was impaired
	// evFail/evRecover
	group int
	// evReadmit
	platform int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// retryEntry is one deferred job: a failed placement waiting in the retry
// queue, or an orphan of a platform failure waiting in the (higher
// priority) orphan queue.
type retryEntry struct {
	job        Job
	idx        int  // arrival index (flight-recorder tracking key)
	tries      int  // placement attempts made so far (an arrival counts; an orphaning does not)
	rejected   bool // last failure was an admission rejection, not infeasibility
	orphan     bool
	orphanedAt float64 // orphaning time (orphan-reschedule latency baseline)
	notBefore  float64 // backoff: earliest time the next attempt may run
}

// Stream runs one event-driven replay: jobs arrive with exponential
// inter-arrival times, each placement's true runtime is drawn from the
// oracle under the interference it was placed into, its completion frees
// the colocation slot, and (with obs non-nil and a feedback trigger armed)
// measured runtimes are flushed to the Observer in batches — after which
// the predictor serves updated estimates and recalibrated bounds to
// subsequent placements. With RetryLimit > 0, failed placements re-enter
// after the next completion (or after a backoff delay, with RetryBackoff)
// instead of being dropped, modeling a real orchestrator's deferral queue.
//
// With Chaos configured, platforms fail and recover on a seeded schedule:
// failing a platform orphans its resident jobs into the high-priority
// orphan queue (served before ordinary retries), completions feed the
// circuit breaker via CompleteOutcome, and tripped platforms re-admit
// half-open after BreakerCooldown. Job conservation holds throughout —
// Arrived == Completed + Unplaced + Rejected and Placed == Completed +
// Orphaned. Deterministic given rng and ChaosConfig.Seed.
func Stream(cfg StreamConfig, s *Scheduler, oracle Oracle, source JobSource, observer Observer, rng *rand.Rand) (StreamResult, error) {
	res := StreamResult{Policy: s.policy.Name(), Strategy: s.strategy.Name()}
	if cfg.Jobs <= 0 {
		return res, nil
	}
	rate := cfg.ArrivalRate
	if rate <= 0 {
		rate = 1
	}
	feedback := observer != nil && (cfg.FeedbackEvery > 0 || cfg.FeedbackInterval > 0)
	// Flight recorder: events are keyed by 1-based arrival index (stable
	// across orphan re-placements); idxOf maps a live placement's JobID
	// back to it. Maintained only when recording — the disabled path costs
	// one nil check per site.
	rec := cfg.Recorder
	var idxOf map[JobID]int
	if rec != nil {
		idxOf = make(map[JobID]int)
	}
	key := func(idx int) uint64 { return uint64(idx) + 1 }
	chaos := cfg.Chaos
	if chaos != nil && chaos.MTTF <= 0 {
		chaos = nil
	}
	var (
		h          eventHeap
		seq        int
		pending    []Measurement
		post       bool // at least one feedback update has been absorbed
		lastFlush  float64
		retryQ     []retryEntry
		orphanQ    []retryEntry
		orphanDead map[JobID]struct{} // orphaned IDs whose stale completion events must be ignored
		remaining  = cfg.Jobs         // arrivals without a terminal outcome yet
		chaosRng   *rand.Rand
		groups     [][]int
		mttr       float64
	)
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}
	if chaos != nil {
		chaosRng = rand.New(rand.NewSource(chaos.Seed))
		orphanDead = make(map[JobID]struct{})
		mttr = chaos.MTTR
		if mttr <= 0 {
			mttr = chaos.MTTF / 10
		}
		groups = chaos.Groups
		if len(groups) == 0 {
			groups = make([][]int, s.cfg.NumPlatforms)
			for p := range groups {
				groups[p] = []int{p}
			}
		}
		for g := range groups {
			push(event{kind: evFail, t: chaosRng.ExpFloat64() * chaos.MTTF, group: g})
		}
	}
	// attempt places one job at simulated time t, drawing its true runtime
	// and scheduling the completion (which carries the accounting) on
	// success. Shared by fresh arrivals, retries, and orphan rescheduling.
	attempt := func(t float64, job Job, idx int) (placed, rejected bool) {
		a := s.Place(job)
		if a.Rejected {
			return false, true
		}
		if !a.Placed() {
			return false, false
		}
		res.Placed++
		if rec != nil {
			idxOf[a.ID] = idx
			rec.Record(obs.Event{Kind: obs.EvPlace, Job: key(idx), ID: uint64(a.ID),
				Platform: int32(a.Platform), Version: s.snapVersion()})
		}
		rt := oracle.TrueSeconds(job.Workload, a.Platform, a.Interferers)
		push(event{
			kind: evComplete, t: t + rt, id: a.ID, jobIdx: idx,
			deadline:   job.Deadline,
			post:       post,
			failWindow: chaos != nil && s.Impaired() > 0,
			m:          Measurement{Workload: job.Workload, Platform: a.Platform, Interferers: a.Interferers, Seconds: rt},
		})
		return true, false
	}
	// drop finalizes an entry that will never be retried again, counting
	// it under its last failure mode.
	drop := func(e retryEntry) {
		if e.rejected {
			res.Rejected++
		} else {
			res.Unplaced++
		}
		if e.orphan {
			res.OrphanLost++
		}
		if rec != nil {
			reason := obs.ReasonInfeasible
			if e.rejected {
				reason = obs.ReasonAdmission
			}
			rec.Record(obs.Event{Kind: obs.EvShed, Job: key(e.idx), Reason: reason,
				Platform: -1, N: int32(e.tries)})
		}
		remaining--
	}
	// fail re-queues a failed placement attempt, or drops it once the
	// retry budget is spent. Orphans always get at least one rescheduling
	// attempt, even with no retry queue configured.
	fail := func(t float64, e retryEntry, rejected bool) {
		e.rejected = rejected
		budget := cfg.RetryLimit
		if e.orphan && budget == 0 {
			budget = 1
		}
		if budget <= 0 || e.tries > budget {
			drop(e)
			return
		}
		if e.tries == 1 && !e.orphan {
			res.RetryQueued++
		}
		e.notBefore = t
		if cfg.RetryBackoff > 0 && e.tries >= 1 {
			e.notBefore = t + cfg.backoffDelay(e.tries, rng)
			push(event{kind: evRetry, t: e.notBefore})
		}
		if e.orphan {
			orphanQ = append(orphanQ, e)
		} else {
			retryQ = append(retryQ, e)
		}
	}
	// tryRetries re-attempts every eligible deferred job, orphans first:
	// rescheduling work displaced by a failure outranks jobs the cluster
	// merely had no room for. Entries still inside their backoff window
	// stay queued.
	tryRetries := func(t float64) {
		for _, qp := range []*[]retryEntry{&orphanQ, &retryQ} {
			waiting := *qp
			if len(waiting) == 0 {
				continue
			}
			*qp = nil
			for _, re := range waiting {
				if re.notBefore > t {
					*qp = append(*qp, re)
					continue
				}
				if !re.orphan {
					res.Retries++
					if rec != nil {
						rec.Record(obs.Event{Kind: obs.EvRetry, Job: key(re.idx),
							Platform: -1, N: int32(re.tries)})
					}
				}
				placed, rejected := attempt(t, re.job, re.idx)
				if placed {
					if re.orphan {
						res.OrphanReplaced++
						lat := t - re.orphanedAt
						res.orphanLatSum += lat
						if lat > res.OrphanLatencyMax {
							res.OrphanLatencyMax = lat
						}
					} else {
						res.RetryPlaced++
					}
					continue
				}
				re.tries++
				fail(t, re, rejected)
			}
		}
	}
	push(event{kind: evArrival, t: rng.ExpFloat64() / rate, jobIdx: 0})
	for h.Len() > 0 && remaining > 0 {
		e := heap.Pop(&h).(event)
		switch e.kind {
		case evArrival:
			if e.jobIdx+1 < cfg.Jobs {
				push(event{kind: evArrival, t: e.t + rng.ExpFloat64()/rate, jobIdx: e.jobIdx + 1})
			}
			job := source(rng, e.jobIdx)
			res.Arrived++
			if rec != nil {
				rec.Record(obs.Event{Kind: obs.EvEnqueue, Job: key(e.jobIdx),
					Platform: -1, Version: s.snapVersion()})
			}
			if placed, rejected := attempt(e.t, job, e.jobIdx); !placed {
				fail(e.t, retryEntry{job: job, idx: e.jobIdx, tries: 1}, rejected)
			}
		case evComplete:
			if _, dead := orphanDead[e.id]; dead {
				// The platform died under this execution: the job was
				// orphaned into the reschedule path, and this stale
				// completion must neither free a slot nor feed back a
				// measurement that never finished.
				delete(orphanDead, e.id)
				continue
			}
			miss := e.m.Seconds > e.deadline
			tripped, err := s.CompleteOutcome(e.id, miss)
			if err != nil {
				return res, fmt.Errorf("sched: stream completion: %w", err)
			}
			if rec != nil {
				delete(idxOf, e.id)
				rec.Record(obs.Event{Kind: obs.EvComplete, Job: key(e.jobIdx),
					ID: uint64(e.id), Platform: int32(e.m.Platform)})
			}
			res.Completed++
			remaining--
			if miss {
				res.Missed++
			}
			if !math.IsNaN(e.deadline) && !math.IsInf(e.deadline, 0) && e.deadline > 0 {
				res.headroomSum += (e.deadline - e.m.Seconds) / e.deadline
				res.headroomN++
			}
			if e.post {
				res.PostPlaced++
				if miss {
					res.PostMissed++
				}
			}
			if e.failWindow {
				res.FailWindowPlaced++
				if miss {
					res.FailWindowMissed++
				}
			}
			if tripped && cfg.BreakerCooldown > 0 {
				push(event{kind: evReadmit, t: e.t + cfg.BreakerCooldown, platform: e.m.Platform})
			}
			if feedback {
				pending = append(pending, e.m)
				flushNow := (cfg.FeedbackEvery > 0 && len(pending) >= cfg.FeedbackEvery) ||
					(cfg.FeedbackInterval > 0 && e.t-lastFlush >= cfg.FeedbackInterval)
				if flushNow {
					if err := observer.ObserveSeconds(pending); err != nil {
						return res, fmt.Errorf("sched: stream feedback: %w", err)
					}
					res.Observed += len(pending)
					pending = nil
					post = true
					lastFlush = e.t
				}
			}
			// The completion freed capacity: retry deferred jobs.
			tryRetries(e.t)
		case evFail:
			for _, p := range groups[e.group] {
				if s.Health(p) == Down {
					continue
				}
				if chaos.DegradeProb > 0 && chaosRng.Float64() < chaos.DegradeProb {
					// Flaky, not dead: residents keep running, placements
					// pay the degraded penalty. Quarantined platforms
					// cannot degrade; leave them to the recovery event.
					_ = s.Degrade(p)
					continue
				}
				orphans, _ := s.Fail(p)
				for _, o := range orphans {
					orphanDead[o.ID] = struct{}{}
					res.Orphaned++
					idx := 0
					if rec != nil {
						idx = idxOf[o.ID]
						delete(idxOf, o.ID)
						rec.Record(obs.Event{Kind: obs.EvOrphan, Job: key(idx),
							ID: uint64(o.ID), Platform: int32(p)})
					}
					orphanQ = append(orphanQ, retryEntry{
						job: o.Job, idx: idx, orphan: true, orphanedAt: e.t, notBefore: e.t,
					})
				}
			}
			push(event{kind: evRecover, t: e.t + chaosRng.ExpFloat64()*mttr, group: e.group})
			// Reschedule orphans immediately on the surviving platforms.
			tryRetries(e.t)
		case evRecover:
			for _, p := range groups[e.group] {
				if s.Health(p) != Healthy {
					_ = s.Recover(p)
				}
			}
			push(event{kind: evFail, t: e.t + chaosRng.ExpFloat64()*chaos.MTTF, group: e.group})
			tryRetries(e.t)
		case evRetry:
			tryRetries(e.t)
		case evReadmit:
			// Half-open re-admission after the breaker cooldown — unless a
			// chaos recovery already re-admitted the platform.
			if s.Health(e.platform) == Quarantined {
				_ = s.Recover(e.platform)
				if rec != nil {
					rec.Record(obs.Event{Kind: obs.EvReadmit, Platform: int32(e.platform)})
				}
			}
			tryRetries(e.t)
		}
	}
	// Jobs still deferred when the replay ended (no completion or backoff
	// deadline left to retry after) are dropped with their last failure
	// mode.
	for _, re := range orphanQ {
		drop(re)
	}
	for _, re := range retryQ {
		drop(re)
	}
	st := s.FailureStats()
	res.Failures = int(st.Fails)
	res.Degrades = int(st.Degrades)
	res.Recovers = int(st.Recovers)
	res.BreakerTrips = int(st.Trips)
	res.BreakerReadmits = int(st.Readmissions)
	res.BreakerCloses = int(st.Closes)
	res.finalize()
	return res, nil
}

// StreamTrials runs independent replays of run and aggregates them. With
// parallel set, trials execute concurrently — safe when the trials share a
// predictor read-only (predictor reads are lock-free); feedback trials
// mutate the predictor and should run sequentially.
func StreamTrials(trials int, parallel bool, run func(trial int) (StreamResult, error)) ([]StreamResult, StreamResult, error) {
	if trials <= 0 {
		trials = 1
	}
	results := make([]StreamResult, trials)
	errs := make([]error, trials)
	if parallel {
		var wg sync.WaitGroup
		for tr := 0; tr < trials; tr++ {
			wg.Add(1)
			go func(tr int) {
				defer wg.Done()
				results[tr], errs[tr] = run(tr)
			}(tr)
		}
		wg.Wait()
	} else {
		for tr := 0; tr < trials; tr++ {
			results[tr], errs[tr] = run(tr)
		}
	}
	for _, err := range errs {
		if err != nil {
			return results, StreamResult{}, err
		}
	}
	return results, AggregateStream(results), nil
}

// AggregateStream sums the counts of several replays and recomputes the
// derived rates.
func AggregateStream(rs []StreamResult) StreamResult {
	var agg StreamResult
	for i, r := range rs {
		if i == 0 {
			agg.Policy, agg.Strategy = r.Policy, r.Strategy
		}
		agg.Arrived += r.Arrived
		agg.Placed += r.Placed
		agg.Unplaced += r.Unplaced
		agg.Rejected += r.Rejected
		agg.Completed += r.Completed
		agg.Missed += r.Missed
		agg.headroomSum += r.headroomSum
		agg.headroomN += r.headroomN
		agg.PostPlaced += r.PostPlaced
		agg.PostMissed += r.PostMissed
		agg.Observed += r.Observed
		agg.RetryQueued += r.RetryQueued
		agg.Retries += r.Retries
		agg.RetryPlaced += r.RetryPlaced
		agg.Failures += r.Failures
		agg.Degrades += r.Degrades
		agg.Recovers += r.Recovers
		agg.Orphaned += r.Orphaned
		agg.OrphanReplaced += r.OrphanReplaced
		agg.OrphanLost += r.OrphanLost
		agg.orphanLatSum += r.orphanLatSum
		if r.OrphanLatencyMax > agg.OrphanLatencyMax {
			agg.OrphanLatencyMax = r.OrphanLatencyMax
		}
		agg.BreakerTrips += r.BreakerTrips
		agg.BreakerReadmits += r.BreakerReadmits
		agg.BreakerCloses += r.BreakerCloses
		agg.FailWindowPlaced += r.FailWindowPlaced
		agg.FailWindowMissed += r.FailWindowMissed
	}
	agg.finalize()
	return agg
}
