package sched

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// StreamConfig configures one streaming replay: a Poisson arrival process
// of deadline jobs placed against the live cluster state, with true-runtime
// departures freeing colocation slots and, optionally, measured runtimes
// fed back to the predictor online.
type StreamConfig struct {
	// Jobs is the total number of arrivals.
	Jobs int
	// ArrivalRate is the mean number of arrivals per (simulated) second;
	// inter-arrival times are exponential. Default 1.
	ArrivalRate float64
	// FeedbackEvery flushes buffered measurements to the Observer after
	// every that many completions (0 disables the count trigger).
	FeedbackEvery int
	// FeedbackInterval flushes buffered measurements whenever at least
	// this much simulated time has passed since the previous flush (0
	// disables the time trigger). On sparse completion streams the count
	// trigger alone can starve the Observer for long stretches; the time
	// trigger amortizes Observe cost per wall-clock instead of per
	// completion. Both triggers may be armed together; feedback is off
	// when both are zero or the Observer is nil.
	FeedbackInterval float64
	// RetryLimit re-queues a job whose placement failed (admission
	// rejection or no feasible platform) instead of dropping it: after
	// the next completion frees capacity, queued jobs are retried in FIFO
	// order, up to this many retry attempts each. 0 drops failed jobs
	// immediately (no retry queue).
	RetryLimit int
}

// StreamResult aggregates one streaming replay (or several, via
// AggregateStream).
type StreamResult struct {
	Policy   string
	Strategy string
	Arrived  int
	Placed   int
	Unplaced int
	// Rejected counts admission-control refusals (cluster at MaxInFlight).
	Rejected  int
	Completed int
	// Missed counts placed jobs whose true runtime exceeded the deadline;
	// MissRate is Missed/Placed — the per-execution quantity the bound
	// policy's eps controls.
	Missed   int
	MissRate float64
	// AvgHeadroom is the mean (deadline−runtime)/deadline over placed jobs
	// with finite positive deadlines.
	AvgHeadroom float64
	headroomSum float64
	headroomN   int
	// PostPlaced/PostMissed restrict to jobs placed after the first online
	// feedback update was absorbed — the "after Observe" miss rate the
	// feedback loop is judged on. Zero-valued without feedback.
	PostPlaced   int
	PostMissed   int
	PostMissRate float64
	// Observed counts measurements fed back to the Observer.
	Observed int
	// RetryQueued counts jobs that entered the retry queue after a failed
	// placement; Retries counts placement re-attempts made for them;
	// RetryPlaced counts the subset eventually placed by a retry.
	// RetryRate is RetryPlaced/RetryQueued — the fraction of would-be
	// drops the deferral queue saved. All zero when RetryLimit is 0.
	RetryQueued int
	Retries     int
	RetryPlaced int
	RetryRate   float64
}

func (r *StreamResult) finalize() {
	if r.Placed > 0 {
		r.MissRate = float64(r.Missed) / float64(r.Placed)
	}
	if r.headroomN > 0 {
		r.AvgHeadroom = r.headroomSum / float64(r.headroomN)
	}
	if r.PostPlaced > 0 {
		r.PostMissRate = float64(r.PostMissed) / float64(r.PostPlaced)
	}
	if r.RetryQueued > 0 {
		r.RetryRate = float64(r.RetryPlaced) / float64(r.RetryQueued)
	}
}

// JobSource generates the i-th arriving job of a trial.
type JobSource func(rng *rand.Rand, i int) Job

// event is one entry of the simulation clock: a job arrival or a placed
// job's completion.
type event struct {
	t   float64
	seq int // tie-break: deterministic order for simultaneous events
	// arrival
	arrival bool
	jobIdx  int
	// completion (miss/post accounting happens at placement time, when the
	// runtime is drawn; the completion event only frees the slot and
	// carries the measurement for feedback)
	id JobID
	m  Measurement
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// retryEntry is one deferred job in the stream's retry queue: a job whose
// placement failed, waiting for the next completion to free capacity.
type retryEntry struct {
	job      Job
	tries    int  // placement attempts made so far (the arrival counts)
	rejected bool // last failure was an admission rejection, not infeasibility
}

// Stream runs one event-driven replay: jobs arrive with exponential
// inter-arrival times, each placement's true runtime is drawn from the
// oracle under the interference it was placed into, its completion frees
// the colocation slot, and (with obs non-nil and a feedback trigger armed)
// measured runtimes are flushed to the Observer in batches — after which
// the predictor serves updated estimates and recalibrated bounds to
// subsequent placements. With RetryLimit > 0, failed placements re-enter
// after the next completion instead of being dropped, modeling a real
// orchestrator's deferral queue. Deterministic given rng.
func Stream(cfg StreamConfig, s *Scheduler, oracle Oracle, source JobSource, obs Observer, rng *rand.Rand) (StreamResult, error) {
	res := StreamResult{Policy: s.policy.Name(), Strategy: s.strategy.Name()}
	if cfg.Jobs <= 0 {
		return res, nil
	}
	rate := cfg.ArrivalRate
	if rate <= 0 {
		rate = 1
	}
	feedback := obs != nil && (cfg.FeedbackEvery > 0 || cfg.FeedbackInterval > 0)
	var (
		h         eventHeap
		seq       int
		pending   []Measurement
		post      bool // at least one feedback update has been absorbed
		lastFlush float64
		retryQ    []retryEntry
	)
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}
	// attempt places one job at simulated time t, recording miss/headroom
	// accounting and scheduling the departure on success. Shared by fresh
	// arrivals and retries.
	attempt := func(t float64, job Job) (placed, rejected bool) {
		a := s.Place(job)
		if a.Rejected {
			return false, true
		}
		if !a.Placed() {
			return false, false
		}
		res.Placed++
		rt := oracle.TrueSeconds(job.Workload, a.Platform, a.Interferers)
		finite := !math.IsNaN(job.Deadline) && !math.IsInf(job.Deadline, 0) && job.Deadline > 0
		miss := rt > job.Deadline
		if miss {
			res.Missed++
		}
		if finite {
			res.headroomSum += (job.Deadline - rt) / job.Deadline
			res.headroomN++
		}
		if post {
			res.PostPlaced++
			if miss {
				res.PostMissed++
			}
		}
		push(event{
			t: t + rt, id: a.ID,
			m: Measurement{Workload: job.Workload, Platform: a.Platform, Interferers: a.Interferers, Seconds: rt},
		})
		return true, false
	}
	// drop finalizes an entry that will never be retried again, counting
	// it under its last failure mode.
	drop := func(e retryEntry) {
		if e.rejected {
			res.Rejected++
		} else {
			res.Unplaced++
		}
	}
	// fail re-queues a failed placement attempt, or drops it once the
	// retry budget is spent.
	fail := func(e retryEntry, rejected bool) {
		e.rejected = rejected
		if cfg.RetryLimit > 0 && e.tries <= cfg.RetryLimit {
			if e.tries == 1 {
				res.RetryQueued++
			}
			retryQ = append(retryQ, e)
			return
		}
		drop(e)
	}
	push(event{t: rng.ExpFloat64() / rate, arrival: true, jobIdx: 0})
	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		if e.arrival {
			if e.jobIdx+1 < cfg.Jobs {
				push(event{t: e.t + rng.ExpFloat64()/rate, arrival: true, jobIdx: e.jobIdx + 1})
			}
			job := source(rng, e.jobIdx)
			res.Arrived++
			if placed, rejected := attempt(e.t, job); !placed {
				fail(retryEntry{job: job, tries: 1}, rejected)
			}
			continue
		}
		if err := s.Complete(e.id); err != nil {
			return res, fmt.Errorf("sched: stream completion: %w", err)
		}
		res.Completed++
		if feedback {
			pending = append(pending, e.m)
			flushNow := (cfg.FeedbackEvery > 0 && len(pending) >= cfg.FeedbackEvery) ||
				(cfg.FeedbackInterval > 0 && e.t-lastFlush >= cfg.FeedbackInterval)
			if flushNow {
				if err := obs.ObserveSeconds(pending); err != nil {
					return res, fmt.Errorf("sched: stream feedback: %w", err)
				}
				res.Observed += len(pending)
				pending = nil
				post = true
				lastFlush = e.t
			}
		}
		// The completion freed capacity: retry every deferred job once, in
		// FIFO order. Entries that fail again re-queue (up to RetryLimit
		// attempts each) and wait for the next completion.
		if len(retryQ) > 0 {
			waiting := retryQ
			retryQ = nil
			for _, re := range waiting {
				res.Retries++
				placed, rejected := attempt(e.t, re.job)
				if placed {
					res.RetryPlaced++
					continue
				}
				re.tries++
				fail(re, rejected)
			}
		}
	}
	// Jobs still deferred when the event queue drained (no completion left
	// to retry after) are dropped with their last failure mode.
	for _, re := range retryQ {
		drop(re)
	}
	res.finalize()
	return res, nil
}

// StreamTrials runs independent replays of run and aggregates them. With
// parallel set, trials execute concurrently — safe when the trials share a
// predictor read-only (predictor reads are lock-free); feedback trials
// mutate the predictor and should run sequentially.
func StreamTrials(trials int, parallel bool, run func(trial int) (StreamResult, error)) ([]StreamResult, StreamResult, error) {
	if trials <= 0 {
		trials = 1
	}
	results := make([]StreamResult, trials)
	errs := make([]error, trials)
	if parallel {
		var wg sync.WaitGroup
		for tr := 0; tr < trials; tr++ {
			wg.Add(1)
			go func(tr int) {
				defer wg.Done()
				results[tr], errs[tr] = run(tr)
			}(tr)
		}
		wg.Wait()
	} else {
		for tr := 0; tr < trials; tr++ {
			results[tr], errs[tr] = run(tr)
		}
	}
	for _, err := range errs {
		if err != nil {
			return results, StreamResult{}, err
		}
	}
	return results, AggregateStream(results), nil
}

// AggregateStream sums the counts of several replays and recomputes the
// derived rates.
func AggregateStream(rs []StreamResult) StreamResult {
	var agg StreamResult
	for i, r := range rs {
		if i == 0 {
			agg.Policy, agg.Strategy = r.Policy, r.Strategy
		}
		agg.Arrived += r.Arrived
		agg.Placed += r.Placed
		agg.Unplaced += r.Unplaced
		agg.Rejected += r.Rejected
		agg.Completed += r.Completed
		agg.Missed += r.Missed
		agg.headroomSum += r.headroomSum
		agg.headroomN += r.headroomN
		agg.PostPlaced += r.PostPlaced
		agg.PostMissed += r.PostMissed
		agg.Observed += r.Observed
		agg.RetryQueued += r.RetryQueued
		agg.Retries += r.Retries
		agg.RetryPlaced += r.RetryPlaced
	}
	agg.finalize()
	return agg
}
