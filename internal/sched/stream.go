package sched

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// StreamConfig configures one streaming replay: a Poisson arrival process
// of deadline jobs placed against the live cluster state, with true-runtime
// departures freeing colocation slots and, optionally, measured runtimes
// fed back to the predictor online.
type StreamConfig struct {
	// Jobs is the total number of arrivals.
	Jobs int
	// ArrivalRate is the mean number of arrivals per (simulated) second;
	// inter-arrival times are exponential. Default 1.
	ArrivalRate float64
	// FeedbackEvery flushes buffered measurements to the Observer after
	// every that many completions (0 disables feedback even when an
	// Observer is supplied).
	FeedbackEvery int
}

// StreamResult aggregates one streaming replay (or several, via
// AggregateStream).
type StreamResult struct {
	Policy   string
	Strategy string
	Arrived  int
	Placed   int
	Unplaced int
	// Rejected counts admission-control refusals (cluster at MaxInFlight).
	Rejected  int
	Completed int
	// Missed counts placed jobs whose true runtime exceeded the deadline;
	// MissRate is Missed/Placed — the per-execution quantity the bound
	// policy's eps controls.
	Missed   int
	MissRate float64
	// AvgHeadroom is the mean (deadline−runtime)/deadline over placed jobs
	// with finite positive deadlines.
	AvgHeadroom float64
	headroomSum float64
	headroomN   int
	// PostPlaced/PostMissed restrict to jobs placed after the first online
	// feedback update was absorbed — the "after Observe" miss rate the
	// feedback loop is judged on. Zero-valued without feedback.
	PostPlaced   int
	PostMissed   int
	PostMissRate float64
	// Observed counts measurements fed back to the Observer.
	Observed int
}

func (r *StreamResult) finalize() {
	if r.Placed > 0 {
		r.MissRate = float64(r.Missed) / float64(r.Placed)
	}
	if r.headroomN > 0 {
		r.AvgHeadroom = r.headroomSum / float64(r.headroomN)
	}
	if r.PostPlaced > 0 {
		r.PostMissRate = float64(r.PostMissed) / float64(r.PostPlaced)
	}
}

// JobSource generates the i-th arriving job of a trial.
type JobSource func(rng *rand.Rand, i int) Job

// event is one entry of the simulation clock: a job arrival or a placed
// job's completion.
type event struct {
	t   float64
	seq int // tie-break: deterministic order for simultaneous events
	// arrival
	arrival bool
	jobIdx  int
	// completion (miss/post accounting happens at placement time, when the
	// runtime is drawn; the completion event only frees the slot and
	// carries the measurement for feedback)
	id JobID
	m  Measurement
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Stream runs one event-driven replay: jobs arrive with exponential
// inter-arrival times, each placement's true runtime is drawn from the
// oracle under the interference it was placed into, its completion frees
// the colocation slot, and (with obs non-nil and FeedbackEvery > 0)
// measured runtimes are flushed to the Observer in batches — after which
// the predictor serves updated estimates and recalibrated bounds to
// subsequent placements. Deterministic given rng.
func Stream(cfg StreamConfig, s *Scheduler, oracle Oracle, source JobSource, obs Observer, rng *rand.Rand) (StreamResult, error) {
	res := StreamResult{Policy: s.policy.Name(), Strategy: s.strategy.Name()}
	if cfg.Jobs <= 0 {
		return res, nil
	}
	rate := cfg.ArrivalRate
	if rate <= 0 {
		rate = 1
	}
	var (
		h       eventHeap
		seq     int
		pending []Measurement
		post    bool // at least one feedback update has been absorbed
	)
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}
	push(event{t: rng.ExpFloat64() / rate, arrival: true, jobIdx: 0})
	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		if e.arrival {
			if e.jobIdx+1 < cfg.Jobs {
				push(event{t: e.t + rng.ExpFloat64()/rate, arrival: true, jobIdx: e.jobIdx + 1})
			}
			job := source(rng, e.jobIdx)
			res.Arrived++
			a := s.Place(job)
			switch {
			case a.Rejected:
				res.Rejected++
			case !a.Placed():
				res.Unplaced++
			default:
				res.Placed++
				rt := oracle.TrueSeconds(job.Workload, a.Platform, a.Interferers)
				finite := !math.IsNaN(job.Deadline) && !math.IsInf(job.Deadline, 0) && job.Deadline > 0
				miss := rt > job.Deadline
				if miss {
					res.Missed++
				}
				if finite {
					res.headroomSum += (job.Deadline - rt) / job.Deadline
					res.headroomN++
				}
				if post {
					res.PostPlaced++
					if miss {
						res.PostMissed++
					}
				}
				push(event{
					t: e.t + rt, id: a.ID,
					m: Measurement{Workload: job.Workload, Platform: a.Platform, Interferers: a.Interferers, Seconds: rt},
				})
			}
			continue
		}
		if err := s.Complete(e.id); err != nil {
			return res, fmt.Errorf("sched: stream completion: %w", err)
		}
		res.Completed++
		if obs != nil && cfg.FeedbackEvery > 0 {
			pending = append(pending, e.m)
			if len(pending) >= cfg.FeedbackEvery {
				if err := obs.ObserveSeconds(pending); err != nil {
					return res, fmt.Errorf("sched: stream feedback: %w", err)
				}
				res.Observed += len(pending)
				pending = nil
				post = true
			}
		}
	}
	res.finalize()
	return res, nil
}

// StreamTrials runs independent replays of run and aggregates them. With
// parallel set, trials execute concurrently — safe when the trials share a
// predictor read-only (predictor reads are lock-free); feedback trials
// mutate the predictor and should run sequentially.
func StreamTrials(trials int, parallel bool, run func(trial int) (StreamResult, error)) ([]StreamResult, StreamResult, error) {
	if trials <= 0 {
		trials = 1
	}
	results := make([]StreamResult, trials)
	errs := make([]error, trials)
	if parallel {
		var wg sync.WaitGroup
		for tr := 0; tr < trials; tr++ {
			wg.Add(1)
			go func(tr int) {
				defer wg.Done()
				results[tr], errs[tr] = run(tr)
			}(tr)
		}
		wg.Wait()
	} else {
		for tr := 0; tr < trials; tr++ {
			results[tr], errs[tr] = run(tr)
		}
	}
	for _, err := range errs {
		if err != nil {
			return results, StreamResult{}, err
		}
	}
	return results, AggregateStream(results), nil
}

// AggregateStream sums the counts of several replays and recomputes the
// derived rates.
func AggregateStream(rs []StreamResult) StreamResult {
	var agg StreamResult
	for i, r := range rs {
		if i == 0 {
			agg.Policy, agg.Strategy = r.Policy, r.Strategy
		}
		agg.Arrived += r.Arrived
		agg.Placed += r.Placed
		agg.Unplaced += r.Unplaced
		agg.Rejected += r.Rejected
		agg.Completed += r.Completed
		agg.Missed += r.Missed
		agg.headroomSum += r.headroomSum
		agg.headroomN += r.headroomN
		agg.PostPlaced += r.PostPlaced
		agg.PostMissed += r.PostMissed
		agg.Observed += r.Observed
	}
	agg.finalize()
	return agg
}
