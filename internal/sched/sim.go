package sched

import "math"

// Oracle is a ground-truth Predictor used by the simulation harnesses (and
// as an upper bound in comparisons): it knows the true runtime
// distribution of the synthetic cluster.
type Oracle interface {
	// TrueSeconds draws one true runtime (with measurement noise) of w on
	// p given interferers.
	TrueSeconds(w, p int, interferers []int) float64
}

// Outcome scores a completed simulation.
type Outcome struct {
	Policy   string
	Placed   int
	Unplaced int
	// MissedExecutions / TotalExecutions count (job, trial) pairs whose
	// true runtime exceeded the deadline; MissRate is their ratio. This is
	// the per-execution quantity the conformal bound's ε controls.
	MissedExecutions int
	TotalExecutions  int
	MissRate         float64
	// AvgHeadroom is the mean (deadline - trueRuntime)/deadline over placed
	// executions with finite positive deadlines: high headroom at equal
	// miss rate means wasteful overprovisioning.
	AvgHeadroom float64
}

// Simulate replays assignments against the ground truth: every placed
// job's true runtime (under the final co-location on its platform) is
// compared to its deadline, over `trials` repeated executions capturing
// runtime variance. Executions whose deadline is not a finite positive
// number are excluded from the headroom average — a NaN or ±Inf deadline
// would otherwise poison every execution's mean through one bad job.
func Simulate(policyName string, assignments []Assignment, oracle Oracle,
	finalResidents func(p int) []int, trials int) Outcome {
	out := Outcome{Policy: policyName}
	if trials <= 0 {
		trials = 1
	}
	var headroom float64
	var headroomN int
	for _, a := range assignments {
		if !a.Placed() {
			out.Unplaced++
			continue
		}
		out.Placed++
		// Interferers: everyone else on the platform at the end.
		var ks []int
		for _, w := range finalResidents(a.Platform) {
			if w != a.Job.Workload {
				ks = append(ks, w)
			}
		}
		finiteDeadline := !math.IsNaN(a.Job.Deadline) && !math.IsInf(a.Job.Deadline, 0) && a.Job.Deadline > 0
		for tr := 0; tr < trials; tr++ {
			tt := oracle.TrueSeconds(a.Job.Workload, a.Platform, ks)
			out.TotalExecutions++
			if tt > a.Job.Deadline {
				out.MissedExecutions++
			}
			if finiteDeadline {
				headroom += (a.Job.Deadline - tt) / a.Job.Deadline
				headroomN++
			}
		}
	}
	if out.TotalExecutions > 0 {
		out.MissRate = float64(out.MissedExecutions) / float64(out.TotalExecutions)
	}
	if headroomN > 0 {
		out.AvgHeadroom = headroom / float64(headroomN)
	}
	return out
}
