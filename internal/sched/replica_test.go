package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func mustNewReplicaSet(t *testing.T, cfg Config, rc ReplicaConfig, pol Policy, pred Predictor) *ReplicaSet {
	t.Helper()
	rs, err := NewReplicaSet(cfg, rc, pol, pred)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// The PR 8 decision-identity pin: a 1-replica ReplicaSet over the shared
// slot store is bitwise decision-identical to the plain Scheduler — same
// platforms, budgets, job IDs, rejection reasons, health transitions, and
// Complete errors — across fused, batch, and scalar scoring, random waves,
// completions, and the whole failure lifecycle. The commit protocol must
// provably add no behavior at N=1.
func TestReplicaIdentitySingleReplica(t *testing.T) {
	policies := []Policy{MeanPolicy{}, BoundPolicy{Eps: 0.1}, MeanBoundPolicy{Eps: 0.1}, PaddedBoundPolicy{Eps: 0.2, Factor: 1.3}}
	strategies := []Strategy{LeastLoaded{}, BestFit{}, UtilizationAware{}}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(800 + seed))
		nP := 3 + rng.Intn(6)
		base := make([]float64, nP)
		for i := range base {
			base[i] = 0.5 + 2*rng.Float64()
		}
		pol := policies[rng.Intn(len(policies))]
		strat := strategies[rng.Intn(len(strategies))]
		cfg := Config{
			NumPlatforms:  nP,
			MaxColocation: 1 + rng.Intn(3),
			MaxInFlight:   4 + rng.Intn(10),
			WaveChunk:     []int{0, 1, 2, 3, -1}[rng.Intn(5)],
			Strategy:      strat,
			Breaker:       BreakerConfig{Threshold: 0.5, Window: 4, Probation: 2},
		}
		scalar := rng.Float64() < 0.33
		cfg.DisableBatch = scalar
		var sPred, rPred Predictor
		if rng.Float64() < 0.5 {
			sPred = &fusedFake{batchPred: &batchPred{Predictor: variedPred{base}}}
			rPred = &fusedFake{batchPred: &batchPred{Predictor: variedPred{base}}}
		} else {
			sPred = &batchPred{Predictor: variedPred{base}}
			rPred = &batchPred{Predictor: variedPred{base}}
		}
		s := mustNew(t, cfg, pol, sPred)
		rs := mustNewReplicaSet(t, cfg, ReplicaConfig{Replicas: 1, Shards: 1}, pol, rPred)
		if s.Batched() != rs.Batched() || s.Fused() != rs.Fused() {
			t.Fatalf("seed %d: scoring-path wiring differs: scheduler batched=%v fused=%v, replica batched=%v fused=%v",
				seed, s.Batched(), s.Fused(), rs.Batched(), rs.Fused())
		}
		var live []JobID
		for i := 0; i < 70; i++ {
			switch op := rng.Float64(); {
			case len(live) > 0 && op < 0.25:
				id := live[rng.Intn(len(live))]
				miss := rng.Float64() < 0.4
				tS, errS := s.CompleteOutcome(id, miss)
				tR, errR := rs.CompleteOutcome(id, miss)
				if (errS == nil) != (errR == nil) || tS != tR {
					t.Fatalf("seed %d: CompleteOutcome(%d) disagreement: (%v,%v) vs (%v,%v)", seed, id, tS, errS, tR, errR)
				}
				if errS == nil {
					for j, l := range live {
						if l == id {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
				}
			case op < 0.32:
				p := rng.Intn(nP)
				oS, errS := s.Fail(p)
				oR, errR := rs.Fail(p)
				if (errS == nil) != (errR == nil) || len(oS) != len(oR) {
					t.Fatalf("seed %d: Fail(%d) disagreement: %v/%v vs %v/%v", seed, p, oS, errS, oR, errR)
				}
				for j := range oS {
					if oS[j] != oR[j] {
						t.Fatalf("seed %d: Fail(%d) orphan %d differs: %+v vs %+v", seed, p, j, oS[j], oR[j])
					}
					for k, l := range live {
						if l == oS[j].ID {
							live = append(live[:k], live[k+1:]...)
							break
						}
					}
				}
			case op < 0.38:
				p := rng.Intn(nP)
				errS, errR := s.Degrade(p), rs.Degrade(p)
				if (errS == nil) != (errR == nil) {
					t.Fatalf("seed %d: Degrade(%d): %v vs %v", seed, p, errS, errR)
				}
			case op < 0.46:
				p := rng.Intn(nP)
				errS, errR := s.Recover(p), rs.Recover(p)
				if (errS == nil) != (errR == nil) {
					t.Fatalf("seed %d: Recover(%d): %v vs %v", seed, p, errS, errR)
				}
			default:
				n := 1 + rng.Intn(6)
				jobs := make([]Job, n)
				for j := range jobs {
					jobs[j] = Job{Workload: rng.Intn(20), Deadline: 0.3 + 6*rng.Float64()}
				}
				wS, wR := s.PlaceAll(jobs), rs.PlaceAll(jobs)
				for j := range jobs {
					if !sameAssignment(wS[j], wR[j]) || wS[j].Reason != wR[j].Reason {
						t.Fatalf("seed %d wave job %d: scheduler %+v vs replica %+v (policy %s, strategy %s, chunk %d, scalar %v)",
							seed, j, wS[j], wR[j], pol.Name(), strat.Name(), cfg.WaveChunk, scalar)
					}
					if wS[j].Placed() {
						live = append(live, wS[j].ID)
					}
				}
			}
			if gotS, gotR := s.InFlight(), rs.InFlight(); gotS != gotR {
				t.Fatalf("seed %d step %d: InFlight %d vs %d", seed, i, gotS, gotR)
			}
		}
		hS, hR := s.HealthSnapshot(), rs.HealthSnapshot()
		for p := range hS {
			if hS[p] != hR[p] {
				t.Fatalf("seed %d: health of platform %d: %s vs %s", seed, p, hS[p], hR[p])
			}
		}
		if fS, fR := s.FailureStats(), rs.FailureStats(); fS != fR {
			t.Fatalf("seed %d: failure stats differ: %+v vs %+v", seed, fS, fR)
		}
		if cs := rs.ConflictStats(); cs.Conflicts != 0 || cs.Shed != 0 {
			t.Fatalf("seed %d: single uncontended replica saw conflicts: %+v", seed, cs)
		}
	}
}

// Conflict-retry conservation under the race detector: concurrent replicas
// placing into overlapping shards (a single shared pool maximizes
// contention), racing completers, and a platform failer must never
// double-commit a slot and never lose a job — every arrival ends exactly
// once as completed, unplaced (including conflict-shed), or rejected, and
// every placement completes or is orphaned.
func TestReplicaConservationConcurrent(t *testing.T) {
	const (
		nP       = 6
		coloc    = 2
		replicas = 4
		perRep   = 120
		wave     = 5
	)
	base := make([]float64, nP)
	for i := range base {
		base[i] = 0.5 + 0.3*float64(i)
	}
	rs := mustNewReplicaSet(t,
		Config{NumPlatforms: nP, MaxColocation: coloc, WaveChunk: 2},
		ReplicaConfig{Replicas: replicas, Shards: 1, MaxCommitRetries: 4},
		BoundPolicy{Eps: 0.1},
		&fusedFake{batchPred: &batchPred{Predictor: variedPred{base}}})

	var (
		placed, unplaced, rejected, shed atomic.Int64
		completed, orphaned              atomic.Int64
		seen                             sync.Map // JobID -> struct{} (double-commit detector)
		wg                               sync.WaitGroup
		stop                             = make(chan struct{})
	)
	// Live slot invariant sampler: no published platform state may ever
	// exceed the colocation cap.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for p := 0; p < nP; p++ {
				if n := len(rs.Residents(p)); n > coloc {
					t.Errorf("platform %d oversubscribed: %d residents > cap %d", p, n, coloc)
					return
				}
			}
		}
	}()
	for ri := 0; ri < replicas; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			rep := rs.Replica(ri)
			rng := rand.New(rand.NewSource(int64(1000 + ri)))
			var mine []JobID
			for i := 0; i < perRep; i += wave {
				jobs := make([]Job, wave)
				for j := range jobs {
					jobs[j] = Job{Workload: rng.Intn(20), Deadline: 1e9}
				}
				for _, a := range rep.PlaceAll(jobs) {
					switch {
					case a.Rejected:
						rejected.Add(1)
					case !a.Placed():
						unplaced.Add(1)
						if a.Reason == ReasonConflict {
							shed.Add(1)
						}
					default:
						if _, dup := seen.LoadOrStore(a.ID, struct{}{}); dup {
							t.Errorf("job ID %d committed twice", a.ID)
						}
						placed.Add(1)
						mine = append(mine, a.ID)
					}
				}
				// Complete our own backlog so slots churn under the other
				// replicas' snapshots.
				for len(mine) > wave {
					id := mine[0]
					mine = mine[1:]
					if err := rs.Complete(id); err == nil {
						completed.Add(1)
					}
				}
			}
			for _, id := range mine {
				if err := rs.Complete(id); err == nil {
					completed.Add(1)
				}
			}
		}(ri)
	}
	// Failure churn: one platform cycles Down and back half-open/healthy
	// while the replicas place into it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			orphans, err := rs.Fail(2)
			if err != nil {
				t.Errorf("Fail: %v", err)
				return
			}
			orphaned.Add(int64(len(orphans)))
			if err := rs.Recover(2); err != nil {
				t.Errorf("Recover: %v", err)
				return
			}
			if err := rs.Recover(2); err != nil { // probation -> healthy
				t.Errorf("Recover: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-samplerDone

	arrived := int64(replicas * perRep)
	if got := placed.Load() + unplaced.Load() + rejected.Load(); got != arrived {
		t.Fatalf("arrival conservation violated: placed %d + unplaced %d + rejected %d = %d, want %d",
			placed.Load(), unplaced.Load(), rejected.Load(), got, arrived)
	}
	if got := completed.Load() + orphaned.Load(); got != placed.Load() {
		t.Fatalf("placement conservation violated: completed %d + orphaned %d = %d, want placed %d",
			completed.Load(), orphaned.Load(), got, placed.Load())
	}
	if rs.InFlight() != 0 {
		t.Fatalf("in-flight not drained: %d", rs.InFlight())
	}
	for p := 0; p < nP; p++ {
		if n := len(rs.Residents(p)); n != 0 {
			t.Fatalf("platform %d still holds %d residents after drain", p, n)
		}
	}
	cs := rs.ConflictStats()
	if cs.Attempts < uint64(placed.Load()) {
		t.Fatalf("attempts %d < commits %d", cs.Attempts, placed.Load())
	}
	t.Logf("attempts %d conflicts %d (%.2f%%) shed %d", cs.Attempts, cs.Conflicts,
		100*float64(cs.Conflicts)/float64(cs.Attempts), cs.Shed)
}

// A deterministic conflict: the reserveGap hook commits a competing job
// into the chosen platform between the version check and the CAS, so the
// replica's first reservation must lose, count one conflict, refresh, and
// succeed on retry.
func TestReplicaConflictRetryDeterministic(t *testing.T) {
	base := []float64{1, 2, 3}
	rs := mustNewReplicaSet(t,
		Config{NumPlatforms: 3, MaxColocation: 4},
		ReplicaConfig{Replicas: 1, Shards: 1},
		MeanPolicy{},
		&batchPred{Predictor: variedPred{base}})
	st := rs.Store()
	fired := false
	st.reserveGap = func(p int) {
		if fired {
			return
		}
		fired = true
		st.reserveGap = nil // the nested reserve must not recurse
		if _, _, status := st.reserve(p, st.load(p).version, Job{Workload: 7, Deadline: 1e9}); status != reserveOK {
			t.Fatalf("competing reserve failed: %v", status)
		}
		st.reserveGap = func(int) {}
	}
	a := rs.Place(Job{Workload: 1, Deadline: 1e9})
	if !a.Placed() {
		t.Fatalf("job not placed after conflict retry: %+v", a)
	}
	cs := rs.ConflictStats()
	if cs.Conflicts != 1 {
		t.Fatalf("want exactly 1 conflict, got %+v", cs)
	}
	if rs.InFlight() != 2 {
		t.Fatalf("want 2 in flight (competitor + retried job), got %d", rs.InFlight())
	}
}

// Exhausting MaxCommitRetries sheds the job with ReasonConflict, keeping
// arrival accounting intact.
func TestReplicaConflictShed(t *testing.T) {
	base := []float64{1, 2}
	rs := mustNewReplicaSet(t,
		Config{NumPlatforms: 2, MaxColocation: 2},
		ReplicaConfig{Replicas: 1, Shards: 1, MaxCommitRetries: 3},
		MeanPolicy{},
		&batchPred{Predictor: variedPred{base}})
	st := rs.Store()
	st.reserveGap = func(p int) {
		// Sabotage every attempt: bump the platform version underneath the
		// in-flight reservation via a health wobble.
		cur := st.load(p)
		next := cur.clone()
		st.plats[p].Store(next)
	}
	a := rs.Place(Job{Workload: 1, Deadline: 1e9})
	if a.Placed() || a.Reason != ReasonConflict {
		t.Fatalf("want conflict shed, got %+v", a)
	}
	cs := rs.ConflictStats()
	if cs.Shed != 1 || cs.Conflicts < 3 {
		t.Fatalf("conflict accounting: %+v", cs)
	}
	if rs.InFlight() != 0 {
		t.Fatalf("shed job leaked in-flight: %d", rs.InFlight())
	}
}

// Rebalance must keep the shard map a partition of the platforms and move
// load off the hot shard: with all residents piled on shard 0's platforms,
// a rebalance spreads them across shards.
func TestReplicaRebalance(t *testing.T) {
	base := make([]float64, 8)
	for i := range base {
		base[i] = 1 + float64(i)
	}
	rs := mustNewReplicaSet(t,
		Config{NumPlatforms: 8, MaxColocation: 4},
		ReplicaConfig{Replicas: 2, Shards: 2},
		MeanPolicy{},
		&batchPred{Predictor: variedPred{base}})
	// Load platforms 0 and 2 (both shard 0 under the initial p%2 split).
	st := rs.Store()
	for i := 0; i < 4; i++ {
		for _, p := range []int{0, 2} {
			if _, _, status := st.reserve(p, st.load(p).version, Job{Workload: i, Deadline: 1e9}); status != reserveOK {
				t.Fatalf("seed reserve on %d failed", p)
			}
		}
	}
	if skew := rs.shardSkew(); skew < 1.9 {
		t.Fatalf("setup: expected hot shard, skew %.2f", skew)
	}
	rs.Rebalance()
	m := rs.shards.Load()
	seen := make(map[int]bool)
	for _, shard := range m.shards {
		for i, p := range shard {
			if seen[p] {
				t.Fatalf("platform %d in two shards after rebalance", p)
			}
			seen[p] = true
			if i > 0 && shard[i-1] >= p {
				t.Fatalf("shard not sorted: %v", shard)
			}
		}
	}
	if len(seen) != 8 {
		t.Fatalf("rebalance dropped platforms: %d of 8 assigned", len(seen))
	}
	if skew := rs.shardSkew(); skew > 1.01 {
		t.Fatalf("rebalance left skew %.2f", skew)
	}
	if cs := rs.ConflictStats(); cs.Rebalances != 1 {
		t.Fatalf("rebalance count: %+v", cs)
	}
}

// The slot store's exactly-once retirement contract under the race
// detector: Fail racing Complete on the same residents must retire every
// job exactly once — as a completion or an orphan, never both, never
// neither.
func TestSlotStoreFailCompleteRaces(t *testing.T) {
	for round := 0; round < 30; round++ {
		st, err := NewSlotStore(Config{NumPlatforms: 1, MaxColocation: 8})
		if err != nil {
			t.Fatal(err)
		}
		var ids []JobID
		for i := 0; i < 8; i++ {
			id, _, status := st.reserve(0, st.load(0).version+uint64(0), Job{Workload: i, Deadline: 1})
			if status != reserveOK {
				// Versions advance as we commit; refresh and retry once.
				id, _, status = st.reserve(0, st.load(0).version, Job{Workload: i, Deadline: 1})
				if status != reserveOK {
					t.Fatalf("seed reserve %d: %v", i, status)
				}
			}
			ids = append(ids, id)
		}
		var completedN, orphanedN atomic.Int64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, id := range ids {
				if err := st.Complete(id); err == nil {
					completedN.Add(1)
				}
			}
		}()
		go func() {
			defer wg.Done()
			orphans, err := st.Fail(0)
			if err != nil {
				t.Errorf("Fail: %v", err)
				return
			}
			orphanedN.Add(int64(len(orphans)))
		}()
		wg.Wait()
		if got := completedN.Load() + orphanedN.Load(); got != int64(len(ids)) {
			t.Fatalf("round %d: retired %d jobs (completed %d + orphaned %d), want %d",
				round, got, completedN.Load(), orphanedN.Load(), len(ids))
		}
		if st.InFlight() != 0 {
			t.Fatalf("round %d: in-flight %d after drain", round, st.InFlight())
		}
	}
}

// Sharded replicas with disjoint shards place only into their own
// platforms, and the round-robin router spreads waves across replicas.
func TestReplicaSharding(t *testing.T) {
	base := make([]float64, 6)
	for i := range base {
		base[i] = 1 + float64(i)
	}
	rs := mustNewReplicaSet(t,
		Config{NumPlatforms: 6, MaxColocation: 4},
		ReplicaConfig{Replicas: 2}, // Shards 0 = one shard per replica
		MeanPolicy{},
		&batchPred{Predictor: variedPred{base}})
	if rs.NumShards() != 2 {
		t.Fatalf("want 2 shards, got %d", rs.NumShards())
	}
	for i := 0; i < 2; i++ {
		rep := rs.Replica(i)
		for j := 0; j < 6; j++ {
			a := rep.Place(Job{Workload: j, Deadline: 1e9})
			if !a.Placed() {
				t.Fatalf("replica %d job %d unplaced: %+v", i, j, a)
			}
			if a.Platform%2 != i {
				t.Fatalf("replica %d placed onto platform %d outside its shard", i, a.Platform)
			}
		}
	}
}
