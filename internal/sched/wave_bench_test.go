package sched

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// costPred models the real predictor's per-query scoring cost (a rank-32
// dot per model head) without importing the facade: lock-hold times below
// reflect realistic wave-scoring durations.
type costPred struct {
	emb []float64 // synthetic rank-32 embeddings, one row per platform
}

func newCostPred(nP int) *costPred {
	rng := rand.New(rand.NewSource(5))
	emb := make([]float64, nP*32)
	for i := range emb {
		emb[i] = rng.NormFloat64()
	}
	return &costPred{emb: emb}
}

func (c *costPred) score(w, p int, ks []int) float64 {
	row := c.emb[(p%(len(c.emb)/32))*32:]
	var s0, s1, s2, s3 float64
	for i := 0; i < 32; i += 4 {
		v := float64(w%7) + float64(i)
		s0 += row[i] * v
		s1 += row[i+1] * v
		s2 += row[i+2] * v
		s3 += row[i+3] * v
	}
	return 1 + 1e-6*(s0+s1+s2+s3) + 0.01*float64(len(ks)) + 0.1*float64(p%3)
}

func (c *costPred) EstimateSeconds(w, p int, ks []int) float64 { return c.score(w, p, ks) }
func (c *costPred) BoundSeconds(w, p int, ks []int, eps float64) float64 {
	return c.score(w, p, ks) * 1.5
}

func (c *costPred) EstimateSecondsBatch(qs []Query) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = c.EstimateSeconds(q.Workload, q.Platform, q.Interferers)
	}
	return out
}

func (c *costPred) BoundSecondsBatch(qs []Query, eps float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = c.BoundSeconds(q.Workload, q.Platform, q.Interferers, eps)
	}
	return out
}

func (c *costPred) ScoreSecondsBatch(qs []Query, eps float64, meanOut, boundOut []float64) {
	for i, q := range qs {
		meanOut[i] = c.EstimateSeconds(q.Workload, q.Platform, q.Interferers)
		boundOut[i] = c.BoundSeconds(q.Workload, q.Platform, q.Interferers, eps)
	}
}

// benchWaveLockHold measures how long PlaceAll holds the scheduler lock
// per acquisition while placing 256-job waves — the exact quantity that
// bounds a concurrent Complete's wait. Chunk-boundary timestamps come
// from the chunkGap hook, so the measurement needs no cross-goroutine
// scheduling (which a 1-vCPU runner would quantize to the Go preemption
// interval and drown the signal).
func benchWaveLockHold(b *testing.B, chunk int) {
	b.Helper()
	s, err := New(Config{
		NumPlatforms:  24,
		MaxColocation: 12,
		WaveChunk:     chunk,
	}, MeanBoundPolicy{Eps: 0.1}, newCostPred(24))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	wave := make([]Job, 256)
	for i := range wave {
		wave[i] = Job{Workload: rng.Intn(40), Deadline: 1e9}
	}
	var holds []time.Duration
	var lockStart time.Time
	// chunkGap runs between lock holds: close the previous hold, open the
	// next. The final chunk's hold closes after PlaceAll returns.
	s.chunkGap = func() {
		now := time.Now()
		holds = append(holds, now.Sub(lockStart))
		lockStart = now
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lockStart = time.Now()
		as := s.PlaceAll(wave)
		holds = append(holds, time.Since(lockStart))
		b.StopTimer()
		for _, a := range as {
			if a.Placed() {
				if err := s.Complete(a.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	if len(holds) == 0 {
		b.Fatal("no lock holds measured")
	}
	sort.Slice(holds, func(i, j int) bool { return holds[i] < holds[j] })
	b.ReportMetric(float64(holds[len(holds)/2].Nanoseconds()), "p50-lock-hold-ns")
	b.ReportMetric(float64(holds[len(holds)*99/100].Nanoseconds()), "p99-lock-hold-ns")
	b.ReportMetric(float64(holds[len(holds)-1].Nanoseconds()), "max-lock-hold-ns")
}

// BenchmarkWaveLockHold256Unchunked: the whole 256-job wave under one
// lock hold — a concurrent Complete waits out the entire wave.
func BenchmarkWaveLockHold256Unchunked(b *testing.B) { benchWaveLockHold(b, -1) }

// BenchmarkWaveLockHold256Chunk16: the lock is released every 16 jobs —
// a concurrent Complete waits at most one chunk's scoring.
func BenchmarkWaveLockHold256Chunk16(b *testing.B) { benchWaveLockHold(b, 16) }

// BenchmarkWaveLockHold256Chunk64 is the default chunking.
func BenchmarkWaveLockHold256Chunk64(b *testing.B) { benchWaveLockHold(b, 64) }
