package sched

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// batchPred wraps a scalar Predictor with batch methods that loop the
// scalar calls, so batch and scalar scoring produce bitwise-identical
// values — isolating the scheduler's decision logic from the predictor's
// own batch-vs-scalar float reassociation. Counters record call shapes.
type batchPred struct {
	Predictor
	batchCalls   atomic.Int64
	batchQueries atomic.Int64
}

func (b *batchPred) EstimateSecondsBatch(qs []Query) []float64 {
	b.batchCalls.Add(1)
	b.batchQueries.Add(int64(len(qs)))
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = b.EstimateSeconds(q.Workload, q.Platform, q.Interferers)
	}
	return out
}

func (b *batchPred) BoundSecondsBatch(qs []Query, eps float64) []float64 {
	b.batchCalls.Add(1)
	b.batchQueries.Add(int64(len(qs)))
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = b.BoundSeconds(q.Workload, q.Platform, q.Interferers, eps)
	}
	return out
}

// variedPred is a scalar predictor with enough structure that different
// platforms, workloads, and interference levels all score differently.
type variedPred struct{ base []float64 }

func (f variedPred) EstimateSeconds(w, p int, ks []int) float64 {
	v := f.base[p] * (1 + 0.21*float64(w%5)) * (1 + 0.37*float64(len(ks)))
	for _, k := range ks {
		v *= 1 + 0.013*float64(k%7)
	}
	return v
}

func (f variedPred) BoundSeconds(w, p int, ks []int, eps float64) float64 {
	return f.EstimateSeconds(w, p, ks) * (1 + 0.5*(1-eps))
}

func mustNew(t *testing.T, cfg Config, pol Policy, pred Predictor) *Scheduler {
	t.Helper()
	s, err := New(cfg, pol, pred)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sameAssignment(a, b Assignment) bool {
	return a.ID == b.ID && a.Platform == b.Platform && a.Budget == b.Budget &&
		a.Rejected == b.Rejected && a.Job == b.Job
}

// The core decision-identity property: for any policy, strategy, and
// arrival/completion sequence, batch-scored placement picks the identical
// platform (and budget, and job ID) as scalar scoring.
func TestBatchScalarDecisionIdentical(t *testing.T) {
	policies := []Policy{MeanPolicy{}, PaddedMeanPolicy{Factor: 1.3}, BoundPolicy{Eps: 0.1}}
	strategies := []Strategy{LeastLoaded{}, BestFit{}, UtilizationAware{}}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nP := 3 + rng.Intn(6)
		base := make([]float64, nP)
		for i := range base {
			base[i] = 0.5 + 2*rng.Float64()
		}
		pol := policies[rng.Intn(len(policies))]
		strat := strategies[rng.Intn(len(strategies))]
		cfg := Config{NumPlatforms: nP, MaxColocation: 1 + rng.Intn(3), MaxInFlight: 2 + rng.Intn(8), Strategy: strat}
		scalarCfg := cfg
		scalarCfg.DisableBatch = true
		sb := mustNew(t, cfg, pol, &batchPred{Predictor: variedPred{base}})
		ss := mustNew(t, scalarCfg, pol, &batchPred{Predictor: variedPred{base}})
		if !sb.Batched() || ss.Batched() {
			t.Fatal("batch path not wired as expected")
		}
		var live []JobID
		for i := 0; i < 60; i++ {
			if len(live) > 0 && rng.Float64() < 0.3 {
				id := live[rng.Intn(len(live))]
				errB, errS := sb.Complete(id), ss.Complete(id)
				if (errB == nil) != (errS == nil) {
					t.Fatalf("seed %d: complete disagreement on id %d: %v vs %v", seed, id, errB, errS)
				}
				if errB == nil {
					for j, l := range live {
						if l == id {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
				}
				continue
			}
			job := Job{Workload: rng.Intn(20), Deadline: 0.3 + 6*rng.Float64()}
			ab, as := sb.Place(job), ss.Place(job)
			if !sameAssignment(ab, as) {
				t.Fatalf("seed %d job %d: batch %+v != scalar %+v (policy %s, strategy %s)",
					seed, i, ab, as, pol.Name(), strat.Name())
			}
			if ab.Placed() {
				live = append(live, ab.ID)
			}
		}
	}
}

// PlaceAll's wave path (pre-score + dirty-platform refresh) must make the
// same decisions as placing each job individually.
func TestPlaceAllMatchesSequentialPlace(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		nP := 4 + rng.Intn(5)
		base := make([]float64, nP)
		for i := range base {
			base[i] = 0.5 + 2*rng.Float64()
		}
		cfg := Config{NumPlatforms: nP, MaxColocation: 2, MaxInFlight: nP}
		wave := mustNew(t, cfg, BoundPolicy{Eps: 0.1}, &batchPred{Predictor: variedPred{base}})
		seq := mustNew(t, cfg, BoundPolicy{Eps: 0.1}, &batchPred{Predictor: variedPred{base}})
		jobs := make([]Job, 25)
		for i := range jobs {
			jobs[i] = Job{Workload: rng.Intn(15), Deadline: 0.3 + 6*rng.Float64()}
		}
		wa := wave.PlaceAll(jobs)
		for i, job := range jobs {
			sa := seq.Place(job)
			if !sameAssignment(wa[i], sa) {
				t.Fatalf("seed %d job %d: wave %+v != sequential %+v", seed, i, wa[i], sa)
			}
		}
	}
}

// The wave path must pre-score the whole wave in one predictor call, with
// only dirty-platform refreshes on top — not one call per (job, platform).
func TestPlaceAllBatchesWave(t *testing.T) {
	const nP = 8
	base := make([]float64, nP)
	for i := range base {
		base[i] = 1
	}
	bp := &batchPred{Predictor: variedPred{base}}
	s := mustNew(t, Config{NumPlatforms: nP, MaxColocation: 4}, MeanPolicy{}, bp)
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{Workload: i, Deadline: 1000}
	}
	s.PlaceAll(jobs)
	calls := bp.batchCalls.Load()
	// 1 wave pre-score + at most one refresh call per job.
	if calls < 1 || calls > int64(1+len(jobs)) {
		t.Fatalf("wave of %d jobs issued %d batch calls", len(jobs), calls)
	}
	if bp.batchQueries.Load() < int64(nP*len(jobs)) {
		t.Fatalf("pre-score missing: only %d queries", bp.batchQueries.Load())
	}
}

func TestCompleteFreesSlot(t *testing.T) {
	pred := variedPred{base: []float64{1.0}}
	s := mustNew(t, Config{NumPlatforms: 1, MaxColocation: 2}, MeanPolicy{}, pred)
	a1 := s.Place(Job{Workload: 0, Deadline: 100})
	a2 := s.Place(Job{Workload: 1, Deadline: 100})
	if !a1.Placed() || !a2.Placed() {
		t.Fatal("setup placements failed")
	}
	if a := s.Place(Job{Workload: 2, Deadline: 100}); a.Placed() {
		t.Fatal("exceeded colocation cap")
	}
	if err := s.Complete(a1.ID); err != nil {
		t.Fatal(err)
	}
	a3 := s.Place(Job{Workload: 2, Deadline: 100})
	if !a3.Placed() {
		t.Fatal("slot not freed by completion")
	}
	// The freed job is gone from the resident set; the survivor remains.
	res := s.Residents(0)
	if len(res) != 2 || res[0] != 1 || res[1] != 2 {
		t.Fatalf("residents after completion: %v", res)
	}
	if err := s.Complete(a1.ID); err != ErrJobCompleted {
		t.Fatalf("double complete: %v", err)
	}
	if err := s.Complete(9999); err != ErrUnknownJob {
		t.Fatalf("unknown id: %v", err)
	}
	if s.InFlight() != 2 {
		t.Fatalf("in-flight %d", s.InFlight())
	}
}

func TestAdmissionBound(t *testing.T) {
	pred := variedPred{base: []float64{1, 1, 1, 1}}
	s := mustNew(t, Config{NumPlatforms: 4, MaxColocation: 4, MaxInFlight: 2}, MeanPolicy{}, pred)
	a1 := s.Place(Job{Workload: 0, Deadline: 100})
	a2 := s.Place(Job{Workload: 1, Deadline: 100})
	if !a1.Placed() || !a2.Placed() {
		t.Fatal("under-bound placements failed")
	}
	a3 := s.Place(Job{Workload: 2, Deadline: 100})
	if a3.Placed() || !a3.Rejected {
		t.Fatalf("expected admission rejection, got %+v", a3)
	}
	if err := s.Complete(a2.ID); err != nil {
		t.Fatal(err)
	}
	a4 := s.Place(Job{Workload: 2, Deadline: 100})
	if !a4.Placed() {
		t.Fatal("admission slot not freed by completion")
	}
	// Infeasible is not Rejected: distinguishable failure modes (free an
	// admission slot first so feasibility is what gets exercised).
	if err := s.Complete(a4.ID); err != nil {
		t.Fatal(err)
	}
	if a := s.Place(Job{Workload: 0, Deadline: 1e-9}); a.Placed() || a.Rejected {
		t.Fatalf("infeasible job misreported: %+v", a)
	}
}

// Callers mutating returned slices must never corrupt scheduler state.
func TestResidentsNoAliasing(t *testing.T) {
	pred := variedPred{base: []float64{1.0}}
	s := mustNew(t, Config{NumPlatforms: 1, MaxColocation: 3}, MeanPolicy{}, pred)
	s.Place(Job{Workload: 7, Deadline: 100})
	a := s.Place(Job{Workload: 8, Deadline: 100})
	res := s.Residents(0)
	res[0] = 999
	for i := range a.Interferers {
		a.Interferers[i] = -5
	}
	got := s.Residents(0)
	if got[0] != 7 || got[1] != 8 {
		t.Fatalf("internal state mutated through returned slices: %v", got)
	}
}

func TestSimulateSkipsNonFiniteDeadlineHeadroom(t *testing.T) {
	as := []Assignment{
		{Job: Job{Workload: 0, Deadline: math.Inf(1)}, Platform: 0},
		{Job: Job{Workload: 1, Deadline: math.NaN()}, Platform: 0},
		{Job: Job{Workload: 2, Deadline: 2}, Platform: 0},
	}
	oracle := oracleFunc(func(w, p int, ks []int) float64 { return 1 })
	out := Simulate("x", as, oracle, func(p int) []int { return nil }, 4)
	if out.Placed != 3 || out.TotalExecutions != 12 {
		t.Fatalf("outcome %+v", out)
	}
	if math.IsNaN(out.AvgHeadroom) || math.IsInf(out.AvgHeadroom, 0) {
		t.Fatalf("headroom poisoned by non-finite deadlines: %v", out.AvgHeadroom)
	}
	if math.Abs(out.AvgHeadroom-0.5) > 1e-12 {
		t.Fatalf("headroom %v, want 0.5 from the one finite-deadline job", out.AvgHeadroom)
	}
}

type oracleFunc func(w, p int, ks []int) float64

func (f oracleFunc) TrueSeconds(w, p int, ks []int) float64 { return f(w, p, ks) }

func TestStrategySelection(t *testing.T) {
	// Platform speeds: 0 fast, 1 medium, 2 slow; all empty.
	pred := variedPred{base: []float64{0.5, 1.0, 1.8}}
	job := Job{Workload: 0, Deadline: 2.0}

	ll := mustNew(t, Config{NumPlatforms: 3, Strategy: LeastLoaded{}}, MeanPolicy{}, pred)
	ll.Place(Job{Workload: 0, Deadline: 100}) // occupy the fast platform
	if a := ll.Place(job); a.Platform == 0 {
		t.Fatalf("least-loaded picked the loaded platform: %+v", a)
	}

	bf := mustNew(t, Config{NumPlatforms: 3, Strategy: BestFit{}}, MeanPolicy{}, pred)
	if a := bf.Place(job); a.Platform != 2 {
		t.Fatalf("best-fit should pick the tightest feasible platform 2, got %+v", a)
	}

	ua := mustNew(t, Config{NumPlatforms: 3, Strategy: UtilizationAware{}}, MeanPolicy{}, pred)
	ua.Place(Job{Workload: 0, Deadline: 100}) // platform 0 now loaded
	// Occupancy: p0 = 0.5*(1+0.37)*2 ≈ 1.37, p1 = 1.0, p2 = 1.8 → p1 wins.
	if a := ua.Place(job); a.Platform != 1 {
		t.Fatalf("utilization-aware should pick platform 1, got %+v", a)
	}
}

func TestParseHelpers(t *testing.T) {
	for _, n := range []string{"mean", "padded", "bound"} {
		if _, err := ParsePolicy(n, 0.1, 1.3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParsePolicy("bogus", 0.1, 1.3); err == nil {
		t.Fatal("accepted unknown policy")
	}
	if _, err := ParsePolicy("bound", 2, 0); err == nil {
		t.Fatal("accepted out-of-range eps")
	}
	for _, n := range []string{"", "least-loaded", "best-fit", "utilization"} {
		if _, err := ParseStrategy(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("accepted unknown strategy")
	}
}

// Concurrent Place/Complete from many goroutines must keep the bookkeeping
// consistent (run under -race).
func TestConcurrentPlaceComplete(t *testing.T) {
	pred := &batchPred{Predictor: variedPred{base: []float64{1, 1.2, 0.8, 1.5}}}
	s := mustNew(t, Config{NumPlatforms: 4, MaxColocation: 4}, BoundPolicy{Eps: 0.1}, pred)
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []JobID
			for i := 0; i < 50; i++ {
				if len(mine) > 0 && rng.Float64() < 0.5 {
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := s.Complete(id); err != nil {
						t.Errorf("complete own job: %v", err)
						return
					}
					continue
				}
				a := s.Place(Job{Workload: rng.Intn(10), Deadline: 0.5 + 5*rng.Float64()})
				if a.Placed() {
					if a.Budget > a.Job.Deadline {
						t.Errorf("budget %v over deadline %v", a.Budget, a.Job.Deadline)
						return
					}
					mine = append(mine, a.ID)
				}
			}
			for _, id := range mine {
				if err := s.Complete(id); err != nil {
					t.Errorf("drain: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain: %d", got)
	}
	for p := 0; p < 4; p++ {
		if rs := s.Residents(p); len(rs) != 0 {
			t.Fatalf("platform %d residents after drain: %v", p, rs)
		}
	}
}

// feedbackObserver records flushed measurements.
type feedbackObserver struct {
	mu sync.Mutex
	ms []Measurement
}

func (o *feedbackObserver) ObserveSeconds(ms []Measurement) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ms = append(o.ms, ms...)
	return nil
}

// The streaming harness conserves jobs (arrived = placed+unplaced+rejected,
// placed = completed once the event queue drains) and drives the feedback
// observer on the configured cadence.
func TestStreamConservation(t *testing.T) {
	pred := &batchPred{Predictor: variedPred{base: []float64{1, 1.2, 0.8}}}
	s := mustNew(t, Config{NumPlatforms: 3, MaxColocation: 2, MaxInFlight: 5}, BoundPolicy{Eps: 0.1}, pred)
	obs := &feedbackObserver{}
	rng := rand.New(rand.NewSource(42))
	source := func(rng *rand.Rand, i int) Job {
		return Job{Workload: i % 10, Deadline: 0.8 + 4*rng.Float64()}
	}
	oracle := oracleFunc(func(w, p int, ks []int) float64 {
		return 0.5 + 0.1*float64(w%3) + 0.3*float64(len(ks))
	})
	res, err := Stream(StreamConfig{Jobs: 80, ArrivalRate: 3, FeedbackEvery: 10}, s, oracle, source, obs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 80 {
		t.Fatalf("arrived %d", res.Arrived)
	}
	if res.Placed+res.Unplaced+res.Rejected != res.Arrived {
		t.Fatalf("job conservation: %+v", res)
	}
	if res.Completed != res.Placed {
		t.Fatalf("placed %d but completed %d", res.Placed, res.Completed)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight after stream: %d", s.InFlight())
	}
	if res.Placed < 10 {
		t.Fatalf("degenerate stream, placed %d", res.Placed)
	}
	wantObserved := (res.Completed / 10) * 10
	if res.Observed != wantObserved || len(obs.ms) != wantObserved {
		t.Fatalf("observed %d (observer saw %d), want %d", res.Observed, len(obs.ms), wantObserved)
	}
	if res.Observed > 0 && res.PostPlaced == 0 {
		t.Fatal("no post-update placements recorded despite feedback")
	}
	// Aggregation over two identical replays doubles counts, keeps rates.
	agg := AggregateStream([]StreamResult{res, res})
	if agg.Placed != 2*res.Placed || math.Abs(agg.MissRate-res.MissRate) > 1e-12 {
		t.Fatalf("aggregate mismatch: %+v vs %+v", agg, res)
	}
}
